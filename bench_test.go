// Benchmarks regenerating every table and figure of the paper (one
// Benchmark per experiment, per DESIGN.md's per-experiment index), plus
// kernel, reordering and ablation micro-benchmarks.
//
// The experiment benches share one study run (the dominant cost) through
// sync.Once and report headline values via b.ReportMetric, so
// `go test -bench=.` both regenerates and summarises the reproduction.
package sparseorder_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"sparseorder/internal/cholesky"
	"sparseorder/internal/experiments"
	"sparseorder/internal/gen"
	"sparseorder/internal/graph"
	"sparseorder/internal/machine"
	"sparseorder/internal/metrics"
	"sparseorder/internal/partition"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
	"sparseorder/internal/stats"
)

var (
	studyOnce sync.Once
	studyRes  *experiments.StudyResult
	studyErr  error
)

func sharedStudy(b *testing.B) *experiments.StudyResult {
	b.Helper()
	studyOnce.Do(func() {
		studyRes, studyErr = experiments.RunStudy(experiments.Config{Scale: gen.ScaleTest, Seed: 42})
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return studyRes
}

func geoOf(s *experiments.StudyResult, k machine.Kernel, alg reorder.Algorithm) float64 {
	var gs []float64
	for _, m := range s.Config.Machines {
		gs = append(gs, stats.GeoMean(s.Speedups(m.Name, k, alg)))
	}
	return stats.GeoMean(gs)
}

// BenchmarkFig1 regenerates Figure 1: RCM/ND/GP speedups for the three
// showcase matrices on Milan B and Ice Lake.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RenderFig1(experiments.Config{Scale: gen.ScaleTest, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2_1DSpeedups regenerates the Figure 2 box statistics and
// reports the median GP speedup on Milan B.
func BenchmarkFig2_1DSpeedups(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.RenderFig2(s)
	}
	b.ReportMetric(stats.Quantile(s.Speedups("Milan B", machine.Kernel1D, reorder.GP), 0.5), "GP-median-speedup")
}

// BenchmarkTable3 regenerates Table 3 and reports the all-machine GP and
// Gray geometric means (the paper's extremes: 1.205 and 0.757).
func BenchmarkTable3(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.RenderTable3(s)
	}
	b.ReportMetric(geoOf(s, machine.Kernel1D, reorder.GP), "GP-geomean")
	b.ReportMetric(geoOf(s, machine.Kernel1D, reorder.Gray), "Gray-geomean")
}

// BenchmarkFig3_2DSpeedups regenerates the Figure 3 box statistics.
func BenchmarkFig3_2DSpeedups(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.RenderFig3(s)
	}
	b.ReportMetric(stats.Quantile(s.Speedups("Hi1620", machine.Kernel2D, reorder.RCM), 0.5), "RCM-ARM-median")
}

// BenchmarkTable4 regenerates Table 4 (2D geometric means).
func BenchmarkTable4(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.RenderTable4(s)
	}
	b.ReportMetric(geoOf(s, machine.Kernel2D, reorder.GP), "GP-geomean")
}

// BenchmarkFig4 regenerates the Figure 4 per-class analysis.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RenderFig4(experiments.Config{Scale: gen.ScaleTest, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 regenerates the Figure 5 performance profiles and reports
// the fraction of matrices for which GP attains the best off-diagonal
// count (the paper's ~0.65).
func BenchmarkFig5(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RenderFig5(s); err != nil {
			b.Fatal(err)
		}
	}
	p, err := experiments.Fig5Profiles(s)
	if err != nil {
		b.Fatal(err)
	}
	for i, alg := range reorder.AllOrderings {
		if alg == reorder.GP {
			b.ReportMetric(p["offdiag"][i].Value(1), "GP-best-offdiag-fraction")
		}
	}
}

// BenchmarkFig6 regenerates the Figure 6 Cholesky fill box statistics and
// reports the AMD median fill ratio.
func BenchmarkFig6(b *testing.B) {
	s := sharedStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.RenderFig6(s)
	}
	var xs []float64
	for _, r := range s.Matrices {
		if fr, ok := r.FillRatio[reorder.AMD]; ok {
			xs = append(xs, fr)
		}
	}
	b.ReportMetric(stats.Quantile(xs, 0.5), "AMD-median-fill")
}

// BenchmarkTable5_ReorderTime regenerates Table 5 (reordering overhead and
// break-even analysis) on the ten-matrix large set.
func BenchmarkTable5_ReorderTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable5(experiments.Config{Scale: gen.ScaleTest, Seed: 42, Repeats: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDenseCSRRef regenerates the §4.2 tall-skinny dense reference.
func BenchmarkDenseCSRRef(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.RenderDenseCSRRef(experiments.Config{Scale: gen.ScaleTest, Seed: 1, Repeats: 2})
	}
}

// --- Kernel micro-benchmarks -------------------------------------------

func BenchmarkSpMV1D(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	a := gen.Scramble(gen.Grid2D(120, 120), 1)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1
	}
	b.SetBytes(int64(12 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmv.Mul1D(a, x, y, threads)
	}
}

func BenchmarkSpMV2D(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	a := gen.Scramble(gen.Grid2D(120, 120), 1)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1
	}
	plan, err := spmv.NewPlan2D(a, threads)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(12 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmv.Mul2D(a, x, y, plan)
	}
}

func BenchmarkSpMVSerial(b *testing.B) {
	a := gen.Scramble(gen.Grid2D(120, 120), 1)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	b.SetBytes(int64(12 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmv.Serial(a, x, y)
	}
}

// BenchmarkReorder times each reordering algorithm on the same scrambled
// mesh (the Table 5 cost ranking in miniature: Gray < RCM < AMD/GP < ND/HP).
func BenchmarkReorder(b *testing.B) {
	a := gen.Scramble(gen.Grid2D(80, 80), 3)
	for _, alg := range reorder.Algorithms {
		b.Run(string(alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := reorder.Compute(alg, a, reorder.Options{Seed: 1, Parts: 32}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReorderWorkers runs every ordering serial (workers=1) and
// parallel (workers=4) on a matrix above the parallel engagement thresholds
// (6400 vertices clears amdMultiMinVerts and the ND/GP/HP fork minimums),
// so the CI benchmark smoke compiles and exercises each parallel ordering
// path. The BENCH_reorder.json speedups are measured at study scale by
// `study -exp benchreorder`, not here.
func BenchmarkReorderWorkers(b *testing.B) {
	a := gen.Scramble(gen.Grid2D(80, 80), 3)
	for _, alg := range reorder.Algorithms {
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", alg, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := reorder.Compute(alg, a, reorder.Options{Seed: 1, Parts: 32, Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablation benches (design decisions called out in DESIGN.md) --------

// BenchmarkAblationGPWeighted compares the paper's row-balanced GP against
// nnz-weighted balancing on a matrix with skewed row densities, reporting
// the model speedup of each on Milan B.
func BenchmarkAblationGPWeighted(b *testing.B) {
	machine.CacheScale = machine.CacheScaleFor(gen.ScaleTest.Factor())
	a := gen.WithDenseRows(gen.Scramble(gen.Grid2D(100, 100), 2), 10, 0.1, 3)
	milan, _ := machine.ByName("Milan B")
	base := machine.EstimateSpMV(a, milan, machine.Kernel1D)
	b.Run("rows", func(b *testing.B) {
		var sp float64
		for i := 0; i < b.N; i++ {
			bm, _, err := reorder.Apply(reorder.GP, a, reorder.Options{Seed: 1, Parts: milan.Cores})
			if err != nil {
				b.Fatal(err)
			}
			sp = machine.EstimateSpMV(bm, milan, machine.Kernel1D).Gflops / base.Gflops
		}
		b.ReportMetric(sp, "model-speedup")
	})
	b.Run("nnz", func(b *testing.B) {
		var sp float64
		for i := 0; i < b.N; i++ {
			p, err := reorder.GraphPartitionOrderWeighted(a, reorder.Options{Seed: 1, Parts: milan.Cores})
			if err != nil {
				b.Fatal(err)
			}
			bm, err := permuteSym(a, p)
			if err != nil {
				b.Fatal(err)
			}
			sp = machine.EstimateSpMV(bm, milan, machine.Kernel1D).Gflops / base.Gflops
		}
		b.ReportMetric(sp, "model-speedup")
	})
}

// BenchmarkAblation2DAtomics compares the paper-style fix-up 2D kernel
// against the CAS-based alternative.
func BenchmarkAblation2DAtomics(b *testing.B) {
	a := gen.RMAT(12, 8, 4) // skewed rows: many boundary rows per split
	threads := runtime.GOMAXPROCS(0) * 4
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1
	}
	plan, err := spmv.NewPlan2D(a, threads)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fixup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spmv.Mul2D(a, x, y, plan)
		}
	})
	b.Run("atomics", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spmv.Mul2DAtomic(a, x, y, plan)
		}
	})
}

// BenchmarkAblationRCMStart compares pseudo-peripheral and minimum-degree
// root selection, reporting the resulting bandwidth.
func BenchmarkAblationRCMStart(b *testing.B) {
	a := gen.Scramble(gen.Grid2D(100, 100), 5)
	g, err := graph.FromMatrix(a)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		strat reorder.StartStrategy
	}{
		{"pseudo-peripheral", reorder.PseudoPeripheralStart},
		{"min-degree", reorder.MinDegreeStart},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var bw int
			for i := 0; i < b.N; i++ {
				p := reorder.ReverseCuthillMcKeeWithStart(g, tc.strat)
				bm, err := permuteSym(a, p)
				if err != nil {
					b.Fatal(err)
				}
				bw = metrics.Bandwidth(bm)
			}
			b.ReportMetric(float64(bw), "bandwidth")
		})
	}
}

// BenchmarkAblationGrayThreshold sweeps the Gray dense-row threshold
// around the paper's default of 20, reporting the Milan B model speedup.
func BenchmarkAblationGrayThreshold(b *testing.B) {
	machine.CacheScale = machine.CacheScaleFor(gen.ScaleTest.Factor())
	// Mixed-stencil rows range from 7 to 27+ nonzeros, so the three
	// thresholds genuinely change the dense/sparse split: 5 treats almost
	// everything as dense (pure density sort), 80 treats everything as
	// sparse (pure bitmap sort), 20 is the paper's configuration.
	a := gen.MixedStencil3D(16, 16, 16, 0.4, 7)
	milan, _ := machine.ByName("Milan B")
	base := machine.EstimateSpMV(a, milan, machine.Kernel1D)
	for _, thr := range []int{5, 20, 80} {
		b.Run(benchName(thr), func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				bm, _, err := reorder.Apply(reorder.Gray, a, reorder.Options{GrayDenseThreshold: thr})
				if err != nil {
					b.Fatal(err)
				}
				sp = machine.EstimateSpMV(bm, milan, machine.Kernel1D).Gflops / base.Gflops
			}
			b.ReportMetric(sp, "model-speedup")
		})
	}
}

func benchName(thr int) string {
	switch thr {
	case 5:
		return "threshold-5"
	case 20:
		return "threshold-20-paper"
	default:
		return "threshold-80"
	}
}

func permuteSym(a *sparse.CSR, p sparse.Perm) (*sparse.CSR, error) {
	return sparse.PermuteSymmetric(a, p)
}

func BenchmarkSpMVMerge(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	a := gen.Scramble(gen.Grid2D(120, 120), 1)
	x := make([]float64, a.Cols)
	y := make([]float64, a.Rows)
	for i := range x {
		x[i] = 1
	}
	plan, err := spmv.NewPlanMerge(a, threads)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(12 * a.NNZ()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spmv.MulMerge(a, x, y, plan)
	}
}

// BenchmarkCholeskyFactorize times the numeric factorisation under the two
// fill-extremes of Figure 6: AMD (least fill) vs the scrambled original.
func BenchmarkCholeskyFactorize(b *testing.B) {
	a := gen.Scramble(gen.Grid2D(40, 40), 9)
	b.Run("original", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cholesky.Factorize(a); err != nil {
				b.Fatal(err)
			}
		}
	})
	amdM, _, err := reorder.Apply(reorder.AMD, a, reorder.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("amd", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cholesky.Factorize(amdM); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationNDSmall sweeps the nested-dissection recursion cutoff,
// reporting the resulting Cholesky fill ratio.
func BenchmarkAblationNDSmall(b *testing.B) {
	a := gen.Scramble(gen.Grid2D(48, 48), 10)
	for _, small := range []int{32, 128, 512} {
		name := "cutoff-32"
		if small == 128 {
			name = "cutoff-128-default"
		} else if small == 512 {
			name = "cutoff-512"
		}
		b.Run(name, func(b *testing.B) {
			var fill float64
			for i := 0; i < b.N; i++ {
				bm, _, err := reorder.Apply(reorder.ND, a, reorder.Options{Seed: 1, NDSmall: small})
				if err != nil {
					b.Fatal(err)
				}
				fill, err = cholesky.FillRatio(bm)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(fill, "fill-ratio")
		})
	}
}

// BenchmarkAblationMatching compares heavy-edge and random matching in the
// partitioner's coarsening, reporting the resulting edge cut.
func BenchmarkAblationMatching(b *testing.B) {
	g, err := graph.FromMatrix(gen.Grid2D(100, 100))
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		strat partition.MatchingStrategy
	}{
		{"heavy-edge", partition.HeavyEdgeMatching},
		{"random", partition.RandomMatching},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var cut int
			for i := 0; i < b.N; i++ {
				_, c, err := partition.KWay(g, 16, partition.Options{Seed: 1, Matching: tc.strat})
				if err != nil {
					b.Fatal(err)
				}
				cut = c
			}
			b.ReportMetric(float64(cut), "edge-cut")
		})
	}
}

// BenchmarkParallelBisection measures the deterministic parallel recursive
// bisection against the serial baseline (identical output, see the
// partition tests).
func BenchmarkParallelBisection(b *testing.B) {
	g, err := graph.FromMatrix(gen.Grid2D(150, 150))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := partition.KWay(g, 32, partition.Options{Seed: 2, Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := partition.KWay(g, 32, partition.Options{Seed: 2, Workers: 0}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationHPObjective compares the HP ordering under PaToH's two
// objectives (paper §3.3: the study uses cut-net), reporting the model
// speedup on Milan B.
func BenchmarkAblationHPObjective(b *testing.B) {
	machine.CacheScale = machine.CacheScaleFor(gen.ScaleTest.Factor())
	a := gen.Scramble(gen.Grid2D(80, 80), 13)
	milan, _ := machine.ByName("Milan B")
	base := machine.EstimateSpMV(a, milan, machine.Kernel1D)
	for _, tc := range []struct {
		name string
		obj  reorder.HPObjective
	}{
		{"cut-net-paper", reorder.CutNet},
		{"connectivity", reorder.Connectivity},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				bm, _, err := reorder.Apply(reorder.HP, a,
					reorder.Options{Seed: 1, Parts: milan.Cores, HPObjective: tc.obj})
				if err != nil {
					b.Fatal(err)
				}
				sp = machine.EstimateSpMV(bm, milan, machine.Kernel1D).Gflops / base.Gflops
			}
			b.ReportMetric(sp, "model-speedup")
		})
	}
}
