// Command features prints the study's order-sensitive matrix features
// (paper §3.2) — bandwidth, profile, off-diagonal nonzero count and the 1D
// load-imbalance factor — for a matrix under every reordering.
//
// Usage:
//
//	features [-blocks N] [-threads N] [-gen NAME] [input.mtx]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sparseorder/internal/gen"
	"sparseorder/internal/graph"
	"sparseorder/internal/metrics"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("features: ")
	blocks := flag.Int("blocks", 128, "block grid for the off-diagonal nonzero count")
	threads := flag.Int("threads", 128, "thread count for the imbalance factor")
	genName := flag.String("gen", "", "use a named matrix from the synthetic collection")
	seed := flag.Int64("seed", 42, "collection seed / partitioner seed")
	flag.Parse()

	var a *sparse.CSR
	switch {
	case *genName != "":
		for _, m := range gen.Collection(gen.ScaleStudy, *seed) {
			if m.Name == *genName {
				a = m.A
			}
		}
		if a == nil {
			log.Fatalf("no matrix named %q in the collection", *genName)
		}
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		a, err = sparse.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("usage: features [-gen NAME | input.mtx]")
	}

	fmt.Printf("matrix: %dx%d, %d nonzeros\n", a.Rows, a.Cols, a.NNZ())
	fmt.Printf("%-10s %12s %14s %14s %10s\n", "order", "bandwidth", "profile", "offdiag-nnz", "imb-1D")
	show := func(name string, b *sparse.CSR) {
		f := metrics.Compute(b, *blocks, *threads)
		fmt.Printf("%-10s %12d %14d %14d %10.3f\n", name, f.Bandwidth, f.Profile, f.OffDiagNNZ, f.Imbalance1D)
	}
	for _, alg := range reorder.AllOrderings {
		b, _, err := reorder.Apply(alg, a, reorder.Options{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		show(string(alg), b)
	}
	// Extension orderings (not part of the study's six).
	g, err := graph.FromMatrixSymmetrized(a)
	if err != nil {
		log.Fatal(err)
	}
	for _, ext := range []struct {
		name string
		p    sparse.Perm
	}{
		{"GPS", reorder.GibbsPooleStockmeyer(g)},
		{"Sloan", reorder.Sloan(g, 0, 0)},
	} {
		b, err := sparse.PermuteSymmetric(a, ext.p)
		if err != nil {
			log.Fatal(err)
		}
		show(ext.name, b)
	}
}
