// Command fillin computes the Cholesky fill-in ratio nnz(L)/nnz(A) of a
// symmetric matrix under the study's symmetric orderings (paper §4.6),
// using the Gilbert-Ng-Peyton row/column counting algorithm. The Gray
// ordering is excluded because it does not preserve symmetry.
//
// Usage:
//
//	fillin [-gen NAME] [input.mtx]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sparseorder/internal/cholesky"
	"sparseorder/internal/gen"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fillin: ")
	genName := flag.String("gen", "", "use a named matrix from the synthetic collection")
	seed := flag.Int64("seed", 42, "collection seed / partitioner seed")
	flag.Parse()

	var a *sparse.CSR
	switch {
	case *genName != "":
		for _, m := range gen.Collection(gen.ScaleStudy, *seed) {
			if m.Name == *genName {
				a = m.A
			}
		}
		if a == nil {
			log.Fatalf("no matrix named %q in the collection", *genName)
		}
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		a, err = sparse.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("usage: fillin [-gen NAME | input.mtx]")
	}
	if !a.IsStructurallySymmetric() {
		log.Print("pattern is unsymmetric; using A+Aᵀ")
		var err error
		a, err = sparse.Symmetrize(a)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("matrix: %dx%d, %d nonzeros\n", a.Rows, a.Cols, a.NNZ())
	fmt.Printf("%-10s %14s %12s\n", "order", "nnz(L)", "fill ratio")
	for _, alg := range reorder.AllOrderings {
		if !alg.Symmetric() {
			continue
		}
		b, _, err := reorder.Apply(alg, a, reorder.Options{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		l, err := cholesky.FactorNNZ(b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14d %12.3f\n", alg, l, float64(l)/float64(b.NNZ()))
	}
}
