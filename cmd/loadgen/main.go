// Command loadgen drives a running serve daemon with open-loop,
// zipf-distributed upload + SpMV traffic and reports client-side tail
// latency (p50/p95/p99 per route) cross-checked against the server's own
// /metrics histograms.
//
// Usage:
//
//	loadgen [-addr http://localhost:8080] [-matrices N] [-rows N]
//	        [-rate RPS] [-duration D] [-zipf-s S] [-seed N]
//	        [-max-inflight N] [-retries N] [-retry-cap D] [-json]
//
// The generator uploads a synthetic corpus (banded / grid / R-MAT mix),
// then fires SpMV requests on a fixed open-loop schedule — arrivals are
// independent of completions, so server slowness shows up as queueing
// delay in the report instead of silently reducing the offered load.
// Matrix popularity is zipf(s): a hot head that should stay cached and a
// cold tail that churns the cache.
//
// Exit codes: 0 success, 1 run failure (daemon unreachable, uploads
// rejected), 2 cross-check failure (server histograms disagree with
// client observations, request ids not echoed, or nondeterministic SpMV
// responses).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sparseorder/internal/loadgen"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "http://localhost:8080", "daemon base URL")
	matrices := flag.Int("matrices", 8, "corpus size (distinct matrices)")
	rows := flag.Int("rows", 600, "approximate rows per corpus matrix")
	rate := flag.Float64("rate", 50, "offered load, requests/second (open loop)")
	duration := flag.Duration("duration", 5*time.Second, "SpMV burst length")
	zipfS := flag.Float64("zipf-s", 1.3, "zipf skew exponent (> 1)")
	seed := flag.Int64("seed", 42, "corpus and arrival-sequence seed")
	maxInflight := flag.Int("max-inflight", 256, "outstanding-request cap; arrivals beyond it are dropped and counted")
	retries := flag.Int("retries", 3, "retries per request after a 429/503 shed, honoring Retry-After (negative = off)")
	retryCap := flag.Duration("retry-cap", 2*time.Second, "maximum single backoff wait between retries")
	jsonOut := flag.Bool("json", false, "emit the report as JSON on stdout")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	}
	rep, err := loadgen.Run(ctx, loadgen.Config{
		BaseURL:     *addr,
		Matrices:    *matrices,
		Rows:        *rows,
		Rate:        *rate,
		Duration:    *duration,
		ZipfS:       *zipfS,
		Seed:        *seed,
		MaxInFlight: *maxInflight,
		Retries:     *retries,
		RetryCap:    *retryCap,
		Logf:        logf,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 1
		}
	} else {
		rep.RenderText(os.Stdout)
	}
	if !rep.CrossCheck {
		if *jsonOut {
			// Problems are in the JSON; still flag them on stderr.
			for _, p := range rep.Problems {
				fmt.Fprintf(os.Stderr, "loadgen: cross-check: %s\n", p)
			}
		}
		return 2
	}
	return 0
}
