// Command reorder applies one of the study's reordering algorithms to a
// sparse matrix in Matrix Market format.
//
// Usage:
//
//	reorder -alg RCM|AMD|ND|GP|HP|Gray [-parts N] [-seed N]
//	        [-reorder-workers N] [-ingest-workers N]
//	        [-perm out.perm.mtx] [-o out.mtx] input.mtx
//
// The input is ingested through the parallel streaming Matrix Market
// reader with -ingest-workers goroutines (0 = GOMAXPROCS); any worker
// count produces byte-identical matrices. The reordered matrix is written
// to -o (default: stdout) and the permutation, in 1-based Matrix Market
// integer-vector form, to -perm if given. Symmetric algorithms permute
// rows and columns; Gray permutes rows only, as in the paper.
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reorder: ")
	alg := flag.String("alg", "RCM", "reordering algorithm: RCM, AMD, ND, GP, HP or Gray")
	parts := flag.Int("parts", 128, "number of parts for GP and HP")
	seed := flag.Int64("seed", 0, "seed for the randomized partitioners")
	workers := flag.Int("reorder-workers", 0, "workers for the reordering pipeline (0 = GOMAXPROCS, 1 = serial); any value gives identical output")
	ingestWorkers := flag.Int("ingest-workers", 0, "workers for Matrix Market ingestion (0 = GOMAXPROCS); any value gives identical matrices")
	permPath := flag.String("perm", "", "write the permutation to this file")
	outPath := flag.String("o", "", "write the reordered matrix to this file (default stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: reorder [-alg A] [-o out.mtx] input.mtx")
	}

	in, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	a, err := sparse.ReadMatrixMarketWorkers(in, *ingestWorkers)
	in.Close()
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	b, p, phases, err := reorder.ApplyTimed(reorder.Algorithm(*alg), a,
		reorder.Options{Parts: *parts, Seed: *seed, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("%s on %dx%d (%d nnz) took %v (graph %.3fs, order %.3fs, permute %.3fs)",
		*alg, a.Rows, a.Cols, a.NNZ(), time.Since(start).Round(time.Millisecond),
		phases.GraphSeconds, phases.OrderSeconds, phases.PermuteSeconds)

	out := os.Stdout
	if *outPath != "" {
		out, err = os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
	}
	if err := sparse.WriteMatrixMarket(out, b); err != nil {
		log.Fatal(err)
	}
	if *permPath != "" {
		pf, err := os.Create(*permPath)
		if err != nil {
			log.Fatal(err)
		}
		defer pf.Close()
		if err := sparse.WritePermutation(pf, p); err != nil {
			log.Fatal(err)
		}
	}
}
