// Command serve runs the reordering-as-a-service daemon: a long-running
// HTTP/JSON server that accepts Matrix Market uploads, reorders each with
// the predicted-best ordering, caches (matrix, ordering, plan) under a
// content-hash key, and answers SpMV requests against the cached plans —
// amortizing the reordering cost the paper shows dominates one-shot use
// (Table 5).
//
// Usage:
//
//	serve [-addr :8080] [-threads N] [-reorder-workers N] [-ingest-workers N]
//	      [-seed N] [-deadline D] [-max-inflight N] [-queue N] [-max-body SIZE]
//	      [-membudget SIZE] [-cache-entries N] [-store DIR] [-recover-workers N]
//	      [-drain-timeout D] [-trace-requests N] [-events FILE] [-faults SPEC] [-v]
//
// API:
//
//	POST /matrices       Matrix Market body -> {"key","rows","cols","nnz",
//	                     "ordering","cached","reorder_seconds"}
//	GET  /matrices/{key} metadata of a cached matrix
//	POST /spmv/{key}     {"x":[...]} -> {"y":[...]} (original index space)
//	GET  /healthz        liveness (200 while serving, also during drain)
//	GET  /readyz         acceptance (503 during overload and drain)
//	GET  /metrics        Prometheus metrics (same surface as cmd/study -http)
//	GET  /debug/requests recent/slowest/errored request traces with
//	                     per-phase latency decomposition (JSON and text)
//	GET  /progress, /debug/pprof/*, /debug/vars
//
// Every request carries a trace id: X-Request-Id is accepted from the
// client (or generated) and echoed on the response, and the id appears in
// /debug/requests, the request span, and the JSONL access log (-events).
// Request latency is decomposed into queue_wait / governor_wait / decode /
// reorder / plan_build / spmv phases, exported per route as
// sparseorder_server_phase_seconds histograms — the "why was this request
// slow" answer the coarse per-route latency histogram cannot give.
//
// Robustness contract (see DESIGN.md, "Serving contract"): admission is a
// bounded queue (-max-inflight doing work, -queue waiting) plus the
// byte-weighted memory governor (-membudget) shared between in-flight
// reorder working sets and cache residency; arrivals beyond either bound
// are shed with 429 + Retry-After instead of queueing unboundedly. Every
// request carries a deadline (-deadline, shortenable per request with an
// X-Deadline-Ms header) propagated as a context into the cancellable
// orderings. Failures are classified with the study's
// error/timeout/canceled/panic/resource taxonomy in the JSON error body.
//
// SIGINT or SIGTERM triggers a graceful drain: /readyz flips to 503, new
// requests are rejected with 503, in-flight requests finish (bounded by
// -drain-timeout), and the process exits with the study runner's exit-code
// contract: 3 for a signal-initiated drain, 1 for fatal errors (including
// an incomplete drain).
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sparseorder/internal/experiments"
	"sparseorder/internal/faultinject"
	"sparseorder/internal/obs"
	"sparseorder/internal/server"
)

const (
	exitOK      = 0
	exitFatal   = 1
	exitAborted = 3
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	threads := flag.Int("threads", 0, "SpMV execution threads (0 = GOMAXPROCS)")
	reorderWorkers := flag.Int("reorder-workers", 1, "workers for each upload's reordering pipeline (0 = 1/serial); any value gives byte-identical plans")
	ingestWorkers := flag.Int("ingest-workers", 0, "workers for Matrix Market decode (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 42, "partitioner seed (fixed so equal uploads give identical orderings)")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline; X-Deadline-Ms can shorten it (negative = none)")
	maxInflight := flag.Int("max-inflight", 0, "requests doing work concurrently (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "requests allowed to wait for a work slot before shedding (0 = 2x max-inflight)")
	maxBody := flag.String("max-body", "256MiB", "upload body cap")
	memBudget := flag.String("membudget", "auto", `byte budget shared by cache residency and in-flight reorders: "auto" (from GOMEMLIMIT), "off", or a size like 512MiB`)
	cacheEntries := flag.Int("cache-entries", 256, "plan cache entry bound")
	storeDir := flag.String("store", "", "durable plan store directory: uploads persist here and a restart recovers them (empty = in-memory only)")
	recoverWorkers := flag.Int("recover-workers", 0, "parallel entry loads during warm-restart recovery (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a signal-initiated drain waits for in-flight requests")
	traceRequests := flag.Int("trace-requests", obs.DefaultTraceCap, "completed request traces retained for /debug/requests (negative = tracing off)")
	eventsPath := flag.String("events", "", "append structured JSONL span, failure and access events to this file")
	faults := flag.String("faults", os.Getenv("SPARSEORDER_FAULTS"), "deterministic fault-injection spec (default $SPARSEORDER_FAULTS)")
	verbose := flag.Bool("v", false, "log per-request admission anomalies")
	flag.Parse()

	level := obs.LevelWarn
	if *verbose {
		level = obs.LevelInfo
	}
	lg := obs.NewLogger(os.Stderr, level, "serve: ")

	plan, err := faultinject.ParseSpec(*faults)
	if err != nil {
		lg.Errorf("-faults: %v", err)
		return exitFatal
	}
	if plan != nil {
		faultinject.Activate(plan)
		lg.Printf("fault injection armed: %s", *faults)
	}

	o := &obs.Obs{Metrics: obs.NewRegistry(), Log: lg}
	if *traceRequests >= 0 {
		o.Requests = obs.NewTraceRing(*traceRequests)
	}
	o.Metrics.AddCollector(obs.RuntimeCollector())
	if plan != nil {
		o.Metrics.AddCollector(faultinject.WritePrometheus)
	}
	if *eventsPath != "" {
		ev, err := obs.OpenEventLog(*eventsPath)
		if err != nil {
			lg.Errorf("%v", err)
			return exitFatal
		}
		defer func() {
			if err := ev.Close(); err != nil {
				lg.Errorf("event log: %v", err)
			}
		}()
		o.Events = ev
		lg.AttachEvents(ev)
	}

	cfg := server.Config{
		Threads:        *threads,
		ReorderWorkers: *reorderWorkers,
		IngestWorkers:  *ingestWorkers,
		Seed:           *seed,
		Deadline:       *deadline,
		MaxInflight:    *maxInflight,
		Queue:          *queue,
		CacheEntries:   *cacheEntries,
		StoreDir:       *storeDir,
		RecoverWorkers: *recoverWorkers,
		Obs:            o,
		Logf:           lg.Infof,
	}
	if cfg.MaxBody, err = experiments.ParseByteSize(*maxBody); err != nil {
		lg.Errorf("-max-body: %v", err)
		return exitFatal
	}
	switch *memBudget {
	case "auto", "":
		cfg.MemBudget = 0
	case "off":
		cfg.MemBudget = -1
	default:
		b, err := experiments.ParseByteSize(*memBudget)
		if err != nil {
			lg.Errorf("-membudget: %v", err)
			return exitFatal
		}
		cfg.MemBudget = b
	}

	srv, err := server.New(cfg)
	if err != nil {
		lg.Errorf("%v", err)
		return exitFatal
	}
	defer srv.Close()
	if g := srv.Governor(); g != nil {
		lg.Printf("memory governor: %s budget", experiments.FormatBytes(g.Budget()))
	} else {
		lg.Printf("memory governor off (cache bounded to %d entries)", *cacheEntries)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	lg.Printf("serving on %s (POST /matrices, POST /spmv/{key}; /metrics, /debug/requests, /healthz, /readyz)", *addr)

	// Warm-restart recovery runs behind the live listener: /readyz answers
	// "recovering" (503) until the persisted plans are rebuilt, while
	// /healthz — and the API itself, at worst cache-cold — serve throughout.
	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	if *storeDir != "" {
		lg.Printf("durable plan store: %s (recovering in background)", *storeDir)
		go func() {
			st, err := srv.Recover(rctx)
			if err != nil && rctx.Err() == nil {
				lg.Errorf("store recovery: %v (serving cold)", err)
				return
			}
			lg.Printf("store recovery: %d recovered, %d quarantined, %d skipped of %d entries in %.3fs",
				st.Recovered, st.Quarantined, st.Skipped, st.Scanned, st.Seconds)
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		// ListenAndServe never returns nil; anything before a signal is a
		// bind or accept failure.
		lg.Errorf("%v", err)
		return exitFatal
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us

	// Graceful drain: stop intake (readyz 503, API 503), finish in-flight
	// work, then close the listener. The order matters — BeginDrain first,
	// so requests queued inside the server are released with 503 before
	// Shutdown starts waiting on connections.
	lg.Printf("signal received; draining (timeout %v)", *drainTimeout)
	rcancel() // stop any in-progress recovery; its entries stay on disk
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := exitAborted
	if err := srv.WaitIdle(dctx); err != nil {
		lg.Errorf("%v", err)
		code = exitFatal
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		lg.Errorf("shutdown: %v", err)
		code = exitFatal
	}
	<-errc // ListenAndServe has returned ErrServerClosed
	lg.Printf("drained; exiting %d", code)
	return code
}
