// Command spmvbench measures sparse matrix-vector multiplication on the
// host with the study's two kernels (1D row split and 2D nonzero split),
// optionally after reordering, and also reports the eight machine models'
// predictions.
//
// Usage:
//
//	spmvbench [-alg Original|RCM|AMD|ND|GP|HP|Gray] [-threads N]
//	          [-repeats N] [-ingest-workers N] [-gen NAME | input.mtx]
//	          [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//
// With -gen, a named matrix from the synthetic collection is used instead
// of a Matrix Market file (run with -gen list to enumerate). Matrix Market
// files are ingested through the parallel streaming reader with
// -ingest-workers goroutines (0 = GOMAXPROCS); any worker count produces
// byte-identical matrices. -cpuprofile, -memprofile and -trace write the
// corresponding runtime profiles; the files are finalised on every exit
// path.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sparseorder/internal/gen"
	"sparseorder/internal/machine"
	"sparseorder/internal/metrics"
	"sparseorder/internal/obs"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
)

func main() {
	os.Exit(run())
}

func run() int {
	alg := flag.String("alg", "Original", "reordering to apply before the benchmark")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "host threads")
	repeats := flag.Int("repeats", 100, "timed iterations; the best run is reported (as in the paper)")
	genName := flag.String("gen", "", "use a named matrix from the synthetic collection ('list' to enumerate)")
	scaleName := flag.String("scale", "study", "collection scale for -gen: test, study or large")
	seed := flag.Int64("seed", 42, "collection seed")
	ingestWorkers := flag.Int("ingest-workers", 0, "workers for Matrix Market file ingestion (0 = GOMAXPROCS); any value gives identical matrices")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	lg := obs.NewLogger(os.Stderr, obs.LevelInfo, "spmvbench: ")

	// fail replaces log.Fatal: returning through run() lets the deferred
	// profile Stop finalise -cpuprofile/-trace files on error exits too.
	fail := func(format string, args ...any) int {
		lg.Errorf(format, args...)
		return 1
	}

	prof, err := obs.StartProfiles(*cpuprofile, *memprofile, *tracePath)
	if err != nil {
		return fail("%v", err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			lg.Errorf("profile: %v", err)
		}
	}()

	scale := gen.ScaleStudy
	switch *scaleName {
	case "test":
		scale = gen.ScaleTest
	case "large":
		scale = gen.ScaleLarge
	}

	var a *sparse.CSR
	switch {
	case *genName == "list":
		for _, m := range gen.Collection(scale, *seed) {
			fmt.Println(m.Describe())
		}
		return 0
	case *genName != "":
		for _, m := range gen.Collection(scale, *seed) {
			if m.Name == *genName {
				a = m.A
			}
		}
		if a == nil {
			return fail("no matrix named %q in the collection (use -gen list)", *genName)
		}
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return fail("%v", err)
		}
		a, err = sparse.ReadMatrixMarketWorkers(f, *ingestWorkers)
		f.Close()
		if err != nil {
			return fail("%v", err)
		}
	default:
		return fail("usage: spmvbench [-gen NAME | input.mtx]")
	}

	// The reordering and plan-construction steps go through the ctx-aware
	// entry points so the instrumented pipeline is the one profiled; with
	// no Obs attached the instrumentation resolves to nil and is free.
	ctx := context.Background()

	if *alg != string(reorder.Original) {
		start := time.Now()
		var err error
		a, _, err = reorder.ApplyCtx(ctx, reorder.Algorithm(*alg), a, reorder.Options{Seed: *seed})
		if err != nil {
			return fail("%v", err)
		}
		fmt.Printf("reordering (%s): %v\n", *alg, time.Since(start).Round(time.Microsecond))
	}

	fmt.Printf("matrix: %dx%d, %d nonzeros, ordering %s\n", a.Rows, a.Cols, a.NNZ(), *alg)
	f := metrics.Compute(a, *threads, *threads)
	fmt.Printf("features: bandwidth %d, profile %d, off-diagonal nnz %d (at %d blocks), 1D imbalance %.3f\n",
		f.Bandwidth, f.Profile, f.OffDiagNNZ, *threads, f.Imbalance1D)

	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, a.Rows)

	time1D := timeBest(*repeats, func() { spmv.Mul1D(a, x, y, *threads) })
	fmt.Printf("host 1D (%d threads): %v/iter, %.2f Gflop/s\n",
		*threads, time.Duration(float64(time.Second)*time1D), spmv.Gflops(a.NNZ(), time1D))

	plan, err := spmv.NewPlan2DCtx(ctx, a, *threads)
	if err != nil {
		return fail("%v", err)
	}
	time2D := timeBest(*repeats, func() { spmv.Mul2D(a, x, y, plan) })
	fmt.Printf("host 2D (%d threads): %v/iter, %.2f Gflop/s\n",
		*threads, time.Duration(float64(time.Second)*time2D), spmv.Gflops(a.NNZ(), time2D))

	mplan, err := spmv.NewPlanMergeCtx(ctx, a, *threads)
	if err != nil {
		return fail("%v", err)
	}
	timeMg := timeBest(*repeats, func() { spmv.MulMerge(a, x, y, mplan) })
	fmt.Printf("host merge (%d threads): %v/iter, %.2f Gflop/s\n",
		*threads, time.Duration(float64(time.Second)*timeMg), spmv.Gflops(a.NNZ(), timeMg))

	fmt.Println("\nmachine-model predictions:")
	fmt.Printf("%-10s %8s %12s %12s %10s\n", "machine", "threads", "1D Gflop/s", "2D Gflop/s", "imb(1D)")
	for _, m := range machine.Table2 {
		e1 := machine.EstimateSpMV(a, m, machine.Kernel1D)
		e2 := machine.EstimateSpMV(a, m, machine.Kernel2D)
		fmt.Printf("%-10s %8d %12.2f %12.2f %10.3f\n", m.Name, m.Cores, e1.Gflops, e2.Gflops, e1.Imbalance)
	}
	return 0
}

func timeBest(repeats int, f func()) float64 {
	best := 0.0
	for i := 0; i < repeats; i++ {
		start := time.Now()
		f()
		el := time.Since(start).Seconds()
		if best == 0 || el < best {
			best = el
		}
	}
	return best
}
