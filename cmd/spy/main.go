// Command spy renders the sparsity pattern of a matrix under each
// reordering — the visual comparison of the paper's Figure 1 — as ASCII
// art on stdout and, optionally, PGM images.
//
// Usage:
//
//	spy [-size N] [-algs RCM,ND,GP] [-pgm DIR] [-gen NAME | input.mtx]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"sparseorder/internal/gen"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
	"sparseorder/internal/spy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spy: ")
	size := flag.Int("size", 24, "pattern cells per side")
	algsFlag := flag.String("algs", "RCM,ND,GP", "comma-separated reorderings to show next to the original")
	pgmDir := flag.String("pgm", "", "also write PGM images to this directory")
	genName := flag.String("gen", "", "use a named matrix from the synthetic collection")
	seed := flag.Int64("seed", 42, "collection / partitioner seed")
	flag.Parse()

	var a *sparse.CSR
	name := *genName
	switch {
	case *genName != "":
		for _, m := range gen.Collection(gen.ScaleTest, *seed) {
			if m.Name == *genName {
				a = m.A
			}
		}
		if a == nil {
			log.Fatalf("no matrix named %q in the collection", *genName)
		}
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		a, err = sparse.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		name = filepath.Base(flag.Arg(0))
	default:
		log.Fatal("usage: spy [-gen NAME | input.mtx]")
	}

	labels := []string{"original"}
	matrices := []*sparse.CSR{a}
	for _, algName := range strings.Split(*algsFlag, ",") {
		alg := reorder.Algorithm(strings.TrimSpace(algName))
		b, _, err := reorder.Apply(alg, a, reorder.Options{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		labels = append(labels, string(alg))
		matrices = append(matrices, b)
	}

	fmt.Printf("%s: %dx%d, %d nonzeros\n", name, a.Rows, a.Cols, a.NNZ())
	fmt.Print(spy.SideBySide(labels, matrices, *size))

	if *pgmDir != "" {
		if err := os.MkdirAll(*pgmDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for i, m := range matrices {
			path := filepath.Join(*pgmDir, fmt.Sprintf("%s_%s.pgm", name, labels[i]))
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := spy.WritePGM(f, m, 256); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("wrote %d PGM images to %s", len(matrices), *pgmDir)
	}
}
