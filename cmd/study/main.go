// Command study regenerates the tables and figures of "Bringing Order to
// Sparsity" (SC '23) from the synthetic collection and machine models.
//
// Usage:
//
//	study [-exp all|fig1|fig2|fig3|fig4|fig5|fig6|table3|table4|table5|densecsr|benchreorder|benchingest|benchobs|artifact]
//	      [-scale test|study|large] [-seed N] [-out DIR] [-v]
//	      [-workers N] [-reorder-workers N] [-ingest-workers N] [-timeout D]
//	      [-checkpoint FILE] [-resume] [-retries N] [-membudget SIZE]
//	      [-http ADDR] [-http-linger D] [-events FILE] [-faults SPEC]
//	      [-cpuprofile FILE] [-memprofile FILE] [-trace FILE]
//	      [matrix.mtx ...]
//
// With no positional arguments the study runs on the generated synthetic
// collection selected by -scale and -seed. Positional arguments name
// Matrix Market files to evaluate instead; they are ingested through the
// parallel streaming reader with -ingest-workers goroutines per file
// (default 0 = GOMAXPROCS) and evaluated like collection matrices.
// Ingestion output is byte-identical at any worker count.
//
// Matrices are evaluated concurrently by -workers workers (default
// GOMAXPROCS); within each matrix, the reordering pipeline (graph
// construction, RCM, permutation application, features) uses
// -reorder-workers goroutines (default 1, 0 = GOMAXPROCS). Output is
// byte-identical for any worker counts. A matrix whose evaluation fails
// or exceeds -timeout is reported as a warning and skipped instead of
// aborting the study; -retries re-attempts timeouts and panics with a
// doubling backoff.
//
// With -checkpoint, every completed matrix is appended to FILE as a
// fsynced JSONL record; -resume reloads FILE (it must have been written
// by an identical configuration) and skips the matrices it records, so a
// killed run continues where it stopped and produces byte-identical
// results. All artifact files are written atomically (temp file + rename).
//
// -membudget bounds the estimated working-set bytes of concurrently
// admitted matrices: "auto" (the default) derives the budget from
// GOMEMLIMIT when one is set (and disables the governor otherwise), "off"
// disables it explicitly, and a size such as 512MiB or 2g sets it
// directly. A matrix whose estimate exceeds the budget is degraded — run
// alone with the worker pool drained — and one that cannot fit even alone
// is skipped with failure class "resource" instead of risking the OOM
// killer.
//
// -faults (default $SPARSEORDER_FAULTS) arms the deterministic
// fault-injection harness with a spec like
// "seed=7;reorder/order=error:0.4;journal/sync=error:1:5"; see package
// faultinject. It exists to rehearse crash recovery: injected failures
// exercise the same retry, journal and atomic-write paths as real ones,
// and the per-point fired counters appear on /metrics.
//
// With -http, a live telemetry endpoint is served on ADDR for the
// duration of the run: /metrics (Prometheus text format: per-phase span
// latency histograms, matrix outcome/failure-class counters),
// /progress (JSON: matrices done/queued/failed, ETA, current matrix per
// worker), /debug/pprof/* and /debug/vars. -http-linger keeps the
// endpoint alive for D after the run finishes so short runs can still be
// scraped. With -events, every span open/close and failure is appended
// to FILE as structured JSONL. -cpuprofile, -memprofile and -trace
// write the corresponding runtime profiles; the files are finalised on
// every exit path, including interrupt (exit 3) and partial failure
// (exit 2).
//
// -exp benchreorder measures the reordering hot path serial vs parallel —
// including the five ordering pipelines rcm/amd/nd/gp/hp — and prints the
// BENCH_reorder.json document (also written to -out DIR when given). The
// committed numbers are taken at -scale study; -scale test shrinks the
// bench matrices to CI-smoke sizes. -exp benchingest measures Matrix
// Market ingestion — the
// serial reference reader vs the parallel streaming pipeline — and prints
// BENCH_ingest.json. -exp benchobs measures the observability layer's
// disabled-path overhead and prints BENCH_obs.json.
//
// Results are printed to stdout; with -out, artifact-format data files
// (one per machine and kernel, as in the paper's Zenodo artifact) are also
// written to DIR, together with failures.txt summarising any failed
// matrices.
//
// Exit codes: 0 success; 1 fatal error; 2 the study completed but some
// matrices failed; 3 the run was aborted (SIGINT or SIGTERM; both drain
// gracefully, finalise profiles and leave a resumable checkpoint).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"sparseorder/internal/experiments"
	"sparseorder/internal/faultinject"
	"sparseorder/internal/fsutil"
	"sparseorder/internal/gen"
	"sparseorder/internal/machine"
	"sparseorder/internal/obs"
	"sparseorder/internal/server"
)

// Exit codes; distinct values let scripts tell partial results from an
// aborted run.
const (
	exitOK         = 0
	exitFatal      = 1
	exitSomeFailed = 2
	exitAborted    = 3
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	exp := flag.String("exp", "all", "experiment to run: all, fig1..fig6, table3..table5, densecsr, findings, artifact, benchreorder, benchingest, benchobs")
	scaleName := flag.String("scale", "test", "collection scale: test, study or large")
	seed := flag.Int64("seed", 42, "collection seed")
	out := flag.String("out", "", "directory for artifact-format data files")
	verbose := flag.Bool("v", false, "log per-matrix progress to stderr")
	repeats := flag.Int("repeats", 10, "host SpMV timing repetitions (best run is kept)")
	workers := flag.Int("workers", 0, "concurrent matrix evaluations (0 = GOMAXPROCS)")
	reorderWorkers := flag.Int("reorder-workers", 1, "workers for the per-matrix reordering pipeline (0 = GOMAXPROCS, 1 = serial); any value gives identical results")
	ingestWorkers := flag.Int("ingest-workers", 0, "workers for Matrix Market file ingestion (0 = GOMAXPROCS); any value gives identical matrices")
	timeout := flag.Duration("timeout", 0, "per-matrix evaluation timeout, e.g. 90s (0 = none)")
	checkpoint := flag.String("checkpoint", "", "journal file recording each completed matrix for crash-safe resume")
	resume := flag.Bool("resume", false, "resume from the -checkpoint journal, skipping matrices it records")
	retries := flag.Int("retries", 0, "additional attempts for matrices failing by timeout or panic")
	memBudget := flag.String("membudget", "auto", `working-set byte budget for concurrent matrices: "auto" (from GOMEMLIMIT), "off", or a size like 512MiB`)
	faults := flag.String("faults", os.Getenv("SPARSEORDER_FAULTS"), "deterministic fault-injection spec, e.g. seed=7;reorder/order=error:0.5 (default $SPARSEORDER_FAULTS)")
	httpAddr := flag.String("http", "", "serve /metrics, /progress and /debug/pprof on this address while the run is live")
	httpLinger := flag.Duration("http-linger", 0, "keep the -http endpoint alive this long after the run finishes")
	eventsPath := flag.String("events", "", "append structured JSONL span and failure events to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	// Level gating preserves the historical contract: per-matrix progress
	// is -v only, while warnings, errors and artifact announcements
	// (Printf) always reach stderr with the same "study: " prefix.
	level := obs.LevelWarn
	if *verbose {
		level = obs.LevelInfo
	}
	lg := obs.NewLogger(os.Stderr, level, "study: ")

	// The linger/close defer is registered first so it runs last: profiles
	// and the event log are finalised before the endpoint idles, and the
	// server stays scrapeable until the very end of the linger window. The
	// wait watches a dedicated signal channel, NOT the run's signal
	// context: that context's deferred stop() runs before this defer and
	// cancels it on every exit, which would silently skip the linger.
	var srv *http.Server
	sigC := make(chan os.Signal, 1)
	defer func() {
		if srv == nil {
			return
		}
		if *httpLinger > 0 {
			lg.Printf("run finished (exit %d); -http endpoint stays up for %v", code, *httpLinger)
			select {
			case <-time.After(*httpLinger):
			case <-sigC: // a signal (including one that aborted the run) cuts the linger short
			}
		}
		srv.Close()
	}()

	prof, err := obs.StartProfiles(*cpuprofile, *memprofile, *tracePath)
	if err != nil {
		lg.Errorf("%v", err)
		return exitFatal
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			lg.Errorf("profile: %v", err)
		}
	}()

	var scale gen.Scale
	switch *scaleName {
	case "test":
		scale = gen.ScaleTest
	case "study":
		scale = gen.ScaleStudy
	case "large":
		scale = gen.ScaleLarge
	default:
		lg.Errorf("unknown scale %q", *scaleName)
		return exitFatal
	}
	rw := *reorderWorkers
	if rw == 0 {
		rw = runtime.GOMAXPROCS(0)
	}
	cfg := experiments.Config{
		Scale:          scale,
		Seed:           *seed,
		Repeats:        *repeats,
		Workers:        *workers,
		ReorderWorkers: rw,
		IngestWorkers:  *ingestWorkers,
		Timeout:        *timeout,
		Retries:        *retries,
		Logf:           lg.Infof, // level-gated: silent unless -v
	}
	switch *memBudget {
	case "auto", "":
		cfg.MemBudget = 0
	case "off":
		cfg.MemBudget = -1
	default:
		b, err := experiments.ParseByteSize(*memBudget)
		if err != nil {
			lg.Errorf("-membudget: %v", err)
			return exitFatal
		}
		cfg.MemBudget = b
	}

	// Fault injection is armed before any instrumented code can run, so
	// the spec covers journal creation and corpus loading too.
	plan, err := faultinject.ParseSpec(*faults)
	if err != nil {
		lg.Errorf("-faults: %v", err)
		return exitFatal
	}
	if plan != nil {
		// The plan stays armed for the life of the process — never
		// deferred-deactivated here, or the fired counters would vanish
		// from /metrics during the -http-linger window.
		faultinject.Activate(plan)
		lg.Printf("fault injection armed: %s", *faults)
	}

	// The observability sinks are built only when a consumer asked for
	// them; otherwise cfg.Obs stays nil and the instrumented stack runs on
	// its zero-allocation disabled path.
	if *httpAddr != "" || *eventsPath != "" {
		o := &obs.Obs{
			Metrics:  obs.NewRegistry(),
			Progress: obs.NewProgress(),
			Log:      lg,
		}
		o.Metrics.AddCollector(obs.RuntimeCollector())
		if plan != nil {
			// Fired-counter truth lives in the plan; render it at scrape
			// time instead of mirroring every hit into registry handles.
			o.Metrics.AddCollector(faultinject.WritePrometheus)
		}
		if *eventsPath != "" {
			ev, err := obs.OpenEventLog(*eventsPath)
			if err != nil {
				lg.Errorf("%v", err)
				return exitFatal
			}
			defer func() {
				if err := ev.Close(); err != nil {
					lg.Errorf("event log: %v", err)
				}
			}()
			o.Events = ev
			lg.AttachEvents(ev)
		}
		if *httpAddr != "" {
			s, addr, err := obs.Serve(*httpAddr, o)
			if err != nil {
				lg.Errorf("%v", err)
				return exitFatal
			}
			srv = s
			lg.Printf("telemetry on http://%s/ (metrics, progress, pprof)", addr)
		}
		cfg.Obs = o
	}

	if *resume && *checkpoint == "" {
		lg.Errorf("-resume requires -checkpoint")
		return exitFatal
	}
	if *checkpoint != "" {
		j, err := openJournal(*checkpoint, *resume, cfg)
		if err != nil {
			lg.Errorf("%v", err)
			return exitFatal
		}
		// A journal that cannot be synced and closed is not a trustworthy
		// checkpoint, whatever the run printed: surface the error and force
		// the fatal exit code so callers do not -resume from it blindly.
		defer func() {
			if cerr := j.Close(); cerr != nil {
				lg.Errorf("%v", cerr)
				code = exitFatal
			}
		}()
		cfg.Journal = j
	}

	// Ctrl-C or SIGTERM (the shutdown signal sent by kill, timeout(1) and
	// every container runtime) cancels the study; workers stop at their
	// next checkpoint and the run exits 3 with a resumable journal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	signal.Notify(sigC, os.Interrupt, syscall.SIGTERM)

	want := func(name string) bool { return *exp == "all" || *exp == name }

	// Experiments that need the full study run.
	needStudy := *exp == "all" || (*out != "" && *exp != "benchreorder" && *exp != "benchingest" && *exp != "benchobs")
	for _, name := range []string{"fig2", "fig3", "fig5", "fig6", "table3", "table4", "artifact", "findings"} {
		if *exp == name {
			needStudy = true
		}
	}
	var s *experiments.StudyResult
	if needStudy {
		start := time.Now()
		var err error
		if flag.NArg() > 0 {
			// Positional arguments switch the study to a Matrix Market file
			// corpus: ingest every file through the parallel pipeline, then
			// evaluate the result exactly like the generated collection.
			ms, lerr := experiments.LoadMatrixFiles(ctx, cfg, flag.Args())
			if lerr != nil {
				lg.Errorf("%v", lerr)
				return exitFatal
			}
			s, err = experiments.RunStudyMatrices(ctx, cfg, ms)
		} else {
			s, err = experiments.RunStudyContext(ctx, cfg)
		}
		if errors.Is(err, context.Canceled) {
			lg.Warnf("run aborted; completed matrices are in the checkpoint journal (use -resume to continue)")
			return exitAborted
		}
		if err != nil {
			lg.Errorf("%v", err)
			return exitFatal
		}
		for i := range s.Failures {
			lg.Warnf("warning: matrix failed: %v", &s.Failures[i])
		}
		if len(s.Matrices) == 0 {
			lg.Errorf("no matrix evaluated successfully (%d failures)", len(s.Failures))
			return exitFatal
		}
		lg.Infof("study: %d matrices, %d failures in %v",
			len(s.Matrices), len(s.Failures), time.Since(start).Round(time.Millisecond))
	}

	emit := func(text string, err error) {
		if err != nil {
			lg.Errorf("%v", err)
			code = exitFatal
			return
		}
		fmt.Println(text)
	}

	if want("fig1") {
		emit(experiments.RenderFig1(cfg))
	}
	if want("fig2") {
		fmt.Println(experiments.RenderFig2(s))
	}
	if want("table3") {
		fmt.Println(experiments.RenderTable3(s))
	}
	if want("fig3") {
		fmt.Println(experiments.RenderFig3(s))
	}
	if want("table4") {
		fmt.Println(experiments.RenderTable4(s))
	}
	if want("fig4") {
		emit(experiments.RenderFig4(cfg))
	}
	if want("fig5") {
		emit(experiments.RenderFig5(s))
	}
	if want("fig6") {
		fmt.Println(experiments.RenderFig6(s))
	}
	if want("table5") {
		emit(experiments.RenderTable5(cfg))
	}
	if want("densecsr") {
		fmt.Println(experiments.RenderDenseCSRRef(cfg))
	}
	if code != exitOK {
		return code
	}
	// The bench experiments are explicit-only: they measure wall clock on
	// fixed-size inputs and would slow "all" runs without adding to the
	// tables.
	if *exp == "benchreorder" {
		counts := []int{1, 2, 4}
		if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
			counts = append(counts, g)
		}
		bench, err := experiments.RunReorderBench(
			experiments.ReorderBenchMatrices(*seed, scale), counts, *repeats)
		if err != nil {
			lg.Errorf("%v", err)
			return exitFatal
		}
		text, err := experiments.RenderReorderBench(bench)
		if err != nil {
			lg.Errorf("%v", err)
			return exitFatal
		}
		fmt.Print(text)
		if werr := writeBenchFile(*out, "BENCH_reorder.json", text, lg); werr != nil {
			return exitFatal
		}
	}
	if *exp == "benchingest" {
		counts := []int{1, 2, 4}
		if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
			counts = append(counts, g)
		}
		bench, err := experiments.RunIngestBench(
			experiments.IngestBenchMatrices(*seed), counts, *repeats)
		if err != nil {
			lg.Errorf("%v", err)
			return exitFatal
		}
		text, err := experiments.RenderIngestBench(bench)
		if err != nil {
			lg.Errorf("%v", err)
			return exitFatal
		}
		fmt.Print(text)
		if werr := writeBenchFile(*out, "BENCH_ingest.json", text, lg); werr != nil {
			return exitFatal
		}
	}
	if *exp == "benchobs" {
		bench, err := experiments.RunObsBench(*seed, *repeats)
		if err != nil {
			lg.Errorf("%v", err)
			return exitFatal
		}
		if bench.Serving, err = server.RunServingBench(); err != nil {
			lg.Errorf("%v", err)
			return exitFatal
		}
		text, err := experiments.RenderObsBench(bench)
		if err != nil {
			lg.Errorf("%v", err)
			return exitFatal
		}
		fmt.Print(text)
		if werr := writeBenchFile(*out, "BENCH_obs.json", text, lg); werr != nil {
			return exitFatal
		}
	}
	if want("findings") {
		emit(experiments.RenderFindings(s))
	}
	if code != exitOK {
		return code
	}

	if s != nil && (*out != "" || *exp == "artifact") {
		dir := *out
		if dir == "" {
			dir = "artifact"
		}
		if err := writeArtifacts(dir, s); err != nil {
			lg.Errorf("%v", err)
			return exitFatal
		}
		lg.Printf("wrote artifact files to %s", dir)
	}

	if s != nil && len(s.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "study: %d of %d matrices failed:\n",
			len(s.Failures), len(s.Failures)+len(s.Matrices))
		for i := range s.Failures {
			f := &s.Failures[i]
			msg := f.Error()
			if nl := strings.IndexByte(msg, '\n'); nl >= 0 {
				msg = msg[:nl] // stacks go to failures.txt, not the summary
			}
			fmt.Fprintf(os.Stderr, "  %s (class %s, %d attempts): %s\n",
				f.Name, f.Class, f.Attempts, msg)
		}
		return exitSomeFailed
	}
	return code
}

// writeBenchFile writes a benchmark JSON document under -out (no-op when
// -out is empty), announcing the path on success.
func writeBenchFile(dir, name, text string, lg *obs.Logger) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		lg.Errorf("%v", err)
		return err
	}
	path := filepath.Join(dir, name)
	if err := fsutil.WriteFileAtomic(path, []byte(text), 0o644); err != nil {
		lg.Errorf("%v", err)
		return err
	}
	lg.Printf("wrote %s", path)
	return nil
}

// openJournal creates or (with resume) reloads the checkpoint journal.
// Resuming with no journal on disk starts a fresh one, so the same command
// line works for the first run and every restart.
func openJournal(path string, resume bool, cfg experiments.Config) (*experiments.Journal, error) {
	if resume {
		if _, err := os.Stat(path); err == nil {
			return experiments.LoadJournal(path, cfg)
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	return experiments.CreateJournal(path, cfg)
}

// writeArtifacts renders every artifact file atomically: readers (and
// interrupted runs) see either the complete previous file or the complete
// new one, never a torn write.
func writeArtifacts(dir string, s *experiments.StudyResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, render func(*bytes.Buffer) error) error {
		var buf bytes.Buffer
		if err := render(&buf); err != nil {
			return err
		}
		return fsutil.WriteFileAtomic(filepath.Join(dir, name), buf.Bytes(), 0o644)
	}
	for _, mc := range machine.Table2 {
		for _, k := range []machine.Kernel{machine.Kernel1D, machine.Kernel2D} {
			name := fmt.Sprintf("csr%s_%s.txt", strings.ToLower(k.String()),
				strings.ReplaceAll(strings.ToLower(mc.Name), " ", ""))
			mcName, kk := mc.Name, k
			if err := write(name, func(buf *bytes.Buffer) error {
				return experiments.WriteArtifactFile(buf, s, mcName, kk)
			}); err != nil {
				return err
			}
		}
	}
	// Gnuplot pipeline for Figures 2 and 3, as in the paper's artifact.
	for _, k := range []machine.Kernel{machine.Kernel1D, machine.Kernel2D} {
		fig := "fig2"
		if k == machine.Kernel2D {
			fig = "fig3"
		}
		datName := fig + "_speedups.dat"
		kk := k
		if err := write(datName, func(buf *bytes.Buffer) error {
			return experiments.WriteSpeedupDat(buf, s, kk)
		}); err != nil {
			return err
		}
		title := "Speedup of " + k.String() + " SpMV after reordering"
		figName, dat := fig, datName
		if err := write(fig+".gp", func(buf *bytes.Buffer) error {
			return experiments.WriteSpeedupGnuplot(buf, dat, figName+".png", title)
		}); err != nil {
			return err
		}
	}
	return write("failures.txt", func(buf *bytes.Buffer) error {
		return experiments.WriteFailureReport(buf, s.Failures)
	})
}
