// Command study regenerates the tables and figures of "Bringing Order to
// Sparsity" (SC '23) from the synthetic collection and machine models.
//
// Usage:
//
//	study [-exp all|fig1|fig2|fig3|fig4|fig5|fig6|table3|table4|table5|densecsr|benchreorder|artifact]
//	      [-scale test|study|large] [-seed N] [-out DIR] [-v]
//	      [-workers N] [-reorder-workers N] [-timeout D]
//
// Matrices are evaluated concurrently by -workers workers (default
// GOMAXPROCS); within each matrix, the reordering pipeline (graph
// construction, RCM, permutation application, features) uses
// -reorder-workers goroutines (default 1, 0 = GOMAXPROCS). Output is
// byte-identical for any worker counts. A matrix whose evaluation fails
// or exceeds -timeout is reported as a warning and skipped instead of
// aborting the study.
//
// -exp benchreorder measures the reordering hot path serial vs parallel
// and prints the BENCH_reorder.json document (also written to -out DIR
// when given).
//
// Results are printed to stdout; with -out, artifact-format data files
// (one per machine and kernel, as in the paper's Zenodo artifact) are also
// written to DIR.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"sparseorder/internal/experiments"
	"sparseorder/internal/gen"
	"sparseorder/internal/machine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("study: ")
	exp := flag.String("exp", "all", "experiment to run: all, fig1..fig6, table3..table5, densecsr, findings, artifact")
	scaleName := flag.String("scale", "test", "collection scale: test, study or large")
	seed := flag.Int64("seed", 42, "collection seed")
	out := flag.String("out", "", "directory for artifact-format data files")
	verbose := flag.Bool("v", false, "log per-matrix progress to stderr")
	repeats := flag.Int("repeats", 10, "host SpMV timing repetitions (best run is kept)")
	workers := flag.Int("workers", 0, "concurrent matrix evaluations (0 = GOMAXPROCS)")
	reorderWorkers := flag.Int("reorder-workers", 1, "workers for the per-matrix reordering pipeline (0 = GOMAXPROCS, 1 = serial); any value gives identical results")
	timeout := flag.Duration("timeout", 0, "per-matrix evaluation timeout, e.g. 90s (0 = none)")
	flag.Parse()

	var scale gen.Scale
	switch *scaleName {
	case "test":
		scale = gen.ScaleTest
	case "study":
		scale = gen.ScaleStudy
	case "large":
		scale = gen.ScaleLarge
	default:
		log.Fatalf("unknown scale %q", *scaleName)
	}
	rw := *reorderWorkers
	if rw == 0 {
		rw = runtime.GOMAXPROCS(0)
	}
	cfg := experiments.Config{
		Scale:          scale,
		Seed:           *seed,
		Repeats:        *repeats,
		Workers:        *workers,
		ReorderWorkers: rw,
		Timeout:        *timeout,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) { log.Printf(format, args...) }
	}

	// Ctrl-C cancels the study; workers stop at their next checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	want := func(name string) bool { return *exp == "all" || *exp == name }

	// Experiments that need the full study run.
	needStudy := *exp == "all" || (*out != "" && *exp != "benchreorder")
	for _, name := range []string{"fig2", "fig3", "fig5", "fig6", "table3", "table4", "artifact", "findings"} {
		if *exp == name {
			needStudy = true
		}
	}
	var s *experiments.StudyResult
	if needStudy {
		start := time.Now()
		var err error
		s, err = experiments.RunStudyContext(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for i := range s.Failures {
			log.Printf("warning: matrix failed: %v", &s.Failures[i])
		}
		if len(s.Matrices) == 0 {
			log.Fatalf("no matrix evaluated successfully (%d failures)", len(s.Failures))
		}
		if *verbose {
			log.Printf("study: %d matrices, %d failures in %v",
				len(s.Matrices), len(s.Failures), time.Since(start).Round(time.Millisecond))
		}
	}

	emit := func(text string, err error) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(text)
	}

	if want("fig1") {
		emit(experiments.RenderFig1(cfg))
	}
	if want("fig2") {
		fmt.Println(experiments.RenderFig2(s))
	}
	if want("table3") {
		fmt.Println(experiments.RenderTable3(s))
	}
	if want("fig3") {
		fmt.Println(experiments.RenderFig3(s))
	}
	if want("table4") {
		fmt.Println(experiments.RenderTable4(s))
	}
	if want("fig4") {
		emit(experiments.RenderFig4(cfg))
	}
	if want("fig5") {
		emit(experiments.RenderFig5(s))
	}
	if want("fig6") {
		fmt.Println(experiments.RenderFig6(s))
	}
	if want("table5") {
		emit(experiments.RenderTable5(cfg))
	}
	if want("densecsr") {
		fmt.Println(experiments.RenderDenseCSRRef(cfg))
	}
	// benchreorder is explicit-only: it measures wall clock on fixed-size
	// inputs and would slow "all" runs without adding to the tables.
	if *exp == "benchreorder" {
		counts := []int{1, 2, 4}
		if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
			counts = append(counts, g)
		}
		bench, err := experiments.RunReorderBench(
			experiments.ReorderBenchMatrices(*seed), counts, *repeats)
		if err != nil {
			log.Fatal(err)
		}
		text, err := experiments.RenderReorderBench(bench)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(text)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(*out, "BENCH_reorder.json"), []byte(text), 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", filepath.Join(*out, "BENCH_reorder.json"))
		}
	}
	if want("findings") {
		emit(experiments.RenderFindings(s))
	}

	if s != nil && (*out != "" || *exp == "artifact") {
		dir := *out
		if dir == "" {
			dir = "artifact"
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, mc := range machine.Table2 {
			for _, k := range []machine.Kernel{machine.Kernel1D, machine.Kernel2D} {
				name := fmt.Sprintf("csr%s_%s.txt", strings.ToLower(k.String()),
					strings.ReplaceAll(strings.ToLower(mc.Name), " ", ""))
				f, err := os.Create(filepath.Join(dir, name))
				if err != nil {
					log.Fatal(err)
				}
				if err := experiments.WriteArtifactFile(f, s, mc.Name, k); err != nil {
					log.Fatal(err)
				}
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
			}
		}
		// Gnuplot pipeline for Figures 2 and 3, as in the paper's artifact.
		for _, k := range []machine.Kernel{machine.Kernel1D, machine.Kernel2D} {
			fig := "fig2"
			if k == machine.Kernel2D {
				fig = "fig3"
			}
			datName := fig + "_speedups.dat"
			df, err := os.Create(filepath.Join(dir, datName))
			if err != nil {
				log.Fatal(err)
			}
			if err := experiments.WriteSpeedupDat(df, s, k); err != nil {
				log.Fatal(err)
			}
			if err := df.Close(); err != nil {
				log.Fatal(err)
			}
			gf, err := os.Create(filepath.Join(dir, fig+".gp"))
			if err != nil {
				log.Fatal(err)
			}
			title := "Speedup of " + k.String() + " SpMV after reordering"
			if err := experiments.WriteSpeedupGnuplot(gf, datName, fig+".png", title); err != nil {
				log.Fatal(err)
			}
			if err := gf.Close(); err != nil {
				log.Fatal(err)
			}
		}
		log.Printf("wrote artifact files to %s", dir)
	}
}
