// Command study regenerates the tables and figures of "Bringing Order to
// Sparsity" (SC '23) from the synthetic collection and machine models.
//
// Usage:
//
//	study [-exp all|fig1|fig2|fig3|fig4|fig5|fig6|table3|table4|table5|densecsr|benchreorder|artifact]
//	      [-scale test|study|large] [-seed N] [-out DIR] [-v]
//	      [-workers N] [-reorder-workers N] [-timeout D]
//	      [-checkpoint FILE] [-resume] [-retries N]
//
// Matrices are evaluated concurrently by -workers workers (default
// GOMAXPROCS); within each matrix, the reordering pipeline (graph
// construction, RCM, permutation application, features) uses
// -reorder-workers goroutines (default 1, 0 = GOMAXPROCS). Output is
// byte-identical for any worker counts. A matrix whose evaluation fails
// or exceeds -timeout is reported as a warning and skipped instead of
// aborting the study; -retries re-attempts timeouts and panics with a
// doubling backoff.
//
// With -checkpoint, every completed matrix is appended to FILE as a
// fsynced JSONL record; -resume reloads FILE (it must have been written
// by an identical configuration) and skips the matrices it records, so a
// killed run continues where it stopped and produces byte-identical
// results. All artifact files are written atomically (temp file + rename).
//
// -exp benchreorder measures the reordering hot path serial vs parallel
// and prints the BENCH_reorder.json document (also written to -out DIR
// when given).
//
// Results are printed to stdout; with -out, artifact-format data files
// (one per machine and kernel, as in the paper's Zenodo artifact) are also
// written to DIR, together with failures.txt summarising any failed
// matrices.
//
// Exit codes: 0 success; 1 fatal error; 2 the study completed but some
// matrices failed; 3 the run was aborted (interrupt).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"sparseorder/internal/experiments"
	"sparseorder/internal/fsutil"
	"sparseorder/internal/gen"
	"sparseorder/internal/machine"
)

// Exit codes; distinct values let scripts tell partial results from an
// aborted run.
const (
	exitOK         = 0
	exitFatal      = 1
	exitSomeFailed = 2
	exitAborted    = 3
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("study: ")
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment to run: all, fig1..fig6, table3..table5, densecsr, findings, artifact")
	scaleName := flag.String("scale", "test", "collection scale: test, study or large")
	seed := flag.Int64("seed", 42, "collection seed")
	out := flag.String("out", "", "directory for artifact-format data files")
	verbose := flag.Bool("v", false, "log per-matrix progress to stderr")
	repeats := flag.Int("repeats", 10, "host SpMV timing repetitions (best run is kept)")
	workers := flag.Int("workers", 0, "concurrent matrix evaluations (0 = GOMAXPROCS)")
	reorderWorkers := flag.Int("reorder-workers", 1, "workers for the per-matrix reordering pipeline (0 = GOMAXPROCS, 1 = serial); any value gives identical results")
	timeout := flag.Duration("timeout", 0, "per-matrix evaluation timeout, e.g. 90s (0 = none)")
	checkpoint := flag.String("checkpoint", "", "journal file recording each completed matrix for crash-safe resume")
	resume := flag.Bool("resume", false, "resume from the -checkpoint journal, skipping matrices it records")
	retries := flag.Int("retries", 0, "additional attempts for matrices failing by timeout or panic")
	flag.Parse()

	var scale gen.Scale
	switch *scaleName {
	case "test":
		scale = gen.ScaleTest
	case "study":
		scale = gen.ScaleStudy
	case "large":
		scale = gen.ScaleLarge
	default:
		log.Printf("unknown scale %q", *scaleName)
		return exitFatal
	}
	rw := *reorderWorkers
	if rw == 0 {
		rw = runtime.GOMAXPROCS(0)
	}
	cfg := experiments.Config{
		Scale:          scale,
		Seed:           *seed,
		Repeats:        *repeats,
		Workers:        *workers,
		ReorderWorkers: rw,
		Timeout:        *timeout,
		Retries:        *retries,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) { log.Printf(format, args...) }
	}

	if *resume && *checkpoint == "" {
		log.Print("-resume requires -checkpoint")
		return exitFatal
	}
	if *checkpoint != "" {
		j, err := openJournal(*checkpoint, *resume, cfg)
		if err != nil {
			log.Print(err)
			return exitFatal
		}
		defer j.Close()
		cfg.Journal = j
	}

	// Ctrl-C cancels the study; workers stop at their next checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	want := func(name string) bool { return *exp == "all" || *exp == name }

	// Experiments that need the full study run.
	needStudy := *exp == "all" || (*out != "" && *exp != "benchreorder")
	for _, name := range []string{"fig2", "fig3", "fig5", "fig6", "table3", "table4", "artifact", "findings"} {
		if *exp == name {
			needStudy = true
		}
	}
	var s *experiments.StudyResult
	if needStudy {
		start := time.Now()
		var err error
		s, err = experiments.RunStudyContext(ctx, cfg)
		if errors.Is(err, context.Canceled) {
			log.Print("run aborted; completed matrices are in the checkpoint journal (use -resume to continue)")
			return exitAborted
		}
		if err != nil {
			log.Print(err)
			return exitFatal
		}
		for i := range s.Failures {
			log.Printf("warning: matrix failed: %v", &s.Failures[i])
		}
		if len(s.Matrices) == 0 {
			log.Printf("no matrix evaluated successfully (%d failures)", len(s.Failures))
			return exitFatal
		}
		if *verbose {
			log.Printf("study: %d matrices, %d failures in %v",
				len(s.Matrices), len(s.Failures), time.Since(start).Round(time.Millisecond))
		}
	}

	code := exitOK
	emit := func(text string, err error) {
		if err != nil {
			log.Print(err)
			code = exitFatal
			return
		}
		fmt.Println(text)
	}

	if want("fig1") {
		emit(experiments.RenderFig1(cfg))
	}
	if want("fig2") {
		fmt.Println(experiments.RenderFig2(s))
	}
	if want("table3") {
		fmt.Println(experiments.RenderTable3(s))
	}
	if want("fig3") {
		fmt.Println(experiments.RenderFig3(s))
	}
	if want("table4") {
		fmt.Println(experiments.RenderTable4(s))
	}
	if want("fig4") {
		emit(experiments.RenderFig4(cfg))
	}
	if want("fig5") {
		emit(experiments.RenderFig5(s))
	}
	if want("fig6") {
		fmt.Println(experiments.RenderFig6(s))
	}
	if want("table5") {
		emit(experiments.RenderTable5(cfg))
	}
	if want("densecsr") {
		fmt.Println(experiments.RenderDenseCSRRef(cfg))
	}
	if code != exitOK {
		return code
	}
	// benchreorder is explicit-only: it measures wall clock on fixed-size
	// inputs and would slow "all" runs without adding to the tables.
	if *exp == "benchreorder" {
		counts := []int{1, 2, 4}
		if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
			counts = append(counts, g)
		}
		bench, err := experiments.RunReorderBench(
			experiments.ReorderBenchMatrices(*seed), counts, *repeats)
		if err != nil {
			log.Print(err)
			return exitFatal
		}
		text, err := experiments.RenderReorderBench(bench)
		if err != nil {
			log.Print(err)
			return exitFatal
		}
		fmt.Print(text)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				log.Print(err)
				return exitFatal
			}
			path := filepath.Join(*out, "BENCH_reorder.json")
			if err := fsutil.WriteFileAtomic(path, []byte(text), 0o644); err != nil {
				log.Print(err)
				return exitFatal
			}
			log.Printf("wrote %s", path)
		}
	}
	if want("findings") {
		emit(experiments.RenderFindings(s))
	}
	if code != exitOK {
		return code
	}

	if s != nil && (*out != "" || *exp == "artifact") {
		dir := *out
		if dir == "" {
			dir = "artifact"
		}
		if err := writeArtifacts(dir, s); err != nil {
			log.Print(err)
			return exitFatal
		}
		log.Printf("wrote artifact files to %s", dir)
	}

	if s != nil && len(s.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "study: %d of %d matrices failed:\n",
			len(s.Failures), len(s.Failures)+len(s.Matrices))
		for i := range s.Failures {
			f := &s.Failures[i]
			msg := f.Error()
			if nl := strings.IndexByte(msg, '\n'); nl >= 0 {
				msg = msg[:nl] // stacks go to failures.txt, not the summary
			}
			fmt.Fprintf(os.Stderr, "  %s (class %s, %d attempts): %s\n",
				f.Name, f.Class, f.Attempts, msg)
		}
		return exitSomeFailed
	}
	return code
}

// openJournal creates or (with resume) reloads the checkpoint journal.
// Resuming with no journal on disk starts a fresh one, so the same command
// line works for the first run and every restart.
func openJournal(path string, resume bool, cfg experiments.Config) (*experiments.Journal, error) {
	if resume {
		if _, err := os.Stat(path); err == nil {
			return experiments.LoadJournal(path, cfg)
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	return experiments.CreateJournal(path, cfg)
}

// writeArtifacts renders every artifact file atomically: readers (and
// interrupted runs) see either the complete previous file or the complete
// new one, never a torn write.
func writeArtifacts(dir string, s *experiments.StudyResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, render func(*bytes.Buffer) error) error {
		var buf bytes.Buffer
		if err := render(&buf); err != nil {
			return err
		}
		return fsutil.WriteFileAtomic(filepath.Join(dir, name), buf.Bytes(), 0o644)
	}
	for _, mc := range machine.Table2 {
		for _, k := range []machine.Kernel{machine.Kernel1D, machine.Kernel2D} {
			name := fmt.Sprintf("csr%s_%s.txt", strings.ToLower(k.String()),
				strings.ReplaceAll(strings.ToLower(mc.Name), " ", ""))
			mcName, kk := mc.Name, k
			if err := write(name, func(buf *bytes.Buffer) error {
				return experiments.WriteArtifactFile(buf, s, mcName, kk)
			}); err != nil {
				return err
			}
		}
	}
	// Gnuplot pipeline for Figures 2 and 3, as in the paper's artifact.
	for _, k := range []machine.Kernel{machine.Kernel1D, machine.Kernel2D} {
		fig := "fig2"
		if k == machine.Kernel2D {
			fig = "fig3"
		}
		datName := fig + "_speedups.dat"
		kk := k
		if err := write(datName, func(buf *bytes.Buffer) error {
			return experiments.WriteSpeedupDat(buf, s, kk)
		}); err != nil {
			return err
		}
		title := "Speedup of " + k.String() + " SpMV after reordering"
		figName, dat := fig, datName
		if err := write(fig+".gp", func(buf *bytes.Buffer) error {
			return experiments.WriteSpeedupGnuplot(buf, dat, figName+".png", title)
		}); err != nil {
			return err
		}
	}
	return write("failures.txt", func(buf *bytes.Buffer) error {
		return experiments.WriteFailureReport(buf, s.Failures)
	})
}
