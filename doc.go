// Package sparseorder is a from-scratch Go reproduction of the SC '23
// study "Bringing Order to Sparsity: A Sparse Matrix Reordering Study on
// Multicore CPUs" (Trotter, Ekmekçibaşı, Langguth, Torun, Düzakın, Ilic,
// Unat; https://doi.org/10.1145/3581784.3607046).
//
// The package exposes everything the study builds on:
//
//   - CSR/COO sparse matrices with Matrix Market I/O and symmetric,
//     row-only and column permutations;
//   - the six reordering algorithms of the study — Reverse Cuthill-McKee,
//     approximate minimum degree, nested dissection, METIS-style graph
//     partitioning, PaToH-style column-net hypergraph partitioning and the
//     Gray (bitmap) ordering — all implemented here with the standard
//     library only;
//   - the two shared-memory parallel SpMV kernels (1D even row split and
//     2D even nonzero split);
//   - the order-sensitive features (bandwidth, profile, off-diagonal
//     nonzero count, load-imbalance factor);
//   - Cholesky fill-in analysis via elimination trees and the
//     Gilbert-Ng-Peyton column counts;
//   - models of the study's eight multicore machines for reproducing the
//     cross-architecture experiments, and a deterministic synthetic matrix
//     collection standing in for the SuiteSparse corpus.
//
// The quickest start:
//
//	a := sparseorder.Collection(sparseorder.ScaleTest, 42)[0].A
//	b, perm, err := sparseorder.Reorder(sparseorder.GP, a, sparseorder.OrderingOptions{})
//	// multiply: y = b·x with the nonzero-balanced kernel
//	plan, _ := sparseorder.NewPlan2D(b, 8)
//	sparseorder.SpMV2D(b, x, y, plan)
//	_ = perm
//	_ = err
//
// The experiment harness that regenerates every table and figure of the
// paper lives in cmd/study; DESIGN.md maps each experiment to the modules
// that implement it and EXPERIMENTS.md records reproduced-vs-paper
// results.
package sparseorder
