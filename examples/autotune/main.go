// autotune sketches the paper's future-work direction (§6): predicting the
// best reordering per matrix from cheap order-sensitive features instead
// of trying all of them. It scores every ordering of every collection
// matrix with the machine model, then evaluates a simple feature-based
// decision rule against the oracle and against always-GP (the study's
// static recommendation).
package main

import (
	"fmt"
	"log"

	"sparseorder/internal/gen"
	"sparseorder/internal/machine"
	"sparseorder/internal/metrics"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
	"sparseorder/internal/stats"
)

func main() {
	log.SetFlags(0)
	machine.CacheScale = machine.CacheScaleFor(gen.ScaleTest.Factor())
	milan, _ := machine.ByName("Milan B")
	coll := gen.Collection(gen.ScaleTest, 42)

	fmt.Printf("%-18s %8s %-8s %8s %-8s %8s\n",
		"matrix", "imb-1D", "oracle", "speedup", "rule", "speedup")

	var oracleSp, ruleSp, gpSp []float64
	for _, m := range coll {
		base := machine.EstimateSpMV(m.A, milan, machine.Kernel1D)

		speedup := map[reorder.Algorithm]float64{}
		for _, alg := range reorder.Algorithms {
			b, _, err := reorder.Apply(alg, m.A, reorder.Options{Seed: 42, Parts: milan.Cores})
			if err != nil {
				log.Fatal(err)
			}
			e := machine.EstimateSpMV(b, milan, machine.Kernel1D)
			speedup[alg] = e.Gflops / base.Gflops
		}

		oracle := reorder.Algorithms[0]
		for _, alg := range reorder.Algorithms {
			if speedup[alg] > speedup[oracle] {
				oracle = alg
			}
		}
		rule := decide(m.A, milan.Cores)
		fmt.Printf("%-18s %8.2f %-8s %7.2fx %-8s %7.2fx\n",
			m.Name, base.Imbalance, oracle, speedup[oracle], rule, speedup[rule])

		oracleSp = append(oracleSp, speedup[oracle])
		ruleSp = append(ruleSp, speedup[rule])
		gpSp = append(gpSp, speedup[reorder.GP])
	}

	fmt.Printf("\ngeometric means — oracle: %.3f, feature rule: %.3f, always-GP: %.3f\n",
		stats.GeoMean(oracleSp), stats.GeoMean(ruleSp), stats.GeoMean(gpSp))
	fmt.Println("the rule should recover most of the oracle's gain over the static choice")
}

// decide is a hand-written stand-in for the paper's envisioned ML
// predictor: matrices that are already banded and balanced are left to
// RCM (cheap, preserves bands); strong imbalance or a huge off-diagonal
// share favours GP.
func decide(a *sparse.CSR, threads int) reorder.Algorithm {
	f := metrics.Compute(a, threads, threads)
	relBandwidth := float64(f.Bandwidth) / float64(a.Rows)
	offdiagShare := float64(f.OffDiagNNZ) / float64(a.NNZ())
	switch {
	case f.Imbalance1D > 1.5 || offdiagShare > 0.5:
		return reorder.GP
	case relBandwidth < 0.05:
		return reorder.RCM
	default:
		return reorder.GP
	}
}
