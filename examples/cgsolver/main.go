// cgsolver demonstrates the amortization argument of the paper's §4.7: a
// conjugate-gradient solver performs many SpMV iterations with the same
// matrix, so even an expensive reordering pays for itself. It solves the
// same SPD system with the original and RCM orderings (with and without
// Jacobi preconditioning) using the library's solver package.
package main

import (
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	"sparseorder/internal/gen"
	"sparseorder/internal/reorder"
	"sparseorder/internal/solver"
	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
)

func main() {
	log.SetFlags(0)
	threads := runtime.GOMAXPROCS(0)

	// An SPD system on a scrambled mesh.
	a := gen.Scramble(gen.Grid2D(120, 120), 3)
	n := a.Rows
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	fmt.Printf("solving %dx%d SPD system (%d nnz) with CG, %d threads\n", n, n, a.NNZ(), threads)

	opts := solver.Options{Tol: 1e-8, MaxIter: 2000, Threads: threads}

	start := time.Now()
	res, err := solver.CG(a, rhs, opts)
	if err != nil {
		log.Fatal(err)
	}
	tOrig := time.Since(start)
	fmt.Printf("original order:  %4d iterations, %8v, residual %.2e\n",
		res.Iterations, tOrig.Round(time.Millisecond), res.Residual)

	// Reorder with RCM and solve the permuted system.
	t0 := time.Now()
	perm, err := reorder.Compute(reorder.RCM, a, reorder.Options{})
	if err != nil {
		log.Fatal(err)
	}
	pa, err := sparse.PermuteSymmetric(a, perm)
	if err != nil {
		log.Fatal(err)
	}
	reorderCost := time.Since(t0)

	start = time.Now()
	resR, err := solver.SolveReordered(pa, perm, rhs, opts)
	if err != nil {
		log.Fatal(err)
	}
	tRCM := time.Since(start)
	fmt.Printf("after RCM:       %4d iterations, %8v, residual %.2e (reordering cost %v)\n",
		resR.Iterations, tRCM.Round(time.Millisecond), resR.Residual, reorderCost.Round(time.Millisecond))

	// The two solutions must agree: reordering changes only the data
	// layout, never the mathematics.
	maxDiff := 0.0
	for i := range res.X {
		if d := math.Abs(res.X[i] - resR.X[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("max |x_orig - x_rcm| = %.2e\n", maxDiff)

	// Residual sanity against the original system.
	ax := make([]float64, n)
	spmv.Serial(a, resR.X, ax)
	worst := 0.0
	for i := range ax {
		if d := math.Abs(ax[i] - rhs[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("permuted-back residual (inf-norm): %.2e\n", worst)

	// Jacobi preconditioning on top.
	opts.Jacobi = true
	resJ, err := solver.SolveReordered(pa, perm, rhs, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RCM + Jacobi CG: %4d iterations\n", resJ.Iterations)

	if tOrig > tRCM {
		saved := tOrig - tRCM
		fmt.Printf("time saved by reordering: %v; amortised after ~%.0f%% of one solve\n",
			saved.Round(time.Millisecond), 100*float64(reorderCost)/float64(saved))
	} else {
		fmt.Println("no wall-clock saving on this host; the paper's multicores amortise RCM after ~6500 SpMV iterations")
	}
}
