// directsolver demonstrates the study's §4.6 story end to end with a real
// factorisation: choosing a fill-reducing ordering before sparse Cholesky
// cuts both the memory of the factor and the factorisation time, then the
// factor solves many right-hand sides cheaply.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"sparseorder/internal/cholesky"
	"sparseorder/internal/gen"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
)

func main() {
	log.SetFlags(0)
	a := gen.Scramble(gen.Grid2D(64, 64), 7)
	n := a.Rows
	fmt.Printf("factorising a %dx%d SPD system (%d nnz), scrambled order\n", n, n, a.NNZ())
	fmt.Printf("%-10s %12s %10s %12s %12s\n", "order", "nnz(L)", "fill", "flops", "factor time")

	type choice struct {
		name reorder.Algorithm
	}
	var factors []*cholesky.Factor
	var perms []sparse.Perm
	for _, c := range []choice{{reorder.Original}, {reorder.RCM}, {reorder.AMD}, {reorder.ND}} {
		b, perm, err := reorder.Apply(c.name, a, reorder.Options{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		flops, err := cholesky.FlopCount(b)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		f, err := cholesky.Factorize(b)
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		fmt.Printf("%-10s %12d %10.2f %12d %12v\n",
			c.name, f.NNZ(), float64(f.NNZ())/float64(b.NNZ()), flops, el.Round(time.Microsecond))
		factors = append(factors, f)
		perms = append(perms, perm)
	}

	// Solve with the AMD factor and verify against the original system.
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = float64(i%13) - 6
	}
	amdFactor, amdPerm := factors[2], perms[2]
	prhs := make([]float64, n)
	for newI, oldI := range amdPerm {
		prhs[newI] = rhs[oldI]
	}
	px, err := amdFactor.Solve(prhs)
	if err != nil {
		log.Fatal(err)
	}
	x := make([]float64, n)
	for newI, oldI := range amdPerm {
		x[oldI] = px[newI]
	}
	ax := make([]float64, n)
	spmv.Serial(a, x, ax)
	worst := 0.0
	for i := range ax {
		if d := math.Abs(ax[i] - rhs[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nAMD-ordered direct solve residual (inf-norm): %.2e\n", worst)
	fmt.Println("AMD and ND should show the smallest factors and times (paper Figure 6);")
	fmt.Println("the original scrambled order pays for its fill in both memory and flops.")
}
