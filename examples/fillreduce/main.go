// fillreduce reproduces the paper's §4.6 use case in miniature: choosing
// an ordering before sparse Cholesky factorisation. It compares the
// fill-in of every symmetric ordering on a 3D finite-element matrix and
// reports the elimination-tree height, which bounds the critical path of
// a parallel factorisation.
package main

import (
	"fmt"
	"log"

	"sparseorder/internal/cholesky"
	"sparseorder/internal/gen"
	"sparseorder/internal/reorder"
)

func main() {
	log.SetFlags(0)
	a := gen.Scramble(gen.Grid3D(24, 24, 24), 5)
	fmt.Printf("Cholesky fill-in for a %d-vertex 3D FEM matrix (%d nnz), scrambled order\n", a.Rows, a.NNZ())
	fmt.Printf("%-10s %14s %10s %12s\n", "order", "nnz(L)", "fill", "etree height")

	for _, alg := range []reorder.Algorithm{
		reorder.Original, reorder.RCM, reorder.AMD, reorder.ND, reorder.GP, reorder.HP,
	} {
		b, _, err := reorder.Apply(alg, a, reorder.Options{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		l, err := cholesky.FactorNNZ(b)
		if err != nil {
			log.Fatal(err)
		}
		parent, err := cholesky.EliminationTree(b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14d %10.2f %12d\n", alg, l, float64(l)/float64(b.NNZ()), treeHeight(parent))
	}
	fmt.Println("\nAMD and ND should produce the least fill (paper Figure 6); ND's short,")
	fmt.Println("bushy elimination tree is what makes it the ordering of choice for")
	fmt.Println("parallel direct solvers.")
}

func treeHeight(parent []int32) int {
	n := len(parent)
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	var h int32
	for i := 0; i < n; i++ {
		// Walk to the first node with a known depth, then unwind.
		var path []int32
		j := int32(i)
		for j != -1 && depth[j] < 0 {
			path = append(path, j)
			j = parent[j]
		}
		base := int32(0)
		if j != -1 {
			base = depth[j]
		}
		for k := len(path) - 1; k >= 0; k-- {
			base++
			depth[path[k]] = base
			if base > h {
				h = base
			}
		}
	}
	return int(h)
}
