// Quickstart: generate a matrix whose ordering was lost, reorder it with
// graph partitioning (the study's overall winner), and compare SpMV before
// and after — on the host and on the modelled Milan B machine.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"sparseorder/internal/gen"
	"sparseorder/internal/machine"
	"sparseorder/internal/metrics"
	"sparseorder/internal/reorder"
	"sparseorder/internal/spmv"
)

func main() {
	log.SetFlags(0)

	// A 2D finite-element mesh whose rows arrived in random order — the
	// situation where reordering pays off most.
	a := gen.Scramble(gen.Grid2D(150, 150), 1)
	fmt.Printf("matrix: %dx%d with %d nonzeros (scrambled FEM mesh)\n", a.Rows, a.Cols, a.NNZ())

	// Reorder with METIS-style graph partitioning, one part per core.
	threads := runtime.GOMAXPROCS(0)
	start := time.Now()
	b, perm, err := reorder.Apply(reorder.GP, a, reorder.Options{Parts: 128, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GP reordering took %v (permutation valid: %v)\n",
		time.Since(start).Round(time.Millisecond), perm.IsValid())

	// The order-sensitive features explain what changed.
	before := metrics.Compute(a, 128, 128)
	after := metrics.Compute(b, 128, 128)
	fmt.Printf("off-diagonal nnz: %d -> %d   bandwidth: %d -> %d\n",
		before.OffDiagNNZ, after.OffDiagNNZ, before.Bandwidth, after.Bandwidth)

	// Host SpMV, both kernels (best of 20 runs, as the paper measures).
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i%10) * 0.1
	}
	y := make([]float64, a.Rows)
	best := func(f func()) float64 {
		bestT := 0.0
		for i := 0; i < 20; i++ {
			t0 := time.Now()
			f()
			if el := time.Since(t0).Seconds(); bestT == 0 || el < bestT {
				bestT = el
			}
		}
		return bestT
	}
	t1 := best(func() { spmv.Mul1D(a, x, y, threads) })
	t2 := best(func() { spmv.Mul1D(b, x, y, threads) })
	fmt.Printf("host 1D SpMV (%d threads): %.3gs -> %.3gs (%.2fx)\n", threads, t1, t2, t1/t2)

	// Machine-model view: what this reordering would do on the study's
	// 128-core AMD Epyc Milan system.
	milan, _ := machine.ByName("Milan B")
	e0 := machine.EstimateSpMV(a, milan, machine.Kernel1D)
	e1 := machine.EstimateSpMV(b, milan, machine.Kernel1D)
	fmt.Printf("Milan B model: %.1f -> %.1f Gflop/s (%.2fx)\n", e0.Gflops, e1.Gflops, e1.Gflops/e0.Gflops)
}
