module sparseorder

go 1.24
