// Package cholesky computes the fill-in of sparse Cholesky factorisation
// for the study's Figure 6: the elimination tree of a symmetric matrix,
// its postordering, and the column counts of the factor L via the
// row/column counting algorithm of Gilbert, Ng and Peyton (paper ref.
// [13]) in the formulation popularised by CSparse. Only the sparsity
// pattern matters; no numerical factorisation is performed.
package cholesky

import (
	"fmt"

	"sparseorder/internal/sparse"
)

// EliminationTree returns the parent array of the elimination tree of the
// pattern-symmetric matrix a, using ancestor path compression. Roots have
// parent -1.
func EliminationTree(a *sparse.CSR) ([]int32, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("cholesky: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	parent := make([]int32, n)
	ancestor := make([]int32, n)
	for i := 0; i < n; i++ {
		parent[i] = -1
		ancestor[i] = -1
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			for j != -1 && int(j) < i {
				next := ancestor[j]
				ancestor[j] = int32(i)
				if next == -1 {
					parent[j] = int32(i)
				}
				j = next
			}
		}
	}
	return parent, nil
}

// Postorder returns a postordering of the forest given by parent: children
// are visited before parents and siblings in ascending order.
func Postorder(parent []int32) []int32 {
	n := len(parent)
	head := make([]int32, n)
	next := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	// Build child lists in reverse so traversal visits ascending children.
	for i := n - 1; i >= 0; i-- {
		p := parent[i]
		if p != -1 {
			next[i] = head[p]
			head[p] = int32(i)
		}
	}
	post := make([]int32, 0, n)
	stack := make([]int32, 0, n)
	for root := 0; root < n; root++ {
		if parent[root] != -1 {
			continue
		}
		stack = append(stack, int32(root))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			if c := head[v]; c != -1 {
				head[v] = next[c] // detach child; revisit v later
				stack = append(stack, c)
			} else {
				stack = stack[:len(stack)-1]
				post = append(post, v)
			}
		}
	}
	return post
}

// ColCounts returns the number of nonzeros of every column of the Cholesky
// factor L (diagonal included) for the pattern-symmetric matrix a, using
// the Gilbert-Ng-Peyton skeleton-matrix algorithm: for each column j in
// postorder, the "leaf" tests against maxfirst detect skeleton entries, and
// overlaps are subtracted at least-common ancestors found by a
// path-compressed union toward the current subtree root.
func ColCounts(a *sparse.CSR) ([]int64, error) {
	parent, err := EliminationTree(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	post := Postorder(parent)

	first := make([]int32, n)
	maxfirst := make([]int32, n)
	prevleaf := make([]int32, n)
	ancestor := make([]int32, n)
	delta := make([]int64, n)
	for i := 0; i < n; i++ {
		first[i] = -1
		maxfirst[i] = -1
		prevleaf[i] = -1
		ancestor[i] = int32(i)
	}
	for k := 0; k < n; k++ {
		j := post[k]
		if first[j] == -1 {
			delta[j] = 1 // j is a leaf of the etree
		}
		for t := j; t != -1 && first[t] == -1; t = parent[t] {
			first[t] = int32(k)
		}
	}

	for k := 0; k < n; k++ {
		j := post[k]
		if parent[j] != -1 {
			delta[parent[j]]--
		}
		for p := a.RowPtr[j]; p < a.RowPtr[j+1]; p++ {
			i := a.ColIdx[p]
			q, kind := leaf(i, j, first, maxfirst, prevleaf, ancestor)
			if kind >= 1 {
				delta[j]++
			}
			if kind == 2 {
				delta[q]--
			}
		}
		if parent[j] != -1 {
			ancestor[j] = parent[j]
		}
	}

	counts := delta
	for _, j := range post {
		if parent[j] != -1 {
			counts[parent[j]] += counts[j]
		}
	}
	return counts, nil
}

// leaf implements the cs_leaf test: it decides whether column j is a leaf
// of the row subtree of row i, updating maxfirst/prevleaf, and returns the
// least common ancestor of j and the previous leaf when one exists.
// kind is 0 (not a leaf), 1 (first leaf) or 2 (subsequent leaf).
func leaf(i, j int32, first, maxfirst, prevleaf, ancestor []int32) (q int32, kind int) {
	if i <= j || first[j] <= maxfirst[i] {
		return -1, 0
	}
	maxfirst[i] = first[j]
	jprev := prevleaf[i]
	prevleaf[i] = j
	if jprev == -1 {
		return i, 1
	}
	q = jprev
	for q != ancestor[q] {
		q = ancestor[q]
	}
	for s := jprev; s != q; {
		next := ancestor[s]
		ancestor[s] = q
		s = next
	}
	return q, 2
}

// FactorNNZ returns the total number of nonzeros of L (diagonal included).
func FactorNNZ(a *sparse.CSR) (int64, error) {
	counts, err := ColCounts(a)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// FillRatio returns nnz(L)/nnz(A), the quantity of the paper's Figure 6,
// where nnz(A) counts both triangles plus the diagonal of the symmetric
// matrix a.
func FillRatio(a *sparse.CSR) (float64, error) {
	l, err := FactorNNZ(a)
	if err != nil {
		return 0, err
	}
	if a.NNZ() == 0 {
		return 0, nil
	}
	return float64(l) / float64(a.NNZ()), nil
}

// ColCountsNaive is an independent O(|L|) oracle used in tests: for every
// row i it walks the elimination-tree paths from each below-diagonal entry
// up toward i, which enumerates exactly the columns of row i of L.
func ColCountsNaive(a *sparse.CSR) ([]int64, error) {
	parent, err := EliminationTree(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	counts := make([]int64, n)
	mark := make([]int32, n)
	for i := range mark {
		mark[i] = -1
	}
	for i := 0; i < n; i++ {
		counts[i]++ // diagonal of column i
		mark[i] = int32(i)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			for int(j) < i && mark[j] != int32(i) {
				counts[j]++
				mark[j] = int32(i)
				j = parent[j]
			}
		}
	}
	return counts, nil
}
