package cholesky

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparseorder/internal/gen"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
)

// arrowMatrix returns an n×n symmetric "arrowhead": dense last row/column
// plus the diagonal. With the natural order (arrow point last) there is no
// fill; reversed, it fills completely.
func arrowMatrix(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Append(i, i, 4)
		if i != n-1 {
			coo.Append(i, n-1, 1)
			coo.Append(n-1, i, 1)
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return a
}

func randomSymmetric(rng *rand.Rand, n, edges int) *sparse.CSR {
	coo := sparse.NewCOO(n, n, 2*edges+n)
	for i := 0; i < n; i++ {
		coo.Append(i, i, 4)
	}
	for e := 0; e < edges; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		coo.Append(i, j, -1)
		coo.Append(j, i, -1)
	}
	a, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return a
}

func TestEliminationTreePath(t *testing.T) {
	// Tridiagonal: parent[i] = i+1.
	n := 8
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Append(i, i, 2)
		if i+1 < n {
			coo.Append(i, i+1, -1)
			coo.Append(i+1, i, -1)
		}
	}
	a, _ := coo.ToCSR()
	parent, err := EliminationTree(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		if parent[i] != int32(i+1) {
			t.Errorf("parent[%d] = %d, want %d", i, parent[i], i+1)
		}
	}
	if parent[n-1] != -1 {
		t.Errorf("root parent = %d, want -1", parent[n-1])
	}
}

func TestEliminationTreeArrow(t *testing.T) {
	a := arrowMatrix(6)
	parent, err := EliminationTree(a)
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex hangs off the arrow point.
	for i := 0; i < 5; i++ {
		if parent[i] != 5 {
			t.Errorf("parent[%d] = %d, want 5", i, parent[i])
		}
	}
}

func TestPostorderVisitsChildrenFirst(t *testing.T) {
	parent := []int32{2, 2, 4, 4, -1}
	post := Postorder(parent)
	pos := make([]int, len(parent))
	for k, v := range post {
		pos[v] = k
	}
	for i, p := range parent {
		if p != -1 && pos[i] > pos[p] {
			t.Errorf("child %d after parent %d", i, p)
		}
	}
	if len(post) != 5 {
		t.Errorf("postorder length %d", len(post))
	}
}

func TestPostorderForest(t *testing.T) {
	parent := []int32{-1, 0, -1, 2}
	post := Postorder(parent)
	if len(post) != 4 {
		t.Fatalf("forest postorder length %d", len(post))
	}
	seen := make(map[int32]bool)
	for _, v := range post {
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Error("postorder missed vertices")
	}
}

func TestColCountsArrowNoFill(t *testing.T) {
	// Arrow with point last: L has the same pattern as tril(A):
	// columns 0..n-2 have 2 entries (diag + last row), column n-1 has 1.
	n := 7
	a := arrowMatrix(n)
	counts, err := ColCounts(a)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n-1; j++ {
		if counts[j] != 2 {
			t.Errorf("count[%d] = %d, want 2", j, counts[j])
		}
	}
	if counts[n-1] != 1 {
		t.Errorf("count[%d] = %d, want 1", n-1, counts[n-1])
	}
}

func TestColCountsArrowReversedFullFill(t *testing.T) {
	// Arrow point FIRST: eliminating the hub connects everything; L is
	// completely dense: counts n, n-1, ..., 1.
	n := 7
	a := arrowMatrix(n)
	rev := make(sparse.Perm, n)
	for i := range rev {
		rev[i] = n - 1 - i
	}
	b, err := sparse.PermuteSymmetric(a, rev)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := ColCounts(b)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		if counts[j] != int64(n-j) {
			t.Errorf("count[%d] = %d, want %d", j, counts[j], n-j)
		}
	}
}

func TestColCountsMatchNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(60)
		a := randomSymmetric(rng, n, rng.Intn(4*n))
		fast, err := ColCounts(a)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := ColCountsNaive(a)
		if err != nil {
			t.Fatal(err)
		}
		for j := range fast {
			if fast[j] != slow[j] {
				t.Fatalf("trial %d: count[%d] = %d, oracle %d", trial, j, fast[j], slow[j])
			}
		}
	}
}

func TestColCountsQuick(t *testing.T) {
	f := func(seed int64, nRaw, eRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 2
		a := randomSymmetric(rng, n, int(eRaw)%(3*n))
		fast, err1 := ColCounts(a)
		slow, err2 := ColCountsNaive(a)
		if err1 != nil || err2 != nil {
			return false
		}
		for j := range fast {
			if fast[j] != slow[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFillRatioAtLeastHalf(t *testing.T) {
	// nnz(L) ≥ nnz(tril(A)) = (nnz(A)+n)/2, so the ratio is at least ~0.5.
	rng := rand.New(rand.NewSource(2))
	a := randomSymmetric(rng, 50, 120)
	r, err := FillRatio(a)
	if err != nil {
		t.Fatal(err)
	}
	if r < 0.5 {
		t.Errorf("fill ratio %v < 0.5", r)
	}
}

func TestFillReducingOrderingsReduceFill(t *testing.T) {
	// On a scrambled 2D grid, AMD and ND must beat the scrambled order.
	a := gen.Scramble(gen.Grid2D(16, 16), 3)
	base, err := FillRatio(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []reorder.Algorithm{reorder.AMD, reorder.ND} {
		b, _, err := reorder.Apply(alg, a, reorder.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		r, err := FillRatio(b)
		if err != nil {
			t.Fatal(err)
		}
		if r >= base {
			t.Errorf("%s fill ratio %.2f not below scrambled %.2f", alg, r, base)
		}
	}
}

func TestFactorNNZConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomSymmetric(rng, 30, 80)
	counts, err := ColCounts(a)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, c := range counts {
		sum += c
	}
	total, err := FactorNNZ(a)
	if err != nil {
		t.Fatal(err)
	}
	if total != sum {
		t.Errorf("FactorNNZ = %d, want %d", total, sum)
	}
}

func TestRejectsRectangular(t *testing.T) {
	coo := sparse.NewCOO(2, 3, 1)
	coo.Append(0, 0, 1)
	a, _ := coo.ToCSR()
	if _, err := EliminationTree(a); err == nil {
		t.Error("EliminationTree accepted rectangular matrix")
	}
	if _, err := ColCounts(a); err == nil {
		t.Error("ColCounts accepted rectangular matrix")
	}
	if _, err := FillRatio(a); err == nil {
		t.Error("FillRatio accepted rectangular matrix")
	}
}
