package cholesky

import (
	"fmt"
	"math"

	"sparseorder/internal/sparse"
)

// Factor is a sparse Cholesky factor L with A = L·Lᵀ, stored in
// compressed sparse column form (columns of L ordered by increasing row
// index, diagonal first).
type Factor struct {
	N      int
	ColPtr []int
	RowIdx []int32
	Val    []float64
}

// NNZ returns the number of stored nonzeros of L.
func (f *Factor) NNZ() int { return len(f.RowIdx) }

// Factorize computes the simplicial sparse Cholesky factorisation of the
// symmetric positive definite matrix a with an up-looking algorithm: for
// each row k, the nonzero pattern of L(k, :) is the path union in the
// elimination tree reachable from the below-diagonal entries of row k
// (cs_ereach), and a sparse triangular solve produces the values. The
// symbolic structure is sized exactly from the Gilbert-Ng-Peyton column
// counts, so the factorisation doubles as an executable cross-check of
// the fill analysis used for Figure 6.
func Factorize(a *sparse.CSR) (*Factor, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("cholesky: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	parent, err := EliminationTree(a)
	if err != nil {
		return nil, err
	}
	counts, err := ColCounts(a)
	if err != nil {
		return nil, err
	}
	f := &Factor{N: n, ColPtr: make([]int, n+1)}
	for j := 0; j < n; j++ {
		f.ColPtr[j+1] = f.ColPtr[j] + int(counts[j])
	}
	nnzL := f.ColPtr[n]
	f.RowIdx = make([]int32, nnzL)
	f.Val = make([]float64, nnzL)

	// next[j]: position of the next free slot in column j of L. The
	// diagonal entry is always the first slot of its column.
	next := make([]int, n)
	copy(next, f.ColPtr[:n])

	x := make([]float64, n)    // dense scratch for row k of L
	stack := make([]int32, n)  // ereach stack
	mark := make([]int32, n)   // visited marks, generation = k
	diag := make([]float64, n) // running diagonal values of L
	for i := range mark {
		mark[i] = -1
	}

	for k := 0; k < n; k++ {
		// Compute the reach: pattern of row k of L (excluding diagonal),
		// in topological (ascending-column) order.
		top := n
		mark[k] = int32(k)
		akk := 0.0
		for p := a.RowPtr[k]; p < a.RowPtr[k+1]; p++ {
			j := a.ColIdx[p]
			if int(j) > k {
				continue
			}
			x[j] = a.Val[p]
			if int(j) == k {
				akk = a.Val[p]
				continue
			}
			// Walk up the etree until a visited node, pushing the path.
			lenPath := 0
			jj := j
			for mark[jj] != int32(k) {
				stack[lenPath] = jj
				lenPath++
				mark[jj] = int32(k)
				jj = parent[jj]
			}
			// Unwind the path onto the (top of the) output stack.
			for lenPath > 0 {
				lenPath--
				top--
				stack[top] = stack[lenPath]
			}
		}
		// stack[top:n] holds the pattern of row k in topological order.
		dk := akk
		for t := top; t < n; t++ {
			j := int(stack[t])
			// Sparse triangular solve step: x[j] = x[j] / L(j,j), then
			// subtract L(:,j)·x[j] from x for the remaining pattern.
			lkj := x[j] / diag[j]
			x[j] = 0
			for p := f.ColPtr[j] + 1; p < next[j]; p++ {
				x[f.RowIdx[p]] -= f.Val[p] * lkj
			}
			dk -= lkj * lkj
			// Append L(k,j) to column j.
			f.RowIdx[next[j]] = int32(k)
			f.Val[next[j]] = lkj
			next[j]++
		}
		if dk <= 0 || math.IsNaN(dk) {
			return nil, fmt.Errorf("cholesky: matrix not positive definite at pivot %d (d=%g)", k, dk)
		}
		diag[k] = math.Sqrt(dk)
		f.RowIdx[next[k]] = int32(k)
		f.Val[next[k]] = diag[k]
		next[k]++
		x[k] = 0
	}

	// Every column must be exactly full, confirming the symbolic counts.
	for j := 0; j < n; j++ {
		if next[j] != f.ColPtr[j+1] {
			return nil, fmt.Errorf("cholesky: column %d filled %d of %d slots (symbolic/numeric mismatch)",
				j, next[j]-f.ColPtr[j], f.ColPtr[j+1]-f.ColPtr[j])
		}
	}
	return f, nil
}

// Solve solves A·x = b given the factor (A = L·Lᵀ) by forward and backward
// substitution, overwriting and returning x (b is not modified).
func (f *Factor) Solve(b []float64) ([]float64, error) {
	if len(b) != f.N {
		return nil, fmt.Errorf("cholesky: rhs length %d, want %d", len(b), f.N)
	}
	x := append([]float64(nil), b...)
	// Forward: L·y = b.
	for j := 0; j < f.N; j++ {
		lo, hi := f.ColPtr[j], f.ColPtr[j+1]
		x[j] /= f.Val[lo]
		for p := lo + 1; p < hi; p++ {
			x[f.RowIdx[p]] -= f.Val[p] * x[j]
		}
	}
	// Backward: Lᵀ·x = y.
	for j := f.N - 1; j >= 0; j-- {
		lo, hi := f.ColPtr[j], f.ColPtr[j+1]
		for p := lo + 1; p < hi; p++ {
			x[j] -= f.Val[p] * x[f.RowIdx[p]]
		}
		x[j] /= f.Val[lo]
	}
	return x, nil
}

// FlopCount returns the floating-point operations of the numeric
// factorisation, Σ_j c_j², where c_j is the count of column j — the cost
// measure fill-reducing orderings ultimately lower.
func FlopCount(a *sparse.CSR) (int64, error) {
	counts, err := ColCounts(a)
	if err != nil {
		return 0, err
	}
	var fl int64
	for _, c := range counts {
		fl += c * c
	}
	return fl, nil
}
