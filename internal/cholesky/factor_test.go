package cholesky

import (
	"math"
	"math/rand"
	"testing"

	"sparseorder/internal/gen"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
)

// multiply reconstructs A = L·Lᵀ densely (small matrices only).
func multiply(f *Factor) [][]float64 {
	n := f.N
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		for p := f.ColPtr[j]; p < f.ColPtr[j+1]; p++ {
			l[f.RowIdx[p]][j] = f.Val[p]
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				a[i][j] += l[i][k] * l[j][k]
			}
		}
	}
	return a
}

func denseOf(a *sparse.CSR) [][]float64 {
	d := make([][]float64, a.Rows)
	for i := range d {
		d[i] = make([]float64, a.Cols)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d[i][a.ColIdx[k]] = a.Val[k]
		}
	}
	return d
}

// spdify returns a copy of the symmetric matrix with its diagonal raised
// to strict diagonal dominance, guaranteeing positive definiteness.
func spdify(a *sparse.CSR) *sparse.CSR {
	b := a.Clone()
	for i := 0; i < b.Rows; i++ {
		off := 0.0
		diagK := -1
		for k := b.RowPtr[i]; k < b.RowPtr[i+1]; k++ {
			if int(b.ColIdx[k]) == i {
				diagK = k
			} else {
				off += math.Abs(b.Val[k])
			}
		}
		if diagK >= 0 {
			b.Val[diagK] = off + 1
		}
	}
	return b
}

func TestFactorizeKnown2x2(t *testing.T) {
	// [4 2; 2 3] = L·Lᵀ with L = [2 0; 1 sqrt(2)].
	coo := sparse.NewCOO(2, 2, 4)
	coo.Append(0, 0, 4)
	coo.Append(0, 1, 2)
	coo.Append(1, 0, 2)
	coo.Append(1, 1, 3)
	a, _ := coo.ToCSR()
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.Val[f.ColPtr[0]] != 2 {
		t.Errorf("L(0,0) = %v, want 2", f.Val[f.ColPtr[0]])
	}
	if math.Abs(f.Val[f.ColPtr[1]]-math.Sqrt(2)) > 1e-12 {
		t.Errorf("L(1,1) = %v, want sqrt(2)", f.Val[f.ColPtr[1]])
	}
}

func TestFactorizeReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(25)
		a := spdify(randomSymmetric(rng, n, 3*n))
		f, err := Factorize(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := multiply(f)
		want := denseOf(a)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(got[i][j]-want[i][j]) > 1e-8*(1+math.Abs(want[i][j])) {
					t.Fatalf("trial %d: (L·Lᵀ)[%d][%d] = %v, want %v", trial, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestFactorizeMatchesSymbolicCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := spdify(randomSymmetric(rng, 60, 150))
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	want, err := FactorNNZ(a)
	if err != nil {
		t.Fatal(err)
	}
	if int64(f.NNZ()) != want {
		t.Errorf("numeric nnz(L) = %d, symbolic %d", f.NNZ(), want)
	}
}

func TestSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := gen.Grid2D(12, 12)
	n := a.Rows
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	spmv.Serial(a, xTrue, b)
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
	if _, err := f.Solve(b[:2]); err == nil {
		t.Error("accepted wrong-length rhs")
	}
}

func TestSolveUnderReordering(t *testing.T) {
	// Solving the permuted system must give the permuted solution.
	a := gen.Scramble(gen.Grid2D(10, 10), 4)
	n := a.Rows
	rng := rand.New(rand.NewSource(5))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	spmv.Serial(a, xTrue, b)

	perm, err := reorder.Compute(reorder.AMD, a, reorder.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := sparse.PermuteSymmetric(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	pb := make([]float64, n)
	for newI, oldI := range perm {
		pb[newI] = b[oldI]
	}
	f, err := Factorize(pa)
	if err != nil {
		t.Fatal(err)
	}
	px, err := f.Solve(pb)
	if err != nil {
		t.Fatal(err)
	}
	for newI, oldI := range perm {
		if math.Abs(px[newI]-xTrue[oldI]) > 1e-8 {
			t.Fatalf("permuted solve wrong at %d", newI)
		}
	}
}

func TestFactorizeRejectsIndefinite(t *testing.T) {
	coo := sparse.NewCOO(2, 2, 4)
	coo.Append(0, 0, 1)
	coo.Append(0, 1, 5)
	coo.Append(1, 0, 5)
	coo.Append(1, 1, 1)
	a, _ := coo.ToCSR()
	if _, err := Factorize(a); err == nil {
		t.Error("accepted an indefinite matrix")
	}
}

func TestFactorizeRejectsRectangular(t *testing.T) {
	coo := sparse.NewCOO(2, 3, 1)
	coo.Append(0, 0, 1)
	a, _ := coo.ToCSR()
	if _, err := Factorize(a); err == nil {
		t.Error("accepted rectangular matrix")
	}
}

func TestFlopCountOrderingSensitivity(t *testing.T) {
	// AMD must reduce the factorisation flops of a scrambled grid by a
	// large factor — the quantity fill-reducing orderings exist to lower.
	a := gen.Scramble(gen.Grid2D(16, 16), 6)
	flOrig, err := FlopCount(a)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := reorder.Apply(reorder.AMD, a, reorder.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flAMD, err := FlopCount(b)
	if err != nil {
		t.Fatal(err)
	}
	if flAMD*2 >= flOrig {
		t.Errorf("AMD flops %d not well below original %d", flAMD, flOrig)
	}
}
