package experiments

import (
	"fmt"
	"io"

	"sparseorder/internal/machine"
	"sparseorder/internal/reorder"
)

// WriteArtifactFile renders one machine's results in the layout of the
// paper's artifact data files: one row per matrix; five metadata columns
// (group, name, rows, cols, nonzeros), the thread count, then seven columns
// per ordering in the order original, RCM, ND, AMD, GP, HP, Gray:
// min/max/mean nonzeros per thread, imbalance factor, seconds per
// iteration, max Gflop/s, mean Gflop/s. (The deterministic model makes the
// max and mean rates coincide.)
func WriteArtifactFile(w io.Writer, s *StudyResult, mach string, k machine.Kernel) error {
	cores := 0
	for _, mc := range s.Config.Machines {
		if mc.Name == mach {
			cores = mc.Cores
		}
	}
	if cores == 0 {
		return fmt.Errorf("experiments: machine %q not in study", mach)
	}
	// Artifact column order differs from the paper's presentation order.
	artifactOrder := []reorder.Algorithm{
		reorder.Original, reorder.RCM, reorder.ND, reorder.AMD,
		reorder.GP, reorder.HP, reorder.Gray,
	}
	if _, err := fmt.Fprintf(w, "%% group name rows cols nonzeros threads"); err != nil {
		return err
	}
	for _, alg := range artifactOrder {
		fmt.Fprintf(w, " | %s: minnzpt maxnzpt meannzpt imbalance seconds maxgflops meangflops", alg)
	}
	fmt.Fprintln(w)
	for _, r := range s.Matrices {
		fmt.Fprintf(w, "%s %s %d %d %d %d", sanitize(r.Group), r.Name, r.Rows, r.Rows, r.NNZ, cores)
		for _, alg := range artifactOrder {
			m, ok := r.Perf[mach][k][alg]
			if !ok {
				fmt.Fprintf(w, " - - - - - - -")
				continue
			}
			fmt.Fprintf(w, " %d %d %.1f %.4f %.6e %.3f %.3f",
				m.MinNNZ, m.MaxNNZ, m.MeanNNZ, m.Imbalance, m.Seconds, m.Gflops, m.Gflops)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == ' ' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}
