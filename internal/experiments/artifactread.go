package experiments

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"sparseorder/internal/reorder"
)

// ArtifactRow is one parsed line of an artifact-format data file: the
// matrix metadata and one Measurement per ordering.
type ArtifactRow struct {
	Group   string
	Name    string
	Rows    int
	Cols    int
	NNZ     int
	Threads int
	Perf    map[reorder.Algorithm]Measurement
}

// artifactOrderings is the column order of the artifact files (the
// paper's data layout, which differs from the presentation order).
var artifactOrderings = []reorder.Algorithm{
	reorder.Original, reorder.RCM, reorder.ND, reorder.AMD,
	reorder.GP, reorder.HP, reorder.Gray,
}

// ReadArtifactFile parses a file written by WriteArtifactFile — or, by
// construction, any file following the paper artifact's plain-text layout:
// five metadata columns, the thread count, then seven numeric columns per
// ordering. Comment lines starting with '%' are skipped.
func ReadArtifactFile(r io.Reader) ([]ArtifactRow, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rows []ArtifactRow
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 6 + 7*len(artifactOrderings)
		if len(fields) != want {
			return nil, fmt.Errorf("experiments: line %d has %d fields, want %d", lineNo, len(fields), want)
		}
		row := ArtifactRow{
			Group: fields[0],
			Name:  fields[1],
			Perf:  map[reorder.Algorithm]Measurement{},
		}
		ints := []*int{&row.Rows, &row.Cols, &row.NNZ, &row.Threads}
		for i, dst := range ints {
			v, err := strconv.Atoi(fields[2+i])
			if err != nil {
				return nil, fmt.Errorf("experiments: line %d field %d: %w", lineNo, 2+i, err)
			}
			*dst = v
		}
		pos := 6
		for _, alg := range artifactOrderings {
			var m Measurement
			var err error
			if m.MinNNZ, err = strconv.Atoi(fields[pos]); err != nil {
				return nil, fmt.Errorf("experiments: line %d (%s): %w", lineNo, alg, err)
			}
			if m.MaxNNZ, err = strconv.Atoi(fields[pos+1]); err != nil {
				return nil, fmt.Errorf("experiments: line %d (%s): %w", lineNo, alg, err)
			}
			floats := []*float64{&m.MeanNNZ, &m.Imbalance, &m.Seconds, &m.Gflops}
			for i, dst := range floats {
				v, err := strconv.ParseFloat(fields[pos+2+i], 64)
				if err != nil {
					return nil, fmt.Errorf("experiments: line %d (%s): %w", lineNo, alg, err)
				}
				*dst = v
			}
			// Column 7 is the mean Gflop/s; the deterministic model makes
			// it equal to the max, so it only needs to parse.
			if _, err := strconv.ParseFloat(fields[pos+6], 64); err != nil {
				return nil, fmt.Errorf("experiments: line %d (%s): %w", lineNo, alg, err)
			}
			row.Perf[alg] = m
			pos += 7
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// GeoMeanFromArtifact recomputes the Table 3/4 style geometric-mean
// speedups from parsed artifact rows — the same post-processing path the
// paper's published data files support.
func GeoMeanFromArtifact(rows []ArtifactRow, alg reorder.Algorithm) float64 {
	prod, n := 0.0, 0
	for _, r := range rows {
		base := r.Perf[reorder.Original].Gflops
		v := r.Perf[alg].Gflops
		if base > 0 && v > 0 {
			prod += math.Log(v / base)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(prod / float64(n))
}
