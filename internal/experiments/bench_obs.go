package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"
	"time"

	"sparseorder/internal/gen"
	"sparseorder/internal/obs"
	"sparseorder/internal/reorder"
)

// ObsBench is the observability-overhead measurement committed as
// BENCH_obs.json. It quantifies the layer's two cost regimes:
//
//   - Micro: the per-call cost of the instrumentation primitives, both on
//     the disabled path (no Obs attached — this is what every plain run
//     pays) and with a live metrics registry. The disabled path must be
//     allocation-free.
//   - Pipeline: best-of wall clock of the full instrumented reordering
//     pipeline (the PR 2 benchmark's combined path driven through
//     ApplyTimedCtx) with no sinks versus with a live registry. The
//     no-sink run is the regression-budget number: the instrumentation
//     call sites are compiled in but resolve to nil and must stay within
//     1% of the uninstrumented pipeline, which the micro numbers bound
//     (a handful of nanoseconds per span against milliseconds of work).
//   - Serving: one warm SpMV request through the daemon's handler with
//     telemetry nil / metrics-only / metrics+tracing, measured by
//     server.RunServingBench and merged in by cmd/study (the server
//     package imports this one, so the dependency cannot point the other
//     way). The nilobs row is the request-path equivalent of the no-sink
//     pipeline budget.
type ObsBench struct {
	HostCPUs   int              `json:"host_cpus"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Repeats    int              `json:"repeats"` // pipeline best-of count
	Micro      []ObsMicroResult `json:"micro"`
	Pipeline   []ObsPipelineRun `json:"pipeline"`
	Serving    []ObsMicroResult `json:"serving,omitempty"`
}

// ObsMicroResult is one primitive's per-operation cost, measured with
// testing.Benchmark.
type ObsMicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// ObsPipelineRun is one (mode, ordering) pipeline measurement. Overhead
// is this run's time relative to the same ordering's nosink run, in
// percent (nosink rows carry 0).
type ObsPipelineRun struct {
	Mode        string  `json:"mode"` // nosink, metrics
	Ordering    string  `json:"ordering"`
	Seconds     float64 `json:"seconds"`
	OverheadPct float64 `json:"overhead_pct"`
}

// RunObsBench measures the observability layer's overhead. The micro
// section uses testing.Benchmark and therefore self-calibrates; repeats
// only controls the pipeline best-of count.
func RunObsBench(seed int64, repeats int) (*ObsBench, error) {
	if repeats < 1 {
		repeats = 1
	}
	out := &ObsBench{
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Repeats:    repeats,
	}

	// Micro: disabled primitives against a context with no Obs attached
	// (the plain-run fast path), then the same primitives with a live
	// registry for contrast.
	bg := context.Background()
	live := &obs.Obs{Metrics: obs.NewRegistry(), Progress: obs.NewProgress()}
	lctx := obs.NewContext(bg, live)
	ph := live.Phase("bench/phase")
	var nilPh obs.Phase
	micros := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"span_disabled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, sp := obs.Start(bg, "bench/span")
				sp.End()
			}
		}},
		{"phase_disabled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nilPh.Start().Stop()
			}
		}},
		{"span_enabled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, sp := obs.Start(lctx, "bench/span")
				sp.End()
			}
		}},
		{"phase_enabled", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ph.Start().Stop()
			}
		}},
	}
	for _, m := range micros {
		r := testing.Benchmark(m.fn)
		out.Micro = append(out.Micro, ObsMicroResult{
			Name:        m.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	// Pipeline: the instrumented reordering pipeline end to end. RCM is
	// the PR 2 benchmark's hot path; GP additionally exercises the
	// partitioner Phase timings, the layer's highest-frequency call site.
	a := ReorderBenchMatrices(seed, gen.ScaleStudy)[0].A
	for _, alg := range []reorder.Algorithm{reorder.RCM, reorder.GP} {
		var nosink float64
		for _, mode := range []struct {
			name string
			ctx  context.Context
		}{
			{"nosink", bg},
			{"metrics", obs.NewContext(bg, &obs.Obs{Metrics: obs.NewRegistry()})},
		} {
			best := 0.0
			for it := 0; it < repeats; it++ {
				start := time.Now()
				if _, _, _, err := reorder.ApplyTimedCtx(mode.ctx, alg, a, reorder.Options{Seed: seed}); err != nil {
					return nil, fmt.Errorf("experiments: obs bench %s/%s: %v", alg, mode.name, err)
				}
				if el := time.Since(start).Seconds(); best == 0 || el < best {
					best = el
				}
			}
			r := ObsPipelineRun{Mode: mode.name, Ordering: string(alg), Seconds: best}
			if mode.name == "nosink" {
				nosink = best
			} else if nosink > 0 {
				r.OverheadPct = (best - nosink) / nosink * 100
			}
			out.Pipeline = append(out.Pipeline, r)
		}
	}
	return out, nil
}

// RenderObsBench formats an ObsBench as the indented JSON document
// committed as BENCH_obs.json.
func RenderObsBench(b *ObsBench) (string, error) {
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	return string(buf) + "\n", nil
}
