package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"sparseorder/internal/gen"
	"sparseorder/internal/obs"
	"sparseorder/internal/sparse"
)

// LoadMatrixFiles reads a Matrix Market file corpus into the study's
// matrix form through the parallel ingestion pipeline, using
// cfg.IngestWorkers workers per file (see sparse.ReadMatrixMarketWorkers;
// the result is byte-identical at any worker count). Each file becomes
// one gen.Matrix named after its base name without the .mtx suffix, in
// argument order — the entry point behind `study corpus.mtx ...`.
// Telemetry flows through cfg.Obs ("sparse/ingest" spans with scan and
// assemble sub-phases), and the armed fault plan's matrix/read and
// ingest/chunk points cover every file.
func LoadMatrixFiles(ctx context.Context, cfg Config, paths []string) ([]gen.Matrix, error) {
	cfg = cfg.withDefaults()
	ctx = obs.NewContext(ctx, cfg.Obs)
	ms := make([]gen.Matrix, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		a, err := sparse.ReadMatrixMarketCtx(ctx, f, cfg.IngestWorkers)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".mtx")
		cfg.Logf("ingested %s: %dx%d, %d nonzeros (est. working set %s)",
			name, a.Rows, a.Cols, a.NNZ(), FormatBytes(EstimateIngestBytes(a.Rows, a.NNZ())))
		ms = append(ms, gen.Matrix{Name: name, Group: "file", Kind: "matrix-market", A: a})
	}
	return ms, nil
}

// IngestBench is the serial-vs-parallel wall-clock comparison of Matrix
// Market ingestion, the document committed as BENCH_ingest.json. The
// serial baseline is sparse.ReadMatrixMarket, the line-at-a-time
// reference reader; the parallel runs are sparse.ReadMatrixMarketWorkers,
// whose chunked scanner must produce byte-identical output (the bench
// verifies this on every run, so the numbers double as a determinism
// check).
type IngestBench struct {
	// HostCPUs and GoMaxProcs record the hardware the numbers were taken
	// on; speedups at worker counts beyond HostCPUs can only come from the
	// leaner chunk scanner (in-place field parsing, fast-path float
	// conversion, allocation-free lines), not from concurrency.
	HostCPUs   int                 `json:"host_cpus"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	Repeats    int                 `json:"repeats"` // best-of wall clock, like the paper
	Matrices   []IngestBenchMatrix `json:"matrices"`
}

// IngestBenchMatrix is the measurement set for one matrix, serialized
// once with WriteMatrixMarket and re-read by every run.
type IngestBenchMatrix struct {
	Name      string `json:"name"`
	Rows      int    `json:"rows"`
	NNZ       int    `json:"nnz"`
	FileBytes int    `json:"file_bytes"`
	// EstIngestBytes is the governor's transient working-set model for
	// ingesting this matrix (EstimateIngestBytes).
	EstIngestBytes int64            `json:"est_ingest_bytes"`
	Runs           []IngestBenchRun `json:"runs"`
}

// IngestBenchRun is one (path, worker count) wall-clock measurement.
// Speedup is the serial reference reader's time divided by this run's
// time; MBPerSec is the file size over the run time.
type IngestBenchRun struct {
	Path     string  `json:"path"` // serial, parallel
	Workers  int     `json:"workers"`
	Seconds  float64 `json:"seconds"`
	MBPerSec float64 `json:"mb_per_sec"`
	Speedup  float64 `json:"speedup"`
}

// IngestBenchMatrices returns the inputs for RunIngestBench: the same
// ≥1M-nonzero generated matrices the reordering bench uses at study scale,
// so the two committed benchmark documents describe the same corpus.
func IngestBenchMatrices(seed int64) []gen.Matrix {
	return ReorderBenchMatrices(seed, gen.ScaleStudy)
}

// RunIngestBench measures Matrix Market ingestion serial vs parallel.
// workerCounts are the parallel worker counts to measure; each run is
// repeated repeats times and the best time kept. Every parallel result is
// checked for equality with the serial result before its time is
// recorded.
func RunIngestBench(matrices []gen.Matrix, workerCounts []int, repeats int) (*IngestBench, error) {
	if repeats < 1 {
		repeats = 1
	}
	out := &IngestBench{
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Repeats:    repeats,
	}
	for _, m := range matrices {
		var buf bytes.Buffer
		if err := sparse.WriteMatrixMarket(&buf, m.A); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", m.Name, err)
		}
		data := buf.Bytes()
		bm := IngestBenchMatrix{
			Name: m.Name, Rows: m.A.Rows, NNZ: m.A.NNZ(),
			FileBytes:      len(data),
			EstIngestBytes: EstimateIngestBytes(m.A.Rows, m.A.NNZ()),
		}
		mb := float64(len(data)) / (1 << 20)

		var ref *sparse.CSR
		serial := 0.0
		for it := 0; it < repeats; it++ {
			start := time.Now()
			a, err := sparse.ReadMatrixMarket(bytes.NewReader(data))
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: serial read: %w", m.Name, err)
			}
			if el := time.Since(start).Seconds(); serial == 0 || el < serial {
				serial = el
			}
			ref = a
		}
		bm.Runs = append(bm.Runs, IngestBenchRun{
			Path: "serial", Workers: 1, Seconds: serial, MBPerSec: mb / serial, Speedup: 1,
		})

		for _, w := range workerCounts {
			best := 0.0
			for it := 0; it < repeats; it++ {
				start := time.Now()
				a, err := sparse.ReadMatrixMarketWorkers(bytes.NewReader(data), w)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s: parallel read (workers=%d): %w", m.Name, w, err)
				}
				el := time.Since(start).Seconds()
				if !a.Equal(ref) {
					return nil, fmt.Errorf("experiments: %s: parallel ingest at %d workers diverged from the serial reader", m.Name, w)
				}
				if best == 0 || el < best {
					best = el
				}
			}
			bm.Runs = append(bm.Runs, IngestBenchRun{
				Path: "parallel", Workers: w, Seconds: best,
				MBPerSec: mb / best, Speedup: serial / best,
			})
		}
		out.Matrices = append(out.Matrices, bm)
	}
	return out, nil
}

// RenderIngestBench formats an IngestBench as the indented JSON document
// committed as BENCH_ingest.json.
func RenderIngestBench(b *IngestBench) (string, error) {
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	return string(buf) + "\n", nil
}
