package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"sparseorder/internal/gen"
	"sparseorder/internal/graph"
	"sparseorder/internal/metrics"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
)

// ReorderBench is the serial-vs-parallel wall-clock comparison of the
// reordering hot path, the document committed as BENCH_reorder.json. It
// backs the Table 5 reordering-time breakdown: the per-path speedups show
// how much of a reordering's cost the Workers option recovers.
type ReorderBench struct {
	// HostCPUs and GoMaxProcs record the hardware the numbers were taken
	// on; speedups at worker counts beyond HostCPUs can only come from the
	// leaner parallel code paths, not from concurrency.
	HostCPUs   int                  `json:"host_cpus"`
	GoMaxProcs int                  `json:"gomaxprocs"`
	Repeats    int                  `json:"repeats"` // best-of wall clock, like the paper
	Matrices   []ReorderBenchMatrix `json:"matrices"`
}

// ReorderBenchMatrix is the measurement set for one generated matrix.
type ReorderBenchMatrix struct {
	Name string            `json:"name"`
	Rows int               `json:"rows"`
	NNZ  int               `json:"nnz"`
	Runs []ReorderBenchRun `json:"runs"`
}

// ReorderBenchRun is one (path, worker count) wall-clock measurement.
// Speedup is the serial (workers=1) time of the same path divided by this
// run's time.
type ReorderBenchRun struct {
	Path    string  `json:"path"` // graph, permute, features, rcm, combined
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup"`
}

// reorderBenchPaths are the measured slices of the hot path. "combined"
// is the permute+symmetrize+features pipeline the study pays once per
// (matrix, ordering); amd/nd/gp/hp are the full ordering pipelines
// (graph build included), measured end to end like the study pays them.
var reorderBenchPaths = []string{"graph", "permute", "features", "rcm", "combined", "amd", "nd", "gp", "hp"}

// reorderBenchOrderings maps the ordering bench paths to their algorithms.
// These pipelines cost tens of seconds each at study scale, so they are
// measured best-of-1 and only at the serial baseline and the four-worker
// count the acceptance numbers are quoted at; the run-to-run variance of a
// tens-of-seconds measurement is small next to the effects measured.
var reorderBenchOrderings = map[string]reorder.Algorithm{
	"amd": reorder.AMD,
	"nd":  reorder.ND,
	"gp":  reorder.GP,
	"hp":  reorder.HP,
}

// reorderBenchSeed seeds the ordering pipelines under measurement; any
// fixed value does, the bench compares worker counts, not orderings.
const reorderBenchSeed = 42

// ReorderBenchMatrices returns the generated inputs for RunReorderBench:
// a scrambled 3D grid (structurally symmetric) and a dense-row-contaminated
// unsymmetric matrix that exercises the A+Aᵀ union path. At ScaleTest the
// matrices shrink to CI-smoke sizes — still above every parallel engagement
// threshold (amdMultiMinVerts and the fork minimums) so the smoke exercises
// the parallel paths, but seconds instead of minutes to measure. Any other
// scale returns the ≥1M-nonzero pair the committed acceptance numbers are
// quoted at.
func ReorderBenchMatrices(seed int64, scale gen.Scale) []gen.Matrix {
	if scale == gen.ScaleTest {
		return []gen.Matrix{
			{Name: "grid3d_perm_small", Group: "structural", Kind: "fem-3d-scrambled",
				A: gen.Scramble(gen.Grid3D(18, 18, 18), seed+1)},
			{Name: "cfd_dense_unsym_small", Group: "CFD", Kind: "dense-rows",
				A: gen.WithDenseRows(gen.Scramble(gen.Grid2D(80, 80), seed+2), 4, 0.1, seed+3)},
		}
	}
	return []gen.Matrix{
		{Name: "grid3d_perm_large", Group: "structural", Kind: "fem-3d-scrambled",
			A: gen.Scramble(gen.Grid3D(56, 56, 56), seed+1)},
		{Name: "cfd_dense_unsym", Group: "CFD", Kind: "dense-rows",
			A: gen.WithDenseRows(gen.Scramble(gen.Grid2D(420, 420), seed+2), 12, 0.1, seed+3)},
	}
}

// RunReorderBench measures the reordering hot path serial vs parallel.
// workerCounts must start with 1 (the serial baseline); each path is run
// repeats times per worker count and the best time is kept. The RCM
// permutation is computed once per matrix and reused as the permutation
// under test, so "permute" measures a realistic (locality-changing)
// application.
func RunReorderBench(matrices []gen.Matrix, workerCounts []int, repeats int) (*ReorderBench, error) {
	if len(workerCounts) == 0 || workerCounts[0] != 1 {
		return nil, fmt.Errorf("experiments: worker counts must start with the serial baseline 1, got %v", workerCounts)
	}
	if repeats < 1 {
		repeats = 1
	}
	out := &ReorderBench{
		HostCPUs:   runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Repeats:    repeats,
	}
	for _, m := range matrices {
		a := m.A
		g, err := graph.FromMatrixSymmetrized(a)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %v", m.Name, err)
		}
		p := reorder.ReverseCuthillMcKee(g)
		bm := ReorderBenchMatrix{Name: m.Name, Rows: a.Rows, NNZ: a.NNZ()}
		serial := map[string]float64{}
		for _, w := range workerCounts {
			for _, path := range reorderBenchPaths {
				reps := repeats
				var run func() error
				if alg, ok := reorderBenchOrderings[path]; ok {
					// Minimum-degree and dissection on near-dense rows are a
					// known pathology (production AMD defers dense rows; this
					// reproduction's does not), so the ordering pipelines are
					// quoted on the structural matrix only. The dense-row
					// matrix is here to exercise the A+Aᵀ union path of the
					// graph/permute/features slices.
					if m.Kind == "dense-rows" || (w != 1 && w != 4) {
						continue
					}
					reps = 1
					run = func() error {
						_, err := reorder.Compute(alg, a, reorder.Options{
							Seed: reorderBenchSeed, Parts: 8, Workers: w})
						return err
					}
					best, err := timeBest(reps, run)
					if err != nil {
						return nil, fmt.Errorf("experiments: %s/%s workers=%d: %v", m.Name, path, w, err)
					}
					r := ReorderBenchRun{Path: path, Workers: w, Seconds: best}
					if w == 1 {
						serial[path] = best
						r.Speedup = 1
					} else if best > 0 {
						r.Speedup = serial[path] / best
					}
					bm.Runs = append(bm.Runs, r)
					continue
				}
				switch path {
				case "graph":
					run = func() error { _, err := graph.FromMatrixSymmetrizedWorkers(a, w); return err }
				case "permute":
					run = func() error { _, err := sparse.PermuteSymmetricWorkers(a, p, w); return err }
				case "features":
					run = func() error { metrics.ComputeWorkers(a, 128, 128, w); return nil }
				case "rcm":
					run = func() error { reorder.ReverseCuthillMcKeeWorkers(g, reorder.PseudoPeripheralStart, w); return nil }
				case "combined":
					run = func() error {
						b, err := sparse.PermuteSymmetricWorkers(a, p, w)
						if err != nil {
							return err
						}
						if _, err := graph.FromMatrixSymmetrizedWorkers(b, w); err != nil {
							return err
						}
						metrics.ComputeWorkers(b, 128, 128, w)
						return nil
					}
				}
				best, err := timeBest(repeats, run)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s/%s workers=%d: %v", m.Name, path, w, err)
				}
				r := ReorderBenchRun{Path: path, Workers: w, Seconds: best}
				if w == 1 {
					serial[path] = best
					r.Speedup = 1
				} else if best > 0 {
					r.Speedup = serial[path] / best
				}
				bm.Runs = append(bm.Runs, r)
			}
		}
		out.Matrices = append(out.Matrices, bm)
	}
	return out, nil
}

// timeBest runs fn reps times and returns the best wall-clock seconds. A
// forced GC before each timed run keeps the previous measurement's garbage
// off this one's bill — the same hygiene testing.B applies between
// benchmarks, and material here because a 60-second quotient-graph AMD run
// can otherwise tax the ordering measured after it.
func timeBest(reps int, fn func() error) (float64, error) {
	best := 0.0
	for it := 0; it < reps; it++ {
		runtime.GC()
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if el := time.Since(start).Seconds(); best == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

// RenderReorderBench formats a ReorderBench as the indented JSON document
// committed as BENCH_reorder.json.
func RenderReorderBench(b *ReorderBench) (string, error) {
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	return string(buf) + "\n", nil
}
