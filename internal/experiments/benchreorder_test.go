package experiments

import (
	"testing"

	"sparseorder/internal/gen"
)

// TestRunReorderBenchOrderingPaths runs the bench at test scale and checks
// the document's shape: every slice path at every worker count, and the
// ordering pipelines (amd/nd/gp/hp) at the serial baseline and the
// four-worker count with speedups filled in — the entries the CI smoke
// and the committed acceptance numbers key on.
func TestRunReorderBenchOrderingPaths(t *testing.T) {
	mats := ReorderBenchMatrices(1, gen.ScaleTest)
	bench, err := RunReorderBench(mats, []int{1, 2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.Matrices) != len(mats) {
		t.Fatalf("got %d matrices, want %d", len(bench.Matrices), len(mats))
	}
	for i, bm := range bench.Matrices {
		denseRows := mats[i].Kind == "dense-rows"
		got := map[string]map[int]ReorderBenchRun{}
		for _, r := range bm.Runs {
			if got[r.Path] == nil {
				got[r.Path] = map[int]ReorderBenchRun{}
			}
			got[r.Path][r.Workers] = r
		}
		for _, path := range reorderBenchPaths {
			want := []int{1, 2, 4}
			if _, ordering := reorderBenchOrderings[path]; ordering {
				if denseRows {
					// Ordering pipelines skip the dense-row pathology.
					if len(got[path]) != 0 {
						t.Errorf("%s/%s: ordering measured on the dense-row matrix", bm.Name, path)
					}
					continue
				}
				want = []int{1, 4} // expensive pipelines: baseline + quoted count
				if len(got[path]) != 2 {
					t.Errorf("%s/%s: %d worker counts, want 2", bm.Name, path, len(got[path]))
				}
			}
			for _, w := range want {
				r, ok := got[path][w]
				if !ok {
					t.Errorf("%s/%s: no run at workers=%d", bm.Name, path, w)
					continue
				}
				if r.Seconds <= 0 {
					t.Errorf("%s/%s workers=%d: non-positive seconds", bm.Name, path, w)
				}
				if r.Speedup <= 0 {
					t.Errorf("%s/%s workers=%d: speedup not filled in", bm.Name, path, w)
				}
			}
		}
	}
}

// TestRunReorderBenchRejectsMissingBaseline pins the precondition: the
// serial baseline must lead the worker counts or speedups are undefined.
func TestRunReorderBenchRejectsMissingBaseline(t *testing.T) {
	if _, err := RunReorderBench(nil, []int{2, 4}, 1); err == nil {
		t.Fatal("worker counts without the serial baseline were accepted")
	}
}
