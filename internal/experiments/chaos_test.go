package experiments

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"sparseorder/internal/faultinject"
	"sparseorder/internal/gen"
	"sparseorder/internal/machine"
)

// chaosReorderRules is the seeded fault schedule the soak runs under:
// ordering-phase errors at rates that leave the small set with a mix of
// injected failures and clean successes. The decisions are pure hashes of
// (seed, point, matrix shape), so every run — baseline, killed, resumed —
// sees the identical schedule.
func chaosReorderRules() []faultinject.Rule {
	return []faultinject.Rule{
		{Point: faultinject.ReorderOrder, Mode: faultinject.ModeError, Rate: 0.3},
		{Point: faultinject.ReorderGraph, Mode: faultinject.ModeError, Rate: 0.2},
	}
}

func armChaos(extra ...faultinject.Rule) {
	rules := append(chaosReorderRules(), extra...)
	faultinject.Activate(faultinject.NewPlan(7, rules...))
}

// TestChaosSoakJournalFaultResumeByteIdentical is the chaos acceptance
// test for the PR 3 durability contract under injected faults: a study
// whose checkpoint dies mid-run (injected journal-sync failure) must abort
// run-fatally, leave a loadable journal, and — resumed under the same
// fault schedule with the journal fault disarmed — reproduce the
// uninterrupted run byte for byte. The whole soak must not leak
// goroutines.
func TestChaosSoakJournalFaultResumeByteIdentical(t *testing.T) {
	ms := smallSet()
	cfg := journalConfig()
	t.Cleanup(faultinject.Deactivate)
	before := runtime.NumGoroutine()

	// Baseline: an uninterrupted run under the reorder fault schedule.
	armChaos()
	base, err := RunStudyMatrices(context.Background(), cfg, ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Failures) == 0 || len(base.Matrices) == 0 {
		t.Fatalf("schedule must split the set: %d results, %d failures — retune the rates",
			len(base.Matrices), len(base.Failures))
	}
	for i := range base.Failures {
		if c := base.Failures[i].Class; c != FailError {
			t.Errorf("%s: injected failure classed %s, want error", base.Failures[i].Name, c)
		}
	}
	if fired := faultinject.Fired(); fired[faultinject.ReorderOrder]+fired[faultinject.ReorderGraph] == 0 {
		t.Fatal("no reorder faults fired; the soak is not exercising anything")
	}

	// Killed run: the same schedule plus a journal-sync fault that fires
	// from the third append on. The runner must declare the checkpoint
	// untrustworthy and abort with the injected error.
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	armChaos(faultinject.Rule{
		Point: faultinject.JournalSync, Mode: faultinject.ModeENOSPC, Rate: 1, After: 2,
	})
	killed := cfg
	killed.Journal = j
	if _, err := RunStudyMatrices(context.Background(), killed, ms); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("killed run: err = %v, want the injected journal failure to be run-fatal", err)
	}
	j.Close() // the file itself is healthy; only injected syncs failed

	// Resume: journal fault disarmed, reorder schedule unchanged. At least
	// the two records synced before the fault are reused; records whose
	// write landed but whose sync failed may legitimately survive too (they
	// hold genuine outcomes — only their durability was unproven). Whatever
	// subset is present, the resumed run must land on exactly the baseline
	// outcome.
	armChaos()
	j2, err := LoadJournal(path, cfg)
	if err != nil {
		t.Fatalf("journal not loadable after the injected crash: %v", err)
	}
	if n := j2.Len(); n < 2 || n > len(ms) {
		t.Fatalf("journal holds %d records, want 2..%d", n, len(ms))
	}
	resumed := cfg
	resumed.Journal = j2
	res, err := RunStudyMatrices(context.Background(), resumed, ms)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Byte-identity, matrix by matrix and artifact by artifact.
	if len(res.Matrices) != len(base.Matrices) || len(res.Failures) != len(base.Failures) {
		t.Fatalf("resumed: %d results %d failures, want %d and %d",
			len(res.Matrices), len(res.Failures), len(base.Matrices), len(base.Failures))
	}
	for i := range base.Matrices {
		a, b := base.Matrices[i], res.Matrices[i]
		if a.Name != b.Name {
			t.Fatalf("result %d is %s, want %s", i, b.Name, a.Name)
		}
	}
	for _, k := range []machine.Kernel{machine.Kernel1D, machine.Kernel2D} {
		var want, got bytes.Buffer
		mc := machine.Table2[0].Name
		if err := WriteArtifactFile(&want, base, mc, k); err != nil {
			t.Fatal(err)
		}
		if err := WriteArtifactFile(&got, res, mc, k); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("artifact file for %s/%v differs after the faulted resume", mc, k)
		}
	}
	var want, got bytes.Buffer
	if err := WriteFailureReport(&want, base.Failures); err != nil {
		t.Fatal(err)
	}
	if err := WriteFailureReport(&got, res.Failures); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("failures.txt differs after the faulted resume:\n%s\nvs\n%s", want.String(), got.String())
	}

	// No goroutine leaks across the whole soak (AfterFunc watchers, pool
	// workers, telemetry). Allow the runtime a moment to retire exiting
	// goroutines.
	faultinject.Deactivate()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutine leak: %d before the soak, %d after", before, g)
	}
}

// TestChaosGovernedStudyUnderFaults combines the governor with the fault
// schedule: an impossible per-matrix budget plus injected reorder faults
// must yield only clean resource skips — the admission rejection happens
// before any ordering runs, the journal records class resource, and a
// resume re-evaluates nothing.
func TestChaosGovernedStudyUnderFaults(t *testing.T) {
	ms := smallSet()
	cfg := journalConfig()
	cfg.MemBudget = 1
	t.Cleanup(faultinject.Deactivate)
	armChaos()

	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := cfg
	run.Journal = j
	s, err := RunStudyMatrices(context.Background(), run, ms)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if len(s.Failures) != len(ms) {
		t.Fatalf("%d failures, want all %d skipped", len(s.Failures), len(ms))
	}
	for i := range s.Failures {
		f := &s.Failures[i]
		if f.Class != FailResource || f.Attempts != 1 {
			t.Errorf("%s: class %s attempts %d, want resource/1", f.Name, f.Class, f.Attempts)
		}
	}
	if fired := faultinject.Fired(); fired[faultinject.ReorderOrder]+fired[faultinject.ReorderGraph] != 0 {
		t.Error("reorder faults fired for matrices the governor rejected before evaluation")
	}

	j2, err := LoadJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != len(ms) {
		t.Fatalf("journal holds %d records, want %d resource skips", j2.Len(), len(ms))
	}
}

// TestChaosRetryPromotesToSolo checks ladder step 2 end to end: a matrix
// whose first attempt fails retryably under an active governor re-enters
// admission solo, draining the pool for its retry.
func TestChaosRetryPromotesToSolo(t *testing.T) {
	m := smallSet()[0]
	cfg := journalConfig()
	cfg.Retries = 1
	cfg.RetryBackoff = time.Millisecond
	cfg.RetryBackoffMax = time.Millisecond
	gov := newGovernor(Config{MemBudget: 1 << 20}) // the matrix fits; only the retry degrades
	var calls int
	var soloLogged bool
	logf := func(format string, args ...any) {
		if strings.Contains(format, "admitted solo") {
			soloLogged = true
		}
	}
	eval := func(ctx context.Context, mm gen.Matrix, c Config) (*MatrixResult, error) {
		calls++
		if calls == 1 {
			panic("transient wobble")
		}
		return &MatrixResult{Name: mm.Name}, nil
	}
	r, attempts, err := evaluateWithRetry(context.Background(), m, cfg, gov, 100, eval, logf)
	if err != nil || r == nil {
		t.Fatalf("retry did not recover: r=%v err=%v", r, err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2", attempts)
	}
	if !soloLogged {
		t.Error("the retry was not promoted to a solo admission")
	}
}
