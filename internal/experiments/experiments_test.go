package experiments

import (
	"bytes"
	"strings"
	"testing"

	"sparseorder/internal/gen"
	"sparseorder/internal/machine"
	"sparseorder/internal/perfprofile"
	"sparseorder/internal/reorder"
	"sparseorder/internal/stats"
)

// runTestStudy runs the study once at test scale and caches it for all
// assertions in this package.
var cachedStudy *StudyResult

func testStudy(t *testing.T) *StudyResult {
	t.Helper()
	if cachedStudy != nil {
		return cachedStudy
	}
	s, err := RunStudy(Config{Scale: gen.ScaleTest, Seed: 42})
	if err != nil {
		t.Fatalf("RunStudy: %v", err)
	}
	cachedStudy = s
	return s
}

func meanGeo(s *StudyResult, k machine.Kernel, alg reorder.Algorithm) float64 {
	var gs []float64
	for _, m := range s.Config.Machines {
		gs = append(gs, stats.GeoMean(s.Speedups(m.Name, k, alg)))
	}
	return stats.GeoMean(gs)
}

func TestStudyCoversEverything(t *testing.T) {
	s := testStudy(t)
	if len(s.Matrices) < 20 {
		t.Fatalf("study covered %d matrices", len(s.Matrices))
	}
	for _, r := range s.Matrices {
		if len(r.Perf) != 8 {
			t.Fatalf("%s evaluated on %d machines", r.Name, len(r.Perf))
		}
		for mach, byKernel := range r.Perf {
			for _, k := range []machine.Kernel{machine.Kernel1D, machine.Kernel2D} {
				if len(byKernel[k]) != 7 {
					t.Fatalf("%s/%s/%s has %d orderings", r.Name, mach, k, len(byKernel[k]))
				}
				for alg, m := range byKernel[k] {
					if m.Gflops <= 0 || m.Seconds <= 0 {
						t.Fatalf("%s/%s/%s/%s non-positive measurement", r.Name, mach, k, alg)
					}
				}
			}
		}
		if len(r.Features) != 7 {
			t.Fatalf("%s has %d feature rows", r.Name, len(r.Features))
		}
		for _, alg := range reorder.Algorithms {
			if r.ReorderSeconds[alg] < 0 {
				t.Fatalf("%s/%s negative reorder time", r.Name, alg)
			}
		}
	}
}

func TestOriginalSpeedupIsOne(t *testing.T) {
	s := testStudy(t)
	for _, r := range s.Matrices {
		if v := r.Speedup("Milan B", machine.Kernel1D, reorder.Original); v != 1 {
			t.Fatalf("%s: original speedup = %v", r.Name, v)
		}
	}
}

// TestFinding1SpeedupRange checks the paper's finding 1: extreme outliers
// exist but the typical (interquartile) speedup sits in a narrow band
// around 1.
func TestFinding1SpeedupRange(t *testing.T) {
	s := testStudy(t)
	for _, mc := range s.Config.Machines {
		for _, alg := range s.Config.Orderings {
			xs := s.Speedups(mc.Name, machine.Kernel1D, alg)
			box := stats.BoxStats(xs)
			if box.Q1 < 0.3 || box.Q3 > 2.5 {
				t.Errorf("%s/%s: interquartile range [%.2f, %.2f] implausibly wide",
					mc.Name, alg, box.Q1, box.Q3)
			}
			lo, hi := stats.MinMax(xs)
			if lo < 0.05 || hi > 40 {
				t.Errorf("%s/%s: speedups [%.2f, %.2f] outside the paper's extreme range",
					mc.Name, alg, lo, hi)
			}
		}
	}
}

// TestFinding2GPBest checks the paper's headline finding: graph
// partitioning gives the best geometric-mean 1D speedup, and the
// partitioning-based orderings beat the rest.
func TestFinding2GPBest(t *testing.T) {
	s := testStudy(t)
	gp := meanGeo(s, machine.Kernel1D, reorder.GP)
	for _, alg := range []reorder.Algorithm{reorder.RCM, reorder.AMD, reorder.ND, reorder.HP, reorder.Gray} {
		if g := meanGeo(s, machine.Kernel1D, alg); g >= gp {
			t.Errorf("1D geomean of %s (%.3f) >= GP (%.3f)", alg, g, gp)
		}
	}
	if gp < 1.05 {
		t.Errorf("GP geomean %.3f should show a clear gain", gp)
	}
	// GP also best for the 2D kernel (paper Table 4).
	gp2 := meanGeo(s, machine.Kernel2D, reorder.GP)
	for _, alg := range []reorder.Algorithm{reorder.AMD, reorder.ND, reorder.HP, reorder.Gray} {
		if g := meanGeo(s, machine.Kernel2D, alg); g >= gp2 {
			t.Errorf("2D geomean of %s (%.3f) >= GP (%.3f)", alg, g, gp2)
		}
	}
}

// TestGrayAndAMDSlowdown checks that Gray and AMD sit below 1 on the 1D
// kernel (paper Table 3) and that Gray improves under the 2D kernel
// (imbalance, its main failure mode, is removed there).
func TestGrayAndAMDSlowdown(t *testing.T) {
	s := testStudy(t)
	gray1 := meanGeo(s, machine.Kernel1D, reorder.Gray)
	if gray1 >= 1 {
		t.Errorf("Gray 1D geomean %.3f, want < 1", gray1)
	}
	if amd := meanGeo(s, machine.Kernel1D, reorder.AMD); amd >= 1 {
		t.Errorf("AMD 1D geomean %.3f, want < 1", amd)
	}
	gray2 := meanGeo(s, machine.Kernel2D, reorder.Gray)
	if gray2 <= gray1 {
		t.Errorf("Gray 2D geomean %.3f not above 1D %.3f", gray2, gray1)
	}
}

// TestFinding3CrossArchitectureConsistency checks the paper's finding 3:
// the per-ordering geometric means vary little across architectures.
func TestFinding3CrossArchitectureConsistency(t *testing.T) {
	s := testStudy(t)
	for _, alg := range s.Config.Orderings {
		var gs []float64
		for _, mc := range s.Config.Machines {
			gs = append(gs, stats.GeoMean(s.Speedups(mc.Name, machine.Kernel1D, alg)))
		}
		lo, hi := stats.MinMax(gs)
		if hi/lo > 1.35 {
			t.Errorf("%s: geomean varies %.3f-%.3f across machines (> 35%%)", alg, lo, hi)
		}
	}
}

// TestMedianSpeedupsRCMGPHP checks that RCM, GP and HP improve the median
// matrix (paper §4.2).
func TestMedianSpeedupsRCMGPHP(t *testing.T) {
	s := testStudy(t)
	for _, alg := range []reorder.Algorithm{reorder.RCM, reorder.GP, reorder.HP} {
		var pooled []float64
		for _, mach := range []string{"Milan B", "Ice Lake", "Hi1620"} {
			xs := s.Speedups(mach, machine.Kernel1D, alg)
			// Per-machine medians may dip marginally below 1 on our reduced
			// collection; allow a small tolerance.
			if med := stats.Quantile(xs, 0.5); med < 0.97 {
				t.Errorf("%s on %s: median 1D speedup %.3f < 0.97", alg, mach, med)
			}
			pooled = append(pooled, xs...)
		}
		if med := stats.Quantile(pooled, 0.5); med < 1 {
			t.Errorf("%s: pooled median 1D speedup %.3f < 1", alg, med)
		}
	}
}

// TestFinding5Fig5Shapes checks the paper's feature findings: RCM wins the
// bandwidth profile, GP wins the off-diagonal profile, and the SpMV-runtime
// profile ranks GP and HP first and second.
func TestFinding5Fig5Shapes(t *testing.T) {
	s := testStudy(t)
	profiles, err := Fig5Profiles(s)
	if err != nil {
		t.Fatal(err)
	}
	idx := func(alg reorder.Algorithm) int {
		for i, a := range allOrderings {
			if a == alg {
				return i
			}
		}
		return -1
	}
	bw := profiles["bandwidth"]
	rcmAt1 := bw[idx(reorder.RCM)].Value(1)
	for _, alg := range allOrderings {
		if alg == reorder.RCM {
			continue
		}
		if v := bw[idx(alg)].Value(1); v >= rcmAt1 {
			t.Errorf("bandwidth: %s at x=1 (%.2f) >= RCM (%.2f)", alg, v, rcmAt1)
		}
	}
	od := profiles["offdiag"]
	gpAt1 := od[idx(reorder.GP)].Value(1)
	for _, alg := range allOrderings {
		if alg == reorder.GP {
			continue
		}
		if v := od[idx(alg)].Value(1); v >= gpAt1 {
			t.Errorf("offdiag: %s at x=1 (%.2f) >= GP (%.2f)", alg, v, gpAt1)
		}
	}
	rt := profiles["spmv-runtime"]
	gpArea := perfprofile.AreaScore(&rt[idx(reorder.GP)], 2)
	for _, alg := range allOrderings {
		if alg == reorder.GP {
			continue
		}
		if a := perfprofile.AreaScore(&rt[idx(alg)], 2); a > gpArea {
			t.Errorf("runtime profile: %s area %.3f > GP %.3f", alg, a, gpArea)
		}
	}
}

// TestFig6FillShapes checks the fill-in findings: the fill-reducing
// orderings (AMD, ND) produce the least fill, and every reordering beats
// the scrambled originals in the median.
func TestFig6FillShapes(t *testing.T) {
	s := testStudy(t)
	medianFill := func(alg reorder.Algorithm) float64 {
		var xs []float64
		for _, r := range s.Matrices {
			if fr, ok := r.FillRatio[alg]; ok {
				xs = append(xs, fr)
			}
		}
		if len(xs) == 0 {
			t.Fatalf("no fill data for %s", alg)
		}
		return stats.Quantile(xs, 0.5)
	}
	amd, nd := medianFill(reorder.AMD), medianFill(reorder.ND)
	orig := medianFill(reorder.Original)
	for _, alg := range []reorder.Algorithm{reorder.Original, reorder.RCM, reorder.GP, reorder.HP} {
		m := medianFill(alg)
		if amd >= m || nd >= m {
			t.Errorf("fill: AMD %.2f / ND %.2f not below %s %.2f", amd, nd, alg, m)
		}
	}
	for _, alg := range []reorder.Algorithm{reorder.RCM, reorder.AMD, reorder.ND} {
		if m := medianFill(alg); m >= orig {
			t.Errorf("fill: %s median %.2f not below original %.2f", alg, m, orig)
		}
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	s := testStudy(t)
	if out := RenderFig2(s); !strings.Contains(out, "Milan B") || !strings.Contains(out, "median") {
		t.Error("Fig2 output malformed")
	}
	if out := RenderFig3(s); !strings.Contains(out, "2D") {
		t.Error("Fig3 output malformed")
	}
	if out := RenderTable3(s); !strings.Contains(out, "Mean") {
		t.Error("Table3 output malformed")
	}
	if out := RenderTable4(s); !strings.Contains(out, "Mean") {
		t.Error("Table4 output malformed")
	}
	out, err := RenderFig5(s)
	if err != nil || !strings.Contains(out, "offdiag") {
		t.Errorf("Fig5: %v", err)
	}
	if out := RenderFig6(s); !strings.Contains(out, "median") {
		t.Error("Fig6 output malformed")
	}
}

func TestRenderFig1(t *testing.T) {
	out, err := RenderFig1(Config{Scale: gen.ScaleTest, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kmer_V1r_like", "com-amazon_like", "freescale2_like", "Milan B", "Ice Lake"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}
	if lines := strings.Count(out, "x\n"); lines < 9 {
		t.Errorf("Fig1 has %d speedup rows, want 9", lines)
	}
}

func TestRenderFig4(t *testing.T) {
	out, err := RenderFig4(Config{Scale: gen.ScaleTest, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for class := 1; class <= 6; class++ {
		if !strings.Contains(out, "Class "+string(rune('0'+class))) {
			t.Errorf("Fig4 missing class %d", class)
		}
	}
	if !strings.Contains(out, "imb-1D") {
		t.Error("Fig4 missing imbalance rows")
	}
}

func TestTable5(t *testing.T) {
	if raceEnabled {
		t.Skip("host wall-clock timing test: skipped under -race (see race_enabled_test.go)")
	}
	rows, err := RunTable5(Config{Scale: gen.ScaleTest, Seed: 42, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("Table 5 has %d rows, want 10", len(rows))
	}
	for _, row := range rows {
		if row.SpMVSeconds <= 0 {
			t.Errorf("%s: non-positive SpMV time", row.Name)
		}
		gray := row.ReorderSeconds[reorder.Gray]
		for _, alg := range []reorder.Algorithm{reorder.ND, reorder.HP} {
			if row.ReorderSeconds[alg] < gray {
				t.Errorf("%s: %s (%.4fs) faster than Gray (%.4fs)", row.Name, alg, row.ReorderSeconds[alg], gray)
			}
		}
	}
}

// TestFinding6ReorderingCost checks the paper's finding 6 in aggregate:
// Gray is the fastest reordering and RCM the second fastest, while HP and
// ND are among the slowest.
func TestFinding6ReorderingCost(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock reorder-cost ranking: race instrumentation skews relative timings (see race_enabled_test.go)")
	}
	s := testStudy(t)
	total := map[reorder.Algorithm]float64{}
	for _, r := range s.Matrices {
		for alg, sec := range r.ReorderSeconds {
			total[alg] += sec
		}
	}
	if total[reorder.Gray] >= total[reorder.RCM] {
		t.Errorf("Gray total %.3fs not below RCM %.3fs", total[reorder.Gray], total[reorder.RCM])
	}
	for _, alg := range []reorder.Algorithm{reorder.AMD, reorder.ND, reorder.GP, reorder.HP} {
		if total[reorder.RCM] >= total[alg] {
			t.Errorf("RCM total %.3fs not below %s %.3fs", total[reorder.RCM], alg, total[alg])
		}
	}
	slowest := reorder.RCM
	for _, alg := range reorder.Algorithms {
		if total[alg] > total[slowest] {
			slowest = alg
		}
	}
	if slowest != reorder.HP && slowest != reorder.ND {
		t.Errorf("slowest reordering is %s, expected HP or ND", slowest)
	}
}

func TestArtifactFile(t *testing.T) {
	s := testStudy(t)
	var buf bytes.Buffer
	if err := WriteArtifactFile(&buf, s, "Milan B", machine.Kernel1D); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(s.Matrices)+1 {
		t.Fatalf("artifact has %d lines, want %d", len(lines), len(s.Matrices)+1)
	}
	// 6 metadata fields + 7 orderings x 7 fields.
	fields := strings.Fields(lines[1])
	if len(fields) != 6+7*7 {
		t.Errorf("artifact row has %d fields, want %d", len(fields), 6+7*7)
	}
	if err := WriteArtifactFile(&buf, s, "bogus", machine.Kernel1D); err == nil {
		t.Error("accepted unknown machine")
	}
}

func TestRenderDenseCSRRef(t *testing.T) {
	out := RenderDenseCSRRef(Config{Scale: gen.ScaleTest, Seed: 1, Repeats: 2})
	if !strings.Contains(out, "Gflop/s") || !strings.Contains(out, "Milan B") {
		t.Errorf("dense reference output malformed:\n%s", out)
	}
}

func TestRenderTable5(t *testing.T) {
	if raceEnabled {
		t.Skip("host wall-clock timing test: skipped under -race (see race_enabled_test.go)")
	}
	out, err := RenderTable5(Config{Scale: gen.ScaleTest, Seed: 42, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Break-even") || !strings.Contains(out, "SpMV") {
		t.Error("Table5 output malformed")
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	s := testStudy(t)
	var buf bytes.Buffer
	if err := WriteArtifactFile(&buf, s, "Ice Lake", machine.Kernel1D); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadArtifactFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(s.Matrices) {
		t.Fatalf("parsed %d rows, want %d", len(rows), len(s.Matrices))
	}
	for i, row := range rows {
		r := s.Matrices[i]
		if row.Name != r.Name || row.NNZ != r.NNZ {
			t.Fatalf("row %d metadata mismatch: %s/%d vs %s/%d", i, row.Name, row.NNZ, r.Name, r.NNZ)
		}
		for alg, got := range row.Perf {
			want := r.Perf["Ice Lake"][machine.Kernel1D][alg]
			if got.MinNNZ != want.MinNNZ || got.MaxNNZ != want.MaxNNZ {
				t.Fatalf("row %d %s thread nnz mismatch", i, alg)
			}
			if relDiff(got.Gflops, want.Gflops) > 1e-3 || relDiff(got.Seconds, want.Seconds) > 1e-3 {
				t.Fatalf("row %d %s perf mismatch: %+v vs %+v", i, alg, got, want)
			}
		}
	}
	// The geometric means recomputed from the file must match the study's
	// own aggregation to formatting precision.
	for _, alg := range reorder.Algorithms {
		fromFile := GeoMeanFromArtifact(rows, alg)
		direct := stats.GeoMean(s.Speedups("Ice Lake", machine.Kernel1D, alg))
		if relDiff(fromFile, direct) > 1e-2 {
			t.Errorf("%s: artifact geomean %.4f vs direct %.4f", alg, fromFile, direct)
		}
	}
}

func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	if m == 0 {
		return 0
	}
	return d / m
}

func TestReadArtifactRejectsGarbage(t *testing.T) {
	if _, err := ReadArtifactFile(strings.NewReader("too few fields\n")); err == nil {
		t.Error("accepted short row")
	}
	bad := "g n 1 1 1 1" + strings.Repeat(" x", 49) + "\n"
	if _, err := ReadArtifactFile(strings.NewReader(bad)); err == nil {
		t.Error("accepted non-numeric row")
	}
}

func TestRenderFindingsAllPass(t *testing.T) {
	if raceEnabled {
		t.Skip("finding 6 ranks wall-clock reorder costs, which race instrumentation skews (see race_enabled_test.go)")
	}
	s := testStudy(t)
	out, err := RenderFindings(s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "[PASS]") != 6 {
		t.Errorf("not all findings reproduced:\n%s", out)
	}
}

func TestGeoMeanTableShape(t *testing.T) {
	s := testStudy(t)
	table, machines, algs := GeoMeanTable(s, machine.Kernel1D)
	if len(machines) != 8 || len(algs) != 6 {
		t.Fatalf("table over %d machines x %d algs", len(machines), len(algs))
	}
	for i := range table {
		if len(table[i]) != len(algs)+1 {
			t.Fatalf("row %d has %d columns", i, len(table[i]))
		}
		for j, v := range table[i] {
			if v <= 0 || v > 10 {
				t.Fatalf("geomean [%d][%d] = %v implausible", i, j, v)
			}
		}
	}
}

func TestFig1ContainsPatterns(t *testing.T) {
	out, err := RenderFig1(Config{Scale: gen.ScaleTest, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "original") || !strings.Contains(out, "+----") {
		t.Error("Fig1 missing sparsity-pattern blocks")
	}
}

func TestGnuplotWriters(t *testing.T) {
	s := testStudy(t)
	var dat bytes.Buffer
	if err := WriteSpeedupDat(&dat, s, machine.Kernel1D); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(dat.String()), "\n")
	// Header + 8 machines x 6 orderings rows.
	if len(lines) != 1+8*6 {
		t.Fatalf("dat file has %d lines, want %d", len(lines), 1+8*6)
	}
	for _, l := range lines[1:] {
		if len(strings.Fields(l)) != 7 {
			t.Fatalf("dat row %q malformed", l)
		}
	}
	var gp bytes.Buffer
	if err := WriteSpeedupGnuplot(&gp, "fig2.dat", "fig2.png", "t"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gp.String(), "candlesticks") {
		t.Error("gnuplot script missing candlesticks plot")
	}
}
