package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteFailureReport renders the study's failures as the failures.txt
// artifact: one block per failed matrix with its class, attempt count and
// full error (including the recovered stack for panics). An empty failure
// list writes a single "no failures" line so the artifact always exists
// and is self-describing.
func WriteFailureReport(w io.Writer, failures []MatrixError) error {
	if len(failures) == 0 {
		_, err := fmt.Fprintln(w, "no failures")
		return err
	}
	for i, f := range failures {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		ord := string(f.Ordering)
		if ord == "" {
			ord = "-"
		}
		if _, err := fmt.Fprintf(w, "matrix: %s\nordering: %s\nclass: %s\nattempts: %d\nerror: %s\n",
			f.Name, ord, f.Class, f.Attempts, indentTail(f.Err.Error())); err != nil {
			return err
		}
	}
	return nil
}

// indentTail indents continuation lines of a multi-line message (panic
// stacks) so each failure block stays visually delimited.
func indentTail(s string) string {
	return strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
