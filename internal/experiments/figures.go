package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sparseorder/internal/gen"
	"sparseorder/internal/machine"
	"sparseorder/internal/perfprofile"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
	"sparseorder/internal/spy"
	"sparseorder/internal/stats"
)

// allOrderings is the column order used throughout the paper's tables.
var allOrderings = reorder.AllOrderings

// RenderFig1 reproduces Figure 1: SpMV speedup (1D kernel) of RCM, ND and
// GP over the original ordering for the three showcase matrices, on the
// Milan B and Ice Lake machine models.
func RenderFig1(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	milan, _ := machine.ByName("Milan B")
	ice, _ := machine.ByName("Ice Lake")
	cfg.Machines = []machine.Machine{milan, ice}
	cfg.Orderings = []reorder.Algorithm{reorder.RCM, reorder.ND, reorder.GP}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: sparsity patterns and SpMV speedup over original ordering (1D kernel)\n")
	for _, m := range gen.Fig1Set(cfg.Scale, cfg.Seed) {
		r, err := EvaluateMatrix(m, cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\n%s (%d rows, %d nnz)\n", m.Name, m.A.Rows, m.A.NNZ())
		labels := []string{"original"}
		mats := []*sparse.CSR{m.A}
		for _, alg := range cfg.Orderings {
			bm, _, err := reorder.Apply(alg, m.A, reorder.Options{Seed: cfg.Seed})
			if err != nil {
				return "", err
			}
			labels = append(labels, string(alg))
			mats = append(mats, bm)
		}
		b.WriteString(spy.SideBySide(labels, mats, 16))
		fmt.Fprintf(&b, "%-10s %10s %10s\n", "ordering", "Milan B", "Ice Lake")
		for _, alg := range cfg.Orderings {
			fmt.Fprintf(&b, "%-10s %9.2fx %9.2fx\n", alg,
				r.Speedup("Milan B", machine.Kernel1D, alg),
				r.Speedup("Ice Lake", machine.Kernel1D, alg))
		}
	}
	return b.String(), nil
}

// renderSpeedupBoxes renders the Figure 2/3 box-plot data: one row per
// (machine, ordering) with the five-number summary of the speedup
// distribution over the collection.
func renderSpeedupBoxes(s *StudyResult, k machine.Kernel, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %-6s %8s %8s %8s %8s %8s %5s\n",
		"machine", "order", "whisk-lo", "q1", "median", "q3", "whisk-hi", "outl")
	for _, mc := range s.Config.Machines {
		for _, alg := range s.Config.Orderings {
			xs := s.Speedups(mc.Name, k, alg)
			box := stats.BoxStats(xs)
			fmt.Fprintf(&b, "%-10s %-6s %8.3f %8.3f %8.3f %8.3f %8.3f %5d\n",
				mc.Name, alg, box.WhiskerLo, box.Q1, box.Median, box.Q3, box.WhiskerHi, box.Outliers)
		}
	}
	return b.String()
}

// RenderFig2 reproduces Figure 2 (1D speedup distributions).
func RenderFig2(s *StudyResult) string {
	return renderSpeedupBoxes(s, machine.Kernel1D,
		"Figure 2: speedup of SpMV using the 1D algorithm after reordering (box statistics)")
}

// RenderFig3 reproduces Figure 3 (2D speedup distributions).
func RenderFig3(s *StudyResult) string {
	return renderSpeedupBoxes(s, machine.Kernel2D,
		"Figure 3: speedup of the nonzero-balanced (2D) SpMV kernel after reordering (box statistics)")
}

// GeoMeanTable computes the Table 3/4 grid: geometric-mean speedup per
// (machine, ordering) plus row and column means.
func GeoMeanTable(s *StudyResult, k machine.Kernel) ([][]float64, []string, []string) {
	machines := make([]string, len(s.Config.Machines))
	for i, m := range s.Config.Machines {
		machines[i] = m.Name
	}
	algs := make([]string, len(s.Config.Orderings))
	for i, a := range s.Config.Orderings {
		algs[i] = string(a)
	}
	table := make([][]float64, len(machines))
	for i, mach := range machines {
		table[i] = make([]float64, len(algs)+1)
		var rowVals []float64
		for j, alg := range s.Config.Orderings {
			g := stats.GeoMean(s.Speedups(mach, k, alg))
			table[i][j] = g
			rowVals = append(rowVals, g)
		}
		table[i][len(algs)] = stats.GeoMean(rowVals)
	}
	return table, machines, algs
}

func renderGeoMeanTable(s *StudyResult, k machine.Kernel, title string) string {
	table, machines, algs := GeoMeanTable(s, k)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s", k.String())
	for _, a := range algs {
		fmt.Fprintf(&b, " %7s", a)
	}
	fmt.Fprintf(&b, " %7s\n", "Mean")
	colSums := make([]float64, len(algs)+1)
	for i, mach := range machines {
		fmt.Fprintf(&b, "%-10s", mach)
		for j := range table[i] {
			fmt.Fprintf(&b, " %7.3f", table[i][j])
			colSums[j] += table[i][j]
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-10s", "Mean")
	for _, sum := range colSums {
		fmt.Fprintf(&b, " %7.3f", sum/float64(len(machines)))
	}
	fmt.Fprintln(&b)
	return b.String()
}

// RenderTable3 reproduces Table 3 (geometric-mean 1D speedups).
func RenderTable3(s *StudyResult) string {
	return renderGeoMeanTable(s, machine.Kernel1D,
		"Table 3: geometric mean of 1D SpMV speedups over the original ordering")
}

// RenderTable4 reproduces Table 4 (geometric-mean 2D speedups).
func RenderTable4(s *StudyResult) string {
	return renderGeoMeanTable(s, machine.Kernel2D,
		"Table 4: geometric mean of 2D SpMV speedups over the original ordering")
}

// fig4Machines picks the three platforms of Figure 4: one AMD, one Intel,
// one ARM.
func fig4Machines() []machine.Machine {
	var out []machine.Machine
	for _, name := range []string{"Milan B", "Ice Lake", "Hi1620"} {
		m, _ := machine.ByName(name)
		out = append(out, m)
	}
	return out
}

// RenderFig4 reproduces Figure 4: for one representative matrix per
// behaviour class, 1D and 2D speedups of every ordering on three
// platforms, alongside the 1D load-imbalance factors that explain them.
func RenderFig4(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	cfg.Machines = fig4Machines()

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: per-class analysis (speedups and 1D imbalance factors)\n")
	for class, m := range gen.Fig4Set(cfg.Scale, cfg.Seed) {
		r, err := EvaluateMatrix(m, cfg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\nClass %d: %s (%d rows, %d nnz)\n", class+1, m.Name, m.A.Rows, m.A.NNZ())
		fmt.Fprintf(&b, "%-10s %-8s", "machine", "kernel")
		for _, alg := range allOrderings {
			fmt.Fprintf(&b, " %7s", alg)
		}
		fmt.Fprintln(&b)
		for _, mc := range cfg.Machines {
			for _, k := range []machine.Kernel{machine.Kernel1D, machine.Kernel2D} {
				fmt.Fprintf(&b, "%-10s %-8s", mc.Name, "spd-"+k.String())
				for _, alg := range allOrderings {
					fmt.Fprintf(&b, " %6.2fx", r.Speedup(mc.Name, k, alg))
				}
				fmt.Fprintln(&b)
			}
			fmt.Fprintf(&b, "%-10s %-8s", mc.Name, "imb-1D")
			for _, alg := range allOrderings {
				fmt.Fprintf(&b, " %7.2f", r.Perf[mc.Name][machine.Kernel1D][alg].Imbalance)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String(), nil
}

// Fig5Profiles builds the four Dolan-Moré performance-profile cost tables
// of Figure 5 — bandwidth, profile, off-diagonal nonzero count and SpMV
// runtime on Milan B — across all orderings including Original.
func Fig5Profiles(s *StudyResult) (map[string][]perfprofile.Profile, error) {
	methods := make([]string, len(allOrderings))
	for i, a := range allOrderings {
		methods[i] = string(a)
	}
	kinds := map[string]func(r *MatrixResult, alg reorder.Algorithm) float64{
		"bandwidth": func(r *MatrixResult, alg reorder.Algorithm) float64 {
			return float64(r.Features[alg].Bandwidth)
		},
		"profile": func(r *MatrixResult, alg reorder.Algorithm) float64 {
			return float64(r.Features[alg].Profile)
		},
		"offdiag": func(r *MatrixResult, alg reorder.Algorithm) float64 {
			return float64(r.Features[alg].OffDiagNNZ)
		},
		"spmv-runtime": func(r *MatrixResult, alg reorder.Algorithm) float64 {
			return r.Perf["Milan B"][machine.Kernel1D][alg].Seconds
		},
	}
	out := map[string][]perfprofile.Profile{}
	for kind, costOf := range kinds {
		var costs [][]float64
		for _, r := range s.Matrices {
			row := make([]float64, len(allOrderings))
			for j, alg := range allOrderings {
				row[j] = costOf(r, alg)
			}
			costs = append(costs, row)
		}
		profiles, err := perfprofile.Compute(methods, costs)
		if err != nil {
			return nil, err
		}
		out[kind] = profiles
	}
	return out, nil
}

// RenderFig5 reproduces Figure 5 as tables of profile values at selected
// performance-ratio points.
func RenderFig5(s *StudyResult) (string, error) {
	profiles, err := Fig5Profiles(s)
	if err != nil {
		return "", err
	}
	xs := []float64{1.0, 1.1, 1.25, 1.5, 2, 3, 5, 10}
	var kinds []string
	for k := range profiles {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: performance profiles (fraction of matrices within factor x of the best)\n")
	for _, kind := range kinds {
		fmt.Fprintf(&b, "\n[%s]\n%-10s", kind, "x")
		for _, alg := range allOrderings {
			fmt.Fprintf(&b, " %7s", alg)
		}
		fmt.Fprintln(&b)
		rows := perfprofile.Table(profiles[kind], xs)
		for i, x := range xs {
			fmt.Fprintf(&b, "%-10.2f", x)
			for _, v := range rows[i] {
				fmt.Fprintf(&b, " %7.2f", v)
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String(), nil
}

// symmetricOrderings are the orderings eligible for Cholesky (Figure 6):
// Gray is excluded because it does not preserve symmetry.
var symmetricOrderings = []reorder.Algorithm{
	reorder.Original, reorder.RCM, reorder.AMD, reorder.ND, reorder.GP, reorder.HP,
}

// RenderFig6 reproduces Figure 6: box statistics of the Cholesky fill
// ratio nnz(L)/nnz(A) over the SPD subset, per symmetric ordering.
func RenderFig6(s *StudyResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: Cholesky fill ratio nnz(L)/nnz(A) over the SPD subset (box statistics)\n")
	fmt.Fprintf(&b, "%-10s %5s %8s %8s %8s %8s %8s\n", "order", "n", "min", "q1", "median", "q3", "max")
	for _, alg := range symmetricOrderings {
		var xs []float64
		for _, r := range s.Matrices {
			if fr, ok := r.FillRatio[alg]; ok {
				xs = append(xs, fr)
			}
		}
		box := stats.BoxStats(xs)
		fmt.Fprintf(&b, "%-10s %5d %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			alg, box.N, box.Min, box.Q1, box.Median, box.Q3, box.Max)
	}
	return b.String()
}

// Table5Row is one row of the reordering-overhead table.
type Table5Row struct {
	Name           string
	ReorderSeconds map[reorder.Algorithm]float64
	// ReorderPhases is the per-phase breakdown of ReorderSeconds (graph
	// construction, ordering, permutation application) at the configured
	// ReorderWorkers.
	ReorderPhases map[reorder.Algorithm]reorder.PhaseTimings
	SpMVSeconds   float64 // one host 1D SpMV iteration (best of Repeats)
	BreakEven     map[reorder.Algorithm]float64
}

// RunTable5 reproduces Table 5: reordering wall-clock time for the ten
// large matrices plus the time of a single host SpMV iteration, and the
// derived break-even iteration counts of §4.7 (how many SpMV iterations
// amortise the reordering, using the model speedup on Ice Lake).
func RunTable5(cfg Config) ([]Table5Row, error) {
	cfg = cfg.withDefaults()
	ice, _ := machine.ByName("Ice Lake")
	cfg.Machines = []machine.Machine{ice}
	var rows []Table5Row
	for _, m := range gen.LargeSet(cfg.Scale, cfg.Seed) {
		cfg.Logf("table 5: %s (%d rows, %d nnz)", m.Name, m.A.Rows, m.A.NNZ())
		r, err := EvaluateMatrix(m, cfg)
		if err != nil {
			return nil, err
		}
		row := Table5Row{
			Name:           m.Name,
			ReorderSeconds: r.ReorderSeconds,
			ReorderPhases:  r.ReorderPhases,
			BreakEven:      map[reorder.Algorithm]float64{},
		}
		// Host wall-clock for one 1D SpMV iteration: best of Repeats runs.
		// Each timed iteration also lands in the spmv/host1d histogram so a
		// live scrape shows the host-kernel share of a Table 5 run.
		hostPh := cfg.Obs.Phase("spmv/host1d")
		x := make([]float64, m.A.Cols)
		for i := range x {
			x[i] = 1
		}
		y := make([]float64, m.A.Rows)
		best := 0.0
		for it := 0; it < cfg.Repeats; it++ {
			start := time.Now()
			spmv.Mul1D(m.A, x, y, cfg.HostThreads)
			el := time.Since(start).Seconds()
			hostPh.Observe(el)
			if best == 0 || el < best {
				best = el
			}
		}
		row.SpMVSeconds = best
		// Break-even (paper §4.7): iterations = reorderTime /
		// (spmvTime·(1-1/speedup)); only meaningful for speedup > 1.
		for _, alg := range cfg.Orderings {
			sp := r.Speedup("Ice Lake", machine.Kernel1D, alg)
			if sp > 1 {
				row.BreakEven[alg] = row.ReorderSeconds[alg] / (best * (1 - 1/sp))
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable5 formats the RunTable5 output.
func RenderTable5(cfg Config) (string, error) {
	cfg = cfg.withDefaults()
	rows, err := RunTable5(cfg)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: time (seconds) to reorder a matrix; host SpMV iteration time for comparison\n")
	fmt.Fprintf(&b, "%-18s", "matrix")
	for _, alg := range cfg.Orderings {
		fmt.Fprintf(&b, " %9s", alg)
	}
	fmt.Fprintf(&b, " %10s\n", "SpMV")
	for _, row := range rows {
		fmt.Fprintf(&b, "%-18s", row.Name)
		for _, alg := range cfg.Orderings {
			fmt.Fprintf(&b, " %9.3f", row.ReorderSeconds[alg])
		}
		fmt.Fprintf(&b, " %10.6f\n", row.SpMVSeconds)
	}
	fmt.Fprintf(&b, "\nReordering-time breakdown (graph build / ordering / permute seconds, reorder workers=%d;\nsee BENCH_reorder.json for the serial-vs-parallel comparison)\n", cfg.ReorderWorkers)
	fmt.Fprintf(&b, "%-18s %-8s", "matrix", "phase")
	for _, alg := range cfg.Orderings {
		fmt.Fprintf(&b, " %9s", alg)
	}
	fmt.Fprintln(&b)
	for _, row := range rows {
		for _, phase := range []struct {
			name string
			get  func(reorder.PhaseTimings) float64
		}{
			{"graph", func(t reorder.PhaseTimings) float64 { return t.GraphSeconds }},
			{"order", func(t reorder.PhaseTimings) float64 { return t.OrderSeconds }},
			{"permute", func(t reorder.PhaseTimings) float64 { return t.PermuteSeconds }},
		} {
			fmt.Fprintf(&b, "%-18s %-8s", row.Name, phase.name)
			for _, alg := range cfg.Orderings {
				fmt.Fprintf(&b, " %9.3f", phase.get(row.ReorderPhases[alg]))
			}
			fmt.Fprintln(&b)
		}
	}
	fmt.Fprintf(&b, "\nBreak-even SpMV iterations (model speedup on Ice Lake, §4.7; '-' = no speedup)\n")
	fmt.Fprintf(&b, "%-18s", "matrix")
	for _, alg := range cfg.Orderings {
		fmt.Fprintf(&b, " %9s", alg)
	}
	fmt.Fprintln(&b)
	for _, row := range rows {
		fmt.Fprintf(&b, "%-18s", row.Name)
		for _, alg := range cfg.Orderings {
			if be, ok := row.BreakEven[alg]; ok {
				fmt.Fprintf(&b, " %9.0f", be)
			} else {
				fmt.Fprintf(&b, " %9s", "-")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String(), nil
}

// RenderDenseCSRRef reproduces the §4.2 reference experiment: SpMV on a
// tall-and-skinny dense matrix in CSR format, reported for the host (wall
// clock) and the Milan B model.
func RenderDenseCSRRef(cfg Config) string {
	cfg = cfg.withDefaults()
	f := cfg.Scale.Factor()
	a := gen.TallSkinnyDense(2400*f, 100*f, cfg.Seed)
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, a.Rows)
	best := 0.0
	for it := 0; it < cfg.Repeats; it++ {
		start := time.Now()
		spmv.Mul1D(a, x, y, cfg.HostThreads)
		el := time.Since(start).Seconds()
		if best == 0 || el < best {
			best = el
		}
	}
	milan, _ := machine.ByName("Milan B")
	est := machine.EstimateSpMV(a, milan, machine.Kernel1D)
	var b strings.Builder
	fmt.Fprintf(&b, "Dense tall-skinny CSR reference (§4.2): %dx%d, %d nnz\n", a.Rows, a.Cols, a.NNZ())
	fmt.Fprintf(&b, "host (%d threads): %.4gs, %.1f Gflop/s\n", cfg.HostThreads, best, spmv.Gflops(a.NNZ(), best))
	fmt.Fprintf(&b, "Milan B model:     %.4gs, %.1f Gflop/s (%.0f%% of 12-byte/nnz bandwidth bound)\n",
		est.Seconds, est.Gflops, 100*est.Gflops/(2*milan.BandwidthGB/12))
	return b.String()
}
