package experiments

import (
	"sparseorder/internal/cholesky"
	"sparseorder/internal/sparse"
)

// fillOf wraps the Cholesky fill-ratio computation used by the study.
func fillOf(a *sparse.CSR) (float64, error) {
	return cholesky.FillRatio(a)
}
