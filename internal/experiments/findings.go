package experiments

import (
	"fmt"
	"strings"

	"sparseorder/internal/machine"
	"sparseorder/internal/perfprofile"
	"sparseorder/internal/reorder"
	"sparseorder/internal/stats"
)

// RenderFindings evaluates the paper's six key findings (§1) against the
// study results and prints a checklist with the measured values — the
// one-screen summary of the reproduction.
func RenderFindings(s *StudyResult) (string, error) {
	var b strings.Builder
	check := func(ok bool, text string, args ...any) {
		mark := "PASS"
		if !ok {
			mark = "DIFF"
		}
		fmt.Fprintf(&b, "[%s] %s\n", mark, fmt.Sprintf(text, args...))
	}
	geo := func(k machine.Kernel, alg reorder.Algorithm) float64 {
		var gs []float64
		for _, m := range s.Config.Machines {
			gs = append(gs, stats.GeoMean(s.Speedups(m.Name, k, alg)))
		}
		return stats.GeoMean(gs)
	}

	fmt.Fprintf(&b, "Key findings of the paper, evaluated on this reproduction\n")
	fmt.Fprintf(&b, "(collection: %d matrices; machines: %d models)\n\n", len(s.Matrices), len(s.Config.Machines))

	// Finding 1: extremes exist but the typical case is 0.5-1.5x.
	var lo, hi float64 = 1, 1
	typical := true
	for _, mc := range s.Config.Machines {
		for _, alg := range s.Config.Orderings {
			xs := s.Speedups(mc.Name, machine.Kernel1D, alg)
			l, h := stats.MinMax(xs)
			if l < lo {
				lo = l
			}
			if h > hi {
				hi = h
			}
			box := stats.BoxStats(xs)
			if box.Q1 < 0.4 || box.Q3 > 2.0 {
				typical = false
			}
		}
	}
	check(typical && lo >= 0.05 && hi <= 40,
		"1. speedups span %.2f-%.2fx with interquartile ranges inside ~[0.5, 1.5] (paper: 0.05-40x, typical 0.5-1.5x)", lo, hi)

	// Finding 2: partitioning-based orderings best.
	gp1, hp1 := geo(machine.Kernel1D, reorder.GP), geo(machine.Kernel1D, reorder.HP)
	best := true
	for _, alg := range []reorder.Algorithm{reorder.RCM, reorder.AMD, reorder.ND, reorder.Gray} {
		if geo(machine.Kernel1D, alg) >= gp1 {
			best = false
		}
	}
	check(best, "2. GP gives the best 1D geomean (%.3f; HP %.3f) (paper: GP 1.205, HP 1.103)", gp1, hp1)

	// Finding 3: consistency across architectures.
	consistent := true
	for _, alg := range s.Config.Orderings {
		var gs []float64
		for _, mc := range s.Config.Machines {
			gs = append(gs, stats.GeoMean(s.Speedups(mc.Name, machine.Kernel1D, alg)))
		}
		l, h := stats.MinMax(gs)
		if h/l > 1.35 {
			consistent = false
		}
	}
	check(consistent, "3. per-ordering geomeans vary <35%% across the 8 machines (paper: cross-architecture stability)")

	// Finding 4: load balance + locality explain classes (spot check: the
	// 2D kernel lifts Gray, whose failure mode is imbalance).
	gray1, gray2 := geo(machine.Kernel1D, reorder.Gray), geo(machine.Kernel2D, reorder.Gray)
	check(gray2 > gray1, "4. removing imbalance (2D kernel) lifts Gray: %.3f -> %.3f (paper: 0.757 -> 0.910)", gray1, gray2)

	// Finding 5: off-diagonal count is the feature that matters.
	profiles, err := Fig5Profiles(s)
	if err != nil {
		return "", err
	}
	idx := map[reorder.Algorithm]int{}
	for i, a := range allOrderings {
		idx[a] = i
	}
	od := profiles["offdiag"]
	rt := profiles["spmv-runtime"]
	gpODBest, gpRTBest := true, true
	for _, alg := range allOrderings {
		if alg == reorder.GP {
			continue
		}
		if od[idx[alg]].Value(1) >= od[idx[reorder.GP]].Value(1) {
			gpODBest = false
		}
		if perfprofile.AreaScore(&rt[idx[alg]], 2) > perfprofile.AreaScore(&rt[idx[reorder.GP]], 2) {
			gpRTBest = false
		}
	}
	check(gpODBest && gpRTBest,
		"5. GP dominates both the off-diagonal-count and SpMV-runtime profiles (paper: runtime profile mirrors off-diag)")

	// Finding 6: Gray fastest to compute, RCM second.
	total := map[reorder.Algorithm]float64{}
	for _, r := range s.Matrices {
		for alg, sec := range r.ReorderSeconds {
			total[alg] += sec
		}
	}
	ordered := total[reorder.Gray] < total[reorder.RCM]
	for _, alg := range []reorder.Algorithm{reorder.AMD, reorder.ND, reorder.GP, reorder.HP} {
		if total[reorder.RCM] >= total[alg] {
			ordered = false
		}
	}
	check(ordered, "6. reordering cost: Gray (%.2fs) < RCM (%.2fs) < others (paper: Gray fastest, RCM second)",
		total[reorder.Gray], total[reorder.RCM])

	return b.String(), nil
}
