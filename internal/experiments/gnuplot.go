package experiments

import (
	"fmt"
	"io"

	"sparseorder/internal/machine"
	"sparseorder/internal/stats"
)

// The paper's artifact ships gnuplot scripts that rebuild Figures 2 and 3
// from the data files; this file provides the same pipeline for the
// reproduction: a whisker-plot data file plus a ready-to-run gnuplot
// script.

// WriteSpeedupDat writes the box statistics of the speedup distributions
// in gnuplot "candlesticks" layout: one row per (machine, ordering) with
// columns index, whisker-low, q1, median, q3, whisker-high, label.
func WriteSpeedupDat(w io.Writer, s *StudyResult, k machine.Kernel) error {
	idx := 0
	if _, err := fmt.Fprintf(w, "# idx whisklo q1 median q3 whiskhi label\n"); err != nil {
		return err
	}
	for _, mc := range s.Config.Machines {
		for _, alg := range s.Config.Orderings {
			box := stats.BoxStats(s.Speedups(mc.Name, k, alg))
			if _, err := fmt.Fprintf(w, "%d %.4f %.4f %.4f %.4f %.4f %s/%s\n",
				idx, box.WhiskerLo, box.Q1, box.Median, box.Q3, box.WhiskerHi,
				sanitize(mc.Name), alg); err != nil {
				return err
			}
			idx++
		}
		idx++ // gap between machines
	}
	return nil
}

// WriteSpeedupGnuplot writes a gnuplot script that renders the data file
// produced by WriteSpeedupDat as the paper's Figure 2/3 style candlestick
// plot.
func WriteSpeedupGnuplot(w io.Writer, datFile, outFile, title string) error {
	_, err := fmt.Fprintf(w, `set terminal pngcairo size 1400,500
set output %q
set title %q
set ylabel "speedup over original ordering"
set xtics rotate by -60 font ",7"
set grid ytics
set key off
set boxwidth 0.6
set yrange [0:*]
plot 1 with lines lc rgb "gray" dt 2, \
     %q using 1:3:2:6:5:xtic(7) with candlesticks whiskerbars lc rgb "#4477aa", \
     '' using 1:4:4:4:4 with candlesticks lt -1 notitle
`, outFile, title, datFile)
	return err
}
