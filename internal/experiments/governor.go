package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"

	"sparseorder/internal/obs"
	"sparseorder/internal/reorder"
)

// ErrResourceBudget reports that a matrix was not evaluated because its
// estimated working set exceeds what the memory budget can ever grant
// (more than soloOvercommit times the budget, i.e. not even a drained-pool
// solo run could stay near the limit). The failure classifies as
// FailResource, journals as a terminal failure, and resumes cleanly.
var ErrResourceBudget = errors.New("experiments: matrix working set exceeds the memory budget")

// soloOvercommit is how far past the budget a single matrix may go when it
// runs alone with the pool drained (degradation ladder step 2). Matrices
// estimated beyond budget*soloOvercommit are skipped with ErrResourceBudget
// (step 3).
const soloOvercommit = 2

// Per-structure byte costs used by the working-set estimator. CSR stores
// RowPtr []int (8 B/row), ColIdx []int32 (4 B/nnz) and Val []float64
// (8 B/nnz); the adjacency graph of A+Aᵀ stores Ptr []int and Adj []int32
// with every edge appearing twice, up to 2·nnz directed edges.
func csrBytes(n, nnz int64) int64   { return 8*(n+1) + 12*nnz }
func graphBytes(n, nnz int64) int64 { return 8*(n+1) + 4*2*nnz }

// estimateOrderingBytes returns the transient allocation high-water mark of
// computing one ordering, beyond the input and output CSR copies. The
// factors are the per-ordering blow-ups of the implementations:
//
//   - RCM: the A+Aᵀ graph plus O(n) BFS level/queue state (~24 B/row).
//   - AMD: the graph plus a quotient-graph workspace of the same order
//     (≈2× graph).
//   - ND and GP: the graph plus the coarsening/recursion hierarchy; level
//     sizes decay roughly geometrically, summing to ≈2× the finest graph
//     (≈3× graph total).
//   - HP: the hypergraph (one pin per nonzero, net pointers per row/col)
//     plus its coarsening hierarchy, ≈2× the finest hypergraph.
//   - Gray: per-row bitmap keys and the sort permutation, O(n).
func estimateOrderingBytes(alg reorder.Algorithm, n, nnz int64) int64 {
	g := graphBytes(n, nnz)
	switch alg {
	case reorder.RCM:
		return g + 24*n
	case reorder.AMD:
		return 2 * g
	case reorder.ND, reorder.GP:
		return 3 * g
	case reorder.HP:
		h := 4*nnz + 16*n // pins + net/cell pointers
		return 2 * h
	case reorder.Gray:
		return 16 * n
	default: // Original and unknown orderings allocate nothing extra.
		return 0
	}
}

// EstimateMatrixBytes estimates the peak working set of evaluating one
// matrix through the full study pipeline: the input CSR, one reordered CSR
// copy, and the most expensive transient ordering structure among the
// configured orderings. The estimate is intentionally a ceiling-ish model,
// not an accounting of every allocation — the governor needs relative
// weight and a stable upper bound, not byte-exact truth (see DESIGN.md,
// "Resource governance & degradation contract").
func EstimateMatrixBytes(rows, nnz int, orderings []reorder.Algorithm) int64 {
	n, z := int64(rows), int64(nnz)
	if n < 0 || z < 0 {
		return 0
	}
	var worst int64
	for _, alg := range orderings {
		if b := estimateOrderingBytes(alg, n, z); b > worst {
			worst = b
		}
	}
	return 2*csrBytes(n, z) + worst
}

// EstimateIngestBytes extends the working-set model to the parallel
// ingestion pipeline's transient structures: the post-header text buffer
// (~24 B per entry at WriteMatrixMarket's %.17g width), the per-worker COO
// shards (16 B per stored entry: two int32 indices and a float64 value),
// the assembly scratch arrays of the same total size, and the output CSR.
// Symmetric expansion at worst doubles the stored entries, which the
// shard/scratch terms already cover by costing the expanded count; callers
// pass the post-expansion nnz they expect (the declared nnz is a safe
// floor). The worker count only adds per-chunk bookkeeping, not data, so
// it does not appear in the model.
func EstimateIngestBytes(rows, nnz int) int64 {
	n, z := int64(rows), int64(nnz)
	if n < 0 || z < 0 {
		return 0
	}
	text := 24 * z
	shards := 16 * z
	scratch := 16 * z
	return text + shards + scratch + csrBytes(n, z)
}

// resolveMemBudget turns Config.MemBudget into an effective byte budget:
// positive values are taken as-is, negative disables the governor, and 0
// auto-detects from the Go runtime's soft memory limit (GOMEMLIMIT /
// debug.SetMemoryLimit): when a limit is set the budget is 90% of it,
// leaving headroom for the runtime itself; with no limit set there is
// nothing to govern against and the governor stays off.
func resolveMemBudget(v int64) int64 {
	switch {
	case v > 0:
		return v
	case v < 0:
		return 0
	}
	lim := debug.SetMemoryLimit(-1) // negative input: query without changing
	if lim == math.MaxInt64 {
		return 0
	}
	return lim - lim/10
}

// Governor admits work into a pool through a byte-weighted
// budget semaphore and applies the degradation ladder when a matrix does
// not fit:
//
//  1. Matrices whose estimate fits the budget acquire their bytes before
//     evaluating and release them after; under pressure this narrows the
//     effective concurrency below Config.Workers without any explicit
//     worker throttling.
//  2. A matrix estimated over the budget (but within soloOvercommit×) is
//     admitted solo: admission waits for the pool to drain and holds it
//     exclusively, so the oversized matrix is the only allocation source
//     while it runs. Retries of retryable failures are promoted to solo
//     admission the same way.
//  3. A matrix beyond soloOvercommit× the budget is rejected with
//     ErrResourceBudget and recorded with failure class FailResource.
//
// A nil *Governor (no budget configured) admits everything immediately;
// the nil path performs no allocation and no locking.
type Governor struct {
	budget  int64
	soloCap int64

	mu          sync.Mutex
	cond        *sync.Cond
	inUse       int64 // bytes held by admitted matrices
	inFlight    int   // admitted matrices
	solo        bool  // a solo admission holds the whole pool
	soloWaiting int   // solo admissions waiting for the pool to drain

	inUseG    *obs.Gauge   // sparseorder_governor_inflight_bytes
	admittedC *obs.Counter // sparseorder_governor_admitted_bytes_total
	degradedC *obs.Counter // sparseorder_governor_degradations_total
	rejectedC *obs.Counter // sparseorder_governor_rejected_total
}

// newGovernor builds the run's governor, or nil when no budget applies.
func newGovernor(cfg Config) *Governor {
	return NewGovernor(cfg.MemBudget, cfg.Obs)
}

// NewGovernor builds a byte-weighted admission governor over memBudget
// (interpreted by resolveMemBudget: >0 literal bytes, 0 auto from
// GOMEMLIMIT, <0 off), or nil — admit-everything — when no budget applies.
// Telemetry handles are resolved once here so admission never touches the
// registry; o (and o.Metrics) may be nil.
func NewGovernor(memBudget int64, o *obs.Obs) *Governor {
	budget := resolveMemBudget(memBudget)
	if budget <= 0 {
		return nil
	}
	g := &Governor{budget: budget, soloCap: budget * soloOvercommit}
	g.cond = sync.NewCond(&g.mu)
	if o != nil && o.Metrics != nil {
		r := o.Metrics
		r.Gauge("sparseorder_governor_budget_bytes",
			"memory budget the governor admits matrices against").Set(float64(budget))
		g.inUseG = r.Gauge("sparseorder_governor_inflight_bytes",
			"estimated working-set bytes of matrices currently admitted")
		g.admittedC = r.Counter("sparseorder_governor_admitted_bytes_total",
			"cumulative estimated bytes admitted into the pool")
		g.degradedC = r.Counter("sparseorder_governor_degradations_total",
			"matrices degraded to a solo run with the pool drained")
		g.rejectedC = r.Counter("sparseorder_governor_rejected_total",
			"matrices rejected with failure class resource")
	}
	return g
}

// Admission is a held budget grant; Release returns the bytes (and, for a
// solo grant, the pool) to the governor.
type Admission struct {
	g     *Governor
	bytes int64
	solo  bool
}

// Acquire blocks until est bytes fit the budget (or, for oversized matrices
// and solo retries, until the pool is drained), then grants them. It
// returns (nil, nil) from a nil governor, (nil, ctx.Err()) when the run is
// cancelled while waiting, and (nil, ErrResourceBudget-wrapped) for
// matrices the budget can never accommodate.
func (g *Governor) Acquire(ctx context.Context, name string, est int64, wantSolo bool) (*Admission, error) {
	if g == nil {
		return nil, nil
	}
	if est > g.soloCap {
		if g.rejectedC != nil {
			g.rejectedC.Inc()
		}
		return nil, fmt.Errorf("%w: %s needs ~%s, budget %s (solo ceiling %s)",
			ErrResourceBudget, name, FormatBytes(est), FormatBytes(g.budget), FormatBytes(g.soloCap))
	}
	solo := wantSolo || est > g.budget
	// Wake waiters when the context dies so cancellation interrupts the
	// cond wait.
	stop := context.AfterFunc(ctx, func() {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	})
	defer stop()

	g.mu.Lock()
	defer g.mu.Unlock()
	if solo {
		g.soloWaiting++
		for g.inFlight > 0 || g.solo {
			if ctx.Err() != nil {
				g.soloWaiting--
				return nil, ctx.Err()
			}
			g.cond.Wait()
		}
		g.soloWaiting--
		g.solo = true
		if g.degradedC != nil {
			g.degradedC.Inc()
		}
	} else {
		// Normal admissions also yield to waiting solo admissions so an
		// oversized matrix cannot be starved by a stream of small ones.
		for g.solo || g.soloWaiting > 0 || g.inUse+est > g.budget {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			g.cond.Wait()
		}
	}
	g.inFlight++
	g.inUse += est
	if g.inUseG != nil {
		g.inUseG.Set(float64(g.inUse))
	}
	if g.admittedC != nil {
		g.admittedC.Add(uint64(est))
	}
	return &Admission{g: g, bytes: est, solo: solo}, nil
}

// Release returns the grant; safe on a nil admission (the nil-governor
// path).
func (a *Admission) Release() {
	if a == nil {
		return
	}
	g := a.g
	g.mu.Lock()
	g.inFlight--
	g.inUse -= a.bytes
	if a.solo {
		g.solo = false
	}
	if g.inUseG != nil {
		g.inUseG.Set(float64(g.inUse))
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// ErrGovernorSaturated reports that a non-blocking acquisition would have
// had to wait: the budget is currently committed (or a solo admission
// holds, or is waiting for, the pool). It is the load-shedding signal —
// callers that cannot queue (the serving daemon) translate it into a
// 429/Retry-After instead of blocking unboundedly.
var ErrGovernorSaturated = errors.New("experiments: memory governor saturated")

// TryAcquire is the non-blocking Acquire: it grants est bytes immediately
// or reports why it cannot. It returns (nil, nil) from a nil governor,
// (nil, ErrResourceBudget-wrapped) when est exceeds the budget — a
// non-blocking caller can never use the solo-drain ladder, so anything
// over the plain budget is a permanent refusal, not a transient one — and
// (nil, ErrGovernorSaturated-wrapped) when the grant would have to wait.
// Like Acquire, it yields to waiting solo admissions so a drained-pool
// degradation cannot be starved by a stream of non-blocking probes.
func (g *Governor) TryAcquire(name string, est int64) (*Admission, error) {
	if g == nil {
		return nil, nil
	}
	if est > g.budget {
		if g.rejectedC != nil {
			g.rejectedC.Inc()
		}
		return nil, fmt.Errorf("%w: %s needs ~%s, budget %s",
			ErrResourceBudget, name, FormatBytes(est), FormatBytes(g.budget))
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.solo || g.soloWaiting > 0 || g.inUse+est > g.budget {
		return nil, fmt.Errorf("%w: %s needs ~%s, %s of %s in use",
			ErrGovernorSaturated, name, FormatBytes(est), FormatBytes(g.inUse), FormatBytes(g.budget))
	}
	g.inFlight++
	g.inUse += est
	if g.inUseG != nil {
		g.inUseG.Set(float64(g.inUse))
	}
	if g.admittedC != nil {
		g.admittedC.Add(uint64(est))
	}
	return &Admission{g: g, bytes: est}, nil
}

// Saturated reports whether a non-blocking acquisition of even one byte
// would currently fail: the budget is fully committed or a solo admission
// holds (or waits for) the pool. A nil governor is never saturated. The
// serving daemon surfaces this state on /readyz.
func (g *Governor) Saturated() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.solo || g.soloWaiting > 0 || g.inUse >= g.budget
}

// Budget returns the resolved byte budget (0 for a nil governor).
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}

// byteUnits are the suffixes ParseByteSize accepts; both IEC (KiB) and SI
// (KB) spellings denote the 1024-based unit — artifact sizing here has no
// use for the 2.4% distinction.
var byteUnits = []struct {
	suffix string
	shift  uint
}{
	{"tib", 40}, {"tb", 40}, {"t", 40},
	{"gib", 30}, {"gb", 30}, {"g", 30},
	{"mib", 20}, {"mb", 20}, {"m", 20},
	{"kib", 10}, {"kb", 10}, {"k", 10},
	{"b", 0},
}

// ParseByteSize parses a human byte size ("512MiB", "2g", "1073741824")
// into bytes. Fractional values are allowed with units ("1.5GiB").
func ParseByteSize(s string) (int64, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	if t == "" {
		return 0, fmt.Errorf("experiments: empty byte size")
	}
	shift := uint(0)
	for _, u := range byteUnits {
		if strings.HasSuffix(t, u.suffix) {
			t = strings.TrimSpace(strings.TrimSuffix(t, u.suffix))
			shift = u.shift
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil || v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, fmt.Errorf("experiments: bad byte size %q", s)
	}
	b := v * float64(int64(1)<<shift)
	if b > math.MaxInt64 {
		return 0, fmt.Errorf("experiments: byte size %q overflows", s)
	}
	return int64(b), nil
}

// FormatBytes renders bytes with a binary-unit suffix for logs and errors.
func FormatBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
