package experiments

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparseorder/internal/gen"
	"sparseorder/internal/obs"
	"sparseorder/internal/reorder"
)

// TestEstimateMatrixBytes pins the estimator formulas documented in
// DESIGN.md: two CSR copies plus the worst transient ordering structure.
func TestEstimateMatrixBytes(t *testing.T) {
	const n, nnz = 100, 1000
	csr := int64(8*(n+1) + 12*nnz)
	g := int64(8*(n+1) + 8*nnz)
	cases := []struct {
		algs []reorder.Algorithm
		want int64
	}{
		{nil, 2 * csr},
		{[]reorder.Algorithm{reorder.Original}, 2 * csr},
		{[]reorder.Algorithm{reorder.RCM}, 2*csr + g + 24*n},
		{[]reorder.Algorithm{reorder.AMD}, 2*csr + 2*g},
		{[]reorder.Algorithm{reorder.ND}, 2*csr + 3*g},
		{[]reorder.Algorithm{reorder.HP}, 2*csr + 2*(4*nnz+16*n)},
		{[]reorder.Algorithm{reorder.Gray}, 2*csr + 16*n},
		// The max over the set wins, not the sum.
		{[]reorder.Algorithm{reorder.RCM, reorder.ND, reorder.Gray}, 2*csr + 3*g},
	}
	for _, c := range cases {
		if got := EstimateMatrixBytes(n, nnz, c.algs); got != c.want {
			t.Errorf("EstimateMatrixBytes(%v) = %d, want %d", c.algs, got, c.want)
		}
	}
	if got := EstimateMatrixBytes(-1, 5, nil); got != 0 {
		t.Errorf("negative rows: got %d, want 0", got)
	}
}

// TestResolveMemBudget covers the three Config.MemBudget regimes, including
// the GOMEMLIMIT auto-detection path.
func TestResolveMemBudget(t *testing.T) {
	if got := resolveMemBudget(123); got != 123 {
		t.Errorf("explicit budget: got %d", got)
	}
	if got := resolveMemBudget(-1); got != 0 {
		t.Errorf("disabled budget: got %d", got)
	}
	old := debug.SetMemoryLimit(math.MaxInt64)
	defer debug.SetMemoryLimit(old)
	if got := resolveMemBudget(0); got != 0 {
		t.Errorf("auto with no GOMEMLIMIT: got %d, want 0 (governor off)", got)
	}
	debug.SetMemoryLimit(1 << 30)
	if want := int64(1<<30) - (1<<30)/10; resolveMemBudget(0) != want {
		t.Errorf("auto with GOMEMLIMIT=1GiB: got %d, want %d", resolveMemBudget(0), want)
	}
}

// TestGovernorNarrowsConcurrency is degradation ladder step 1: with a
// budget of 100 and 40-byte matrices, at most two may hold grants at once,
// whatever the worker count.
func TestGovernorNarrowsConcurrency(t *testing.T) {
	g := newGovernor(Config{MemBudget: 100})
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			adm, err := g.Acquire(context.Background(), "m", 40, false)
			if err != nil {
				t.Error(err)
				return
			}
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			adm.Release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 || p < 1 {
		t.Errorf("peak concurrent admissions = %d, want 1..2 under a 100/40 budget", p)
	}
}

// TestGovernorSoloDrainsPool is ladder step 2: an over-budget matrix waits
// for the pool to drain, holds it exclusively, and cannot be starved by a
// stream of small admissions arriving while it waits.
func TestGovernorSoloDrainsPool(t *testing.T) {
	g := newGovernor(Config{MemBudget: 100})
	ctx := context.Background()
	small, err := g.Acquire(ctx, "small", 40, false)
	if err != nil {
		t.Fatal(err)
	}

	soloc := make(chan *Admission, 1)
	go func() {
		adm, err := g.Acquire(ctx, "big", 150, false) // over budget, under solo ceiling
		if err != nil {
			t.Error(err)
		}
		soloc <- adm
	}()
	select {
	case <-soloc:
		t.Fatal("solo admission granted while the pool was busy")
	case <-time.After(30 * time.Millisecond):
	}

	// A tiny matrix that trivially fits must still queue behind the waiting
	// solo admission (anti-starvation).
	tinyc := make(chan *Admission, 1)
	go func() {
		adm, err := g.Acquire(ctx, "tiny", 1, false)
		if err != nil {
			t.Error(err)
		}
		tinyc <- adm
	}()
	select {
	case <-tinyc:
		t.Fatal("small admission jumped the queue past a waiting solo matrix")
	case <-time.After(30 * time.Millisecond):
	}

	small.Release()
	var solo *Admission
	select {
	case solo = <-soloc:
	case <-time.After(2 * time.Second):
		t.Fatal("solo admission never granted after the pool drained")
	}
	select {
	case <-tinyc:
		t.Fatal("admission granted while a solo matrix held the pool")
	case <-time.After(30 * time.Millisecond):
	}
	solo.Release()
	select {
	case adm := <-tinyc:
		adm.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("queued admission never granted after the solo release")
	}
}

// TestGovernorRejectsOversized is ladder step 3: beyond the solo ceiling
// the matrix is rejected with ErrResourceBudget, which classifies as the
// non-retryable resource failure class.
func TestGovernorRejectsOversized(t *testing.T) {
	g := newGovernor(Config{MemBudget: 100})
	_, err := g.Acquire(context.Background(), "huge", 201, false)
	if !errors.Is(err, ErrResourceBudget) {
		t.Fatalf("err = %v, want ErrResourceBudget", err)
	}
	if got := Classify(err); got != FailResource {
		t.Errorf("Classify = %s, want %s", got, FailResource)
	}
	if FailResource.Retryable() {
		t.Error("resource failures must not be retryable")
	}
}

// TestGovernorAdmitCancel checks that cancelling the run context unblocks
// a waiting admission with the context's error.
func TestGovernorAdmitCancel(t *testing.T) {
	g := newGovernor(Config{MemBudget: 100})
	hold, err := g.Acquire(context.Background(), "hold", 100, false)
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.Acquire(cctx, "waiter", 50, false)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not unblock the waiting admission")
	}
	hold.Release()
}

// TestGovernorNilZeroAlloc pins the disabled path: with no budget
// configured the admit/release pair must not allocate or lock.
func TestGovernorNilZeroAlloc(t *testing.T) {
	var g *Governor
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		adm, err := g.Acquire(ctx, "m", 1<<20, false)
		if err != nil {
			t.Fatal(err)
		}
		adm.Release()
	})
	if allocs != 0 {
		t.Fatalf("nil governor admit/release allocates %v per call", allocs)
	}
}

// TestRetryDelay pins the capped-doubling-with-jitter schedule: pure in
// (seed, name, attempt), doubling until the cap, jittered into [d/2, d).
func TestRetryDelay(t *testing.T) {
	if d := retryDelay(0, time.Second, 7, "m", 3); d != 0 {
		t.Errorf("zero base: got %v", d)
	}
	a := retryDelay(100*time.Millisecond, 10*time.Second, 7, "m", 2)
	b := retryDelay(100*time.Millisecond, 10*time.Second, 7, "m", 2)
	if a != b {
		t.Errorf("retryDelay is not deterministic: %v vs %v", a, b)
	}
	// Attempt 2 doubles once: jittered into [100ms, 200ms).
	if a < 100*time.Millisecond || a >= 200*time.Millisecond {
		t.Errorf("attempt 2 delay %v outside [100ms, 200ms)", a)
	}
	// A huge attempt count must saturate at the cap, not overflow.
	c := retryDelay(100*time.Millisecond, time.Second, 7, "m", 500)
	if c < 500*time.Millisecond || c >= time.Second {
		t.Errorf("capped delay %v outside [500ms, 1s)", c)
	}
	// Jitter decorrelates matrices: not every name may land on the same
	// delay.
	names := []string{"m0", "m1", "m2", "m3", "m4"}
	distinct := map[time.Duration]bool{}
	for _, n := range names {
		distinct[retryDelay(100*time.Millisecond, 10*time.Second, 7, n, 2)] = true
	}
	if len(distinct) < 2 {
		t.Errorf("jitter produced identical delays for %v", names)
	}
	// Seed sensitivity.
	if retryDelay(100*time.Millisecond, 10*time.Second, 7, "m", 2) ==
		retryDelay(100*time.Millisecond, 10*time.Second, 8, "m", 2) {
		t.Error("different seeds produced the same delay (suspicious)")
	}
}

// TestParseByteSize covers the accepted spellings and the rejects.
func TestParseByteSize(t *testing.T) {
	good := map[string]int64{
		"512MiB":     512 << 20,
		"2g":         2 << 30,
		"1073741824": 1 << 30,
		"1.5k":       1536,
		" 64 kb ":    64 << 10,
		"0":          0,
		"10b":        10,
		"1tib":       1 << 40,
	}
	for in, want := range good {
		got, err := ParseByteSize(in)
		if err != nil || got != want {
			t.Errorf("ParseByteSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "abc", "-5m", "1eMiB", "inf"} {
		if _, err := ParseByteSize(in); err == nil {
			t.Errorf("ParseByteSize(%q) succeeded, want error", in)
		}
	}
}

// TestFormatBytes pins the log rendering.
func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:       "512B",
		1536:      "1.5KiB",
		512 << 20: "512.0MiB",
		3 << 30:   "3.0GiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

// TestRunStudyResourceSkip drives the full runner with a budget no matrix
// can fit: every matrix must fail with class resource after one attempt,
// journal as a terminal failure, and be skipped (not re-evaluated) on
// resume.
func TestRunStudyResourceSkip(t *testing.T) {
	ms := smallSet()
	cfg := journalConfig()
	cfg.MemBudget = 1 // solo ceiling 2 bytes: nothing fits
	var calls atomic.Int32
	eval := func(ctx context.Context, m gen.Matrix, c Config) (*MatrixResult, error) {
		calls.Add(1)
		return &MatrixResult{Name: m.Name}, nil
	}

	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run1 := cfg
	run1.Journal = j
	s, err := runStudy(context.Background(), run1, ms, eval)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if calls.Load() != 0 {
		t.Errorf("eval ran %d times under an impossible budget, want 0", calls.Load())
	}
	if len(s.Matrices) != 0 || len(s.Failures) != len(ms) {
		t.Fatalf("%d results, %d failures; want 0 and %d", len(s.Matrices), len(s.Failures), len(ms))
	}
	for i := range s.Failures {
		if f := &s.Failures[i]; f.Class != FailResource || f.Attempts != 1 {
			t.Errorf("%s: class %s attempts %d, want resource/1", f.Name, f.Class, f.Attempts)
		}
	}

	// Resume: the journaled resource skips are terminal, never re-run.
	j2, err := LoadJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != len(ms) {
		t.Fatalf("journal holds %d records, want %d", j2.Len(), len(ms))
	}
	run2 := cfg
	run2.Journal = j2
	run2.MemBudget = -1 // even with the governor off, journaled skips stand
	s2, err := runStudy(context.Background(), run2, ms, eval)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Errorf("resume re-evaluated %d matrices, want 0", calls.Load())
	}
	for i := range s2.Failures {
		if f := &s2.Failures[i]; f.Class != FailResource {
			t.Errorf("resumed %s: class %s, want resource", f.Name, f.Class)
		}
	}
}

// TestRunStudySoloDegrade sizes the budget so the largest matrix in the
// set is over budget but under the solo ceiling: the run must complete
// with no failures and the degradation counter must record the solo
// admission.
func TestRunStudySoloDegrade(t *testing.T) {
	ms := smallSet()
	base := journalConfig()
	wd := base.withDefaults()
	var maxEst int64
	for _, m := range ms {
		if e := EstimateMatrixBytes(m.A.Rows, m.A.NNZ(), wd.Orderings); e > maxEst {
			maxEst = e
		}
	}
	cfg := base
	cfg.MemBudget = maxEst - 1
	reg := obs.NewRegistry()
	cfg.Obs = &obs.Obs{Metrics: reg}
	eval := func(ctx context.Context, m gen.Matrix, c Config) (*MatrixResult, error) {
		return &MatrixResult{Name: m.Name}, nil
	}
	s, err := runStudy(context.Background(), cfg, ms, eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Failures) != 0 || len(s.Matrices) != len(ms) {
		t.Fatalf("%d results, %d failures; want all %d to succeed", len(s.Matrices), len(s.Failures), len(ms))
	}
	degraded := reg.Counter("sparseorder_governor_degradations_total",
		"matrices degraded to a solo run with the pool drained").Value()
	if degraded == 0 {
		t.Error("no solo degradation recorded for the over-budget matrix")
	}
	admitted := reg.Counter("sparseorder_governor_admitted_bytes_total",
		"cumulative estimated bytes admitted into the pool").Value()
	if admitted == 0 {
		t.Error("admitted-bytes counter stayed zero")
	}
}

// TestGovernorTryAcquire covers the non-blocking probe the serving daemon
// sheds load with: grants that fit are immediate, grants that would wait
// return ErrGovernorSaturated, and over-budget requests are a permanent
// ErrResourceBudget (a non-blocking caller can never ride the solo-drain
// ladder).
func TestGovernorTryAcquire(t *testing.T) {
	g := NewGovernor(100, nil)
	adm, err := g.TryAcquire("a", 60)
	if err != nil || adm == nil {
		t.Fatalf("TryAcquire(60) = %v, %v; want a grant", adm, err)
	}
	if g.Saturated() {
		t.Error("Saturated() with 40 bytes free")
	}
	if _, err := g.TryAcquire("b", 50); !errors.Is(err, ErrGovernorSaturated) {
		t.Errorf("TryAcquire past the budget = %v, want ErrGovernorSaturated", err)
	}
	if _, err := g.TryAcquire("huge", 101); !errors.Is(err, ErrResourceBudget) {
		t.Errorf("TryAcquire(101) = %v, want ErrResourceBudget", err)
	}
	b, err := g.TryAcquire("b", 40)
	if err != nil {
		t.Fatalf("TryAcquire(40) = %v, want a grant", err)
	}
	if !g.Saturated() {
		t.Error("Saturated() = false with the budget fully committed")
	}
	b.Release()
	adm.Release()
	if g.Saturated() {
		t.Error("Saturated() = true after every grant was released")
	}
}

// TestGovernorTryAcquireSoloEdge is the solo-admission edge: while a solo
// admission waits for (or holds) the pool, TryAcquire must refuse even
// trivially-fitting grants — otherwise a stream of non-blocking probes
// could starve the drained-pool degradation forever.
func TestGovernorTryAcquireSoloEdge(t *testing.T) {
	g := NewGovernor(100, nil)
	ctx := context.Background()
	small, err := g.Acquire(ctx, "small", 40, false)
	if err != nil {
		t.Fatal(err)
	}
	soloc := make(chan *Admission, 1)
	go func() {
		adm, err := g.Acquire(ctx, "big", 150, false) // solo: waits for drain
		if err != nil {
			t.Error(err)
		}
		soloc <- adm
	}()
	// Wait until the solo admission is registered as waiting.
	for i := 0; ; i++ {
		g.mu.Lock()
		waiting := g.soloWaiting
		g.mu.Unlock()
		if waiting > 0 {
			break
		}
		if i > 400 {
			t.Fatal("solo admission never started waiting")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := g.TryAcquire("tiny", 1); !errors.Is(err, ErrGovernorSaturated) {
		t.Errorf("TryAcquire while a solo admission waits = %v, want ErrGovernorSaturated", err)
	}
	if !g.Saturated() {
		t.Error("Saturated() = false while a solo admission waits")
	}
	small.Release()
	solo := <-soloc
	if _, err := g.TryAcquire("tiny", 1); !errors.Is(err, ErrGovernorSaturated) {
		t.Errorf("TryAcquire while a solo admission holds the pool = %v, want ErrGovernorSaturated", err)
	}
	solo.Release()
	adm, err := g.TryAcquire("tiny", 1)
	if err != nil {
		t.Fatalf("TryAcquire after the solo release = %v, want a grant", err)
	}
	adm.Release()
}

// TestGovernorTryAcquireNil pins the nil-governor contract: everything is
// granted, nothing is saturated.
func TestGovernorTryAcquireNil(t *testing.T) {
	var g *Governor
	adm, err := g.TryAcquire("m", 1<<40)
	if err != nil || adm != nil {
		t.Fatalf("nil governor TryAcquire = %v, %v; want nil, nil", adm, err)
	}
	adm.Release()
	if g.Saturated() {
		t.Error("nil governor reports saturated")
	}
	if g.Budget() != 0 {
		t.Error("nil governor reports a budget")
	}
}
