package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"sparseorder/internal/faultinject"
	"sparseorder/internal/fsutil"
	"sparseorder/internal/gen"
	"sparseorder/internal/reorder"
)

// journalVersion is bumped whenever the record layout changes; a version
// mismatch makes an old journal stale rather than silently misread.
const journalVersion = 1

// ErrJournalMismatch reports that an existing journal was written by a run
// with a different configuration (scale, seed, repeats, machine or
// ordering set) and therefore cannot seed this run. Stale journals are
// rejected, never merged.
var ErrJournalMismatch = errors.New("experiments: journal does not match the run configuration")

// journalHeader is the first record of every journal; it binds the file to
// the exact configuration whose results it holds.
type journalHeader struct {
	Kind        string   `json:"kind"`
	Version     int      `json:"version"`
	Scale       int      `json:"scale"`
	Seed        int64    `json:"seed"`
	Repeats     int      `json:"repeats"`
	HostThreads int      `json:"hostThreads"`
	Machines    []string `json:"machines"`
	Orderings   []string `json:"orderings"`
}

func headerFor(cfg Config) journalHeader {
	cfg = cfg.withDefaults()
	h := journalHeader{
		Kind:        "header",
		Version:     journalVersion,
		Scale:       int(cfg.Scale),
		Seed:        cfg.Seed,
		Repeats:     cfg.Repeats,
		HostThreads: cfg.HostThreads,
	}
	for _, m := range cfg.Machines {
		h.Machines = append(h.Machines, m.Name)
	}
	for _, o := range cfg.Orderings {
		h.Orderings = append(h.Orderings, string(o))
	}
	return h
}

func (h journalHeader) matches(o journalHeader) bool {
	if h.Kind != o.Kind || h.Version != o.Version || h.Scale != o.Scale ||
		h.Seed != o.Seed || h.Repeats != o.Repeats || h.HostThreads != o.HostThreads ||
		len(h.Machines) != len(o.Machines) || len(h.Orderings) != len(o.Orderings) {
		return false
	}
	for i := range h.Machines {
		if h.Machines[i] != o.Machines[i] {
			return false
		}
	}
	for i := range h.Orderings {
		if h.Orderings[i] != o.Orderings[i] {
			return false
		}
	}
	return true
}

// journalFailure is the serialisable form of a MatrixError.
type journalFailure struct {
	Name     string            `json:"name"`
	Ordering reorder.Algorithm `json:"ordering,omitempty"`
	Class    FailureClass      `json:"class"`
	Attempts int               `json:"attempts"`
	Message  string            `json:"message"`
}

// journalRecord is one JSONL line after the header: a completed matrix
// result or a terminal (non-cancellation) failure.
type journalRecord struct {
	Kind    string          `json:"kind"`
	Result  *MatrixResult   `json:"result,omitempty"`
	Failure *journalFailure `json:"failure,omitempty"`
}

// Journal is a crash-safe per-matrix result log. Every completed matrix is
// appended as one JSON line and fsynced before the runner moves on, so a
// killed run loses at most the matrix that was in flight. A journal is
// bound to its Config by the header record; reloading it under a different
// configuration fails with ErrJournalMismatch.
//
// encoding/json renders float64 values in their shortest exact form, so a
// result that round-trips through the journal is bit-identical to the
// original — the foundation of the resume-determinism guarantee.
type Journal struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	results  map[string]*MatrixResult
	failures map[string]*MatrixError
}

// CreateJournal starts a fresh journal at path for the given configuration,
// truncating any existing file. The header is written atomically (temp file
// + rename), so a crash during creation leaves either no journal or a
// well-formed one-record journal, never a torn header.
func CreateJournal(path string, cfg Config) (*Journal, error) {
	line, err := json.Marshal(headerFor(cfg))
	if err != nil {
		return nil, err
	}
	if err := fsutil.WriteFileAtomic(path, append(line, '\n'), 0o644); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{
		f:        f,
		path:     path,
		results:  map[string]*MatrixResult{},
		failures: map[string]*MatrixError{},
	}, nil
}

// LoadJournal opens an existing journal for resuming. The header must match
// cfg exactly (ErrJournalMismatch otherwise). A partial trailing line —
// the signature of a crash mid-append — is truncated away; anything else
// that fails to parse is corruption and an error. The returned journal is
// positioned for further appends.
func LoadJournal(path string, cfg Config) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{
		path:     path,
		results:  map[string]*MatrixResult{},
		failures: map[string]*MatrixError{},
	}

	validLen := 0
	first := true
	for len(data[validLen:]) > 0 {
		rest := data[validLen:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			// No terminating newline: a crash interrupted the last append.
			// Drop the fragment; the matrix it described simply re-runs.
			break
		}
		line := rest[:nl]
		if first {
			var h journalHeader
			if err := json.Unmarshal(line, &h); err != nil {
				return nil, fmt.Errorf("experiments: corrupt journal header in %s: %w", path, err)
			}
			if want := headerFor(cfg); !h.matches(want) {
				return nil, fmt.Errorf("%w: %s was written for scale=%v seed=%d repeats=%d",
					ErrJournalMismatch, path, gen.Scale(h.Scale), h.Seed, h.Repeats)
			}
			first = false
			validLen += nl + 1
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("experiments: corrupt journal record in %s: %w", path, err)
		}
		switch {
		case rec.Kind == "result" && rec.Result != nil:
			if _, dup := j.results[rec.Result.Name]; dup {
				return nil, fmt.Errorf("experiments: journal %s records %s twice", path, rec.Result.Name)
			}
			j.results[rec.Result.Name] = rec.Result
		case rec.Kind == "failure" && rec.Failure != nil:
			fl := rec.Failure
			if _, dup := j.failures[fl.Name]; dup {
				return nil, fmt.Errorf("experiments: journal %s records %s twice", path, fl.Name)
			}
			j.failures[fl.Name] = &MatrixError{
				Name:     fl.Name,
				Ordering: fl.Ordering,
				Class:    fl.Class,
				Attempts: fl.Attempts,
				Err:      errors.New(fl.Message),
			}
		default:
			return nil, fmt.Errorf("experiments: journal %s has an unknown record kind %q", path, rec.Kind)
		}
		validLen += nl + 1
	}
	if first {
		return nil, fmt.Errorf("experiments: journal %s has no complete header", path)
	}

	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if validLen < len(data) {
		if err := f.Truncate(int64(validLen)); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(validLen), 0); err != nil {
		f.Close()
		return nil, err
	}
	j.f = f
	return j, nil
}

// RecordResult appends a completed matrix result and fsyncs before
// returning, making the result durable against a subsequent crash.
func (j *Journal) RecordResult(r *MatrixResult) error {
	return j.append(r.Name, journalRecord{Kind: "result", Result: r}, func() {
		j.results[r.Name] = r
	})
}

// RecordFailure appends a terminal failure. Cancellation-class failures
// must not be recorded (the runner enforces this): a matrix that was
// merely in flight when the run was killed has to re-run on resume.
func (j *Journal) RecordFailure(e *MatrixError) error {
	fl := &journalFailure{
		Name:     e.Name,
		Ordering: e.Ordering,
		Class:    e.Class,
		Attempts: e.Attempts,
		Message:  e.Err.Error(),
	}
	return j.append(e.Name, journalRecord{Kind: "failure", Failure: fl}, func() {
		j.failures[e.Name] = e
	})
}

// append serialises, writes and fsyncs one record. Any error — including
// a fault injected at the journal/append or journal/sync points — is
// returned to the runner, which treats it as run-fatal: a checkpoint that
// cannot be written durably must not be trusted silently.
func (j *Journal) append(name string, rec journalRecord, commit func()) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := faultinject.Check(faultinject.JournalAppend, name); err != nil {
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	if err := faultinject.Check(faultinject.JournalSync, name); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	commit()
	return nil
}

// Lookup returns the journaled outcome for a matrix name: exactly one of
// the result and failure is non-nil when ok is true.
func (j *Journal) Lookup(name string) (*MatrixResult, *MatrixError, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if r, ok := j.results[name]; ok {
		return r, nil, true
	}
	if f, ok := j.failures[name]; ok {
		return nil, f, true
	}
	return nil, nil, false
}

// Len returns the number of journaled matrices (results plus failures).
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.results) + len(j.failures)
}

// Close fsyncs and closes the underlying file. Both the sync and the
// close error are surfaced — callers must treat a failed Close as fatal
// for the checkpoint, since a write buffered by a silently failing disk
// would otherwise masquerade as a durable record.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	serr := j.f.Sync()
	cerr := j.f.Close()
	j.f = nil
	if serr != nil {
		return fmt.Errorf("experiments: journal sync on close: %w", serr)
	}
	return cerr
}
