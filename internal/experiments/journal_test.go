package experiments

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sparseorder/internal/gen"
	"sparseorder/internal/machine"
)

// journalConfig is the configuration all journal tests share; matching
// matters because the header binds the journal to it.
func journalConfig() Config {
	return Config{Scale: gen.ScaleTest, Seed: 7, Workers: 2}
}

// TestJournalRoundTrip records results and a failure, reloads the journal,
// and checks every record comes back bit-identical.
func TestJournalRoundTrip(t *testing.T) {
	cfg := journalConfig()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := RunStudyMatrices(context.Background(), cfg, smallSet()[:2])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Matrices {
		if err := j.RecordResult(r); err != nil {
			t.Fatal(err)
		}
	}
	fail := &MatrixError{Name: "gX", Ordering: "RCM", Err: errors.New("boom"),
		Class: FailError, Attempts: 1}
	if err := j.RecordFailure(fail); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := LoadJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 3 {
		t.Fatalf("journal holds %d records, want 3", j2.Len())
	}
	for _, r := range s.Matrices {
		got, _, ok := j2.Lookup(r.Name)
		if !ok || got == nil {
			t.Fatalf("journal lost result %s", r.Name)
		}
		if !reflect.DeepEqual(got, r) {
			t.Errorf("result %s did not round-trip bit-identically", r.Name)
		}
	}
	_, gotFail, ok := j2.Lookup("gX")
	if !ok || gotFail == nil {
		t.Fatal("journal lost the failure record")
	}
	if gotFail.Class != FailError || gotFail.Attempts != 1 ||
		gotFail.Ordering != "RCM" || gotFail.Err.Error() != "boom" {
		t.Errorf("failure round-trip = %+v", gotFail)
	}
	if _, _, ok := j2.Lookup("unknown"); ok {
		t.Error("Lookup found a matrix that was never recorded")
	}
}

// TestJournalRejectsMismatchedConfig checks that a journal written under
// one configuration cannot seed a run with another: stale journals are
// rejected, not merged.
func TestJournalRejectsMismatchedConfig(t *testing.T) {
	cfg := journalConfig()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	for name, other := range map[string]Config{
		"seed":    {Scale: cfg.Scale, Seed: cfg.Seed + 1},
		"scale":   {Scale: gen.ScaleStudy, Seed: cfg.Seed},
		"repeats": {Scale: cfg.Scale, Seed: cfg.Seed, Repeats: 3},
	} {
		if _, err := LoadJournal(path, other); !errors.Is(err, ErrJournalMismatch) {
			t.Errorf("%s change: err = %v, want ErrJournalMismatch", name, err)
		}
	}
	j2, err := LoadJournal(path, cfg)
	if err != nil {
		t.Fatalf("identical config rejected: %v", err)
	}
	j2.Close()
}

// TestJournalTruncatesPartialTail simulates a crash mid-append: the last
// line has no newline and must be dropped on load, while complete records
// survive. Appending after the load must produce a well-formed journal.
func TestJournalTruncatesPartialTail(t *testing.T) {
	cfg := journalConfig()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.RecordFailure(&MatrixError{Name: "ok", Err: errors.New("x"),
		Class: FailError, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"result","result":{"Name":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := LoadJournal(path, cfg)
	if err != nil {
		t.Fatalf("partial tail not tolerated: %v", err)
	}
	if j2.Len() != 1 {
		t.Fatalf("journal holds %d records after truncation, want 1", j2.Len())
	}
	if _, _, ok := j2.Lookup("torn"); ok {
		t.Error("the torn record was resurrected")
	}
	if err := j2.RecordFailure(&MatrixError{Name: "after", Err: errors.New("y"),
		Class: FailError, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3, err := LoadJournal(path, cfg)
	if err != nil {
		t.Fatalf("journal corrupt after truncate+append: %v", err)
	}
	defer j3.Close()
	if j3.Len() != 2 {
		t.Fatalf("journal holds %d records, want 2", j3.Len())
	}
}

// TestJournalRejectsCorruptRecord checks that garbage in the middle of the
// journal (not a crash tail) is an error, not silently skipped.
func TestJournalRejectsCorruptRecord(t *testing.T) {
	cfg := journalConfig()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not json\n")
	f.Close()
	if _, err := LoadJournal(path, cfg); err == nil ||
		!strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt record: err = %v", err)
	}
}

// TestRunStudyKillResumeByteIdentical is the durability acceptance test:
// a run killed partway through and resumed from its journal must produce
// the same StudyResult — and byte-identical artifact files — as a run
// that was never interrupted.
func TestRunStudyKillResumeByteIdentical(t *testing.T) {
	ms := smallSet()
	cfg := journalConfig()

	base, err := RunStudyMatrices(context.Background(), cfg, ms)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: kill the run (cancel the context) once two matrices have
	// completed and been journaled.
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int32
	eval := func(ctx context.Context, m gen.Matrix, c Config) (*MatrixResult, error) {
		r, err := EvaluateMatrixContext(ctx, m, c)
		if err == nil && done.Add(1) == 2 {
			cancel()
		}
		return r, err
	}
	killed := cfg
	killed.Journal = j
	if _, err := runStudy(ctx, killed, ms, eval); !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run: err = %v, want context.Canceled", err)
	}
	j.Close()

	// Phase 2: resume from the journal and run to completion.
	j2, err := LoadJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recorded := j2.Len()
	if recorded < 2 || recorded >= len(ms) {
		t.Fatalf("journal recorded %d matrices before the kill, want 2..%d", recorded, len(ms)-1)
	}
	resumedCfg := cfg
	resumedCfg.Journal = j2
	resumed, err := RunStudyMatrices(context.Background(), resumedCfg, ms)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()

	// The deterministic payload must be bit-identical matrix by matrix
	// (wall-clock reorder timings legitimately differ between runs).
	if len(resumed.Matrices) != len(base.Matrices) || len(resumed.Failures) != len(base.Failures) {
		t.Fatalf("resumed: %d results %d failures, want %d and %d",
			len(resumed.Matrices), len(resumed.Failures), len(base.Matrices), len(base.Failures))
	}
	for i := range base.Matrices {
		a, b := base.Matrices[i], resumed.Matrices[i]
		if a.Name != b.Name {
			t.Fatalf("result %d is %s, want %s", i, b.Name, a.Name)
		}
		if !reflect.DeepEqual(a.Perf, b.Perf) {
			t.Errorf("%s: Perf differs after resume", a.Name)
		}
		if !reflect.DeepEqual(a.Features, b.Features) {
			t.Errorf("%s: Features differ after resume", a.Name)
		}
		if !reflect.DeepEqual(a.FillRatio, b.FillRatio) {
			t.Errorf("%s: FillRatio differs after resume", a.Name)
		}
	}

	// Artifact files are rendered purely from the deterministic payload and
	// must match byte for byte.
	for _, k := range []machine.Kernel{machine.Kernel1D, machine.Kernel2D} {
		var want, got bytes.Buffer
		mc := machine.Table2[0].Name
		if err := WriteArtifactFile(&want, base, mc, k); err != nil {
			t.Fatal(err)
		}
		if err := WriteArtifactFile(&got, resumed, mc, k); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Errorf("artifact file for %s/%v differs after resume", mc, k)
		}
	}
	var want, got bytes.Buffer
	if err := WriteFailureReport(&want, base.Failures); err != nil {
		t.Fatal(err)
	}
	if err := WriteFailureReport(&got, resumed.Failures); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Errorf("failures.txt differs after resume:\n%s\nvs\n%s", want.String(), got.String())
	}
}

// TestRunStudyResumeSkipsJournaledFailures checks that journaled terminal
// failures are reused on resume (the matrix is not re-evaluated) while a
// cancellation-class failure is never journaled in the first place.
func TestRunStudyResumeSkipsJournaledFailures(t *testing.T) {
	ms := smallSet()
	cfg := journalConfig()
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := CreateJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("deterministic failure")
	var calls atomic.Int32
	eval := func(ctx context.Context, m gen.Matrix, c Config) (*MatrixResult, error) {
		calls.Add(1)
		if m.Name == "g1" {
			return nil, &MatrixError{Name: m.Name, Err: boom}
		}
		return &MatrixResult{Name: m.Name}, nil
	}
	run1 := cfg
	run1.Journal = j
	s1, err := runStudy(context.Background(), run1, ms, eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Failures) != 1 || s1.Failures[0].Class != FailError {
		t.Fatalf("run1 failures = %+v", s1.Failures)
	}
	j.Close()

	j2, err := LoadJournal(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != len(ms) {
		t.Fatalf("journal holds %d records, want %d (failures must be journaled too)", j2.Len(), len(ms))
	}
	calls.Store(0)
	run2 := cfg
	run2.Journal = j2
	s2, err := runStudy(context.Background(), run2, ms, eval)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Errorf("resume re-evaluated %d matrices, want 0", calls.Load())
	}
	if len(s2.Matrices) != 3 || len(s2.Failures) != 1 {
		t.Fatalf("resume: %d results, %d failures", len(s2.Matrices), len(s2.Failures))
	}
	if f := s2.Failures[0]; f.Name != "g1" || f.Class != FailError || f.Err.Error() != s1.Failures[0].Err.Error() {
		t.Errorf("resumed failure = %+v", f)
	}
}

// TestRunStudyRetriesRetryableFailures checks the bounded-retry policy:
// panics retry and can succeed, deterministic errors do not retry, and
// retries stop at the configured bound.
func TestRunStudyRetriesRetryableFailures(t *testing.T) {
	ms := smallSet()
	var g2Calls, g1Calls atomic.Int32
	eval := func(ctx context.Context, m gen.Matrix, c Config) (*MatrixResult, error) {
		switch m.Name {
		case "g2": // transient: panics once, then succeeds
			if g2Calls.Add(1) == 1 {
				panic("transient wobble")
			}
			return &MatrixResult{Name: m.Name}, nil
		case "g1": // deterministic error: must not be retried
			g1Calls.Add(1)
			return nil, &MatrixError{Name: m.Name, Err: errors.New("always broken")}
		}
		return &MatrixResult{Name: m.Name}, nil
	}
	cfg := Config{Workers: 2, Retries: 2, RetryBackoff: time.Millisecond}
	s, err := runStudy(context.Background(), cfg, ms, eval)
	if err != nil {
		t.Fatal(err)
	}
	if g2Calls.Load() != 2 {
		t.Errorf("g2 evaluated %d times, want 2 (one retry)", g2Calls.Load())
	}
	if g1Calls.Load() != 1 {
		t.Errorf("g1 evaluated %d times, want 1 (errors are not retryable)", g1Calls.Load())
	}
	if len(s.Matrices) != 3 || len(s.Failures) != 1 {
		t.Fatalf("%d results, %d failures", len(s.Matrices), len(s.Failures))
	}
	if f := s.Failures[0]; f.Name != "g1" || f.Class != FailError || f.Attempts != 1 {
		t.Errorf("failure = %+v", f)
	}

	// A matrix that keeps panicking exhausts the retry budget.
	var calls atomic.Int32
	evalAlways := func(ctx context.Context, m gen.Matrix, c Config) (*MatrixResult, error) {
		if m.Name == "g0" {
			calls.Add(1)
			panic("forever broken")
		}
		return &MatrixResult{Name: m.Name}, nil
	}
	s2, err := runStudy(context.Background(), cfg, ms, evalAlways)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Errorf("g0 evaluated %d times, want 3 (Retries=2)", calls.Load())
	}
	if len(s2.Failures) != 1 {
		t.Fatalf("%d failures, want 1", len(s2.Failures))
	}
	if f := s2.Failures[0]; f.Class != FailPanic || f.Attempts != 3 {
		t.Errorf("failure = class %s attempts %d, want panic/3", f.Class, f.Attempts)
	}
}

// TestRunStudyTimeoutInterruptsRealOrdering drives the full evaluation
// pipeline (not an injected eval) against a matrix whose orderings take far
// longer than Config.Timeout. The cancellation checks inside the ordering
// loops must surface a timeout-class failure promptly instead of letting
// the wedged ordering run to completion.
func TestRunStudyTimeoutInterruptsRealOrdering(t *testing.T) {
	ms := []gen.Matrix{
		{Name: "slow", Group: "mesh", Kind: "fem-2d", SPD: true, A: gen.Grid2D(150, 150)},
	}
	cfg := Config{Scale: gen.ScaleTest, Seed: 7, Workers: 1, Timeout: 40 * time.Millisecond}
	start := time.Now()
	s, err := RunStudyMatrices(context.Background(), cfg, ms)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	// A generous bound: the 22.5k-vertex grid's full evaluation takes far
	// longer than this, so finishing quickly proves the interrupt works.
	if elapsed > 10*time.Second {
		t.Errorf("evaluation ran %v after a %v timeout", elapsed, cfg.Timeout)
	}
	if len(s.Failures) != 1 {
		t.Fatalf("%d results, %d failures, want the matrix to time out",
			len(s.Matrices), len(s.Failures))
	}
	if f := s.Failures[0]; f.Name != "slow" || f.Class != FailTimeout {
		t.Errorf("failure = name %s class %s, want slow/timeout", f.Name, f.Class)
	}
}

// TestClassify pins the failure taxonomy.
func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want FailureClass
	}{
		{errors.New("x"), FailError},
		{context.DeadlineExceeded, FailTimeout},
		{context.Canceled, FailCanceled},
		{&PanicError{Value: "v", Stack: "s"}, FailPanic},
		{&MatrixError{Name: "m", Err: context.DeadlineExceeded}, FailTimeout},
		{&MatrixError{Name: "m", Err: &PanicError{Value: "v"}}, FailPanic},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %s, want %s", c.err, got, c.want)
		}
	}
	if FailError.Retryable() || FailCanceled.Retryable() {
		t.Error("error/canceled must not be retryable")
	}
	if !FailTimeout.Retryable() || !FailPanic.Retryable() {
		t.Error("timeout/panic must be retryable")
	}
}

// TestWriteFailureReport pins the failures.txt format.
func TestWriteFailureReport(t *testing.T) {
	var empty bytes.Buffer
	if err := WriteFailureReport(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if empty.String() != "no failures\n" {
		t.Errorf("empty report = %q", empty.String())
	}
	var buf bytes.Buffer
	err := WriteFailureReport(&buf, []MatrixError{
		{Name: "m1", Ordering: "ND", Class: FailTimeout, Attempts: 2, Err: context.DeadlineExceeded},
		{Name: "m2", Class: FailPanic, Attempts: 1, Err: &PanicError{Value: "boom", Stack: "goroutine 1\nmain.go:1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"matrix: m1", "ordering: ND", "class: timeout", "attempts: 2",
		"matrix: m2", "ordering: -", "class: panic", "panic: boom", "goroutine 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("failures.txt missing %q:\n%s", want, out)
		}
	}
}
