//go:build race

package experiments

// raceEnabled reports whether this test binary was built with -race.
// Host wall-clock timing tests (Table 5) skip themselves under the race
// detector: the ~8× instrumentation slowdown makes their timings
// meaningless and pushes the package past the default test timeout. The
// concurrency-sensitive paths stay covered — the shared testStudy run
// and the runner tests drive the worker pool under race.
const raceEnabled = true
