package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"sparseorder/internal/gen"
	"sparseorder/internal/machine"
	"sparseorder/internal/obs"
	"sparseorder/internal/reorder"
)

// FailureClass categorises why a matrix evaluation failed; it drives the
// retry policy and the failure report.
type FailureClass string

// The failure classes. Timeouts and panics are considered transient (a
// retry under less memory pressure or scheduler noise can succeed);
// cancellation means the whole run is stopping and is never retried or
// journaled; resource means the governor refused the matrix because its
// estimated working set can never fit the memory budget — deterministic
// for a given budget, so never retried, but journaled so resume skips it;
// everything else is a deterministic evaluation error that a retry would
// only repeat.
const (
	FailError    FailureClass = "error"
	FailTimeout  FailureClass = "timeout"
	FailCanceled FailureClass = "canceled"
	FailPanic    FailureClass = "panic"
	FailResource FailureClass = "resource"
)

// Retryable reports whether a bounded retry may be attempted for this
// class of failure.
func (c FailureClass) Retryable() bool { return c == FailTimeout || c == FailPanic }

// Classify maps an evaluation error to its failure class.
func Classify(err error) FailureClass {
	var pe *PanicError
	switch {
	case errors.As(err, &pe):
		return FailPanic
	case errors.Is(err, ErrResourceBudget):
		return FailResource
	case errors.Is(err, context.DeadlineExceeded):
		return FailTimeout
	case errors.Is(err, context.Canceled):
		return FailCanceled
	default:
		return FailError
	}
}

// PanicError is a recovered evaluation panic with its stack, preserved as
// a typed error so Classify can distinguish panics from ordinary errors.
type PanicError struct {
	Value string
	Stack string
}

// Error keeps the historical "panic: value\nstack" format.
func (e *PanicError) Error() string { return "panic: " + e.Value + "\n" + e.Stack }

// MatrixError records the failure of one matrix's evaluation. Ordering is
// the algorithm whose computation or application failed when the failure
// is ordering-specific; for whole-matrix failures (panic, timeout,
// cancellation) it is empty.
type MatrixError struct {
	Name     string
	Ordering reorder.Algorithm
	Err      error
	// Class is the failure class Classify assigned to Err.
	Class FailureClass
	// Attempts is how many evaluation attempts were made (≥1); values
	// above one mean retries were exhausted without success.
	Attempts int
}

// Error formats the failure as "name: ordering: cause".
func (e *MatrixError) Error() string {
	if e.Ordering != "" {
		return fmt.Sprintf("%s: %s: %v", e.Name, e.Ordering, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.Name, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *MatrixError) Unwrap() error { return e.Err }

// evalFunc is the per-matrix evaluation the runner drives; tests inject
// failing and panicking variants to exercise the isolation guarantees.
type evalFunc func(context.Context, gen.Matrix, Config) (*MatrixResult, error)

// RunStudy evaluates the whole synthetic collection. It sets the machine
// model's cache scaling to match the collection scale (see
// machine.CacheScaleFor) so the cache-pressure regime mirrors the paper's.
func RunStudy(cfg Config) (*StudyResult, error) {
	return RunStudyContext(context.Background(), cfg)
}

// RunStudyContext is RunStudy with cancellation: cancelling the context
// stops the study and returns the context's error. Matrices are evaluated
// concurrently by cfg.Workers workers; each matrix that fails — by error,
// by panic, or by exceeding cfg.Timeout — is recorded in
// StudyResult.Failures without affecting any other matrix, so one
// pathological matrix can never abort the run.
func RunStudyContext(ctx context.Context, cfg Config) (*StudyResult, error) {
	return runStudy(ctx, cfg, gen.Collection(cfg.Scale, cfg.Seed), EvaluateMatrixContext)
}

// RunStudyMatrices evaluates an explicit matrix list instead of the
// generated collection — the entry point for user-supplied (e.g. Matrix
// Market) corpora. It applies the same cache scaling, concurrency and
// failure isolation as RunStudyContext; results preserve input order.
func RunStudyMatrices(ctx context.Context, cfg Config, matrices []gen.Matrix) (*StudyResult, error) {
	return runStudy(ctx, cfg, matrices, EvaluateMatrixContext)
}

// runStudy is the shared bounded worker pool. Determinism: each matrix's
// result is stored at its collection index as it completes, and the final
// Matrices/Failures slices are assembled in index order after all workers
// drain, so the output is identical for any worker count (the per-matrix
// evaluation itself does not depend on the other matrices).
func runStudy(ctx context.Context, cfg Config, coll []gen.Matrix, eval evalFunc) (*StudyResult, error) {
	cfg = cfg.withDefaults()
	machine.CacheScale = machine.CacheScaleFor(cfg.Scale.Factor())

	// Attach the observability sinks to the evaluation context so every
	// layer below (study orderings, reorder phases, partitioner levels)
	// reports through them. With cfg.Obs nil this is a no-op and the whole
	// instrumented stack stays on its zero-allocation disabled path.
	o := cfg.Obs
	ctx = obs.NewContext(ctx, o)
	tel := newRunTelemetry(o)

	// The governor admits matrices against the memory budget; nil (no
	// budget configured or detected) admits everything with no locking.
	gov := newGovernor(cfg)
	if gov != nil {
		cfg.Logf("memory governor: budget %s, solo ceiling %s",
			FormatBytes(gov.budget), FormatBytes(gov.soloCap))
	}

	// Journal append failures are run-fatal — a silently failing disk must
	// not masquerade as a healthy checkpoint. The first one cancels runCtx
	// so in-flight matrices stop promptly, and is returned once the pool
	// drains; matrices journaled before the failure remain resumable.
	runCtx, cancelRun := context.WithCancelCause(ctx)
	defer cancelRun(nil)
	var journalErr error // guarded by mu

	results := make([]*MatrixResult, len(coll))
	failures := make([]*MatrixError, len(coll))

	// Resume: matrices already journaled are pre-filled at their collection
	// index and never re-scheduled, so a resumed run assembles the exact
	// StudyResult an uninterrupted run would have produced.
	pending := make([]int, 0, len(coll))
	for i, m := range coll {
		if cfg.Journal != nil {
			if r, f, ok := cfg.Journal.Lookup(m.Name); ok {
				if r != nil {
					results[i] = r
				} else {
					failures[i] = f
				}
				continue
			}
		}
		pending = append(pending, i)
	}
	skipped := len(coll) - len(pending)
	if skipped > 0 {
		cfg.Logf("resuming: %d/%d matrices already journaled, %d to run",
			skipped, len(coll), len(pending))
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	tel.runStart(len(pending), skipped, workers)

	var (
		mu        sync.Mutex // guards the progress counters and serialises Logf
		completed int
		failed    int
	)
	logf := func(format string, args ...any) {
		mu.Lock()
		cfg.Logf(format, args...)
		mu.Unlock()
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker logger: new telemetry lines carry a "[wN]" prefix;
			// the historical progress lines below keep their exact format.
			wlogf := logf
			if o != nil && o.Log != nil {
				wlogf = o.Log.Worker(w).Infof
			}
			for idx := range jobs {
				m := coll[idx]
				var est int64
				if gov != nil && m.A != nil {
					est = EstimateMatrixBytes(m.A.Rows, m.A.NNZ(), cfg.Orderings)
				}
				tel.startMatrix(w, m.Name)
				mctx, sp := obs.Start(runCtx, "study/matrix")
				sp.SetAttr("matrix", m.Name)
				sp.SetAttr("worker", fmt.Sprint(w))
				evalStart := time.Now()
				r, attempts, err := evaluateWithRetry(mctx, m, cfg, gov, est, eval, wlogf)
				sp.End()

				var me *MatrixError
				if err != nil {
					me = asMatrixError(m.Name, err, attempts)
				}
				// Journal the outcome before announcing it, so a crash after
				// the log line can never lose an announced matrix. Cancelled
				// matrices are deliberately not journaled: they were merely
				// in flight when the run stopped and must re-run on resume.
				if cfg.Journal != nil {
					tm := tel.journalPh.Start()
					var jerr error
					if me == nil {
						jerr = cfg.Journal.RecordResult(r)
					} else if me.Class != FailCanceled {
						jerr = cfg.Journal.RecordFailure(me)
					}
					tm.Stop()
					if jerr != nil {
						logf("journal write for %s failed; aborting the run (the checkpoint can no longer be trusted): %v", m.Name, jerr)
						mu.Lock()
						if journalErr == nil {
							journalErr = jerr
						}
						mu.Unlock()
						cancelRun(jerr)
					}
				}
				tel.finishMatrix(w, m.Name, me, attempts, time.Since(evalStart).Seconds())

				mu.Lock()
				completed++
				if me != nil {
					failures[idx] = me
					failed++
					cfg.Logf("[%d/%d] %s FAILED (%s, attempt %d, %d failed so far): %v",
						completed, len(pending), m.Name, me.Class, me.Attempts, failed, err)
				} else {
					results[idx] = r
					cfg.Logf("[%d/%d] %s done (%d failed so far)",
						completed, len(pending), m.Name, failed)
				}
				mu.Unlock()
			}
		}(w)
	}

feed:
	for _, i := range pending {
		select {
		case jobs <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	tel.runEnd()

	mu.Lock()
	jfatal := journalErr
	mu.Unlock()
	if jfatal != nil {
		return nil, fmt.Errorf("experiments: journal append failed, run aborted (matrices journaled before the failure remain resumable): %w", jfatal)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := &StudyResult{Config: cfg}
	for i := range coll {
		switch {
		case results[i] != nil:
			out.Matrices = append(out.Matrices, results[i])
		case failures[i] != nil:
			out.Failures = append(out.Failures, *failures[i])
		}
	}
	return out, nil
}

// evaluateWithRetry drives evaluateIsolated under the bounded-retry
// policy: retryable failures (timeout, panic) are re-attempted up to
// cfg.Retries additional times with a capped doubling backoff and
// deterministic seeded jitter, while deterministic errors and run
// cancellation fail immediately. Every attempt is admitted through the
// governor first; after a retryable failure under an active governor the
// next attempt is promoted to a solo admission (pool drained), the middle
// rung of the degradation ladder. It returns the attempt count alongside
// the final outcome.
func evaluateWithRetry(ctx context.Context, m gen.Matrix, cfg Config, gov *Governor, est int64, eval evalFunc, logf func(string, ...any)) (*MatrixResult, int, error) {
	solo := false
	for attempt := 1; ; attempt++ {
		adm, aerr := gov.Acquire(ctx, m.Name, est, solo)
		if aerr != nil {
			// Either the run is stopping (context error, class canceled) or
			// the matrix can never fit the budget (ErrResourceBudget, class
			// resource): both are terminal for this matrix, neither retried.
			return nil, attempt, &MatrixError{Name: m.Name, Err: aerr}
		}
		if adm != nil && adm.solo {
			logf("%s admitted solo (est %s, budget %s): pool drained while it runs",
				m.Name, FormatBytes(est), FormatBytes(gov.budget))
		}
		r, err := evaluateIsolated(ctx, m, cfg, eval, logf)
		adm.Release()
		if err == nil {
			return r, attempt, nil
		}
		class := Classify(err)
		if !class.Retryable() || attempt > cfg.Retries {
			return nil, attempt, err
		}
		if gov != nil && !solo {
			solo = true
		}
		backoff := retryDelay(cfg.RetryBackoff, cfg.RetryBackoffMax, cfg.Seed, m.Name, attempt)
		logf("%s attempt %d failed (%s), retrying in %v", m.Name, attempt, class, backoff)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			// The run is stopping; report the original failure unchanged.
			return nil, attempt, err
		}
	}
}

// retryDelay computes the pause after the attempt-th failed attempt: the
// doubling backoff base·2^(attempt-1) capped at max, then scaled into
// [cap/2, cap) by a jitter factor that is a pure hash of (seed, matrix
// name, attempt). The jitter decorrelates a batch of matrices that all
// failed the same way (e.g. a timeout burst under memory pressure) so
// their retries do not land in lockstep, while staying deterministic:
// rerunning the study reproduces the identical schedule.
func retryDelay(base, max time.Duration, seed int64, name string, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	if max < base {
		max = base
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max || d <= 0 { // d <= 0 guards shift overflow
		d = max
	}
	h := uint64(seed)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	h ^= uint64(attempt)
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	frac := float64(h>>11) / (1 << 53) // uniform [0, 1)
	return d/2 + time.Duration(frac*float64(d/2))
}

// evaluateIsolated runs one matrix's evaluation with the per-matrix
// timeout applied and any panic converted into an error, so a
// pathological matrix cannot kill its worker (a panic escaping a
// goroutine would terminate the whole process). The start-of-matrix log
// runs inside the recovery scope too: it touches the matrix (a nil or
// corrupt CSR panics right there) and must be isolated the same way.
func evaluateIsolated(ctx context.Context, m gen.Matrix, cfg Config, eval evalFunc, logf func(string, ...any)) (res *MatrixResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &PanicError{Value: fmt.Sprint(r), Stack: string(debug.Stack())}
		}
	}()
	logf("evaluating %s (%d rows, %d nnz)", m.Name, m.A.Rows, m.A.NNZ())
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	return eval(ctx, m, cfg)
}

// asMatrixError normalises any evaluation error to a classified
// MatrixError record carrying the attempt count.
func asMatrixError(name string, err error, attempts int) *MatrixError {
	var me *MatrixError
	if !errors.As(err, &me) {
		me = &MatrixError{Name: name, Err: err}
	}
	me.Class = Classify(err)
	me.Attempts = attempts
	return me
}
