package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"sparseorder/internal/gen"
	"sparseorder/internal/machine"
	"sparseorder/internal/reorder"
)

// MatrixError records the failure of one matrix's evaluation. Ordering is
// the algorithm whose computation or application failed when the failure
// is ordering-specific; for whole-matrix failures (panic, timeout,
// cancellation) it is empty.
type MatrixError struct {
	Name     string
	Ordering reorder.Algorithm
	Err      error
}

// Error formats the failure as "name: ordering: cause".
func (e *MatrixError) Error() string {
	if e.Ordering != "" {
		return fmt.Sprintf("%s: %s: %v", e.Name, e.Ordering, e.Err)
	}
	return fmt.Sprintf("%s: %v", e.Name, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *MatrixError) Unwrap() error { return e.Err }

// evalFunc is the per-matrix evaluation the runner drives; tests inject
// failing and panicking variants to exercise the isolation guarantees.
type evalFunc func(context.Context, gen.Matrix, Config) (*MatrixResult, error)

// RunStudy evaluates the whole synthetic collection. It sets the machine
// model's cache scaling to match the collection scale (see
// machine.CacheScaleFor) so the cache-pressure regime mirrors the paper's.
func RunStudy(cfg Config) (*StudyResult, error) {
	return RunStudyContext(context.Background(), cfg)
}

// RunStudyContext is RunStudy with cancellation: cancelling the context
// stops the study and returns the context's error. Matrices are evaluated
// concurrently by cfg.Workers workers; each matrix that fails — by error,
// by panic, or by exceeding cfg.Timeout — is recorded in
// StudyResult.Failures without affecting any other matrix, so one
// pathological matrix can never abort the run.
func RunStudyContext(ctx context.Context, cfg Config) (*StudyResult, error) {
	return runStudy(ctx, cfg, gen.Collection(cfg.Scale, cfg.Seed), EvaluateMatrixContext)
}

// RunStudyMatrices evaluates an explicit matrix list instead of the
// generated collection — the entry point for user-supplied (e.g. Matrix
// Market) corpora. It applies the same cache scaling, concurrency and
// failure isolation as RunStudyContext; results preserve input order.
func RunStudyMatrices(ctx context.Context, cfg Config, matrices []gen.Matrix) (*StudyResult, error) {
	return runStudy(ctx, cfg, matrices, EvaluateMatrixContext)
}

// runStudy is the shared bounded worker pool. Determinism: each matrix's
// result is stored at its collection index as it completes, and the final
// Matrices/Failures slices are assembled in index order after all workers
// drain, so the output is identical for any worker count (the per-matrix
// evaluation itself does not depend on the other matrices).
func runStudy(ctx context.Context, cfg Config, coll []gen.Matrix, eval evalFunc) (*StudyResult, error) {
	cfg = cfg.withDefaults()
	machine.CacheScale = machine.CacheScaleFor(cfg.Scale.Factor())

	results := make([]*MatrixResult, len(coll))
	failures := make([]*MatrixError, len(coll))

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(coll) {
		workers = len(coll)
	}

	var (
		mu        sync.Mutex // guards the progress counters and serialises Logf
		completed int
		failed    int
	)
	logf := func(format string, args ...any) {
		mu.Lock()
		cfg.Logf(format, args...)
		mu.Unlock()
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				m := coll[idx]
				r, err := evaluateIsolated(ctx, m, cfg, eval, logf)

				mu.Lock()
				completed++
				if err != nil {
					failures[idx] = asMatrixError(m.Name, err)
					failed++
					cfg.Logf("[%d/%d] %s FAILED (%d failed so far): %v",
						completed, len(coll), m.Name, failed, err)
				} else {
					results[idx] = r
					cfg.Logf("[%d/%d] %s done (%d failed so far)",
						completed, len(coll), m.Name, failed)
				}
				mu.Unlock()
			}
		}()
	}

feed:
	for i := range coll {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := &StudyResult{Config: cfg}
	for i := range coll {
		switch {
		case results[i] != nil:
			out.Matrices = append(out.Matrices, results[i])
		case failures[i] != nil:
			out.Failures = append(out.Failures, *failures[i])
		}
	}
	return out, nil
}

// evaluateIsolated runs one matrix's evaluation with the per-matrix
// timeout applied and any panic converted into an error, so a
// pathological matrix cannot kill its worker (a panic escaping a
// goroutine would terminate the whole process). The start-of-matrix log
// runs inside the recovery scope too: it touches the matrix (a nil or
// corrupt CSR panics right there) and must be isolated the same way.
func evaluateIsolated(ctx context.Context, m gen.Matrix, cfg Config, eval evalFunc, logf func(string, ...any)) (res *MatrixResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	logf("evaluating %s (%d rows, %d nnz)", m.Name, m.A.Rows, m.A.NNZ())
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	return eval(ctx, m, cfg)
}

// asMatrixError normalises any evaluation error to a MatrixError record.
func asMatrixError(name string, err error) *MatrixError {
	var me *MatrixError
	if errors.As(err, &me) {
		return me
	}
	return &MatrixError{Name: name, Err: err}
}
