package experiments

import (
	"strings"

	"sparseorder/internal/obs"
)

// runTelemetry bundles the metric handles and progress hooks the runner
// touches per matrix, resolved once per run so the worker loop never does
// a registry lookup. The zero value (no Obs attached) is fully inert:
// every method is a cheap nil check.
type runTelemetry struct {
	o         *obs.Obs
	done      *obs.Counter   // sparseorder_matrices_total{outcome="done"}
	failed    *obs.Counter   // sparseorder_matrices_total{outcome="failed"}
	retries   *obs.Counter   // sparseorder_matrix_retries_total
	latency   *obs.Histogram // sparseorder_matrix_seconds
	workers   *obs.Gauge     // sparseorder_workers
	journalPh obs.Phase      // journal/append durations
}

func newRunTelemetry(o *obs.Obs) runTelemetry {
	if o == nil || o.Metrics == nil {
		return runTelemetry{o: o}
	}
	r := o.Metrics
	return runTelemetry{
		o: o,
		done: r.Counter("sparseorder_matrices_total",
			"matrices evaluated this run by outcome", obs.Label{Key: "outcome", Value: "done"}),
		failed: r.Counter("sparseorder_matrices_total",
			"matrices evaluated this run by outcome", obs.Label{Key: "outcome", Value: "failed"}),
		retries: r.Counter("sparseorder_matrix_retries_total",
			"additional evaluation attempts beyond the first"),
		latency: r.Histogram("sparseorder_matrix_seconds",
			"wall-clock per-matrix evaluation latency (including retries)", obs.DefBuckets),
		workers:   r.Gauge("sparseorder_workers", "concurrent matrix evaluation workers"),
		journalPh: o.Phase("journal/append"),
	}
}

// runStart records the run shape: pending/journaled totals for the
// progress view and the worker-count gauge.
func (t runTelemetry) runStart(pending, journaled, workers int) {
	if t.o == nil {
		return
	}
	t.o.Progress.SetTotal(pending, journaled)
	if t.workers != nil {
		t.workers.Set(float64(workers))
	}
}

// startMatrix marks the worker busy in the progress view.
func (t runTelemetry) startMatrix(worker int, name string) {
	if t.o == nil {
		return
	}
	t.o.Progress.StartMatrix(worker, name)
}

// finishMatrix records the matrix outcome: latency histogram, outcome and
// failure-class counters, retry count, progress, and — for terminal
// failures — a structured failure event.
func (t runTelemetry) finishMatrix(worker int, name string, me *MatrixError, attempts int, seconds float64) {
	if t.o == nil {
		return
	}
	if t.latency != nil {
		t.latency.Observe(seconds)
	}
	if attempts > 1 && t.retries != nil {
		t.retries.Add(uint64(attempts - 1))
	}
	if me == nil {
		if t.done != nil {
			t.done.Inc()
		}
	} else {
		if t.failed != nil {
			t.failed.Inc()
		}
		if t.o.Metrics != nil {
			t.o.Metrics.Counter("sparseorder_matrix_failures_total",
				"terminal matrix failures by class",
				obs.Label{Key: "class", Value: string(me.Class)}).Inc()
		}
		if t.o.Events != nil {
			t.o.Events.EmitFailure(name, string(me.Class), firstLine(me.Error()))
		}
	}
	t.o.Progress.FinishMatrix(worker, me == nil)
}

// runEnd marks the run complete in the progress view.
func (t runTelemetry) runEnd() {
	if t.o == nil {
		return
	}
	t.o.Progress.Finish()
}

// firstLine truncates multi-line error text (panic stacks) for event-log
// and metrics consumption; the full text still reaches failures.txt.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
