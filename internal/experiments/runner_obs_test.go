package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"sparseorder/internal/gen"
	"sparseorder/internal/obs"
)

// TestRunStudyTelemetry attaches a full Obs to the runner with an injected
// mixed-outcome eval and checks every sink: outcome counters, the
// failure-class counter, span histograms, the progress view, and the
// rendered /metrics families the CI smoke job asserts on.
func TestRunStudyTelemetry(t *testing.T) {
	ms := smallSet()
	eval := func(ctx context.Context, m gen.Matrix, cfg Config) (*MatrixResult, error) {
		if m.Name == "g1" {
			return nil, &MatrixError{Name: m.Name, Err: errors.New("boom")}
		}
		// The matrix span must be live in ctx so nested spans link up.
		_, sp := obs.Start(ctx, "study/ordering")
		sp.End()
		return &MatrixResult{Name: m.Name}, nil
	}
	o := &obs.Obs{Metrics: obs.NewRegistry(), Progress: obs.NewProgress()}
	s, err := runStudy(context.Background(), Config{Workers: 2, Obs: o}, ms, eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Matrices) != 3 || len(s.Failures) != 1 {
		t.Fatalf("%d results, %d failures", len(s.Matrices), len(s.Failures))
	}

	if v := o.Metrics.Counter("sparseorder_matrices_total", "", obs.Label{Key: "outcome", Value: "done"}).Value(); v != 3 {
		t.Errorf("done counter = %d, want 3", v)
	}
	if v := o.Metrics.Counter("sparseorder_matrices_total", "", obs.Label{Key: "outcome", Value: "failed"}).Value(); v != 1 {
		t.Errorf("failed counter = %d, want 1", v)
	}
	if v := o.Metrics.Counter("sparseorder_matrix_failures_total", "", obs.Label{Key: "class", Value: "error"}).Value(); v != 1 {
		t.Errorf("failure-class counter = %d, want 1", v)
	}
	if v := o.Metrics.Histogram("sparseorder_matrix_seconds", "", obs.DefBuckets).Count(); v != 4 {
		t.Errorf("latency histogram count = %d, want 4", v)
	}
	if v := o.Metrics.Histogram(obs.SpanSecondsMetric, "", obs.DefBuckets, obs.Label{Key: "span", Value: "study/matrix"}).Count(); v != 4 {
		t.Errorf("study/matrix span count = %d, want 4", v)
	}
	if v := o.Metrics.Histogram(obs.SpanSecondsMetric, "", obs.DefBuckets, obs.Label{Key: "span", Value: "study/ordering"}).Count(); v != 3 {
		t.Errorf("study/ordering span count = %d, want 3", v)
	}
	if v := o.Metrics.Gauge("sparseorder_workers", "").Value(); v != 2 {
		t.Errorf("workers gauge = %v, want 2", v)
	}

	snap := o.Progress.Snapshot()
	if !snap.Finished || snap.Done != 3 || snap.Failed != 1 || snap.Total != 4 || snap.Queued != 0 {
		t.Errorf("progress = %+v", snap)
	}

	var b strings.Builder
	if err := o.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, family := range []string{
		"sparseorder_matrices_total",
		"sparseorder_matrix_failures_total",
		"sparseorder_matrix_seconds",
		"sparseorder_span_seconds",
		"sparseorder_workers",
	} {
		if !strings.Contains(out, "# TYPE "+family+" ") {
			t.Errorf("/metrics missing family %s:\n%s", family, out)
		}
	}
}

// TestRunStudyFullPipelineSpans runs the real evaluation on one matrix and
// checks the deep spans (reorder and study phases) were recorded, proving
// the ctx threading reaches the bottom of the stack.
func TestRunStudyFullPipelineSpans(t *testing.T) {
	o := &obs.Obs{Metrics: obs.NewRegistry(), Progress: obs.NewProgress()}
	ms := smallSet()[:1]
	cfg := Config{Scale: gen.ScaleTest, Seed: 7, Workers: 1, Obs: o}
	s, err := RunStudyMatrices(context.Background(), cfg, ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Matrices) != 1 {
		t.Fatalf("%d results", len(s.Matrices))
	}
	for _, span := range []string{
		"study/matrix", "study/ordering",
		"reorder/graph", "reorder/order", "reorder/permute",
		"study/estimate", "study/features", "study/fill",
		"partition/coarsen", "partition/initial", "partition/refine",
		"hypergraph/coarsen", "hypergraph/initial", "hypergraph/refine",
	} {
		h := o.Metrics.Histogram(obs.SpanSecondsMetric, "", obs.DefBuckets, obs.Label{Key: "span", Value: span})
		if h.Count() == 0 {
			t.Errorf("span %s never recorded", span)
		}
	}
}

// TestRunStudyTelemetryDisabled: with no Obs the runner must behave
// exactly as before (the nil-telemetry path).
func TestRunStudyTelemetryDisabled(t *testing.T) {
	s, err := runStudy(context.Background(), Config{Workers: 2}, smallSet(),
		func(ctx context.Context, m gen.Matrix, cfg Config) (*MatrixResult, error) {
			return &MatrixResult{Name: m.Name}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Matrices) != 4 {
		t.Fatalf("%d results", len(s.Matrices))
	}
}
