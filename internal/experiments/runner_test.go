package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"sparseorder/internal/gen"
)

// smallSet is a tiny matrix list for runner tests: full EvaluateMatrix on
// each member is cheap enough to run repeatedly.
func smallSet() []gen.Matrix {
	return []gen.Matrix{
		{Name: "g0", Group: "mesh", Kind: "fem-2d", SPD: true, A: gen.Grid2D(10, 10)},
		{Name: "g1", Group: "mesh", Kind: "fem-2d", SPD: true, A: gen.Scramble(gen.Grid2D(11, 11), 1)},
		{Name: "g2", Group: "banded", Kind: "banded", SPD: true, A: gen.Banded(120, 6, 0.5, 2)},
		{Name: "g3", Group: "random", Kind: "random-sparse", SPD: true, A: gen.ErdosRenyi(150, 4, 3)},
	}
}

// TestRunStudyMatricesDeterministicAcrossWorkers checks the runner's core
// guarantee: the result is identical for any worker count, with results at
// their collection index regardless of completion order.
func TestRunStudyMatricesDeterministicAcrossWorkers(t *testing.T) {
	ms := smallSet()
	run := func(workers int) *StudyResult {
		s, err := RunStudyMatrices(context.Background(), Config{Scale: gen.ScaleTest, Seed: 7, Workers: workers}, ms)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return s
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 9} {
		par := run(workers)
		if len(par.Matrices) != len(ms) || len(par.Failures) != 0 {
			t.Fatalf("workers=%d: %d results, %d failures", workers, len(par.Matrices), len(par.Failures))
		}
		for i := range ms {
			a, b := serial.Matrices[i], par.Matrices[i]
			if a.Name != b.Name {
				t.Fatalf("workers=%d: result %d is %s, want %s (order not deterministic)", workers, i, b.Name, a.Name)
			}
			// Everything except wall-clock reorder timings must be
			// bit-identical.
			if !reflect.DeepEqual(a.Perf, b.Perf) {
				t.Errorf("workers=%d: %s Perf differs from serial run", workers, a.Name)
			}
			if !reflect.DeepEqual(a.Features, b.Features) {
				t.Errorf("workers=%d: %s Features differ from serial run", workers, a.Name)
			}
			if !reflect.DeepEqual(a.FillRatio, b.FillRatio) {
				t.Errorf("workers=%d: %s FillRatio differs from serial run", workers, a.Name)
			}
		}
	}
}

// TestRunStudyIsolatesInjectedError checks that a failing matrix is
// recorded in Failures while every other matrix still completes.
func TestRunStudyIsolatesInjectedError(t *testing.T) {
	ms := smallSet()
	boom := errors.New("ordering exploded")
	eval := func(ctx context.Context, m gen.Matrix, cfg Config) (*MatrixResult, error) {
		if m.Name == "g1" {
			return nil, &MatrixError{Name: m.Name, Ordering: "RCM", Err: boom}
		}
		return &MatrixResult{Name: m.Name}, nil
	}
	s, err := runStudy(context.Background(), Config{Workers: 4}, ms, eval)
	if err != nil {
		t.Fatal(err)
	}
	if got := names(s); !reflect.DeepEqual(got, []string{"g0", "g2", "g3"}) {
		t.Fatalf("successful matrices = %v", got)
	}
	if len(s.Failures) != 1 {
		t.Fatalf("%d failures, want 1", len(s.Failures))
	}
	f := s.Failures[0]
	if f.Name != "g1" || f.Ordering != "RCM" || !errors.Is(&f, boom) {
		t.Errorf("failure = %+v", f)
	}
	if !strings.Contains(f.Error(), "g1") || !strings.Contains(f.Error(), "RCM") {
		t.Errorf("failure message %q missing matrix or ordering", f.Error())
	}
}

// TestRunStudyRecoversPanic checks the bugfix headline: a panic inside a
// worker is converted to a recorded failure instead of killing the run.
func TestRunStudyRecoversPanic(t *testing.T) {
	ms := smallSet()
	eval := func(ctx context.Context, m gen.Matrix, cfg Config) (*MatrixResult, error) {
		if m.Name == "g2" {
			panic("pathological matrix")
		}
		return &MatrixResult{Name: m.Name}, nil
	}
	s, err := runStudy(context.Background(), Config{Workers: 4}, ms, eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Matrices) != 3 || len(s.Failures) != 1 {
		t.Fatalf("%d results, %d failures", len(s.Matrices), len(s.Failures))
	}
	f := s.Failures[0]
	if f.Name != "g2" || !strings.Contains(f.Err.Error(), "panic: pathological matrix") {
		t.Errorf("failure = %v", &f)
	}
}

// TestRunStudyMatricesRecoversRealPanic drives the public entry point with
// a matrix that makes the real EvaluateMatrix panic (nil CSR).
func TestRunStudyMatricesRecoversRealPanic(t *testing.T) {
	ms := smallSet()
	ms[2].A = nil // nil deref inside EvaluateMatrix
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic escaped RunStudyMatrices: %v", r)
		}
	}()
	// The nil matrix panics as early as the runner's own progress-log
	// arguments (m.A.Rows); that panic must not escape either.
	cfg := Config{Scale: gen.ScaleTest, Seed: 7, Workers: 3}
	s, err := RunStudyMatrices(context.Background(), cfg, ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Matrices) != 3 || len(s.Failures) != 1 {
		t.Fatalf("%d results, %d failures", len(s.Matrices), len(s.Failures))
	}
	if s.Failures[0].Name != "g2" || !strings.Contains(s.Failures[0].Err.Error(), "panic") {
		t.Errorf("failure = %v", &s.Failures[0])
	}
}

// TestRunStudyDeterministicOrderUnderSkew forces later matrices to finish
// first and checks results still land in collection order.
func TestRunStudyDeterministicOrderUnderSkew(t *testing.T) {
	var ms []gen.Matrix
	for i := 0; i < 8; i++ {
		ms = append(ms, gen.Matrix{Name: fmt.Sprintf("m%d", i), A: gen.Grid2D(4, 4)})
	}
	eval := func(ctx context.Context, m gen.Matrix, cfg Config) (*MatrixResult, error) {
		var i int
		fmt.Sscanf(m.Name, "m%d", &i)
		time.Sleep(time.Duration(len(ms)-i) * 10 * time.Millisecond)
		return &MatrixResult{Name: m.Name}, nil
	}
	s, err := runStudy(context.Background(), Config{Workers: 8}, ms, eval)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"m0", "m1", "m2", "m3", "m4", "m5", "m6", "m7"}
	if got := names(s); !reflect.DeepEqual(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

// TestRunStudyTimeout checks that a matrix exceeding Config.Timeout is
// recorded as a DeadlineExceeded failure while the rest complete.
func TestRunStudyTimeout(t *testing.T) {
	ms := smallSet()
	eval := func(ctx context.Context, m gen.Matrix, cfg Config) (*MatrixResult, error) {
		if m.Name == "g3" {
			<-ctx.Done() // simulate an evaluation that never finishes
			return nil, &MatrixError{Name: m.Name, Err: ctx.Err()}
		}
		return &MatrixResult{Name: m.Name}, nil
	}
	s, err := runStudy(context.Background(), Config{Workers: 2, Timeout: 30 * time.Millisecond}, ms, eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Matrices) != 3 || len(s.Failures) != 1 {
		t.Fatalf("%d results, %d failures", len(s.Matrices), len(s.Failures))
	}
	if f := s.Failures[0]; f.Name != "g3" || !errors.Is(&f, context.DeadlineExceeded) {
		t.Errorf("failure = %v", &f)
	}
}

// TestRunStudyCancellation checks that cancelling the study's context
// aborts the whole run with the context's error.
func TestRunStudyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunStudyMatrices(ctx, Config{Scale: gen.ScaleTest, Workers: 2}, smallSet()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunStudyLogfSerialised checks progress logging is thread-safe even
// with a Logf that is not: races would be caught by -race, interleaving by
// the per-line counter check.
func TestRunStudyLogfSerialised(t *testing.T) {
	var lines []string // deliberately unguarded; the runner must serialise
	cfg := Config{
		Scale:   gen.ScaleTest,
		Workers: 4,
		Logf:    func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) },
	}
	s, err := RunStudyMatrices(context.Background(), cfg, smallSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Matrices) != 4 {
		t.Fatalf("%d results", len(s.Matrices))
	}
	var done int
	for _, l := range lines {
		if strings.Contains(l, "done") {
			done++
		}
	}
	if done != 4 {
		t.Fatalf("progress lines report %d completions in %d lines", done, len(lines))
	}
	if !strings.Contains(strings.Join(lines, "\n"), "[4/4]") {
		t.Error("missing final [4/4] progress line")
	}
}

func names(s *StudyResult) []string {
	var out []string
	for _, r := range s.Matrices {
		out = append(out, r.Name)
	}
	return out
}
