// Package experiments orchestrates the full reproduction of the study:
// it applies every reordering to every collection matrix, evaluates both
// SpMV kernels on all eight machine models, computes the order-sensitive
// features and Cholesky fill-in, and renders each of the paper's tables
// and figures (Figures 1-6, Tables 3-5) as ASCII tables in the layout of
// the paper's artifact.
package experiments

import (
	"context"
	"runtime"
	"time"

	"sparseorder/internal/gen"
	"sparseorder/internal/machine"
	"sparseorder/internal/metrics"
	"sparseorder/internal/obs"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
)

// Config controls a study run. Zero values take the documented defaults.
type Config struct {
	Scale    gen.Scale
	Seed     int64
	Machines []machine.Machine // default: machine.Table2
	// Orderings evaluated in addition to Original. Default: the paper's six.
	Orderings []reorder.Algorithm
	// HostThreads is the goroutine count for wall-clock measurements
	// (Table 5); default runtime.GOMAXPROCS(0).
	HostThreads int
	// Repeats is the number of timed host SpMV iterations; like the paper,
	// the best run is reported. Default 10.
	Repeats int
	// Workers is the number of matrices RunStudy evaluates concurrently.
	// Default runtime.GOMAXPROCS(0). Results are deterministic and land
	// in collection order regardless of the worker count.
	Workers int
	// ReorderWorkers is the worker count handed to the parallel reordering
	// paths (reorder.Options.Workers) and the parallel feature computation
	// for each matrix. The default 0 means 1 (the serial path): matrices
	// already run concurrently under Workers, so per-matrix parallelism is
	// opt-in to avoid oversubscription. Any value produces byte-identical
	// permutations, matrices and features.
	ReorderWorkers int
	// IngestWorkers is the worker count for parallel Matrix Market
	// ingestion (sparse.ReadMatrixMarketWorkers) when the study runs on a
	// file corpus (LoadMatrixFiles). Unlike ReorderWorkers, the default 0
	// means GOMAXPROCS: ingestion happens before the matrix worker pool
	// spins up, so it may use the whole host without oversubscription.
	// Any value produces byte-identical matrices.
	IngestWorkers int
	// Timeout bounds each matrix's evaluation; 0 means no limit. The
	// deadline is threaded into the ordering algorithms themselves (BFS,
	// elimination, coarsening and refinement loops all poll it), so even a
	// single wedged ordering stops within a bounded amount of work of the
	// deadline. A timed-out matrix is recorded in StudyResult.Failures;
	// the study continues.
	Timeout time.Duration
	// Retries is the number of additional evaluation attempts for matrices
	// failing with a retryable class (timeout, panic). 0 disables retry;
	// deterministic errors and run cancellation are never retried.
	Retries int
	// RetryBackoff is the pause before the first retry, doubling on each
	// subsequent attempt. Default 100ms. The actual pause is capped at
	// RetryBackoffMax and scattered by deterministic seeded jitter (see
	// retryDelay) so batches of same-class failures retry decorrelated.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the doubling backoff. Default 10s.
	RetryBackoffMax time.Duration
	// MemBudget is the byte budget the resource governor admits matrices
	// against (see DESIGN.md, "Resource governance & degradation
	// contract"): per-matrix working sets are estimated up front and a
	// byte-weighted semaphore narrows effective concurrency so the sum of
	// admitted estimates stays within the budget; oversized matrices run
	// alone with the pool drained, and matrices beyond twice the budget
	// are skipped with failure class "resource". 0 auto-detects from the
	// runtime's soft memory limit (GOMEMLIMIT), taking 90% of it, and
	// leaves the governor off when no limit is set; negative disables the
	// governor unconditionally.
	MemBudget int64
	// Journal, when set, receives every completed matrix (result or
	// terminal failure) as a durable record, and matrices it already holds
	// are skipped and their recorded outcomes reused — the checkpoint /
	// resume mechanism. The journal must have been created or loaded with
	// this same Config (LoadJournal enforces the binding).
	Journal *Journal
	// Logf receives per-matrix progress if set. RunStudy serialises calls
	// to it, so it need not be safe for concurrent use itself.
	Logf func(format string, args ...any)
	// Obs, when non-nil, receives the run's telemetry: per-matrix and
	// per-phase spans, latency histograms, failure-class counters, the
	// live progress view and the structured event log. The runner threads
	// it into the evaluation context (obs.NewContext), so every layer down
	// to the partitioners reports through the same sinks. Nil keeps the
	// entire instrumented path on its zero-allocation fast path.
	Obs *obs.Obs
}

func (c Config) withDefaults() Config {
	if c.Machines == nil {
		c.Machines = machine.Table2
	}
	if c.Orderings == nil {
		c.Orderings = reorder.Algorithms
	}
	if c.HostThreads == 0 {
		c.HostThreads = runtime.GOMAXPROCS(0)
	}
	if c.Repeats == 0 {
		c.Repeats = 10
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ReorderWorkers == 0 {
		c.ReorderWorkers = 1
	}
	if c.IngestWorkers == 0 {
		c.IngestWorkers = runtime.GOMAXPROCS(0)
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	if c.RetryBackoffMax == 0 {
		c.RetryBackoffMax = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Measurement is the per-(matrix, ordering, machine, kernel) record,
// mirroring the seven per-ordering columns of the paper's artifact files.
type Measurement struct {
	MinNNZ    int
	MaxNNZ    int
	MeanNNZ   float64
	Imbalance float64
	Seconds   float64
	Gflops    float64
}

// MatrixResult holds everything the study records about one matrix.
type MatrixResult struct {
	Name  string
	Group string
	Kind  string
	Rows  int
	NNZ   int
	SPD   bool

	// Perf[machine][kernel][ordering] for every evaluated ordering
	// (including Original). GP uses the partition count matching each
	// machine's cores, as in the paper.
	Perf map[string]map[machine.Kernel]map[reorder.Algorithm]Measurement

	// Features[ordering] with blocks = 128 (the HP partition count).
	Features map[reorder.Algorithm]metrics.Features

	// ReorderSeconds[ordering] is the wall-clock cost of computing the
	// ordering on the host.
	ReorderSeconds map[reorder.Algorithm]float64

	// ReorderPhases[ordering] splits ReorderSeconds into graph
	// construction, ordering and permutation application — the Table 5
	// reordering-time breakdown. For GP the graph/order phases accumulate
	// over the distinct per-machine part counts.
	ReorderPhases map[reorder.Algorithm]reorder.PhaseTimings

	// FillRatio[ordering] is nnz(L)/nnz(A); only set for SPD matrices and
	// symmetric orderings.
	FillRatio map[reorder.Algorithm]float64
}

// Speedup returns Gflops(alg)/Gflops(Original) for the given machine and
// kernel, the quantity plotted throughout the paper.
func (r *MatrixResult) Speedup(mach string, k machine.Kernel, alg reorder.Algorithm) float64 {
	perf := r.Perf[mach][k]
	base := perf[reorder.Original].Gflops
	if base == 0 {
		return 0
	}
	return perf[alg].Gflops / base
}

// StudyResult is the output of RunStudy. Matrices holds the successful
// evaluations in collection order; Failures the matrices that could not
// be evaluated, also in collection order.
type StudyResult struct {
	Config   Config
	Matrices []*MatrixResult
	Failures []MatrixError
}

// featureBlocks is the block count for the off-diagonal nonzero feature;
// the paper uses the HP partition count (128).
const featureBlocks = 128

// EvaluateMatrix runs the full per-matrix pipeline: all orderings, all
// machine models, both kernels, features and (for SPD inputs) fill-in.
func EvaluateMatrix(m gen.Matrix, cfg Config) (*MatrixResult, error) {
	return EvaluateMatrixContext(context.Background(), m, cfg)
}

// EvaluateMatrixContext is EvaluateMatrix with cooperative cancellation:
// the context is checked between orderings and machine models and is
// threaded into each ordering algorithm's inner loops, so a cancelled or
// timed-out evaluation returns promptly even when a single ordering is
// wedged. Failures are reported as *MatrixError.
func EvaluateMatrixContext(ctx context.Context, m gen.Matrix, cfg Config) (*MatrixResult, error) {
	cfg = cfg.withDefaults()
	res := &MatrixResult{
		Name:           m.Name,
		Group:          m.Group,
		Kind:           m.Kind,
		Rows:           m.A.Rows,
		NNZ:            m.A.NNZ(),
		SPD:            m.SPD,
		Perf:           map[string]map[machine.Kernel]map[reorder.Algorithm]Measurement{},
		Features:       map[reorder.Algorithm]metrics.Features{},
		ReorderSeconds: map[reorder.Algorithm]float64{},
		ReorderPhases:  map[reorder.Algorithm]reorder.PhaseTimings{},
		FillRatio:      map[reorder.Algorithm]float64{},
	}
	for _, mc := range cfg.Machines {
		res.Perf[mc.Name] = map[machine.Kernel]map[reorder.Algorithm]Measurement{
			machine.Kernel1D: {},
			machine.Kernel2D: {},
		}
	}

	// Distinct GP part counts (one ordering per machine core count).
	gpParts := map[int]sparse.Perm{}

	o := obs.FromContext(ctx)
	estimatePh := o.Phase("study/estimate")
	featuresPh := o.Phase("study/features")
	fillPh := o.Phase("study/fill")

	evalOrdering := func(alg reorder.Algorithm, b *sparse.CSR, machines []machine.Machine) {
		tm := estimatePh.Start()
		defer tm.Stop()
		for _, mc := range machines {
			for _, k := range []machine.Kernel{machine.Kernel1D, machine.Kernel2D} {
				e := machine.EstimateSpMV(b, mc, k)
				minN, maxN := e.ThreadNNZ[0], e.ThreadNNZ[0]
				for _, n := range e.ThreadNNZ {
					if n < minN {
						minN = n
					}
					if n > maxN {
						maxN = n
					}
				}
				res.Perf[mc.Name][k][alg] = Measurement{
					MinNNZ:    minN,
					MaxNNZ:    maxN,
					MeanNNZ:   float64(b.NNZ()) / float64(mc.Cores),
					Imbalance: e.Imbalance,
					Seconds:   e.Seconds,
					Gflops:    e.Gflops,
				}
			}
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, &MatrixError{Name: m.Name, Err: err}
	}

	// Original ordering first.
	evalOrdering(reorder.Original, m.A, cfg.Machines)
	tm := featuresPh.Start()
	res.Features[reorder.Original] = metrics.ComputeWorkers(m.A, featureBlocks, featureBlocks, cfg.ReorderWorkers)
	tm.Stop()
	if m.SPD {
		tm = fillPh.Start()
		fr, err := fillOf(m.A)
		tm.Stop()
		if err == nil {
			res.FillRatio[reorder.Original] = fr
		}
	}

	for _, alg := range cfg.Orderings {
		if err := ctx.Err(); err != nil {
			return nil, &MatrixError{Name: m.Name, Err: err}
		}
		// One span per (matrix, ordering); the reorder-phase spans started
		// inside ApplyTimedCtx/ComputeTimedCtx nest under it via octx.
		octx, sp := obs.Start(ctx, "study/ordering")
		sp.SetAttr("alg", string(alg))
		sp.SetAttr("matrix", m.Name)
		res2, err := evalOneOrdering(octx, alg, m, cfg, res, gpParts, evalOrdering, featuresPh, fillPh)
		sp.End()
		if err != nil {
			return nil, err
		}
		res = res2
	}
	return res, nil
}

// evalOneOrdering evaluates one ordering of one matrix into res; split out
// of EvaluateMatrixContext so each ordering runs under its own span.
func evalOneOrdering(ctx context.Context, alg reorder.Algorithm, m gen.Matrix, cfg Config,
	res *MatrixResult, gpParts map[int]sparse.Perm,
	evalOrdering func(reorder.Algorithm, *sparse.CSR, []machine.Machine),
	featuresPh, fillPh obs.Phase) (*MatrixResult, error) {
	switch alg {
	case reorder.GP:
		// One GP ordering per distinct machine core count.
		var phases reorder.PhaseTimings
		for _, mc := range cfg.Machines {
			if err := ctx.Err(); err != nil {
				return nil, &MatrixError{Name: m.Name, Ordering: alg, Err: err}
			}
			p, ok := gpParts[mc.Cores]
			if !ok {
				var ph reorder.PhaseTimings
				var err error
				p, ph, err = reorder.ComputeTimedCtx(ctx, reorder.GP, m.A,
					reorder.Options{Seed: cfg.Seed, Parts: mc.Cores, Workers: cfg.ReorderWorkers})
				if err != nil {
					return nil, &MatrixError{Name: m.Name, Ordering: alg, Err: err}
				}
				phases.GraphSeconds += ph.GraphSeconds
				phases.OrderSeconds += ph.OrderSeconds
				gpParts[mc.Cores] = p
			}
			b, err := sparse.PermuteSymmetricWorkers(m.A, p, cfg.ReorderWorkers)
			if err != nil {
				return nil, &MatrixError{Name: m.Name, Ordering: alg, Err: err}
			}
			evalOrdering(alg, b, []machine.Machine{mc})
		}
		// ReorderSeconds keeps its historical meaning for GP: the cost
		// of computing the orderings, excluding the per-machine
		// permutation applications.
		res.ReorderSeconds[alg] = phases.GraphSeconds + phases.OrderSeconds
		// Features and fill use the 128-part GP ordering (or the largest
		// evaluated) to match the HP feature blocks.
		p := gpParts[largestCores(cfg.Machines)]
		start := time.Now()
		b, err := sparse.PermuteSymmetricWorkers(m.A, p, cfg.ReorderWorkers)
		if err != nil {
			return nil, &MatrixError{Name: m.Name, Ordering: alg, Err: err}
		}
		phases.PermuteSeconds = time.Since(start).Seconds()
		res.ReorderPhases[alg] = phases
		tm := featuresPh.Start()
		res.Features[alg] = metrics.ComputeWorkers(b, featureBlocks, featureBlocks, cfg.ReorderWorkers)
		tm.Stop()
		if m.SPD {
			tm = fillPh.Start()
			fr, err := fillOf(b)
			tm.Stop()
			if err == nil {
				res.FillRatio[alg] = fr
			}
		}
	default:
		b, _, ph, err := reorder.ApplyTimedCtx(ctx, alg, m.A,
			reorder.Options{Seed: cfg.Seed, Workers: cfg.ReorderWorkers})
		if err != nil {
			return nil, &MatrixError{Name: m.Name, Ordering: alg, Err: err}
		}
		res.ReorderSeconds[alg] = ph.Total()
		res.ReorderPhases[alg] = ph
		evalOrdering(alg, b, cfg.Machines)
		tm := featuresPh.Start()
		res.Features[alg] = metrics.ComputeWorkers(b, featureBlocks, featureBlocks, cfg.ReorderWorkers)
		tm.Stop()
		if m.SPD && alg.Symmetric() {
			tm = fillPh.Start()
			fr, err := fillOf(b)
			tm.Stop()
			if err == nil {
				res.FillRatio[alg] = fr
			}
		}
	}
	return res, nil
}

func largestCores(ms []machine.Machine) int {
	best := 0
	for _, m := range ms {
		if m.Cores > best {
			best = m.Cores
		}
	}
	return best
}

// Speedups collects the speedup of alg over Original across all matrices
// for one machine and kernel.
func (s *StudyResult) Speedups(mach string, k machine.Kernel, alg reorder.Algorithm) []float64 {
	var xs []float64
	for _, r := range s.Matrices {
		if v := r.Speedup(mach, k, alg); v > 0 {
			xs = append(xs, v)
		}
	}
	return xs
}
