// Package faultinject provides seeded, deterministic fault injection for
// the study's durability-critical paths: matrix I/O, journal appends,
// atomic artifact writes and reordering phase boundaries.
//
// Instrumented code calls Check (or guards with Enabled) at a named fault
// Point. With no plan active — the production default — Check is a single
// atomic pointer load and a nil check: it allocates nothing and costs a
// few nanoseconds (asserted by TestCheckDisabledZeroAlloc and
// BenchmarkFaultDisabled). With a plan active, whether a fault fires at a
// given point is a pure function of the plan seed, the point name and the
// caller-supplied key, so two runs (or a run and its crash-resume) that
// visit the same (point, key) pairs observe the identical fault schedule —
// the property the chaos soak tests build on. Call sites that have no
// stable key pass "" and are keyed by a per-point hit counter instead;
// their schedule is deterministic within one process but restarts with it.
//
// Plans are built with ParseSpec (the format behind the SPARSEORDER_FAULTS
// environment knob and cmd/study's -faults flag) or assembled from Rule
// values directly, then installed process-wide with Activate.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"syscall"
	"time"
)

// Point names an injectable fault site. The constants below are the sites
// wired into the repository; plans may reference any string, so new sites
// need no registry change.
type Point string

// The wired fault points.
const (
	// MatrixRead fires at the top of sparse.ReadMatrixMarket and its
	// parallel counterpart ReadMatrixMarketWorkers (keyless: streams carry
	// no stable identity).
	MatrixRead Point = "matrix/read"
	// IngestChunk fires at the start of each chunk parse in the parallel
	// ingestion pipeline, keyed by the chunk ordinal ("chunk0", "chunk1",
	// ...) so a schedule is stable across runs at a fixed worker count.
	IngestChunk Point = "ingest/chunk"
	// JournalAppend and JournalSync fire before the journal's record write
	// and fsync respectively, keyed by the matrix name being recorded.
	JournalAppend Point = "journal/append"
	JournalSync   Point = "journal/sync"
	// FileWrite, FileSync and FileRename fire inside
	// fsutil.WriteFileAtomic before the data write, the temp-file fsync
	// and the rename, keyed by the destination base name. FileWrite
	// additionally leaves a genuinely torn temp file behind (half the
	// payload) so cleanup paths are exercised against realistic debris.
	// FileDirSync fires before the parent-directory fsync that makes the
	// completed rename itself durable, keyed by the directory base name:
	// when it fires the destination already holds the new content, but
	// the caller must treat the write as non-durable.
	FileWrite   Point = "fsutil/write"
	FileSync    Point = "fsutil/sync"
	FileRename  Point = "fsutil/rename"
	FileDirSync Point = "fsutil/dirsync"
	// ReorderGraph, ReorderOrder and ReorderPermute fire at the phase
	// boundaries of reorder.ComputeTimedCtx / ApplyTimedCtx, keyed by
	// "alg/rows x cols/nnz" so the schedule is stable per (matrix, alg).
	ReorderGraph   Point = "reorder/graph"
	ReorderOrder   Point = "reorder/order"
	ReorderPermute Point = "reorder/permute"
	// ServerDecode, ServerReorder, ServerCacheInsert and ServerSpMV fire
	// on the request path of the serving daemon (internal/server): before
	// the Matrix Market decode, before the ordering computation, before
	// the plan-cache insert and before each SpMV execution. All four are
	// keyed by the upload's content hash, so a schedule hits the same
	// matrices in every run regardless of request interleaving.
	ServerDecode      Point = "server/decode"
	ServerReorder     Point = "server/reorder"
	ServerCacheInsert Point = "server/cache"
	ServerSpMV        Point = "server/spmv"
	// StoreWrite, StoreSync, StoreRead and StoreCorrupt cover the serving
	// daemon's persistent plan store (internal/server.Store), all keyed by
	// the entry's content hash. StoreWrite fires before an entry is
	// serialised (nothing lands on disk); StoreSync fires after the atomic
	// write completed but before the store reports it durable (the entry
	// exists but the writer must assume it might not survive a crash);
	// StoreRead fires before an entry file is read during warm-restart
	// recovery; StoreCorrupt fires after a successful write and flips one
	// payload byte on disk, manufacturing the exact corruption the
	// recovery checksum pass must quarantine.
	StoreWrite   Point = "store/write"
	StoreSync    Point = "store/fsync"
	StoreRead    Point = "store/read"
	StoreCorrupt Point = "store/corrupt"
)

// Mode is what happens when a fault fires.
type Mode int

// The fault modes.
const (
	// ModeError returns an error wrapping ErrInjected.
	ModeError Mode = iota
	// ModeENOSPC returns an error wrapping syscall.ENOSPC, simulating a
	// full disk.
	ModeENOSPC
	// ModeShortWrite returns an error wrapping io.ErrShortWrite; fsutil
	// additionally truncates the payload it writes, producing a real torn
	// temp file.
	ModeShortWrite
	// ModePanic panics with an *InjectedPanic; the runner's recovery
	// converts it into a retryable panic-class failure.
	ModePanic
	// ModeDelay sleeps Param milliseconds (default 10) and returns nil —
	// a latency fault, not a failure.
	ModeDelay
	// ModeAlloc allocates and touches Param MiB (default 64), releases it,
	// and returns nil — artificial allocation pressure for governor tests.
	ModeAlloc
)

// String names the mode with the vocabulary of ParseSpec.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeENOSPC:
		return "enospc"
	case ModeShortWrite:
		return "shortwrite"
	case ModePanic:
		return "panic"
	case ModeDelay:
		return "delay"
	case ModeAlloc:
		return "alloc"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Rule arms one fault point.
type Rule struct {
	Point Point
	Mode  Mode
	// Rate is the firing probability per eligible hit, in [0, 1]. The
	// decision is a pure hash of (plan seed, point, key), so it is the
	// same for the same key in every run with the same seed.
	Rate float64
	// After suppresses the rule for the first After hits of the point
	// (counted per process), turning a rule into a "fail the N+1th
	// journal sync" style one-shot trigger.
	After uint64
	// Param is the mode parameter: milliseconds for ModeDelay, MiB for
	// ModeAlloc; ignored otherwise. 0 takes the mode's default.
	Param int
}

// Plan is an armed fault schedule. Plans are immutable after Activate
// except for their internal hit/fired counters.
type Plan struct {
	seed  int64
	rules map[Point][]Rule
	hits  map[Point]*atomic.Uint64
	fired map[Point]*atomic.Uint64
}

// NewPlan builds a plan from rules; rules for the same point all apply, in
// order, and the first that fires wins.
func NewPlan(seed int64, rules ...Rule) *Plan {
	p := &Plan{
		seed:  seed,
		rules: map[Point][]Rule{},
		hits:  map[Point]*atomic.Uint64{},
		fired: map[Point]*atomic.Uint64{},
	}
	for _, r := range rules {
		p.rules[r.Point] = append(p.rules[r.Point], r)
		if p.hits[r.Point] == nil {
			p.hits[r.Point] = new(atomic.Uint64)
			p.fired[r.Point] = new(atomic.Uint64)
		}
	}
	return p
}

// active is the process-wide armed plan; nil means fault injection is off
// and every Check is a nil check.
var active atomic.Pointer[Plan]

// Activate arms the plan process-wide; Activate(nil) is Deactivate.
func Activate(p *Plan) { active.Store(p) }

// Deactivate disarms fault injection.
func Deactivate() { active.Store(nil) }

// Enabled reports whether a plan is armed. Hot call sites that must build
// a key guard the key construction behind it so the disabled path stays
// allocation-free.
func Enabled() bool { return active.Load() != nil }

// Check consults the armed plan at the given point. It returns nil when no
// plan is armed, no rule covers the point, or the seeded decision does not
// fire; otherwise it returns (or panics with) the rule's fault. key should
// identify the unit of work stably across runs (matrix name, file base
// name); "" keys the decision by the per-point hit count instead.
func Check(pt Point, key string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.check(pt, key)
}

func (p *Plan) check(pt Point, key string) error {
	rules := p.rules[pt]
	if len(rules) == 0 {
		return nil
	}
	hit := p.hits[pt].Add(1) - 1 // 0-based ordinal of this hit
	for _, r := range rules {
		if hit < r.After || r.Rate <= 0 {
			continue
		}
		if r.Rate < 1 {
			var h uint64
			if key == "" {
				h = mix(uint64(p.seed), fnv64(string(pt)), hit)
			} else {
				h = mix(uint64(p.seed), fnv64(string(pt)), fnv64(key))
			}
			if float64(h>>11)/(1<<53) >= r.Rate {
				continue
			}
		}
		p.fired[pt].Add(1)
		return fire(r, pt, key)
	}
	return nil
}

// ErrInjected is the sentinel every injected error wraps; errors.Is lets
// callers and tests tell injected faults from organic failures.
var ErrInjected = errors.New("faultinject: injected fault")

// InjectedPanic is the value ModePanic panics with.
type InjectedPanic struct {
	Point Point
	Key   string
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s[%s]", p.Point, p.Key)
}

func fire(r Rule, pt Point, key string) error {
	switch r.Mode {
	case ModePanic:
		panic(&InjectedPanic{Point: pt, Key: key})
	case ModeDelay:
		ms := r.Param
		if ms <= 0 {
			ms = 10
		}
		time.Sleep(time.Duration(ms) * time.Millisecond)
		return nil
	case ModeAlloc:
		mib := r.Param
		if mib <= 0 {
			mib = 64
		}
		pressure(mib)
		return nil
	case ModeENOSPC:
		return &InjectedError{Point: pt, Key: key, Cause: syscall.ENOSPC}
	case ModeShortWrite:
		return &InjectedError{Point: pt, Key: key, Cause: io.ErrShortWrite}
	default:
		return &InjectedError{Point: pt, Key: key}
	}
}

// allocSink defeats dead-store elimination of the pressure buffer.
var allocSink byte

// pressure allocates and touches mib MiB so the heap genuinely grows for
// the duration of the call.
func pressure(mib int) {
	b := make([]byte, mib<<20)
	for i := 0; i < len(b); i += 4096 {
		b[i] = 1
	}
	allocSink = b[0]
}

// InjectedError is a fired fault's error value. It unwraps to ErrInjected
// and, when set, to the simulated cause (ENOSPC, io.ErrShortWrite).
type InjectedError struct {
	Point Point
	Key   string
	Cause error
}

// Error renders "faultinject: injected fault at point[key]: cause".
func (e *InjectedError) Error() string {
	s := fmt.Sprintf("%v at %s[%s]", ErrInjected, e.Point, e.Key)
	if e.Cause != nil {
		s += ": " + e.Cause.Error()
	}
	return s
}

// Unwrap exposes both the sentinel and the simulated cause.
func (e *InjectedError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrInjected, e.Cause}
	}
	return []error{ErrInjected}
}

// Fired returns how many faults each armed point has fired in the active
// plan; nil when no plan is armed.
func Fired() map[Point]uint64 {
	p := active.Load()
	if p == nil {
		return nil
	}
	out := make(map[Point]uint64, len(p.fired))
	for pt, c := range p.fired {
		out[pt] = c.Load()
	}
	return out
}

// WritePrometheus renders the active plan's fired counters as a Prometheus
// text-format family, for registration as an obs.Registry collector. With
// no plan armed it writes nothing.
func WritePrometheus(w io.Writer) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	pts := make([]string, 0, len(p.fired))
	for pt := range p.fired {
		pts = append(pts, string(pt))
	}
	sort.Strings(pts)
	if _, err := fmt.Fprintf(w, "# HELP sparseorder_faultinject_fired_total injected faults fired by point\n# TYPE sparseorder_faultinject_fired_total counter\n"); err != nil {
		return err
	}
	for _, pt := range pts {
		if _, err := fmt.Fprintf(w, "sparseorder_faultinject_fired_total{point=%q} %d\n",
			pt, p.fired[Point(pt)].Load()); err != nil {
			return err
		}
	}
	return nil
}

// fnv64 is FNV-1a over s.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix combines words with splitmix64 finalisation, giving a uniform 64-bit
// hash of the decision inputs.
func mix(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h ^= w
		h += 0x9e3779b97f4a7c15
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
