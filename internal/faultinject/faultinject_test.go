package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"syscall"
	"testing"
)

// arm installs a plan for the duration of the test; tests that arm the
// process-wide plan must not run in parallel.
func arm(t *testing.T, p *Plan) {
	t.Helper()
	Activate(p)
	t.Cleanup(Deactivate)
}

func TestCheckDisabledReturnsNil(t *testing.T) {
	Deactivate()
	if err := Check(JournalSync, "m1"); err != nil {
		t.Fatalf("disabled Check = %v", err)
	}
	if Enabled() {
		t.Fatal("Enabled() with no plan armed")
	}
}

// TestCheckDisabledZeroAlloc is the hot-path contract: with no plan armed
// a hook is a nil check and allocates nothing.
func TestCheckDisabledZeroAlloc(t *testing.T) {
	Deactivate()
	allocs := testing.AllocsPerRun(1000, func() {
		if Enabled() {
			t.Fatal("armed")
		}
		if err := Check(ReorderOrder, "RCM/100x100/500"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled Check allocates %v per call, want 0", allocs)
	}
}

func BenchmarkFaultDisabled(b *testing.B) {
	Deactivate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if Check(ReorderOrder, "k") != nil {
			b.Fatal("fired while disabled")
		}
	}
}

// TestKeyedDecisionDeterministic checks the resume-critical property: the
// same (seed, point, key) always decides the same way, regardless of hit
// order or plan instance.
func TestKeyedDecisionDeterministic(t *testing.T) {
	keys := []string{"RCM/10/50", "AMD/10/50", "ND/99/400", "HP/7/21", "Gray/64/128"}
	outcome := func(p *Plan) []bool {
		arm(t, p)
		var out []bool
		for _, k := range keys {
			out = append(out, Check(ReorderOrder, k) != nil)
		}
		return out
	}
	first := outcome(NewPlan(7, Rule{Point: ReorderOrder, Mode: ModeError, Rate: 0.5}))
	for run := 0; run < 3; run++ {
		// Fresh plan, reversed visiting order: decisions must not move.
		p := NewPlan(7, Rule{Point: ReorderOrder, Mode: ModeError, Rate: 0.5})
		arm(t, p)
		for i := len(keys) - 1; i >= 0; i-- {
			fired := Check(ReorderOrder, keys[i]) != nil
			if fired != first[i] {
				t.Fatalf("run %d: key %q fired=%v, first run said %v", run, keys[i], fired, first[i])
			}
		}
	}
	// A different seed must (for this key set) produce a different pattern.
	other := outcome(NewPlan(8, Rule{Point: ReorderOrder, Mode: ModeError, Rate: 0.5}))
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
		}
	}
	if same {
		t.Error("seed change did not move any decision (suspicious hash)")
	}
	// Rate 0.5 over 5 keys should neither fire always nor never.
	fired := 0
	for _, f := range first {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(first) {
		t.Errorf("rate 0.5 fired %d/%d keys", fired, len(first))
	}
}

func TestAfterSuppressesEarlyHits(t *testing.T) {
	arm(t, NewPlan(1, Rule{Point: JournalSync, Mode: ModeError, Rate: 1, After: 3}))
	for i := 0; i < 3; i++ {
		if err := Check(JournalSync, "m"); err != nil {
			t.Fatalf("hit %d fired, want suppressed by After", i)
		}
	}
	if err := Check(JournalSync, "m"); err == nil {
		t.Fatal("hit 3 did not fire")
	}
	if got := Fired()[JournalSync]; got != 1 {
		t.Fatalf("fired counter = %d, want 1", got)
	}
}

func TestModesProduceTypedErrors(t *testing.T) {
	arm(t, NewPlan(0,
		Rule{Point: FileSync, Mode: ModeENOSPC, Rate: 1},
		Rule{Point: FileWrite, Mode: ModeShortWrite, Rate: 1},
		Rule{Point: JournalAppend, Mode: ModeError, Rate: 1},
	))
	if err := Check(FileSync, "a"); !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Errorf("enospc fault = %v", err)
	}
	if err := Check(FileWrite, "a"); !errors.Is(err, io.ErrShortWrite) {
		t.Errorf("shortwrite fault = %v", err)
	}
	err := Check(JournalAppend, "a")
	if !errors.Is(err, ErrInjected) {
		t.Errorf("error fault = %v", err)
	}
	if !strings.Contains(err.Error(), "journal/append[a]") {
		t.Errorf("error text %q does not name point and key", err)
	}
}

func TestPanicMode(t *testing.T) {
	arm(t, NewPlan(0, Rule{Point: ReorderGraph, Mode: ModePanic, Rate: 1}))
	defer func() {
		r := recover()
		ip, ok := r.(*InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want *InjectedPanic", r, r)
		}
		if ip.Point != ReorderGraph || ip.Key != "k" {
			t.Errorf("panic value = %+v", ip)
		}
	}()
	Check(ReorderGraph, "k")
	t.Fatal("ModePanic did not panic")
}

func TestDelayAndAllocModesReturnNil(t *testing.T) {
	arm(t, NewPlan(0,
		Rule{Point: MatrixRead, Mode: ModeDelay, Rate: 1, Param: 1},
		Rule{Point: ReorderPermute, Mode: ModeAlloc, Rate: 1, Param: 1},
	))
	if err := Check(MatrixRead, ""); err != nil {
		t.Errorf("delay fault = %v", err)
	}
	if err := Check(ReorderPermute, "k"); err != nil {
		t.Errorf("alloc fault = %v", err)
	}
	f := Fired()
	if f[MatrixRead] != 1 || f[ReorderPermute] != 1 {
		t.Errorf("fired counters = %v", f)
	}
}

func TestKeylessHitsAreRateSampled(t *testing.T) {
	arm(t, NewPlan(3, Rule{Point: MatrixRead, Mode: ModeError, Rate: 0.5}))
	fired := 0
	for i := 0; i < 200; i++ {
		if Check(MatrixRead, "") != nil {
			fired++
		}
	}
	if fired < 50 || fired > 150 {
		t.Errorf("keyless rate 0.5 fired %d/200", fired)
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("seed=7; reorder/order=error:0.4 ;journal/sync=enospc:1:5;fsutil/write=shortwrite;matrix/read=delay:1:0:25;")
	if err != nil {
		t.Fatal(err)
	}
	if p.seed != 7 {
		t.Errorf("seed = %d", p.seed)
	}
	want := map[Point]Rule{
		ReorderOrder: {Point: ReorderOrder, Mode: ModeError, Rate: 0.4},
		JournalSync:  {Point: JournalSync, Mode: ModeENOSPC, Rate: 1, After: 5},
		FileWrite:    {Point: FileWrite, Mode: ModeShortWrite, Rate: 1},
		MatrixRead:   {Point: MatrixRead, Mode: ModeDelay, Rate: 1, Param: 25},
	}
	for pt, w := range want {
		rs := p.rules[pt]
		if len(rs) != 1 || rs[0] != w {
			t.Errorf("%s: rules = %+v, want %+v", pt, rs, w)
		}
	}
}

func TestParseSpecEmptyAndErrors(t *testing.T) {
	if p, err := ParseSpec("  "); p != nil || err != nil {
		t.Errorf("empty spec = %v, %v", p, err)
	}
	for _, bad := range []string{
		"reorder/order",             // no mode
		"reorder/order=explode",     // unknown mode
		"reorder/order=error:1.5",   // rate out of range
		"reorder/order=error:1:x",   // bad after
		"reorder/order=error:1:0:y", // bad param
		"seed=abc",                  // bad seed
		"seed=7",                    // no rules
		"a=error:1:0:5:9",           // too many fields
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	Deactivate()
	if err := WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("disabled WritePrometheus = %q, %v", buf.String(), err)
	}
	arm(t, NewPlan(0, Rule{Point: JournalSync, Mode: ModeError, Rate: 1},
		Rule{Point: FileWrite, Mode: ModeError, Rate: 0}))
	Check(JournalSync, "a")
	Check(JournalSync, "b")
	if err := WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE sparseorder_faultinject_fired_total counter",
		`sparseorder_faultinject_fired_total{point="journal/sync"} 2`,
		`sparseorder_faultinject_fired_total{point="fsutil/write"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
