package faultinject

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the compact fault-schedule syntax used by the
// SPARSEORDER_FAULTS environment variable and cmd/study's -faults flag:
//
//	seed=N;POINT=MODE[:RATE[:AFTER[:PARAM]]];...
//
// For example
//
//	seed=7;reorder/order=error:0.4;journal/sync=error:1:5
//
// arms a plan with seed 7 that fails ~40% of ordering computations
// (deterministically, by matrix/algorithm key) and fails the sixth and
// every later journal fsync. Modes: error, enospc, shortwrite, panic,
// delay (PARAM = milliseconds) and alloc (PARAM = MiB). RATE defaults to
// 1, AFTER to 0, PARAM to the mode default. Empty clauses are ignored, so
// trailing semicolons are harmless. An empty spec yields a nil plan (fault
// injection stays off).
func ParseSpec(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var seed int64
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		k, v, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: clause %q is not point=mode[:rate[:after[:param]]]", clause)
		}
		if k == "seed" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			seed = n
			continue
		}
		r := Rule{Point: Point(k), Rate: 1}
		parts := strings.Split(v, ":")
		mode, err := parseMode(parts[0])
		if err != nil {
			return nil, err
		}
		r.Mode = mode
		if len(parts) > 1 && parts[1] != "" {
			rate, err := strconv.ParseFloat(parts[1], 64)
			if err != nil || rate < 0 || rate > 1 {
				return nil, fmt.Errorf("faultinject: bad rate %q in %q (want 0..1)", parts[1], clause)
			}
			r.Rate = rate
		}
		if len(parts) > 2 && parts[2] != "" {
			after, err := strconv.ParseUint(parts[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad after %q in %q", parts[2], clause)
			}
			r.After = after
		}
		if len(parts) > 3 && parts[3] != "" {
			param, err := strconv.Atoi(parts[3])
			if err != nil || param < 0 {
				return nil, fmt.Errorf("faultinject: bad param %q in %q", parts[3], clause)
			}
			r.Param = param
		}
		if len(parts) > 4 {
			return nil, fmt.Errorf("faultinject: too many fields in %q", clause)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultinject: spec %q arms no fault points", spec)
	}
	return NewPlan(seed, rules...), nil
}

func parseMode(s string) (Mode, error) {
	switch s {
	case "error":
		return ModeError, nil
	case "enospc":
		return ModeENOSPC, nil
	case "shortwrite":
		return ModeShortWrite, nil
	case "panic":
		return ModePanic, nil
	case "delay":
		return ModeDelay, nil
	case "alloc":
		return ModeAlloc, nil
	}
	return 0, fmt.Errorf("faultinject: unknown mode %q (want error, enospc, shortwrite, panic, delay or alloc)", s)
}
