// Package fsutil provides crash-safe filesystem helpers shared by the
// study runner and the command-line tools.
package fsutil

import (
	"os"
	"path/filepath"

	"sparseorder/internal/faultinject"
)

// WriteFileAtomic writes data to path so that readers never observe a
// partial file: the bytes go to a temporary file in the same directory,
// are fsynced, and the temp file is renamed over path. After a crash the
// path holds either the previous content or the new content in full,
// never a torn mix. The containing directory is fsynced best-effort so
// the rename itself survives a crash on filesystems that require it.
//
// Three fault points cover the failure modes the atomicity contract must
// survive — fsutil/write (a short write: half the payload lands before
// the error), fsutil/sync (fsync failure) and fsutil/rename (rename
// failure). On every one of them the destination keeps its previous
// content and the temp file is removed; with no fault plan armed each
// hook is a single nil check.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			os.Remove(tmpName)
		}
	}()
	if faultinject.Enabled() {
		if ferr := faultinject.Check(faultinject.FileWrite, filepath.Base(path)); ferr != nil {
			// Leave genuinely torn debris in the temp file so the cleanup
			// path is exercised against what a real short write produces.
			tmp.Write(data[:len(data)/2])
			tmp.Close()
			return ferr
		}
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if faultinject.Enabled() {
		if ferr := faultinject.Check(faultinject.FileSync, filepath.Base(path)); ferr != nil {
			tmp.Close()
			return ferr
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if faultinject.Enabled() {
		if ferr := faultinject.Check(faultinject.FileRename, filepath.Base(path)); ferr != nil {
			return ferr
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	tmpName = "" // renamed away; nothing to clean up
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-completed rename is durable. Errors
// are ignored: some platforms and filesystems reject fsync on directories,
// and the rename is still atomic without it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
