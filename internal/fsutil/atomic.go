// Package fsutil provides crash-safe filesystem helpers shared by the
// study runner and the command-line tools.
package fsutil

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that readers never observe a
// partial file: the bytes go to a temporary file in the same directory,
// are fsynced, and the temp file is renamed over path. After a crash the
// path holds either the previous content or the new content in full,
// never a torn mix. The containing directory is fsynced best-effort so
// the rename itself survives a crash on filesystems that require it.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	tmpName = "" // renamed away; nothing to clean up
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-completed rename is durable. Errors
// are ignored: some platforms and filesystems reject fsync on directories,
// and the rename is still atomic without it.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
