// Package fsutil provides crash-safe filesystem helpers shared by the
// study runner and the command-line tools.
package fsutil

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"

	"sparseorder/internal/faultinject"
)

// WriteFileAtomic writes data to path so that readers never observe a
// partial file: the bytes go to a temporary file in the same directory,
// are fsynced, the temp file is renamed over path, and the parent
// directory is fsynced so the rename itself is durable. After a crash the
// path holds either the previous content or the new content in full,
// never a torn mix — and once WriteFileAtomic returns nil, the new
// content survives power loss (a renamed file whose directory entry was
// never flushed can silently vanish; the directory fsync closes that
// gap). Filesystems that reject fsync on directories (EINVAL/ENOTSUP)
// are tolerated: the rename is still atomic there and no stronger
// guarantee is available.
//
// Four fault points cover the failure modes the atomicity contract must
// survive — fsutil/write (a short write: half the payload lands before
// the error), fsutil/sync (temp-file fsync failure), fsutil/rename
// (rename failure) and fsutil/dirsync (parent-directory fsync failure).
// On the first three the destination keeps its previous content and the
// temp file is removed. On fsutil/dirsync the destination already holds
// the new content — the rename happened — but the error tells the caller
// the write may not be durable yet. With no fault plan armed each hook is
// a single nil check.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			os.Remove(tmpName)
		}
	}()
	if faultinject.Enabled() {
		if ferr := faultinject.Check(faultinject.FileWrite, filepath.Base(path)); ferr != nil {
			// Leave genuinely torn debris in the temp file so the cleanup
			// path is exercised against what a real short write produces.
			tmp.Write(data[:len(data)/2])
			tmp.Close()
			return ferr
		}
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if faultinject.Enabled() {
		if ferr := faultinject.Check(faultinject.FileSync, filepath.Base(path)); ferr != nil {
			tmp.Close()
			return ferr
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if faultinject.Enabled() {
		if ferr := faultinject.Check(faultinject.FileRename, filepath.Base(path)); ferr != nil {
			return ferr
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	tmpName = "" // renamed away; nothing to clean up
	if err := SyncDir(dir); err != nil {
		return fmt.Errorf("fsutil: sync dir after rename of %s: %w", filepath.Base(path), err)
	}
	return nil
}

// SyncDir fsyncs a directory so a just-completed rename (or unlink) in it
// is durable. EINVAL and ENOTSUP are swallowed — some platforms and
// filesystems reject fsync on directories, and the rename is still atomic
// without it — but every other failure is reported: a caller that just
// renamed a checkpoint into place must not claim durability when the
// directory entry may never reach the disk.
func SyncDir(dir string) error {
	if faultinject.Enabled() {
		if ferr := faultinject.Check(faultinject.FileDirSync, filepath.Base(dir)); ferr != nil {
			return ferr
		}
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		if errors.Is(serr, syscall.EINVAL) || errors.Is(serr, syscall.ENOTSUP) {
			return nil
		}
		return serr
	}
	return cerr
}
