package fsutil

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"sparseorder/internal/faultinject"
)

// checkDirClean asserts the directory holds exactly the named files — in
// particular, no leftover ".name.tmp-*" debris from a failed atomic write.
func checkDirClean(t *testing.T, dir string, want ...string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, e := range entries {
		got[e.Name()] = true
	}
	if len(got) != len(want) {
		t.Fatalf("dir holds %v, want exactly %v", keys(got), want)
	}
	for _, name := range want {
		if !got[name] {
			t.Fatalf("dir holds %v, want exactly %v", keys(got), want)
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestWriteFileAtomicFaultPaths drives every injectable failure of the
// atomic write — short write, fsync error, rename error — and asserts the
// torn-write contract each time: the destination keeps its previous
// content byte for byte and no temp file survives the failure.
func TestWriteFileAtomicFaultPaths(t *testing.T) {
	cases := []struct {
		name  string
		rule  faultinject.Rule
		cause error
	}{
		{"short write", faultinject.Rule{Point: faultinject.FileWrite, Mode: faultinject.ModeShortWrite, Rate: 1}, io.ErrShortWrite},
		{"fsync enospc", faultinject.Rule{Point: faultinject.FileSync, Mode: faultinject.ModeENOSPC, Rate: 1}, syscall.ENOSPC},
		{"rename error", faultinject.Rule{Point: faultinject.FileRename, Mode: faultinject.ModeError, Rate: 1}, faultinject.ErrInjected},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "artifact.txt")
			prev := []byte("previous complete content\n")
			if err := WriteFileAtomic(path, prev, 0o644); err != nil {
				t.Fatal(err)
			}

			faultinject.Activate(faultinject.NewPlan(1, tc.rule))
			t.Cleanup(faultinject.Deactivate)
			err := WriteFileAtomic(path, []byte("new content that must never land partially\n"), 0o644)
			if !errors.Is(err, tc.cause) {
				t.Fatalf("err = %v, want wrapping %v", err, tc.cause)
			}

			// Destination untouched, no temp debris.
			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if string(got) != string(prev) {
				t.Errorf("destination changed after failed write: %q", got)
			}
			checkDirClean(t, dir, "artifact.txt")

			// The same write succeeds once the fault plan is disarmed.
			faultinject.Deactivate()
			next := []byte("new content that must never land partially\n")
			if err := WriteFileAtomic(path, next, 0o644); err != nil {
				t.Fatal(err)
			}
			got, rerr = os.ReadFile(path)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if string(got) != string(next) {
				t.Errorf("post-fault write landed %q", got)
			}
			checkDirClean(t, dir, "artifact.txt")
		})
	}
}

// TestWriteFileAtomicDirSyncFault covers the durability gap the parent
// directory fsync closes: when fsutil/dirsync fires, the rename has
// already happened — the destination holds the NEW content and no temp
// debris remains — but WriteFileAtomic must report the error, because a
// rename whose directory entry was never flushed can vanish on power
// loss and the caller must not record the write as durable.
func TestWriteFileAtomicDirSyncFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.txt")
	if err := WriteFileAtomic(path, []byte("previous\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	faultinject.Activate(faultinject.NewPlan(1,
		faultinject.Rule{Point: faultinject.FileDirSync, Mode: faultinject.ModeENOSPC, Rate: 1}))
	t.Cleanup(faultinject.Deactivate)
	next := []byte("renamed but possibly not durable\n")
	err := WriteFileAtomic(path, next, 0o644)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want wrapping ENOSPC", err)
	}

	// Unlike the pre-rename faults, the new content IS in place (the
	// rename completed); only its durability is in doubt.
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != string(next) {
		t.Errorf("destination = %q after dirsync fault, want the renamed content", got)
	}
	checkDirClean(t, dir, "artifact.txt")

	// Disarmed, the same write succeeds and reports durable.
	faultinject.Deactivate()
	if err := WriteFileAtomic(path, next, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSyncDirMissing pins the error path: syncing a directory that does
// not exist reports the open failure instead of swallowing it.
func TestSyncDirMissing(t *testing.T) {
	if err := SyncDir(filepath.Join(t.TempDir(), "absent")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

// TestWriteFileAtomicFreshFileFault checks the failure contract when no
// previous file exists: a failed atomic write must leave the directory
// empty, not a half-written destination.
func TestWriteFileAtomicFreshFileFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.txt")
	faultinject.Activate(faultinject.NewPlan(1,
		faultinject.Rule{Point: faultinject.FileWrite, Mode: faultinject.ModeShortWrite, Rate: 1}))
	t.Cleanup(faultinject.Deactivate)
	if err := WriteFileAtomic(path, []byte("payload"), 0o644); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("destination exists after failed first write: %v", err)
	}
	checkDirClean(t, dir)
}

// TestWriteFileAtomicDisabledZeroAlloc pins the hot-path cost of the fault
// hooks themselves: with no plan armed, Enabled() short-circuits before
// any key is built.
func TestWriteFileAtomicDisabledZeroAlloc(t *testing.T) {
	faultinject.Deactivate()
	allocs := testing.AllocsPerRun(1000, func() {
		if faultinject.Enabled() {
			t.Fatal("armed")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled guard allocates %v per call", allocs)
	}
}
