package fsutil

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteFileAtomic covers the helper's contract: content and mode land
// on disk, an existing file is replaced in full, and no temp files are
// left behind.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")

	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("first")) {
		t.Errorf("content = %q", got)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("mode = %v, want 0644", fi.Mode().Perm())
	}

	// Overwrite: readers must see either the old or the new content; after
	// the call returns it is the new one, regardless of relative sizes.
	if err := WriteFileAtomic(path, []byte("second, longer content"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("second, longer content")) {
		t.Errorf("content after overwrite = %q", got)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "out.txt" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory holds %v, want only out.txt (no temp litter)", names)
	}
}

// TestWriteFileAtomicMissingDir checks the error path cleans up after
// itself instead of panicking or leaving temp files.
func TestWriteFileAtomicMissingDir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no-such-dir", "out.txt")
	if err := WriteFileAtomic(path, []byte("x"), 0o644); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}
