package gen

import (
	"fmt"

	"sparseorder/internal/sparse"
)

// Matrix is one named member of the synthetic collection, carrying the
// metadata the study records for SuiteSparse matrices.
type Matrix struct {
	Name  string
	Group string // application-domain analogue
	Kind  string // structural class
	SPD   bool   // symmetric positive definite (eligible for Figure 6)
	A     *sparse.CSR
}

// Scale selects the size of the generated collection.
type Scale int

// Collection scales: Test keeps everything tiny for unit tests, Study is
// the default size for regenerating the paper's aggregate experiments on a
// single machine, Large is used for the reordering-overhead table.
const (
	ScaleTest Scale = iota
	ScaleStudy
	ScaleLarge
)

// String names the scale with the vocabulary of cmd/study's -scale flag.
func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleStudy:
		return "study"
	case ScaleLarge:
		return "large"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// Factor returns the linear size multiplier of the scale; generators scale
// their dimensions by it.
func (s Scale) Factor() int { return s.factor() }

func (s Scale) factor() int {
	switch s {
	case ScaleTest:
		return 1
	case ScaleStudy:
		return 4
	default:
		return 10
	}
}

// Collection generates the deterministic synthetic matrix collection that
// stands in for the study's 490 SuiteSparse matrices. Every structural
// class of the study is represented, in both naturally ordered and
// scrambled form where that distinction matters (scrambling emulates
// matrices that arrive without a useful ordering).
func Collection(scale Scale, seed int64) []Matrix {
	f := scale.factor()
	n2 := 40 * f // 2D grid side
	n3 := 12 * f // 3D grid side
	var ms []Matrix
	add := func(name, group, kind string, spd bool, a *sparse.CSR) {
		ms = append(ms, Matrix{Name: name, Group: group, Kind: kind, SPD: spd, A: a})
	}

	// Naturally well-ordered matrices: the majority of real collections
	// arrive this way, so reordering is roughly neutral for them.
	g2 := Grid2D(n2, n2)
	add("grid2d", "2D/3D mesh", "fem-2d", true, g2)
	g3 := Grid3D(n3, n3, n3)
	add("grid3d", "structural", "fem-3d", true, g3)
	b := Banded(1600*f, 8+2*f, 0.6, seed+3)
	add("band", "1D PDE", "banded", true, b)
	bc := BlockCoupled(20*f, 100, 30, seed+9)
	add("blockfem", "structural", "block-coupled", true, bc)
	geo := RandomGeometric(2500*f, radiusFor(2500*f, 6), seed+6)
	add("road", "road network", "geometric", true, geo)
	add("mixed3d_a", "higher-order FEM", "mixed-stencil", true, MixedStencil3D(n3, n3, n3, 0.3, seed+16))
	add("mixed3d_b", "higher-order FEM", "mixed-stencil", true, MixedStencil3D(n3+2, n3, n3-2, 0.5, seed+17))
	hv := WithDenseRows(Grid2D(n2/2, n2/2), 4+f, 0.15, seed+11)
	add("cfd_dense", "CFD", "dense-rows", false, hv)
	add("band_wide", "1D PDE", "banded", true, Banded(1200*f, 20+4*f, 0.4, seed+26))
	add("road_b", "triangulation", "geometric", true, RandomGeometric(2000*f, radiusFor(2000*f, 9), seed+27))
	add("blockfem_b", "structural", "block-coupled", true, BlockCoupled(30*f, 70, 20, seed+28))
	add("smallworld2d", "constrained mesh", "small-world-mesh", false, WithShortcuts(g2, 300*f*f, seed+29))
	add("smallworld3d", "constrained mesh", "small-world-mesh", false, WithShortcuts(g3, 250*f*f, seed+30))

	// Scrambled variants: matrices whose natural ordering was lost — the
	// case where locality-restoring reorderings have the most to gain.
	add("grid2d_perm", "2D/3D mesh", "fem-2d-scrambled", true, Scramble(g2, seed+1))
	add("grid3d_perm", "structural", "fem-3d-scrambled", true, Scramble(g3, seed+2))
	add("band_perm", "1D PDE", "banded-scrambled", true, Scramble(b, seed+4))
	add("road_perm", "road network", "geometric-scrambled", true, Scramble(geo, seed+7))

	// Irregular matrices: power-law, community and random structure, where
	// bandwidth reduction finds no band but partitioning still finds
	// communities to isolate.
	add("kron", "graph", "power-law", false, RMAT(9+logish(f), 8, seed+5))
	add("kron_b", "graph", "power-law", false, RMAT(8+logish(f), 16, seed+20))
	add("clustered_a", "social network", "clustered", true, Clustered(24, 100*f, 6, 3500*f, seed+18))
	add("clustered_b", "web graph", "clustered", true, Clustered(60, 40*f, 8, 3000*f, seed+19))
	add("clustered_c", "optimization", "clustered", true, Clustered(128, 20*f, 7, 2500*f, seed+25))
	add("smallworld2d_perm", "constrained mesh", "small-world-scrambled", false,
		Scramble(WithShortcuts(g2, 300*f*f, seed+29), seed+33))
	add("smallworld3d_perm", "constrained mesh", "small-world-scrambled", false,
		Scramble(WithShortcuts(g3, 250*f*f, seed+30), seed+34))
	add("kmer", "genome", "random-sparse", true, ErdosRenyi(3000*f, 4, seed+8))
	circ := WithDenseRows(ErdosRenyi(2000*f, 6, seed+12), 2+f/2, 0.08, seed+13)
	add("circuit", "circuit", "irregular-dense-rows", false, circ)
	add("kron_c", "graph", "power-law", false, RMAT(10+logish(f), 5, seed+35))
	powernet := WithDenseRows(Scramble(RandomGeometric(1800*f, radiusFor(1800*f, 10), seed+14), seed+15),
		20*f, 0.08, seed+36)
	add("powernet_perm", "power network", "geometric-scrambled-dense-rows", false, powernet)

	return ms
}

// radiusFor picks the geometric-graph radius yielding the requested
// average degree: deg ≈ πr²n.
func radiusFor(n int, avgDeg float64) float64 {
	return sqrt(avgDeg / (3.14159265 * float64(n)))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func logish(f int) int {
	s := 0
	for f > 1 {
		f /= 2
		s++
	}
	return s
}

// Fig1Set returns analogues of the three matrices of the paper's Figure 1:
// Freescale/Freescale2 (circuit simulation), SNAP/com-Amazon (social
// network) and GenBank/kmer_V1r (genome assembly).
func Fig1Set(scale Scale, seed int64) []Matrix {
	f := scale.factor()
	return []Matrix{
		{Name: "freescale2_like", Group: "circuit", Kind: "irregular-dense-rows",
			A: WithDenseRows(ErdosRenyi(2500*f, 5, seed+21), 3, 0.05, seed+22)},
		{Name: "com-amazon_like", Group: "social network", Kind: "geometric-scrambled",
			A: Scramble(RandomGeometric(2500*f, radiusFor(2500*f, 8), seed+23), seed+24)},
		{Name: "kmer_V1r_like", Group: "genome", Kind: "random-sparse",
			A: ErdosRenyi(4000*f, 3, seed+25)},
	}
}

// Fig4Set returns analogues of the six class-representative matrices of
// the paper's Figure 4, in class order.
func Fig4Set(scale Scale, seed int64) []Matrix {
	f := scale.factor()
	n2 := 40 * f
	return []Matrix{
		// Class 1 (333SP): balanced before and after; locality wins.
		{Name: "333SP_like", Group: "2D/3D mesh", Kind: "fem-2d-scrambled", SPD: true,
			A: Scramble(Grid2D(n2, n2), seed+31)},
		// Class 2 (nv2): reordering also improves balance.
		{Name: "nv2_like", Group: "semiconductor", Kind: "fem-3d-scrambled", SPD: true,
			A: Scramble(Grid3D(12*f, 12*f, 12*f), seed+32)},
		// Class 3 (audikw_1): mainly a balance improvement.
		{Name: "audikw_1_like", Group: "structural", Kind: "block-coupled-skewed",
			A: skewedBlockFEM(20*f, 100, seed+33)},
		// Class 4 (HV15R): performance unchanged either way.
		{Name: "HV15R_like", Group: "CFD", Kind: "fem-2d", SPD: true,
			A: Grid2D(n2, n2)},
		// Class 5: reordering provokes 1D imbalance.
		{Name: "class5_like", Group: "graph", Kind: "power-law",
			A: RMAT(9+logish(f), 8, seed+34)},
		// Class 6: reordering schemes diverge.
		{Name: "class6_like", Group: "mixed", Kind: "dense-rows",
			A: WithDenseRows(Scramble(Grid2D(n2/2, n2/2), seed+35), 6, 0.2, seed+36)},
	}
}

// skewedBlockFEM builds a block-coupled matrix whose blocks have strongly
// varying density, so the natural order is row-balanced but nonzero-
// imbalanced, the class-3 situation.
func skewedBlockFEM(blocks, blockSize int, seed int64) *sparse.CSR {
	a := BlockCoupled(blocks, blockSize, 20, seed)
	dense := WithDenseRows(a, blocks, 0.05, seed+1)
	return dense
}

// LargeSet returns the ten-matrix set of the reordering-overhead
// experiment (paper Table 5), named after its application domains.
func LargeSet(scale Scale, seed int64) []Matrix {
	f := scale.factor()
	return []Matrix{
		{Name: "delaunay_like", Group: "triangulation", Kind: "geometric",
			A: RandomGeometric(4000*f, radiusFor(4000*f, 6), seed+41)},
		{Name: "europe_osm_like", Group: "road network", Kind: "geometric",
			A: RandomGeometric(6000*f, radiusFor(6000*f, 3), seed+42)},
		{Name: "Flan_like", Group: "structural", Kind: "fem-3d",
			A: Grid3D(14*f, 14*f, 14), SPD: true},
		{Name: "HV15R_like", Group: "CFD", Kind: "dense-rows",
			A: WithDenseRows(Grid2D(50*f, 50*f), 8, 0.1, seed+43)},
		{Name: "indochina_like", Group: "web graph", Kind: "power-law",
			A: RMAT(10+logish(f), 10, seed+44)},
		{Name: "kmer_like", Group: "genome", Kind: "random-sparse",
			A: ErdosRenyi(8000*f, 3, seed+45)},
		{Name: "kron_like", Group: "graph", Kind: "power-law",
			A: RMAT(10+logish(f), 16, seed+46)},
		{Name: "mycielskian_like", Group: "combinatorial", Kind: "dense",
			A: ErdosRenyi(1200*f, 60, seed+47)},
		{Name: "nlpkkt_like", Group: "optimization", Kind: "fem-3d-scrambled",
			A: Scramble(Grid3D(14*f, 14*f, 14), seed+48), SPD: true},
		{Name: "vas_stokes_like", Group: "semiconductor", Kind: "block-coupled",
			A: BlockCoupled(24*f, 120, 40, seed+49)},
	}
}

// Describe returns a one-line summary of a collection member.
func (m Matrix) Describe() string {
	return fmt.Sprintf("%-16s %-16s %8d rows %10d nnz", m.Name, m.Group, m.A.Rows, m.A.NNZ())
}
