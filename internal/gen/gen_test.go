package gen

import (
	"testing"

	"sparseorder/internal/sparse"
)

func TestGrid2DStructure(t *testing.T) {
	a := Grid2D(4, 3)
	if a.Rows != 12 || a.Cols != 12 {
		t.Fatalf("dims %dx%d", a.Rows, a.Cols)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsStructurallySymmetric() {
		t.Error("grid not symmetric")
	}
	// Interior vertex (1,1) has 5 entries: diagonal + 4 neighbours.
	if a.RowNNZ(1*4+1) != 5 {
		t.Errorf("interior row nnz = %d, want 5", a.RowNNZ(5))
	}
	// Corner has 3.
	if a.RowNNZ(0) != 3 {
		t.Errorf("corner row nnz = %d, want 3", a.RowNNZ(0))
	}
}

func TestGrid3DStructure(t *testing.T) {
	a := Grid3D(3, 3, 3)
	if a.Rows != 27 {
		t.Fatalf("rows = %d", a.Rows)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Center vertex has 7 entries.
	if a.RowNNZ(13) != 7 {
		t.Errorf("center row nnz = %d, want 7", a.RowNNZ(13))
	}
	if !a.IsStructurallySymmetric() {
		t.Error("grid3d not symmetric")
	}
}

func checkSPD(t *testing.T, a *sparse.CSR, name string) {
	t.Helper()
	if err := a.Validate(); err != nil {
		t.Fatalf("%s invalid: %v", name, err)
	}
	if !a.IsStructurallySymmetric() {
		t.Fatalf("%s not structurally symmetric", name)
	}
	// Weak diagonal dominance everywhere with strict dominance somewhere
	// (irreducible diagonal dominance) implies positive definiteness for the
	// connected symmetric patterns our generators emit; grid Laplacians are
	// only weakly dominant at interior vertices.
	strict := false
	for i := 0; i < a.Rows; i++ {
		var diag, off float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if int(a.ColIdx[k]) == i {
				diag = a.Val[k]
			} else {
				v := a.Val[k]
				if v < 0 {
					v = -v
				}
				off += v
			}
		}
		if diag < off {
			t.Fatalf("%s: row %d not diagonally dominant (%v < %v)", name, i, diag, off)
		}
		if diag > off {
			strict = true
		}
	}
	if !strict {
		t.Fatalf("%s: no strictly dominant row", name)
	}
}

func TestBandedSPD(t *testing.T) {
	a := Banded(200, 5, 0.5, 1)
	checkSPD(t, a, "banded")
	// Bandwidth respected.
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d := i - int(a.ColIdx[k])
			if d < -5 || d > 5 {
				t.Fatalf("entry outside band: (%d,%d)", i, a.ColIdx[k])
			}
		}
	}
}

func TestRandomGeometricSPD(t *testing.T) {
	a := RandomGeometric(400, 0.08, 2)
	checkSPD(t, a, "geometric")
	if a.NNZ() < 400 {
		t.Error("geometric graph suspiciously empty")
	}
}

func TestErdosRenyiSPD(t *testing.T) {
	checkSPD(t, ErdosRenyi(300, 4, 3), "erdos")
}

func TestBlockCoupledSPD(t *testing.T) {
	checkSPD(t, BlockCoupled(5, 40, 10, 4), "blockcoupled")
}

func TestRMATSkewedDegrees(t *testing.T) {
	a := RMAT(9, 8, 5)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsStructurallySymmetric() {
		t.Error("rmat not symmetric")
	}
	minR, maxR := a.RowNNZ(0), a.RowNNZ(0)
	for i := 0; i < a.Rows; i++ {
		n := a.RowNNZ(i)
		if n < minR {
			minR = n
		}
		if n > maxR {
			maxR = n
		}
	}
	if maxR < 10*(minR+1) {
		t.Errorf("R-MAT degrees not skewed: min %d max %d", minR, maxR)
	}
}

func TestWithDenseRows(t *testing.T) {
	base := Grid2D(10, 10)
	a := WithDenseRows(base, 2, 0.5, 6)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	dense := 0
	for i := 0; i < a.Rows; i++ {
		if a.RowNNZ(i) > 20 {
			dense++
		}
	}
	if dense == 0 {
		t.Error("no dense rows injected")
	}
}

func TestScramblePreservesContent(t *testing.T) {
	a := Grid2D(8, 8)
	b := Scramble(a, 7)
	if b.NNZ() != a.NNZ() || b.Rows != a.Rows {
		t.Fatal("scramble changed size")
	}
	if b.Equal(a) {
		t.Error("scramble did nothing")
	}
	if !b.IsStructurallySymmetric() {
		t.Error("symmetric scramble broke symmetry")
	}
	// Values multiset preserved: compare sums.
	sum := func(m *sparse.CSR) float64 {
		s := 0.0
		for _, v := range m.Val {
			s += v
		}
		return s
	}
	if sum(a) != sum(b) {
		t.Error("scramble changed values")
	}
}

func TestScrambleRows(t *testing.T) {
	a := Grid2D(6, 6)
	b := ScrambleRows(a, 8)
	if b.NNZ() != a.NNZ() {
		t.Fatal("row scramble changed nnz")
	}
	if b.Equal(a) {
		t.Error("row scramble did nothing")
	}
}

func TestTallSkinnyDense(t *testing.T) {
	a := TallSkinnyDense(96, 40, 9)
	if a.Rows != 96 || a.Cols != 40 || a.NNZ() != 96*40 {
		t.Fatalf("dims %dx%d nnz %d", a.Rows, a.Cols, a.NNZ())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectionDeterministic(t *testing.T) {
	c1 := Collection(ScaleTest, 42)
	c2 := Collection(ScaleTest, 42)
	if len(c1) != len(c2) {
		t.Fatal("nondeterministic collection size")
	}
	for i := range c1 {
		if c1[i].Name != c2[i].Name || !c1[i].A.Equal(c2[i].A) {
			t.Fatalf("matrix %s differs between runs", c1[i].Name)
		}
	}
}

func TestCollectionCoversClasses(t *testing.T) {
	c := Collection(ScaleTest, 1)
	if len(c) < 12 {
		t.Fatalf("collection has only %d matrices", len(c))
	}
	kinds := map[string]bool{}
	for _, m := range c {
		kinds[m.Kind] = true
		if m.A.Rows != m.A.Cols {
			t.Errorf("%s not square", m.Name)
		}
		if err := m.A.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name, err)
		}
		if m.SPD {
			checkSPD(t, m.A, m.Name)
		}
	}
	for _, want := range []string{"fem-2d", "fem-3d", "power-law", "geometric", "random-sparse", "dense-rows"} {
		found := false
		for k := range kinds {
			if k == want || k == want+"-scrambled" {
				found = true
			}
		}
		if !found {
			t.Errorf("collection missing class %s (have %v)", want, kinds)
		}
	}
}

func TestCollectionScaleGrows(t *testing.T) {
	small := Collection(ScaleTest, 1)
	big := Collection(ScaleStudy, 1)
	var smallNNZ, bigNNZ int
	for _, m := range small {
		smallNNZ += m.A.NNZ()
	}
	for _, m := range big {
		bigNNZ += m.A.NNZ()
	}
	if bigNNZ < 4*smallNNZ {
		t.Errorf("study scale (%d nnz) not much larger than test scale (%d)", bigNNZ, smallNNZ)
	}
}

func TestNamedSets(t *testing.T) {
	if len(Fig1Set(ScaleTest, 1)) != 3 {
		t.Error("Fig1Set must have 3 matrices")
	}
	if len(Fig4Set(ScaleTest, 1)) != 6 {
		t.Error("Fig4Set must have 6 matrices")
	}
	ls := LargeSet(ScaleTest, 1)
	if len(ls) != 10 {
		t.Error("LargeSet must have 10 matrices")
	}
	for _, m := range append(append(Fig1Set(ScaleTest, 1), Fig4Set(ScaleTest, 1)...), ls...) {
		if err := m.A.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name, err)
		}
		if m.A.Rows != m.A.Cols {
			t.Errorf("%s not square", m.Name)
		}
	}
}

func TestDescribe(t *testing.T) {
	m := Matrix{Name: "x", Group: "g", A: Grid2D(2, 2)}
	if s := m.Describe(); len(s) == 0 {
		t.Error("empty description")
	}
}

func TestMixedStencil3D(t *testing.T) {
	a := MixedStencil3D(8, 8, 8, 0.4, 3)
	checkSPD(t, a, "mixed3d")
	// Row densities must vary strongly: some rows near 7-point, others
	// near 27-point connectivity.
	minR, maxR := a.RowNNZ(0), a.RowNNZ(0)
	for i := 0; i < a.Rows; i++ {
		n := a.RowNNZ(i)
		if n < minR {
			minR = n
		}
		if n > maxR {
			maxR = n
		}
	}
	if maxR < minR+12 {
		t.Errorf("stencil mix not diverse: rows span [%d, %d]", minR, maxR)
	}
	// Zero fraction degenerates to the plain 7-point stencil widths.
	b := MixedStencil3D(6, 6, 6, 0, 4)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Rows; i++ {
		if b.RowNNZ(i) > 7 {
			t.Fatalf("fracWide=0 produced a wide row (%d nnz)", b.RowNNZ(i))
		}
	}
}

func TestClustered(t *testing.T) {
	a := Clustered(8, 50, 5, 200, 7)
	checkSPD(t, a, "clustered")
	if a.Rows != 400 {
		t.Fatalf("rows = %d", a.Rows)
	}
	// Member interleaving: vertices of one community are spread round-robin,
	// so consecutive rows belong to different communities and the natural
	// off-diagonal count is high.
	// Grouping rows by community (a k=8 partition by v%8) must leave only
	// the shortcuts as off-diagonal entries.
	n := a.Rows
	intra, inter := 0, 0
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := int(a.ColIdx[k])
			if i == j {
				continue
			}
			if i%8 == j%8 {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra < 3*inter {
		t.Errorf("community structure weak: %d intra vs %d inter entries", intra, inter)
	}
	if inter == 0 {
		t.Error("no shortcuts present")
	}
}

func TestWithShortcuts(t *testing.T) {
	base := Grid2D(20, 20)
	a := WithShortcuts(base, 150, 9)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsStructurallySymmetric() {
		t.Error("shortcuts broke symmetry")
	}
	if a.NNZ() <= base.NNZ() {
		t.Error("no shortcuts added")
	}
	// Bandwidth must blow up: shortcuts reach across the matrix.
	if bwBase, bw := maxBand(base), maxBand(a); bw < 4*bwBase {
		t.Errorf("shortcut bandwidth %d not far above grid bandwidth %d", bw, bwBase)
	}
}

func maxBand(a *sparse.CSR) int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d := i - int(a.ColIdx[k])
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

func TestRandomGeometricMortonLocality(t *testing.T) {
	// Morton numbering must give the natural ordering strong locality.
	// The max bandwidth is a poor measure for a Z-curve (quadrant seams
	// create individual long edges), so compare the mean |i-j| over all
	// entries instead: scrambling should inflate it several-fold.
	a := RandomGeometric(2000, radiusFor(2000, 6), 11)
	s := Scramble(a, 12)
	meanDist := func(m *sparse.CSR) float64 {
		var sum float64
		for i := 0; i < m.Rows; i++ {
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				d := i - int(m.ColIdx[k])
				if d < 0 {
					d = -d
				}
				sum += float64(d)
			}
		}
		return sum / float64(m.NNZ())
	}
	if da, ds := meanDist(a), meanDist(s); 4*da > ds {
		t.Errorf("Morton mean distance %.0f not well below scrambled %.0f", da, ds)
	}
}
