// Package gen generates the synthetic sparse-matrix collection that stands
// in for the SuiteSparse Matrix Collection (see DESIGN.md, substitution 1).
// Each generator reproduces a structural class present in the study's 490
// matrices: regular FEM meshes, scrambled meshes, power-law graphs,
// road-network-like geometric graphs, block-coupled FEM systems, matrices
// with dense rows, and banded systems.
package gen

import (
	"math"
	"math/rand"
	"sort"

	"sparseorder/internal/sparse"
)

// Grid2D returns the 5-point Laplacian stencil matrix of an nx×ny grid:
// symmetric positive definite, naturally banded — the structure of 2D FEM
// problems such as 333SP.
func Grid2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	coo := sparse.NewCOO(n, n, 5*n)
	idx := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := idx(x, y)
			coo.Append(i, i, 4)
			if x > 0 {
				coo.Append(i, idx(x-1, y), -1)
			}
			if x < nx-1 {
				coo.Append(i, idx(x+1, y), -1)
			}
			if y > 0 {
				coo.Append(i, idx(x, y-1), -1)
			}
			if y < ny-1 {
				coo.Append(i, idx(x, y+1), -1)
			}
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		panic("gen: Grid2D: " + err.Error())
	}
	return a
}

// Grid3D returns the 7-point Laplacian of an nx×ny×nz grid — the structure
// of 3D solid-mechanics problems.
func Grid3D(nx, ny, nz int) *sparse.CSR {
	n := nx * ny * nz
	coo := sparse.NewCOO(n, n, 7*n)
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := idx(x, y, z)
				coo.Append(i, i, 6)
				if x > 0 {
					coo.Append(i, idx(x-1, y, z), -1)
				}
				if x < nx-1 {
					coo.Append(i, idx(x+1, y, z), -1)
				}
				if y > 0 {
					coo.Append(i, idx(x, y-1, z), -1)
				}
				if y < ny-1 {
					coo.Append(i, idx(x, y+1, z), -1)
				}
				if z > 0 {
					coo.Append(i, idx(x, y, z-1), -1)
				}
				if z < nz-1 {
					coo.Append(i, idx(x, y, z+1), -1)
				}
			}
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		panic("gen: Grid3D: " + err.Error())
	}
	return a
}

// Banded returns an n×n symmetric banded matrix where each sub-diagonal
// within the half bandwidth is kept with the given density. Diagonal
// entries make it diagonally dominant (SPD).
func Banded(n, halfBandwidth int, density float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.NewCOO(n, n, n*(1+int(2*density*float64(halfBandwidth))))
	for i := 0; i < n; i++ {
		for d := 1; d <= halfBandwidth; d++ {
			j := i + d
			if j >= n {
				break
			}
			if rng.Float64() < density {
				v := -rng.Float64()
				coo.Append(i, j, v)
				coo.Append(j, i, v)
			}
		}
	}
	return spdFinish(coo, n)
}

// RMAT returns the symmetrized adjacency matrix of an R-MAT (Kronecker)
// power-law graph with 2^scale vertices and edgeFactor·2^scale directed
// edge samples — the structure of kron_g500 and social-network matrices,
// with highly skewed row lengths.
func RMAT(scale, edgeFactor int, seed int64) *sparse.CSR {
	const pa, pb, pc = 0.57, 0.19, 0.19
	rng := rand.New(rand.NewSource(seed))
	n := 1 << uint(scale)
	m := edgeFactor * n
	coo := sparse.NewCOO(n, n, 2*m+n)
	for e := 0; e < m; e++ {
		i, j := 0, 0
		for level := 0; level < scale; level++ {
			r := rng.Float64()
			switch {
			case r < pa:
			case r < pa+pb:
				j |= 1 << uint(level)
			case r < pa+pb+pc:
				i |= 1 << uint(level)
			default:
				i |= 1 << uint(level)
				j |= 1 << uint(level)
			}
		}
		if i == j {
			continue
		}
		v := rng.Float64()
		coo.Append(i, j, v)
		coo.Append(j, i, v)
	}
	for i := 0; i < n; i++ {
		coo.Append(i, i, 1)
	}
	a, err := coo.ToCSR()
	if err != nil {
		panic("gen: RMAT: " + err.Error())
	}
	return a
}

// RandomGeometric returns the symmetric adjacency matrix of a random
// geometric graph: n points in the unit square connected when within the
// given radius — low, near-uniform degree and strong community structure,
// the shape of road networks like europe_osm. Vertices are numbered in
// Morton (Z-curve) order of their coordinates, mirroring the spatial
// locality real road-network matrices arrive with; use Scramble to destroy
// it.
func RandomGeometric(n int, radius float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return morton(xs[order[a]], ys[order[a]]) < morton(xs[order[b]], ys[order[b]])
	})
	nxs := make([]float64, n)
	nys := make([]float64, n)
	for newID, oldID := range order {
		nxs[newID] = xs[oldID]
		nys[newID] = ys[oldID]
	}
	xs, ys = nxs, nys
	// Bin points into a grid of radius-sized cells; only neighbouring cells
	// can contain connectable points.
	cells := int(1/radius) + 1
	bins := make(map[[2]int][]int32)
	for i := 0; i < n; i++ {
		c := [2]int{int(xs[i] * float64(cells)), int(ys[i] * float64(cells))}
		bins[c] = append(bins[c], int32(i))
	}
	coo := sparse.NewCOO(n, n, 8*n)
	r2 := radius * radius
	// Iterate cells in deterministic order (map iteration order is not).
	keys := make([][2]int, 0, len(bins))
	for c := range bins {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, c := range keys {
		pts := bins[c]
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				other := bins[[2]int{c[0] + dx, c[1] + dy}]
				for _, i := range pts {
					for _, j := range other {
						if j <= i {
							continue
						}
						ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
						if ddx*ddx+ddy*ddy <= r2 {
							v := -rng.Float64()
							coo.Append(int(i), int(j), v)
							coo.Append(int(j), int(i), v)
						}
					}
				}
			}
		}
	}
	return spdFinish(coo, n)
}

// morton interleaves the high 16 bits of the quantized coordinates into a
// Z-curve key.
func morton(x, y float64) uint64 {
	return spread(uint32(x*65535)) | spread(uint32(y*65535))<<1
}

func spread(v uint32) uint64 {
	x := uint64(v) & 0xffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// MixedStencil3D returns a 3D grid matrix where a fraction fracWide of the
// vertices couple to their full 3x3x3 neighbourhood (26 neighbours) and the
// rest to the 7-point stencil — the row-density diversity of higher-order
// or mixed-element FEM discretisations. The matrix arrives well ordered
// (grid order); grouping its rows by density, as the Gray ordering does,
// scatters spatially distant rows together.
func MixedStencil3D(nx, ny, nz int, fracWide float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny * nz
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	coo := sparse.NewCOO(n, n, 9*n)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				i := idx(x, y, z)
				wide := rng.Float64() < fracWide
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							manhattan := abs(dx) + abs(dy) + abs(dz)
							if manhattan == 0 {
								continue
							}
							if !wide && manhattan > 1 {
								continue
							}
							xx, yy, zz := x+dx, y+dy, z+dz
							if xx < 0 || xx >= nx || yy < 0 || yy >= ny || zz < 0 || zz >= nz {
								continue
							}
							// Insert both directions so the pattern stays
							// symmetric even when the neighbour is narrow.
							j := idx(xx, yy, zz)
							v := -1 / float64(manhattan)
							coo.Append(i, j, v)
							coo.Append(j, i, v)
						}
					}
				}
			}
		}
	}
	return spdFinish(coo, n)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Clustered returns a graph of nc communities of the given size with dense
// random intra-community coupling plus a sprinkle of global shortcut edges,
// with community members interleaved in the vertex numbering (round-robin),
// so the matrix arrives badly ordered. Partitioning-based orderings recover
// the communities; bandwidth reduction cannot, because the shortcuts force
// any BFS band to span the whole matrix — the regime where the study finds
// GP and HP ahead of RCM.
func Clustered(nc, size, intraDeg, shortcuts int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := nc * size
	// Vertex v belongs to community v % nc (interleaved numbering).
	member := func(c, k int) int { return k*nc + c }
	coo := sparse.NewCOO(n, n, n*(intraDeg+1))
	for c := 0; c < nc; c++ {
		for k := 0; k < size; k++ {
			i := member(c, k)
			for t := 0; t < intraDeg; t++ {
				j := member(c, rng.Intn(size))
				if i == j {
					continue
				}
				v := -rng.Float64()
				coo.Append(i, j, v)
				coo.Append(j, i, v)
			}
		}
	}
	for s := 0; s < shortcuts; s++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := -rng.Float64()
		coo.Append(i, j, v)
		coo.Append(j, i, v)
	}
	return spdFinish(coo, n)
}

// WithShortcuts adds count random symmetric long-range entries to a copy
// of the square matrix a — the structure of meshes with constraint or
// multiple-point coupling rows. The natural (e.g. grid) ordering remains
// good for SpMV, but breadth-first bandwidth reduction collapses: every
// BFS level reaches across the shortcuts, so RCM scatters what was a tight
// band, while partitioning-based orderings simply pay for the cut
// shortcuts and keep the patches intact.
func WithShortcuts(a *sparse.CSR, count int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.FromCSR(a)
	for t := 0; t < count; t++ {
		i, j := rng.Intn(a.Rows), rng.Intn(a.Cols)
		if i == j {
			continue
		}
		v := -rng.Float64()
		coo.Append(i, j, v)
		coo.Append(j, i, v)
	}
	out, err := coo.ToCSR()
	if err != nil {
		panic("gen: WithShortcuts: " + err.Error())
	}
	return out
}

// ErdosRenyi returns a symmetric sparse random graph matrix with expected
// average degree avgDeg — fully unstructured, the shape of kmer genome
// assembly graphs when the degree is small.
func ErdosRenyi(n int, avgDeg float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	m := int(avgDeg * float64(n) / 2)
	coo := sparse.NewCOO(n, n, 2*m+n)
	for e := 0; e < m; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		v := -rng.Float64()
		coo.Append(i, j, v)
		coo.Append(j, i, v)
	}
	return spdFinish(coo, n)
}

// BlockCoupled returns a block-diagonal matrix of dense-ish SPD blocks with
// sparse random coupling between consecutive blocks — the structure of
// multi-body FEM matrices like audikw_1. Block densities ramp from light to
// heavy across the blocks (different bodies are meshed at different
// resolutions), so row nonzero counts vary strongly with position: density-
// based row grouping, as in the Gray ordering, interleaves rows from every
// block.
func BlockCoupled(blocks, blockSize int, couplingPerBlock int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := blocks * blockSize
	coo := sparse.NewCOO(n, n, blocks*blockSize*8)
	for b := 0; b < blocks; b++ {
		base := b * blockSize
		// Intra-block degree ramps from 3 to 15 across blocks.
		deg := 3 + 12*b/maxInt(1, blocks-1)
		for r := 0; r < blockSize; r++ {
			i := base + r
			for t := 0; t < deg; t++ {
				j := base + rng.Intn(blockSize)
				if j == i {
					continue
				}
				v := -rng.Float64()
				coo.Append(i, j, v)
				coo.Append(j, i, v)
			}
		}
		if b+1 < blocks {
			next := (b + 1) * blockSize
			for t := 0; t < couplingPerBlock; t++ {
				i := base + rng.Intn(blockSize)
				j := next + rng.Intn(blockSize)
				v := -rng.Float64()
				coo.Append(i, j, v)
				coo.Append(j, i, v)
			}
		}
	}
	return spdFinish(coo, n)
}

// WithDenseRows injects dense rows into a copy of a: count rows are given
// nonzeros in a fraction density of all columns (unsymmetric, like the
// coupling constraints or posting lists in HV15R-class matrices).
func WithDenseRows(a *sparse.CSR, count int, density float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	coo := sparse.FromCSR(a)
	for t := 0; t < count; t++ {
		i := rng.Intn(a.Rows)
		nnz := int(density * float64(a.Cols))
		for s := 0; s < nnz; s++ {
			coo.Append(i, rng.Intn(a.Cols), rng.Float64())
		}
	}
	out, err := coo.ToCSR()
	if err != nil {
		panic("gen: WithDenseRows: " + err.Error())
	}
	return out
}

// Scramble applies a random symmetric permutation, destroying any natural
// ordering — the state in which many SuiteSparse matrices arrive and the
// case where reordering has the most to gain.
func Scramble(a *sparse.CSR, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	p := sparse.Perm(rng.Perm(a.Rows))
	b, err := sparse.PermuteSymmetric(a, p)
	if err != nil {
		panic("gen: Scramble: " + err.Error())
	}
	return b
}

// ScrambleRows applies a random row permutation only (for unsymmetric
// matrices).
func ScrambleRows(a *sparse.CSR, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	p := sparse.Perm(rng.Perm(a.Rows))
	b, err := sparse.PermuteRows(a, p)
	if err != nil {
		panic("gen: ScrambleRows: " + err.Error())
	}
	return b
}

// TallSkinnyDense returns a fully dense rows×cols matrix stored in CSR —
// the paper's §4.2 bandwidth-ceiling reference (96000×4000 in the paper).
func TallSkinnyDense(rows, cols int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	a := &sparse.CSR{
		Rows:   rows,
		Cols:   cols,
		RowPtr: make([]int, rows+1),
		ColIdx: make([]int32, rows*cols),
		Val:    make([]float64, rows*cols),
	}
	for i := 0; i < rows; i++ {
		a.RowPtr[i+1] = (i + 1) * cols
		base := i * cols
		for j := 0; j < cols; j++ {
			a.ColIdx[base+j] = int32(j)
			a.Val[base+j] = rng.Float64()
		}
	}
	return a
}

// spdFinish converts the accumulated off-diagonal COO entries to CSR and
// sets each diagonal entry to (sum of absolute off-diagonal row entries)+1,
// making the matrix symmetric positive definite by diagonal dominance.
func spdFinish(coo *sparse.COO, n int) *sparse.CSR {
	a, err := coo.ToCSR()
	if err != nil {
		panic("gen: " + err.Error())
	}
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if int(a.ColIdx[k]) != i {
				rowAbs[i] += math.Abs(a.Val[k])
			}
		}
	}
	full := sparse.FromCSR(a)
	diagSeen := make([]bool, n)
	for k := range full.Val {
		if full.Row[k] == full.Col[k] {
			full.Val[k] = rowAbs[full.Row[k]] + 1
			diagSeen[full.Row[k]] = true
		}
	}
	for i := 0; i < n; i++ {
		if !diagSeen[i] {
			full.Append(i, i, rowAbs[i]+1)
		}
	}
	out, err := full.ToCSR()
	if err != nil {
		panic("gen: " + err.Error())
	}
	return out
}
