// Package graph provides the undirected adjacency-graph substrate used by
// the traversal- and partitioning-based reorderings: CSR-style adjacency
// storage, breadth-first level structures, connected components, and the
// George-Liu pseudo-peripheral vertex finder.
package graph

import (
	"fmt"

	"sparseorder/internal/par"
	"sparseorder/internal/sparse"
)

// Graph is an undirected graph in adjacency-list (CSR) form. Edges appear
// in both endpoints' lists; self-loops are never stored.
type Graph struct {
	N      int
	Ptr    []int
	Adj    []int32
	VWgt   []int32 // optional vertex weights (nil means unit weights)
	EWgt   []int32 // optional edge weights aligned with Adj (nil means unit)
	degMax int
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.Adj) / 2 }

// Degree returns the number of neighbours of vertex v.
func (g *Graph) Degree(v int) int { return g.Ptr[v+1] - g.Ptr[v] }

// MaxDegree returns the largest vertex degree. Graphs built by
// FromMatrix, FromMatrixSymmetrized (and their Workers variants) and
// InducedSubgraph carry the value precomputed; for hand-assembled Graph
// values the scan result is returned without being cached. Either way
// MaxDegree never mutates the graph, so concurrent callers sharing one
// graph — as the component-parallel Cuthill-McKee does — are safe.
func (g *Graph) MaxDegree() int {
	if g.degMax > 0 {
		return g.degMax
	}
	m := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > m {
			m = d
		}
	}
	return m
}

// Neighbors returns the adjacency list of v. The slice aliases graph
// storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 { return g.Adj[g.Ptr[v]:g.Ptr[v+1]] }

// VertexWeight returns the weight of v (1 if the graph is unweighted).
func (g *Graph) VertexWeight(v int) int {
	if g.VWgt == nil {
		return 1
	}
	return int(g.VWgt[v])
}

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() int {
	if g.VWgt == nil {
		return g.N
	}
	t := 0
	for _, w := range g.VWgt {
		t += int(w)
	}
	return t
}

// EdgeWeight returns the weight of the edge stored at adjacency slot k.
func (g *Graph) EdgeWeight(k int) int {
	if g.EWgt == nil {
		return 1
	}
	return int(g.EWgt[k])
}

// Validate checks the structural invariants: symmetric adjacency, no
// self-loops, in-range indices.
func (g *Graph) Validate() error {
	if len(g.Ptr) != g.N+1 {
		return fmt.Errorf("graph: Ptr length %d, want %d", len(g.Ptr), g.N+1)
	}
	if g.Ptr[0] != 0 || g.Ptr[g.N] != len(g.Adj) {
		return fmt.Errorf("graph: inconsistent Ptr bounds")
	}
	type edge struct{ u, v int32 }
	count := make(map[edge]int, len(g.Adj))
	for u := 0; u < g.N; u++ {
		for k := g.Ptr[u]; k < g.Ptr[u+1]; k++ {
			v := g.Adj[k]
			if v < 0 || int(v) >= g.N {
				return fmt.Errorf("graph: neighbour %d of %d out of range", v, u)
			}
			if int(v) == u {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			count[edge{int32(u), v}]++
		}
	}
	for e, c := range count {
		if count[edge{e.v, e.u}] != c {
			return fmt.Errorf("graph: asymmetric adjacency between %d and %d", e.u, e.v)
		}
	}
	return nil
}

// FromMatrix builds the undirected graph of a square, structurally
// symmetric sparse matrix: one vertex per row/column and an edge {i, j}
// for every off-diagonal nonzero. The input must be structurally
// symmetric; callers pass sparse.Symmetrize(a) for unsymmetric patterns.
func FromMatrix(a *sparse.CSR) (*Graph, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("graph: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	g := &Graph{N: a.Rows, Ptr: make([]int, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		n := 0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if int(a.ColIdx[k]) != i {
				n++
			}
		}
		g.Ptr[i+1] = g.Ptr[i] + n
		if n > g.degMax {
			g.degMax = n
		}
	}
	g.Adj = make([]int32, g.Ptr[a.Rows])
	pos := 0
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if j := a.ColIdx[k]; int(j) != i {
				g.Adj[pos] = j
				pos++
			}
		}
	}
	return g, nil
}

// FromMatrixSymmetrized builds the undirected graph of A + Aᵀ when the
// pattern of a is unsymmetric, and of A directly otherwise.
func FromMatrixSymmetrized(a *sparse.CSR) (*Graph, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("graph: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	if !a.IsStructurallySymmetric() {
		s, err := sparse.Symmetrize(a)
		if err != nil {
			return nil, err
		}
		a = s
	}
	return FromMatrix(a)
}

// BFSResult is a breadth-first level structure rooted at Root.
type BFSResult struct {
	Root   int
	Order  []int32 // vertices in visit order
	Level  []int32 // level of each visited vertex; -1 if unreached
	Levels [][]int32
}

// Depth returns the eccentricity of the root within its component.
func (r *BFSResult) Depth() int { return len(r.Levels) - 1 }

// BFS computes a breadth-first level structure from root, restricted to
// root's connected component. The scratch slice, if non-nil, must have
// length g.N and is used as the level array to avoid allocation.
func BFS(g *Graph, root int, scratch []int32) *BFSResult {
	return BFSCancel(g, root, scratch, nil)
}

// bfsCheckEvery is the number of frontier vertices expanded between
// cancellation checks in BFSCancel: cancellation latency is bounded by
// that many adjacency scans, while the per-vertex overhead stays one
// counter increment.
const bfsCheckEvery = 4096

// BFSCancel is BFS with a cooperative cancellation hook: every
// bfsCheckEvery expanded frontier vertices it polls done and, when the
// channel is closed, returns the partial level structure built so far.
// Callers observing cancellation must discard the result. A nil done
// never cancels, making BFSCancel(g, root, scratch, nil) exactly BFS.
func BFSCancel(g *Graph, root int, scratch []int32, done <-chan struct{}) *BFSResult {
	level := scratch
	if level == nil {
		level = make([]int32, g.N)
	}
	for i := range level {
		level[i] = -1
	}
	order := make([]int32, 0, g.N)
	order = append(order, int32(root))
	level[root] = 0
	var levels [][]int32
	head := 0
	sinceCheck := 0
	for head < len(order) {
		levelStart := head
		cur := level[order[head]]
		for head < len(order) && level[order[head]] == cur {
			head++
		}
		frontier := order[levelStart:head]
		levels = append(levels, frontier)
		for _, u := range frontier {
			if sinceCheck++; sinceCheck >= bfsCheckEvery {
				sinceCheck = 0
				if par.Canceled(done) {
					return &BFSResult{Root: root, Order: order, Level: level, Levels: levels}
				}
			}
			for _, v := range g.Neighbors(int(u)) {
				if level[v] < 0 {
					level[v] = cur + 1
					order = append(order, v)
				}
			}
		}
	}
	return &BFSResult{Root: root, Order: order, Level: level, Levels: levels}
}

// Components returns the connected components of g, each as a list of
// vertices, along with a component id per vertex.
func Components(g *Graph) ([][]int32, []int32) {
	id := make([]int32, g.N)
	for i := range id {
		id[i] = -1
	}
	var comps [][]int32
	queue := make([]int32, 0, g.N)
	for s := 0; s < g.N; s++ {
		if id[s] >= 0 {
			continue
		}
		c := int32(len(comps))
		queue = queue[:0]
		queue = append(queue, int32(s))
		id[s] = c
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(int(u)) {
				if id[v] < 0 {
					id[v] = c
					queue = append(queue, v)
				}
			}
		}
		comp := make([]int32, len(queue))
		copy(comp, queue)
		comps = append(comps, comp)
	}
	return comps, id
}

// PseudoPeripheral finds a pseudo-peripheral vertex of the component
// containing start, using the George-Liu algorithm: repeatedly root a BFS
// at a minimum-degree vertex of the deepest last level until the
// eccentricity stops growing. It returns the vertex and its final level
// structure.
func PseudoPeripheral(g *Graph, start int, scratch []int32) (int, *BFSResult) {
	return PseudoPeripheralCancel(g, start, scratch, nil)
}

// PseudoPeripheralCancel is PseudoPeripheral with cooperative
// cancellation: done is polled between (and, via BFSCancel, inside) the
// BFS rounds. On cancellation the current candidate is returned; callers
// observing cancellation must discard it.
func PseudoPeripheralCancel(g *Graph, start int, scratch []int32, done <-chan struct{}) (int, *BFSResult) {
	r := BFSCancel(g, start, scratch, done)
	for {
		if par.Canceled(done) {
			return r.Root, r
		}
		last := r.Levels[len(r.Levels)-1]
		next := int(last[0])
		for _, v := range last {
			if g.Degree(int(v)) < g.Degree(next) {
				next = int(v)
			}
		}
		rNext := BFSCancel(g, next, scratch, done)
		if rNext.Depth() <= r.Depth() {
			return r.Root, r
		}
		r = rNext
	}
}

// InducedSubgraph returns the subgraph induced by the given vertices along
// with the mapping from subgraph vertex index to original vertex. Vertex
// and edge weights are carried over when present.
func InducedSubgraph(g *Graph, verts []int32) (*Graph, []int32) {
	local := make(map[int32]int32, len(verts))
	for i, v := range verts {
		local[v] = int32(i)
	}
	sub := &Graph{N: len(verts), Ptr: make([]int, len(verts)+1)}
	if g.VWgt != nil {
		sub.VWgt = make([]int32, len(verts))
	}
	var adj []int32
	var ewgt []int32
	for i, v := range verts {
		if g.VWgt != nil {
			sub.VWgt[i] = g.VWgt[v]
		}
		for k := g.Ptr[v]; k < g.Ptr[v+1]; k++ {
			if lu, ok := local[g.Adj[k]]; ok {
				adj = append(adj, lu)
				if g.EWgt != nil {
					ewgt = append(ewgt, g.EWgt[k])
				}
			}
		}
		sub.Ptr[i+1] = len(adj)
		if d := sub.Ptr[i+1] - sub.Ptr[i]; d > sub.degMax {
			sub.degMax = d
		}
	}
	sub.Adj = adj
	if g.EWgt != nil {
		sub.EWgt = ewgt
	}
	orig := make([]int32, len(verts))
	copy(orig, verts)
	return sub, orig
}
