package graph

import (
	"fmt"

	"sparseorder/internal/par"
	"sparseorder/internal/sparse"
)

// FromMatrixWorkers is FromMatrix with the counting and adjacency-fill
// passes split across row ranges. Workers follow the package convention
// (0 = GOMAXPROCS, 1 = the exact serial code path); the adjacency is
// byte-identical at every worker count because each vertex's slot range
// is fixed by the serial prefix sum before any list is written.
func FromMatrixWorkers(a *sparse.CSR, workers int) (*Graph, error) {
	w := par.Resolve(workers)
	if w == 1 {
		return FromMatrix(a)
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("graph: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	g := &Graph{N: a.Rows, Ptr: make([]int, a.Rows+1)}
	chunkMax := make([]int, par.Chunks(a.Rows, w))
	par.Ranges(a.Rows, w, func(chunk, lo, hi int) {
		m := 0
		for i := lo; i < hi; i++ {
			n := 0
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if int(a.ColIdx[k]) != i {
					n++
				}
			}
			g.Ptr[i+1] = n
			if n > m {
				m = n
			}
		}
		chunkMax[chunk] = m
	})
	for i := 0; i < a.Rows; i++ {
		g.Ptr[i+1] += g.Ptr[i]
	}
	for _, m := range chunkMax {
		if m > g.degMax {
			g.degMax = m
		}
	}
	g.Adj = make([]int32, g.Ptr[a.Rows])
	par.Ranges(a.Rows, w, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			pos := g.Ptr[i]
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if j := a.ColIdx[k]; int(j) != i {
					g.Adj[pos] = j
					pos++
				}
			}
		}
	})
	return g, nil
}

// FromMatrixSymmetrizedWorkers is FromMatrixSymmetrized with a parallel
// counting pass. Instead of materialising A+Aᵀ (the serial path's
// value-carrying transpose + pattern check + Add), it builds a
// pattern-only transpose once and forms each vertex's adjacency as the
// sorted union of row i of A and row i of Aᵀ minus the diagonal, row
// ranges in parallel; identical rows (every row of a structurally
// symmetric pattern) skip the merge and are copied directly. For a
// structurally symmetric pattern the union equals row i of A, and for an
// unsymmetric one it equals row i of A+Aᵀ, so the graph is
// byte-identical to the serial path in both cases.
func FromMatrixSymmetrizedWorkers(a *sparse.CSR, workers int) (*Graph, error) {
	w := par.Resolve(workers)
	if w == 1 {
		return FromMatrixSymmetrized(a)
	}
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("graph: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	t := patternTranspose(a)
	g := &Graph{N: a.Rows, Ptr: make([]int, a.Rows+1)}
	chunkMax := make([]int, par.Chunks(a.Rows, w))
	par.Ranges(a.Rows, w, func(chunk, lo, hi int) {
		m := 0
		for i := lo; i < hi; i++ {
			n := mergeRow(a, t, i, nil)
			g.Ptr[i+1] = n
			if n > m {
				m = n
			}
		}
		chunkMax[chunk] = m
	})
	for i := 0; i < a.Rows; i++ {
		g.Ptr[i+1] += g.Ptr[i]
	}
	for _, m := range chunkMax {
		if m > g.degMax {
			g.degMax = m
		}
	}
	g.Adj = make([]int32, g.Ptr[a.Rows])
	par.Ranges(a.Rows, w, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			mergeRow(a, t, i, g.Adj[g.Ptr[i]:g.Ptr[i+1]])
		}
	})
	return g, nil
}

// patternTranspose returns the pattern of Aᵀ (RowPtr and ColIdx only).
// The graph build never reads values, and skipping them removes a third
// of the transpose's scattered memory traffic.
func patternTranspose(a *sparse.CSR) *sparse.CSR {
	t := &sparse.CSR{
		Rows:   a.Cols,
		Cols:   a.Rows,
		RowPtr: make([]int, a.Cols+1),
		ColIdx: make([]int32, len(a.ColIdx)),
	}
	for _, j := range a.ColIdx {
		t.RowPtr[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	next := make([]int, a.Cols)
	copy(next, t.RowPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			t.ColIdx[next[j]] = int32(i)
			next[j]++
		}
	}
	return t
}

// mergeRow computes the sorted union of row i of a and row i of t with the
// diagonal entry removed. With dst nil it only counts; otherwise it writes
// the union into dst and returns the count. Both inputs have strictly
// ascending columns per the CSR invariant. Equal rows — every row when
// the pattern is structurally symmetric — take a compare-and-copy fast
// path instead of the two-pointer merge.
func mergeRow(a, t *sparse.CSR, i int, dst []int32) int {
	ka, kaEnd := a.RowPtr[i], a.RowPtr[i+1]
	kb, kbEnd := t.RowPtr[i], t.RowPtr[i+1]
	n := 0
	di := int32(i)
	if kaEnd-ka == kbEnd-kb {
		ra, rb := a.ColIdx[ka:kaEnd], t.ColIdx[kb:kbEnd]
		equal := true
		for k := range ra {
			if ra[k] != rb[k] {
				equal = false
				break
			}
		}
		if equal {
			for _, c := range ra {
				if c == di {
					continue
				}
				if dst != nil {
					dst[n] = c
				}
				n++
			}
			return n
		}
	}
	for ka < kaEnd || kb < kbEnd {
		var c int32
		switch {
		case kb >= kbEnd || (ka < kaEnd && a.ColIdx[ka] < t.ColIdx[kb]):
			c = a.ColIdx[ka]
			ka++
		case ka >= kaEnd || t.ColIdx[kb] < a.ColIdx[ka]:
			c = t.ColIdx[kb]
			kb++
		default:
			c = a.ColIdx[ka]
			ka++
			kb++
		}
		if c == di {
			continue
		}
		if dst != nil {
			dst[n] = c
		}
		n++
	}
	return n
}
