package graph

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"sparseorder/internal/gen"
	"sparseorder/internal/sparse"
)

func graphsEqual(t *testing.T, got, want *Graph, label string) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: N = %d, want %d", label, got.N, want.N)
	}
	for i := range want.Ptr {
		if got.Ptr[i] != want.Ptr[i] {
			t.Fatalf("%s: Ptr[%d] = %d, want %d", label, i, got.Ptr[i], want.Ptr[i])
		}
	}
	if len(got.Adj) != len(want.Adj) {
		t.Fatalf("%s: %d adjacency entries, want %d", label, len(got.Adj), len(want.Adj))
	}
	for k := range want.Adj {
		if got.Adj[k] != want.Adj[k] {
			t.Fatalf("%s: Adj[%d] = %d, want %d", label, k, got.Adj[k], want.Adj[k])
		}
	}
	if got.MaxDegree() != want.MaxDegree() {
		t.Fatalf("%s: MaxDegree = %d, want %d", label, got.MaxDegree(), want.MaxDegree())
	}
}

func TestFromMatrixWorkersMatchesSerial(t *testing.T) {
	for _, a := range []*sparse.CSR{
		gen.Grid2D(15, 15),
		gen.Scramble(gen.Grid3D(7, 7, 7), 3),
		gen.Grid2D(1, 1),
	} {
		want, err := FromMatrix(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 3, 4, runtime.GOMAXPROCS(0), 0} {
			got, err := FromMatrixWorkers(a, w)
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			graphsEqual(t, got, want, "FromMatrixWorkers")
		}
	}
}

func TestFromMatrixSymmetrizedWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	unsym := sparse.NewCOO(90, 90, 500)
	for k := 0; k < 400; k++ {
		unsym.Append(rng.Intn(90), rng.Intn(90), 1)
	}
	u, err := unsym.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []*sparse.CSR{
		u,                  // unsymmetric pattern: A+Aᵀ union path
		gen.Grid2D(12, 12), // already symmetric
		gen.WithDenseRows(gen.Grid2D(10, 10), 3, 0.4, 5), // dense unsymmetric rows
	} {
		want, err := FromMatrixSymmetrized(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 3, 4, runtime.GOMAXPROCS(0), 0} {
			got, err := FromMatrixSymmetrizedWorkers(a, w)
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			graphsEqual(t, got, want, "FromMatrixSymmetrizedWorkers")
		}
	}
}

func TestFromMatrixSymmetrizedWorkersRejectsRectangular(t *testing.T) {
	coo := sparse.NewCOO(2, 3, 1)
	coo.Append(0, 2, 1)
	a, _ := coo.ToCSR()
	if _, err := FromMatrixSymmetrizedWorkers(a, 4); err == nil {
		t.Error("accepted rectangular matrix")
	}
}

// TestMaxDegreeConcurrent exercises MaxDegree from many goroutines at
// once, on a constructor-built graph (degMax precomputed) and on a
// hand-assembled literal (the lazy scan path). Run under -race this
// guards the regression where the lazy path cached its result without
// synchronisation.
func TestMaxDegreeConcurrent(t *testing.T) {
	built, err := FromMatrix(gen.Grid2D(20, 20))
	if err != nil {
		t.Fatal(err)
	}
	literal := &Graph{N: 4, Ptr: []int{0, 2, 3, 5, 6}, Adj: []int32{1, 2, 0, 0, 3, 2}}
	for _, tc := range []struct {
		g    *Graph
		want int
	}{{built, 4}, {literal, 2}} {
		var wg sync.WaitGroup
		errs := make([]int, 16)
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = tc.g.MaxDegree()
			}(i)
		}
		wg.Wait()
		for i, d := range errs {
			if d != tc.want {
				t.Fatalf("goroutine %d: MaxDegree = %d, want %d", i, d, tc.want)
			}
		}
	}
}

func BenchmarkReorderGraphBuild(b *testing.B) {
	a := gen.Scramble(gen.Grid3D(24, 24, 24), 2)
	for _, w := range []int{1, 4} {
		name := "serial"
		if w > 1 {
			name = "workers4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := FromMatrixSymmetrizedWorkers(a, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
