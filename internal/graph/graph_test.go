package graph

import (
	"math/rand"
	"testing"

	"sparseorder/internal/sparse"
)

// pathMatrix returns the tridiagonal pattern of a path with n vertices.
func pathMatrix(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Append(i, i, 2)
		if i > 0 {
			coo.Append(i, i-1, -1)
		}
		if i < n-1 {
			coo.Append(i, i+1, -1)
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return a
}

func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := FromMatrix(pathMatrix(n))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromMatrixPath(t *testing.T) {
	g := pathGraph(t, 5)
	if g.N != 5 || g.NumEdges() != 4 {
		t.Fatalf("N=%d edges=%d, want 5 and 4", g.N, g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Errorf("degrees: %d %d", g.Degree(0), g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFromMatrixDropsDiagonal(t *testing.T) {
	coo := sparse.NewCOO(2, 2, 3)
	coo.Append(0, 0, 5)
	coo.Append(0, 1, 1)
	coo.Append(1, 0, 1)
	a, _ := coo.ToCSR()
	g, err := FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1 (self-loop dropped)", g.NumEdges())
	}
}

func TestFromMatrixRejectsRectangular(t *testing.T) {
	coo := sparse.NewCOO(2, 3, 1)
	coo.Append(0, 2, 1)
	a, _ := coo.ToCSR()
	if _, err := FromMatrix(a); err == nil {
		t.Error("accepted rectangular matrix")
	}
}

func TestFromMatrixSymmetrized(t *testing.T) {
	coo := sparse.NewCOO(3, 3, 2)
	coo.Append(0, 2, 1) // only upper entry; symmetrization must add mirror
	coo.Append(1, 1, 1)
	a, _ := coo.ToCSR()
	g, err := FromMatrixSymmetrized(a)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.Degree(0) != 1 || g.Degree(2) != 1 {
		t.Errorf("edges=%d deg0=%d deg2=%d", g.NumEdges(), g.Degree(0), g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBFSLevelsOnPath(t *testing.T) {
	g := pathGraph(t, 6)
	r := BFS(g, 0, nil)
	if r.Depth() != 5 {
		t.Fatalf("depth = %d, want 5", r.Depth())
	}
	for i := 0; i < 6; i++ {
		if int(r.Level[i]) != i {
			t.Errorf("level[%d] = %d, want %d", i, r.Level[i], i)
		}
	}
	r = BFS(g, 3, nil)
	if r.Depth() != 3 {
		t.Errorf("depth from middle = %d, want 3", r.Depth())
	}
	if len(r.Order) != 6 {
		t.Errorf("visited %d of 6", len(r.Order))
	}
}

func TestBFSRestrictedToComponent(t *testing.T) {
	// Two disjoint edges: 0-1 and 2-3.
	coo := sparse.NewCOO(4, 4, 4)
	coo.Append(0, 1, 1)
	coo.Append(1, 0, 1)
	coo.Append(2, 3, 1)
	coo.Append(3, 2, 1)
	a, _ := coo.ToCSR()
	g, _ := FromMatrix(a)
	r := BFS(g, 0, nil)
	if len(r.Order) != 2 {
		t.Errorf("BFS escaped the component: %v", r.Order)
	}
	if r.Level[2] != -1 {
		t.Errorf("unreached vertex has level %d", r.Level[2])
	}
}

func TestComponents(t *testing.T) {
	coo := sparse.NewCOO(5, 5, 4)
	coo.Append(0, 1, 1)
	coo.Append(1, 0, 1)
	coo.Append(2, 3, 1)
	coo.Append(3, 2, 1)
	a, _ := coo.ToCSR()
	g, _ := FromMatrix(a)
	comps, id := Components(g)
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if id[0] != id[1] || id[2] != id[3] || id[0] == id[2] || id[4] == id[0] {
		t.Errorf("component ids: %v", id)
	}
}

func TestPseudoPeripheralOnPath(t *testing.T) {
	g := pathGraph(t, 9)
	v, r := PseudoPeripheral(g, 4, nil)
	if v != 0 && v != 8 {
		t.Errorf("pseudo-peripheral vertex = %d, want an endpoint", v)
	}
	if r.Depth() != 8 {
		t.Errorf("eccentricity = %d, want 8", r.Depth())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := pathGraph(t, 6)
	sub, orig := InducedSubgraph(g, []int32{1, 2, 3, 5})
	if sub.N != 4 {
		t.Fatalf("sub.N = %d", sub.N)
	}
	// Edges kept: 1-2, 2-3. Vertex 5 is isolated (4 excluded).
	if sub.NumEdges() != 2 {
		t.Errorf("sub edges = %d, want 2", sub.NumEdges())
	}
	if sub.Degree(3) != 0 {
		t.Errorf("vertex 5 should be isolated, degree %d", sub.Degree(3))
	}
	if int(orig[0]) != 1 || int(orig[3]) != 5 {
		t.Errorf("orig mapping %v", orig)
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestInducedSubgraphCarriesWeights(t *testing.T) {
	g := pathGraph(t, 4)
	g.VWgt = []int32{1, 2, 3, 4}
	g.EWgt = make([]int32, len(g.Adj))
	for i := range g.EWgt {
		g.EWgt[i] = 7
	}
	sub, _ := InducedSubgraph(g, []int32{1, 2})
	if sub.VWgt[0] != 2 || sub.VWgt[1] != 3 {
		t.Errorf("vertex weights not carried: %v", sub.VWgt)
	}
	if len(sub.EWgt) != len(sub.Adj) || sub.EWgt[0] != 7 {
		t.Errorf("edge weights not carried")
	}
}

func TestTotalVertexWeight(t *testing.T) {
	g := pathGraph(t, 4)
	if g.TotalVertexWeight() != 4 {
		t.Errorf("unit weight total = %d", g.TotalVertexWeight())
	}
	g.VWgt = []int32{2, 2, 2, 2}
	if g.TotalVertexWeight() != 8 {
		t.Errorf("weighted total = %d", g.TotalVertexWeight())
	}
}

func TestMaxDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	coo := sparse.NewCOO(30, 30, 200)
	for k := 0; k < 100; k++ {
		i, j := rng.Intn(30), rng.Intn(30)
		if i == j {
			continue
		}
		coo.Append(i, j, 1)
		coo.Append(j, i, 1)
	}
	a, _ := coo.ToCSR()
	g, _ := FromMatrix(a)
	want := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > want {
			want = d
		}
	}
	if g.MaxDegree() != want {
		t.Errorf("MaxDegree = %d, want %d", g.MaxDegree(), want)
	}
}
