package hypergraph

import (
	"math/rand"

	"sparseorder/internal/obs"
	"sparseorder/internal/par"
)

// Options control the hypergraph partitioner; zero values take defaults.
type Options struct {
	Seed         int64
	Imbalance    float64 // default 0.03
	CoarsenTo    int     // default 64
	InitTrials   int     // default 4
	RefinePasses int     // default 6
	// Workers bounds the goroutines of the parallel recursive bisection
	// in KWay and KWayConnectivity (0 = GOMAXPROCS, 1 = the exact serial
	// recursion). Every branch derives its own deterministic RNG seed and
	// writes a disjoint slice of the part assignment, so results are
	// byte-identical at any worker count.
	Workers int
	// Cancel, when non-nil, is polled at every bisection branch, coarsening
	// level, initial trial and refinement pass; once closed the partitioner
	// unwinds promptly. The assignment returned after a cancellation is
	// incomplete and must be discarded — the context-aware entry points do
	// so and surface the context's error instead. A nil channel never
	// cancels, and an uncancelled run is byte-identical either way.
	Cancel <-chan struct{}
	// Obs, when non-nil, receives per-level phase timings from every
	// bisection as hypergraph/coarsen, hypergraph/initial and
	// hypergraph/refine duration histograms (metrics only, no event-log
	// traffic). Nil disables timing entirely.
	Obs *obs.Obs
}

func (o Options) withDefaults() Options {
	if o.Imbalance == 0 {
		o.Imbalance = 0.03
	}
	if o.CoarsenTo == 0 {
		o.CoarsenTo = 64
	}
	if o.InitTrials == 0 {
		o.InitTrials = 4
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 6
	}
	return o
}

// Bisect splits the hypergraph's vertices into two sides, side 0 receiving
// roughly frac of the total vertex weight, minimising the cut-net metric
// through the full multilevel scheme.
func Bisect(h *Hypergraph, frac float64, opts Options, rng *rand.Rand) []uint8 {
	opts = opts.withDefaults()
	if h.V == 0 {
		return nil
	}
	tm := opts.Obs.Phase("hypergraph/coarsen").Start()
	levels := coarsen(h, opts.CoarsenTo, rng, opts.Cancel)
	tm.Stop()
	coarsest := h
	if len(levels) > 0 {
		coarsest = levels[len(levels)-1].coarse
	}
	tm = opts.Obs.Phase("hypergraph/initial").Start()
	side := initialBisection(coarsest, frac, opts, rng)
	tm.Stop()
	tm = opts.Obs.Phase("hypergraph/refine").Start()
	fmRefine(coarsest, side, frac, opts)
	for i := len(levels) - 1; i >= 0; i-- {
		if par.Canceled(opts.Cancel) {
			tm.Stop()
			return make([]uint8, h.V)
		}
		lv := levels[i]
		fineSide := make([]uint8, lv.fine.V)
		for v := 0; v < lv.fine.V; v++ {
			fineSide[v] = side[lv.cmap[v]]
		}
		side = fineSide
		fmRefine(lv.fine, side, frac, opts)
	}
	tm.Stop()
	if len(side) != h.V {
		// Cancelled before uncoarsening finished: return a well-formed (all
		// zero) assignment; the caller discards it once it observes Cancel.
		return make([]uint8, h.V)
	}
	return side
}

// initialBisection grows side 0 by net-connectivity BFS from random seeds
// and keeps the trial with the fewest cut nets.
func initialBisection(h *Hypergraph, frac float64, opts Options, rng *rand.Rand) []uint8 {
	total := h.TotalVertexWeight()
	target := int(frac * float64(total))
	best := make([]uint8, h.V)
	bestCut := -1
	trial := make([]uint8, h.V)
	for t := 0; t < opts.InitTrials; t++ {
		if t > 0 && par.Canceled(opts.Cancel) {
			break // keep the best trial so far; the caller bails out next check
		}
		for i := range trial {
			trial[i] = 1
		}
		visited := make([]bool, h.V)
		netDone := make([]bool, h.Nets)
		start := rng.Intn(h.V)
		queue := []int32{int32(start)}
		visited[start] = true
		w := 0
		for head := 0; head < len(queue) && w < target; head++ {
			v := queue[head]
			trial[v] = 0
			w += h.VertexWeight(int(v))
			for _, n := range h.NetsOf(int(v)) {
				if netDone[n] {
					continue
				}
				netDone[n] = true
				for _, u := range h.Pins(int(n)) {
					if !visited[u] {
						visited[u] = true
						queue = append(queue, u)
					}
				}
			}
		}
		for v := 0; v < h.V && w < target; v++ {
			if trial[v] == 1 {
				trial[v] = 0
				w += h.VertexWeight(v)
			}
		}
		part := make([]int32, h.V)
		for v, s := range trial {
			part[v] = int32(s)
		}
		cut := CutNet(h, part)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			copy(best, trial)
		}
	}
	return best
}

type hEntry struct {
	v    int32
	gain int
}

type hHeap []hEntry

func (h hHeap) Len() int           { return len(h) }
func (h hHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h hHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

func hHeapInit(h *hHeap) {
	n := h.Len()
	for i := n/2 - 1; i >= 0; i-- {
		hHeapDown(h, i, n)
	}
}

func hHeapPush(h *hHeap, e hEntry) {
	*h = append(*h, e)
	j := h.Len() - 1
	for {
		i := (j - 1) / 2
		if i == j || !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}

func hHeapPop(h *hHeap) hEntry {
	n := h.Len() - 1
	h.Swap(0, n)
	hHeapDown(h, 0, n)
	old := *h
	e := old[n]
	*h = old[:n]
	return e
}

func hHeapDown(h *hHeap, i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.Less(j2, j1) {
			j = j2
		}
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		i = j
	}
}

// fmRefine runs FM passes on the bisection under the cut-net objective.
// The gain of moving v is (nets that become internal) - (nets that become
// cut), maintained from per-net side pin counts.
func fmRefine(h *Hypergraph, side []uint8, frac float64, opts Options) {
	total := h.TotalVertexWeight()
	maxW := [2]int{
		int(float64(total) * frac * (1 + opts.Imbalance)),
		int(float64(total) * (1 - frac) * (1 + opts.Imbalance)),
	}
	if maxW[0] <= 0 {
		maxW[0] = 1
	}
	if maxW[1] <= 0 {
		maxW[1] = 1
	}
	for pass := 0; pass < opts.RefinePasses; pass++ {
		if par.Canceled(opts.Cancel) {
			return
		}
		if !fmPass(h, side, maxW) {
			break
		}
	}
}

func fmPass(h *Hypergraph, side []uint8, maxW [2]int) bool {
	// count[n][s] = pins of net n currently on side s.
	count := make([][2]int32, h.Nets)
	for n := 0; n < h.Nets; n++ {
		for _, v := range h.Pins(n) {
			count[n][side[v]]++
		}
	}
	w := [2]int{}
	for v := 0; v < h.V; v++ {
		w[side[v]] += h.VertexWeight(v)
	}

	gainOf := func(v int) int {
		g := 0
		s := side[v]
		for _, n := range h.NetsOf(v) {
			c := count[n]
			size := c[0] + c[1]
			if size < 2 {
				continue
			}
			if c[1-s] == 0 {
				g-- // currently internal; the move cuts it
			} else if c[s] == 1 {
				g++ // v is the last pin on s; the move uncuts it
			}
		}
		return g
	}

	// Only boundary vertices (pins of cut nets) can have positive gain, so
	// the pass restricts attention to them, as PaToH's boundary FM does.
	isBoundary := make([]bool, h.V)
	for n := 0; n < h.Nets; n++ {
		if count[n][0] > 0 && count[n][1] > 0 {
			for _, v := range h.Pins(n) {
				isBoundary[v] = true
			}
		}
	}
	gain := make([]int, h.V)
	locked := make([]bool, h.V)
	pq := &hHeap{}
	for v := 0; v < h.V; v++ {
		if !isBoundary[v] {
			continue
		}
		gain[v] = gainOf(v)
		*pq = append(*pq, hEntry{int32(v), gain[v]})
	}
	hHeapInit(pq)

	type move struct{ v int32 }
	var moves []move
	cumGain, bestGain, bestIdx := 0, 0, -1

	for pq.Len() > 0 {
		e := hHeapPop(pq)
		v := int(e.v)
		if locked[v] || e.gain != gain[v] {
			continue
		}
		to := 1 - side[v]
		if w[to]+h.VertexWeight(v) > maxW[to] {
			continue
		}
		locked[v] = true
		w[side[v]] -= h.VertexWeight(v)
		// Update net counts, then refresh gains of the affected pins. Very
		// large nets are skipped in the gain refresh (their cut state almost
		// never flips from one move); stale heap entries are discarded on pop.
		const maxUpdateNetSize = 128
		for _, n := range h.NetsOf(v) {
			count[n][side[v]]--
			count[n][to]++
			pins := h.Pins(int(n))
			if len(pins) > maxUpdateNetSize {
				continue
			}
			for _, u := range pins {
				if !locked[u] {
					gain[u] = gainOf(int(u))
					hHeapPush(pq, hEntry{u, gain[u]})
				}
			}
		}
		side[v] = to
		w[to] += h.VertexWeight(v)
		cumGain += e.gain
		moves = append(moves, move{int32(v)})
		if cumGain > bestGain {
			bestGain = cumGain
			bestIdx = len(moves) - 1
		}
	}

	for i := len(moves) - 1; i > bestIdx; i-- {
		v := moves[i].v
		s := side[v]
		w[s] -= h.VertexWeight(int(v))
		side[v] = 1 - s
		w[side[v]] += h.VertexWeight(int(v))
	}
	return bestGain > 0
}
