package hypergraph

import (
	"math/rand"

	"sparseorder/internal/par"
)

// maxMatchNetSize bounds the net sizes considered during coarsening;
// very large nets (dense columns) carry little clustering information and
// would make matching quadratic, so they are skipped, as PaToH does.
const maxMatchNetSize = 64

// firstChoiceMatch pairs each vertex with the unmatched vertex it shares
// the most nets with (first-choice/heavy-connectivity matching). Returns
// match[v] (= v when unmatched) and the coarse vertex count.
func firstChoiceMatch(h *Hypergraph, rng *rand.Rand) ([]int32, int) {
	match := make([]int32, h.V)
	for i := range match {
		match[i] = -1
	}
	shared := make([]int32, h.V) // scratch: shared-net counts
	var touched []int32
	order := rng.Perm(h.V)
	nCoarse := 0
	for _, u := range order {
		if match[u] >= 0 {
			continue
		}
		touched = touched[:0]
		for _, n := range h.NetsOf(u) {
			pins := h.Pins(int(n))
			if len(pins) > maxMatchNetSize {
				continue
			}
			for _, v := range pins {
				if int(v) == u || match[v] >= 0 {
					continue
				}
				if shared[v] == 0 {
					touched = append(touched, v)
				}
				shared[v]++
			}
		}
		best := int32(-1)
		bestShared := int32(0)
		for _, v := range touched {
			if shared[v] > bestShared {
				bestShared = shared[v]
				best = v
			}
			shared[v] = 0
		}
		if best >= 0 {
			match[u] = best
			match[best] = int32(u)
		} else {
			match[u] = int32(u)
		}
		nCoarse++
	}
	return match, nCoarse
}

// contract builds the coarse hypergraph for a matching: matched pairs merge,
// net pins are relabelled and de-duplicated, and nets with fewer than two
// pins are dropped (they can never be cut).
func contract(h *Hypergraph, match []int32, nCoarse int) (*Hypergraph, []int32) {
	cmap := make([]int32, h.V)
	for i := range cmap {
		cmap[i] = -1
	}
	next := int32(0)
	for v := 0; v < h.V; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = next
		if m := match[v]; int(m) != v {
			cmap[m] = next
		}
		next++
	}

	coarse := &Hypergraph{V: nCoarse}
	coarse.VWgt = make([]int32, nCoarse)
	for v := 0; v < h.V; v++ {
		coarse.VWgt[cmap[v]] += int32(h.VertexWeight(v))
	}

	seen := make([]int32, nCoarse)
	for i := range seen {
		seen[i] = -1
	}
	var nptr []int
	var npins []int32
	nptr = append(nptr, 0)
	for n := 0; n < h.Nets; n++ {
		start := len(npins)
		for _, v := range h.Pins(n) {
			c := cmap[v]
			if seen[c] != int32(n) {
				seen[c] = int32(n)
				npins = append(npins, c)
			}
		}
		if len(npins)-start < 2 {
			npins = npins[:start] // single-pin net: drop
			continue
		}
		nptr = append(nptr, len(npins))
	}
	coarse.Nets = len(nptr) - 1
	coarse.NPtr = nptr
	coarse.NPins = npins
	coarse.BuildVertexIncidence()
	return coarse, cmap
}

// BuildVertexIncidence fills VPtr/VNets from NPtr/NPins; callers that
// assemble a hypergraph net-first use it to complete the structure.
func (h *Hypergraph) BuildVertexIncidence() {
	h.VPtr = make([]int, h.V+1)
	for _, v := range h.NPins {
		h.VPtr[v+1]++
	}
	for v := 0; v < h.V; v++ {
		h.VPtr[v+1] += h.VPtr[v]
	}
	h.VNets = make([]int32, len(h.NPins))
	next := make([]int, h.V)
	copy(next, h.VPtr[:h.V])
	for n := 0; n < h.Nets; n++ {
		for _, v := range h.Pins(n) {
			h.VNets[next[v]] = int32(n)
			next[v]++
		}
	}
}

type hlevel struct {
	fine   *Hypergraph
	coarse *Hypergraph
	cmap   []int32
}

// coarsen builds the multilevel hierarchy until coarseTo vertices remain or
// matching stagnates. done is polled once per level (nil never cancels).
func coarsen(h *Hypergraph, coarseTo int, rng *rand.Rand, done <-chan struct{}) []hlevel {
	var levels []hlevel
	cur := h
	for cur.V > coarseTo {
		if par.Canceled(done) {
			break // stop building levels; the caller unwinds at its next check
		}
		match, nCoarse := firstChoiceMatch(cur, rng)
		if float64(nCoarse) > 0.95*float64(cur.V) {
			break
		}
		coarse, cmap := contract(cur, match, nCoarse)
		levels = append(levels, hlevel{fine: cur, coarse: coarse, cmap: cmap})
		cur = coarse
	}
	return levels
}
