package hypergraph

import (
	"context"
	"fmt"
	"math/rand"

	"sparseorder/internal/par"
)

// KWayConnectivity partitions the hypergraph into k parts by recursive
// bisection under the connectivity-1 objective — PaToH's other metric
// (paper §3.3), which for the column-net model equals the communication
// volume of parallel SpMV. Unlike the cut-net recursion, a net cut by a
// bisection is not discarded: its pins on each side form a restricted net
// in the corresponding subproblem, because every additional part the net
// touches costs one more unit. Within a single bisection the two
// objectives coincide (a cut net spans exactly two parts), so the
// multilevel bisection engine is shared.
func KWayConnectivity(h *Hypergraph, k int, opts Options) ([]int32, int, error) {
	if k < 1 {
		return nil, 0, fmt.Errorf("hypergraph: k must be >= 1, got %d", k)
	}
	opts = opts.withDefaults()
	part := make([]int32, h.V)
	if k == 1 {
		return part, 0, nil
	}
	verts := make([]int32, h.V)
	for i := range verts {
		verts[i] = int32(i)
	}
	recursiveConn(h, verts, 0, k, part, opts, opts.Seed, par.NewLimiter(opts.Workers))
	if par.Canceled(opts.Cancel) {
		return nil, 0, context.Canceled
	}
	return part, ConnectivityMinusOne(h, part, k), nil
}

// KWayConnectivityCtx is KWayConnectivity driven by a context, mirroring
// KWayCtx: a cancelled or expired context aborts the partitioning promptly
// with the context's error instead of returning a partial assignment.
func KWayConnectivityCtx(ctx context.Context, h *Hypergraph, k int, opts Options) ([]int32, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	opts.Cancel = ctx.Done()
	part, cut, err := KWayConnectivity(h, k, opts)
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	return part, cut, err
}

// recursiveConn mirrors recursive (kway.go) under the connectivity-1
// subproblem rule: per-branch deterministic seeds, disjoint part writes,
// goroutines bounded by lim.
func recursiveConn(root *Hypergraph, verts []int32, firstPart, k int, part []int32, opts Options, seed int64, lim *par.Limiter) {
	if par.Canceled(opts.Cancel) {
		return
	}
	if k == 1 || len(verts) == 0 {
		for _, v := range verts {
			part[v] = int32(firstPart)
		}
		return
	}
	sub, orig := inducedSplit(root, verts)
	kLeft := (k + 1) / 2
	frac := float64(kLeft) / float64(k)
	side := Bisect(sub, frac, opts, rand.New(rand.NewSource(seed)))
	var left, right []int32
	for i, s := range side {
		if s == 0 {
			left = append(left, orig[i])
		} else {
			right = append(right, orig[i])
		}
	}
	for _, v := range left {
		part[v] = int32(firstPart)
	}
	for _, v := range right {
		part[v] = int32(firstPart + kLeft)
	}
	leftSeed := seed*2654435761 + 1
	rightSeed := seed*2654435761 + 2
	if lim != nil && len(verts) > forkMinVerts {
		lim.Fork(
			func() { recursiveConn(root, left, firstPart, kLeft, part, opts, leftSeed, lim) },
			func() { recursiveConn(root, right, firstPart+kLeft, k-kLeft, part, opts, rightSeed, lim) })
		return
	}
	recursiveConn(root, left, firstPart, kLeft, part, opts, leftSeed, lim)
	recursiveConn(root, right, firstPart+kLeft, k-kLeft, part, opts, rightSeed, lim)
}

// inducedSplit builds the sub-hypergraph on verts with net SPLITTING:
// every net is restricted to its pins inside verts and kept if at least
// two pins remain, regardless of whether it was already cut — the
// connectivity-1 recursion rule.
func inducedSplit(root *Hypergraph, verts []int32) (*Hypergraph, []int32) {
	local := make([]int32, root.V)
	for i := range local {
		local[i] = -1
	}
	for i, v := range verts {
		local[v] = int32(i)
	}
	sub := &Hypergraph{V: len(verts)}
	sub.VWgt = make([]int32, len(verts))
	for i, v := range verts {
		sub.VWgt[i] = int32(root.VertexWeight(int(v)))
	}
	netSeen := make(map[int32]bool)
	var nptr []int
	var npins []int32
	nptr = append(nptr, 0)
	for _, v := range verts {
		for _, n := range root.NetsOf(int(v)) {
			if netSeen[n] {
				continue
			}
			netSeen[n] = true
			start := len(npins)
			for _, u := range root.Pins(int(n)) {
				if local[u] >= 0 {
					npins = append(npins, local[u])
				}
			}
			if len(npins)-start < 2 {
				npins = npins[:start]
				continue
			}
			nptr = append(nptr, len(npins))
		}
	}
	sub.Nets = len(nptr) - 1
	sub.NPtr = nptr
	sub.NPins = npins
	sub.BuildVertexIncidence()
	orig := make([]int32, len(verts))
	copy(orig, verts)
	return sub, orig
}
