package hypergraph

import (
	"testing"

	"sparseorder/internal/gen"
)

func TestKWayConnectivityBlockDiagonal(t *testing.T) {
	a := blockMatrix(t, 4, 8)
	h := ColumnNet(a)
	part, conn, err := KWayConnectivity(h, 4, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if conn != 0 {
		t.Errorf("block-diagonal connectivity-1 = %d, want 0", conn)
	}
	if conn != ConnectivityMinusOne(h, part, 4) {
		t.Error("reported connectivity != recomputed")
	}
}

func TestKWayConnectivityGrid(t *testing.T) {
	a := gen.Grid2D(16, 16)
	h := ColumnNet(a)
	for _, k := range []int{2, 4, 8} {
		part, conn, err := KWayConnectivity(h, k, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if conn != ConnectivityMinusOne(h, part, k) {
			t.Fatalf("k=%d: reported %d != recomputed %d", k, conn, ConnectivityMinusOne(h, part, k))
		}
		counts := make([]int, k)
		for _, p := range part {
			if p < 0 || int(p) >= k {
				t.Fatalf("part %d out of range", p)
			}
			counts[p]++
		}
		for p, c := range counts {
			if c == 0 {
				t.Errorf("k=%d: part %d empty", k, p)
			}
		}
		// Connectivity-1 is bounded below by cut-net and above by (k-1)·nets.
		cut := CutNet(h, part)
		if conn < cut {
			t.Errorf("k=%d: connectivity %d below cut-net %d", k, conn, cut)
		}
	}
}

func TestKWayConnectivityK1AndErrors(t *testing.T) {
	h := ColumnNet(smallMatrix(t))
	_, conn, err := KWayConnectivity(h, 1, Options{})
	if err != nil || conn != 0 {
		t.Fatalf("k=1: conn=%d err=%v", conn, err)
	}
	if _, _, err := KWayConnectivity(h, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
}

// TestConnectivityVsCutNetObjective verifies the structural difference
// between the two recursions: on a matrix with a net spanning all blocks,
// the connectivity partitioner still pays once per extra part while the
// cut-net partitioner pays once in total. We only check both partitioners
// report their own metric consistently.
func TestConnectivityVsCutNetObjective(t *testing.T) {
	a := gen.WithDenseRows(gen.Grid2D(12, 12), 2, 0.8, 5)
	h := ColumnNet(a)
	_, cut, err := KWay(h, 4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, conn, err := KWayConnectivity(h, 4, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cut <= 0 || conn <= 0 {
		t.Errorf("expected nonzero objectives, got cut=%d conn=%d", cut, conn)
	}
}
