// Package hypergraph implements a multilevel hypergraph partitioner in the
// style of PaToH, specialised to the configuration the study uses:
// column-net model, cut-net objective, recursive bisection to k parts,
// first-choice coarsening and FM refinement.
package hypergraph

import (
	"fmt"

	"sparseorder/internal/sparse"
)

// Hypergraph stores vertices and nets (hyperedges) with both incidence
// directions in CSR-like form: VPtr/VNets lists the nets of each vertex and
// NPtr/NPins lists the pins (vertices) of each net.
type Hypergraph struct {
	V     int
	Nets  int
	VPtr  []int
	VNets []int32
	NPtr  []int
	NPins []int32
	VWgt  []int32 // nil means unit weights
}

// Pins returns the vertices of net n.
func (h *Hypergraph) Pins(n int) []int32 { return h.NPins[h.NPtr[n]:h.NPtr[n+1]] }

// NetsOf returns the nets incident to vertex v.
func (h *Hypergraph) NetsOf(v int) []int32 { return h.VNets[h.VPtr[v]:h.VPtr[v+1]] }

// VertexWeight returns the weight of v (1 when unweighted).
func (h *Hypergraph) VertexWeight(v int) int {
	if h.VWgt == nil {
		return 1
	}
	return int(h.VWgt[v])
}

// TotalVertexWeight returns the sum of vertex weights.
func (h *Hypergraph) TotalVertexWeight() int {
	if h.VWgt == nil {
		return h.V
	}
	t := 0
	for _, w := range h.VWgt {
		t += int(w)
	}
	return t
}

// Validate checks that both incidence directions agree.
func (h *Hypergraph) Validate() error {
	if len(h.VPtr) != h.V+1 || len(h.NPtr) != h.Nets+1 {
		return fmt.Errorf("hypergraph: pointer array lengths inconsistent")
	}
	if len(h.VNets) != len(h.NPins) {
		return fmt.Errorf("hypergraph: pin count mismatch %d vs %d", len(h.VNets), len(h.NPins))
	}
	type pin struct{ v, n int32 }
	seen := make(map[pin]bool, len(h.NPins))
	for n := 0; n < h.Nets; n++ {
		for _, v := range h.Pins(n) {
			if v < 0 || int(v) >= h.V {
				return fmt.Errorf("hypergraph: pin %d of net %d out of range", v, n)
			}
			seen[pin{v, int32(n)}] = true
		}
	}
	for v := 0; v < h.V; v++ {
		for _, n := range h.NetsOf(v) {
			if n < 0 || int(n) >= h.Nets {
				return fmt.Errorf("hypergraph: net %d of vertex %d out of range", n, v)
			}
			if !seen[pin{int32(v), n}] {
				return fmt.Errorf("hypergraph: vertex %d lists net %d but net lacks the pin", v, n)
			}
			delete(seen, pin{int32(v), n})
		}
	}
	if len(seen) != 0 {
		return fmt.Errorf("hypergraph: %d pins missing from vertex lists", len(seen))
	}
	return nil
}

// ColumnNet builds the column-net hypergraph of a sparse matrix: one vertex
// per row, one net per column, and a pin (i, j) for every nonzero a_ij.
// This is the model the paper uses with PaToH.
func ColumnNet(a *sparse.CSR) *Hypergraph {
	h := &Hypergraph{
		V:     a.Rows,
		Nets:  a.Cols,
		VPtr:  make([]int, a.Rows+1),
		VNets: make([]int32, a.NNZ()),
		NPtr:  make([]int, a.Cols+1),
		NPins: make([]int32, a.NNZ()),
	}
	copy(h.VPtr, a.RowPtr)
	copy(h.VNets, a.ColIdx)
	for _, j := range a.ColIdx {
		h.NPtr[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		h.NPtr[j+1] += h.NPtr[j]
	}
	next := make([]int, a.Cols)
	copy(next, h.NPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			h.NPins[next[j]] = int32(i)
			next[j]++
		}
	}
	return h
}

// CutNet returns the cut-net metric: the number of nets whose pins span
// more than one part.
func CutNet(h *Hypergraph, part []int32) int {
	cut := 0
	for n := 0; n < h.Nets; n++ {
		pins := h.Pins(n)
		if len(pins) == 0 {
			continue
		}
		first := part[pins[0]]
		for _, v := range pins[1:] {
			if part[v] != first {
				cut++
				break
			}
		}
	}
	return cut
}

// ConnectivityMinusOne returns the connectivity-1 metric: the sum over nets
// of (number of parts spanned - 1). For the column-net model this equals
// the communication volume of parallel SpMV.
func ConnectivityMinusOne(h *Hypergraph, part []int32, k int) int {
	mark := make([]int, k)
	for i := range mark {
		mark[i] = -1
	}
	total := 0
	for n := 0; n < h.Nets; n++ {
		spanned := 0
		for _, v := range h.Pins(n) {
			p := part[v]
			if mark[p] != n {
				mark[p] = n
				spanned++
			}
		}
		if spanned > 1 {
			total += spanned - 1
		}
	}
	return total
}
