package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparseorder/internal/gen"
	"sparseorder/internal/sparse"
)

func smallMatrix(t *testing.T) *sparse.CSR {
	t.Helper()
	// 4x3:
	// [x . x]
	// [x x .]
	// [. x .]
	// [. . x]
	coo := sparse.NewCOO(4, 3, 6)
	coo.Append(0, 0, 1)
	coo.Append(0, 2, 1)
	coo.Append(1, 0, 1)
	coo.Append(1, 1, 1)
	coo.Append(2, 1, 1)
	coo.Append(3, 2, 1)
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestColumnNet(t *testing.T) {
	h := ColumnNet(smallMatrix(t))
	if h.V != 4 || h.Nets != 3 {
		t.Fatalf("V=%d Nets=%d", h.V, h.Nets)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Net 0 (column 0) pins rows 0 and 1.
	pins := h.Pins(0)
	if len(pins) != 2 || pins[0] != 0 || pins[1] != 1 {
		t.Errorf("net 0 pins = %v", pins)
	}
	// Vertex 0 (row 0) is in nets 0 and 2.
	nets := h.NetsOf(0)
	if len(nets) != 2 || nets[0] != 0 || nets[1] != 2 {
		t.Errorf("vertex 0 nets = %v", nets)
	}
}

func TestCutNet(t *testing.T) {
	h := ColumnNet(smallMatrix(t))
	// Rows {0,1} vs {2,3}: net0 internal, net1 cut (pins 1,2), net2 cut (0,3).
	part := []int32{0, 0, 1, 1}
	if c := CutNet(h, part); c != 2 {
		t.Errorf("CutNet = %d, want 2", c)
	}
	// All together: nothing cut.
	if c := CutNet(h, []int32{0, 0, 0, 0}); c != 0 {
		t.Errorf("CutNet single part = %d, want 0", c)
	}
}

func TestConnectivityMinusOne(t *testing.T) {
	h := ColumnNet(smallMatrix(t))
	part := []int32{0, 1, 2, 0}
	// net0 pins {0,1}: parts {0,1} -> 1; net1 pins {1,2}: parts {1,2} -> 1;
	// net2 pins {0,3}: parts {0,0} -> 0.
	if c := ConnectivityMinusOne(h, part, 3); c != 2 {
		t.Errorf("ConnectivityMinusOne = %d, want 2", c)
	}
}

// blockMatrix builds a block-diagonal pattern with `blocks` dense blocks of
// size bs; the ideal k=blocks partition cuts zero nets.
func blockMatrix(t *testing.T, blocks, bs int) *sparse.CSR {
	t.Helper()
	n := blocks * bs
	coo := sparse.NewCOO(n, n, n*bs)
	for b := 0; b < blocks; b++ {
		for i := 0; i < bs; i++ {
			for j := 0; j < bs; j++ {
				coo.Append(b*bs+i, b*bs+j, 1)
			}
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestKWayBlockDiagonalZeroCut(t *testing.T) {
	a := blockMatrix(t, 4, 8)
	h := ColumnNet(a)
	part, cut, err := KWay(h, 4, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cut != 0 {
		t.Errorf("block-diagonal cut = %d, want 0", cut)
	}
	if cut != CutNet(h, part) {
		t.Errorf("reported cut %d != recomputed %d", cut, CutNet(h, part))
	}
	// All rows of a block must share a part.
	for b := 0; b < 4; b++ {
		first := part[b*8]
		for i := 1; i < 8; i++ {
			if part[b*8+i] != first {
				t.Errorf("block %d split across parts", b)
			}
		}
	}
}

func TestKWayBalanceOnGrid(t *testing.T) {
	a := gen.Grid2D(20, 20)
	h := ColumnNet(a)
	for _, k := range []int{2, 4, 8} {
		part, cut, err := KWay(h, k, Options{Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, k)
		for _, p := range part {
			if p < 0 || int(p) >= k {
				t.Fatalf("part id %d out of range", p)
			}
			counts[p]++
		}
		avg := float64(h.V) / float64(k)
		for p, c := range counts {
			if c == 0 {
				t.Errorf("k=%d: part %d empty", k, p)
			}
			if float64(c) > 1.4*avg {
				t.Errorf("k=%d: part %d has %d of %d vertices", k, p, c, h.V)
			}
		}
		if cut <= 0 || cut >= h.Nets {
			t.Errorf("k=%d: cut %d outside (0, %d)", k, cut, h.Nets)
		}
	}
}

func TestKWayK1AndErrors(t *testing.T) {
	h := ColumnNet(smallMatrix(t))
	part, cut, err := KWay(h, 1, Options{})
	if err != nil || cut != 0 {
		t.Fatalf("k=1: cut=%d err=%v", cut, err)
	}
	for _, p := range part {
		if p != 0 {
			t.Error("k=1 must assign part 0")
		}
	}
	if _, _, err := KWay(h, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKWayQuickValidAssignment(t *testing.T) {
	a := gen.Grid2D(8, 8)
	h := ColumnNet(a)
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%6) + 1
		part, cut, err := KWay(h, k, Options{Seed: seed})
		if err != nil || len(part) != h.V {
			return false
		}
		return cut == CutNet(h, part)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestContractDropsSmallNets(t *testing.T) {
	h := ColumnNet(smallMatrix(t))
	// Match rows 0&1 (share net 0) -> net 0 becomes single-pin and is dropped.
	match := []int32{1, 0, 2, 3}
	coarse, cmap := contract(h, match, 3)
	if coarse.V != 3 {
		t.Fatalf("coarse.V = %d", coarse.V)
	}
	if err := coarse.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cmap[0] != cmap[1] {
		t.Error("matched pair mapped apart")
	}
	for n := 0; n < coarse.Nets; n++ {
		if len(coarse.Pins(n)) < 2 {
			t.Errorf("net %d kept with %d pins", n, len(coarse.Pins(n)))
		}
	}
	// Vertex weights sum preserved.
	totalW := 0
	for v := 0; v < coarse.V; v++ {
		totalW += coarse.VertexWeight(v)
	}
	if totalW != h.V {
		t.Errorf("total weight %d, want %d", totalW, h.V)
	}
}

func TestFirstChoiceMatchIsMatching(t *testing.T) {
	h := ColumnNet(gen.Grid2D(10, 10))
	rng := rand.New(rand.NewSource(3))
	match, nCoarse := firstChoiceMatch(h, rng)
	pairs := 0
	for v := 0; v < h.V; v++ {
		m := int(match[v])
		if int(match[m]) != v {
			t.Fatalf("matching not symmetric at %d", v)
		}
		if m != v {
			pairs++
		}
	}
	if nCoarse != h.V-pairs/2 {
		t.Errorf("nCoarse = %d, want %d", nCoarse, h.V-pairs/2)
	}
}

func TestBisectBalanced(t *testing.T) {
	h := ColumnNet(gen.Grid2D(16, 16))
	rng := rand.New(rand.NewSource(4))
	side := Bisect(h, 0.5, Options{Seed: 4}, rng)
	w := [2]int{}
	for _, s := range side {
		w[s]++
	}
	if w[0] == 0 || w[1] == 0 {
		t.Fatalf("degenerate bisection %v", w)
	}
	total := w[0] + w[1]
	if w[0] > total*2/3 || w[1] > total*2/3 {
		t.Errorf("bisection weights %v too skewed", w)
	}
}
