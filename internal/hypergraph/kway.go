package hypergraph

import (
	"context"
	"fmt"
	"math/rand"

	"sparseorder/internal/par"
)

// KWay partitions the hypergraph into k parts by recursive bisection under
// the cut-net objective. Following the standard recursive scheme for the
// cut-net metric, nets cut by a bisection are already paid for and are
// excluded from the subproblems. Returns the part of each vertex and the
// final cut-net value.
func KWay(h *Hypergraph, k int, opts Options) ([]int32, int, error) {
	if k < 1 {
		return nil, 0, fmt.Errorf("hypergraph: k must be >= 1, got %d", k)
	}
	opts = opts.withDefaults()
	part := make([]int32, h.V)
	if k == 1 {
		return part, 0, nil
	}
	verts := make([]int32, h.V)
	for i := range verts {
		verts[i] = int32(i)
	}
	recursive(h, verts, 0, k, part, opts, opts.Seed, par.NewLimiter(opts.Workers))
	if par.Canceled(opts.Cancel) {
		return nil, 0, context.Canceled
	}
	return part, CutNet(h, part), nil
}

// KWayCtx is KWay driven by a context: the context's done channel is
// threaded into every coarsening level, bisection trial and refinement pass
// (via Options.Cancel), and a cancelled or expired context aborts the
// partitioning promptly with the context's error instead of returning a
// partial assignment.
func KWayCtx(ctx context.Context, h *Hypergraph, k int, opts Options) ([]int32, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	opts.Cancel = ctx.Done()
	part, cut, err := KWay(h, k, opts)
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	return part, cut, err
}

// forkMinVerts is the branch size below which the recursive bisections
// stop forking and recurse inline.
const forkMinVerts = 4096

// recursive splits verts into parts firstPart … firstPart+k-1. Each
// branch derives its own RNG seed (the same multiplicative derivation as
// internal/partition), so the serial and parallel executions produce
// identical partitions; the two branches write disjoint entries of part,
// and lim bounds the live goroutines to the configured worker count.
func recursive(root *Hypergraph, verts []int32, firstPart, k int, part []int32, opts Options, seed int64, lim *par.Limiter) {
	if par.Canceled(opts.Cancel) {
		return
	}
	if k == 1 || len(verts) == 0 {
		for _, v := range verts {
			part[v] = int32(firstPart)
		}
		return
	}
	sub, orig := induced(root, verts)
	kLeft := (k + 1) / 2
	frac := float64(kLeft) / float64(k)
	side := Bisect(sub, frac, opts, rand.New(rand.NewSource(seed)))
	var left, right []int32
	for i, s := range side {
		if s == 0 {
			left = append(left, orig[i])
		} else {
			right = append(right, orig[i])
		}
	}
	// Record the split so that induced() at deeper levels can identify nets
	// already cut at this level (pins spanning both children).
	for _, v := range left {
		part[v] = int32(firstPart)
	}
	for _, v := range right {
		part[v] = int32(firstPart + kLeft)
	}
	leftSeed := seed*2654435761 + 1
	rightSeed := seed*2654435761 + 2
	if lim != nil && len(verts) > forkMinVerts {
		lim.Fork(
			func() { recursive(root, left, firstPart, kLeft, part, opts, leftSeed, lim) },
			func() { recursive(root, right, firstPart+kLeft, k-kLeft, part, opts, rightSeed, lim) })
		return
	}
	recursive(root, left, firstPart, kLeft, part, opts, leftSeed, lim)
	recursive(root, right, firstPart+kLeft, k-kLeft, part, opts, rightSeed, lim)
}

// induced builds the sub-hypergraph on verts. Nets of the root hypergraph
// are restricted to pins within verts; nets that already have a pin outside
// the current vertex set (i.e. were cut by an earlier bisection) are
// dropped, implementing the cut-net exclusion rule. Nets left with fewer
// than two pins are dropped as well.
func induced(root *Hypergraph, verts []int32) (*Hypergraph, []int32) {
	local := make([]int32, root.V)
	for i := range local {
		local[i] = -1
	}
	for i, v := range verts {
		local[v] = int32(i)
	}
	sub := &Hypergraph{V: len(verts)}
	sub.VWgt = make([]int32, len(verts))
	for i, v := range verts {
		sub.VWgt[i] = int32(root.VertexWeight(int(v)))
	}
	netSeen := make(map[int32]bool)
	var nptr []int
	var npins []int32
	nptr = append(nptr, 0)
	for _, v := range verts {
		for _, n := range root.NetsOf(int(v)) {
			if netSeen[n] {
				continue
			}
			netSeen[n] = true
			pins := root.Pins(int(n))
			start := len(npins)
			outside := false
			for _, u := range pins {
				if local[u] < 0 {
					outside = true
					break
				}
				npins = append(npins, local[u])
			}
			if outside || len(npins)-start < 2 {
				npins = npins[:start]
				continue
			}
			nptr = append(nptr, len(npins))
		}
	}
	sub.Nets = len(nptr) - 1
	sub.NPtr = nptr
	sub.NPins = npins
	sub.BuildVertexIncidence()
	orig := make([]int32, len(verts))
	copy(orig, verts)
	return sub, orig
}
