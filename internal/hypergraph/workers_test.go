package hypergraph

import (
	"testing"

	"sparseorder/internal/gen"
)

// TestKWayWorkersByteIdentical checks the parallel recursive bisection's
// determinism contract above the fork threshold (5184 vertices >
// forkMinVerts): the part assignment and cut of both objectives must be
// byte-identical at every worker count. Run under -race in CI this also
// exercises the forked branches for data races.
func TestKWayWorkersByteIdentical(t *testing.T) {
	h := ColumnNet(gen.Scramble(gen.Grid2D(72, 72), 5))
	if h.V <= forkMinVerts {
		t.Fatalf("test hypergraph has %d vertices, need > %d to fork", h.V, forkMinVerts)
	}
	type kway func(*Hypergraph, int, Options) ([]int32, int, error)
	for name, fn := range map[string]kway{"cutnet": KWay, "connectivity": KWayConnectivity} {
		want, cutS, err := fn(h, 8, Options{Seed: 4, Workers: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		for _, w := range []int{2, 4, 7, 0} {
			got, cut, err := fn(h, 8, Options{Seed: 4, Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if cut != cutS {
				t.Fatalf("%s workers=%d: cut %d != serial %d", name, w, cut, cutS)
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s workers=%d: partition differs from serial at vertex %d", name, w, v)
				}
			}
		}
	}
}
