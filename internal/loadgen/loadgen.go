// Package loadgen drives the serving daemon with open-loop,
// zipf-distributed traffic and reports client-observed tail latency
// cross-checked against the server's own histograms.
//
// The generator is open-loop: arrivals fire on a fixed schedule derived
// from the target rate, independent of completions, so a slow server
// accumulates queueing delay instead of silently throttling the offered
// load (the coordinated-omission trap of closed-loop generators). Matrix
// popularity follows a zipf distribution over a synthetic corpus uploaded
// at startup — a few hot plans that should live in cache and a long cold
// tail that churns it, the access pattern the serving cache was built for.
//
// After the run the generator scrapes /metrics twice (before and after
// the burst, diffing the cumulative histograms) and checks the server's
// view against its own: request counts must match exactly, and each
// client-side quantile must be no smaller than the lower edge of the
// server histogram bucket holding that quantile — client latency includes
// the network hop, so it can only exceed the server's measurement.
package loadgen

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sparseorder/internal/gen"
	"sparseorder/internal/obs"
	"sparseorder/internal/sparse"
)

// Config parameterizes one load-generation run.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8080".
	BaseURL string
	// Matrices is the corpus size (distinct matrices uploaded, then
	// selected by zipf rank). Default 8.
	Matrices int
	// Rows scales corpus matrix dimensions. Default 600.
	Rows int
	// Rate is the offered load in requests/second. Default 50.
	Rate float64
	// Duration is the SpMV burst length. Default 5s.
	Duration time.Duration
	// ZipfS is the zipf skew exponent (must be > 1; larger = hotter
	// head). Default 1.3.
	ZipfS float64
	// Seed fixes the corpus and the arrival/key sequence.
	Seed int64
	// MaxInFlight caps concurrent outstanding requests; open-loop
	// arrivals beyond the cap are counted as dropped rather than
	// launched, bounding generator memory when the server stalls.
	// Default 4x NumCPU, minimum 64.
	MaxInFlight int
	// Retries is how many times a 429/503 response is retried before it
	// counts as the request's outcome, honoring the server's Retry-After
	// hint with capped exponential backoff and deterministic jitter.
	// Sheds are the daemon working as designed, not client failures.
	// Default 3; negative disables retries.
	Retries int
	// RetryCap bounds a single backoff wait. Default 2s.
	RetryCap time.Duration
	// Client overrides the HTTP client (tests inject the httptest one).
	Client *http.Client
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Matrices <= 0 {
		c.Matrices = 8
	}
	if c.Rows <= 0 {
		c.Rows = 600
	}
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Report is the run's SLO summary, JSON-encodable for CI assertions.
type Report struct {
	Target     string   `json:"target"`
	Matrices   int      `json:"matrices"`
	RateRPS    float64  `json:"rate_rps"`
	DurationS  float64  `json:"duration_s"`
	ZipfS      float64  `json:"zipf_s"`
	Seed       int64    `json:"seed"`
	OfferedRPS float64  `json:"offered_rps"` // arrivals fired / duration
	Dropped    int64    `json:"dropped"`     // arrivals shed by MaxInFlight
	// RetriesTotal is the count of extra attempts issued after 429/503
	// responses across all routes.
	RetriesTotal int64    `json:"retries_total"`
	CrossCheck   bool     `json:"cross_check"` // server histograms agree
	Problems     []string `json:"problems,omitempty"`

	Routes []RouteReport `json:"routes"`
}

// RouteReport is one route's client-observed latency distribution plus
// the server-side view scraped from /metrics.
type RouteReport struct {
	Route    string           `json:"route"`
	Requests int64            `json:"requests"` // HTTP attempts, retries included
	Codes    map[string]int64 `json:"codes"`    // status code -> count
	Failures int64            `json:"failures"` // transport errors (no response)

	// Retries counts extra attempts after 429/503; Retried counts logical
	// requests that needed at least one.
	Retries int64 `json:"retries"`
	Retried int64 `json:"retried_requests"`

	// Client-observed seconds, per attempt (what the server also sees).
	P50  float64 `json:"p50_s"`
	P95  float64 `json:"p95_s"`
	P99  float64 `json:"p99_s"`
	Max  float64 `json:"max_s"`
	Mean float64 `json:"mean_s"`

	// Retry-amplified seconds, per logical request: first attempt start to
	// final response, backoff waits included — what a caller that retries
	// sheds actually waits. Identical to the per-attempt quantiles when
	// nothing retried.
	AmplifiedP50 float64 `json:"amplified_p50_s"`
	AmplifiedP95 float64 `json:"amplified_p95_s"`
	AmplifiedP99 float64 `json:"amplified_p99_s"`

	Server *ServerView `json:"server,omitempty"`
}

// ServerView is the server's own account of the run, reconstructed from
// the /metrics histogram delta between the pre- and post-run scrapes.
type ServerView struct {
	Requests uint64  `json:"requests"`
	P50      float64 `json:"p50_s"`
	P95      float64 `json:"p95_s"`
	P99      float64 `json:"p99_s"`
	Mean     float64 `json:"mean_s"`

	// Phases maps phase name -> mean seconds per request that passed
	// through it, from sparseorder_server_phase_seconds.
	Phases map[string]PhaseView `json:"phases,omitempty"`
}

// PhaseView is one phase's aggregate over the run.
type PhaseView struct {
	Count uint64  `json:"count"`
	MeanS float64 `json:"mean_s"`
}

// sample is one completed HTTP attempt observed by the client. Each retry
// is its own sample — the server's histograms also count every attempt,
// so the cross-check's exact count parity survives retries.
type sample struct {
	route   string
	seconds float64
	status  int // 0 = transport failure
}

// logicalSample is one logical request: its final status and the
// retry-amplified latency from first attempt start to final response.
type logicalSample struct {
	route   string
	seconds float64
	retries int
}

// Run executes a full load-generation pass: corpus build, uploads, the
// zipf SpMV burst, and the metrics cross-check.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg.fill()
	rep := &Report{
		Target:    cfg.BaseURL,
		Matrices:  cfg.Matrices,
		RateRPS:   cfg.Rate,
		DurationS: cfg.Duration.Seconds(),
		ZipfS:     cfg.ZipfS,
		Seed:      cfg.Seed,
	}

	cfg.Logf("building corpus: %d matrices (~%d rows each), seed %d", cfg.Matrices, cfg.Rows, cfg.Seed)
	corpus := buildCorpus(cfg.Matrices, cfg.Rows, cfg.Seed)

	before, err := scrape(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("loadgen: pre-run scrape: %w", err)
	}

	st := &runState{cfg: cfg, bodies: make(map[string][]byte)}

	cfg.Logf("uploading corpus")
	if err := st.upload(ctx, corpus); err != nil {
		return nil, err
	}

	cfg.Logf("zipf burst: %.0f req/s for %v (s=%.2f)", cfg.Rate, cfg.Duration, cfg.ZipfS)
	st.burst(ctx, corpus)

	after, err := scrape(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("loadgen: post-run scrape: %w", err)
	}

	rep.Dropped = st.dropped
	if d := cfg.Duration.Seconds(); d > 0 {
		rep.OfferedRPS = float64(st.launched) / d
	}
	rep.Problems = st.problems
	st.summarize(rep, before, after)
	return rep, nil
}

// matrixSpec is one corpus entry.
type matrixSpec struct {
	name string
	mm   []byte // Matrix Market body, uploaded verbatim
	x    []byte // pre-marshalled {"x":[...]} request body
	key  string // content-hash key returned by the upload
	rows int
}

// buildCorpus generates a deterministic mixed corpus: banded (the
// cache-friendly case), 2-D grids (the mesh case), and R-MAT power-law
// graphs (the skewed case the orderings struggle with). Rank 0 — the zipf
// head — is the cheapest banded matrix so the hot path exercises cache
// hits rather than dominating runtime.
func buildCorpus(n, rows int, seed int64) []*matrixSpec {
	specs := make([]*matrixSpec, 0, n)
	for i := 0; i < n; i++ {
		var (
			a    *sparse.CSR
			name string
		)
		switch i % 3 {
		case 0:
			a = gen.Banded(rows+i*7, 4, 0.9, seed+int64(i))
			name = fmt.Sprintf("banded-%d", i)
		case 1:
			side := intSqrt(rows + i*11)
			a = gen.Grid2D(side, side)
			name = fmt.Sprintf("grid-%d", i)
		default:
			scale := log2Floor(rows)
			a = gen.RMAT(scale, 4, seed+int64(i))
			name = fmt.Sprintf("rmat-%d", i)
		}
		var mm bytes.Buffer
		if err := sparse.WriteMatrixMarket(&mm, a); err != nil {
			// Generators produce valid CSR and the writer only fails on I/O;
			// a bytes.Buffer cannot.
			panic(err)
		}
		x := make([]float64, a.Rows)
		rng := rand.New(rand.NewSource(seed ^ int64(i)*0x9e3779b9))
		for j := range x {
			x[j] = rng.Float64()*2 - 1
		}
		body, err := json.Marshal(struct {
			X []float64 `json:"x"`
		}{X: x})
		if err != nil {
			panic(err)
		}
		specs = append(specs, &matrixSpec{name: name, mm: mm.Bytes(), x: body, rows: a.Rows})
	}
	return specs
}

func intSqrt(n int) int {
	r := int(math.Sqrt(float64(n)))
	if r < 2 {
		r = 2
	}
	return r
}

func log2Floor(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	if l < 4 {
		l = 4
	}
	return l
}

// runState accumulates one run's client-side observations.
type runState struct {
	cfg Config

	mu       sync.Mutex
	samples  []sample
	logical  []logicalSample
	bodies   map[string][]byte // matrix key -> first successful y-body hash
	problems []string

	launched   int64
	dropped    int64
	reqSeq     uint64
	logicalSeq uint64
}

func (st *runState) problemf(format string, args ...any) {
	st.mu.Lock()
	if len(st.problems) < 32 {
		st.problems = append(st.problems, fmt.Sprintf(format, args...))
	}
	st.mu.Unlock()
}

func (st *runState) record(s sample) {
	st.mu.Lock()
	st.samples = append(st.samples, s)
	st.mu.Unlock()
}

// nextID mints a client-chosen request id so the echo contract is
// exercised on every request.
func (st *runState) nextID() string {
	st.mu.Lock()
	st.reqSeq++
	n := st.reqSeq
	st.mu.Unlock()
	return fmt.Sprintf("lg-%d-%d", st.cfg.Seed, n)
}

// do issues one HTTP attempt, records the client-observed latency sample,
// and verifies the X-Request-Id echo. Returns the status, the response
// body (nil on transport failure) and the parsed Retry-After hint, if the
// server sent one.
func (st *runState) do(ctx context.Context, route, method, url string, body []byte) (int, []byte, time.Duration) {
	req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
	if err != nil {
		st.problemf("%s: build request: %v", route, err)
		return 0, nil, 0
	}
	id := st.nextID()
	req.Header.Set(obs.RequestIDHeader, id)
	t0 := time.Now()
	resp, err := st.cfg.Client.Do(req)
	sec := time.Since(t0).Seconds()
	if err != nil {
		st.record(sample{route: route, seconds: sec, status: 0})
		if ctx.Err() == nil {
			st.problemf("%s: %v", route, err)
		}
		return 0, nil, 0
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// Latency includes reading the body: that is what a client experiences.
	sec = time.Since(t0).Seconds()
	st.record(sample{route: route, seconds: sec, status: resp.StatusCode})
	if got := resp.Header.Get(obs.RequestIDHeader); got != id {
		st.problemf("%s: request id not echoed: sent %q got %q", route, id, got)
	}
	var retryAfter time.Duration
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, payload, retryAfter
}

// retryBase is the first backoff step; each retry doubles it up to
// Config.RetryCap.
const retryBase = 100 * time.Millisecond

// doRetry issues one logical request, retrying 429/503 responses — the
// daemon shedding load as designed — up to cfg.Retries times. The wait
// before each retry honors the server's Retry-After hint, never sleeping
// less than it, under capped exponential backoff plus deterministic
// jitter (a pure function of seed, request sequence and attempt, so two
// runs with one seed replay byte-identical schedules and concurrent
// retriers still decorrelate). Every attempt is recorded as its own
// latency sample; the logical request's amplified latency — first attempt
// start to final response, waits included — is recorded separately.
func (st *runState) doRetry(ctx context.Context, route, method, url string, body []byte) (int, []byte) {
	t0 := time.Now()
	seq := st.seqFor(route)
	var status int
	var payload []byte
	retries := 0
	for {
		var ra time.Duration
		status, payload, ra = st.do(ctx, route, method, url, body)
		if (status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable) ||
			retries >= st.cfg.Retries || ctx.Err() != nil {
			break
		}
		retries++
		wait := retryBase << (retries - 1)
		if wait > st.cfg.RetryCap {
			wait = st.cfg.RetryCap
		}
		if ra > wait {
			wait = ra
			if wait > st.cfg.RetryCap {
				wait = st.cfg.RetryCap
			}
		}
		// Up to +25% deterministic jitter so synchronized sheds don't
		// retry in lockstep.
		wait += time.Duration(jitterFrac(st.cfg.Seed, seq, retries) * float64(wait) * 0.25)
		select {
		case <-ctx.Done():
			return status, payload
		case <-time.After(wait):
		}
	}
	st.mu.Lock()
	st.logical = append(st.logical, logicalSample{
		route: route, seconds: time.Since(t0).Seconds(), retries: retries,
	})
	st.mu.Unlock()
	return status, payload
}

// seqFor returns a per-logical-request sequence number for jitter
// derivation, without consuming a request id.
func (st *runState) seqFor(string) uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.logicalSeq++
	return st.logicalSeq
}

// jitterFrac maps (seed, seq, attempt) to [0, 1) with a splitmix64 round:
// deterministic for replay, decorrelated across requests and attempts.
func jitterFrac(seed int64, seq uint64, attempt int) float64 {
	z := uint64(seed) ^ (seq * 0x9e3779b97f4a7c15) ^ (uint64(attempt) << 32)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// upload pushes the whole corpus (a few at a time) and records each
// matrix's content-hash key.
func (st *runState) upload(ctx context.Context, corpus []*matrixSpec) error {
	workers := 4
	if workers > len(corpus) {
		workers = len(corpus)
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, spec := range corpus {
		wg.Add(1)
		sem <- struct{}{}
		go func(spec *matrixSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			status, body := st.doRetry(ctx, "upload", http.MethodPost, st.cfg.BaseURL+"/matrices", spec.mm)
			if status != http.StatusOK {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("loadgen: upload %s: status %d: %s", spec.name, status, truncate(body, 200))
				}
				mu.Unlock()
				return
			}
			var ur struct {
				Key string `json:"key"`
			}
			if err := json.Unmarshal(body, &ur); err != nil || ur.Key == "" {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("loadgen: upload %s: bad response %s", spec.name, truncate(body, 200))
				}
				mu.Unlock()
				return
			}
			spec.key = ur.Key
		}(spec)
	}
	wg.Wait()
	return firstErr
}

// burst runs the open-loop SpMV phase: arrivals fire whenever the wall
// clock says they are due (catching up in batches if the scheduler falls
// behind), each selecting a matrix by zipf rank. Responses for the same
// matrix must be byte-identical — the first success pins the expected
// digest and later divergence is reported.
func (st *runState) burst(ctx context.Context, corpus []*matrixSpec) {
	rng := rand.New(rand.NewSource(st.cfg.Seed))
	zipf := rand.NewZipf(rng, st.cfg.ZipfS, 1, uint64(len(corpus)-1))

	tick := time.Duration(float64(time.Second) / st.cfg.Rate)
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	sem := make(chan struct{}, st.cfg.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(st.cfg.Duration)

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case now := <-ticker.C:
			if now.After(deadline) {
				break loop
			}
			due := int64(now.Sub(start).Seconds() * st.cfg.Rate)
			for st.launched+st.dropped < due {
				spec := corpus[zipf.Uint64()]
				select {
				case sem <- struct{}{}:
				default:
					st.dropped++
					continue
				}
				st.launched++
				wg.Add(1)
				go func(spec *matrixSpec) {
					defer wg.Done()
					defer func() { <-sem }()
					st.spmv(ctx, spec)
				}(spec)
			}
		}
	}
	wg.Wait()
}

// spmv issues one multiply and checks cross-request determinism: every
// successful response for the same matrix must hash identically.
func (st *runState) spmv(ctx context.Context, spec *matrixSpec) {
	status, body := st.doRetry(ctx, "spmv", http.MethodPost, st.cfg.BaseURL+"/spmv/"+spec.key, spec.x)
	if status != http.StatusOK {
		return
	}
	sum := sha256.Sum256(body)
	st.mu.Lock()
	prev, seen := st.bodies[spec.key]
	if !seen {
		st.bodies[spec.key] = sum[:]
	}
	st.mu.Unlock()
	if seen && !bytes.Equal(prev, sum[:]) {
		st.problemf("spmv %s: response diverged across requests", spec.key)
	}
}

// scrape fetches and parses /metrics.
func scrape(ctx context.Context, cfg Config) ([]promSample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parsePromText(string(text))
}

// summarize folds client samples and the scrape delta into the report and
// runs the cross-check.
func (st *runState) summarize(rep *Report, before, after []promSample) {
	byRoute := map[string][]sample{}
	logicalByRoute := map[string][]logicalSample{}
	st.mu.Lock()
	for _, s := range st.samples {
		byRoute[s.route] = append(byRoute[s.route], s)
	}
	for _, s := range st.logical {
		logicalByRoute[s.route] = append(logicalByRoute[s.route], s)
	}
	st.mu.Unlock()

	rep.CrossCheck = true
	for _, route := range []string{"upload", "spmv"} {
		samples := byRoute[route]
		rr := RouteReport{Route: route, Codes: map[string]int64{}}
		var secs []float64
		var responded int64
		for _, s := range samples {
			rr.Requests++
			if s.status == 0 {
				rr.Failures++
				continue
			}
			responded++
			rr.Codes[strconv.Itoa(s.status)]++
			secs = append(secs, s.seconds)
		}
		sort.Float64s(secs)
		rr.P50 = sampleQuantile(secs, 0.50)
		rr.P95 = sampleQuantile(secs, 0.95)
		rr.P99 = sampleQuantile(secs, 0.99)
		if n := len(secs); n > 0 {
			rr.Max = secs[n-1]
			var sum float64
			for _, v := range secs {
				sum += v
			}
			rr.Mean = sum / float64(n)
		}

		var ampl []float64
		for _, ls := range logicalByRoute[route] {
			rr.Retries += int64(ls.retries)
			if ls.retries > 0 {
				rr.Retried++
			}
			ampl = append(ampl, ls.seconds)
		}
		sort.Float64s(ampl)
		rr.AmplifiedP50 = sampleQuantile(ampl, 0.50)
		rr.AmplifiedP95 = sampleQuantile(ampl, 0.95)
		rr.AmplifiedP99 = sampleQuantile(ampl, 0.99)
		rep.RetriesTotal += rr.Retries

		sv, ok := serverView(before, after, route)
		if ok {
			rr.Server = sv
			st.checkRoute(rep, &rr, before, after)
		} else if responded > 0 {
			rep.CrossCheck = false
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("%s: no %s series on /metrics", route, metricRequestSeconds))
		}
		rep.Routes = append(rep.Routes, rr)
	}
	if len(st.problems) > 0 {
		rep.CrossCheck = false
	}
}

// Metric family names scraped from the daemon; kept in sync with
// internal/server by the loadgen integration test.
const (
	metricRequestSeconds = "sparseorder_server_request_seconds"
	metricPhaseSeconds   = "sparseorder_server_phase_seconds"
)

// serverView reconstructs one route's server-side latency view from the
// scrape delta.
func serverView(before, after []promSample, route string) (*ServerView, bool) {
	want := map[string]string{"route": route}
	h1, ok := extractHist(after, metricRequestSeconds, want)
	if !ok {
		return nil, false
	}
	h0, _ := extractHist(before, metricRequestSeconds, want)
	h := h1.sub(h0)
	sv := &ServerView{Requests: h.count, Phases: map[string]PhaseView{}}
	sv.P50, _, _ = h.quantile(0.50)
	sv.P95, _, _ = h.quantile(0.95)
	sv.P99, _, _ = h.quantile(0.99)
	if h.count > 0 {
		sv.Mean = h.sum / float64(h.count)
	}
	for _, ph := range []string{"queue_wait", "governor_wait", "decode", "reorder", "plan_build", "spmv", "store_write"} {
		pw := map[string]string{"route": route, "phase": ph}
		p1, ok := extractHist(after, metricPhaseSeconds, pw)
		if !ok {
			continue
		}
		p0, _ := extractHist(before, metricPhaseSeconds, pw)
		pd := p1.sub(p0)
		if pd.count == 0 {
			continue
		}
		sv.Phases[ph] = PhaseView{Count: pd.count, MeanS: pd.sum / float64(pd.count)}
	}
	return sv, true
}

// checkRoute verifies the server's account against the client's:
// counts must match exactly (every response the client got corresponds to
// one finished request the server recorded), and each client quantile
// must be at least the lower edge of the server bucket holding the same
// quantile — the client pays the network on top of server time, so being
// below that bracket means the histograms and samples disagree.
func (st *runState) checkRoute(rep *Report, rr *RouteReport, before, after []promSample) {
	responded := rr.Requests - rr.Failures
	if int64(rr.Server.Requests) != responded {
		rep.CrossCheck = false
		rep.Problems = append(rep.Problems, fmt.Sprintf(
			"%s: server recorded %d requests, client received %d responses",
			rr.Route, rr.Server.Requests, responded))
	}
	want := map[string]string{"route": rr.Route}
	h1, _ := extractHist(after, metricRequestSeconds, want)
	h0, _ := extractHist(before, metricRequestSeconds, want)
	h := h1.sub(h0)
	for _, q := range []struct {
		q      float64
		client float64
	}{{0.50, rr.P50}, {0.95, rr.P95}, {0.99, rr.P99}} {
		if h.count == 0 {
			break
		}
		_, lo, _ := h.quantile(q.q)
		// 1ms slack absorbs timer granularity at the microsecond scale.
		if q.client+0.001 < lo {
			rep.CrossCheck = false
			rep.Problems = append(rep.Problems, fmt.Sprintf(
				"%s: client p%d %.6fs below server histogram lower bound %.6fs",
				rr.Route, int(q.q*100), q.client, lo))
		}
	}
}

// sampleQuantile returns the q-quantile of ascending sorted secs using
// the nearest-rank method.
func sampleQuantile(secs []float64, q float64) float64 {
	if len(secs) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(secs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(secs) {
		i = len(secs) - 1
	}
	return secs[i]
}

func truncate(b []byte, n int) string {
	s := strings.TrimSpace(string(b))
	if len(s) > n {
		return s[:n] + "..."
	}
	return s
}

// RenderText writes the human-readable report.
func (r *Report) RenderText(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %s  rate=%.0f/s dur=%.1fs zipf_s=%.2f corpus=%d seed=%d\n",
		r.Target, r.RateRPS, r.DurationS, r.ZipfS, r.Matrices, r.Seed)
	fmt.Fprintf(w, "offered %.1f req/s, %d dropped by in-flight cap, %d retries after sheds\n",
		r.OfferedRPS, r.Dropped, r.RetriesTotal)
	for _, rt := range r.Routes {
		fmt.Fprintf(w, "\n%-6s  %d requests (%d transport failures)\n", rt.Route, rt.Requests, rt.Failures)
		if rt.Retries > 0 {
			fmt.Fprintf(w, "        %d retries across %d requests; amplified p50 %8.3fms  p95 %8.3fms  p99 %8.3fms\n",
				rt.Retries, rt.Retried, rt.AmplifiedP50*1e3, rt.AmplifiedP95*1e3, rt.AmplifiedP99*1e3)
		}
		var codes []string
		for c, n := range rt.Codes {
			codes = append(codes, fmt.Sprintf("%s:%d", c, n))
		}
		sort.Strings(codes)
		if len(codes) > 0 {
			fmt.Fprintf(w, "        status %s\n", strings.Join(codes, " "))
		}
		fmt.Fprintf(w, "        client p50 %8.3fms  p95 %8.3fms  p99 %8.3fms  max %8.3fms\n",
			rt.P50*1e3, rt.P95*1e3, rt.P99*1e3, rt.Max*1e3)
		if sv := rt.Server; sv != nil {
			fmt.Fprintf(w, "        server p50 %8.3fms  p95 %8.3fms  p99 %8.3fms  (%d requests)\n",
				sv.P50*1e3, sv.P95*1e3, sv.P99*1e3, sv.Requests)
			var phases []string
			for name := range sv.Phases {
				phases = append(phases, name)
			}
			sort.Slice(phases, func(i, j int) bool {
				return sv.Phases[phases[i]].MeanS*float64(sv.Phases[phases[i]].Count) >
					sv.Phases[phases[j]].MeanS*float64(sv.Phases[phases[j]].Count)
			})
			for _, name := range phases {
				p := sv.Phases[name]
				fmt.Fprintf(w, "        phase %-13s mean %8.3fms  x%d\n", name, p.MeanS*1e3, p.Count)
			}
		}
	}
	if r.CrossCheck {
		fmt.Fprintf(w, "\ncross-check OK: server histograms agree with client observations\n")
	} else {
		fmt.Fprintf(w, "\ncross-check FAILED:\n")
		for _, p := range r.Problems {
			fmt.Fprintf(w, "  - %s\n", p)
		}
	}
}
