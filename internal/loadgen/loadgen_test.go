package loadgen

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparseorder/internal/obs"
	"sparseorder/internal/server"
)

func TestParsePromLine(t *testing.T) {
	cases := []struct {
		line   string
		name   string
		labels map[string]string
		value  float64
	}{
		{`foo 42`, "foo", map[string]string{}, 42},
		{`foo{a="b"} 1.5`, "foo", map[string]string{"a": "b"}, 1.5},
		{`h_bucket{route="spmv",le="+Inf"} 7`, "h_bucket",
			map[string]string{"route": "spmv", "le": "+Inf"}, 7},
		{`e{k="a\"b\\c\nd"} 0`, "e", map[string]string{"k": "a\"b\\c\nd"}, 0},
	}
	for _, tc := range cases {
		s, err := parsePromLine(tc.line)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.line, err)
		}
		if s.name != tc.name || s.value != tc.value {
			t.Errorf("%q: got (%q, %v), want (%q, %v)", tc.line, s.name, s.value, tc.name, tc.value)
		}
		for k, v := range tc.labels {
			if s.labels[k] != v {
				t.Errorf("%q: label %s = %q, want %q", tc.line, k, s.labels[k], v)
			}
		}
	}
	if _, err := parsePromLine("garbage"); err == nil {
		t.Error("expected error for line without value")
	}
	if _, err := parsePromLine(`x{a="unterminated 3`); err == nil {
		t.Error("expected error for unterminated label value")
	}
}

func TestExtractHistAndQuantile(t *testing.T) {
	text := `
# HELP h request latency
# TYPE h histogram
h_bucket{route="spmv",le="0.1"} 50
h_bucket{route="spmv",le="0.5"} 90
h_bucket{route="spmv",le="+Inf"} 100
h_sum{route="spmv"} 12.5
h_count{route="spmv"} 100
h_bucket{route="upload",le="0.1"} 1
h_bucket{route="upload",le="+Inf"} 1
h_sum{route="upload"} 0.05
h_count{route="upload"} 1
`
	samples, err := parsePromText(text)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := extractHist(samples, "h", map[string]string{"route": "spmv"})
	if !ok {
		t.Fatal("spmv histogram not found")
	}
	if h.count != 100 || h.sum != 12.5 {
		t.Fatalf("count=%d sum=%v, want 100, 12.5", h.count, h.sum)
	}
	// Median rank 50 lands exactly on the first bucket boundary.
	est, lo, hi := h.quantile(0.50)
	if lo != 0 || hi != 0.1 {
		t.Errorf("p50 bracket (%v, %v], want (0, 0.1]", lo, hi)
	}
	if est <= 0 || est > 0.1 {
		t.Errorf("p50 estimate %v outside (0, 0.1]", est)
	}
	// p95: rank 95 lands in (0.5, +Inf] -> estimate clamps to the lower
	// bound of the open bucket.
	est, lo, hi = h.quantile(0.95)
	if lo != 0.5 || !math.IsInf(hi, 1) || est != 0.5 {
		t.Errorf("p95 = (%v, %v, %v), want (0.5, 0.5, +Inf)", est, lo, hi)
	}
	if _, ok := extractHist(samples, "h", map[string]string{"route": "nope"}); ok {
		t.Error("found histogram for absent route")
	}
}

func TestHistSub(t *testing.T) {
	mk := func(c1, c2, c3, count uint64, sum float64) histSnapshot {
		return histSnapshot{
			bounds: []float64{0.1, 0.5, math.Inf(1)},
			cum:    []uint64{c1, c2, c3},
			count:  count, sum: sum,
		}
	}
	d := mk(50, 90, 100, 100, 12.5).sub(mk(10, 20, 25, 25, 2.5))
	if d.count != 75 || d.sum != 10 {
		t.Fatalf("delta count=%d sum=%v, want 75, 10", d.count, d.sum)
	}
	if d.cum[0] != 40 || d.cum[1] != 70 || d.cum[2] != 75 {
		t.Fatalf("delta cum = %v", d.cum)
	}
}

func TestSampleQuantile(t *testing.T) {
	secs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := sampleQuantile(secs, 0.50); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := sampleQuantile(secs, 0.99); got != 10 {
		t.Errorf("p99 = %v, want 10", got)
	}
	if got := sampleQuantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestBuildCorpusDeterministic(t *testing.T) {
	a := buildCorpus(6, 200, 7)
	b := buildCorpus(6, 200, 7)
	if len(a) != 6 {
		t.Fatalf("corpus size %d, want 6", len(a))
	}
	for i := range a {
		if string(a[i].mm) != string(b[i].mm) {
			t.Errorf("matrix %d (%s) not deterministic", i, a[i].name)
		}
		if string(a[i].x) != string(b[i].x) {
			t.Errorf("x vector %d not deterministic", i)
		}
	}
	// The three generator families all appear.
	names := make([]string, len(a))
	for i, s := range a {
		names[i] = s.name
	}
	joined := strings.Join(names, " ")
	for _, fam := range []string{"banded", "grid", "rmat"} {
		if !strings.Contains(joined, fam) {
			t.Errorf("corpus %v missing family %s", names, fam)
		}
	}
}

// TestRunAgainstServer is the end-to-end pass: a real server.Server behind
// httptest, a short zipf burst, and the full metrics cross-check. This is
// the test that keeps loadgen's scraped family names in sync with
// internal/server.
func TestRunAgainstServer(t *testing.T) {
	o := &obs.Obs{Metrics: obs.NewRegistry(), Requests: obs.NewTraceRing(64)}
	srv, err := server.New(server.Config{Threads: 1, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := Run(ctx, Config{
		BaseURL:  ts.URL,
		Matrices: 4,
		Rows:     150,
		Rate:     80,
		Duration: 1500 * time.Millisecond,
		ZipfS:    1.3,
		Seed:     42,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.CrossCheck {
		t.Fatalf("cross-check failed: %v", rep.Problems)
	}
	if len(rep.Routes) != 2 {
		t.Fatalf("got %d route reports, want 2", len(rep.Routes))
	}
	for _, rr := range rep.Routes {
		if rr.Requests == 0 {
			t.Errorf("route %s saw no requests", rr.Route)
		}
		if rr.Failures != 0 {
			t.Errorf("route %s: %d transport failures", rr.Route, rr.Failures)
		}
		if rr.Server == nil {
			t.Errorf("route %s: no server-side view", rr.Route)
			continue
		}
		if int64(rr.Server.Requests) != rr.Requests {
			t.Errorf("route %s: server %d != client %d", rr.Route, rr.Server.Requests, rr.Requests)
		}
		if len(rr.Server.Phases) == 0 {
			t.Errorf("route %s: no phase decomposition scraped", rr.Route)
		}
	}
	// The zipf burst must actually have exercised SpMV.
	var spmv *RouteReport
	for i := range rep.Routes {
		if rep.Routes[i].Route == "spmv" {
			spmv = &rep.Routes[i]
		}
	}
	if spmv == nil || spmv.Codes["200"] == 0 {
		t.Fatalf("no successful spmv requests: %+v", rep.Routes)
	}
	if _, ok := spmv.Server.Phases["spmv"]; !ok {
		t.Errorf("spmv route missing spmv phase: %v", spmv.Server.Phases)
	}

	// The report renders and round-trips as text without panicking.
	var sb strings.Builder
	rep.RenderText(&sb)
	if !strings.Contains(sb.String(), "cross-check OK") {
		t.Errorf("text report missing cross-check line:\n%s", sb.String())
	}
}

// TestRunDetectsMissingMetrics exercises the failure path: a server whose
// Obs has no metrics registry serves an empty /metrics document, so the
// cross-check must fail rather than silently pass.
func TestRunDetectsMissingMetrics(t *testing.T) {
	srv, err := server.New(server.Config{Threads: 1, Obs: &obs.Obs{}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := Run(ctx, Config{
		BaseURL:  ts.URL,
		Matrices: 2,
		Rows:     100,
		Rate:     40,
		Duration: 500 * time.Millisecond,
		Seed:     1,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CrossCheck {
		t.Fatal("cross-check passed against a metrics-less server")
	}
}
