package loadgen

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// promSample is one parsed Prometheus text-exposition line:
// name{labels} value.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText parses the subset of the Prometheus text format the
// sparseorder registry emits (no timestamps, no exemplars). Comment and
// blank lines are skipped; a malformed line is an error so a cross-check
// never silently reads garbage.
func parsePromText(text string) ([]promSample, error) {
	var out []promSample
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("loadgen: /metrics line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parsePromLine(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if rest[0] == '{' {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.labels = labels
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	v, err := parsePromValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.value = v
	return s, nil
}

// parseLabels parses a {k="v",…} block starting at text[0] == '{',
// returning the index just past the closing brace. Values may contain the
// exposition escapes \\, \" and \n.
func parseLabels(text string) (int, map[string]string, error) {
	labels := map[string]string{}
	i := 1
	for {
		if i >= len(text) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		if text[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(text[i:], '=')
		if eq < 0 || i+eq+1 >= len(text) || text[i+eq+1] != '"' {
			return 0, nil, fmt.Errorf("malformed label in %q", text)
		}
		key := text[i : i+eq]
		j := i + eq + 2 // first byte of the value
		var b strings.Builder
		for {
			if j >= len(text) {
				return 0, nil, fmt.Errorf("unterminated label value in %q", text)
			}
			c := text[j]
			if c == '\\' && j+1 < len(text) {
				switch text[j+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(c)
					b.WriteByte(text[j+1])
				}
				j += 2
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
			j++
		}
		labels[key] = b.String()
		j++ // past the closing quote
		if j < len(text) && text[j] == ',' {
			j++
		}
		i = j
	}
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// histSnapshot is one histogram series reconstructed from a scrape:
// cumulative bucket counts by upper bound, plus count and sum.
type histSnapshot struct {
	bounds []float64 // ascending; last is +Inf
	cum    []uint64  // cumulative counts, parallel to bounds
	count  uint64
	sum    float64
}

// matches reports whether labels carries every key/value in want
// (ignoring the bucket's le label).
func matches(labels, want map[string]string) bool {
	for k, v := range want {
		if labels[k] != v {
			return false
		}
	}
	return true
}

// extractHist reconstructs the histogram series of family with the given
// labels from parsed samples. Missing series yield ok=false.
func extractHist(samples []promSample, family string, want map[string]string) (histSnapshot, bool) {
	var h histSnapshot
	type bkt struct {
		le  float64
		cum uint64
	}
	var buckets []bkt
	seen := false
	for _, s := range samples {
		switch s.name {
		case family + "_bucket":
			if !matches(s.labels, want) {
				continue
			}
			le, err := parsePromValue(s.labels["le"])
			if err != nil {
				continue
			}
			buckets = append(buckets, bkt{le: le, cum: uint64(s.value)})
			seen = true
		case family + "_count":
			if matches(s.labels, want) {
				h.count = uint64(s.value)
				seen = true
			}
		case family + "_sum":
			if matches(s.labels, want) {
				h.sum = s.value
				seen = true
			}
		}
	}
	if !seen {
		return h, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	for _, b := range buckets {
		h.bounds = append(h.bounds, b.le)
		h.cum = append(h.cum, b.cum)
	}
	return h, true
}

// sub returns the histogram delta h − prev (prev may be the zero
// snapshot): the traffic observed between two scrapes. Counters only ever
// grow, so the delta is itself a valid histogram.
func (h histSnapshot) sub(prev histSnapshot) histSnapshot {
	out := histSnapshot{
		bounds: h.bounds,
		cum:    append([]uint64(nil), h.cum...),
		count:  h.count - prev.count,
		sum:    h.sum - prev.sum,
	}
	for i := range out.cum {
		if i < len(prev.cum) {
			out.cum[i] -= prev.cum[i]
		}
	}
	return out
}

// quantile estimates the q-quantile (0 < q ≤ 1) from the bucket counts
// with Prometheus-style linear interpolation inside the landing bucket.
// The true value lies in (lower bound of the landing bucket, its upper
// bound]; both are returned so a cross-check can use the hard bracket
// rather than the interpolated point.
func (h histSnapshot) quantile(q float64) (est, lo, hi float64) {
	if h.count == 0 || len(h.bounds) == 0 {
		return 0, 0, 0
	}
	rank := q * float64(h.count)
	idx := sort.Search(len(h.cum), func(i int) bool { return float64(h.cum[i]) >= rank })
	if idx == len(h.cum) {
		idx = len(h.cum) - 1
	}
	hi = h.bounds[idx]
	lo = 0
	prevCum := uint64(0)
	if idx > 0 {
		lo = h.bounds[idx-1]
		prevCum = h.cum[idx-1]
	}
	if math.IsInf(hi, 1) {
		// Open-ended landing bucket: no upper bracket; report the lower
		// bound as the estimate.
		return lo, lo, math.Inf(1)
	}
	inBucket := float64(h.cum[idx] - prevCum)
	if inBucket <= 0 {
		return hi, lo, hi
	}
	est = lo + (hi-lo)*(rank-float64(prevCum))/inBucket
	return est, lo, hi
}
