package machine

import "sparseorder/internal/sparse"

// CacheSim is a set-associative LRU cache simulator used to validate the
// cost model's closed-form locality estimate (distinct lines + capacity
// term) against an exact simulation of the x-vector access stream. It is
// deliberately simple — one level, true LRU — because it only needs to
// rank access streams, not reproduce a real hierarchy.
type CacheSim struct {
	sets     int
	ways     int
	lineSize int64
	tags     []int64 // sets × ways, -1 = empty
	age      []int64 // LRU timestamps aligned with tags
	clock    int64

	Hits   int64
	Misses int64
}

// NewCacheSim builds a simulator with the given capacity in bytes,
// associativity and line size. Capacity is rounded down to a whole number
// of sets; a minimum of one set is kept.
func NewCacheSim(capacityBytes int64, ways int, lineSize int64) *CacheSim {
	if ways < 1 {
		ways = 1
	}
	if lineSize < 8 {
		lineSize = 8
	}
	sets := int(capacityBytes / (int64(ways) * lineSize))
	if sets < 1 {
		sets = 1
	}
	c := &CacheSim{
		sets:     sets,
		ways:     ways,
		lineSize: lineSize,
		tags:     make([]int64, sets*ways),
		age:      make([]int64, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// Access touches the byte address and returns whether it hit.
func (c *CacheSim) Access(addr int64) bool {
	c.clock++
	line := addr / c.lineSize
	set := int(line % int64(c.sets))
	base := set * c.ways
	victim := base
	oldest := c.age[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == line {
			c.age[i] = c.clock
			c.Hits++
			return true
		}
		if c.age[i] < oldest {
			oldest = c.age[i]
			victim = i
		}
	}
	c.tags[victim] = line
	c.age[victim] = c.clock
	c.Misses++
	return false
}

// Reset clears contents and counters.
func (c *CacheSim) Reset() {
	for i := range c.tags {
		c.tags[i] = -1
		c.age[i] = 0
	}
	c.clock = 0
	c.Hits = 0
	c.Misses = 0
}

// SimulateXMisses replays the x-vector accesses of one thread's nonzero
// range [kLo, kHi) of matrix a through the cache and returns the miss
// count. Each nonzero reads x[col], i.e. byte address 8·col.
func SimulateXMisses(a *sparse.CSR, kLo, kHi int, cache *CacheSim) int64 {
	cache.Reset()
	for k := kLo; k < kHi; k++ {
		cache.Access(int64(a.ColIdx[k]) * 8)
	}
	return cache.Misses
}

// ModelXBytes returns the cost model's closed-form estimate of x-traffic
// cache lines for a thread's nonzero range against a cache of effLines
// lines: distinct lines (cold) plus the capacity term. Exposed for the
// validation tests that compare it with SimulateXMisses.
func ModelXBytes(a *sparse.CSR, kLo, kHi int, effLines float64) float64 {
	seen := map[int32]bool{}
	for k := kLo; k < kHi; k++ {
		seen[a.ColIdx[k]>>3] = true
	}
	distinct := float64(len(seen))
	reuse := float64(kHi-kLo) - distinct
	if reuse < 0 {
		reuse = 0
	}
	capMissRate := 0.0
	if distinct > effLines {
		capMissRate = (distinct - effLines) / distinct
	}
	return distinct + reuse*capMissRate/8
}
