package machine

import (
	"testing"

	"sparseorder/internal/gen"
	"sparseorder/internal/sparse"
)

func TestCacheSimBasics(t *testing.T) {
	c := NewCacheSim(1024, 4, 64) // 16 lines, 4 sets x 4 ways
	if c.Access(0) {
		t.Error("first access must miss")
	}
	if !c.Access(8) {
		t.Error("same line must hit")
	}
	if !c.Access(0) {
		t.Error("repeat must hit")
	}
	if c.Misses != 1 || c.Hits != 2 {
		t.Errorf("counters: %d misses %d hits", c.Misses, c.Hits)
	}
	c.Reset()
	if c.Misses != 0 || c.Hits != 0 {
		t.Error("reset failed")
	}
}

func TestCacheSimLRUEviction(t *testing.T) {
	// Direct-mapped, 2 sets: lines 0 and 2 share set 0.
	c := NewCacheSim(128, 1, 64)
	c.Access(0)      // line 0 -> set 0
	c.Access(2 * 64) // line 2 -> set 0, evicts line 0
	if c.Access(0) { // line 0 must have been evicted
		t.Error("conflict eviction did not happen")
	}
}

func TestCacheSimAssociativityHelps(t *testing.T) {
	// Two lines mapping to one set: associative cache keeps both.
	c := NewCacheSim(128, 2, 64) // 1 set x 2 ways
	c.Access(0)
	c.Access(64)
	if !c.Access(0) || !c.Access(64) {
		t.Error("2-way cache should hold both lines")
	}
}

func TestCacheSimWorkingSetBoundary(t *testing.T) {
	// Streaming over a working set that fits: only cold misses on the
	// second pass. Over one that doesn't: misses every pass.
	c := NewCacheSim(64*64, 8, 64) // 64 lines
	for pass := 0; pass < 2; pass++ {
		for l := 0; l < 32; l++ {
			c.Access(int64(l) * 64)
		}
	}
	if c.Misses != 32 {
		t.Errorf("fitting working set: %d misses, want 32 cold", c.Misses)
	}
	c.Reset()
	for pass := 0; pass < 2; pass++ {
		for l := 0; l < 1024; l++ {
			c.Access(int64(l) * 64)
		}
	}
	if c.Misses < 2000 {
		t.Errorf("thrashing working set: %d misses, want ~2048", c.Misses)
	}
}

// TestModelAgreesWithSimulationRanking validates the cost model's
// closed-form x-traffic estimate against the exact LRU simulation: across
// structurally different matrices the two must rank access streams the
// same way, and for cache-fitting streams the model's cold-miss count must
// match the simulation exactly.
func TestModelAgreesWithSimulationRanking(t *testing.T) {
	natural := gen.Grid2D(48, 48)
	scrambled := gen.Scramble(natural, 1)

	const cacheBytes = 4 * 1024 // 64 lines, a per-thread L2 share in miniature
	effLines := float64(cacheBytes / 64)

	// The model differentiates orderings through per-thread footprints
	// (over the whole matrix every ordering touches every column), so the
	// comparison sums over the 1D kernel's 16 per-thread ranges — each
	// thread gets its own cold cache, as on a real machine.
	perThread := func(a *sparse.CSR) (sim int64, mod float64) {
		const threads = 16
		for t := 0; t < threads; t++ {
			lo := a.RowPtr[t*a.Rows/threads]
			hi := a.RowPtr[(t+1)*a.Rows/threads]
			sim += SimulateXMisses(a, lo, hi, NewCacheSim(cacheBytes, 8, 64))
			mod += ModelXBytes(a, lo, hi, effLines)
		}
		return sim, mod
	}
	simNat, modNat := perThread(natural)
	simScr, modScr := perThread(scrambled)

	if simScr <= simNat {
		t.Errorf("simulation: scrambled misses %d not above natural %d", simScr, simNat)
	}
	if modScr <= modNat {
		t.Errorf("model: scrambled estimate %.0f not above natural %.0f", modScr, modNat)
	}

	// A small banded stream fits in cache entirely: the simulation sees
	// only cold misses and the model must agree exactly (capacity term 0).
	small := gen.Grid2D(12, 12) // 144 columns = 18 lines << 256
	sim := SimulateXMisses(small, 0, small.NNZ(), NewCacheSim(cacheBytes, 8, 64))
	mod := ModelXBytes(small, 0, small.NNZ(), effLines)
	if float64(sim) != mod {
		t.Errorf("cache-fitting stream: simulated %d, model %.1f (should be cold misses only)", sim, mod)
	}
}

// TestModelCapacityTermTracksSimulation checks that as the cache shrinks,
// both the simulation and the model report more traffic, and the model
// stays within a small factor of the simulation on a scrambled mesh.
func TestModelCapacityTermTracksSimulation(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(64, 64), 2)
	sizes := []int64{4 * 1024, 16 * 1024, 64 * 1024}
	var prevSim int64 = 1 << 62
	var prevMod = 1e18
	for _, bytes := range sizes {
		sim := SimulateXMisses(a, 0, a.NNZ(), NewCacheSim(bytes, 8, 64))
		mod := ModelXBytes(a, 0, a.NNZ(), float64(bytes/64))
		if sim > prevSim {
			t.Errorf("simulation not monotone in cache size at %d bytes", bytes)
		}
		if mod > prevMod {
			t.Errorf("model not monotone in cache size at %d bytes", bytes)
		}
		ratio := mod / float64(sim)
		if ratio < 0.1 || ratio > 10 {
			t.Errorf("cache %d: model %.0f vs simulated %d (ratio %.2f) outside 10x band", bytes, mod, sim, ratio)
		}
		prevSim, prevMod = sim, mod
	}
}
