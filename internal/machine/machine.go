// Package machine models the eight multicore CPUs of the study's Table 2
// and predicts SpMV performance on them (see DESIGN.md, substitution 2).
//
// The model is deliberately simple but mechanism-faithful: an SpMV
// execution is decomposed into per-thread nonzero streams, and the time is
// the makespan of per-thread costs combining
//
//   - streamed matrix traffic (12 bytes per nonzero for a 32-bit column
//     index and a float64 value, plus per-row pointer/output traffic),
//   - x-vector traffic estimated from the number of distinct cache lines
//     each thread touches (cold misses — reduced by partitioning-based
//     orderings that shrink the per-thread column footprint) and a
//     capacity-miss term driven by the ratio of the per-thread working set
//     to its effective cache (reduced by bandwidth-reducing orderings),
//   - shared memory bandwidth with a bounded single-thread draw (so load
//     imbalance lengthens the tail), and
//   - a per-core instruction-throughput ceiling (lower on the ARM CPUs,
//     reflecting the paper's observation about their SpMV behaviour).
//
// Reordering changes exactly the inputs of this model — per-thread nonzero
// counts and column footprints — which is how the paper itself explains
// its results (locality + load balance), so the model reproduces the
// study's comparative behaviour without the original hardware.
package machine

import (
	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
)

// Machine describes one CPU of the study (paper Table 2).
type Machine struct {
	Name        string
	CPU         string
	ISA         string
	Sockets     int
	Cores       int // total cores = threads used in the study
	FreqGHz     float64
	L1DPerCore  int64 // bytes
	L2PerCore   int64 // bytes
	L3PerSocket int64 // bytes
	BandwidthGB float64
	// NnzPerCycle is the per-core SpMV throughput ceiling in nonzeros per
	// clock cycle, folding in ILP and gather efficiency; the ARM systems
	// get a lower value per the paper's §4.3 discussion.
	NnzPerCycle float64
}

const (
	kib = int64(1) << 10
	mib = int64(1) << 20
)

// Table2 lists the eight machines of the study.
var Table2 = []Machine{
	{Name: "Skylake", CPU: "Intel Xeon Gold 6130", ISA: "x86-64", Sockets: 2, Cores: 32, FreqGHz: 3.6,
		L1DPerCore: 32 * kib, L2PerCore: 1024 * kib, L3PerSocket: 22 * mib, BandwidthGB: 256, NnzPerCycle: 0.5},
	{Name: "Ice Lake", CPU: "Intel Xeon Platinum 8360Y", ISA: "x86-64", Sockets: 2, Cores: 72, FreqGHz: 3.5,
		L1DPerCore: 48 * kib, L2PerCore: 1280 * kib, L3PerSocket: 54 * mib, BandwidthGB: 409.6, NnzPerCycle: 0.5},
	{Name: "Naples", CPU: "AMD Epyc 7601", ISA: "x86-64", Sockets: 2, Cores: 64, FreqGHz: 3.2,
		L1DPerCore: 32 * kib, L2PerCore: 512 * kib, L3PerSocket: 64 * mib, BandwidthGB: 342, NnzPerCycle: 0.5},
	{Name: "Rome", CPU: "AMD Epyc 7302P", ISA: "x86-64", Sockets: 1, Cores: 16, FreqGHz: 3.3,
		L1DPerCore: 32 * kib, L2PerCore: 512 * kib, L3PerSocket: 16 * mib, BandwidthGB: 204.8, NnzPerCycle: 0.5},
	{Name: "Milan A", CPU: "AMD Epyc 7413", ISA: "x86-64", Sockets: 2, Cores: 48, FreqGHz: 3.5,
		L1DPerCore: 32 * kib, L2PerCore: 512 * kib, L3PerSocket: 128 * mib, BandwidthGB: 409.6, NnzPerCycle: 0.5},
	{Name: "Milan B", CPU: "AMD Epyc 7763", ISA: "x86-64", Sockets: 2, Cores: 128, FreqGHz: 3.5,
		L1DPerCore: 32 * kib, L2PerCore: 512 * kib, L3PerSocket: 256 * mib, BandwidthGB: 409.6, NnzPerCycle: 0.5},
	{Name: "TX2", CPU: "Cavium TX2 CN9980", ISA: "ARMv8.1", Sockets: 2, Cores: 64, FreqGHz: 2.5,
		L1DPerCore: 32 * kib, L2PerCore: 256 * kib, L3PerSocket: 32 * mib, BandwidthGB: 342, NnzPerCycle: 0.22},
	{Name: "Hi1620", CPU: "HiSilicon Kunpeng 920-6426", ISA: "ARMv8.2", Sockets: 2, Cores: 128, FreqGHz: 2.6,
		L1DPerCore: 64 * kib, L2PerCore: 512 * kib, L3PerSocket: 64 * mib, BandwidthGB: 342, NnzPerCycle: 0.22},
}

// ByName returns the machine with the given name, or false.
func ByName(name string) (Machine, bool) {
	for _, m := range Table2 {
		if m.Name == name {
			return m, true
		}
	}
	return Machine{}, false
}

// TotalL3 returns the aggregate last-level cache in bytes.
func (m Machine) TotalL3() int64 { return int64(m.Sockets) * m.L3PerSocket }

// EffectiveCachePerThread returns the cache capacity available to one
// thread's x-vector working set: its private L2 plus its share of L3.
func (m Machine) EffectiveCachePerThread() int64 {
	return m.L2PerCore + m.TotalL3()/int64(m.Cores)
}

// Kernel selects one of the study's SpMV algorithms.
type Kernel int

// The two kernels of paper §3.1.
const (
	Kernel1D Kernel = iota // even row split
	Kernel2D               // even nonzero split
)

func (k Kernel) String() string {
	if k == Kernel1D {
		return "1D"
	}
	return "2D"
}

// Estimate is the model's prediction for one SpMV execution.
type Estimate struct {
	Seconds   float64
	Gflops    float64
	ThreadNNZ []int
	Imbalance float64 // max/mean of ThreadNNZ
}

const cacheLine = 64

// CacheScale shrinks every cache capacity used by the cost model by a
// constant factor. The synthetic collection is scaled down from the paper's
// matrix sizes (DESIGN.md, substitution 1), so shrinking the caches in
// proportion keeps the cache-pressure regime — and therefore the relative
// behaviour of the orderings and machines — faithful to the original study.
// Cross-machine cache ratios are unchanged. Use CacheScaleFor to pick the
// value matching a collection scale.
var CacheScale = 25.0

// CacheScaleFor returns the CacheScale that puts a collection of the given
// scale factor (gen.Scale.Factor()) in the same data-to-LLC pressure regime
// as the paper's 1e6-1e9-nonzero matrices: the paper's median matrix
// (~4e6 nnz, ~50 MB in CSR) is about half the median LLC, and scales
// quadratically-ish down with our linear size factor.
func CacheScaleFor(sizeFactor int) float64 {
	switch {
	case sizeFactor <= 1:
		return 400
	case sizeFactor <= 4:
		return 25
	default:
		return 10
	}
}

// EstimateSpMV predicts the SpMV time of matrix a on machine m with the
// given kernel, using m.Cores threads (as the study does).
func EstimateSpMV(a *sparse.CSR, m Machine, kernel Kernel) Estimate {
	t := m.Cores
	// Per-thread nonzero ranges.
	var kSplit []int
	switch kernel {
	case Kernel1D:
		rb := spmv.RowBlocks1D(a.Rows, t)
		kSplit = make([]int, t+1)
		for i := 0; i <= t; i++ {
			kSplit[i] = a.RowPtr[rb[i]]
		}
	default:
		kSplit = make([]int, t+1)
		for i := 0; i <= t; i++ {
			kSplit[i] = i * a.NNZ() / t
		}
	}

	// Count rows spanned and distinct x-lines per thread in one pass.
	lineGen := make([]int32, (a.Cols+7)/8+1)
	for i := range lineGen {
		lineGen[i] = -1
	}
	threadNNZ := make([]int, t)
	threadRows := make([]int, t)
	distinct := make([]int, t)
	row := 0
	for th := 0; th < t; th++ {
		lo, hi := kSplit[th], kSplit[th+1]
		threadNNZ[th] = hi - lo
		for row < a.Rows && a.RowPtr[row+1] <= lo {
			row++
		}
		startRow := row
		for k := lo; k < hi; k++ {
			line := a.ColIdx[k] >> 3
			if lineGen[line] != int32(th) {
				lineGen[line] = int32(th)
				distinct[th]++
			}
		}
		for row < a.Rows && a.RowPtr[row+1] <= hi {
			row++
		}
		threadRows[th] = row - startRow + 1
	}

	// Warm-cache adjustment: when the full dataset fits in the aggregate
	// LLC, the "memory" traffic is served from cache at a multiple of the
	// DRAM bandwidth and capacity misses vanish (paper §4.1 notes 512 MiB
	// LLC on Milan B holds most test matrices).
	dataBytes := float64(12*a.NNZ() + 8*a.Rows + 8*a.Cols)
	fit := dataBytes / (float64(m.TotalL3()) / CacheScale)
	if fit > 1 {
		fit = 1
	}
	bwBytes := m.BandwidthGB * 1e9 * (4 - 3*fit) // 4x DRAM bandwidth when fully cached
	// Locality costs fade when the data fits in the LLC, but never to zero:
	// a cold x-line is still an L3-to-L2 transfer.
	capScale := 0.3 + 0.7*fit

	effLines := float64(m.EffectiveCachePerThread()) / CacheScale / cacheLine
	singleBW := 2.0 * bwBytes / float64(t) // one thread can draw ~2x its fair share

	var totalBytes, maxBytes, cpuMax float64
	cyclesPerNnz := 1 / m.NnzPerCycle
	for th := 0; th < t; th++ {
		stream := 12*float64(threadNNZ[th]) + 16*float64(threadRows[th])
		cold := float64(distinct[th]) * cacheLine
		reuse := float64(threadNNZ[th]) - float64(distinct[th])
		if reuse < 0 {
			reuse = 0
		}
		capMissRate := 0.0
		if float64(distinct[th]) > effLines {
			capMissRate = (float64(distinct[th]) - effLines) / float64(distinct[th])
		}
		capBytes := reuse * capMissRate * capScale * cacheLine / 8 // one miss per 8 reuse accesses of an evicted line
		bytes := stream + cold*capScale + capBytes
		totalBytes += bytes
		if bytes > maxBytes {
			maxBytes = bytes
		}
		cpu := float64(threadNNZ[th]) * cyclesPerNnz / (m.FreqGHz * 1e9)
		if cpu > cpuMax {
			cpuMax = cpu
		}
	}

	timeBW := totalBytes / bwBytes
	avgBytes := totalBytes / float64(t)
	tail := 0.0
	if maxBytes > avgBytes {
		tail = (maxBytes - avgBytes) / singleBW
	}
	seconds := timeBW + tail
	if cpuMax > seconds {
		seconds = cpuMax
	}
	// A small fixed parallel-region cost; kept tiny so that, like in the
	// paper, the speedup ratios are dominated by traffic and balance.
	seconds += 1e-7

	total := 0
	maxNNZ := 0
	for _, n := range threadNNZ {
		total += n
		if n > maxNNZ {
			maxNNZ = n
		}
	}
	imb := 1.0
	if total > 0 {
		imb = float64(maxNNZ) * float64(t) / float64(total)
	}
	return Estimate{
		Seconds:   seconds,
		Gflops:    spmv.Gflops(a.NNZ(), seconds),
		ThreadNNZ: threadNNZ,
		Imbalance: imb,
	}
}
