package machine

import (
	"testing"

	"sparseorder/internal/gen"
	"sparseorder/internal/metrics"
	"sparseorder/internal/sparse"
)

func TestTable2Complete(t *testing.T) {
	if len(Table2) != 8 {
		t.Fatalf("Table2 has %d machines, want 8", len(Table2))
	}
	names := map[string]bool{}
	for _, m := range Table2 {
		names[m.Name] = true
		if m.Cores <= 0 || m.BandwidthGB <= 0 || m.FreqGHz <= 0 || m.NnzPerCycle <= 0 {
			t.Errorf("%s has non-positive parameters", m.Name)
		}
		if m.TotalL3() != int64(m.Sockets)*m.L3PerSocket {
			t.Errorf("%s TotalL3 inconsistent", m.Name)
		}
		if m.EffectiveCachePerThread() <= m.L2PerCore {
			t.Errorf("%s effective cache should exceed private L2", m.Name)
		}
	}
	for _, want := range []string{"Skylake", "Ice Lake", "Naples", "Rome", "Milan A", "Milan B", "TX2", "Hi1620"} {
		if !names[want] {
			t.Errorf("missing machine %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	if m, ok := ByName("Milan B"); !ok || m.Cores != 128 {
		t.Errorf("ByName(Milan B) = %+v, %v", m, ok)
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName accepted unknown machine")
	}
}

func TestEstimatePositiveAndFinite(t *testing.T) {
	a := gen.Grid2D(40, 40)
	for _, m := range Table2 {
		for _, k := range []Kernel{Kernel1D, Kernel2D} {
			e := EstimateSpMV(a, m, k)
			if e.Seconds <= 0 || e.Gflops <= 0 {
				t.Errorf("%s/%s: seconds=%v gflops=%v", m.Name, k, e.Seconds, e.Gflops)
			}
			if len(e.ThreadNNZ) != m.Cores {
				t.Errorf("%s/%s: %d thread entries, want %d", m.Name, k, len(e.ThreadNNZ), m.Cores)
			}
			total := 0
			for _, n := range e.ThreadNNZ {
				total += n
			}
			if total != a.NNZ() {
				t.Errorf("%s/%s: thread nnz sums to %d, want %d", m.Name, k, total, a.NNZ())
			}
		}
	}
}

func TestEstimate2DAlwaysBalanced(t *testing.T) {
	// A matrix with one huge row: 1D imbalanced, 2D balanced by design.
	coo := sparse.NewCOO(1000, 1000, 6000)
	for j := 0; j < 3000; j++ {
		coo.Append(0, j%1000, 1)
	}
	for i := 1; i < 1000; i++ {
		coo.Append(i, (i*7)%1000, 1)
	}
	a, _ := coo.ToCSR()
	m, _ := ByName("Rome")
	e1 := EstimateSpMV(a, m, Kernel1D)
	e2 := EstimateSpMV(a, m, Kernel2D)
	if e1.Imbalance < 2 {
		t.Errorf("1D imbalance = %v, want large", e1.Imbalance)
	}
	if e2.Imbalance > 1.1 {
		t.Errorf("2D imbalance = %v, want ~1", e2.Imbalance)
	}
	if e2.Seconds >= e1.Seconds {
		t.Errorf("2D (%.3gs) should beat 1D (%.3gs) on a skewed matrix", e2.Seconds, e1.Seconds)
	}
}

func TestEstimateImbalanceMatchesMetrics(t *testing.T) {
	a := gen.RMAT(8, 8, 1)
	m, _ := ByName("Skylake")
	e := EstimateSpMV(a, m, Kernel1D)
	want := metrics.Imbalance1D(a, m.Cores)
	if diff := e.Imbalance - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("model imbalance %v != metrics %v", e.Imbalance, want)
	}
}

func TestLocalityMattersInModel(t *testing.T) {
	// A scrambled large grid must be predicted slower than the natural
	// banded order on every machine (worse x locality per thread).
	g := gen.Grid2D(160, 160)
	s := gen.Scramble(g, 3)
	for _, m := range Table2 {
		nat := EstimateSpMV(g, m, Kernel1D)
		scr := EstimateSpMV(s, m, Kernel1D)
		if scr.Seconds <= nat.Seconds {
			t.Errorf("%s: scrambled (%.3g) not slower than natural (%.3g)", m.Name, scr.Seconds, nat.Seconds)
		}
	}
}

func TestMoreCoresFaster(t *testing.T) {
	// Milan B (128 cores, 409 GB/s) must beat Rome (16 cores, 204 GB/s) on a
	// big balanced matrix.
	a := gen.Grid2D(200, 200)
	milanB, _ := ByName("Milan B")
	rome, _ := ByName("Rome")
	if EstimateSpMV(a, milanB, Kernel1D).Seconds >= EstimateSpMV(a, rome, Kernel1D).Seconds {
		t.Error("Milan B predicted slower than Rome on a balanced matrix")
	}
}

func TestARMSlowerPerCore(t *testing.T) {
	// Hi1620 matches Milan B's core count but has lower bandwidth and lower
	// per-core throughput; it must not be faster.
	a := gen.Grid2D(150, 150)
	milanB, _ := ByName("Milan B")
	hi, _ := ByName("Hi1620")
	if EstimateSpMV(a, hi, Kernel1D).Seconds < EstimateSpMV(a, milanB, Kernel1D).Seconds {
		t.Error("Hi1620 predicted faster than Milan B")
	}
}

func TestKernelString(t *testing.T) {
	if Kernel1D.String() != "1D" || Kernel2D.String() != "2D" {
		t.Error("kernel names")
	}
}
