// Package metrics computes the order-sensitive matrix features the study
// uses to explain SpMV performance (paper §3.2): bandwidth, profile,
// off-diagonal nonzero count, and the load-imbalance factor.
package metrics

import (
	"sparseorder/internal/par"
	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
)

// Bandwidth returns the largest distance of any nonzero from the main
// diagonal, max |i-j| over nonzeros a_ij.
func Bandwidth(a *sparse.CSR) int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d := i - int(a.ColIdx[k])
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// Profile returns the sum over rows of the distance from the leftmost
// nonzero to the diagonal, Σ_i (i - min{j : a_ij ≠ 0}), counting only rows
// whose leftmost nonzero lies left of the diagonal, per Gibbs et al.
// The leftmost nonzero is found by scanning the whole row rather than
// reading ColIdx[RowPtr[i]]: externally built CSRs can carry unsorted rows
// (that is what sparse.CSR.SortRows exists to repair), and the first
// stored entry of such a row need not be its minimum column.
func Profile(a *sparse.CSR) int64 {
	var p int64
	for i := 0; i < a.Rows; i++ {
		p += profileRow(a, i)
	}
	return p
}

// profileRow returns row i's contribution to the profile.
func profileRow(a *sparse.CSR, i int) int64 {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	if lo == hi {
		return 0
	}
	first := int(a.ColIdx[lo])
	for k := lo + 1; k < hi; k++ {
		if c := int(a.ColIdx[k]); c < first {
			first = c
		}
	}
	if first < i {
		return int64(i - first)
	}
	return 0
}

// OffDiagonalNNZ counts nonzeros outside the blocks×blocks block diagonal:
// the matrix is divided into an even blocks-way row and column grid and
// nonzeros whose row block differs from their column block are counted.
// With the row grid of the 1D SpMV algorithm this equals the edge-cut
// objective of graph partitioning (paper §3.2).
func OffDiagonalNNZ(a *sparse.CSR, blocks int) int64 {
	if blocks <= 1 || a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	var count int64
	for i := 0; i < a.Rows; i++ {
		bi := i * blocks / a.Rows
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			bj := int(a.ColIdx[k]) * blocks / a.Cols
			if bi != bj {
				count++
			}
		}
	}
	return count
}

// ImbalanceFactor returns max/mean of the per-thread nonzero counts: 1.0
// means perfectly balanced, 2.0 means the busiest thread carries twice the
// average.
func ImbalanceFactor(threadNNZ []int) float64 {
	if len(threadNNZ) == 0 {
		return 1
	}
	total, maxNNZ := 0, 0
	for _, n := range threadNNZ {
		total += n
		if n > maxNNZ {
			maxNNZ = n
		}
	}
	if total == 0 {
		return 1
	}
	return float64(maxNNZ) * float64(len(threadNNZ)) / float64(total)
}

// Imbalance1D returns the load-imbalance factor of the 1D row-split SpMV
// with the given thread count.
func Imbalance1D(a *sparse.CSR, threads int) float64 {
	return ImbalanceFactor(spmv.ThreadNNZ1D(a, threads))
}

// Features bundles the study's order-sensitive features of one matrix
// under one ordering.
type Features struct {
	Bandwidth   int
	Profile     int64
	OffDiagNNZ  int64
	Imbalance1D float64
}

// Compute evaluates all features; blocks and threads are typically both the
// core count of the machine under study.
func Compute(a *sparse.CSR, blocks, threads int) Features {
	return Features{
		Bandwidth:   Bandwidth(a),
		Profile:     Profile(a),
		OffDiagNNZ:  OffDiagonalNNZ(a, blocks),
		Imbalance1D: Imbalance1D(a, threads),
	}
}

// ComputeWorkers is Compute with the row loops run concurrently: the
// bandwidth/profile/off-diagonal passes are fused into one loop split
// across row ranges with per-chunk partial results, and the imbalance
// factor is computed alongside. Workers follow the shared convention
// (0 = GOMAXPROCS, 1 = the exact serial code path). All reductions are
// integer max/sum in chunk order, so the result is identical to Compute
// at every worker count.
func ComputeWorkers(a *sparse.CSR, blocks, threads, workers int) Features {
	w := par.Resolve(workers)
	if w == 1 {
		return Compute(a, blocks, threads)
	}
	var f Features
	type partial struct {
		bw      int
		profile int64
		offdiag int64
	}
	parts := make([]partial, par.Chunks(a.Rows, w))
	par.Do(w,
		func() { f.Imbalance1D = Imbalance1D(a, threads) },
		func() {
			doOff := blocks > 1 && a.Rows > 0 && a.Cols > 0
			par.Ranges(a.Rows, w, func(chunk, lo, hi int) {
				var pt partial
				for i := lo; i < hi; i++ {
					bi := 0
					if doOff {
						bi = i * blocks / a.Rows
					}
					for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
						j := int(a.ColIdx[k])
						d := i - j
						if d < 0 {
							d = -d
						}
						if d > pt.bw {
							pt.bw = d
						}
						if doOff && j*blocks/a.Cols != bi {
							pt.offdiag++
						}
					}
					pt.profile += profileRow(a, i)
				}
				parts[chunk] = pt
			})
		})
	for _, pt := range parts {
		if pt.bw > f.Bandwidth {
			f.Bandwidth = pt.bw
		}
		f.Profile += pt.profile
		f.OffDiagNNZ += pt.offdiag
	}
	return f
}

// RowNNZStats returns the minimum, maximum and mean nonzeros per row.
func RowNNZStats(a *sparse.CSR) (minRow, maxRow int, mean float64) {
	if a.Rows == 0 {
		return 0, 0, 0
	}
	minRow = a.RowNNZ(0)
	for i := 0; i < a.Rows; i++ {
		n := a.RowNNZ(i)
		if n < minRow {
			minRow = n
		}
		if n > maxRow {
			maxRow = n
		}
	}
	mean = float64(a.NNZ()) / float64(a.Rows)
	return minRow, maxRow, mean
}
