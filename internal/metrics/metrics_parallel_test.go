package metrics

import (
	"math/rand"
	"runtime"
	"testing"

	"sparseorder/internal/gen"
	"sparseorder/internal/sparse"
)

// TestProfileUnsortedRows is the regression test for the leftmost-nonzero
// bug: on a CSR whose rows are not column-sorted, Profile used to read
// ColIdx[RowPtr[i]] as the leftmost nonzero and undercount. The profile
// of a matrix must not depend on the storage order within rows.
func TestProfileUnsortedRows(t *testing.T) {
	// Row 2 stores columns {3, 0} in that order: the leftmost nonzero is 0,
	// contributing 2-0 = 2; reading the first stored entry (3) contributes 0.
	unsorted := &sparse.CSR{
		Rows: 3, Cols: 4,
		RowPtr: []int{0, 1, 2, 4},
		ColIdx: []int32{0, 1, 3, 0},
		Val:    []float64{1, 1, 1, 1},
	}
	if got := Profile(unsorted); got != 2 {
		t.Errorf("Profile on unsorted rows = %d, want 2", got)
	}
	sorted := unsorted.Clone()
	sorted.SortRows()
	if Profile(unsorted) != Profile(sorted) {
		t.Errorf("Profile depends on within-row order: unsorted %d, sorted %d",
			Profile(unsorted), Profile(sorted))
	}

	// Same property on a random matrix with scrambled rows.
	rng := rand.New(rand.NewSource(4))
	a := &sparse.CSR{Rows: 40, Cols: 40, RowPtr: make([]int, 41)}
	for i := 0; i < 40; i++ {
		n := rng.Intn(6)
		for k := 0; k < n; k++ {
			a.ColIdx = append(a.ColIdx, int32(rng.Intn(40)))
			a.Val = append(a.Val, 1)
		}
		a.RowPtr[i+1] = len(a.ColIdx)
	}
	s := a.Clone()
	s.SortRows()
	if Profile(a) != Profile(s) {
		t.Errorf("random matrix: Profile unsorted %d != sorted %d", Profile(a), Profile(s))
	}
}

func TestComputeWorkersMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	unsym := sparse.NewCOO(70, 70, 400)
	for k := 0; k < 350; k++ {
		unsym.Append(rng.Intn(70), rng.Intn(70), rng.NormFloat64())
	}
	u, err := unsym.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	empty, err := sparse.NewCOO(10, 10, 0).ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []*sparse.CSR{
		gen.Grid2D(13, 13),
		gen.Scramble(gen.Grid2D(16, 16), 9),
		gen.WithDenseRows(gen.Grid2D(12, 12), 4, 0.3, 7),
		u,
		empty,
	} {
		for _, blocks := range []int{1, 8, 128} {
			want := Compute(a, blocks, blocks)
			for _, w := range []int{1, 2, 3, 4, runtime.GOMAXPROCS(0), 0} {
				got := ComputeWorkers(a, blocks, blocks, w)
				if got != want {
					t.Fatalf("blocks=%d workers=%d: features %+v, want %+v", blocks, w, got, want)
				}
			}
		}
	}
}

func BenchmarkReorderFeatures(b *testing.B) {
	a := gen.Scramble(gen.Grid3D(20, 20, 20), 3)
	for _, w := range []int{1, 4} {
		name := "serial"
		if w > 1 {
			name = "workers4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ComputeWorkers(a, 128, 128, w)
			}
		})
	}
}
