package metrics

import (
	"math"
	"testing"

	"sparseorder/internal/gen"
	"sparseorder/internal/sparse"
)

func build(t *testing.T, rows, cols int, entries [][3]float64) *sparse.CSR {
	t.Helper()
	coo := sparse.NewCOO(rows, cols, len(entries))
	for _, e := range entries {
		coo.Append(int(e[0]), int(e[1]), e[2])
	}
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBandwidthKnown(t *testing.T) {
	a := build(t, 4, 4, [][3]float64{{0, 0, 1}, {1, 1, 1}, {2, 2, 1}, {3, 3, 1}})
	if bw := Bandwidth(a); bw != 0 {
		t.Errorf("diagonal bandwidth = %d, want 0", bw)
	}
	a = build(t, 4, 4, [][3]float64{{0, 3, 1}, {1, 1, 1}})
	if bw := Bandwidth(a); bw != 3 {
		t.Errorf("bandwidth = %d, want 3", bw)
	}
	a = build(t, 4, 4, [][3]float64{{3, 0, 1}})
	if bw := Bandwidth(a); bw != 3 {
		t.Errorf("lower-triangle bandwidth = %d, want 3", bw)
	}
}

func TestBandwidthTridiagonal(t *testing.T) {
	n := 10
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Append(i, i, 2)
		if i+1 < n {
			coo.Append(i, i+1, -1)
			coo.Append(i+1, i, -1)
		}
	}
	a, _ := coo.ToCSR()
	if bw := Bandwidth(a); bw != 1 {
		t.Errorf("tridiagonal bandwidth = %d, want 1", bw)
	}
}

func TestProfileKnown(t *testing.T) {
	// Row 0: leftmost at 0 (distance 0); row 1 leftmost 0 (distance 1);
	// row 2 leftmost 2 (distance 0); row 3 leftmost 1 (distance 2).
	a := build(t, 4, 4, [][3]float64{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {2, 2, 1}, {3, 1, 1}, {3, 3, 1},
	})
	if p := Profile(a); p != 3 {
		t.Errorf("profile = %d, want 3", p)
	}
}

func TestProfileIgnoresUpperOnlyRows(t *testing.T) {
	// Row 0's leftmost entry is right of the diagonal: contributes 0.
	a := build(t, 2, 2, [][3]float64{{0, 1, 1}, {1, 1, 1}})
	if p := Profile(a); p != 0 {
		t.Errorf("profile = %d, want 0", p)
	}
}

func TestOffDiagonalNNZBlockDiagonal(t *testing.T) {
	// Perfect 2-block diagonal matrix: zero off-diagonal nonzeros at blocks=2.
	a := build(t, 4, 4, [][3]float64{
		{0, 0, 1}, {0, 1, 1}, {1, 0, 1}, {2, 3, 1}, {3, 2, 1},
	})
	if c := OffDiagonalNNZ(a, 2); c != 0 {
		t.Errorf("block-diagonal off-diag count = %d, want 0", c)
	}
	// A corner entry crosses blocks.
	a = build(t, 4, 4, [][3]float64{{0, 3, 1}})
	if c := OffDiagonalNNZ(a, 2); c != 1 {
		t.Errorf("off-diag count = %d, want 1", c)
	}
}

func TestOffDiagonalNNZDegenerate(t *testing.T) {
	a := build(t, 4, 4, [][3]float64{{0, 3, 1}})
	if c := OffDiagonalNNZ(a, 1); c != 0 {
		t.Errorf("blocks=1 must count 0, got %d", c)
	}
}

func TestOffDiagonalEqualsEdgeCutForGrid(t *testing.T) {
	// For a symmetric matrix with zero-free diagonal, the off-diagonal count
	// at blocks=k is exactly twice the edge cut of the even row split.
	a := gen.Grid2D(8, 8)
	blocks := 4
	c := OffDiagonalNNZ(a, blocks)
	// Count crossing pairs by brute force.
	var want int64
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := int(a.ColIdx[k])
			if i*blocks/a.Rows != j*blocks/a.Cols {
				want++
			}
		}
	}
	if c != want {
		t.Errorf("off-diag = %d, brute force %d", c, want)
	}
}

func TestImbalanceFactor(t *testing.T) {
	if f := ImbalanceFactor([]int{10, 10, 10, 10}); f != 1 {
		t.Errorf("balanced factor = %v, want 1", f)
	}
	if f := ImbalanceFactor([]int{20, 10, 10, 0}); math.Abs(f-2) > 1e-12 {
		t.Errorf("factor = %v, want 2", f)
	}
	if f := ImbalanceFactor(nil); f != 1 {
		t.Errorf("empty factor = %v, want 1", f)
	}
	if f := ImbalanceFactor([]int{0, 0}); f != 1 {
		t.Errorf("all-zero factor = %v, want 1", f)
	}
}

func TestImbalance1DSkewedMatrix(t *testing.T) {
	// All nonzeros in the first row: with 4 threads, thread 0 holds all.
	coo := sparse.NewCOO(8, 8, 8)
	for j := 0; j < 8; j++ {
		coo.Append(0, j, 1)
	}
	a, _ := coo.ToCSR()
	if f := Imbalance1D(a, 4); math.Abs(f-4) > 1e-12 {
		t.Errorf("imbalance = %v, want 4", f)
	}
	if f := Imbalance1D(gen.Grid2D(16, 16), 4); f > 1.1 {
		t.Errorf("grid imbalance = %v, want ~1", f)
	}
}

func TestComputeBundlesFeatures(t *testing.T) {
	a := gen.Grid2D(8, 8)
	f := Compute(a, 4, 4)
	if f.Bandwidth != Bandwidth(a) || f.Profile != Profile(a) ||
		f.OffDiagNNZ != OffDiagonalNNZ(a, 4) || f.Imbalance1D != Imbalance1D(a, 4) {
		t.Error("Compute disagrees with individual feature functions")
	}
}

func TestRowNNZStats(t *testing.T) {
	a := build(t, 3, 3, [][3]float64{{0, 0, 1}, {0, 1, 1}, {0, 2, 1}, {2, 0, 1}})
	minR, maxR, mean := RowNNZStats(a)
	if minR != 0 || maxR != 3 {
		t.Errorf("min/max = %d/%d, want 0/3", minR, maxR)
	}
	if math.Abs(mean-4.0/3) > 1e-12 {
		t.Errorf("mean = %v", mean)
	}
}
