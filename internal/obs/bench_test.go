package obs

import (
	"context"
	"testing"
)

// BenchmarkObsDisabled measures the instrumentation's disabled path — the
// cost every plain (no -http/-events) run pays at each call site. The
// acceptance bar: zero allocations and single-digit nanoseconds, which
// bounds the whole-pipeline regression far below the 1% budget recorded in
// BENCH_obs.json.
func BenchmarkObsDisabled(b *testing.B) {
	ctx := context.Background()
	b.Run("span", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, sp := Start(ctx, "bench/span")
			sp.SetAttr("k", "v")
			sp.End()
		}
	})
	b.Run("phase", func(b *testing.B) {
		b.ReportAllocs()
		var ph Phase
		for i := 0; i < b.N; i++ {
			ph.Start().Stop()
		}
	})
	b.Run("from_context", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			FromContext(ctx).Phase("p")
		}
	})
}

// BenchmarkObsEnabled is the live-registry contrast: what a run with
// -http attached pays per span and per phase observation.
func BenchmarkObsEnabled(b *testing.B) {
	o := &Obs{Metrics: NewRegistry()}
	ctx := NewContext(context.Background(), o)
	b.Run("span", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, sp := Start(ctx, "bench/span")
			sp.End()
		}
	})
	b.Run("phase", func(b *testing.B) {
		b.ReportAllocs()
		ph := o.Phase("bench/phase")
		for i := 0; i < b.N; i++ {
			ph.Start().Stop()
		}
	})
}
