package obs

import (
	"encoding/json"
	"os"
	"sync"
	"time"
)

// Event is one structured line of the JSONL event log.
type Event struct {
	// Time is RFC3339Nano wall-clock time of the event.
	Time string `json:"t"`
	// Ev is the event kind: run_start, span_start, span_end, failure, log,
	// run_end.
	Ev string `json:"ev"`
	// Name is the span name for span events.
	Name string `json:"name,omitempty"`
	// ID and Parent correlate span_start/span_end pairs and the hierarchy.
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	// Seconds is the span duration (span_end) or elapsed run time.
	Seconds float64 `json:"seconds,omitempty"`
	// Level and Msg carry mirrored log lines and failure descriptions.
	Level string `json:"level,omitempty"`
	Msg   string `json:"msg,omitempty"`
	// Worker is the worker id for worker-scoped events (-1 when absent is
	// omitted).
	Worker *int `json:"worker,omitempty"`
	// Attrs are the span attributes (matrix, algorithm, class, …).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Req, Status and Phases carry the serving path's access-log lines
	// (ev "access"): the request id echoed to the client, the HTTP status
	// written, and the per-phase latency decomposition in seconds.
	Req    string             `json:"req,omitempty"`
	Status int                `json:"status,omitempty"`
	Phases map[string]float64 `json:"phases,omitempty"`
}

// EventLog is an append-only JSONL sink for span and failure events. Its
// append discipline mirrors fsutil.WriteFileAtomic's torn-write rule at
// line granularity: each event is marshalled fully, then written to the
// O_APPEND file as one Write under the mutex, so concurrent emitters never
// interleave bytes and a crash can truncate at most the final line — which
// any JSONL reader skips. Close fsyncs; individual events are not fsynced
// (the event log is a diagnostic trace, not the durability journal).
type EventLog struct {
	mu  sync.Mutex
	f   *os.File
	err error // first write error; later emits become no-ops
}

// OpenEventLog opens (creating or appending to) the JSONL event log at
// path and records a run_start event.
func OpenEventLog(path string) (*EventLog, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	e := &EventLog{f: f}
	e.Emit(Event{Ev: "run_start"})
	return e, nil
}

// Emit appends one event. Event.Time is stamped here if unset. Emit is
// safe for concurrent use and never blocks on fsync; after a write error
// the log goes quiet rather than failing the run.
func (e *EventLog) Emit(ev Event) {
	if e == nil {
		return
	}
	if ev.Time == "" {
		ev.Time = time.Now().Format(time.RFC3339Nano)
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return
	}
	line = append(line, '\n')
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil || e.f == nil {
		return
	}
	if _, err := e.f.Write(line); err != nil {
		e.err = err
	}
}

// Err returns the first write error, if any.
func (e *EventLog) Err() error {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// Close records a run_end event, fsyncs and closes the file.
func (e *EventLog) Close() error {
	if e == nil {
		return nil
	}
	e.Emit(Event{Ev: "run_end"})
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		return e.err
	}
	serr := e.f.Sync()
	cerr := e.f.Close()
	e.f = nil
	switch {
	case e.err != nil:
		return e.err
	case serr != nil:
		return serr
	default:
		return cerr
	}
}

func (e *EventLog) emitSpanStart(s *Span) {
	e.Emit(Event{Ev: "span_start", Name: s.name, ID: s.id, Parent: s.parent})
}

func (e *EventLog) emitSpanEnd(s *Span, seconds float64) {
	ev := Event{Ev: "span_end", Name: s.name, ID: s.id, Parent: s.parent, Seconds: seconds}
	if s.nattrs > 0 {
		ev.Attrs = make(map[string]string, s.nattrs)
		for _, l := range s.attrs[:s.nattrs] {
			ev.Attrs[l.Key] = l.Value
		}
	}
	e.Emit(ev)
}

func (e *EventLog) emitLog(level Level, msg string, worker int) {
	ev := Event{Ev: "log", Level: level.String(), Msg: msg}
	if worker >= 0 {
		ev.Worker = &worker
	}
	e.Emit(ev)
}

// EmitAccess records one structured access-log line for a completed
// request: the JSONL twin of the trace a TraceRing retains, so the event
// log alone reconstructs per-request phase attribution after the ring has
// wrapped. Nil-receiver safe.
func (e *EventLog) EmitAccess(t *ReqTrace) {
	if e == nil || t == nil {
		return
	}
	ev := Event{Ev: "access", Name: t.Route, Req: t.ID, Status: t.Status,
		Seconds: t.Seconds, Msg: t.Error}
	if t.Class != "" {
		ev.Level = "error"
		ev.Attrs = map[string]string{"class": t.Class}
	}
	if t.Key != "" {
		if ev.Attrs == nil {
			ev.Attrs = map[string]string{}
		}
		ev.Attrs["key"] = t.Key
	}
	if len(t.Phases) > 0 {
		ev.Phases = make(map[string]float64, len(t.Phases))
		for _, p := range t.Phases {
			ev.Phases[p.Name] = p.Seconds
		}
	}
	e.Emit(ev)
}

// EmitFailure records a failure event: name identifies the failed unit
// (matrix), class the failure class, msg the first line of the error.
func (e *EventLog) EmitFailure(name, class, msg string) {
	if e == nil {
		return
	}
	e.Emit(Event{Ev: "failure", Name: name, Level: "error", Msg: msg,
		Attrs: map[string]string{"class": class}})
}
