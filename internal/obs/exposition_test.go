package obs

import (
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// nameRE is the Prometheus metric-name grammar; labelRE the label-name
// grammar. Every family and sample the registry emits must conform or
// real scrapers reject the whole exposition.
var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// sampleRE splits a sample line into name, optional label block, value.
	sampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$`)
)

// validateExposition runs a line-level conformance check over a text
// exposition: sample lines parse, names and label names match the
// grammar, label values are properly quoted and escaped, every sample is
// preceded by its family's TYPE line, each family declares HELP/TYPE at
// most once, and histograms carry a +Inf bucket whose cumulative count
// equals _count.
func validateExposition(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{} // family -> type
	helped := map[string]bool{}  // family -> HELP seen
	infBucket := map[string]uint64{}
	counts := map[string]uint64{}

	for ln, line := range strings.Split(text, "\n") {
		where := fmt.Sprintf("line %d: %q", ln+1, line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if !nameRE.MatchString(parts[0]) {
				t.Errorf("%s: HELP for invalid name %q", where, parts[0])
			}
			if helped[parts[0]] {
				t.Errorf("%s: duplicate HELP for %s", where, parts[0])
			}
			helped[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Errorf("%s: malformed TYPE line", where)
				continue
			}
			if _, dup := typed[parts[0]]; dup {
				t.Errorf("%s: duplicate TYPE for %s", where, parts[0])
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("%s: unknown type %q", where, parts[1])
			}
			typed[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("%s: unrecognized comment form", where)
			continue
		}

		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("%s: not a valid sample line", where)
			continue
		}
		name, labelBlock, valueText := m[1], m[2], m[3]
		value, err := parseValue(valueText)
		if err != nil {
			t.Errorf("%s: bad value: %v", where, err)
		}

		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				family = base
			}
		}
		ftype, ok := typed[family]
		if !ok {
			t.Errorf("%s: sample before any TYPE line for %s", where, family)
		}

		labels, perr := parseLabelBlock(labelBlock)
		if perr != nil {
			t.Errorf("%s: %v", where, perr)
			continue
		}
		for k := range labels {
			if k == "le" && family != name {
				continue
			}
			if !labelRE.MatchString(k) {
				t.Errorf("%s: invalid label name %q", where, k)
			}
		}
		if ftype == "histogram" {
			key := family + "|" + labelKeyWithoutLe(labels)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if labels["le"] == "+Inf" {
					infBucket[key] = uint64(value)
				}
			case strings.HasSuffix(name, "_count"):
				counts[key] = uint64(value)
			}
		}
		if ftype == "counter" && value < 0 {
			t.Errorf("%s: negative counter", where)
		}
	}

	for key, c := range counts {
		inf, ok := infBucket[key]
		if !ok {
			t.Errorf("histogram %s has no +Inf bucket", key)
			continue
		}
		if inf != c {
			t.Errorf("histogram %s: +Inf bucket %d != count %d", key, inf, c)
		}
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabelBlock parses {k="v",…} validating quoting and escapes.
func parseLabelBlock(block string) (map[string]string, error) {
	labels := map[string]string{}
	if block == "" {
		return labels, nil
	}
	if !strings.HasPrefix(block, "{") || !strings.HasSuffix(block, "}") {
		return nil, fmt.Errorf("label block %q not brace-delimited", block)
	}
	body := block[1 : len(block)-1]
	i := 0
	for i < len(body) {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("no '=' in label segment %q", body[i:])
		}
		key := body[i : i+eq]
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(body) {
				return nil, fmt.Errorf("label %q value unterminated", key)
			}
			c := body[i]
			if c == '\n' {
				return nil, fmt.Errorf("label %q contains a raw newline", key)
			}
			if c == '\\' {
				if i+1 >= len(body) {
					return nil, fmt.Errorf("label %q ends mid-escape", key)
				}
				switch body[i+1] {
				case '\\', '"', 'n':
				default:
					return nil, fmt.Errorf("label %q has invalid escape \\%c", key, body[i+1])
				}
				val.WriteByte(body[i+1])
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
		i++ // closing quote
		if i < len(body) {
			if body[i] != ',' {
				return nil, fmt.Errorf("expected ',' after label %q", key)
			}
			i++
		}
	}
	return labels, nil
}

func labelKeyWithoutLe(labels map[string]string) string {
	var parts []string
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	// Order-insensitive join for map iteration.
	for i := 0; i < len(parts); i++ {
		for j := i + 1; j < len(parts); j++ {
			if parts[j] < parts[i] {
				parts[i], parts[j] = parts[j], parts[i]
			}
		}
	}
	return strings.Join(parts, ",")
}

// TestExpositionConformance renders a registry exercising every metric
// kind, awkward label values, and a custom collector, then validates the
// whole document line by line.
func TestExpositionConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("sparseorder_test_total", "a counter", Label{"path", `C:\tmp "x"` + "\nend"}).Inc()
	r.Counter("sparseorder_test_total", "a counter", Label{"path", "plain"}).Add(3)
	r.Gauge("sparseorder_test_gauge", "a gauge").Set(-2.5)
	h := r.Histogram("sparseorder_test_seconds", "a histogram", DefBuckets, Label{"route", "spmv"})
	for _, v := range []float64{0.0001, 0.02, 5, 1e6} {
		h.Observe(v)
	}
	r.AddCollector(RuntimeCollector())
	r.AddCollector(func(w io.Writer) error {
		_, err := fmt.Fprint(w, "# HELP sparseorder_test_custom collector-emitted gauge\n"+
			"# TYPE sparseorder_test_custom gauge\nsparseorder_test_custom 7\n")
		return err
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	validateExposition(t, b.String())

	// The escaped label round-trips through the validator's parser.
	if !strings.Contains(b.String(), `path="C:\\tmp \"x\"\nend"`) {
		t.Errorf("escaped label value missing:\n%s", b.String())
	}
}

// TestFamiliesLint asserts every family name the registry hands out obeys
// the Prometheus naming grammar — the compile-time guard for new metric
// call sites anywhere in the tree that lands in this registry.
func TestFamiliesLint(t *testing.T) {
	r := NewRegistry()
	r.Counter("sparseorder_lint_total", "")
	r.Gauge("sparseorder_lint_gauge", "")
	r.Histogram("sparseorder_lint_seconds", "", DefBuckets)
	fams := r.Families()
	if len(fams) != 3 {
		t.Fatalf("Families() = %v, want 3 entries", fams)
	}
	for _, f := range fams {
		if !nameRE.MatchString(f) {
			t.Errorf("family %q violates the Prometheus naming grammar", f)
		}
	}
}
