package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the live status endpoint for o:
//
//	/            index listing the endpoints
//	/metrics     Prometheus text exposition of o.Metrics
//	/progress    JSON ProgressSnapshot of o.Progress
//	/debug/vars  expvar (memstats, cmdline)
//	/debug/pprof/…  the full runtime/pprof surface (heap, goroutine,
//	             profile, trace, …)
//
// The handler is safe to serve while a study is running; every view reads
// through the same atomics/mutexes the instrumentation writes.
func (o *Obs) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "sparseorder study live endpoint\n\n"+
			"/metrics         Prometheus metrics\n"+
			"/progress        JSON progress view\n"+
			"/debug/requests  recent/slowest/errored request traces\n"+
			"/debug/vars      expvar\n"+
			"/debug/pprof/    profiling\n")
	})
	o.Mount(mux)
	return mux
}

// Mount registers the telemetry endpoints — /metrics, /progress,
// /debug/vars and /debug/pprof/* — on a caller-owned mux, so commands that
// serve their own API (cmd/serve) expose the same endpoints as cmd/study's
// -http without duplicating the wiring. The root route is left to the
// caller. Mount is safe on a nil or partially-populated Obs: the metrics
// and progress views degrade to empty documents.
func (o *Obs) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if o != nil && o.Metrics != nil {
			o.Metrics.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap ProgressSnapshot
		if o != nil {
			snap = o.Progress.Snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
	var ring *TraceRing
	if o != nil {
		ring = o.Requests
	}
	mux.HandleFunc("/debug/requests", ring.TraceHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve starts the live endpoint on addr (e.g. ":8080" or
// "127.0.0.1:8080"). It returns once the listener is bound — so a bad
// address fails fast, before the study starts — and serves in a background
// goroutine until the server is Closed. The bound address is returned for
// logging (useful with ":0").
func Serve(addr string, o *Obs) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: o.Handler()}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
