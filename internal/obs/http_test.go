package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	return res, string(body)
}

// TestHandlerEndpoints exercises the full endpoint surface the CI smoke
// job curls.
func TestHandlerEndpoints(t *testing.T) {
	o := &Obs{Metrics: NewRegistry(), Progress: NewProgress()}
	o.Metrics.Counter("sparseorder_matrices_total", "m", Label{"outcome", "done"}).Inc()
	o.Progress.SetTotal(3, 0)
	o.Progress.StartMatrix(0, "g0")
	h := o.Handler()

	res, body := get(t, h, "/")
	if res.StatusCode != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index: status %d body %q", res.StatusCode, body)
	}
	if res, _ := get(t, h, "/nope"); res.StatusCode != 404 {
		t.Errorf("unknown path: status %d, want 404", res.StatusCode)
	}

	res, body = get(t, h, "/metrics")
	if res.StatusCode != 200 {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content-type %q", ct)
	}
	if !strings.Contains(body, `sparseorder_matrices_total{outcome="done"} 1`) {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}

	res, body = get(t, h, "/progress")
	if res.StatusCode != 200 {
		t.Fatalf("/progress status %d", res.StatusCode)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if snap.Total != 3 || len(snap.Running) != 1 || snap.Running[0].Matrix != "g0" {
		t.Errorf("/progress snapshot = %+v", snap)
	}

	if res, _ := get(t, h, "/debug/vars"); res.StatusCode != 200 {
		t.Errorf("/debug/vars status %d", res.StatusCode)
	}
	if res, _ := get(t, h, "/debug/pprof/"); res.StatusCode != 200 {
		t.Errorf("/debug/pprof/ status %d", res.StatusCode)
	}
	if res, _ := get(t, h, "/debug/pprof/cmdline"); res.StatusCode != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", res.StatusCode)
	}
}

// TestHandlerNilSinks: the endpoint must serve (empty) views even when a
// sink is missing rather than panic.
func TestHandlerNilSinks(t *testing.T) {
	h := (&Obs{}).Handler()
	if res, _ := get(t, h, "/metrics"); res.StatusCode != 200 {
		t.Errorf("/metrics with nil registry: status %d", res.StatusCode)
	}
	res, body := get(t, h, "/progress")
	if res.StatusCode != 200 {
		t.Errorf("/progress with nil progress: status %d", res.StatusCode)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Errorf("/progress not JSON: %v", err)
	}
}

// TestServeBindsAndServes starts a real listener on an ephemeral port,
// fetches /metrics over TCP and shuts down.
func TestServeBindsAndServes(t *testing.T) {
	o := &Obs{Metrics: NewRegistry()}
	o.Metrics.Gauge("sparseorder_workers", "w").Set(2)
	srv, addr, err := Serve("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	res, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 || !strings.Contains(string(body), "sparseorder_workers 2") {
		t.Errorf("status %d body:\n%s", res.StatusCode, body)
	}
}

// TestServeBadAddressFailsFast: a malformed address must error before any
// study work starts, not asynchronously.
func TestServeBadAddressFailsFast(t *testing.T) {
	if _, _, err := Serve("definitely:not:an:addr", nil); err == nil {
		t.Error("bad address did not fail")
	}
}

// TestMountSharesMux is the cmd/serve composition: telemetry endpoints
// mounted onto a caller-owned mux coexist with the caller's own routes,
// and the root stays under the caller's control.
func TestMountSharesMux(t *testing.T) {
	o := &Obs{Metrics: NewRegistry(), Progress: NewProgress()}
	o.Metrics.Counter("sparseorder_test_total", "t").Inc()
	mux := http.NewServeMux()
	mux.HandleFunc("/api", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "api")
	})
	o.Mount(mux)

	res, body := get(t, mux, "/api")
	if res.StatusCode != 200 || body != "api" {
		t.Fatalf("/api = %d %q, want the caller's route", res.StatusCode, body)
	}
	res, body = get(t, mux, "/metrics")
	if res.StatusCode != 200 || !strings.Contains(body, "sparseorder_test_total") {
		t.Fatalf("/metrics = %d %q, want the mounted registry", res.StatusCode, body)
	}
	res, body = get(t, mux, "/progress")
	if res.StatusCode != 200 {
		t.Fatalf("/progress = %d", res.StatusCode)
	}
	var snap ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if res, _ := get(t, mux, "/debug/pprof/"); res.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ = %d", res.StatusCode)
	}
	// The root is the caller's: with no route registered it 404s instead of
	// serving the study index.
	if res, _ := get(t, mux, "/"); res.StatusCode != 404 {
		t.Fatalf("/ = %d, want 404 on an unowned root", res.StatusCode)
	}
}
