package obs

import (
	"fmt"
	"io"
	"sync"
)

// Level is a log severity.
type Level int

// Log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// Logger is a leveled line logger. Lines below the configured level are
// dropped; everything else is written as prefix+message+"\n" — the same
// wire format as the stdlib log package with zero flags, so replacing
// log.Printf keeps stderr byte-stable for scripts. When an EventLog is
// attached, every emitted line is also recorded as a structured "log"
// event carrying its level and worker id.
//
// Derived loggers (Worker) share the parent's writer, mutex, level and
// event sink, so output from any number of workers interleaves line-atomically.
type Logger struct {
	core   *loggerCore
	prefix string
	worker int // -1 when not worker-scoped
}

type loggerCore struct {
	mu     sync.Mutex
	w      io.Writer
	level  Level
	events *EventLog
}

// NewLogger returns a logger writing lines at or above level to w with the
// given prefix (e.g. "study: ").
func NewLogger(w io.Writer, level Level, prefix string) *Logger {
	return &Logger{core: &loggerCore{w: w, level: level}, prefix: prefix, worker: -1}
}

// AttachEvents mirrors every emitted line into the event log.
func (l *Logger) AttachEvents(e *EventLog) {
	if l == nil {
		return
	}
	l.core.mu.Lock()
	l.core.events = e
	l.core.mu.Unlock()
}

// Worker returns a derived logger whose lines carry a "[wN] " per-worker
// prefix after the base prefix, and whose structured events record the
// worker id.
func (l *Logger) Worker(n int) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{core: l.core, prefix: fmt.Sprintf("%s[w%d] ", l.prefix, n), worker: n}
}

// Enabled reports whether a line at the given level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.core.level
}

func (l *Logger) logf(level Level, force bool, format string, args ...any) {
	if l == nil || (!force && !l.Enabled(level)) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	l.core.mu.Lock()
	fmt.Fprintf(l.core.w, "%s%s\n", l.prefix, msg)
	events := l.core.events
	l.core.mu.Unlock()
	if events != nil {
		events.emitLog(level, msg, l.worker)
	}
}

// Debugf logs at debug level. All level methods are nil-receiver safe.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, false, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, false, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, false, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, false, format, args...) }

// Printf emits an info-level line regardless of the configured level. It is
// the drop-in replacement for bare log.Printf call sites whose output
// scripts depend on: the line always reaches stderr (and the event log),
// even when the level filter would suppress ordinary Infof traffic.
func (l *Logger) Printf(format string, args ...any) { l.logf(LevelInfo, true, format, args...) }
