package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoggerLevelGating pins the -v contract: below-level lines are
// dropped, Printf bypasses the filter, and the wire format is exactly
// prefix+message+"\n" (stdlib log with zero flags), so scripts parsing
// stderr see no change from the log.Printf era.
func TestLoggerLevelGating(t *testing.T) {
	var b strings.Builder
	lg := NewLogger(&b, LevelWarn, "study: ")
	lg.Debugf("d")
	lg.Infof("quiet %d", 1)
	lg.Warnf("warn %d", 2)
	lg.Errorf("err %d", 3)
	lg.Printf("forced %d", 4)
	want := "study: warn 2\nstudy: err 3\nstudy: forced 4\n"
	if b.String() != want {
		t.Errorf("output = %q, want %q", b.String(), want)
	}
	if lg.Enabled(LevelInfo) || !lg.Enabled(LevelWarn) {
		t.Error("Enabled disagrees with the configured level")
	}
}

// TestLoggerWorkerPrefix checks the derived per-worker logger's prefix and
// that it shares the parent's level.
func TestLoggerWorkerPrefix(t *testing.T) {
	var b strings.Builder
	lg := NewLogger(&b, LevelInfo, "study: ")
	w := lg.Worker(3)
	w.Infof("evaluating %s", "g0")
	w.Debugf("hidden")
	if got, want := b.String(), "study: [w3] evaluating g0\n"; got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

// TestLoggerEventMirroring checks emitted lines are mirrored as structured
// "log" events carrying level and worker id.
func TestLoggerEventMirroring(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	ev, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	lg := NewLogger(&b, LevelInfo, "study: ")
	lg.AttachEvents(ev)
	lg.Warnf("base line")
	lg.Worker(2).Infof("worker line")
	lg.Infof("dropped?") // printed (info ≥ info) and mirrored
	if err := ev.Close(); err != nil {
		t.Fatal(err)
	}
	events := readEvents(t, path)
	var logs []Event
	for _, e := range events {
		if e.Ev == "log" {
			logs = append(logs, e)
		}
	}
	if len(logs) != 3 {
		t.Fatalf("%d log events, want 3: %+v", len(logs), logs)
	}
	if logs[0].Level != "warn" || logs[0].Msg != "base line" || logs[0].Worker != nil {
		t.Errorf("base event = %+v", logs[0])
	}
	if logs[1].Worker == nil || *logs[1].Worker != 2 || logs[1].Msg != "worker line" {
		t.Errorf("worker event = %+v", logs[1])
	}
}

// TestLoggerSuppressedLineNotMirrored: a level-dropped line must not reach
// the event log either.
func TestLoggerSuppressedLineNotMirrored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	ev, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	lg := NewLogger(os.Stderr, LevelError, "x: ")
	lg.AttachEvents(ev)
	lg.Infof("quiet")
	if err := ev.Close(); err != nil {
		t.Fatal(err)
	}
	for _, e := range readEvents(t, path) {
		if e.Ev == "log" {
			t.Errorf("suppressed line reached the event log: %+v", e)
		}
	}
}

// TestNilLogger drives every method through a nil receiver.
func TestNilLogger(t *testing.T) {
	var lg *Logger
	lg.Debugf("a")
	lg.Infof("b")
	lg.Warnf("c")
	lg.Errorf("d")
	lg.Printf("e")
	lg.AttachEvents(nil)
	if lg.Worker(1) != nil {
		t.Error("nil logger Worker returned non-nil")
	}
	if lg.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
}
