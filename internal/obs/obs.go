// Package obs is the study's stdlib-only observability layer: hierarchical
// span tracing, an aggregated metrics registry with Prometheus text export,
// a leveled structured logger, a JSONL event log, and a live progress view,
// all served over an optional HTTP endpoint (see Handler).
//
// The package is built around one invariant: when no *Obs is attached —
// the common case for library users and for every hot loop in a study run
// without -http/-events — instrumentation must cost nothing. Every entry
// point is nil-receiver safe, Start returns the context unchanged and a nil
// span, and the whole disabled path performs zero heap allocations
// (verified by BenchmarkObsDisabled and TestDisabledPathZeroAlloc).
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Obs bundles the observability sinks for one run. Any field may be nil;
// instrumented code never has to check which sinks are attached.
type Obs struct {
	// Metrics receives span durations (as sparseorder_span_seconds
	// histogram observations) and whatever counters/gauges instrumented
	// code registers.
	Metrics *Registry
	// Events receives span_start/span_end and failure events as JSONL.
	Events *EventLog
	// Log is the structured leveled logger; instrumented code may emit
	// through it instead of carrying its own log function.
	Log *Logger
	// Progress is the live matrices done/queued/failed view served by the
	// HTTP endpoint.
	Progress *Progress
	// Requests retains completed request traces for /debug/requests; only
	// the serving path (internal/server) populates it.
	Requests *TraceRing
}

// ctxKey is the context key type for both the Obs and the current span.
type ctxKey int

const (
	obsKey ctxKey = iota
	spanKey
)

// NewContext returns a context carrying o; Start and FromContext on the
// returned context observe it. A nil o returns ctx unchanged.
func NewContext(ctx context.Context, o *Obs) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, obsKey, o)
}

// FromContext returns the Obs attached by NewContext, or nil. The nil
// result is usable: every method of a nil *Obs is a no-op.
func FromContext(ctx context.Context) *Obs {
	o, _ := ctx.Value(obsKey).(*Obs)
	return o
}

// spanID is the process-wide span id source; ids only need to be unique
// within one run so span_start/span_end event pairs can be correlated.
var spanID atomic.Uint64

// Span is one timed operation. A nil *Span (the disabled path) accepts
// every method as a no-op, so callers never branch on whether tracing is
// attached.
type Span struct {
	obs    *Obs
	name   string
	id     uint64
	parent uint64
	start  time.Time
	// attrs is inline storage for the few labels a span carries (worker,
	// matrix, algorithm); nattrs counts the used slots. Overflow attrs are
	// dropped rather than spilled to a heap slice.
	attrs  [4]Label
	nattrs int
}

// Label is one key/value annotation on a span or metric series.
type Label struct {
	Key   string
	Value string
}

// Start begins a span named name as a child of the span in ctx (if any),
// returning a derived context carrying the new span. When ctx holds no Obs
// it returns ctx unchanged and a nil span: the disabled path allocates
// nothing.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	o := FromContext(ctx)
	if o == nil {
		return ctx, nil
	}
	var parent uint64
	if ps, _ := ctx.Value(spanKey).(*Span); ps != nil {
		parent = ps.id
	}
	s := o.newSpan(name, parent)
	return context.WithValue(ctx, spanKey, s), s
}

// Span begins a detached span (no parent linkage) on o. It is the
// ctx-free variant of Start for call sites that already hold the Obs; a
// nil receiver returns a nil span.
func (o *Obs) Span(name string) *Span {
	if o == nil {
		return nil
	}
	return o.newSpan(name, 0)
}

func (o *Obs) newSpan(name string, parent uint64) *Span {
	s := &Span{obs: o, name: name, id: spanID.Add(1), parent: parent, start: time.Now()}
	if o.Events != nil {
		o.Events.emitSpanStart(s)
	}
	return s
}

// SetAttr annotates the span. At most four attributes are kept; later ones
// are dropped. No-op on a nil span.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.nattrs == len(s.attrs) {
		return
	}
	s.attrs[s.nattrs] = Label{key, value}
	s.nattrs++
}

// End closes the span: the duration is observed into the metrics registry
// (histogram sparseorder_span_seconds{span=name}) and a span_end event is
// emitted. No-op on a nil span; calling End twice records twice, so don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	sec := time.Since(s.start).Seconds()
	if r := s.obs.Metrics; r != nil {
		r.Histogram(SpanSecondsMetric, "span duration by span name", DefBuckets,
			Label{"span", s.name}).Observe(sec)
	}
	if e := s.obs.Events; e != nil {
		e.emitSpanEnd(s, sec)
	}
}

// SpanSecondsMetric is the histogram family every span duration lands in.
const SpanSecondsMetric = "sparseorder_span_seconds"

// Phase is a pre-resolved histogram handle for a fine-grained recurring
// phase (e.g. one coarsening pass of one bisection). Observations go to
// the metrics registry only — no per-observation event-log line — so inner
// loops can record hundreds of timings per matrix without flooding the
// event log. The zero Phase (and any Phase from a nil Obs) is disabled.
type Phase struct {
	h *Histogram
}

// Phase resolves the histogram for a recurring phase, nil-receiver safe.
func (o *Obs) Phase(name string) Phase {
	if o == nil || o.Metrics == nil {
		return Phase{}
	}
	return Phase{h: o.Metrics.Histogram(SpanSecondsMetric,
		"span duration by span name", DefBuckets, Label{"span", name})}
}

// Enabled reports whether observations will be recorded.
func (p Phase) Enabled() bool { return p.h != nil }

// Observe records one duration in seconds; no-op when disabled.
func (p Phase) Observe(seconds float64) {
	if p.h != nil {
		p.h.Observe(seconds)
	}
}

// Timing is an in-flight Phase measurement; it is returned by value so the
// Start/Stop pair allocates nothing.
type Timing struct {
	ph Phase
	t0 time.Time
}

// Start begins timing; on a disabled phase it does not even read the clock.
func (p Phase) Start() Timing {
	if p.h == nil {
		return Timing{}
	}
	return Timing{ph: p, t0: time.Now()}
}

// Stop records the elapsed time; no-op for a Timing from a disabled phase.
func (t Timing) Stop() {
	if t.ph.h != nil {
		t.ph.h.Observe(time.Since(t.t0).Seconds())
	}
}
