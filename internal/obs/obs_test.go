package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// readEvents parses every JSONL line of the event log at path.
func readEvents(t *testing.T, path string) []Event {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []Event
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSpanHierarchyAndEvents checks the tentpole wiring end to end: nested
// spans carry parent linkage into the event log, attributes survive, and
// durations land in the sparseorder_span_seconds histogram.
func TestSpanHierarchyAndEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	ev, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	o := &Obs{Metrics: NewRegistry(), Events: ev}
	ctx := NewContext(context.Background(), o)

	ctx1, outer := Start(ctx, "outer")
	outer.SetAttr("matrix", "g0")
	_, inner := Start(ctx1, "inner")
	inner.End()
	outer.End()
	if err := ev.Close(); err != nil {
		t.Fatal(err)
	}

	events := readEvents(t, path)
	if len(events) != 6 { // run_start, 2×span_start, 2×span_end, run_end
		t.Fatalf("%d events, want 6: %+v", len(events), events)
	}
	if events[0].Ev != "run_start" || events[len(events)-1].Ev != "run_end" {
		t.Errorf("missing run_start/run_end framing: %+v", events)
	}
	byName := map[string]map[string]Event{}
	for _, e := range events {
		if e.Name == "" {
			continue
		}
		if byName[e.Name] == nil {
			byName[e.Name] = map[string]Event{}
		}
		byName[e.Name][e.Ev] = e
	}
	os, is := byName["outer"]["span_start"], byName["inner"]["span_start"]
	if is.Parent != os.ID {
		t.Errorf("inner parent = %d, want outer id %d", is.Parent, os.ID)
	}
	if os.Parent != 0 {
		t.Errorf("outer parent = %d, want 0 (root)", os.Parent)
	}
	oe := byName["outer"]["span_end"]
	if oe.ID != os.ID || oe.Attrs["matrix"] != "g0" || oe.Seconds < 0 {
		t.Errorf("outer span_end = %+v", oe)
	}

	for _, name := range []string{"outer", "inner"} {
		h := o.Metrics.Histogram(SpanSecondsMetric, "", DefBuckets, Label{"span", name})
		if h.Count() != 1 {
			t.Errorf("span %s: histogram count %d, want 1", name, h.Count())
		}
	}
}

// TestStartWithoutObsReturnsSameContext pins the disabled contract: the
// context is returned unchanged (no derived allocation) and the span is nil.
func TestStartWithoutObsReturnsSameContext(t *testing.T) {
	ctx := context.Background()
	got, sp := Start(ctx, "x")
	if got != ctx {
		t.Error("Start without Obs derived a new context")
	}
	if sp != nil {
		t.Error("Start without Obs returned a non-nil span")
	}
	sp.SetAttr("k", "v") // must not panic
	sp.End()
}

// TestDisabledPathZeroAlloc is the acceptance gate: with no Obs attached,
// the whole instrumentation surface allocates nothing.
func TestDisabledPathZeroAlloc(t *testing.T) {
	ctx := context.Background()
	var ph Phase
	var lg *Logger
	cases := []struct {
		name string
		fn   func()
	}{
		{"span", func() {
			_, sp := Start(ctx, "bench")
			sp.SetAttr("k", "v")
			sp.End()
		}},
		{"phase", func() { ph.Start().Stop() }},
		{"phase_observe", func() { ph.Observe(0.5) }},
		{"from_context", func() { FromContext(ctx).Phase("p") }},
		{"nil_logger", func() { lg.Infof("x %d", 1) }},
		{"nil_obs_span", func() { (*Obs)(nil).Span("s").End() }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(100, c.fn); n != 0 {
			t.Errorf("%s: %v allocs/op on the disabled path, want 0", c.name, n)
		}
	}
}

// TestSetAttrOverflow checks attrs beyond the inline capacity are dropped,
// not spilled (the hot path must not grow a slice).
func TestSetAttrOverflow(t *testing.T) {
	o := &Obs{Metrics: NewRegistry()}
	sp := o.Span("s")
	for i := 0; i < 6; i++ {
		sp.SetAttr(string(rune('a'+i)), "v")
	}
	if sp.nattrs != len(sp.attrs) {
		t.Errorf("nattrs = %d, want %d", sp.nattrs, len(sp.attrs))
	}
	sp.End()
}

// TestPhaseRecordsIntoSpanHistogram checks Phase observations share the
// span-seconds family, keyed by the span label.
func TestPhaseRecordsIntoSpanHistogram(t *testing.T) {
	o := &Obs{Metrics: NewRegistry()}
	ph := o.Phase("partition/coarsen")
	if !ph.Enabled() {
		t.Fatal("phase on live registry not enabled")
	}
	tm := ph.Start()
	time.Sleep(time.Millisecond)
	tm.Stop()
	ph.Observe(2)
	h := o.Metrics.Histogram(SpanSecondsMetric, "", DefBuckets, Label{"span", "partition/coarsen"})
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
	if h.Sum() <= 2 {
		t.Errorf("sum = %v, want > 2", h.Sum())
	}
}

// TestNilSafety drives every sink method through nil receivers.
func TestNilSafety(t *testing.T) {
	var o *Obs
	var p *Progress
	var e *EventLog
	var prof *Profiles
	o.Span("x").End()
	o.Phase("x").Start().Stop()
	p.SetTotal(1, 0)
	p.StartMatrix(0, "m")
	p.FinishMatrix(0, true)
	p.Finish()
	if s := p.Snapshot(); s.Total != 0 {
		t.Errorf("nil progress snapshot = %+v", s)
	}
	e.Emit(Event{Ev: "x"})
	e.EmitFailure("m", "error", "boom")
	if err := e.Close(); err != nil {
		t.Errorf("nil event log Close: %v", err)
	}
	if err := prof.Stop(); err != nil {
		t.Errorf("nil profiles Stop: %v", err)
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Error("NewContext(nil) derived a context")
	}
}
