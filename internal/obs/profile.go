package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiles manages the -cpuprofile/-memprofile/-trace output files shared
// by cmd/study and cmd/spmvbench. Stop is idempotent and must run on every
// exit path — including cancellation and the partial-failure exit codes —
// so the files are complete and closed whatever code the process exits
// with; the commands guarantee that by deferring Stop before any study
// work starts.
type Profiles struct {
	cpuFile   *os.File
	traceFile *os.File
	memPath   string
	stopped   bool
}

// StartProfiles opens the requested profile outputs: a CPU profile
// streaming to cpuPath, an execution trace streaming to tracePath, and a
// heap profile written at Stop time to memPath. Empty paths disable the
// corresponding profile. On error everything already started is stopped.
func StartProfiles(cpuPath, memPath, tracePath string) (*Profiles, error) {
	p := &Profiles{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpuFile = f
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			p.Stop()
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			p.Stop()
			return nil, fmt.Errorf("trace: %w", err)
		}
		p.traceFile = f
	}
	return p, nil
}

// Stop flushes and closes every active profile. The heap profile is taken
// here (after a GC, so it reflects live objects). Errors are returned but
// the remaining profiles are still stopped; calling Stop again is a no-op.
func (p *Profiles) Stop() error {
	if p == nil || p.stopped {
		return nil
	}
	p.stopped = true
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil && first == nil {
			first = err
		}
	}
	if p.traceFile != nil {
		trace.Stop()
		if err := p.traceFile.Close(); err != nil && first == nil {
			first = err
		}
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			if first == nil {
				first = err
			}
		} else {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
