package obs

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartProfilesWritesFiles runs the full cpu+mem+trace set and checks
// every file is non-empty after Stop — the contract the commands rely on
// for every exit path.
func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "trace.out")
	p, err := StartProfiles(cpu, mem, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to say.
	x := 0.0
	for i := 0; i < 1e6; i++ {
		x += float64(i)
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem, tr} {
		st, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty after Stop", path)
		}
	}
	if err := p.Stop(); err != nil {
		t.Errorf("second Stop: %v", err)
	}
}

// TestStartProfilesDisabled: empty paths are a fully inert Profiles.
func TestStartProfilesDisabled(t *testing.T) {
	p, err := StartProfiles("", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStartProfilesBadPath: an unwritable CPU path fails fast with nothing
// left running (a second StartProfiles must succeed).
func TestStartProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), "", ""); err == nil {
		t.Fatal("bad cpu path did not fail")
	}
	p, err := StartProfiles("", "", "")
	if err != nil {
		t.Fatalf("profiling left running after failed start: %v", err)
	}
	p.Stop()
}
