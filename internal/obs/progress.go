package obs

import (
	"sort"
	"sync"
	"time"
)

// Progress tracks the live state of a study run: how many matrices are
// done, failed and queued, what each worker is evaluating right now, and
// a naive rate-based ETA. All methods are nil-receiver safe so the runner
// can thread a possibly-nil pointer without branching.
type Progress struct {
	mu        sync.Mutex
	total     int
	journaled int
	done      int
	failed    int
	start     time.Time
	finished  bool
	workers   map[int]workerState
}

type workerState struct {
	matrix string
	since  time.Time
}

// NewProgress returns a Progress; the clock starts immediately.
func NewProgress() *Progress {
	return &Progress{start: time.Now(), workers: map[int]workerState{}}
}

// SetTotal records the number of matrices this run will evaluate and how
// many were pre-filled from a resume journal (already counted as done).
func (p *Progress) SetTotal(pending, journaled int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total = pending
	p.journaled = journaled
	p.mu.Unlock()
}

// StartMatrix marks worker as evaluating the named matrix.
func (p *Progress) StartMatrix(worker int, matrix string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.workers[worker] = workerState{matrix: matrix, since: time.Now()}
	p.mu.Unlock()
}

// FinishMatrix marks the worker idle and counts the outcome.
func (p *Progress) FinishMatrix(worker int, ok bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	delete(p.workers, worker)
	if ok {
		p.done++
	} else {
		p.failed++
	}
	p.mu.Unlock()
}

// Finish marks the whole run complete (workers drained).
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.finished = true
	p.mu.Unlock()
}

// WorkerProgress is one worker's live state in a Snapshot.
type WorkerProgress struct {
	Worker  int     `json:"worker"`
	Matrix  string  `json:"matrix"`
	Seconds float64 `json:"seconds"` // time spent on this matrix so far
}

// ProgressSnapshot is the JSON progress view served at /progress.
type ProgressSnapshot struct {
	Total          int              `json:"total"`  // matrices this run evaluates
	Done           int              `json:"done"`   // successful, this run
	Failed         int              `json:"failed"` // terminal failures, this run
	Queued         int              `json:"queued"` // not yet started
	Running        []WorkerProgress `json:"running"`
	Journaled      int              `json:"journaled"` // pre-filled by -resume
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	ETASeconds     float64          `json:"eta_seconds,omitempty"` // 0 until one matrix lands
	Finished       bool             `json:"finished"`
}

// Snapshot returns a consistent copy of the live state.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	s := ProgressSnapshot{
		Total:          p.total,
		Done:           p.done,
		Failed:         p.failed,
		Journaled:      p.journaled,
		ElapsedSeconds: now.Sub(p.start).Seconds(),
		Finished:       p.finished,
	}
	for w, st := range p.workers {
		s.Running = append(s.Running, WorkerProgress{Worker: w, Matrix: st.matrix, Seconds: now.Sub(st.since).Seconds()})
	}
	sort.Slice(s.Running, func(i, j int) bool { return s.Running[i].Worker < s.Running[j].Worker })
	s.Queued = s.Total - s.Done - s.Failed - len(s.Running)
	if s.Queued < 0 {
		s.Queued = 0
	}
	if completed := s.Done + s.Failed; completed > 0 && !s.Finished {
		remaining := s.Total - completed
		if remaining > 0 {
			s.ETASeconds = s.ElapsedSeconds / float64(completed) * float64(remaining)
		}
	}
	return s
}
