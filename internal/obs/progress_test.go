package obs

import (
	"testing"
	"time"
)

// TestProgressLifecycle walks a two-worker run through the snapshot states
// the /progress endpoint serves.
func TestProgressLifecycle(t *testing.T) {
	p := NewProgress()
	p.SetTotal(4, 2)

	p.StartMatrix(0, "a")
	p.StartMatrix(1, "b")
	s := p.Snapshot()
	if s.Total != 4 || s.Journaled != 2 || s.Done != 0 || s.Failed != 0 {
		t.Errorf("snapshot = %+v", s)
	}
	if len(s.Running) != 2 || s.Running[0].Worker != 0 || s.Running[0].Matrix != "a" ||
		s.Running[1].Worker != 1 || s.Running[1].Matrix != "b" {
		t.Errorf("running = %+v (must be sorted by worker)", s.Running)
	}
	if s.Queued != 2 {
		t.Errorf("queued = %d, want 2", s.Queued)
	}
	if s.ETASeconds != 0 {
		t.Errorf("ETA before any completion = %v, want 0", s.ETASeconds)
	}

	time.Sleep(2 * time.Millisecond) // give rate-based ETA a nonzero base
	p.FinishMatrix(0, true)
	p.FinishMatrix(1, false)
	s = p.Snapshot()
	if s.Done != 1 || s.Failed != 1 || len(s.Running) != 0 || s.Queued != 2 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.ETASeconds <= 0 {
		t.Errorf("ETA with work remaining = %v, want > 0", s.ETASeconds)
	}
	if s.ElapsedSeconds <= 0 {
		t.Errorf("elapsed = %v", s.ElapsedSeconds)
	}

	p.StartMatrix(0, "c")
	p.FinishMatrix(0, true)
	p.StartMatrix(1, "d")
	p.FinishMatrix(1, true)
	p.Finish()
	s = p.Snapshot()
	if !s.Finished || s.Done != 3 || s.Failed != 1 || s.Queued != 0 {
		t.Errorf("final snapshot = %+v", s)
	}
	if s.ETASeconds != 0 {
		t.Errorf("ETA after finish = %v, want 0", s.ETASeconds)
	}
}

// TestProgressQueuedNeverNegative: more completions than the declared
// total (possible during resume bookkeeping races) must clamp at 0.
func TestProgressQueuedNeverNegative(t *testing.T) {
	p := NewProgress()
	p.SetTotal(1, 0)
	p.StartMatrix(0, "a")
	p.FinishMatrix(0, true)
	p.StartMatrix(0, "b")
	p.FinishMatrix(0, true)
	if s := p.Snapshot(); s.Queued != 0 {
		t.Errorf("queued = %d, want 0", s.Queued)
	}
}
