package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default histogram bucket upper bounds in seconds,
// matching the Prometheus client defaults: wide enough for microsecond
// phase timings and multi-minute matrix evaluations alike.
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// Registry is a process-local metrics registry: counters, gauges and
// histograms identified by a family name plus a fixed label set, exported
// in Prometheus text format. Handle lookup takes a short read lock; the
// handles themselves update lock-free with atomics, so hot paths fetch a
// handle once and hammer it from any number of goroutines.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	collectors []func(io.Writer) error
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family groups every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // label signature → *Counter | *Gauge | *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter is a monotonically increasing counter. Safe for concurrent use.
type Counter struct {
	labels []Label
	v      atomic.Uint64
}

// Add increments the counter by n (n must be ≥ 0).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 value. Safe for concurrent use.
type Gauge struct {
	labels []Label
	bits   atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (CAS loop; lock-free).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket latency histogram. Observe is lock-free: a
// binary search over the immutable bounds plus three atomic updates.
type Histogram struct {
	labels  []Label
	bounds  []float64 // sorted upper bounds; the +Inf bucket is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value. A value equal to a bucket's upper bound lands
// in that bucket (le is ≤, as in Prometheus).
func (h *Histogram) Observe(v float64) {
	// First bucket whose bound is ≥ v; len(bounds) is the +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// family fetches or creates the named family, panicking on a kind
// mismatch — re-registering a name as a different metric type is a
// programming error no test should let through.
func (r *Registry) family(name, help string, kind metricKind, bounds []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, help: help, kind: kind, bounds: bounds, series: map[string]any{}}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// signature serialises a label set into a canonical map key.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte(1)
		b.WriteString(l.Value)
		b.WriteByte(2)
	}
	return b.String()
}

// Counter returns the counter for the given family and label set, creating
// it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, kindCounter, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	sig := signature(labels)
	if c, ok := f.series[sig]; ok {
		return c.(*Counter)
	}
	c := &Counter{labels: append([]Label(nil), labels...)}
	f.series[sig] = c
	return c
}

// Gauge returns the gauge for the given family and label set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, kindGauge, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	sig := signature(labels)
	if g, ok := f.series[sig]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{labels: append([]Label(nil), labels...)}
	f.series[sig] = g
	return g
}

// Histogram returns the histogram for the given family and label set. The
// bucket bounds of the first registration win for the whole family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	f := r.family(name, help, kindHistogram, bounds)
	f.mu.Lock()
	defer f.mu.Unlock()
	sig := signature(labels)
	if h, ok := f.series[sig]; ok {
		return h.(*Histogram)
	}
	h := &Histogram{
		labels: append([]Label(nil), labels...),
		bounds: f.bounds,
		counts: make([]atomic.Uint64, len(f.bounds)+1),
	}
	f.series[sig] = h
	return h
}

// Families returns the sorted names of every registered metric family —
// the surface the naming-convention lint test sweeps.
func (r *Registry) Families() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// AddCollector registers a scrape-time collector: fn runs at the end of
// every WritePrometheus call and appends its own exposition-format lines.
// It suits metrics whose source of truth lives outside the registry (the
// fault-injection counters, say) and would otherwise need mirroring into
// handles on every update.
func (r *Registry) AddCollector(fn func(io.Writer) error) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4). Families and series are emitted in sorted order
// so the output is deterministic; registered collectors run last, in
// registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	collectors := r.collectors
	r.mu.RUnlock()
	sort.Strings(names)

	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		r.mu.RUnlock()
		f.mu.Lock()
		sigs := make([]string, 0, len(f.series))
		series := make(map[string]any, len(f.series))
		for sig, s := range f.series {
			sigs = append(sigs, sig)
			series[sig] = s
		}
		f.mu.Unlock()
		sort.Strings(sigs)

		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, sig := range sigs {
			if err := writeSeries(w, f, series[sig]); err != nil {
				return err
			}
		}
	}
	for _, fn := range collectors {
		if err := fn(w); err != nil {
			return err
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s any) error {
	switch m := s.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(m.labels, nil), m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(m.labels, nil), formatFloat(m.Value()))
		return err
	case *Histogram:
		cum := uint64(0)
		for i, bound := range m.bounds {
			cum += m.counts[i].Load()
			le := Label{"le", formatFloat(bound)}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(m.labels, &le), cum); err != nil {
				return err
			}
		}
		cum += m.counts[len(m.bounds)].Load()
		inf := Label{"le", "+Inf"}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(m.labels, &inf), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(m.labels, nil), formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(m.labels, nil), m.Count())
		return err
	}
	return nil
}

// labelString renders {k="v",…}, escaping label values; extra (the le
// bucket label) is appended last when non-nil.
func labelString(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		writeLabel(&b, l)
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		writeLabel(&b, *extra)
	}
	b.WriteByte('}')
	return b.String()
}

func writeLabel(b *strings.Builder, l Label) {
	b.WriteString(l.Key)
	b.WriteString(`="`)
	v := l.Value
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	b.WriteByte('"')
}

// formatFloat renders a float the way Prometheus expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}
