package obs

import (
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestHistogramBucketBoundaries pins the ≤ semantics of le buckets: a value
// exactly equal to a bound lands in that bucket, the next representable
// value above it in the next, and values beyond the last bound in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("b", "", []float64{1, 2, 5})
	for _, v := range []float64{
		0,                              // le=1
		1,                              // le=1 (exact bound)
		math.Nextafter(1, 2),           // le=2 (just above)
		2,                              // le=2 (exact bound)
		5,                              // le=5 (exact last bound)
		math.Nextafter(5, math.Inf(1)), // +Inf
		100,                            // +Inf
	} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 2} // per-bucket, last is +Inf
	if got := h.BucketCounts(); !reflect.DeepEqual(got, want) {
		t.Errorf("bucket counts = %v, want %v", got, want)
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	wantSum := 0 + 1 + math.Nextafter(1, 2) + 2 + 5 + math.Nextafter(5, math.Inf(1)) + 100
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), wantSum)
	}
}

// TestHistogramPrometheusCumulative checks the text exposition is
// cumulative with a +Inf bucket and _sum/_count lines.
func TestHistogramPrometheusCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 2})
	for _, v := range []float64{0.5, 1, 1.5, 3} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		"# HELP lat latency",
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="2"} 3`,
		`lat_bucket{le="+Inf"} 4`,
		"lat_sum 6",
		"lat_count 4",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("output missing %q:\n%s", line, out)
		}
	}
}

// TestCounterGaugeSeries checks handle identity per label set and the
// rendered sample lines.
func TestCounterGaugeSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", "h", Label{"k", "a"})
	if r.Counter("hits", "h", Label{"k", "a"}) != a {
		t.Error("same labels did not return the same counter handle")
	}
	b := r.Counter("hits", "h", Label{"k", "b"})
	if a == b {
		t.Error("different labels shared a handle")
	}
	a.Inc()
	a.Add(2)
	b.Inc()
	if a.Value() != 3 || b.Value() != 1 {
		t.Errorf("values = %d, %d", a.Value(), b.Value())
	}

	g := r.Gauge("level", "l")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v", g.Value())
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{`hits{k="a"} 3`, `hits{k="b"} 1`, "level 1.5"} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("output missing %q:\n%s", line, out)
		}
	}
	// Families must come out sorted, so the document is deterministic.
	if strings.Index(out, "# TYPE hits") > strings.Index(out, "# TYPE level") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

// TestWritePrometheusDeterministic renders twice and compares.
func TestWritePrometheusDeterministic(t *testing.T) {
	r := NewRegistry()
	for _, v := range []string{"e", "a", "c", "b", "d"} {
		r.Counter("m", "", Label{"k", v}).Inc()
	}
	render := func() string {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("non-deterministic output:\n%s\nvs\n%s", a, b)
	}
}

// TestLabelEscaping checks backslash, quote and newline escaping in label
// values.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", Label{"k", "a\\b\"c\nd"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `m{k="a\\b\"c\nd"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Errorf("output missing %q:\n%s", want, b.String())
	}
}

// TestKindMismatchPanics: re-registering a family as another kind is a
// programming error and must fail loudly.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("m", "")
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race this validates the lock-free Observe path.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c", "", []float64{0.5})
	done := make(chan struct{})
	const g, n = 8, 1000
	for i := 0; i < g; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			for j := 0; j < n; j++ {
				h.Observe(float64(j%2) * 1.0)
			}
		}(i)
	}
	for i := 0; i < g; i++ {
		<-done
	}
	if h.Count() != g*n {
		t.Errorf("count = %d, want %d", h.Count(), g*n)
	}
	if h.Sum() != g*n/2 {
		t.Errorf("sum = %v, want %v", h.Sum(), g*n/2)
	}
}

// TestAddCollector checks that scrape-time collectors render after every
// family, in registration order, and that a collector error aborts the
// write.
func TestAddCollector(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total", "").Inc()
	r.AddCollector(func(w io.Writer) error {
		_, err := io.WriteString(w, "extern_a 1\n")
		return err
	})
	r.AddCollector(func(w io.Writer) error {
		_, err := io.WriteString(w, "extern_b 2\n")
		return err
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	zz := strings.Index(out, "zz_total 1")
	a := strings.Index(out, "extern_a 1")
	bb := strings.Index(out, "extern_b 2")
	if zz < 0 || a < 0 || bb < 0 || !(zz < a && a < bb) {
		t.Fatalf("collector output missing or misordered:\n%s", out)
	}

	boom := errors.New("boom")
	r.AddCollector(func(io.Writer) error { return boom })
	if err := r.WritePrometheus(io.Discard); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
