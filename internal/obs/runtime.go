package obs

import (
	"fmt"
	"io"
	"runtime"
)

// RuntimeCollector returns a scrape-time collector (Registry.AddCollector)
// exposing the Go runtime's health signals in Prometheus text format:
// goroutine count, heap residency, and cumulative GC pause time — the
// triad that tells a long-running daemon's "is the process itself the
// bottleneck" story (a leak shows as goroutines or heap climbing, GC
// pressure as pause seconds outpacing traffic). Reading runtime.MemStats
// briefly stops the world, which is why this is a scrape-time collector
// and not a per-request gauge update: the cost lands on the scraper's
// cadence, never on the request path.
func RuntimeCollector() func(io.Writer) error {
	return func(w io.Writer) error {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		rows := []struct {
			name, kind, help string
			value            string
		}{
			{"sparseorder_go_goroutines", "gauge",
				"goroutines currently live",
				fmt.Sprintf("%d", runtime.NumGoroutine())},
			{"sparseorder_go_heap_alloc_bytes", "gauge",
				"bytes of allocated heap objects",
				fmt.Sprintf("%d", ms.HeapAlloc)},
			{"sparseorder_go_heap_sys_bytes", "gauge",
				"bytes of heap obtained from the OS",
				fmt.Sprintf("%d", ms.HeapSys)},
			{"sparseorder_go_next_gc_bytes", "gauge",
				"heap size at which the next GC cycle triggers",
				fmt.Sprintf("%d", ms.NextGC)},
			{"sparseorder_go_gcs_total", "counter",
				"completed GC cycles",
				fmt.Sprintf("%d", ms.NumGC)},
			{"sparseorder_go_gc_pause_seconds_total", "counter",
				"cumulative stop-the-world GC pause time",
				formatFloat(float64(ms.PauseTotalNs) / 1e9)},
		}
		for _, row := range rows {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
				row.name, row.help, row.name, row.kind, row.name, row.value); err != nil {
				return err
			}
		}
		return nil
	}
}
