package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the header a request trace id travels in, both
// directions: clients may supply one (it is taken verbatim, truncated to
// MaxRequestIDLen), and the server echoes the accepted or generated id on
// every instrumented response.
const RequestIDHeader = "X-Request-Id"

// MaxRequestIDLen bounds accepted request ids so a hostile client cannot
// make the trace ring resident-heavy or the access log unreadable.
const MaxRequestIDLen = 64

// ridPrefix is the per-process random id prefix; together with a counter
// it makes generated ids unique across restarts without coordination.
var ridPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		binary.BigEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
	}
	return fmt.Sprintf("%08x", binary.BigEndian.Uint32(b[:]))
}()

var ridCounter atomic.Uint64

// NewRequestID generates a process-unique request id
// ("<random8hex>-<seq>"). Callers on the disabled path must not call this:
// id generation allocates.
func NewRequestID() string {
	return ridPrefix + "-" + strconv.FormatUint(ridCounter.Add(1), 16)
}

// AcceptRequestID returns the client-supplied id from h truncated to
// MaxRequestIDLen, or a freshly generated id when the header is empty.
func AcceptRequestID(h http.Header) string {
	id := h.Get(RequestIDHeader)
	if id == "" {
		return NewRequestID()
	}
	if len(id) > MaxRequestIDLen {
		id = id[:MaxRequestIDLen]
	}
	return id
}

// ReqPhase is one named, timed slice of a request (queue wait, decode,
// reorder, …) in the order the request passed through it.
type ReqPhase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// ReqTrace is the completed record of one request: identity, outcome and
// the per-phase latency decomposition. Traces are immutable once added to
// a TraceRing.
type ReqTrace struct {
	// ID is the request id (accepted or generated), echoed to the client.
	ID string `json:"id"`
	// Route is the logical route name (upload, spmv), not the raw URL.
	Route string `json:"route"`
	// Key is the matrix content-hash key, when the request resolved one.
	Key string `json:"key,omitempty"`
	// Start is the wall-clock arrival time.
	Start time.Time `json:"start"`
	// Seconds is the total request latency.
	Seconds float64 `json:"seconds"`
	// Status is the HTTP status code written.
	Status int `json:"status"`
	// Class is the failure class for non-2xx outcomes ("" on success).
	Class string `json:"class,omitempty"`
	// Error is the error message for failed requests ("" on success).
	Error string `json:"error,omitempty"`
	// Phases is the latency decomposition in execution order. The phase
	// seconds do not sum to Seconds: un-attributed time (routing, JSON
	// encode, scheduling) is the remainder.
	Phases []ReqPhase `json:"phases,omitempty"`
}

// Errored reports whether the trace recorded a failure (status ≥ 400).
func (t *ReqTrace) Errored() bool { return t.Status >= 400 }

// Dominant returns the longest phase, or a zero ReqPhase when none were
// recorded — the first thing a "why was this slow" investigation asks.
func (t *ReqTrace) Dominant() ReqPhase {
	var d ReqPhase
	for _, p := range t.Phases {
		if p.Seconds > d.Seconds {
			d = p
		}
	}
	return d
}

// TraceRing retains completed request traces for /debug/requests, in the
// spirit of x/net/trace: a bounded ring of recent traces, a separate
// bounded ring of errored traces (so a burst of successes cannot evict the
// failures being investigated), and a top-K list of the slowest traces
// seen since start. All three views are bounded, so a daemon serving
// millions of requests holds a fixed trace working set. Safe for
// concurrent use; a nil *TraceRing ignores Add and serves empty views.
type TraceRing struct {
	mu      sync.Mutex
	recent  ring
	errored ring
	slowest []*ReqTrace // sorted descending by Seconds, ≤ slowestK
	kept    int         // slowest capacity
	total   uint64      // all traces ever added
	errs    uint64      // errored traces ever added
}

// ring is a fixed-capacity overwrite-oldest buffer.
type ring struct {
	buf  []*ReqTrace
	next int // slot the next Add writes
	full bool
}

func (r *ring) add(t *ReqTrace) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

// newestFirst appends the ring's contents, newest first, to dst.
func (r *ring) newestFirst(dst []*ReqTrace, n int) []*ReqTrace {
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	if n > size {
		n = size
	}
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		dst = append(dst, r.buf[idx])
	}
	return dst
}

// DefaultTraceCap is the recent-ring capacity NewTraceRing(0) uses.
const DefaultTraceCap = 256

// slowestK is the number of slowest-ever traces retained.
const slowestK = 32

// NewTraceRing builds a trace ring retaining up to cap recent traces
// (0 means DefaultTraceCap), cap/4 errored traces (min 16) and the 32
// slowest traces seen.
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	ecap := capacity / 4
	if ecap < 16 {
		ecap = 16
	}
	return &TraceRing{
		recent:  ring{buf: make([]*ReqTrace, capacity)},
		errored: ring{buf: make([]*ReqTrace, ecap)},
		kept:    slowestK,
	}
}

// Add retains a completed trace. The trace must not be mutated afterwards.
func (r *TraceRing) Add(t *ReqTrace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.recent.add(t)
	if t.Errored() {
		r.errs++
		r.errored.add(t)
	}
	// Insert into the slowest top-K (descending); most requests fail the
	// tail comparison immediately.
	if n := len(r.slowest); n < r.kept || t.Seconds > r.slowest[n-1].Seconds {
		i := sort.Search(len(r.slowest), func(i int) bool {
			return r.slowest[i].Seconds < t.Seconds
		})
		r.slowest = append(r.slowest, nil)
		copy(r.slowest[i+1:], r.slowest[i:])
		r.slowest[i] = t
		if len(r.slowest) > r.kept {
			r.slowest = r.slowest[:r.kept]
		}
	}
}

// TraceView names one of the /debug/requests views.
type TraceView string

const (
	ViewRecent  TraceView = "recent"
	ViewSlowest TraceView = "slowest"
	ViewErrored TraceView = "errored"
)

// Snapshot returns up to n traces of the requested view: recent and
// errored newest-first, slowest in descending duration. n ≤ 0 means all
// retained. Nil-receiver safe (empty result).
func (r *TraceRing) Snapshot(view TraceView, n int) []*ReqTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 {
		n = 1 << 30
	}
	switch view {
	case ViewSlowest:
		m := n
		if m > len(r.slowest) {
			m = len(r.slowest)
		}
		return append([]*ReqTrace(nil), r.slowest[:m]...)
	case ViewErrored:
		return r.errored.newestFirst(nil, n)
	default:
		return r.recent.newestFirst(nil, n)
	}
}

// Totals returns the number of traces ever added and how many of them
// errored. Nil-receiver safe.
func (r *TraceRing) Totals() (total, errored uint64) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total, r.errs
}

// traceDocument is the JSON body of /debug/requests.
type traceDocument struct {
	View    TraceView   `json:"view"`
	Total   uint64      `json:"total"`
	Errored uint64      `json:"errored"`
	Traces  []*ReqTrace `json:"traces"`
}

// TraceHandler serves the ring as /debug/requests:
//
//	?view=recent|slowest|errored   which traces (default recent)
//	?n=50                          how many (default 50)
//	?format=json|text              encoding (default text; JSON also when
//	                               the Accept header prefers application/json)
//
// The text view is one block per trace: outcome line, then the phase
// decomposition with bar widths proportional to each phase's share, so a
// slow request's dominant phase is visible without tooling. A nil ring
// answers 404 so probes can tell "tracing off" from "no traffic".
func (r *TraceRing) TraceHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "request tracing not enabled", http.StatusNotFound)
			return
		}
		view := TraceView(req.URL.Query().Get("view"))
		switch view {
		case ViewRecent, ViewSlowest, ViewErrored:
		case "":
			view = ViewRecent
		default:
			http.Error(w, "unknown view (want recent, slowest or errored)", http.StatusBadRequest)
			return
		}
		n := 50
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		total, errs := r.Totals()
		doc := traceDocument{View: view, Total: total, Errored: errs,
			Traces: r.Snapshot(view, n)}
		format := req.URL.Query().Get("format")
		if format == "json" || (format == "" && wantsJSON(req.Header.Get("Accept"))) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(doc)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeTraceText(w, doc)
	}
}

// wantsJSON is a minimal Accept check: any mention of application/json
// before text/plain counts.
func wantsJSON(accept string) bool {
	for i := 0; i+16 <= len(accept); i++ {
		if accept[i:i+16] == "application/json" {
			return true
		}
		if i+10 <= len(accept) && accept[i:i+10] == "text/plain" {
			return false
		}
	}
	return false
}

// writeTraceText renders the human-readable view.
func writeTraceText(w http.ResponseWriter, doc traceDocument) {
	fmt.Fprintf(w, "request traces — view=%s, showing %d (total served %d, errored %d)\n\n",
		doc.View, len(doc.Traces), doc.Total, doc.Errored)
	for _, t := range doc.Traces {
		outcome := "ok"
		if t.Errored() {
			outcome = t.Class
			if outcome == "" {
				outcome = "error"
			}
		}
		fmt.Fprintf(w, "%s  %-7s %3d %-8s %9.3fms  id=%s", t.Start.Format("15:04:05.000"),
			t.Route, t.Status, outcome, t.Seconds*1e3, t.ID)
		if t.Key != "" {
			k := t.Key
			if len(k) > 12 {
				k = k[:12]
			}
			fmt.Fprintf(w, " key=%s", k)
		}
		fmt.Fprintln(w)
		for _, p := range t.Phases {
			frac := 0.0
			if t.Seconds > 0 {
				frac = p.Seconds / t.Seconds
			}
			bar := int(frac*30 + 0.5)
			if bar > 30 {
				bar = 30
			}
			fmt.Fprintf(w, "    %-13s %9.3fms %5.1f%% %s\n",
				p.Name, p.Seconds*1e3, frac*100, bars[:bar])
		}
		if t.Error != "" {
			fmt.Fprintf(w, "    error: %s\n", t.Error)
		}
	}
}

const bars = "##############################"
