package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRequestIDAcceptGenerate(t *testing.T) {
	h := http.Header{}
	gen1 := AcceptRequestID(h)
	gen2 := AcceptRequestID(h)
	if gen1 == "" || gen2 == "" || gen1 == gen2 {
		t.Fatalf("generated ids %q, %q: want nonempty and unique", gen1, gen2)
	}
	if !strings.HasPrefix(gen2, strings.SplitN(gen1, "-", 2)[0]) {
		t.Errorf("ids %q, %q do not share the process prefix", gen1, gen2)
	}

	h.Set(RequestIDHeader, "client-chosen")
	if got := AcceptRequestID(h); got != "client-chosen" {
		t.Errorf("client id not accepted verbatim: %q", got)
	}

	long := strings.Repeat("x", 3*MaxRequestIDLen)
	h.Set(RequestIDHeader, long)
	if got := AcceptRequestID(h); len(got) != MaxRequestIDLen {
		t.Errorf("oversized id truncated to %d bytes, want %d", len(got), MaxRequestIDLen)
	}
}

func mkTrace(id string, sec float64, status int) *ReqTrace {
	return &ReqTrace{
		ID: id, Route: "spmv", Start: time.Unix(1700000000, 0),
		Seconds: sec, Status: status,
		Phases: []ReqPhase{{Name: "decode", Seconds: sec / 4}, {Name: "spmv", Seconds: sec / 2}},
	}
}

func TestTraceRingBoundsAndViews(t *testing.T) {
	r := NewTraceRing(8)
	for i := 0; i < 50; i++ {
		status := http.StatusOK
		if i%10 == 0 {
			status = http.StatusInternalServerError
		}
		r.Add(mkTrace(fmt.Sprintf("r%d", i), float64(i), status))
	}

	total, errs := r.Totals()
	if total != 50 || errs != 5 {
		t.Fatalf("Totals() = (%d, %d), want (50, 5)", total, errs)
	}

	recent := r.Snapshot(ViewRecent, 100)
	if len(recent) != 8 {
		t.Fatalf("recent holds %d, want ring capacity 8", len(recent))
	}
	if recent[0].ID != "r49" || recent[7].ID != "r42" {
		t.Errorf("recent not newest-first: %s … %s", recent[0].ID, recent[7].ID)
	}

	slowest := r.Snapshot(ViewSlowest, 3)
	if len(slowest) != 3 {
		t.Fatalf("slowest n=3 returned %d", len(slowest))
	}
	if slowest[0].ID != "r49" || slowest[1].ID != "r48" || slowest[2].ID != "r47" {
		t.Errorf("slowest order wrong: %s %s %s", slowest[0].ID, slowest[1].ID, slowest[2].ID)
	}

	errored := r.Snapshot(ViewErrored, 100)
	for _, tr := range errored {
		if !tr.Errored() {
			t.Errorf("errored view contains success %s (status %d)", tr.ID, tr.Status)
		}
	}
	if len(errored) != 5 {
		t.Errorf("errored view holds %d, want all 5 failures", len(errored))
	}
}

// TestTraceRingErroredSurvivesSuccessFlood is the reason for the separate
// errored ring: one early failure must remain inspectable after the
// recent ring has turned over many times.
func TestTraceRingErroredSurvivesSuccessFlood(t *testing.T) {
	r := NewTraceRing(16)
	r.Add(mkTrace("the-failure", 0.5, http.StatusGatewayTimeout))
	for i := 0; i < 1000; i++ {
		r.Add(mkTrace(fmt.Sprintf("ok%d", i), 0.001, http.StatusOK))
	}
	errored := r.Snapshot(ViewErrored, 10)
	if len(errored) != 1 || errored[0].ID != "the-failure" {
		t.Fatalf("failure evicted by success flood: %+v", errored)
	}
	for _, tr := range r.Snapshot(ViewRecent, 100) {
		if tr.ID == "the-failure" {
			t.Error("1000 successes did not turn over a 16-entry recent ring")
		}
	}
}

func TestTraceRingNilSafe(t *testing.T) {
	var r *TraceRing
	r.Add(mkTrace("x", 1, 200)) // must not panic
	if got := r.Snapshot(ViewRecent, 10); got != nil {
		t.Errorf("nil ring snapshot = %v", got)
	}
	if total, errs := r.Totals(); total != 0 || errs != 0 {
		t.Errorf("nil ring totals = (%d, %d)", total, errs)
	}
	w := httptest.NewRecorder()
	r.TraceHandler()(w, httptest.NewRequest(http.MethodGet, "/debug/requests", nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("nil ring handler status %d, want 404", w.Code)
	}
}

func TestDominant(t *testing.T) {
	tr := mkTrace("d", 4, 200) // decode 1s, spmv 2s
	if dom := tr.Dominant(); dom.Name != "spmv" || dom.Seconds != 2 {
		t.Errorf("Dominant() = %+v, want spmv/2", dom)
	}
	var empty ReqTrace
	if dom := empty.Dominant(); dom.Name != "" {
		t.Errorf("empty trace dominant = %+v", dom)
	}
}

func TestTraceHandlerViewsAndFormats(t *testing.T) {
	r := NewTraceRing(8)
	r.Add(mkTrace("fast", 0.01, http.StatusOK))
	r.Add(mkTrace("slow", 2.0, http.StatusOK))
	r.Add(mkTrace("bad", 0.5, http.StatusBadRequest))
	h := r.TraceHandler()

	get := func(url string, hdr ...string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, url, nil)
		for i := 0; i+1 < len(hdr); i += 2 {
			req.Header.Set(hdr[i], hdr[i+1])
		}
		w := httptest.NewRecorder()
		h(w, req)
		return w
	}

	// JSON by query parameter.
	w := get("/debug/requests?view=slowest&format=json")
	if w.Code != http.StatusOK || !strings.Contains(w.Header().Get("Content-Type"), "json") {
		t.Fatalf("json view: status %d, type %s", w.Code, w.Header().Get("Content-Type"))
	}
	var doc struct {
		View    string      `json:"view"`
		Total   uint64      `json:"total"`
		Errored uint64      `json:"errored"`
		Traces  []*ReqTrace `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decode: %v\n%s", err, w.Body.String())
	}
	if doc.Total != 3 || doc.Errored != 1 || len(doc.Traces) != 3 {
		t.Errorf("doc = total %d errored %d traces %d", doc.Total, doc.Errored, len(doc.Traces))
	}
	if doc.Traces[0].ID != "slow" {
		t.Errorf("slowest[0] = %s, want slow", doc.Traces[0].ID)
	}

	// JSON by Accept header.
	w = get("/debug/requests", "Accept", "application/json")
	if !strings.Contains(w.Header().Get("Content-Type"), "json") {
		t.Errorf("Accept: application/json not honored: %s", w.Header().Get("Content-Type"))
	}

	// Text default: human-readable with phase bars.
	w = get("/debug/requests?view=recent")
	body := w.Body.String()
	if !strings.Contains(body, "bad") || !strings.Contains(body, "recent") {
		t.Errorf("text view missing content:\n%s", body)
	}

	// n caps the result count.
	w = get("/debug/requests?view=recent&n=1&format=json")
	if err := json.Unmarshal(w.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 1 {
		t.Errorf("n=1 returned %d traces", len(doc.Traces))
	}

	// Unknown view is a client error.
	if w = get("/debug/requests?view=nope"); w.Code != http.StatusBadRequest {
		t.Errorf("unknown view status %d, want 400", w.Code)
	}
}

func TestRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	r.AddCollector(RuntimeCollector())
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"sparseorder_go_goroutines",
		"sparseorder_go_heap_alloc_bytes",
		"sparseorder_go_gcs_total",
		"sparseorder_go_gc_pause_seconds_total",
	} {
		if !strings.Contains(out, "# TYPE "+want) {
			t.Errorf("runtime collector output missing %s:\n%s", want, out)
		}
	}
	validateExposition(t, out)
}
