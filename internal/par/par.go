// Package par provides the deterministic fork-join helpers shared by the
// parallel reordering paths (sparse permutation, graph construction,
// feature computation, component-parallel Cuthill-McKee).
//
// Every helper follows one contract: chunk boundaries depend only on the
// problem size and the resolved worker count, and callers reduce per-chunk
// partial results in chunk order. Output is therefore byte-identical for
// any worker count; goroutine scheduling can only change timing, never
// results.
package par

import (
	"runtime"
	"sync"
)

// Canceled reports whether the done channel is closed. A nil channel is
// never closed, so uncancellable callers pass nil and pay only a branch.
// It is the cooperative cancellation primitive of the reordering hot
// paths: long loops call it periodically and bail out early, and the
// context-aware entry points (reorder.ComputeCtx and friends) translate
// the early exit into the context's error.
func Canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Resolve maps a Workers option to an effective worker count using the
// package-wide convention: 0 means runtime.GOMAXPROCS(0), values below
// zero mean 1 (serial), and positive values are used as given.
func Resolve(workers int) int {
	if workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// Chunks returns the number of contiguous ranges Ranges splits n items
// into for a resolved worker count: min(workers, n), at least 1 when
// n > 0. It lets callers pre-size per-chunk result slices.
func Chunks(n, workers int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Ranges splits [0, n) into Chunks(n, workers) contiguous ranges and calls
// fn(chunk, lo, hi) once per range, concurrently when more than one chunk
// exists. It returns after every call completes. The boundaries are
// lo = chunk*n/c, hi = (chunk+1)*n/c, a function of n and workers alone.
func Ranges(n, workers int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	c := Chunks(n, workers)
	if c == 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for k := 0; k < c; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			fn(k, k*n/c, (k+1)*n/c)
		}(k)
	}
	wg.Wait()
}

// Limiter bounds the goroutines of a recursive fork-join (nested
// dissection, recursive bisection): at most workers-1 branches run on
// extra goroutines at any moment, and a branch that finds no token free
// simply recurses inline. Determinism is the caller's part of the
// contract — both forked branches must write disjoint state and derive
// any randomness from per-branch seeds — after which the token schedule
// can only change timing, never results. A nil Limiter runs every Fork
// serially, which is the exact Workers=1 code path.
type Limiter struct {
	tokens chan struct{}
}

// NewLimiter returns a Limiter for the package worker convention
// (0 = GOMAXPROCS, <=1 serial). A count resolving to 1 returns nil: the
// serial limiter with zero overhead.
func NewLimiter(workers int) *Limiter {
	w := Resolve(workers)
	if w <= 1 {
		return nil
	}
	return &Limiter{tokens: make(chan struct{}, w-1)}
}

// Fork runs a and b and returns after both complete. When a goroutine
// token is free, a runs on its own goroutine concurrently with b;
// otherwise both run inline, so recursion never blocks waiting for a
// token and the total goroutine count stays bounded by the worker count
// regardless of recursion depth or shape.
func (l *Limiter) Fork(a, b func()) {
	if l == nil {
		a()
		b()
		return
	}
	select {
	case l.tokens <- struct{}{}:
		join := make(chan struct{})
		go func() {
			defer close(join)
			defer func() { <-l.tokens }()
			a()
		}()
		b()
		<-join
	default:
		a()
		b()
	}
}

// Do runs the given thunks concurrently when workers > 1 and sequentially
// otherwise, returning after all complete. It is the fork-join primitive
// for a small fixed set of independent jobs (e.g. the feature loops).
func Do(workers int, thunks ...func()) {
	if workers <= 1 || len(thunks) <= 1 {
		for _, f := range thunks {
			f()
		}
		return
	}
	var wg sync.WaitGroup
	for _, f := range thunks {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	wg.Wait()
}
