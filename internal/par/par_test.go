package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != 1 {
		t.Errorf("Resolve(-3) = %d, want 1", got)
	}
	for _, w := range []int{1, 2, 7} {
		if got := Resolve(w); got != w {
			t.Errorf("Resolve(%d) = %d, want %d", w, got, w)
		}
	}
}

func TestRangesCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 100, 1001} {
		for _, w := range []int{1, 2, 3, 4, 16, 200} {
			seen := make([]int32, n)
			Ranges(n, w, func(chunk, lo, hi int) {
				if lo > hi || lo < 0 || hi > n {
					t.Errorf("n=%d w=%d: bad range [%d,%d)", n, w, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestRangesChunkBoundariesDeterministic(t *testing.T) {
	n, w := 1000, 4
	c := Chunks(n, w)
	type rng struct{ lo, hi int }
	got := make([]rng, c)
	Ranges(n, w, func(chunk, lo, hi int) { got[chunk] = rng{lo, hi} })
	for k := 0; k < c; k++ {
		want := rng{k * n / c, (k + 1) * n / c}
		if got[k] != want {
			t.Errorf("chunk %d = %v, want %v", k, got[k], want)
		}
	}
}

func TestDoRunsAll(t *testing.T) {
	for _, w := range []int{1, 4} {
		var a, b, c atomic.Int32
		Do(w, func() { a.Add(1) }, func() { b.Add(1) }, func() { c.Add(1) })
		if a.Load() != 1 || b.Load() != 1 || c.Load() != 1 {
			t.Errorf("workers=%d: thunks ran (%d,%d,%d), want (1,1,1)", w, a.Load(), b.Load(), c.Load())
		}
	}
}
