package partition

import (
	"math"
	"math/rand"

	"sparseorder/internal/graph"
	"sparseorder/internal/par"
)

// Bisect splits g into two sides, with side 0 receiving roughly frac of
// the total vertex weight, using the full multilevel scheme. It returns
// side[v] ∈ {0, 1} for every vertex. With Options.Obs set, the three
// multilevel phases of this bisection land in the partition/coarsen,
// partition/initial and partition/refine duration histograms.
func Bisect(g *graph.Graph, frac float64, opts Options, rng *rand.Rand) []uint8 {
	opts = opts.withDefaults()
	if g.N == 0 {
		return nil
	}
	tm := opts.Obs.Phase("partition/coarsen").Start()
	levels := coarsen(g, opts, rng)
	tm.Stop()
	coarsest := g
	if len(levels) > 0 {
		coarsest = levels[len(levels)-1].coarse
	}
	tm = opts.Obs.Phase("partition/initial").Start()
	side := initialBisection(coarsest, frac, opts, rng)
	tm.Stop()
	tm = opts.Obs.Phase("partition/refine").Start()
	fmRefine(coarsest, side, frac, opts)
	for i := len(levels) - 1; i >= 0; i-- {
		if par.Canceled(opts.Cancel) {
			tm.Stop()
			return make([]uint8, g.N)
		}
		lv := levels[i]
		fineSide := make([]uint8, lv.fine.N)
		for v := 0; v < lv.fine.N; v++ {
			fineSide[v] = side[lv.cmap[v]]
		}
		side = fineSide
		fmRefine(lv.fine, side, frac, opts)
	}
	tm.Stop()
	if len(side) != g.N {
		// Cancelled before uncoarsening finished: return a well-formed (all
		// zero) assignment; the caller discards it once it observes Cancel.
		return make([]uint8, g.N)
	}
	return side
}

// initialBisection grows side 0 by repeated BFS region growing from random
// seeds, keeping the attempt with the lowest cut among balanced attempts.
// Balance uses the same per-side caps as fmRefine ((1+ε)·frac·total and
// (1+ε)·(1-frac)·total): an overweight trial can never be repaired by FM,
// which only vetoes moves into a full side and cannot drain one that is
// already over its cap, so a balanced trial always wins over an
// unbalanced one regardless of cut. Only when every trial is unbalanced
// (heavy-vertex overshoot on weighted graphs) does the lowest-cut
// unbalanced attempt survive as a fallback.
func initialBisection(g *graph.Graph, frac float64, opts Options, rng *rand.Rand) []uint8 {
	total := g.TotalVertexWeight()
	target := int(frac * float64(total))
	max0 := int(float64(total) * frac * (1 + opts.Imbalance))
	max1 := int(float64(total) * (1 - frac) * (1 + opts.Imbalance))
	best := make([]uint8, g.N)
	bestCut := -1
	bestBalanced := false
	trial := make([]uint8, g.N)
	for t := 0; t < opts.InitTrials; t++ {
		if t > 0 && par.Canceled(opts.Cancel) {
			break // keep the best trial so far; the caller bails out next check
		}
		for i := range trial {
			trial[i] = 1
		}
		w := 0
		start := rng.Intn(g.N)
		if t == 0 {
			start, _ = graph.PseudoPeripheral(g, start, nil)
		}
		queue := []int32{int32(start)}
		visited := make([]bool, g.N)
		visited[start] = true
		for head := 0; head < len(queue) && w < target; head++ {
			v := queue[head]
			// Growing past max0 would make the trial unrepairably overweight
			// (coarse vertices carry aggregated weights, so one grab can blow
			// the whole imbalance budget); leave v on side 1 and keep growing
			// through lighter frontier vertices instead.
			if wt := g.VertexWeight(int(v)); w+wt <= max0 {
				trial[v] = 0
				w += wt
			}
			for _, u := range g.Neighbors(int(v)) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
		// Disconnected graphs: the BFS may exhaust the component before
		// reaching the target weight; keep absorbing unvisited vertices.
		for v := 0; v < g.N && w < target; v++ {
			if wt := g.VertexWeight(v); trial[v] == 1 && w+wt <= max0 {
				trial[v] = 0
				w += wt
			}
		}
		cut := cutOf(g, trial)
		balanced := w <= max0 && total-w <= max1
		switch {
		case balanced && !bestBalanced,
			balanced == bestBalanced && (bestCut < 0 || cut < bestCut):
			bestCut = cut
			bestBalanced = balanced
			copy(best, trial)
		}
	}
	return best
}

func cutOf(g *graph.Graph, side []uint8) int {
	cut := 0
	for u := 0; u < g.N; u++ {
		for k := g.Ptr[u]; k < g.Ptr[u+1]; k++ {
			if side[g.Adj[k]] != side[u] {
				cut += g.EdgeWeight(k)
			}
		}
	}
	return cut / 2
}

// fmEntry is a heap element for Fiduccia-Mattheyses refinement; stale
// entries (whose recorded gain no longer matches the current gain) are
// discarded lazily on pop.
type fmEntry struct {
	v    int32
	gain int
}

type fmHeap []fmEntry

func (h fmHeap) Len() int           { return len(h) }
func (h fmHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h fmHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

// fmRefine performs boundary Fiduccia-Mattheyses passes on the bisection:
// each pass tentatively moves every vertex at most once in best-gain-first
// order subject to the balance constraint, then rolls back to the best
// prefix observed. Passes repeat until no pass improves the cut.
func fmRefine(g *graph.Graph, side []uint8, frac float64, opts Options) {
	total := g.TotalVertexWeight()
	max0 := int(float64(total) * frac * (1 + opts.Imbalance))
	max1 := int(float64(total) * (1 - frac) * (1 + opts.Imbalance))
	if max0 <= 0 {
		max0 = 1
	}
	if max1 <= 0 {
		max1 = 1
	}
	w := [2]int{}
	for v := 0; v < g.N; v++ {
		w[side[v]] += g.VertexWeight(v)
	}

	gain := make([]int, g.N)
	locked := make([]bool, g.N)
	// The parallel engine (Workers resolving above 1) swaps in the lean FM
	// pass: identical move sequence and output (see fmPassFast), but with
	// O(1) incremental gain maintenance instead of per-neighbour rescans
	// and a packed heap, keeping the per-branch hot loops short while
	// branches run concurrently. Workers<=1 keeps the straightforward
	// reference pass, the same reference/lean split the graph-build and
	// permute paths use. The packed heap holds gains in int32; gains are
	// bounded by the total edge weight, so graphs beyond that bound (none
	// the generators produce) stay on the reference pass.
	fast := par.Resolve(opts.Workers) > 1 && totalEdgeWeight(g) <= math.MaxInt32
	var st fmFastState
	for pass := 0; pass < opts.RefinePasses; pass++ {
		if par.Canceled(opts.Cancel) {
			return
		}
		var improved bool
		if fast {
			improved = fmPassFast(g, side, gain, locked, &w, max0, max1, &st)
		} else {
			improved = fmPass(g, side, gain, locked, &w, max0, max1)
		}
		if !improved {
			break
		}
	}
}

// totalEdgeWeight sums the graph's edge weights (1 per edge slot when
// unweighted); it bounds every FM gain's magnitude.
func totalEdgeWeight(g *graph.Graph) int64 {
	if g.EWgt == nil {
		return int64(len(g.Adj))
	}
	var t int64
	for _, w := range g.EWgt {
		t += int64(w)
	}
	return t
}

// fmEntry32 is the packed heap entry of the lean FM pass: half the bytes
// of fmEntry, halving the heap's memory traffic. Gains fit int32 because
// fmRefine only selects the packed pass below that bound.
type fmEntry32 struct {
	v    int32
	gain int32
}

// fmFastState carries fmPassFast's buffers across passes so their backing
// arrays stay out of the allocator.
type fmFastState struct {
	heap  []fmEntry32
	moves []fmEntry32
}

// fmPassFast is fmPass with the bookkeeping of the classic FM
// implementation: when v moves off side s, a neighbour u's gain changes by
// exactly +2·w(u,v) if u sits on s and -2·w(u,v) otherwise, so the
// maintained gains equal the recomputed ones and the heap receives the
// same entries in the same order. The packed hole-sifting heap performs
// the same strict comparisons on the same values as the reference heap
// and therefore reproduces its array layout and pop order exactly: the
// move sequence, and with it the bisection, is byte-identical to the
// reference pass at every worker count.
func fmPassFast(g *graph.Graph, side []uint8, gain []int, locked []bool, w *[2]int, max0, max1 int, st *fmFastState) bool {
	ew := g.EWgt
	edgeWeight := func(k int) int {
		if ew == nil {
			return 1
		}
		return int(ew[k])
	}

	h := st.heap[:0]
	for v := 0; v < g.N; v++ {
		locked[v] = false
		ext, inn := 0, 0
		boundary := false
		for k := g.Ptr[v]; k < g.Ptr[v+1]; k++ {
			if side[g.Adj[k]] != side[v] {
				ext += edgeWeight(k)
				boundary = true
			} else {
				inn += edgeWeight(k)
			}
		}
		gain[v] = ext - inn
		if gain[v] > 0 || boundary {
			h = append(h, fmEntry32{int32(v), int32(gain[v])})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		heapDown32(h, i, h[i])
	}

	moves := st.moves[:0]
	cumGain, bestGain, bestIdx := 0, 0, -1
	maxW := [2]int{max0, max1}

	for len(h) > 0 {
		// Pop: hole-sift the former last element down from the root.
		e := h[0]
		last := h[len(h)-1]
		h = h[:len(h)-1]
		if len(h) > 0 {
			heapDown32(h, 0, last)
		}
		v := int(e.v)
		if locked[v] || int(e.gain) != gain[v] {
			continue // stale entry
		}
		from := side[v]
		to := 1 - from
		if w[to]+g.VertexWeight(v) > maxW[to] {
			continue // move would violate balance
		}
		locked[v] = true
		w[from] -= g.VertexWeight(v)
		side[v] = to
		w[to] += g.VertexWeight(v)
		cumGain += int(e.gain)
		moves = append(moves, e)
		if cumGain > bestGain {
			bestGain = cumGain
			bestIdx = len(moves) - 1
		}
		for k := g.Ptr[v]; k < g.Ptr[v+1]; k++ {
			u := g.Adj[k]
			if locked[u] {
				continue
			}
			// v left u's side (gain up) or joined it (gain down).
			if side[u] == from {
				gain[u] += 2 * edgeWeight(k)
			} else {
				gain[u] -= 2 * edgeWeight(k)
			}
			h = heapPush32(h, fmEntry32{u, int32(gain[u])})
		}
	}

	for i := len(moves) - 1; i > bestIdx; i-- {
		v := moves[i].v
		w[side[v]] -= g.VertexWeight(int(v))
		side[v] = 1 - side[v]
		w[side[v]] += g.VertexWeight(int(v))
	}
	st.heap, st.moves = h, moves
	return bestGain > 0
}

// heapDown32 sifts x down from slot i, moving strictly greater children up
// into the hole instead of swapping — the same comparisons as heapDown, so
// the same final layout, with one write per level instead of three.
func heapDown32(h []fmEntry32, i int, x fmEntry32) {
	n := len(h)
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].gain > h[j1].gain {
			j = j2
		}
		if h[j].gain <= x.gain {
			break
		}
		h[i] = h[j]
		i = j
	}
	h[i] = x
}

// heapPush32 appends e and hole-sifts it up; same comparisons and final
// layout as heapPush.
func heapPush32(h []fmEntry32, e fmEntry32) []fmEntry32 {
	h = append(h, e)
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if e.gain <= h[i].gain {
			break
		}
		h[j] = h[i]
		j = i
	}
	h[j] = e
	return h
}

func fmPass(g *graph.Graph, side []uint8, gain []int, locked []bool, w *[2]int, max0, max1 int) bool {
	// Gain of moving v to the other side: external - internal edge weight.
	computeGain := func(v int) int {
		ext, inn := 0, 0
		for k := g.Ptr[v]; k < g.Ptr[v+1]; k++ {
			if side[g.Adj[k]] != side[v] {
				ext += g.EdgeWeight(k)
			} else {
				inn += g.EdgeWeight(k)
			}
		}
		return ext - inn
	}

	h := &fmHeap{}
	for v := 0; v < g.N; v++ {
		locked[v] = false
		gain[v] = computeGain(v)
		// Only boundary (or positive-gain) vertices are worth queueing.
		if gain[v] > 0 || isBoundary(g, side, v) {
			*h = append(*h, fmEntry{int32(v), gain[v]})
		}
	}
	heapInit(h)

	type move struct {
		v    int32
		gain int
	}
	var moves []move
	cumGain, bestGain, bestIdx := 0, 0, -1
	maxW := [2]int{max0, max1}

	for h.Len() > 0 {
		e := heapPop(h)
		v := int(e.v)
		if locked[v] || e.gain != gain[v] {
			continue // stale entry
		}
		to := 1 - side[v]
		if w[to]+g.VertexWeight(v) > maxW[to] {
			continue // move would violate balance
		}
		// Commit the tentative move.
		locked[v] = true
		w[side[v]] -= g.VertexWeight(v)
		side[v] = to
		w[to] += g.VertexWeight(v)
		cumGain += e.gain
		moves = append(moves, move{int32(v), e.gain})
		if cumGain > bestGain {
			bestGain = cumGain
			bestIdx = len(moves) - 1
		}
		for k := g.Ptr[v]; k < g.Ptr[v+1]; k++ {
			u := g.Adj[k]
			if locked[u] {
				continue
			}
			gain[u] = computeGain(int(u))
			heapPush(h, fmEntry{u, gain[u]})
		}
	}

	// Roll back moves past the best prefix.
	for i := len(moves) - 1; i > bestIdx; i-- {
		v := moves[i].v
		w[side[v]] -= g.VertexWeight(int(v))
		side[v] = 1 - side[v]
		w[side[v]] += g.VertexWeight(int(v))
	}
	return bestGain > 0
}

func isBoundary(g *graph.Graph, side []uint8, v int) bool {
	for k := g.Ptr[v]; k < g.Ptr[v+1]; k++ {
		if side[g.Adj[k]] != side[v] {
			return true
		}
	}
	return false
}

// Minimal container/heap re-implementation specialised to fmHeap to avoid
// interface boxing in the hot path.
func heapInit(h *fmHeap) {
	n := h.Len()
	for i := n/2 - 1; i >= 0; i-- {
		heapDown(h, i, n)
	}
}

func heapPush(h *fmHeap, e fmEntry) {
	*h = append(*h, e)
	heapUp(h, h.Len()-1)
}

func heapPop(h *fmHeap) fmEntry {
	n := h.Len() - 1
	h.Swap(0, n)
	heapDown(h, 0, n)
	old := *h
	e := old[n]
	*h = old[:n]
	return e
}

func heapUp(h *fmHeap, j int) {
	for {
		i := (j - 1) / 2
		if i == j || !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		j = i
	}
}

func heapDown(h *fmHeap, i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.Less(j2, j1) {
			j = j2
		}
		if !h.Less(j, i) {
			break
		}
		h.Swap(i, j)
		i = j
	}
}
