package partition

import (
	"math/rand"
	"testing"

	"sparseorder/internal/graph"
)

// starGraph builds a hub of weight hubW with n unit-weight leaves.
func starGraph(hubW, n int) *graph.Graph {
	g := &graph.Graph{N: n + 1}
	g.Ptr = make([]int, g.N+1)
	g.Ptr[1] = n
	for i := 1; i <= n; i++ {
		g.Ptr[i+1] = n + i
	}
	for i := 0; i < n; i++ {
		g.Adj = append(g.Adj, int32(i+1))
	}
	for i := 0; i < n; i++ {
		g.Adj = append(g.Adj, 0)
	}
	g.VWgt = make([]int32, g.N)
	g.VWgt[0] = int32(hubW)
	for i := 1; i <= n; i++ {
		g.VWgt[i] = 1
	}
	return g
}

// TestInitialBisectionPrefersBalanced is the regression test for the
// balance bug: on a star whose hub weighs as much as all six leaves, a BFS
// trial growing from a leaf used to grab the hub too (7/12 of the weight,
// beyond the 3% tolerance) and win on its lower cut of 5; FM cannot repair
// an overweight side, so the unbalanced bisection escaped. The fixed
// growth stays inside the balance envelope and the selection prefers
// balanced trials, so side 0 must now hold exactly half the weight —
// either the hub alone or the six leaves (cut 6).
func TestInitialBisectionPrefersBalanced(t *testing.T) {
	g := starGraph(6, 6) // total weight 12, target 6, max side 6 at ε=0.03
	opts := Options{}.withDefaults()
	for seed := int64(0); seed < 8; seed++ {
		side := initialBisection(g, 0.5, opts, rand.New(rand.NewSource(seed)))
		w := 0
		for v, s := range side {
			if s == 0 {
				w += int(g.VWgt[v])
			}
		}
		if w != 6 {
			t.Fatalf("seed %d: side-0 weight %d, want the balanced 6", seed, w)
		}
	}
}

// TestInitialBisectionUnbalancedFallback pins the other half of the
// contract: when no balanced trial exists (a weight-10 vertex between two
// unit vertices cannot be split within 3%), the lowest-cut unbalanced
// attempt must survive as the fallback rather than an arbitrary trial.
func TestInitialBisectionUnbalancedFallback(t *testing.T) {
	g := &graph.Graph{
		N:    3,
		Ptr:  []int{0, 1, 3, 4},
		Adj:  []int32{1, 0, 2, 1},
		VWgt: []int32{1, 10, 1},
	}
	opts := Options{}.withDefaults()
	side := initialBisection(g, 0.5, opts, rand.New(rand.NewSource(1)))
	if side[0] != 0 || side[2] != 0 || side[1] != 1 {
		t.Fatalf("fallback bisection = %v, want the light vertices on side 0", side)
	}
}
