package partition

import (
	"math/rand"

	"sparseorder/internal/graph"
	"sparseorder/internal/par"
)

// level holds one rung of the multilevel hierarchy: the coarse graph and
// the mapping from each fine vertex to its coarse vertex.
type level struct {
	fine   *graph.Graph
	coarse *graph.Graph
	cmap   []int32
}

// heavyEdgeMatch computes a matching that prefers heavy edges: vertices are
// visited in random order and matched to the unmatched neighbour connected
// by the heaviest edge. Returns match[v] = partner (or v itself when
// unmatched) and the number of coarse vertices.
func heavyEdgeMatch(g *graph.Graph, rng *rand.Rand) ([]int32, int) {
	return matchVertices(g, rng, HeavyEdgeMatching)
}

// randomMatch pairs each vertex with an arbitrary unmatched neighbour —
// the ablation baseline for heavy-edge matching.
func randomMatch(g *graph.Graph, rng *rand.Rand) ([]int32, int) {
	return matchVertices(g, rng, RandomMatching)
}

func matchVertices(g *graph.Graph, rng *rand.Rand, strategy MatchingStrategy) ([]int32, int) {
	match := make([]int32, g.N)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(g.N)
	nCoarse := 0
	for _, u := range order {
		if match[u] >= 0 {
			continue
		}
		best := int32(-1)
		bestW := -1
		for k := g.Ptr[u]; k < g.Ptr[u+1]; k++ {
			v := g.Adj[k]
			if match[v] >= 0 {
				continue
			}
			if strategy == RandomMatching {
				best = v
				break
			}
			if w := g.EdgeWeight(k); w > bestW {
				bestW = w
				best = v
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = int32(u)
		} else {
			match[u] = int32(u)
		}
		nCoarse++
	}
	return match, nCoarse
}

// contract builds the coarse graph defined by the matching. Matched pairs
// merge into one coarse vertex whose weight is the sum of the fine weights;
// parallel coarse edges are combined by summing their weights.
func contract(g *graph.Graph, match []int32, nCoarse int) (*graph.Graph, []int32) {
	cmap := make([]int32, g.N)
	for i := range cmap {
		cmap[i] = -1
	}
	next := int32(0)
	for v := 0; v < g.N; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = next
		if m := match[v]; int(m) != v {
			cmap[m] = next
		}
		next++
	}

	coarse := &graph.Graph{N: nCoarse, Ptr: make([]int, nCoarse+1)}
	coarse.VWgt = make([]int32, nCoarse)
	for v := 0; v < g.N; v++ {
		coarse.VWgt[cmap[v]] += int32(g.VertexWeight(v))
	}

	// Accumulate coarse adjacency with a dense scatter array reused across
	// coarse vertices.
	where := make([]int32, nCoarse) // where[c] = index+1 into current row
	var adj []int32
	var ewgt []int32
	// Group fine vertices by coarse vertex.
	members := make([][2]int32, nCoarse)
	for i := range members {
		members[i] = [2]int32{-1, -1}
	}
	for v := 0; v < g.N; v++ {
		c := cmap[v]
		if members[c][0] < 0 {
			members[c][0] = int32(v)
		} else {
			members[c][1] = int32(v)
		}
	}
	for c := 0; c < nCoarse; c++ {
		rowStart := len(adj)
		for _, vv := range members[c] {
			if vv < 0 {
				continue
			}
			v := int(vv)
			for k := g.Ptr[v]; k < g.Ptr[v+1]; k++ {
				cu := cmap[g.Adj[k]]
				if cu == int32(c) {
					continue // interior edge collapses
				}
				w := int32(g.EdgeWeight(k))
				if idx := where[cu]; idx > 0 && int(idx-1) >= rowStart {
					ewgt[idx-1] += w
				} else {
					adj = append(adj, cu)
					ewgt = append(ewgt, w)
					where[cu] = int32(len(adj))
				}
			}
		}
		coarse.Ptr[c+1] = len(adj)
		// Reset scatter marks for the next row.
		for k := rowStart; k < len(adj); k++ {
			where[adj[k]] = 0
		}
	}
	coarse.Adj = adj
	coarse.EWgt = ewgt
	return coarse, cmap
}

// coarsen builds the multilevel hierarchy until the graph has at most
// opts.CoarsenTo vertices or matching stops making progress.
func coarsen(g *graph.Graph, opts Options, rng *rand.Rand) []level {
	var levels []level
	cur := g
	for cur.N > opts.CoarsenTo {
		if par.Canceled(opts.Cancel) {
			break // stop building levels; the caller unwinds at its next check
		}
		match, nCoarse := matchVertices(cur, rng, opts.Matching)
		if float64(nCoarse) > 0.95*float64(cur.N) {
			break // matching stagnated (e.g. star graphs)
		}
		coarse, cmap := contract(cur, match, nCoarse)
		levels = append(levels, level{fine: cur, coarse: coarse, cmap: cmap})
		cur = coarse
	}
	return levels
}
