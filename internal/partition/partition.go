// Package partition implements a multilevel graph partitioner in the style
// of METIS: heavy-edge-matching coarsening, greedy-graph-growing initial
// bisection, Fiduccia-Mattheyses boundary refinement during uncoarsening,
// recursive bisection to k parts with the edge-cut objective, and
// vertex-separator extraction for nested dissection.
package partition

import (
	"context"
	"fmt"
	"math/rand"

	"sparseorder/internal/graph"
	"sparseorder/internal/obs"
	"sparseorder/internal/par"
)

// Options control the partitioner. The zero value is usable; fields set to
// zero assume the documented defaults.
type Options struct {
	// Seed drives the randomized matching and initial-partition trials so
	// results are reproducible.
	Seed int64
	// Imbalance is the allowed relative imbalance ε: every part may weigh
	// at most (1+ε)·(total/parts). Default 0.03, matching METIS' default
	// load-balance tolerance.
	Imbalance float64
	// CoarsenTo stops coarsening once the graph has at most this many
	// vertices. Default 64.
	CoarsenTo int
	// InitTrials is the number of greedy-graph-growing attempts for the
	// initial bisection; the lowest-cut balanced attempt wins. Default 6:
	// the balanced-attempt preference (see initialBisection) discards
	// overweight trials, so a few extra attempts keep the candidate pool
	// for the cut comparison as large as it was when every trial competed.
	InitTrials int
	// RefinePasses bounds the number of FM passes per level. Default 8.
	RefinePasses int
	// Matching selects the coarsening matching strategy; HeavyEdgeMatching
	// (default) is what METIS uses, RandomMatching is kept as an ablation.
	Matching MatchingStrategy
	// Workers bounds the goroutines of the parallel recursive bisection:
	// the two branches of each bisection above parallelMinVerts vertices
	// run as par.Limiter fork-join tasks, so at most Workers goroutines
	// are live regardless of recursion depth (0 = GOMAXPROCS, 1 = the
	// exact serial recursion). Results are identical at every worker
	// count because each branch derives its own deterministic RNG seed
	// and writes a disjoint slice of the part assignment. The paper notes
	// (§4.7) that its reordering implementations are serial and sees
	// parallelisation as an avenue for improvement; this is that avenue.
	Workers int
	// Cancel, when non-nil, is polled at every bisection branch, coarsening
	// level, initial-bisection trial and refinement pass; once it is closed
	// the partitioner unwinds promptly. The part assignment returned after
	// a cancellation is incomplete and must be discarded — the context-
	// aware entry points (KWayCtx, reorder.ComputeCtx) do so and surface
	// the context's error instead. A nil channel never cancels, and an
	// uncancelled run is byte-identical with or without the field set.
	Cancel <-chan struct{}
	// Obs, when non-nil, receives per-level phase timings from every
	// bisection — partition/coarsen, partition/initial and
	// partition/refine histogram observations — the multilevel breakdown
	// of where a GP/ND ordering's time goes. Metrics only; no event-log
	// traffic, so deep recursions stay cheap. Nil disables timing
	// entirely (the clock is not even read).
	Obs *obs.Obs
}

// MatchingStrategy selects how vertices are matched during coarsening.
type MatchingStrategy int

// Coarsening matching strategies.
const (
	HeavyEdgeMatching MatchingStrategy = iota
	RandomMatching
)

func (o Options) withDefaults() Options {
	if o.Imbalance == 0 {
		o.Imbalance = 0.03
	}
	if o.CoarsenTo == 0 {
		o.CoarsenTo = 64
	}
	if o.InitTrials == 0 {
		o.InitTrials = 6
	}
	if o.RefinePasses == 0 {
		o.RefinePasses = 8
	}
	return o
}

// KWay partitions g into k parts by recursive bisection, minimising edge
// cut subject to the balance tolerance. It returns the part id of every
// vertex and the achieved edge cut (sum of weights of edges whose
// endpoints land in different parts).
func KWay(g *graph.Graph, k int, opts Options) ([]int32, int, error) {
	if k < 1 {
		return nil, 0, fmt.Errorf("partition: k must be >= 1, got %d", k)
	}
	opts = opts.withDefaults()
	part := make([]int32, g.N)
	if k == 1 {
		return part, 0, nil
	}
	verts := make([]int32, g.N)
	for i := range verts {
		verts[i] = int32(i)
	}
	recursiveBisect(g, verts, 0, k, part, opts, opts.Seed, par.NewLimiter(opts.Workers))
	if par.Canceled(opts.Cancel) {
		return nil, 0, context.Canceled
	}
	return part, EdgeCut(g, part), nil
}

// KWayCtx is KWay driven by a context: the context's done channel is
// threaded into every coarsening level, bisection trial and refinement
// pass (via Options.Cancel), and a cancelled or expired context aborts
// the partitioning promptly with the context's error instead of returning
// a partial assignment.
func KWayCtx(ctx context.Context, g *graph.Graph, k int, opts Options) ([]int32, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	opts.Cancel = ctx.Done()
	part, cut, err := KWay(g, k, opts)
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	return part, cut, err
}

// parallelMinVerts is the branch size below which recursiveBisect stops
// forking: small subproblems recurse inline because the fork bookkeeping
// costs more than it recovers.
const parallelMinVerts = 4096

// recursiveBisect partitions the subgraph induced by verts into parts
// firstPart … firstPart+k-1, writing assignments into part. Each branch
// derives its own RNG from seed, so the serial and parallel executions
// produce identical partitions. The two sub-branches write to disjoint
// entries of part, making the parallel recursion race-free; lim bounds
// the live goroutines to the configured worker count (a nil lim recurses
// serially).
func recursiveBisect(g *graph.Graph, verts []int32, firstPart, k int, part []int32, opts Options, seed int64, lim *par.Limiter) {
	if par.Canceled(opts.Cancel) {
		return
	}
	if k == 1 {
		for _, v := range verts {
			part[v] = int32(firstPart)
		}
		return
	}
	rng := rand.New(rand.NewSource(seed))
	sub, orig := graph.InducedSubgraph(g, verts)
	kLeft := (k + 1) / 2
	frac := float64(kLeft) / float64(k)
	side := Bisect(sub, frac, opts, rng)
	var left, right []int32
	for i, s := range side {
		if s == 0 {
			left = append(left, orig[i])
		} else {
			right = append(right, orig[i])
		}
	}
	leftSeed := seed*2654435761 + 1
	rightSeed := seed*2654435761 + 2
	if lim != nil && len(verts) > parallelMinVerts {
		lim.Fork(
			func() { recursiveBisect(g, left, firstPart, kLeft, part, opts, leftSeed, lim) },
			func() { recursiveBisect(g, right, firstPart+kLeft, k-kLeft, part, opts, rightSeed, lim) })
		return
	}
	recursiveBisect(g, left, firstPart, kLeft, part, opts, leftSeed, lim)
	recursiveBisect(g, right, firstPart+kLeft, k-kLeft, part, opts, rightSeed, lim)
}

// EdgeCut returns the total weight of edges crossing between different
// parts under the given assignment.
func EdgeCut(g *graph.Graph, part []int32) int {
	cut := 0
	for u := 0; u < g.N; u++ {
		for k := g.Ptr[u]; k < g.Ptr[u+1]; k++ {
			if part[g.Adj[k]] != part[u] {
				cut += g.EdgeWeight(k)
			}
		}
	}
	return cut / 2
}

// PartWeights returns the total vertex weight of each of the k parts.
func PartWeights(g *graph.Graph, part []int32, k int) []int {
	w := make([]int, k)
	for v := 0; v < g.N; v++ {
		w[part[v]] += g.VertexWeight(v)
	}
	return w
}

// ImbalanceFactor returns max part weight divided by the average part
// weight, the balance criterion the study reports.
func ImbalanceFactor(g *graph.Graph, part []int32, k int) float64 {
	w := PartWeights(g, part, k)
	total, maxw := 0, 0
	for _, x := range w {
		total += x
		if x > maxw {
			maxw = x
		}
	}
	if total == 0 {
		return 1
	}
	return float64(maxw) * float64(k) / float64(total)
}
