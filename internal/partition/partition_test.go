package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparseorder/internal/gen"
	"sparseorder/internal/graph"
)

func gridGraph(t *testing.T, nx, ny int) *graph.Graph {
	t.Helper()
	g, err := graph.FromMatrix(gen.Grid2D(nx, ny))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// twoCliquesBridge builds two k-cliques joined by a single edge; the optimal
// bisection cuts exactly that edge.
func twoCliquesBridge(t *testing.T, k int) *graph.Graph {
	t.Helper()
	n := 2 * k
	g := &graph.Graph{N: n, Ptr: make([]int, n+1)}
	var adj []int32
	for v := 0; v < n; v++ {
		base, lim := 0, k
		if v >= k {
			base, lim = k, 2*k
		}
		for u := base; u < lim; u++ {
			if u != v {
				adj = append(adj, int32(u))
			}
		}
		if v == k-1 {
			adj = append(adj, int32(k))
		}
		if v == k {
			adj = append(adj, int32(k-1))
		}
		g.Ptr[v+1] = len(adj)
	}
	g.Adj = adj
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBisectTwoCliques(t *testing.T) {
	g := twoCliquesBridge(t, 12)
	rng := rand.New(rand.NewSource(1))
	side := Bisect(g, 0.5, Options{Seed: 1}, rng)
	part := make([]int32, g.N)
	for v, s := range side {
		part[v] = int32(s)
	}
	if cut := EdgeCut(g, part); cut != 1 {
		t.Errorf("cut = %d, want 1 (the bridge)", cut)
	}
	w := PartWeights(g, part, 2)
	if w[0] != 12 || w[1] != 12 {
		t.Errorf("part weights = %v, want [12 12]", w)
	}
}

func TestKWayGridBalanceAndCut(t *testing.T) {
	g := gridGraph(t, 24, 24)
	for _, k := range []int{2, 4, 8, 16} {
		part, cut, err := KWay(g, k, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if cut != EdgeCut(g, part) {
			t.Errorf("k=%d: reported cut %d != recomputed %d", k, cut, EdgeCut(g, part))
		}
		w := PartWeights(g, part, k)
		avg := float64(g.N) / float64(k)
		for p, x := range w {
			if x == 0 {
				t.Errorf("k=%d: part %d empty", k, p)
			}
			if float64(x) > 1.35*avg {
				t.Errorf("k=%d: part %d weight %d exceeds 1.35x average %.1f", k, p, x, avg)
			}
		}
		// A 24x24 grid cut into k strips needs about 24(k-1) edges at worst;
		// multilevel with FM should stay within a small factor of the ideal.
		if cut > 24*k*3 {
			t.Errorf("k=%d: cut %d implausibly large", k, cut)
		}
	}
}

func TestKWayPartIDsInRange(t *testing.T) {
	g, err0 := graph.FromMatrix(gen.Grid2D(10, 10))
	if err0 != nil {
		t.Fatal(err0)
	}
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%7) + 1
		part, _, err := KWay(g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		for _, p := range part {
			if p < 0 || int(p) >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestKWayK1(t *testing.T) {
	g := gridGraph(t, 5, 5)
	part, cut, err := KWay(g, 1, Options{})
	if err != nil || cut != 0 {
		t.Fatalf("k=1: cut=%d err=%v", cut, err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("k=1 must assign everything to part 0")
		}
	}
	if _, _, err := KWay(g, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestEdgeCutBruteForce(t *testing.T) {
	g := gridGraph(t, 6, 6)
	rng := rand.New(rand.NewSource(3))
	part := make([]int32, g.N)
	for i := range part {
		part[i] = int32(rng.Intn(3))
	}
	want := 0
	for u := 0; u < g.N; u++ {
		for k := g.Ptr[u]; k < g.Ptr[u+1]; k++ {
			v := int(g.Adj[k])
			if u < v && part[u] != part[v] {
				want++
			}
		}
	}
	if got := EdgeCut(g, part); got != want {
		t.Errorf("EdgeCut = %d, want %d", got, want)
	}
}

func TestImbalanceFactor(t *testing.T) {
	g := gridGraph(t, 4, 4)
	part := make([]int32, 16)
	for i := 8; i < 16; i++ {
		part[i] = 1
	}
	if f := ImbalanceFactor(g, part, 2); f != 1 {
		t.Errorf("balanced split factor = %v, want 1", f)
	}
	for i := range part {
		part[i] = 0
	}
	part[15] = 1
	if f := ImbalanceFactor(g, part, 2); f < 1.8 {
		t.Errorf("skewed split factor = %v, want ~1.875", f)
	}
}

func TestVertexSeparatorSeparates(t *testing.T) {
	g := gridGraph(t, 16, 16)
	rng := rand.New(rand.NewSource(4))
	label := VertexSeparator(g, Options{Seed: 4}, rng)
	n0, n1, nSep := 0, 0, 0
	for _, l := range label {
		switch l {
		case 0:
			n0++
		case 1:
			n1++
		default:
			nSep++
		}
	}
	if n0 == 0 || n1 == 0 {
		t.Fatalf("degenerate separator: %d/%d/%d", n0, n1, nSep)
	}
	if nSep > g.N/4 {
		t.Errorf("separator too large: %d of %d", nSep, g.N)
	}
	// No edge may connect side 0 with side 1.
	for u := 0; u < g.N; u++ {
		if label[u] == 2 {
			continue
		}
		for k := g.Ptr[u]; k < g.Ptr[u+1]; k++ {
			v := g.Adj[k]
			if label[v] != 2 && label[v] != label[u] {
				t.Fatalf("edge %d-%d crosses the separator", u, v)
			}
		}
	}
}

func TestVertexSeparatorTiny(t *testing.T) {
	g := &graph.Graph{N: 1, Ptr: []int{0, 0}}
	rng := rand.New(rand.NewSource(5))
	label := VertexSeparator(g, Options{}, rng)
	if len(label) != 1 {
		t.Fatalf("labels = %v", label)
	}
	if VertexSeparator(&graph.Graph{N: 0, Ptr: []int{0}}, Options{}, rng) != nil {
		t.Error("empty graph should give nil labels")
	}
}

func TestBisectWeightedVertices(t *testing.T) {
	// Heavy vertices on one end: balance must account for weights.
	g := gridGraph(t, 10, 10)
	g.VWgt = make([]int32, g.N)
	for i := range g.VWgt {
		g.VWgt[i] = 1
	}
	for i := 0; i < 10; i++ {
		g.VWgt[i] = 10
	}
	rng := rand.New(rand.NewSource(6))
	side := Bisect(g, 0.5, Options{Seed: 6}, rng)
	w := [2]int{}
	for v, s := range side {
		w[s] += g.VertexWeight(v)
	}
	total := w[0] + w[1]
	if w[0] < total/4 || w[1] < total/4 {
		t.Errorf("weighted bisection too skewed: %v", w)
	}
}

func TestCoarsenPreservesTotalWeight(t *testing.T) {
	g := gridGraph(t, 12, 12)
	rng := rand.New(rand.NewSource(7))
	levels := coarsen(g, Options{CoarsenTo: 16}.withDefaults(), rng)
	if len(levels) == 0 {
		t.Fatal("no coarsening happened on a 144-vertex grid")
	}
	for _, lv := range levels {
		if lv.coarse.TotalVertexWeight() != lv.fine.TotalVertexWeight() {
			t.Fatalf("coarsening changed total vertex weight: %d -> %d",
				lv.fine.TotalVertexWeight(), lv.coarse.TotalVertexWeight())
		}
		if err := lv.coarse.Validate(); err != nil {
			t.Fatalf("coarse graph invalid: %v", err)
		}
		for v := 0; v < lv.fine.N; v++ {
			c := lv.cmap[v]
			if c < 0 || int(c) >= lv.coarse.N {
				t.Fatalf("cmap out of range")
			}
		}
	}
}

func TestHeavyEdgeMatchIsMatching(t *testing.T) {
	g := gridGraph(t, 9, 9)
	rng := rand.New(rand.NewSource(8))
	match, nCoarse := heavyEdgeMatch(g, rng)
	pairs := 0
	for v := 0; v < g.N; v++ {
		m := int(match[v])
		if m < 0 || m >= g.N {
			t.Fatalf("match[%d] = %d out of range", v, m)
		}
		if int(match[m]) != v {
			t.Fatalf("matching not symmetric at %d", v)
		}
		if m != v {
			pairs++
		}
	}
	if nCoarse != g.N-pairs/2 {
		t.Errorf("nCoarse = %d, want %d", nCoarse, g.N-pairs/2)
	}
}

func TestParallelBisectionMatchesSerial(t *testing.T) {
	g := gridGraph(t, 90, 90) // above the 4096-vertex parallel threshold
	serial, cutS, err := KWay(g, 8, Options{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4, 7} {
		par, cutP, err := KWay(g, 8, Options{Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if cutS != cutP {
			t.Fatalf("workers=%d cut %d != serial %d", workers, cutP, cutS)
		}
		for v := range serial {
			if serial[v] != par[v] {
				t.Fatalf("workers=%d partition diverges from serial at vertex %d", workers, v)
			}
		}
	}
}

func TestRandomMatchingStillPartitions(t *testing.T) {
	g := gridGraph(t, 20, 20)
	part, cut, err := KWay(g, 4, Options{Seed: 6, Matching: RandomMatching})
	if err != nil {
		t.Fatal(err)
	}
	if cut != EdgeCut(g, part) || cut <= 0 {
		t.Fatalf("random-matching cut inconsistent: %d", cut)
	}
	w := PartWeights(g, part, 4)
	for p, x := range w {
		if x == 0 {
			t.Errorf("part %d empty", p)
		}
	}
}

func TestRandomMatchIsMatching(t *testing.T) {
	g := gridGraph(t, 9, 9)
	rng := rand.New(rand.NewSource(9))
	match, _ := randomMatch(g, rng)
	for v := 0; v < g.N; v++ {
		if int(match[match[v]]) != v {
			t.Fatalf("random matching not symmetric at %d", v)
		}
	}
}
