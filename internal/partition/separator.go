package partition

import (
	"math/rand"

	"sparseorder/internal/graph"
)

// VertexSeparator computes a vertex separator of g from an edge-cut
// bisection: the boundary of the cut forms a bipartite graph, and a small
// vertex cover of that bipartite graph separates the remaining vertices.
// The cover is found greedily, repeatedly taking the boundary vertex
// incident to the most uncovered cut edges. It returns per-vertex labels:
// 0 and 1 for the two sides, 2 for the separator.
func VertexSeparator(g *graph.Graph, opts Options, rng *rand.Rand) []uint8 {
	if g.N == 0 {
		return nil
	}
	if g.N == 1 {
		return []uint8{0}
	}
	side := Bisect(g, 0.5, opts, rng)
	label := make([]uint8, g.N)
	copy(label, side)

	// Count uncovered cut edges per vertex.
	cutDeg := make([]int, g.N)
	for u := 0; u < g.N; u++ {
		for k := g.Ptr[u]; k < g.Ptr[u+1]; k++ {
			if side[g.Adj[k]] != side[u] {
				cutDeg[u]++
			}
		}
	}
	h := &fmHeap{}
	for v := 0; v < g.N; v++ {
		if cutDeg[v] > 0 {
			*h = append(*h, fmEntry{int32(v), cutDeg[v]})
		}
	}
	heapInit(h)
	for h.Len() > 0 {
		e := heapPop(h)
		v := int(e.v)
		if label[v] == 2 || e.gain != cutDeg[v] || cutDeg[v] == 0 {
			continue
		}
		label[v] = 2
		for k := g.Ptr[v]; k < g.Ptr[v+1]; k++ {
			u := g.Adj[k]
			if label[u] != 2 && side[u] != side[v] {
				cutDeg[u]--
				if cutDeg[u] > 0 {
					heapPush(h, fmEntry{u, cutDeg[u]})
				}
			}
		}
		cutDeg[v] = 0
	}
	return label
}
