// Package perfprofile implements Dolan-Moré performance profiles
// (paper ref. [7]), used in Figure 5 to compare reordering methods on
// bandwidth, profile, off-diagonal nonzero count and SpMV runtime.
//
// For solver s and problem p with cost c(p,s) ≥ 0, the performance ratio is
// r(p,s) = c(p,s) / min_s' c(p,s'), and the profile of s at x is the
// fraction of problems with r(p,s) ≤ x. A curve closer to the top-left is
// better.
package perfprofile

import (
	"fmt"
	"math"
	"sort"
)

// Profile holds the ratio distribution of one method.
type Profile struct {
	Method string
	Ratios []float64 // sorted performance ratios, one per problem
}

// Value returns the fraction of problems whose ratio is ≤ x.
func (p *Profile) Value(x float64) float64 {
	if len(p.Ratios) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(p.Ratios, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(p.Ratios))
}

// Compute builds performance profiles from a cost table: costs[p][s] is the
// cost of method s on problem p (lower is better). Methods and the inner
// dimension of costs must agree. Zero costs are treated as ties at the
// best value; a problem where every method costs zero contributes ratio 1
// to all methods.
func Compute(methods []string, costs [][]float64) ([]Profile, error) {
	profiles := make([]Profile, len(methods))
	for s := range methods {
		profiles[s] = Profile{Method: methods[s]}
	}
	for pi, row := range costs {
		if len(row) != len(methods) {
			return nil, fmt.Errorf("perfprofile: problem %d has %d costs, want %d", pi, len(row), len(methods))
		}
		best := math.Inf(1)
		for _, c := range row {
			if c < best {
				best = c
			}
		}
		for s, c := range row {
			var r float64
			switch {
			case best <= 0 && c <= 0:
				r = 1
			case best <= 0:
				r = math.Inf(1)
			default:
				r = c / best
			}
			profiles[s].Ratios = append(profiles[s].Ratios, r)
		}
	}
	for s := range profiles {
		sort.Float64s(profiles[s].Ratios)
	}
	return profiles, nil
}

// Table evaluates each profile at the given x values, producing rows
// suitable for printing: one row per x, one column per method.
func Table(profiles []Profile, xs []float64) [][]float64 {
	rows := make([][]float64, len(xs))
	for i, x := range xs {
		rows[i] = make([]float64, len(profiles))
		for s := range profiles {
			rows[i][s] = profiles[s].Value(x)
		}
	}
	return rows
}

// AreaScore integrates the profile over [1, xMax] (higher is better),
// giving a single scalar for ranking methods in tests.
func AreaScore(p *Profile, xMax float64) float64 {
	const steps = 200
	sum := 0.0
	for i := 0; i < steps; i++ {
		x := 1 + (xMax-1)*float64(i)/float64(steps-1)
		sum += p.Value(x)
	}
	return sum / steps
}
