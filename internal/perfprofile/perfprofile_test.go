package perfprofile

import (
	"math"
	"testing"
)

func TestComputeKnown(t *testing.T) {
	methods := []string{"A", "B"}
	costs := [][]float64{
		{1, 2}, // A best, B at ratio 2
		{3, 1}, // B best, A at ratio 3
		{2, 2}, // tie: both ratio 1
	}
	profiles, err := Compute(methods, costs)
	if err != nil {
		t.Fatal(err)
	}
	a, b := profiles[0], profiles[1]
	if v := a.Value(1.0); math.Abs(v-2.0/3) > 1e-12 {
		t.Errorf("A at x=1: %v, want 2/3", v)
	}
	if v := b.Value(1.0); math.Abs(v-2.0/3) > 1e-12 {
		t.Errorf("B at x=1: %v, want 2/3", v)
	}
	if v := a.Value(2.9); math.Abs(v-2.0/3) > 1e-12 {
		t.Errorf("A at x=2.9: %v, want 2/3", v)
	}
	if v := a.Value(3.0); v != 1 {
		t.Errorf("A at x=3: %v, want 1", v)
	}
	if v := b.Value(2.0); v != 1 {
		t.Errorf("B at x=2: %v, want 1", v)
	}
}

func TestComputeZeroCosts(t *testing.T) {
	profiles, err := Compute([]string{"A", "B"}, [][]float64{{0, 0}, {0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if v := profiles[0].Value(1); v != 1 {
		t.Errorf("A always ties best: %v", v)
	}
	// B has one infinite ratio: never reaches 1 at finite x.
	if v := profiles[1].Value(1e18); v != 0.5 {
		t.Errorf("B at huge x: %v, want 0.5", v)
	}
}

func TestComputeDimensionMismatch(t *testing.T) {
	if _, err := Compute([]string{"A"}, [][]float64{{1, 2}}); err == nil {
		t.Error("accepted mismatched cost row")
	}
}

func TestValueEmpty(t *testing.T) {
	p := Profile{Method: "X"}
	if p.Value(10) != 0 {
		t.Error("empty profile should be 0 everywhere")
	}
}

// TestValueBoundaries pins Value's step-function edges: x below the
// smallest ratio is 0, x exactly at a ratio counts every duplicate of that
// ratio (≤ semantics), and x just below it counts none of them.
func TestValueBoundaries(t *testing.T) {
	p := Profile{Method: "X", Ratios: []float64{1, 2, 2, 2, 4}}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},        // below the minimum ratio: no problem solved
		{1, 0.2},        // exactly the best ratio
		{1.999999, 0.2}, // just under a duplicated ratio: none of them count
		{2, 0.8},        // exactly at the duplicated ratio: all three count
		{3.9, 0.8},
		{4, 1},
		{100, 1},
	}
	for _, c := range cases {
		if v := p.Value(c.x); math.Abs(v-c.want) > 1e-12 {
			t.Errorf("Value(%v) = %v, want %v", c.x, v, c.want)
		}
	}
}

// TestComputeAllZeroRow: a problem where every method costs zero is a tie
// at ratio 1 for all methods, so the profile reaches 1 at x=1 and stays
// there — and Value below 1 must still be 0.
func TestComputeAllZeroRow(t *testing.T) {
	profiles, err := Compute([]string{"A", "B", "C"}, [][]float64{{0, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profiles {
		if v := p.Value(0.99); v != 0 {
			t.Errorf("%s: Value(0.99) = %v, want 0", p.Method, v)
		}
		if v := p.Value(1); v != 1 {
			t.Errorf("%s: Value(1) = %v, want 1", p.Method, v)
		}
	}
}

// TestComputeEmpty: no cost rows produce empty profiles that are 0
// everywhere, and an empty method list is not an error.
func TestComputeEmpty(t *testing.T) {
	profiles, err := Compute([]string{"A", "B"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("%d profiles, want 2", len(profiles))
	}
	for _, p := range profiles {
		if len(p.Ratios) != 0 || p.Value(1e9) != 0 {
			t.Errorf("%s: not empty/zero: %+v", p.Method, p)
		}
	}
	if ps, err := Compute(nil, nil); err != nil || len(ps) != 0 {
		t.Errorf("Compute(nil, nil) = %v, %v", ps, err)
	}
}

func TestTableShape(t *testing.T) {
	profiles, err := Compute([]string{"A", "B"}, [][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	rows := Table(profiles, []float64{1, 1.5, 2})
	if len(rows) != 3 || len(rows[0]) != 2 {
		t.Fatalf("table shape %dx%d", len(rows), len(rows[0]))
	}
	if rows[0][0] != 1 || rows[0][1] != 0 || rows[2][1] != 1 {
		t.Errorf("table values %v", rows)
	}
}

func TestAreaScoreOrdersMethods(t *testing.T) {
	// A is always best; B always 2x worse; A's area must dominate.
	profiles, err := Compute([]string{"A", "B"}, [][]float64{
		{1, 2}, {1, 2}, {1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if AreaScore(&profiles[0], 3) <= AreaScore(&profiles[1], 3) {
		t.Error("dominating method has smaller area")
	}
}

func TestValueMonotone(t *testing.T) {
	profiles, err := Compute([]string{"A", "B", "C"}, [][]float64{
		{1, 2, 4}, {2, 1, 8}, {5, 5, 1}, {1, 3, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profiles {
		prev := -1.0
		for x := 1.0; x < 10; x += 0.25 {
			v := p.Value(x)
			if v < prev {
				t.Fatalf("%s: profile not monotone at %v", p.Method, x)
			}
			prev = v
		}
	}
}
