package reorder

import (
	"sparseorder/internal/graph"
	"sparseorder/internal/par"
	"sparseorder/internal/sparse"
)

// amdCheckEvery is the number of eliminated pivots between cancellation
// checks in the AMD main loop.
const amdCheckEvery = 256

// ApproxMinimumDegree computes an approximate-minimum-degree ordering of g
// in the style of Amestoy, Davis and Duff (paper ref. [1]): elimination is
// simulated on a quotient graph whose cliques are stored implicitly as
// elements, and the degree of a variable is bounded from above by
//
//	d(i) = min(n-k, d_prev(i)+|L_p|-1, |A_i| + |L_p \ i| + Σ_{e∈E_i} |L_e \ L_p|)
//
// where the set differences |L_e \ L_p| for all affected elements are
// obtained in a single counting sweep. Elements absorbed by the pivot and
// elements whose pin set is contained in L_p (aggressive absorption) are
// removed. The returned permutation is new-to-old: position k holds the
// k-th eliminated variable.
func ApproxMinimumDegree(g *graph.Graph) sparse.Perm {
	return approxMinimumDegree(g, nil)
}

// approxMinimumDegree is the cancellable AMD core: done is polled every
// amdCheckEvery eliminations (nil never cancels), and a cancelled call
// returns the partial elimination order, which the caller must discard.
func approxMinimumDegree(g *graph.Graph, done <-chan struct{}) sparse.Perm {
	n := g.N
	if n == 0 {
		return sparse.Perm{}
	}

	adj := make([][]int32, n)   // A_i: variable-variable adjacency
	elems := make([][]int32, n) // E_i: elements adjacent to variable i
	pins := make([][]int32, n)  // L_e: pins of element e (e = pivot id)
	alive := make([]bool, n)    // variable not yet eliminated
	elemAlive := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		adj[v] = append([]int32(nil), g.Neighbors(v)...)
		deg[v] = len(adj[v])
		alive[v] = true
	}

	// Bucket queue over degrees with lazy invalidation.
	buckets := make([][]int32, n+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	minDeg := 0

	mark := make([]int32, n) // generation marks for L_p membership
	var gen int32
	w := make([]int, n) // |L_e \ L_p| counters
	wtag := make([]int32, n)
	var wgen int32

	order := make(sparse.Perm, 0, n)
	var lp []int32

	for len(order) < n {
		if len(order)%amdCheckEvery == amdCheckEvery-1 && par.Canceled(done) {
			return order
		}
		// Pop the variable of (approximately) minimum degree.
		var p int32 = -1
		for minDeg <= n {
			b := buckets[minDeg]
			for len(b) > 0 {
				cand := b[len(b)-1]
				b = b[:len(b)-1]
				if alive[cand] && deg[cand] == minDeg {
					p = cand
					break
				}
			}
			buckets[minDeg] = b
			if p >= 0 {
				break
			}
			minDeg++
		}

		// Build L_p = (A_p ∪ ⋃_{e∈E_p} L_e) \ {p}; absorb the elements of p.
		gen++
		mark[p] = gen
		lp = lp[:0]
		for _, u := range adj[p] {
			if alive[u] && mark[u] != gen {
				mark[u] = gen
				lp = append(lp, u)
			}
		}
		for _, e := range elems[p] {
			if !elemAlive[e] {
				continue
			}
			for _, u := range pins[e] {
				if alive[u] && mark[u] != gen {
					mark[u] = gen
					lp = append(lp, u)
				}
			}
			elemAlive[e] = false
			pins[e] = nil
		}
		alive[p] = false
		adj[p] = nil
		elems[p] = nil
		order = append(order, int(p))
		if len(lp) == 0 {
			continue
		}
		pinsP := make([]int32, len(lp))
		copy(pinsP, lp)
		pins[p] = pinsP
		elemAlive[p] = true

		// Counting sweep: after this loop, w[e] = |L_e \ L_p| for every
		// alive element e adjacent to a pin of p.
		wgen++
		for _, i := range lp {
			for _, e := range elems[i] {
				if !elemAlive[e] {
					continue
				}
				if wtag[e] != wgen {
					wtag[e] = wgen
					w[e] = len(pins[e])
				}
				w[e]--
			}
		}

		// Update every pin: prune A_i and E_i, append the new element, and
		// recompute the approximate degree.
		for _, i := range lp {
			a := adj[i][:0]
			for _, u := range adj[i] {
				if alive[u] && mark[u] != gen {
					a = append(a, u)
				}
			}
			adj[i] = a

			es := elems[i][:0]
			extDeg := 0
			for _, e := range elems[i] {
				if !elemAlive[e] {
					continue
				}
				if wtag[e] == wgen && w[e] == 0 {
					// Aggressive absorption: L_e ⊆ L_p, so e is redundant.
					elemAlive[e] = false
					pins[e] = nil
					continue
				}
				es = append(es, e)
				if wtag[e] == wgen {
					extDeg += w[e]
				} else {
					extDeg += len(pins[e])
				}
			}
			elems[i] = append(es, p)

			d := len(adj[i]) + len(lp) - 1 + extDeg
			if bound := deg[i] + len(lp) - 1; bound < d {
				d = bound
			}
			if bound := n - len(order); bound < d {
				d = bound
			}
			if d < 0 {
				d = 0
			}
			deg[i] = d
			buckets[d] = append(buckets[d], i)
			if d < minDeg {
				minDeg = d
			}
		}
	}
	return order
}
