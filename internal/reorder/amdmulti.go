package reorder

import (
	"sort"

	"sparseorder/internal/graph"
	"sparseorder/internal/obs"
	"sparseorder/internal/par"
	"sparseorder/internal/sparse"
)

// amdMultiMinVerts is the graph size below which the multiple-elimination
// AMD falls back to the serial quotient-graph core: small problems finish
// faster serially than a round structure can schedule them. The cutover
// depends only on the graph, never on the worker count, so the ordering
// stays byte-identical at any Workers value.
const amdMultiMinVerts = 4096

// ApproxMinimumDegreeWorkers is ApproxMinimumDegree with the rounds of a
// multiple-elimination scheme (Chang, Buluç & Demmel: eliminate a
// distance-2 independent set of near-minimum-degree pivots per round)
// running the per-pivot quotient-graph updates on up to workers
// goroutines. The pivot set and its elimination order are fixed serially
// before any parallel work (ties break to the lowest vertex id), and
// distance-2 independence makes the per-pivot updates touch disjoint
// state, so the permutation is byte-identical at every worker count.
// Graphs below amdMultiMinVerts vertices take the serial core unchanged.
func ApproxMinimumDegreeWorkers(g *graph.Graph, workers int) sparse.Perm {
	return approxMinimumDegreeWorkers(g, workers, nil, nil)
}

// approxMinimumDegreeWorkers is the cancellable dispatcher behind the
// exported entry point and the Compute AMD path.
func approxMinimumDegreeWorkers(g *graph.Graph, workers int, o *obs.Obs, done <-chan struct{}) sparse.Perm {
	if g.N < amdMultiMinVerts {
		return approxMinimumDegree(g, done)
	}
	return approxMinimumDegreeMulti(g, workers, o, done)
}

// amdState is the shared quotient graph of the multiple-elimination AMD;
// see approxMinimumDegree for the roles of the fields. During a round's
// parallel phase each selected pivot's update touches only its own
// distance-≤1 neighbourhood, and distance-2 independence makes those
// neighbourhoods disjoint — every slot of every field is written by at
// most one goroutine per round.
type amdState struct {
	adj       [][]int32 // A_i: variable-variable adjacency
	elems     [][]int32 // E_i: elements adjacent to variable i
	pins      [][]int32 // L_e: pins of element e (e = pivot id)
	alive     []bool    // variable not yet eliminated
	elemAlive []bool
	deg       []int
}

// amdScratch is one worker's private generation-marked scratch: mark
// tracks L_p membership, w/wtag the |L_e \ L_p| counting sweep, lp the
// pivot's pin list under construction.
type amdScratch struct {
	mark []int32
	gen  int32
	w    []int
	wtag []int32
	wgen int32
	lp   []int32
}

// neighborhood appends v's current quotient-graph neighbours (alive
// variables reachable through A_v or through an alive element) to buf.
// Duplicates are fine: the callers only mark or test membership.
func (st *amdState) neighborhood(v int32, buf []int32) []int32 {
	for _, u := range st.adj[v] {
		if st.alive[u] {
			buf = append(buf, u)
		}
	}
	for _, e := range st.elems[v] {
		if !st.elemAlive[e] {
			continue
		}
		for _, u := range st.pins[e] {
			if u != v && st.alive[u] {
				buf = append(buf, u)
			}
		}
	}
	return buf
}

// approxMinimumDegreeMulti is the multiple-elimination AMD. Each round:
//
//  1. (serial) Collect the alive vertices in the near-minimum degree band
//     [minDeg, minDeg+1+minDeg/16] from the lazy bucket queue, order them
//     by (degree, id), and greedily select a distance-2 independent
//     subset — no two pivots adjacent and no shared neighbour — so their
//     eliminations commute and touch disjoint quotient-graph state.
//  2. (parallel) Eliminate every selected pivot: build L_p, absorb its
//     elements, run the counting sweep and degree updates — exactly the
//     serial core's update, on per-worker scratch.
//  3. (serial) Append the pivots to the ordering in selection order and
//     requeue their pins at the new degrees.
//
// The result depends only on the graph (it is NOT the serial core's
// ordering — see DESIGN.md on the one-time output change), never on the
// worker count or scheduling.
func approxMinimumDegreeMulti(g *graph.Graph, workers int, o *obs.Obs, done <-chan struct{}) sparse.Perm {
	n := g.N
	if n == 0 {
		return sparse.Perm{}
	}
	st := &amdState{
		adj:       make([][]int32, n),
		elems:     make([][]int32, n),
		pins:      make([][]int32, n),
		alive:     make([]bool, n),
		elemAlive: make([]bool, n),
		deg:       make([]int, n),
	}
	for v := 0; v < n; v++ {
		st.adj[v] = append([]int32(nil), g.Neighbors(v)...)
		st.deg[v] = len(st.adj[v])
		st.alive[v] = true
	}

	// Lazy bucket queue over degrees, compacted as buckets are scanned.
	buckets := make([][]int32, n+1)
	for v := 0; v < n; v++ {
		buckets[st.deg[v]] = append(buckets[st.deg[v]], int32(v))
	}
	minDeg := 0

	w := par.Resolve(workers)
	scratch := make([]*amdScratch, par.Chunks(n, w))
	blocked := make([]int32, n)  // round-stamped: pivot or pivot-adjacent
	candSeen := make([]int32, n) // round-stamped candidate dedup
	var round int32
	var cands, S, nbuf []int32
	order := make(sparse.Perm, 0, n)
	selPhase := o.Phase("amd/select")
	elimPhase := o.Phase("amd/eliminate")

	for len(order) < n {
		if par.Canceled(done) {
			return order
		}
		round++
		tm := selPhase.Start()
		// Advance minDeg to the first bucket holding a live entry,
		// dropping stale (dead or re-queued) entries along the way.
		for minDeg <= n {
			b := buckets[minDeg]
			kept := b[:0]
			for _, v := range b {
				if st.alive[v] && st.deg[v] == minDeg {
					kept = append(kept, v)
				}
			}
			buckets[minDeg] = kept
			if len(kept) > 0 {
				break
			}
			minDeg++
		}
		// Candidates: the near-minimum band, each bucket compacted as it
		// is scanned so stale entries are not re-visited every round.
		thr := minDeg + 1 + minDeg/16
		if thr > n {
			thr = n
		}
		cands = cands[:0]
		for d := minDeg; d <= thr; d++ {
			b := buckets[d]
			kept := b[:0]
			for _, v := range b {
				if st.alive[v] && st.deg[v] == d {
					kept = append(kept, v)
					if candSeen[v] != round {
						candSeen[v] = round
						cands = append(cands, v)
					}
				}
			}
			buckets[d] = kept
		}
		sort.Slice(cands, func(i, j int) bool {
			di, dj := st.deg[cands[i]], st.deg[cands[j]]
			if di != dj {
				return di < dj
			}
			return cands[i] < cands[j]
		})
		// Greedy distance-2 independent set in (degree, id) order: the
		// lowest-id minimum-degree vertex always wins — the deterministic
		// tie-break of the determinism contract.
		S = S[:0]
		for ci, v := range cands {
			if ci%amdCheckEvery == amdCheckEvery-1 && par.Canceled(done) {
				break
			}
			if blocked[v] == round {
				continue
			}
			nbuf = st.neighborhood(v, nbuf[:0])
			ok := true
			for _, u := range nbuf {
				if blocked[u] == round {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			S = append(S, v)
			blocked[v] = round
			for _, u := range nbuf {
				blocked[u] = round
			}
		}
		tm.Stop()
		// S is never empty: the first candidate is always selected, so the
		// loop makes progress every round.
		nLeft := n - len(order) - len(S)
		tm = elimPhase.Start()
		par.Ranges(len(S), w, func(chunk, lo, hi int) {
			sc := scratch[chunk]
			if sc == nil {
				sc = &amdScratch{
					mark: make([]int32, n),
					w:    make([]int, n),
					wtag: make([]int32, n),
				}
				scratch[chunk] = sc
			}
			for si := lo; si < hi; si++ {
				st.eliminate(S[si], nLeft, sc)
			}
		})
		tm.Stop()
		// Commit serially: pivots join the ordering in selection order and
		// their pins re-enter the queue at their updated degrees.
		for _, p := range S {
			order = append(order, int(p))
			for _, i := range st.pins[p] {
				d := st.deg[i]
				buckets[d] = append(buckets[d], i)
				if d < minDeg {
					minDeg = d
				}
			}
		}
	}
	return order
}

// eliminate runs one pivot's quotient-graph elimination — the exact
// update step of the serial core (see approxMinimumDegree) on per-worker
// scratch. nLeft is the round's shared n-k degree bound.
func (st *amdState) eliminate(p int32, nLeft int, sc *amdScratch) {
	sc.gen++
	gen := sc.gen
	sc.mark[p] = gen
	lp := sc.lp[:0]
	for _, u := range st.adj[p] {
		if st.alive[u] && sc.mark[u] != gen {
			sc.mark[u] = gen
			lp = append(lp, u)
		}
	}
	for _, e := range st.elems[p] {
		if !st.elemAlive[e] {
			continue
		}
		for _, u := range st.pins[e] {
			if st.alive[u] && sc.mark[u] != gen {
				sc.mark[u] = gen
				lp = append(lp, u)
			}
		}
		st.elemAlive[e] = false
		st.pins[e] = nil
	}
	st.alive[p] = false
	st.adj[p] = nil
	st.elems[p] = nil
	sc.lp = lp
	if len(lp) == 0 {
		return
	}
	pinsP := make([]int32, len(lp))
	copy(pinsP, lp)
	st.pins[p] = pinsP
	st.elemAlive[p] = true

	// Counting sweep: w[e] = |L_e \ L_p| for every alive element adjacent
	// to a pin of p.
	sc.wgen++
	for _, i := range lp {
		for _, e := range st.elems[i] {
			if !st.elemAlive[e] {
				continue
			}
			if sc.wtag[e] != sc.wgen {
				sc.wtag[e] = sc.wgen
				sc.w[e] = len(st.pins[e])
			}
			sc.w[e]--
		}
	}

	for _, i := range lp {
		a := st.adj[i][:0]
		for _, u := range st.adj[i] {
			if st.alive[u] && sc.mark[u] != gen {
				a = append(a, u)
			}
		}
		st.adj[i] = a

		es := st.elems[i][:0]
		extDeg := 0
		for _, e := range st.elems[i] {
			if !st.elemAlive[e] {
				continue
			}
			if sc.wtag[e] == sc.wgen && sc.w[e] == 0 {
				// Aggressive absorption: L_e ⊆ L_p, so e is redundant. An
				// absorbable element has every pin inside L_p, so no other
				// pivot's update can be looking at it.
				st.elemAlive[e] = false
				st.pins[e] = nil
				continue
			}
			es = append(es, e)
			if sc.wtag[e] == sc.wgen {
				extDeg += sc.w[e]
			} else {
				extDeg += len(st.pins[e])
			}
		}
		st.elems[i] = append(es, p)

		d := len(st.adj[i]) + len(lp) - 1 + extDeg
		if bound := st.deg[i] + len(lp) - 1; bound < d {
			d = bound
		}
		if nLeft < d {
			d = nLeft
		}
		if d < 0 {
			d = 0
		}
		st.deg[i] = d
	}
}
