package reorder

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"sparseorder/internal/gen"
	"sparseorder/internal/sparse"
)

// TestComputeCtxAlreadyCancelled checks every algorithm refuses to start
// under a dead context and never leaks a partial permutation.
func TestComputeCtxAlreadyCancelled(t *testing.T) {
	a := gen.Grid2D(12, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range AllOrderings {
		p, err := ComputeCtx(ctx, alg, a, Options{Parts: 4})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", alg, err)
		}
		if p != nil {
			t.Errorf("%s returned a partial permutation after cancellation", alg)
		}
	}
}

// TestComputeCtxBackgroundMatchesPlain checks the cancellation plumbing is
// inert for an uncancelled run: ComputeCtx with a background context must
// return exactly the permutation the historical entry point returns.
func TestComputeCtxBackgroundMatchesPlain(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(20, 20), 3)
	for _, alg := range AllOrderings {
		want, err := Compute(alg, a, Options{Parts: 8, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		got, err := ComputeCtx(context.Background(), alg, a, Options{Parts: 8, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: length %d vs %d", alg, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: permutation differs at %d under a background context", alg, i)
			}
		}
	}
}

// TestComputeCtxTimeoutStopsWedgedOrdering is the interruptibility
// acceptance test: a deadline far shorter than the ordering's runtime must
// interrupt the inner loops and return well within the historical full
// runtime (the cancellation checks bound the overshoot). AMD and ND on a
// 48k-vertex grid take far longer than the 10ms deadline, so cancellation
// is genuinely exercised; a fast machine finishing RCM inside the deadline
// is fine — the promptness bound is what matters.
func TestComputeCtxTimeoutStopsWedgedOrdering(t *testing.T) {
	a := gen.Grid2D(220, 220)
	for _, alg := range []Algorithm{RCM, AMD, ND, GP, HP} {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		start := time.Now()
		p, err := ComputeCtx(ctx, alg, a, Options{Parts: 16})
		elapsed := time.Since(start)
		cancel()
		if elapsed > 5*time.Second {
			t.Errorf("%s ran %v after a 10ms deadline — cancellation not reaching its loops", alg, elapsed)
		}
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("%s: err = %v, want DeadlineExceeded", alg, err)
			}
			if p != nil {
				t.Errorf("%s returned a partial permutation after timeout", alg)
			}
		}
	}
}

// TestComputeCtxNoGoroutineLeak drives the pooled (multi-component,
// multi-worker) RCM path through repeated cancelled runs and checks the
// worker goroutines exit instead of accumulating.
func TestComputeCtxNoGoroutineLeak(t *testing.T) {
	a := disjointGrids(8, 40)
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		ComputeCtx(ctx, RCM, a, Options{Workers: 4})
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled runs", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// disjointGrids builds a block-diagonal matrix of k disconnected n×n
// grids, exercising the component-parallel ordering path.
func disjointGrids(k, n int) *sparse.CSR {
	g := gen.Grid2D(n, n)
	rows := g.Rows * k
	coo := sparse.NewCOO(rows, rows, g.NNZ()*k)
	for b := 0; b < k; b++ {
		off := b * g.Rows
		for i := 0; i < g.Rows; i++ {
			for kk := g.RowPtr[i]; kk < g.RowPtr[i+1]; kk++ {
				coo.Append(off+i, off+int(g.ColIdx[kk]), g.Val[kk])
			}
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return a
}

// TestApplyTimedCtxRejectsInvalidPermutation checks the Apply-side guard:
// a permutation failing validation surfaces as a typed error naming the
// algorithm instead of a corrupted matrix. The guard is exercised through
// the sparse.PermError unwrap chain.
func TestApplyTimedCtxValidatesBeforePermute(t *testing.T) {
	a := gen.Grid2D(6, 6)
	b, p, _, err := ApplyTimedCtx(context.Background(), RCM, a, Options{})
	if err != nil || b == nil || len(p) != a.Rows {
		t.Fatalf("valid ordering rejected: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("RCM permutation invalid: %v", err)
	}
}
