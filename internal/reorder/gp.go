package reorder

import (
	"context"
	"sort"

	"sparseorder/internal/graph"
	"sparseorder/internal/hypergraph"
	"sparseorder/internal/obs"
	"sparseorder/internal/partition"
	"sparseorder/internal/sparse"
)

// GraphPartitionOrder computes the GP ordering of the study (paper §3.3):
// the graph of A+Aᵀ is partitioned into opts.Parts parts with the edge-cut
// objective and unweighted vertices (balancing rows per part), and rows and
// columns are grouped by their part id, preserving the original relative
// order within each part.
func GraphPartitionOrder(g *graph.Graph, opts Options) (sparse.Perm, error) {
	return graphPartitionOrder(g, opts, nil)
}

// graphPartitionOrder is the cancellable GP core: done is threaded into the
// partitioner's coarsening, initial-bisection and refinement loops; a
// cancellation surfaces as a partitioner error (context.Canceled).
func graphPartitionOrder(g *graph.Graph, opts Options, done <-chan struct{}) (sparse.Perm, error) {
	opts = opts.withDefaults()
	part, _, err := partition.KWay(g, opts.Parts, partition.Options{
		Seed:    opts.Seed,
		Workers: opts.Workers,
		Cancel:  done,
		Obs:     opts.obs,
	})
	if err != nil {
		return nil, err
	}
	return orderByPart(part), nil
}

// HypergraphPartitionOrder computes the HP ordering of the study: the
// column-net hypergraph of A is partitioned into opts.Parts parts under the
// cut-net metric with the same (row-count) balance criterion as GP, and
// rows/columns are grouped by part. The paper fixes 128 parts for HP.
func HypergraphPartitionOrder(a *sparse.CSR, opts Options) (sparse.Perm, error) {
	return hypergraphPartitionOrder(a, opts, nil)
}

// hypergraphPartitionOrder is the cancellable HP core, mirroring
// graphPartitionOrder.
func hypergraphPartitionOrder(a *sparse.CSR, opts Options, done <-chan struct{}) (sparse.Perm, error) {
	opts = opts.withDefaults()
	h := hypergraph.ColumnNet(a)
	hopts := hypergraph.Options{
		Seed:    opts.Seed,
		Workers: opts.Workers,
		Cancel:  done,
		Obs:     opts.obs,
	}
	var part []int32
	var err error
	if opts.HPObjective == Connectivity {
		part, _, err = hypergraph.KWayConnectivity(h, opts.Parts, hopts)
	} else {
		part, _, err = hypergraph.KWay(h, opts.Parts, hopts)
	}
	if err != nil {
		return nil, err
	}
	return orderByPart(part), nil
}

// GraphPartitionOrderWeighted is the ablation variant of GP (see
// DESIGN.md): vertices are weighted by their row nonzero count, so the
// partitioner balances nonzeros instead of rows — the alternative METIS
// balance criterion the paper describes in §3.3 but does not adopt.
func GraphPartitionOrderWeighted(a *sparse.CSR, opts Options) (sparse.Perm, error) {
	return GraphPartitionOrderWeightedCtx(context.Background(), a, opts)
}

// GraphPartitionOrderWeightedCtx is GraphPartitionOrderWeighted driven by a
// context, with the same cancellation contract as ComputeCtx: the context's
// done channel reaches the partitioner's coarsening, initial-bisection and
// refinement loops, and a cancelled call returns the context's error, never
// a partial permutation. An Obs carried by the context (obs.NewContext)
// receives the partitioner's phase timings, and opts.Workers bounds the
// partitioner's goroutines — the ablation path honours the same Options
// fields as the production GP path instead of silently dropping them.
func GraphPartitionOrderWeightedCtx(ctx context.Context, a *sparse.CSR, opts Options) (sparse.Perm, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	g, err := graph.FromMatrixSymmetrizedWorkers(a, opts.Workers)
	if err != nil {
		return nil, err
	}
	g.VWgt = make([]int32, a.Rows)
	for i := 0; i < a.Rows; i++ {
		g.VWgt[i] = int32(a.RowNNZ(i))
	}
	part, _, err := partition.KWay(g, opts.Parts, partition.Options{
		Seed:    opts.Seed,
		Workers: opts.Workers,
		Cancel:  ctx.Done(),
		Obs:     obs.FromContext(ctx),
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return orderByPart(part), nil
}

// orderByPart converts a part assignment into a new-to-old permutation by a
// stable sort on part id.
func orderByPart(part []int32) sparse.Perm {
	p := make(sparse.Perm, len(part))
	for i := range p {
		p[i] = i
	}
	sort.SliceStable(p, func(i, j int) bool { return part[p[i]] < part[p[j]] })
	return p
}
