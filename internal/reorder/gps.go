package reorder

import (
	"sort"

	"sparseorder/internal/graph"
	"sparseorder/internal/sparse"
)

// GibbsPooleStockmeyer computes a bandwidth/profile-reducing ordering in
// the manner of Gibbs, Poole and Stockmeyer (paper §2.1.1, ref. [12]):
// per connected component it finds the two endpoints of a pseudo-diameter,
// combines their opposing level structures into one of minimal width —
// vertices on which both structures agree keep that level, and each
// remaining connected cluster is assigned wholesale to whichever of its
// two candidate levelings grows the maximum level width least — and then
// numbers the levels consecutively with vertices sorted by degree. The
// final ordering is reversed, like RCM, which is the variant that performs
// better in practice. Included as an extension: the study evaluates RCM
// but cites GPS as the other classical bandwidth reducer.
func GibbsPooleStockmeyer(g *graph.Graph) sparse.Perm {
	n := g.N
	perm := make(sparse.Perm, 0, n)
	seen := make([]bool, n)
	scratch := make([]int32, n)

	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		u, ru := graph.PseudoPeripheral(g, s, scratch)
		// Opposite endpoint: minimum-degree vertex of the deepest level.
		last := ru.Levels[len(ru.Levels)-1]
		v := int(last[0])
		for _, w := range last {
			if g.Degree(int(w)) < g.Degree(v) {
				v = int(w)
			}
		}
		lu := make([]int32, 0, len(ru.Order))
		lu = append(lu, ru.Order...)
		levelU := make(map[int32]int32, len(lu))
		for _, w := range lu {
			levelU[w] = ru.Level[w]
		}
		h := ru.Depth()
		rv := graph.BFS(g, v, scratch)

		// Combine: level(w) = lu(w) when lu(w) == h - lv(w).
		level := make(map[int32]int32, len(lu))
		var unassigned []int32
		for _, w := range lu {
			iu := levelU[w]
			iv := int32(h) - rv.Level[w]
			if iu == iv {
				level[w] = iu
			} else {
				unassigned = append(unassigned, w)
			}
		}
		width := make([]int, h+1)
		for _, l := range level {
			width[l]++
		}

		// Cluster the unassigned vertices and place each cluster by the
		// leveling that keeps the maximum width smallest; larger clusters
		// are placed first, as in the original algorithm.
		clusters := clustersOf(g, unassigned)
		sort.SliceStable(clusters, func(a, b int) bool { return len(clusters[a]) > len(clusters[b]) })
		for _, cl := range clusters {
			bestU, bestV := 0, 0
			addU := make(map[int32]int)
			addV := make(map[int32]int)
			for _, w := range cl {
				addU[levelU[w]]++
				addV[int32(h)-rv.Level[w]]++
			}
			for l, c := range addU {
				if t := width[l] + c; t > bestU {
					bestU = t
				}
			}
			for l, c := range addV {
				if t := width[l] + c; t > bestV {
					bestV = t
				}
			}
			useU := bestU <= bestV
			for _, w := range cl {
				l := levelU[w]
				if !useU {
					l = int32(h) - rv.Level[w]
				}
				level[w] = l
				width[l]++
			}
		}

		// Number level by level, each level sorted by ascending degree and
		// original index for determinism.
		byLevel := make([][]int32, h+1)
		for _, w := range lu {
			byLevel[level[w]] = append(byLevel[level[w]], w)
		}
		for _, lv := range byLevel {
			sort.Slice(lv, func(a, b int) bool {
				da, db := g.Degree(int(lv[a])), g.Degree(int(lv[b]))
				if da != db {
					return da < db
				}
				return lv[a] < lv[b]
			})
			for _, w := range lv {
				perm = append(perm, int(w))
				seen[w] = true
			}
		}
		_ = u
	}

	// Reverse, as with RCM.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// clustersOf returns the connected components of the subgraph induced on
// the given vertex subset.
func clustersOf(g *graph.Graph, verts []int32) [][]int32 {
	in := make(map[int32]bool, len(verts))
	for _, v := range verts {
		in[v] = true
	}
	visited := make(map[int32]bool, len(verts))
	var out [][]int32
	for _, s := range verts {
		if visited[s] {
			continue
		}
		comp := []int32{s}
		visited[s] = true
		for head := 0; head < len(comp); head++ {
			for _, u := range g.Neighbors(int(comp[head])) {
				if in[u] && !visited[u] {
					visited[u] = true
					comp = append(comp, u)
				}
			}
		}
		out = append(out, comp)
	}
	return out
}
