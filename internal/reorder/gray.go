package reorder

import (
	"sort"

	"sparseorder/internal/sparse"
)

// GrayOrder computes the Gray ordering of Zhao et al. (paper §2.1.4) with
// the parameters the study uses: rows with more than opts.GrayDenseThreshold
// (default 20) nonzeros form the dense submatrix and are grouped by
// descending density (density reordering, aimed at branch prediction);
// the remaining sparse rows are each summarised by an
// opts.GrayBitmapBits-bit (default 16) occupancy bitmap over equal column
// sections and ordered by the rank of the bitmap in the reflected Gray-code
// sequence, placing rows with similar column footprints next to each other
// for locality. Only rows are permuted; the ordering is unsymmetric.
func GrayOrder(a *sparse.CSR, opts Options) sparse.Perm {
	opts = opts.withDefaults()
	bits := opts.GrayBitmapBits
	// rowBitmap and grayRank are correct for the full uint64 width, so the
	// clamp sits at 64: configured widths up to 64 are honoured exactly
	// (a clamp at 62 would silently change the ordering for 63 and 64).
	if bits > 64 {
		bits = 64
	}
	var dense, spr []int32
	for i := 0; i < a.Rows; i++ {
		if a.RowNNZ(i) > opts.GrayDenseThreshold {
			dense = append(dense, int32(i))
		} else {
			spr = append(spr, int32(i))
		}
	}

	// Dense submatrix: density reordering — group rows of similar nonzero
	// count together, densest first.
	sort.SliceStable(dense, func(x, y int) bool {
		return a.RowNNZ(int(dense[x])) > a.RowNNZ(int(dense[y]))
	})

	// Sparse submatrix: bitmap reordering by Gray-code rank.
	rank := make([]uint64, a.Rows)
	for _, i := range spr {
		rank[i] = grayRank(rowBitmap(a, int(i), bits))
	}
	sort.SliceStable(spr, func(x, y int) bool {
		return rank[spr[x]] < rank[spr[y]]
	})

	p := make(sparse.Perm, 0, a.Rows)
	for _, i := range dense {
		p = append(p, int(i))
	}
	for _, i := range spr {
		p = append(p, int(i))
	}
	return p
}

// rowBitmap summarises row i as a bits-wide occupancy bitmap: the columns
// are divided into bits equal sections and bit s is set when the row has at
// least one nonzero in section s. Bit 0 is the leftmost section, stored as
// the most significant bit so that lexicographic section order matches
// numeric order.
func rowBitmap(a *sparse.CSR, i, bits int) uint64 {
	var bm uint64
	cols := a.Cols
	if cols == 0 {
		return 0
	}
	for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
		s := int(int64(a.ColIdx[k]) * int64(bits) / int64(cols))
		if s >= bits {
			s = bits - 1
		}
		bm |= 1 << uint(bits-1-s)
	}
	return bm
}

// grayRank returns the index of code g in the reflected Gray-code sequence,
// i.e. the inverse of the binary-to-Gray transform b ↦ b^(b>>1).
func grayRank(g uint64) uint64 {
	b := g
	b ^= b >> 1
	b ^= b >> 2
	b ^= b >> 4
	b ^= b >> 8
	b ^= b >> 16
	b ^= b >> 32
	return b
}
