package reorder

import (
	"math/rand"

	"sparseorder/internal/graph"
	"sparseorder/internal/par"
	"sparseorder/internal/partition"
	"sparseorder/internal/sparse"
)

// ndForkMinVerts is the subproblem size below which dissect stops forking
// and recurses inline; tiny branches cost more to schedule than to order.
const ndForkMinVerts = 1024

// NestedDissection orders g by recursive vertex dissection (paper §2.1.2):
// a vertex separator splits the graph, the two halves are ordered first
// (recursively) and the separator vertices are placed last, so that
// eliminating them late keeps Cholesky fill low. Recursion stops below
// opts.NDSmall vertices, where a minimum-degree ordering is used instead —
// the same small-subproblem strategy METIS' node dissection applies.
//
// The two halves of every dissection run as fork-join tasks bounded by
// opts.Workers: each branch derives its own deterministic RNG seed and
// writes a disjoint segment of the permutation (left half first, right
// half next, separator last), so the ordering is byte-identical at every
// worker count.
func NestedDissection(g *graph.Graph, opts Options) sparse.Perm {
	return nestedDissection(g, opts, nil)
}

// nestedDissection is the cancellable ND core: done is polled at every
// dissection branch and threaded into the separator's multilevel machinery
// and the small-subproblem AMD (nil never cancels). A cancelled call
// returns a partial permutation the caller must discard.
func nestedDissection(g *graph.Graph, opts Options, done <-chan struct{}) sparse.Perm {
	opts = opts.withDefaults()
	perm := make(sparse.Perm, g.N)
	verts := make([]int32, g.N)
	for i := range verts {
		verts[i] = int32(i)
	}
	popts := partition.Options{Workers: opts.Workers, Cancel: done, Obs: opts.obs}
	dissect(g, verts, perm, opts, popts, opts.Seed, par.NewLimiter(opts.Workers))
	return perm
}

// dissect orders the subgraph induced by verts into out (len(out) ==
// len(verts)): positions [0, |left|) hold the left half, [|left|,
// |left|+|right|) the right half, and the tail the separator. seed is this
// branch's RNG seed; children derive theirs with the same multiplicative
// derivation recursiveBisect uses, so the ordering is a pure function of
// (graph, opts.Seed) regardless of scheduling.
func dissect(root *graph.Graph, verts []int32, out sparse.Perm, opts Options, popts partition.Options, seed int64, lim *par.Limiter) {
	if len(verts) == 0 || par.Canceled(popts.Cancel) {
		return
	}
	sub, orig := graph.InducedSubgraph(root, verts)
	if len(verts) <= opts.NDSmall {
		dissectLeaf(sub, orig, out, popts.Cancel)
		return
	}
	popts.Seed = seed
	label := partition.VertexSeparator(sub, popts, rand.New(rand.NewSource(seed)))
	var left, right, sep []int32
	for i, l := range label {
		switch l {
		case 0:
			left = append(left, orig[i])
		case 1:
			right = append(right, orig[i])
		default:
			sep = append(sep, orig[i])
		}
	}
	// Degenerate separators (everything on one side) would recurse forever;
	// fall back to minimum degree for this subgraph. A cancellation mid-
	// separator also lands here (the partial label puts everything on one
	// side) and unwinds through the AMD core's own done check.
	if len(left) == 0 || len(right) == 0 {
		dissectLeaf(sub, orig, out, popts.Cancel)
		return
	}
	leftOut := out[:len(left)]
	rightOut := out[len(left) : len(left)+len(right)]
	leftSeed := seed*2654435761 + 1
	rightSeed := seed*2654435761 + 2
	if lim != nil && len(verts) > ndForkMinVerts {
		lim.Fork(
			func() { dissect(root, left, leftOut, opts, popts, leftSeed, lim) },
			func() { dissect(root, right, rightOut, opts, popts, rightSeed, lim) })
	} else {
		dissect(root, left, leftOut, opts, popts, leftSeed, lim)
		dissect(root, right, rightOut, opts, popts, rightSeed, lim)
	}
	tail := out[len(left)+len(right):]
	for i, v := range sep {
		tail[i] = int(v)
	}
}

// dissectLeaf orders a small (or degenerate) subproblem with the serial
// AMD core, mapping its local ordering back through orig into out. After
// a cancellation the partial AMD order fills only a prefix; the caller
// discards the whole permutation once it observes the cancel.
func dissectLeaf(sub *graph.Graph, orig []int32, out sparse.Perm, done <-chan struct{}) {
	local := approxMinimumDegree(sub, done)
	for i, v := range local {
		out[i] = int(orig[v])
	}
}
