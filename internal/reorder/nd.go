package reorder

import (
	"math/rand"

	"sparseorder/internal/graph"
	"sparseorder/internal/par"
	"sparseorder/internal/partition"
	"sparseorder/internal/sparse"
)

// NestedDissection orders g by recursive vertex dissection (paper §2.1.2):
// a vertex separator splits the graph, the two halves are ordered first
// (recursively) and the separator vertices are placed last, so that
// eliminating them late keeps Cholesky fill low. Recursion stops below
// opts.NDSmall vertices, where a minimum-degree ordering is used instead —
// the same small-subproblem strategy METIS' node dissection applies.
func NestedDissection(g *graph.Graph, opts Options) sparse.Perm {
	return nestedDissection(g, opts, nil)
}

// nestedDissection is the cancellable ND core: done is polled at every
// dissection branch and threaded into the separator's multilevel machinery
// and the small-subproblem AMD (nil never cancels). A cancelled call
// returns a partial permutation the caller must discard.
func nestedDissection(g *graph.Graph, opts Options, done <-chan struct{}) sparse.Perm {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := make(sparse.Perm, 0, g.N)
	verts := make([]int32, g.N)
	for i := range verts {
		verts[i] = int32(i)
	}
	popts := partition.Options{Seed: opts.Seed, Cancel: done, Obs: opts.obs}
	dissect(g, verts, opts, popts, rng, &perm)
	return perm
}

func dissect(root *graph.Graph, verts []int32, opts Options, popts partition.Options, rng *rand.Rand, perm *sparse.Perm) {
	if len(verts) == 0 || par.Canceled(popts.Cancel) {
		return
	}
	sub, orig := graph.InducedSubgraph(root, verts)
	if len(verts) <= opts.NDSmall {
		local := approxMinimumDegree(sub, popts.Cancel)
		for _, v := range local {
			*perm = append(*perm, int(orig[v]))
		}
		return
	}
	label := partition.VertexSeparator(sub, popts, rng)
	var left, right, sep []int32
	for i, l := range label {
		switch l {
		case 0:
			left = append(left, orig[i])
		case 1:
			right = append(right, orig[i])
		default:
			sep = append(sep, orig[i])
		}
	}
	// Degenerate separators (everything on one side) would recurse forever;
	// fall back to minimum degree for this subgraph. A cancellation mid-
	// separator also lands here (the partial label puts everything on one
	// side) and unwinds through the AMD core's own done check.
	if len(left) == 0 || len(right) == 0 {
		local := approxMinimumDegree(sub, popts.Cancel)
		for _, v := range local {
			*perm = append(*perm, int(orig[v]))
		}
		return
	}
	dissect(root, left, opts, popts, rng, perm)
	dissect(root, right, opts, popts, rng, perm)
	for _, v := range sep {
		*perm = append(*perm, int(v))
	}
}
