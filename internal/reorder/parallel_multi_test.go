package reorder

import (
	"context"
	"testing"

	"sparseorder/internal/cholesky"
	"sparseorder/internal/gen"
	"sparseorder/internal/graph"
	"sparseorder/internal/sparse"
)

// TestWorkersByteIdenticalLargeMatrix is the tentpole's determinism check
// above the parallel size thresholds, where the small-matrix identity test
// never leaves the serial paths: 6400 vertices engages ND's fork-join
// dissection (>1024), AMD's multiple elimination (≥4096) and the forked
// recursive bisections of GP and HP (>4096). Run under -race in CI this
// doubles as the race check for every new parallel path.
func TestWorkersByteIdenticalLargeMatrix(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(80, 80), 7)
	for _, alg := range []Algorithm{AMD, ND, GP, HP} {
		opts := Options{Seed: 3, Parts: 16, Workers: 1}
		want, err := Compute(alg, a, opts)
		if err != nil {
			t.Fatalf("%s serial: %v", alg, err)
		}
		if len(want) != a.Rows || !want.IsValid() {
			t.Fatalf("%s serial: invalid permutation", alg)
		}
		for _, w := range []int{2, 4, 7, 0} {
			opts.Workers = w
			got, err := Compute(alg, a, opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", alg, w, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: permutation differs from serial at %d", alg, w, i)
				}
			}
		}
	}
}

// TestAMDWorkersMatchesClassicBelowThreshold pins the dispatch rule: below
// amdMultiMinVerts the Workers entry point must run the classic serial
// elimination unchanged, whatever the worker count.
func TestAMDWorkersMatchesClassicBelowThreshold(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(20, 20), 5) // 400 < amdMultiMinVerts
	g, err := graph.FromMatrixSymmetrized(a)
	if err != nil {
		t.Fatal(err)
	}
	want := approxMinimumDegree(g, nil)
	for _, w := range []int{1, 4, 0} {
		got := ApproxMinimumDegreeWorkers(g, w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: differs from classic AMD at %d", w, i)
			}
		}
	}
}

// TestAMDMultiEliminationQuality checks that the multiple-elimination AMD
// is a real minimum-degree ordering, not merely a valid permutation: on a
// scrambled mesh its Cholesky fill must land well below the unordered
// fill and within a modest factor of the classic serial elimination.
func TestAMDMultiEliminationQuality(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(80, 80), 11) // 6400 ≥ amdMultiMinVerts
	g, err := graph.FromMatrixSymmetrized(a)
	if err != nil {
		t.Fatal(err)
	}
	fill := func(p sparse.Perm) int64 {
		t.Helper()
		b, err := sparse.PermuteSymmetric(a, p)
		if err != nil {
			t.Fatal(err)
		}
		nnz, err := cholesky.FactorNNZ(b)
		if err != nil {
			t.Fatal(err)
		}
		return nnz
	}
	multi := ApproxMinimumDegreeWorkers(g, 4)
	if len(multi) != g.N || !multi.IsValid() {
		t.Fatal("multi-elimination AMD produced an invalid permutation")
	}
	multiFill := fill(multi)
	classicFill := fill(approxMinimumDegree(g, nil))
	origFill := fill(sparse.Identity(a.Rows))
	if multiFill >= origFill {
		t.Errorf("multi-elimination fill %d not below unordered fill %d", multiFill, origFill)
	}
	if float64(multiFill) > 1.5*float64(classicFill) {
		t.Errorf("multi-elimination fill %d vs classic %d: more than 1.5x worse", multiFill, classicFill)
	}
}

// TestWeightedGPHonorsContext is the regression test for the ablation path
// dropping its context: GraphPartitionOrderWeightedCtx must fail fast on a
// cancelled context and must agree with the plain entry point otherwise.
func TestWeightedGPHonorsContext(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(30, 30), 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GraphPartitionOrderWeightedCtx(ctx, a, Options{Seed: 1, Parts: 8}); err == nil {
		t.Fatal("cancelled context produced a permutation instead of an error")
	}
	want, err := GraphPartitionOrderWeighted(a, Options{Seed: 1, Parts: 8})
	if err != nil {
		t.Fatal(err)
	}
	got, err := GraphPartitionOrderWeightedCtx(context.Background(), a, Options{Seed: 1, Parts: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ctx variant differs from plain at %d", i)
		}
	}
}
