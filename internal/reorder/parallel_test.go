package reorder

import (
	"math/rand"
	"runtime"
	"testing"

	"sparseorder/internal/gen"
	"sparseorder/internal/graph"
	"sparseorder/internal/sparse"
)

// identityWorkerCounts are the counts the determinism contract promises
// byte-identical results for (ISSUE: 1, 2, 4 and GOMAXPROCS; 0 resolves
// to GOMAXPROCS).
func identityWorkerCounts() []int {
	return []int{1, 2, 4, runtime.GOMAXPROCS(0), 0}
}

// TestWorkersByteIdenticalAllAlgorithms is the tentpole's central promise:
// for every algorithm, the permutation and the reordered matrix computed
// with any Workers value are identical to the serial ones. Run under
// -race in CI this also exercises the parallel paths for data races.
func TestWorkersByteIdenticalAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	mats := []*sparse.CSR{
		gen.Scramble(gen.Grid2D(18, 18), 3),
		randomSquare(rng, 150, 600), // unsymmetric pattern
	}
	for mi, a := range mats {
		for _, alg := range AllOrderings {
			opts := Options{Seed: 9, Parts: 8, Workers: 1}
			wantB, wantP, err := Apply(alg, a, opts)
			if err != nil {
				t.Fatalf("matrix %d %s serial: %v", mi, alg, err)
			}
			for _, w := range identityWorkerCounts() {
				opts.Workers = w
				gotB, gotP, err := Apply(alg, a, opts)
				if err != nil {
					t.Fatalf("matrix %d %s workers=%d: %v", mi, alg, w, err)
				}
				for i := range wantP {
					if gotP[i] != wantP[i] {
						t.Fatalf("matrix %d %s workers=%d: permutation differs at %d", mi, alg, w, i)
					}
				}
				if !gotB.Equal(wantB) {
					t.Fatalf("matrix %d %s workers=%d: reordered matrix differs", mi, alg, w)
				}
			}
		}
	}
}

func TestCuthillMcKeeWorkersMatchesSerial(t *testing.T) {
	// Five components of very different sizes, so more workers than
	// components and more components than workers both occur.
	coo := sparse.NewCOO(120, 120, 400)
	starts := []int{0, 40, 40 + 25, 40 + 25 + 3, 40 + 25 + 3 + 1}
	sizes := []int{40, 25, 3, 1, 51}
	for c, s := range starts {
		for i := s; i < s+sizes[c]-1; i++ {
			coo.Append(i, i+1, 1)
			coo.Append(i+1, i, 1)
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []StartStrategy{PseudoPeripheralStart, MinDegreeStart} {
		want := CuthillMcKeeWithStart(g, strategy)
		for _, w := range []int{1, 2, 3, 4, 8, 16, 0} {
			got := CuthillMcKeeWorkers(g, strategy, w)
			if len(got) != len(want) {
				t.Fatalf("strategy %d workers=%d: length %d, want %d", strategy, w, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("strategy %d workers=%d: differs from serial at %d", strategy, w, i)
				}
			}
			rev := ReverseCuthillMcKeeWorkers(g, strategy, w)
			for i := range want {
				if rev[i] != want[len(want)-1-i] {
					t.Fatalf("strategy %d workers=%d: reverse is not the reversal", strategy, w)
				}
			}
		}
	}
}

// edgeCorpus builds the degenerate inputs every ordering must survive:
// a 1×1 matrix, a matrix with empty rows, disconnected components, and
// an unsymmetric pattern.
func edgeCorpus(t *testing.T) map[string]*sparse.CSR {
	t.Helper()
	mk := func(rows, cols int, entries [][2]int) *sparse.CSR {
		coo := sparse.NewCOO(rows, cols, len(entries))
		for _, e := range entries {
			coo.Append(e[0], e[1], 1)
		}
		a, err := coo.ToCSR()
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	return map[string]*sparse.CSR{
		"one-by-one":   mk(1, 1, [][2]int{{0, 0}}),
		"empty-rows":   mk(6, 6, [][2]int{{0, 0}, {2, 3}, {3, 2}, {5, 5}}),
		"disconnected": mk(8, 8, [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {6, 7}, {7, 6}}),
		"unsymmetric":  mk(5, 5, [][2]int{{0, 4}, {1, 2}, {4, 0}, {3, 1}, {2, 2}}),
		"all-empty":    mk(4, 4, nil),
	}
}

// TestAllOrderingsOnEdgeCorpus is the property test of the latent-bug
// sweep: every algorithm must return a valid permutation of the right
// length on every degenerate input, serial and parallel alike.
func TestAllOrderingsOnEdgeCorpus(t *testing.T) {
	for name, a := range edgeCorpus(t) {
		for _, alg := range AllOrderings {
			for _, w := range []int{1, 2, 4} {
				p, err := Compute(alg, a, Options{Seed: 1, Parts: 4, Workers: w})
				if err != nil {
					t.Errorf("%s on %s workers=%d: %v", alg, name, w, err)
					continue
				}
				if len(p) != a.Rows || !p.IsValid() {
					t.Errorf("%s on %s workers=%d: invalid permutation %v", alg, name, w, p)
				}
			}
		}
	}
}

// TestGrayBitmapBits64 pins the clamp fix: a configured bitmap width of
// 63 or 64 must be honoured, not silently reduced to 62. Columns 0 and 1
// of a 64-column matrix fall into distinct sections only at bits=64, and
// their full-width Gray ranks order row 1 before row 0; under the old
// clamp both rows shared section 0 and kept their original order.
func TestGrayBitmapBits64(t *testing.T) {
	coo := sparse.NewCOO(2, 64, 2)
	coo.Append(0, 0, 1)
	coo.Append(1, 1, 1)
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	p := GrayOrder(a, Options{GrayBitmapBits: 64})
	if p[0] != 1 || p[1] != 0 {
		t.Errorf("bits=64 order = %v, want [1 0]", p)
	}
	// Sanity: at bits=16 both columns share a section, so the stable sort
	// keeps the original order — the widths genuinely disagree.
	if q := GrayOrder(a, Options{GrayBitmapBits: 16}); q[0] != 0 || q[1] != 1 {
		t.Errorf("bits=16 order = %v, want [0 1]", q)
	}
	// Widths beyond the uint64 capacity clamp to 64 exactly.
	for _, bits := range []int{65, 80, 1 << 20} {
		q := GrayOrder(a, Options{GrayBitmapBits: bits})
		for i := range p {
			if q[i] != p[i] {
				t.Errorf("bits=%d order = %v, want the bits=64 order %v", bits, q, p)
			}
		}
	}
	// grayRank itself is exact at full width: the top bit's code maps to
	// the last rank.
	if r := grayRank(1 << 63); r != ^uint64(0) {
		t.Errorf("grayRank(1<<63) = %#x, want all ones", r)
	}
}

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	a := gen.Scramble(gen.Grid3D(22, 22, 22), 4)
	g, err := graph.FromMatrixSymmetrized(a)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkReorderRCM(b *testing.B) {
	g := benchGraph(b)
	for _, w := range []int{1, 4} {
		name := "serial"
		if w > 1 {
			name = "workers4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ReverseCuthillMcKeeWorkers(g, PseudoPeripheralStart, w)
			}
		})
	}
}

// BenchmarkReorderPipeline measures the full ApplyTimed hot path (graph
// build + ordering + permutation) the study pays per (matrix, ordering).
func BenchmarkReorderPipeline(b *testing.B) {
	a := gen.Scramble(gen.Grid3D(18, 18, 18), 5)
	for _, w := range []int{1, 4} {
		name := "serial"
		if w > 1 {
			name = "workers4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := ApplyTimed(RCM, a, Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
