package reorder

import (
	"sort"
	"sync"

	"sparseorder/internal/graph"
	"sparseorder/internal/par"
	"sparseorder/internal/sparse"
)

// StartStrategy selects how Cuthill-McKee picks the root vertex of each
// connected component. The George-Liu pseudo-peripheral finder is the
// standard choice (and the one the study's implementation uses); the
// minimum-degree start is kept as an ablation (see DESIGN.md).
type StartStrategy int

// Start strategies for Cuthill-McKee.
const (
	PseudoPeripheralStart StartStrategy = iota
	MinDegreeStart
)

// cmCheckEvery is the number of dequeued vertices between cancellation
// checks in the Cuthill-McKee BFS loop.
const cmCheckEvery = 1024

// CuthillMcKee computes the Cuthill-McKee ordering of g: each connected
// component is traversed breadth-first from a pseudo-peripheral vertex,
// appending unvisited neighbours in ascending-degree order. The returned
// permutation is new-to-old.
func CuthillMcKee(g *graph.Graph) sparse.Perm {
	return CuthillMcKeeWithStart(g, PseudoPeripheralStart)
}

// CuthillMcKeeWithStart is CuthillMcKee with an explicit root-selection
// strategy.
func CuthillMcKeeWithStart(g *graph.Graph, strategy StartStrategy) sparse.Perm {
	return cuthillMcKeeSerial(g, strategy, nil)
}

// cuthillMcKeeSerial is the serial Cuthill-McKee core with a cooperative
// cancellation hook; a nil done runs the historical uncancellable path at
// no extra cost beyond a counter. On cancellation the partial permutation
// is returned and must be discarded by the caller.
func cuthillMcKeeSerial(g *graph.Graph, strategy StartStrategy, done <-chan struct{}) sparse.Perm {
	n := g.N
	perm := make(sparse.Perm, 0, n)
	visited := make([]bool, n)
	scratch := make([]int32, n)
	neigh := make([]int32, 0, g.MaxDegree())

	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		perm = cmComponent(g, s, strategy, perm, visited, scratch, neigh, done)
		if par.Canceled(done) {
			return perm
		}
	}
	return perm
}

// cmComponent appends the Cuthill-McKee ordering of the component whose
// smallest-index vertex is s to perm. It touches visited only at the
// component's own vertices, so concurrent calls on distinct components
// sharing one visited slice are safe; scratch (length g.N) and neigh are
// per-caller scratch space. done is polled every cmCheckEvery dequeues
// (nil never cancels); a cancelled call returns a partial ordering that
// the caller must discard.
func cmComponent(g *graph.Graph, s int, strategy StartStrategy, perm sparse.Perm, visited []bool, scratch, neigh []int32, done <-chan struct{}) sparse.Perm {
	start := s
	if strategy == PseudoPeripheralStart {
		start, _ = graph.PseudoPeripheralCancel(g, s, scratch, done)
	} else {
		// Minimum-degree vertex of the component containing s.
		r := graph.BFSCancel(g, s, scratch, done)
		for _, v := range r.Order {
			if g.Degree(int(v)) < g.Degree(start) {
				start = int(v)
			}
		}
	}
	if par.Canceled(done) {
		return perm
	}
	compStart := len(perm)
	perm = append(perm, start)
	visited[start] = true
	for head := compStart; head < len(perm); head++ {
		if (head-compStart)%cmCheckEvery == cmCheckEvery-1 && par.Canceled(done) {
			return perm
		}
		v := perm[head]
		neigh = neigh[:0]
		for _, u := range g.Neighbors(v) {
			if !visited[u] {
				visited[u] = true
				neigh = append(neigh, u)
			}
		}
		sort.Slice(neigh, func(i, j int) bool {
			di, dj := g.Degree(int(neigh[i])), g.Degree(int(neigh[j]))
			if di != dj {
				return di < dj
			}
			return neigh[i] < neigh[j]
		})
		for _, u := range neigh {
			perm = append(perm, int(u))
		}
	}
	return perm
}

// CuthillMcKeeWorkers computes the Cuthill-McKee ordering with connected
// components ordered concurrently. Components are independent, and the
// per-component orderings are concatenated in ascending order of each
// component's smallest vertex — exactly the order the serial loop
// discovers them — so the permutation is byte-identical to
// CuthillMcKeeWithStart at every worker count (0 = GOMAXPROCS, 1 = the
// exact serial code path).
func CuthillMcKeeWorkers(g *graph.Graph, strategy StartStrategy, workers int) sparse.Perm {
	return cuthillMcKee(g, strategy, workers, nil)
}

// cuthillMcKee is the cancellable Cuthill-McKee dispatcher behind the
// exported entry points: done is polled inside every component traversal
// (serial or pooled), so a wedged ordering stops within cmCheckEvery
// dequeues of a cancellation instead of running to completion, and the
// pool goroutines exit promptly rather than leaking past their caller.
func cuthillMcKee(g *graph.Graph, strategy StartStrategy, workers int, done <-chan struct{}) sparse.Perm {
	w := par.Resolve(workers)
	if w == 1 {
		return cuthillMcKeeSerial(g, strategy, done)
	}
	if g.N == 0 {
		return sparse.Perm{}
	}
	// Order the component of vertex 0 inline first — for a connected graph
	// (the common case) this is the entire ordering at exactly the serial
	// cost, with no component scan, channel or goroutine overhead.
	visited := make([]bool, g.N)
	first := cmComponent(g, 0, strategy, make(sparse.Perm, 0, g.N), visited,
		make([]int32, g.N), make([]int32, 0, g.MaxDegree()), done)
	if len(first) == g.N || par.Canceled(done) {
		return first
	}
	// Remaining components run on the pool. Components lists them in
	// ascending order of their smallest vertex — the order the serial loop
	// discovers them — with the already-ordered component of vertex 0
	// first.
	allComps, _ := graph.Components(g)
	comps := allComps[1:]
	// visited is shared: each component writes only its own vertices, so
	// the goroutines touch disjoint index sets. scratch and neigh are per
	// worker; BFS level arrays must be g.N long.
	parts := make([]sparse.Perm, len(comps))
	jobs := make(chan int)
	var wg sync.WaitGroup
	if w > len(comps) {
		w = len(comps)
	}
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]int32, g.N)
			neigh := make([]int32, 0, g.MaxDegree())
			for ci := range jobs {
				if par.Canceled(done) {
					continue // drain remaining jobs without ordering them
				}
				comp := comps[ci]
				part := make(sparse.Perm, 0, len(comp))
				parts[ci] = cmComponent(g, int(comp[0]), strategy, part, visited, scratch, neigh, done)
			}
		}()
	}
	for ci := range comps {
		jobs <- ci
	}
	close(jobs)
	wg.Wait()
	perm := first
	for _, part := range parts {
		perm = append(perm, part...)
	}
	return perm
}

// ReverseCuthillMcKee returns the Cuthill-McKee ordering reversed, the
// variant preferred in practice (paper §2.1.1).
func ReverseCuthillMcKee(g *graph.Graph) sparse.Perm {
	return ReverseCuthillMcKeeWithStart(g, PseudoPeripheralStart)
}

// ReverseCuthillMcKeeWithStart is ReverseCuthillMcKee with an explicit
// root-selection strategy.
func ReverseCuthillMcKeeWithStart(g *graph.Graph, strategy StartStrategy) sparse.Perm {
	p := CuthillMcKeeWithStart(g, strategy)
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// ReverseCuthillMcKeeWorkers is ReverseCuthillMcKee with connected
// components ordered concurrently by CuthillMcKeeWorkers.
func ReverseCuthillMcKeeWorkers(g *graph.Graph, strategy StartStrategy, workers int) sparse.Perm {
	return reverseCuthillMcKee(g, strategy, workers, nil)
}

// reverseCuthillMcKee is the cancellable core shared by the exported
// wrapper and the context-aware ordering dispatch.
func reverseCuthillMcKee(g *graph.Graph, strategy StartStrategy, workers int, done <-chan struct{}) sparse.Perm {
	p := cuthillMcKee(g, strategy, workers, done)
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}
