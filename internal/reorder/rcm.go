package reorder

import (
	"sort"

	"sparseorder/internal/graph"
	"sparseorder/internal/sparse"
)

// StartStrategy selects how Cuthill-McKee picks the root vertex of each
// connected component. The George-Liu pseudo-peripheral finder is the
// standard choice (and the one the study's implementation uses); the
// minimum-degree start is kept as an ablation (see DESIGN.md).
type StartStrategy int

// Start strategies for Cuthill-McKee.
const (
	PseudoPeripheralStart StartStrategy = iota
	MinDegreeStart
)

// CuthillMcKee computes the Cuthill-McKee ordering of g: each connected
// component is traversed breadth-first from a pseudo-peripheral vertex,
// appending unvisited neighbours in ascending-degree order. The returned
// permutation is new-to-old.
func CuthillMcKee(g *graph.Graph) sparse.Perm {
	return CuthillMcKeeWithStart(g, PseudoPeripheralStart)
}

// CuthillMcKeeWithStart is CuthillMcKee with an explicit root-selection
// strategy.
func CuthillMcKeeWithStart(g *graph.Graph, strategy StartStrategy) sparse.Perm {
	n := g.N
	perm := make(sparse.Perm, 0, n)
	visited := make([]bool, n)
	scratch := make([]int32, n)
	neigh := make([]int32, 0, g.MaxDegree())

	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		start := s
		if strategy == PseudoPeripheralStart {
			start, _ = graph.PseudoPeripheral(g, s, scratch)
		} else {
			// Minimum-degree vertex of the component containing s.
			r := graph.BFS(g, s, scratch)
			for _, v := range r.Order {
				if g.Degree(int(v)) < g.Degree(start) {
					start = int(v)
				}
			}
		}
		compStart := len(perm)
		perm = append(perm, start)
		visited[start] = true
		for head := compStart; head < len(perm); head++ {
			v := perm[head]
			neigh = neigh[:0]
			for _, u := range g.Neighbors(v) {
				if !visited[u] {
					visited[u] = true
					neigh = append(neigh, u)
				}
			}
			sort.Slice(neigh, func(i, j int) bool {
				di, dj := g.Degree(int(neigh[i])), g.Degree(int(neigh[j]))
				if di != dj {
					return di < dj
				}
				return neigh[i] < neigh[j]
			})
			for _, u := range neigh {
				perm = append(perm, int(u))
			}
		}
	}
	return perm
}

// ReverseCuthillMcKee returns the Cuthill-McKee ordering reversed, the
// variant preferred in practice (paper §2.1.1).
func ReverseCuthillMcKee(g *graph.Graph) sparse.Perm {
	return ReverseCuthillMcKeeWithStart(g, PseudoPeripheralStart)
}

// ReverseCuthillMcKeeWithStart is ReverseCuthillMcKee with an explicit
// root-selection strategy.
func ReverseCuthillMcKeeWithStart(g *graph.Graph, strategy StartStrategy) sparse.Perm {
	p := CuthillMcKeeWithStart(g, strategy)
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}
