// Package reorder implements the six sparse-matrix reordering algorithms
// of the study (paper Table 1): Reverse Cuthill-McKee, approximate minimum
// degree, nested dissection, graph-partitioning ordering, hypergraph-
// partitioning ordering and Gray ordering, plus the identity "original"
// ordering used as the baseline.
package reorder

import (
	"fmt"

	"sparseorder/internal/graph"
	"sparseorder/internal/sparse"
)

// Algorithm names a reordering algorithm.
type Algorithm string

// The algorithms of the study, using the paper's short names.
const (
	Original Algorithm = "Original"
	RCM      Algorithm = "RCM"
	AMD      Algorithm = "AMD"
	ND       Algorithm = "ND"
	GP       Algorithm = "GP"
	HP       Algorithm = "HP"
	Gray     Algorithm = "Gray"
)

// Algorithms lists the reorderings in the paper's presentation order,
// excluding the Original baseline.
var Algorithms = []Algorithm{RCM, AMD, ND, GP, HP, Gray}

// AllOrderings is Algorithms preceded by the Original baseline.
var AllOrderings = append([]Algorithm{Original}, Algorithms...)

// Symmetric reports whether the algorithm produces a symmetric
// permutation (applied to both rows and columns). Only Gray does not.
func (a Algorithm) Symmetric() bool { return a != Gray }

// Options configure the reordering algorithms. The zero value matches the
// paper's configuration where one exists.
type Options struct {
	// Parts is the number of parts for GP and HP. The paper partitions to
	// the core count of the target machine for GP and always 128 for HP;
	// 0 defaults to 128.
	Parts int
	// Seed drives the randomized components of the partitioners.
	Seed int64
	// GrayDenseThreshold is the rows-per-nonzero split between the sparse
	// and dense submatrices of the Gray ordering; 0 defaults to the
	// paper's 20.
	GrayDenseThreshold int
	// GrayBitmapBits is the number of sections per row bitmap; 0 defaults
	// to the paper's 16.
	GrayBitmapBits int
	// NDSmall stops nested-dissection recursion below this many vertices,
	// falling back to minimum-degree ordering; 0 defaults to 128.
	NDSmall int
	// HPObjective selects the hypergraph partitioning metric for HP. The
	// paper's configuration is the cut-net metric (default); PaToH's other
	// metric, connectivity-1, is available as well (§3.3).
	HPObjective HPObjective
}

// HPObjective names a hypergraph partitioning objective.
type HPObjective int

// Hypergraph partitioning objectives.
const (
	CutNet HPObjective = iota
	Connectivity
)

func (o Options) withDefaults() Options {
	if o.Parts == 0 {
		o.Parts = 128
	}
	if o.GrayDenseThreshold == 0 {
		o.GrayDenseThreshold = 20
	}
	if o.GrayBitmapBits == 0 {
		o.GrayBitmapBits = 16
	}
	if o.NDSmall == 0 {
		o.NDSmall = 128
	}
	return o
}

// Compute returns the permutation (new-to-old) of the given algorithm for
// the square matrix a. RCM, AMD, ND and GP operate on the undirected graph
// of A+Aᵀ when the pattern of a is unsymmetric; HP and Gray apply to a
// directly.
func Compute(alg Algorithm, a *sparse.CSR, opts Options) (sparse.Perm, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("reorder: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	opts = opts.withDefaults()
	switch alg {
	case Original:
		return sparse.Identity(a.Rows), nil
	case RCM:
		g, err := graph.FromMatrixSymmetrized(a)
		if err != nil {
			return nil, err
		}
		return ReverseCuthillMcKee(g), nil
	case AMD:
		g, err := graph.FromMatrixSymmetrized(a)
		if err != nil {
			return nil, err
		}
		return ApproxMinimumDegree(g), nil
	case ND:
		g, err := graph.FromMatrixSymmetrized(a)
		if err != nil {
			return nil, err
		}
		return NestedDissection(g, opts), nil
	case GP:
		g, err := graph.FromMatrixSymmetrized(a)
		if err != nil {
			return nil, err
		}
		return GraphPartitionOrder(g, opts)
	case HP:
		return HypergraphPartitionOrder(a, opts)
	case Gray:
		return GrayOrder(a, opts), nil
	default:
		return nil, fmt.Errorf("reorder: unknown algorithm %q", alg)
	}
}

// Apply computes the ordering and returns the reordered matrix together
// with the permutation. Symmetric orderings permute rows and columns;
// Gray permutes rows only, as in the paper.
func Apply(alg Algorithm, a *sparse.CSR, opts Options) (*sparse.CSR, sparse.Perm, error) {
	p, err := Compute(alg, a, opts)
	if err != nil {
		return nil, nil, err
	}
	var b *sparse.CSR
	if alg.Symmetric() {
		b, err = sparse.PermuteSymmetric(a, p)
	} else {
		b, err = sparse.PermuteRows(a, p)
	}
	if err != nil {
		return nil, nil, err
	}
	return b, p, nil
}
