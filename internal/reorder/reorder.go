// Package reorder implements the six sparse-matrix reordering algorithms
// of the study (paper Table 1): Reverse Cuthill-McKee, approximate minimum
// degree, nested dissection, graph-partitioning ordering, hypergraph-
// partitioning ordering and Gray ordering, plus the identity "original"
// ordering used as the baseline.
package reorder

import (
	"context"
	"fmt"
	"time"

	"sparseorder/internal/faultinject"
	"sparseorder/internal/graph"
	"sparseorder/internal/obs"
	"sparseorder/internal/sparse"
)

// Algorithm names a reordering algorithm.
type Algorithm string

// The algorithms of the study, using the paper's short names.
const (
	Original Algorithm = "Original"
	RCM      Algorithm = "RCM"
	AMD      Algorithm = "AMD"
	ND       Algorithm = "ND"
	GP       Algorithm = "GP"
	HP       Algorithm = "HP"
	Gray     Algorithm = "Gray"
)

// Algorithms lists the reorderings in the paper's presentation order,
// excluding the Original baseline.
var Algorithms = []Algorithm{RCM, AMD, ND, GP, HP, Gray}

// AllOrderings is Algorithms preceded by the Original baseline.
var AllOrderings = append([]Algorithm{Original}, Algorithms...)

// Symmetric reports whether the algorithm produces a symmetric
// permutation (applied to both rows and columns). Only Gray does not.
func (a Algorithm) Symmetric() bool { return a != Gray }

// Options configure the reordering algorithms. The zero value matches the
// paper's configuration where one exists.
type Options struct {
	// Parts is the number of parts for GP and HP. The paper partitions to
	// the core count of the target machine for GP and always 128 for HP;
	// 0 defaults to 128.
	Parts int
	// Seed drives the randomized components of the partitioners.
	Seed int64
	// GrayDenseThreshold is the rows-per-nonzero split between the sparse
	// and dense submatrices of the Gray ordering; 0 defaults to the
	// paper's 20.
	GrayDenseThreshold int
	// GrayBitmapBits is the number of sections per row bitmap; 0 defaults
	// to the paper's 16. The bitmap is a uint64, so at most 64 sections
	// are representable: values above 64 are clamped to 64.
	GrayBitmapBits int
	// NDSmall stops nested-dissection recursion below this many vertices,
	// falling back to minimum-degree ordering; 0 defaults to 128.
	NDSmall int
	// HPObjective selects the hypergraph partitioning metric for HP. The
	// paper's configuration is the cut-net metric (default); PaToH's other
	// metric, connectivity-1, is available as well (§3.3).
	HPObjective HPObjective
	// Workers bounds the goroutines of the parallel reordering hot path —
	// A+Aᵀ adjacency construction, the permutation application in Apply,
	// and all five graph/matrix orderings: component-parallel
	// Cuthill-McKee, multiple-elimination AMD, fork-join nested
	// dissection, and the parallel recursive bisections behind GP and HP.
	// 0 means GOMAXPROCS, 1 runs the exact serial code path. Permutations
	// and reordered matrices are byte-identical at every worker count (see
	// DESIGN.md, "Parallel reordering determinism contract").
	Workers int

	// obs is the observability sink resolved from the call context; it is
	// threaded down to the partitioners so their coarsen/initial/refine
	// levels report phase timings. Never set by callers — ComputeTimedCtx
	// fills it from obs.FromContext.
	obs *obs.Obs
}

// HPObjective names a hypergraph partitioning objective.
type HPObjective int

// Hypergraph partitioning objectives.
const (
	CutNet HPObjective = iota
	Connectivity
)

func (o Options) withDefaults() Options {
	if o.Parts == 0 {
		o.Parts = 128
	}
	if o.GrayDenseThreshold == 0 {
		o.GrayDenseThreshold = 20
	}
	if o.GrayBitmapBits == 0 {
		o.GrayBitmapBits = 16
	}
	if o.NDSmall == 0 {
		o.NDSmall = 128
	}
	return o
}

// NeedsGraph reports whether the algorithm operates on the undirected
// adjacency graph of A+Aᵀ (RCM, AMD, ND and GP) rather than on the matrix
// directly (Original, HP and Gray).
func (a Algorithm) NeedsGraph() bool {
	return a == RCM || a == AMD || a == ND || a == GP
}

// PhaseTimings breaks the wall-clock cost of computing and applying one
// ordering into its phases, the breakdown behind the paper's Table 5
// reordering-cost discussion (§4.7).
type PhaseTimings struct {
	// GraphSeconds is the A+Aᵀ adjacency construction time; zero for the
	// algorithms that do not use the graph (Original, HP, Gray).
	GraphSeconds float64
	// OrderSeconds is the ordering algorithm proper.
	OrderSeconds float64
	// PermuteSeconds is the time applying the permutation to the matrix;
	// zero when only the permutation was computed.
	PermuteSeconds float64
}

// Total returns the summed phase times.
func (t PhaseTimings) Total() float64 {
	return t.GraphSeconds + t.OrderSeconds + t.PermuteSeconds
}

// Compute returns the permutation (new-to-old) of the given algorithm for
// the square matrix a. RCM, AMD, ND and GP operate on the undirected graph
// of A+Aᵀ when the pattern of a is unsymmetric; HP and Gray apply to a
// directly.
func Compute(alg Algorithm, a *sparse.CSR, opts Options) (sparse.Perm, error) {
	p, _, err := ComputeTimed(alg, a, opts)
	return p, err
}

// ComputeCtx is Compute driven by a context: cancellation and deadline
// expiry interrupt the ordering algorithm itself (BFS, elimination,
// coarsening and refinement loops all poll the context's done channel), so
// a wedged ordering stops within a bounded amount of work instead of
// running to completion. A cancelled call returns the context's error and
// never a partial permutation.
func ComputeCtx(ctx context.Context, alg Algorithm, a *sparse.CSR, opts Options) (sparse.Perm, error) {
	p, _, err := ComputeTimedCtx(ctx, alg, a, opts)
	return p, err
}

// ComputeTimed is Compute reporting the graph-construction and ordering
// phase times (PermuteSeconds stays zero).
func ComputeTimed(alg Algorithm, a *sparse.CSR, opts Options) (sparse.Perm, PhaseTimings, error) {
	return ComputeTimedCtx(context.Background(), alg, a, opts)
}

// ComputeTimedCtx is ComputeCtx reporting phase times. For a background
// context ctx.Done() is nil and every cancellation check is a no-op, so
// the uncancelled path is byte-identical to the historical one.
//
// When ctx carries an obs.Obs (obs.NewContext), each phase additionally
// reports a span — reorder/graph and reorder/order{alg} — generalising the
// PhaseTimings return into the run-wide tracing/metrics view. Without an
// Obs the instrumentation is a nil check per phase and allocates nothing.
func ComputeTimedCtx(ctx context.Context, alg Algorithm, a *sparse.CSR, opts Options) (sparse.Perm, PhaseTimings, error) {
	var t PhaseTimings
	if err := ctx.Err(); err != nil {
		return nil, t, err
	}
	if a.Rows != a.Cols {
		return nil, t, fmt.Errorf("reorder: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	opts = opts.withDefaults()
	if opts.obs == nil {
		opts.obs = obs.FromContext(ctx)
	}
	o := opts.obs
	done := ctx.Done()
	// Fault hooks fire at the phase boundaries, keyed by (alg, shape) so an
	// injected schedule hits the same (matrix, ordering) pairs in every run
	// and resume. Enabled() guards the key construction: with no plan armed
	// the hook is one atomic load and allocates nothing.
	if faultinject.Enabled() {
		if err := faultinject.Check(faultPoint(alg), faultKey(alg, a)); err != nil {
			return nil, t, err
		}
	}
	if alg.NeedsGraph() {
		sp := o.Span("reorder/graph")
		sp.SetAttr("alg", string(alg))
		start := time.Now()
		g, err := graph.FromMatrixSymmetrizedWorkers(a, opts.Workers)
		t.GraphSeconds = time.Since(start).Seconds()
		sp.End()
		if err != nil {
			return nil, t, err
		}
		if err := ctx.Err(); err != nil {
			return nil, t, err
		}
		if faultinject.Enabled() {
			if err := faultinject.Check(faultinject.ReorderOrder, faultKey(alg, a)); err != nil {
				return nil, t, err
			}
		}
		sp = o.Span("reorder/order")
		sp.SetAttr("alg", string(alg))
		start = time.Now()
		p, err := orderGraph(alg, g, opts, done)
		t.OrderSeconds = time.Since(start).Seconds()
		sp.End()
		if cerr := ctx.Err(); cerr != nil {
			// The ordering bailed out early; its partial result must not
			// escape to callers.
			return nil, t, cerr
		}
		return p, t, err
	}
	sp := o.Span("reorder/order")
	sp.SetAttr("alg", string(alg))
	start := time.Now()
	var p sparse.Perm
	var err error
	switch alg {
	case Original:
		p = sparse.Identity(a.Rows)
	case HP:
		p, err = hypergraphPartitionOrder(a, opts, done)
	case Gray:
		p = GrayOrder(a, opts)
	default:
		sp.End()
		return nil, t, fmt.Errorf("reorder: unknown algorithm %q", alg)
	}
	t.OrderSeconds = time.Since(start).Seconds()
	sp.End()
	if cerr := ctx.Err(); cerr != nil {
		return nil, t, cerr
	}
	if err != nil {
		return nil, t, err
	}
	return p, t, nil
}

// faultPoint maps the algorithm's first phase to its fault point: graph
// construction for the graph-based orderings, the ordering itself for the
// rest.
func faultPoint(alg Algorithm) faultinject.Point {
	if alg.NeedsGraph() {
		return faultinject.ReorderGraph
	}
	return faultinject.ReorderOrder
}

// faultKey identifies one (algorithm, matrix shape) pair stably across
// runs and resumes; only built when a fault plan is armed.
func faultKey(alg Algorithm, a *sparse.CSR) string {
	return fmt.Sprintf("%s/%dx%d/%d", alg, a.Rows, a.Cols, a.NNZ())
}

// orderGraph runs a graph-based ordering on a prebuilt adjacency graph.
// done is threaded into each algorithm's inner loops; a cancelled call may
// return a partial permutation, which the caller discards after checking
// the context.
func orderGraph(alg Algorithm, g *graph.Graph, opts Options, done <-chan struct{}) (sparse.Perm, error) {
	switch alg {
	case RCM:
		return reverseCuthillMcKee(g, PseudoPeripheralStart, opts.Workers, done), nil
	case AMD:
		return approxMinimumDegreeWorkers(g, opts.Workers, opts.obs, done), nil
	case ND:
		return nestedDissection(g, opts, done), nil
	case GP:
		return graphPartitionOrder(g, opts, done)
	default:
		return nil, fmt.Errorf("reorder: algorithm %q does not order a graph", alg)
	}
}

// Apply computes the ordering and returns the reordered matrix together
// with the permutation. Symmetric orderings permute rows and columns;
// Gray permutes rows only, as in the paper.
func Apply(alg Algorithm, a *sparse.CSR, opts Options) (*sparse.CSR, sparse.Perm, error) {
	b, p, _, err := ApplyTimed(alg, a, opts)
	return b, p, err
}

// ApplyCtx is Apply driven by a context; see ComputeCtx for the
// cancellation contract.
func ApplyCtx(ctx context.Context, alg Algorithm, a *sparse.CSR, opts Options) (*sparse.CSR, sparse.Perm, error) {
	b, p, _, err := ApplyTimedCtx(ctx, alg, a, opts)
	return b, p, err
}

// ApplyTimed is Apply reporting the per-phase wall-clock breakdown
// (graph construction, ordering, permutation application).
func ApplyTimed(alg Algorithm, a *sparse.CSR, opts Options) (*sparse.CSR, sparse.Perm, PhaseTimings, error) {
	return ApplyTimedCtx(context.Background(), alg, a, opts)
}

// ApplyTimedCtx is ApplyCtx reporting phase times. Before permuting it
// validates the computed permutation (length and bijectivity), so a buggy
// ordering surfaces as a typed error naming the algorithm rather than as a
// silently corrupted matrix.
func ApplyTimedCtx(ctx context.Context, alg Algorithm, a *sparse.CSR, opts Options) (*sparse.CSR, sparse.Perm, PhaseTimings, error) {
	p, t, err := ComputeTimedCtx(ctx, alg, a, opts)
	if err != nil {
		return nil, nil, t, err
	}
	if len(p) != a.Rows {
		return nil, nil, t, fmt.Errorf("reorder: %s produced a permutation of length %d for a %d-row matrix", alg, len(p), a.Rows)
	}
	if verr := p.Validate(); verr != nil {
		return nil, nil, t, fmt.Errorf("reorder: %s produced an invalid permutation: %w", alg, verr)
	}
	if faultinject.Enabled() {
		if err := faultinject.Check(faultinject.ReorderPermute, faultKey(alg, a)); err != nil {
			return nil, nil, t, err
		}
	}
	sp := obs.FromContext(ctx).Span("reorder/permute")
	sp.SetAttr("alg", string(alg))
	start := time.Now()
	var b *sparse.CSR
	if alg.Symmetric() {
		b, err = sparse.PermuteSymmetricWorkers(a, p, opts.Workers)
	} else {
		b, err = sparse.PermuteRowsWorkers(a, p, opts.Workers)
	}
	t.PermuteSeconds = time.Since(start).Seconds()
	sp.End()
	if err != nil {
		return nil, nil, t, err
	}
	return b, p, t, nil
}
