package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sparseorder/internal/cholesky"
	"sparseorder/internal/gen"
	"sparseorder/internal/graph"
	"sparseorder/internal/metrics"
	"sparseorder/internal/partition"
	"sparseorder/internal/sparse"
)

func randomSquare(rng *rand.Rand, n, nnz int) *sparse.CSR {
	coo := sparse.NewCOO(n, n, nnz+n)
	for i := 0; i < n; i++ {
		coo.Append(i, i, 1)
	}
	for k := 0; k < nnz; k++ {
		coo.Append(rng.Intn(n), rng.Intn(n), rng.NormFloat64())
	}
	a, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	return a
}

func TestAllAlgorithmsProduceValidPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		n := 20 + rng.Intn(80)
		a := randomSquare(rng, n, 4*n)
		for _, alg := range AllOrderings {
			p, err := Compute(alg, a, Options{Seed: int64(trial), Parts: 8})
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if len(p) != n || !p.IsValid() {
				t.Fatalf("%s returned an invalid permutation (len %d of %d)", alg, len(p), n)
			}
		}
	}
}

func TestPermutationValidityQuick(t *testing.T) {
	f := func(seed int64, nRaw uint8, algIdx uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%60) + 2
		a := randomSquare(rng, n, 3*n)
		alg := AllOrderings[int(algIdx)%len(AllOrderings)]
		p, err := Compute(alg, a, Options{Seed: seed, Parts: 4})
		return err == nil && len(p) == n && p.IsValid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestComputeRejectsRectangular(t *testing.T) {
	coo := sparse.NewCOO(2, 3, 1)
	coo.Append(0, 2, 1)
	a, _ := coo.ToCSR()
	if _, err := Compute(RCM, a, Options{}); err == nil {
		t.Error("accepted rectangular matrix")
	}
}

func TestComputeUnknownAlgorithm(t *testing.T) {
	a := gen.Grid2D(3, 3)
	if _, err := Compute(Algorithm("bogus"), a, Options{}); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestRCMOnPathRecoversBand(t *testing.T) {
	// A path graph scrambled, then RCM: bandwidth must return to 1.
	n := 64
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Append(i, i, 2)
		if i+1 < n {
			coo.Append(i, i+1, -1)
			coo.Append(i+1, i, -1)
		}
	}
	path, _ := coo.ToCSR()
	scrambled := gen.Scramble(path, 42)
	if metrics.Bandwidth(scrambled) <= 1 {
		t.Fatal("scramble did not destroy the band")
	}
	b, _, err := Apply(RCM, scrambled, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bw := metrics.Bandwidth(b); bw != 1 {
		t.Errorf("RCM bandwidth on path = %d, want 1", bw)
	}
}

func TestRCMReducesBandwidthOnScrambledGrid(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(20, 20), 7)
	before := metrics.Bandwidth(a)
	b, _, err := Apply(RCM, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	after := metrics.Bandwidth(b)
	if after >= before/2 {
		t.Errorf("RCM bandwidth %d not well below scrambled %d", after, before)
	}
}

func TestCuthillMcKeeReversal(t *testing.T) {
	a := gen.Grid2D(6, 6)
	g, err := graph.FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	cm := CuthillMcKee(g)
	rcm := ReverseCuthillMcKee(g)
	for i := range cm {
		if cm[i] != rcm[len(rcm)-1-i] {
			t.Fatal("RCM is not the reversal of CM")
		}
	}
}

func TestRCMHandlesDisconnected(t *testing.T) {
	// Two disjoint paths.
	coo := sparse.NewCOO(8, 8, 20)
	for i := 0; i < 3; i++ {
		coo.Append(i, i+1, 1)
		coo.Append(i+1, i, 1)
	}
	for i := 4; i < 7; i++ {
		coo.Append(i, i+1, 1)
		coo.Append(i+1, i, 1)
	}
	a, _ := coo.ToCSR()
	g, err := graph.FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	p := ReverseCuthillMcKee(g)
	if len(p) != 8 || !p.IsValid() {
		t.Fatalf("invalid permutation on disconnected graph: %v", p)
	}
}

func TestAMDOnIsolatedVertices(t *testing.T) {
	g := &graph.Graph{N: 5, Ptr: []int{0, 0, 0, 0, 0, 0}}
	p := ApproxMinimumDegree(g)
	if len(p) != 5 || !p.IsValid() {
		t.Fatalf("AMD on edgeless graph: %v", p)
	}
}

func TestAMDEliminatesLeavesFirstOnStar(t *testing.T) {
	// Star graph: the hub has degree n-1 and must be eliminated last.
	n := 10
	coo := sparse.NewCOO(n, n, 2*n)
	for i := 1; i < n; i++ {
		coo.Append(0, i, 1)
		coo.Append(i, 0, 1)
	}
	a, _ := coo.ToCSR()
	g, err := graph.FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	p := ApproxMinimumDegree(g)
	if !p.IsValid() {
		t.Fatal("invalid permutation")
	}
	// Once 8 leaves are gone the hub and the final leaf are tied at degree 1,
	// so the hub may legally go last or second to last — but never earlier.
	if pos := indexOf(p, 0); pos < len(p)-2 {
		t.Errorf("hub eliminated at position %d of %d, want one of the last two", pos, len(p))
	}
}

func indexOf(p sparse.Perm, v int) int {
	for i, x := range p {
		if x == v {
			return i
		}
	}
	return -1
}

func TestNDSeparatorStructure(t *testing.T) {
	// On a grid, ND must produce a valid permutation and, with the separator
	// ordered last, the final vertices should form a separator-ish band.
	a := gen.Grid2D(16, 16)
	g, err := graph.FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	p := NestedDissection(g, Options{Seed: 1}.withDefaults())
	if len(p) != 256 || !p.IsValid() {
		t.Fatalf("ND invalid on grid")
	}
}

func TestGPGroupsPartsContiguously(t *testing.T) {
	a := gen.Grid2D(16, 16)
	g, err := graph.FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 3, Parts: 8}.withDefaults()
	p, err := GraphPartitionOrder(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsValid() {
		t.Fatal("invalid permutation")
	}
	// Within each part rows keep their relative original order (stable sort):
	// the permutation restricted to each part must be increasing.
	// Recover parts by re-partitioning with the same seed.
	// Instead verify the stable-order property structurally: orderByPart output
	// applied to a monotone part assignment must be the identity.
	ident := orderByPart([]int32{0, 0, 1, 1, 2})
	for i, v := range ident {
		if v != i {
			t.Errorf("orderByPart not stable: %v", ident)
		}
	}
}

func TestHPOrderValid(t *testing.T) {
	a := gen.Grid2D(12, 12)
	p, err := HypergraphPartitionOrder(a, Options{Seed: 4, Parts: 8}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 144 || !p.IsValid() {
		t.Fatal("HP invalid on grid")
	}
}

func TestGrayDenseRowsFirst(t *testing.T) {
	// Build a matrix with known dense rows (30 nonzeros) and sparse rows.
	n := 40
	rng := rand.New(rand.NewSource(5))
	coo := sparse.NewCOO(n, n, 200)
	denseRows := map[int]bool{7: true, 21: true, 33: true}
	for i := 0; i < n; i++ {
		count := 3
		if denseRows[i] {
			count = 30
		}
		for k := 0; k < count; k++ {
			coo.Append(i, rng.Intn(n), 1)
		}
	}
	a, _ := coo.ToCSR()
	p := GrayOrder(a, Options{}.withDefaults())
	if !p.IsValid() {
		t.Fatal("invalid Gray permutation")
	}
	nDense := 0
	for i := 0; i < n; i++ {
		if a.RowNNZ(i) > 20 {
			nDense++
		}
	}
	for i := 0; i < nDense; i++ {
		if a.RowNNZ(p[i]) <= 20 {
			t.Errorf("position %d holds sparse row %d before all dense rows", i, p[i])
		}
	}
	// Density reordering: dense block sorted by descending nonzero count.
	for i := 1; i < nDense; i++ {
		if a.RowNNZ(p[i-1]) < a.RowNNZ(p[i]) {
			t.Error("dense rows not in descending density order")
		}
	}
}

func TestGraySortsSparseRowsByGrayRank(t *testing.T) {
	n := 30
	rng := rand.New(rand.NewSource(6))
	coo := sparse.NewCOO(n, n, 90)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			coo.Append(i, rng.Intn(n), 1)
		}
	}
	a, _ := coo.ToCSR()
	opts := Options{}.withDefaults()
	p := GrayOrder(a, opts)
	prev := uint64(0)
	for i, row := range p {
		r := grayRank(rowBitmap(a, row, opts.GrayBitmapBits))
		if i > 0 && r < prev {
			t.Fatalf("sparse rows not in Gray-rank order at %d", i)
		}
		prev = r
	}
}

func TestGrayRankInvertsGrayCode(t *testing.T) {
	for b := uint64(0); b < 1<<10; b++ {
		g := b ^ (b >> 1) // binary-to-Gray
		if grayRank(g) != b {
			t.Fatalf("grayRank(%b) = %d, want %d", g, grayRank(g), b)
		}
	}
}

func TestRowBitmapSections(t *testing.T) {
	coo := sparse.NewCOO(1, 16, 2)
	coo.Append(0, 0, 1)  // section 0 -> MSB
	coo.Append(0, 15, 1) // section 15 -> LSB
	a, _ := coo.ToCSR()
	bm := rowBitmap(a, 0, 16)
	if bm != (1<<15)|1 {
		t.Errorf("bitmap = %b, want %b", bm, (1<<15)|1)
	}
}

func TestApplySymmetricVsRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSquare(rng, 40, 160)
	for _, alg := range AllOrderings {
		b, p, err := Apply(alg, a, Options{Seed: 1, Parts: 4})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if b.NNZ() != a.NNZ() {
			t.Errorf("%s changed nnz: %d -> %d", alg, a.NNZ(), b.NNZ())
		}
		var want *sparse.CSR
		if alg.Symmetric() {
			want, _ = sparse.PermuteSymmetric(a, p)
		} else {
			want, _ = sparse.PermuteRows(a, p)
		}
		if !b.Equal(want) {
			t.Errorf("%s: Apply disagrees with manual permutation", alg)
		}
	}
}

func TestSymmetricFlag(t *testing.T) {
	for _, alg := range AllOrderings {
		want := alg != Gray
		if alg.Symmetric() != want {
			t.Errorf("%s.Symmetric() = %v", alg, alg.Symmetric())
		}
	}
}

func TestOriginalIsIdentity(t *testing.T) {
	a := gen.Grid2D(5, 5)
	p, err := Compute(Original, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range p {
		if v != i {
			t.Fatal("Original is not the identity")
		}
	}
}

func TestRCMStartStrategies(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(16, 16), 9)
	g, err := graph.FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []StartStrategy{PseudoPeripheralStart, MinDegreeStart} {
		p := ReverseCuthillMcKeeWithStart(g, strat)
		if len(p) != g.N || !p.IsValid() {
			t.Fatalf("strategy %d: invalid permutation", strat)
		}
		b, err := sparse.PermuteSymmetric(a, p)
		if err != nil {
			t.Fatal(err)
		}
		if bw := metrics.Bandwidth(b); bw >= metrics.Bandwidth(a) {
			t.Errorf("strategy %d: bandwidth %d not reduced from %d", strat, bw, metrics.Bandwidth(a))
		}
	}
}

func TestGPWeightedBalancesNonzeros(t *testing.T) {
	// A matrix with strongly varying row densities: the nnz-weighted
	// partitioner must produce parts whose nonzero weights respect the
	// balance tolerance even though their row counts differ.
	a := gen.WithDenseRows(gen.Grid2D(24, 24), 8, 0.3, 4)
	s, err := sparse.Symmetrize(a)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 2, Parts: 8}.withDefaults()
	pw, err := GraphPartitionOrderWeighted(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !pw.IsValid() || len(pw) != s.Rows {
		t.Fatal("weighted GP invalid permutation")
	}
	// Re-run the underlying weighted partition and verify the nnz balance
	// directly (the ordering is a deterministic function of it).
	g, err := graph.FromMatrix(s)
	if err != nil {
		t.Fatal(err)
	}
	g.VWgt = make([]int32, s.Rows)
	totalW := 0
	for i := 0; i < s.Rows; i++ {
		g.VWgt[i] = int32(s.RowNNZ(i))
		totalW += s.RowNNZ(i)
	}
	part, _, err := partition.KWay(g, 8, partition.Options{Seed: opts.Seed})
	if err != nil {
		t.Fatal(err)
	}
	w := partition.PartWeights(g, part, 8)
	avg := float64(totalW) / 8
	for p, x := range w {
		if float64(x) > 1.5*avg {
			t.Errorf("weighted part %d has %d nnz, average %.0f", p, x, avg)
		}
	}
}

func TestSeparatedBlockDiagonal(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(20, 20), 6)
	res := SeparatedBlockDiagonal(a, Options{Seed: 1, NDSmall: 16})
	if !res.RowPerm.IsValid() || len(res.RowPerm) != a.Rows {
		t.Fatal("SBD row permutation invalid")
	}
	if !res.ColPerm.IsValid() || len(res.ColPerm) != a.Cols {
		t.Fatal("SBD column permutation invalid")
	}
	// Apply both permutations; the result must keep all nonzeros and
	// reduce the off-diagonal block count versus the scrambled input.
	b, err := sparse.PermuteRows(a, res.RowPerm)
	if err != nil {
		t.Fatal(err)
	}
	b, err = sparse.PermuteCols(b, res.ColPerm)
	if err != nil {
		t.Fatal(err)
	}
	if b.NNZ() != a.NNZ() {
		t.Fatal("SBD changed nnz")
	}
	before := metrics.OffDiagonalNNZ(a, 8)
	after := metrics.OffDiagonalNNZ(b, 8)
	if after >= before {
		t.Errorf("SBD off-diagonal nnz %d not below scrambled %d", after, before)
	}
}

func TestSeparatedBlockDiagonalTiny(t *testing.T) {
	a := gen.Grid2D(3, 3)
	res := SeparatedBlockDiagonal(a, Options{NDSmall: 100})
	// Below the recursion threshold the ordering is the identity.
	for i, v := range res.RowPerm {
		if v != i {
			t.Fatal("tiny SBD should be identity rows")
		}
	}
}

func TestGPSValidAndReducesBandwidth(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(20, 20), 8)
	g, err := graph.FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	p := GibbsPooleStockmeyer(g)
	if len(p) != g.N || !p.IsValid() {
		t.Fatal("GPS invalid permutation")
	}
	b, err := sparse.PermuteSymmetric(a, p)
	if err != nil {
		t.Fatal(err)
	}
	before := metrics.Bandwidth(a)
	after := metrics.Bandwidth(b)
	if after >= before/2 {
		t.Errorf("GPS bandwidth %d not well below scrambled %d", after, before)
	}
	// GPS should be in the same ballpark as RCM on a mesh.
	rcm := ReverseCuthillMcKee(g)
	br, err := sparse.PermuteSymmetric(a, rcm)
	if err != nil {
		t.Fatal(err)
	}
	if after > 3*metrics.Bandwidth(br) {
		t.Errorf("GPS bandwidth %d far worse than RCM %d", after, metrics.Bandwidth(br))
	}
}

func TestGPSOnPath(t *testing.T) {
	n := 40
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Append(i, i, 2)
		if i+1 < n {
			coo.Append(i, i+1, -1)
			coo.Append(i+1, i, -1)
		}
	}
	path, _ := coo.ToCSR()
	a := gen.Scramble(path, 21)
	g, err := graph.FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	p := GibbsPooleStockmeyer(g)
	b, err := sparse.PermuteSymmetric(a, p)
	if err != nil {
		t.Fatal(err)
	}
	if bw := metrics.Bandwidth(b); bw != 1 {
		t.Errorf("GPS bandwidth on path = %d, want 1", bw)
	}
}

func TestGPSDisconnected(t *testing.T) {
	coo := sparse.NewCOO(9, 9, 12)
	for i := 0; i < 3; i++ {
		coo.Append(i, i+1, 1)
		coo.Append(i+1, i, 1)
	}
	coo.Append(6, 7, 1)
	coo.Append(7, 6, 1)
	a, _ := coo.ToCSR()
	g, err := graph.FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	p := GibbsPooleStockmeyer(g)
	if len(p) != 9 || !p.IsValid() {
		t.Fatalf("GPS on disconnected graph: %v", p)
	}
}

// minDegreeExact is a brute-force exact minimum-degree ordering with full
// elimination-graph maintenance (clique insertion), used as a quality
// oracle for AMD on small graphs.
func minDegreeExact(g *graph.Graph) sparse.Perm {
	n := g.N
	adj := make([]map[int32]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[int32]bool{}
		for _, u := range g.Neighbors(v) {
			adj[v][u] = true
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	order := make(sparse.Perm, 0, n)
	for len(order) < n {
		best, bestDeg := -1, n+1
		for v := 0; v < n; v++ {
			if alive[v] && len(adj[v]) < bestDeg {
				best, bestDeg = v, len(adj[v])
			}
		}
		// Eliminate: connect all neighbours pairwise.
		neigh := make([]int32, 0, len(adj[best]))
		for u := range adj[best] {
			neigh = append(neigh, u)
		}
		for _, u := range neigh {
			delete(adj[u], int32(best))
		}
		for i := 0; i < len(neigh); i++ {
			for j := i + 1; j < len(neigh); j++ {
				adj[neigh[i]][neigh[j]] = true
				adj[neigh[j]][neigh[i]] = true
			}
		}
		alive[best] = false
		adj[best] = nil
		order = append(order, best)
	}
	return order
}

func TestAMDQualityAgainstExactMinimumDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		n := 20 + rng.Intn(40)
		a := randomSquare(rng, n, 3*n)
		s, err := sparse.Symmetrize(a)
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.FromMatrix(s)
		if err != nil {
			t.Fatal(err)
		}
		amdPerm := ApproxMinimumDegree(g)
		exactPerm := minDegreeExact(g)

		amdM, err := sparse.PermuteSymmetric(s, amdPerm)
		if err != nil {
			t.Fatal(err)
		}
		exactM, err := sparse.PermuteSymmetric(s, exactPerm)
		if err != nil {
			t.Fatal(err)
		}
		amdFill, err := cholesky.FactorNNZ(amdM)
		if err != nil {
			t.Fatal(err)
		}
		exactFill, err := cholesky.FactorNNZ(exactM)
		if err != nil {
			t.Fatal(err)
		}
		// The approximation may lose to exact minimum degree, but not by
		// much; a large gap would indicate a broken degree bound.
		if float64(amdFill) > 1.35*float64(exactFill)+10 {
			t.Errorf("trial %d: AMD fill %d far above exact MD fill %d", trial, amdFill, exactFill)
		}
	}
}

func TestHPConnectivityObjective(t *testing.T) {
	a := gen.Grid2D(12, 12)
	pCut, err := HypergraphPartitionOrder(a, Options{Seed: 4, Parts: 8}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seed: 4, Parts: 8, HPObjective: Connectivity}.withDefaults()
	pConn, err := HypergraphPartitionOrder(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !pConn.IsValid() || len(pConn) != a.Rows {
		t.Fatal("connectivity HP invalid")
	}
	if !pCut.IsValid() {
		t.Fatal("cut-net HP invalid")
	}
	// The Compute entry point must honour the option too.
	p2, err := Compute(HP, a, Options{Seed: 4, Parts: 8, HPObjective: Connectivity})
	if err != nil || !p2.IsValid() {
		t.Fatalf("Compute with connectivity objective: %v", err)
	}
}

func TestSloanValidAndReducesProfile(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(20, 20), 15)
	g, err := graph.FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	p := Sloan(g, 0, 0)
	if len(p) != g.N || !p.IsValid() {
		t.Fatal("Sloan produced an invalid permutation")
	}
	b, err := sparse.PermuteSymmetric(a, p)
	if err != nil {
		t.Fatal(err)
	}
	before := metrics.Profile(a)
	after := metrics.Profile(b)
	if after*2 >= before {
		t.Errorf("Sloan profile %d not well below scrambled %d", after, before)
	}
	// Sloan should be competitive with RCM on the profile metric.
	rcm := ReverseCuthillMcKee(g)
	br, err := sparse.PermuteSymmetric(a, rcm)
	if err != nil {
		t.Fatal(err)
	}
	if after > 2*metrics.Profile(br) {
		t.Errorf("Sloan profile %d far worse than RCM %d", after, metrics.Profile(br))
	}
}

func TestSloanDisconnected(t *testing.T) {
	coo := sparse.NewCOO(10, 10, 12)
	for i := 0; i < 4; i++ {
		coo.Append(i, i+1, 1)
		coo.Append(i+1, i, 1)
	}
	coo.Append(7, 8, 1)
	coo.Append(8, 7, 1)
	a, _ := coo.ToCSR()
	g, err := graph.FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	p := Sloan(g, 1, 2)
	if len(p) != 10 || !p.IsValid() {
		t.Fatalf("Sloan on disconnected graph: %v", p)
	}
}

func TestSloanWeightsChangeOrdering(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(12, 12), 16)
	g, err := graph.FromMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	p1 := Sloan(g, 1, 2)
	p2 := Sloan(g, 16, 1)
	same := true
	for i := range p1 {
		if p1[i] != p2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("extreme weight change did not alter the ordering")
	}
}
