package reorder

import (
	"math/rand"
	"sort"

	"sparseorder/internal/hypergraph"
	"sparseorder/internal/sparse"
)

// SBDResult holds the separated-block-diagonal ordering of Yzelman and
// Bisseling (paper §2.1.3, ref. [27]): an unsymmetric pair of row and
// column permutations that arrange the matrix into a recursive
// [A₀ | S | A₁] structure — two diagonal blocks separated by the columns
// of the cut nets, giving cache-oblivious SpMV locality.
type SBDResult struct {
	RowPerm sparse.Perm
	ColPerm sparse.Perm
}

// SeparatedBlockDiagonal computes the SBD ordering by recursive column-net
// hypergraph bisection: at each level the rows are bisected, columns
// touched only by side-0 rows go left, columns touched only by side-1 rows
// go right, and cut columns are placed between them; both halves recurse.
// Recursion stops below opts.NDSmall rows. This is an extension beyond the
// paper's six evaluated orderings, included because the paper singles it
// out as the other hypergraph-based reordering family.
func SeparatedBlockDiagonal(a *sparse.CSR, opts Options) SBDResult {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	rowOrder := make(sparse.Perm, 0, a.Rows)
	rows := make([]int32, a.Rows)
	for i := range rows {
		rows[i] = int32(i)
	}
	sbdRows(a, rows, opts, rng, &rowOrder)

	// Column order: induced by the row recursion. Recompute it by walking
	// the row order and classifying columns by the first and last row-block
	// positions that touch them: columns are emitted in order of
	// (first touching row position + last touching row position), which
	// places separator columns between the blocks they couple.
	first := make([]int, a.Cols)
	last := make([]int, a.Cols)
	for j := range first {
		first[j] = -1
	}
	rowPos := rowOrder.Inverse()
	for i := 0; i < a.Rows; i++ {
		pos := rowPos[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if first[j] < 0 || pos < first[j] {
				first[j] = pos
			}
			if pos > last[j] {
				last[j] = pos
			}
		}
	}
	colOrder := sparse.Identity(a.Cols)
	// Untouched (empty) columns keep relative order at the end.
	key := make([]int, a.Cols)
	for j := 0; j < a.Cols; j++ {
		if first[j] < 0 {
			key[j] = 2 * a.Rows * a.Rows
		} else {
			key[j] = (first[j] + last[j])
		}
	}
	sortStableBy(colOrder, key)
	return SBDResult{RowPerm: rowOrder, ColPerm: colOrder}
}

func sbdRows(a *sparse.CSR, rows []int32, opts Options, rng *rand.Rand, out *sparse.Perm) {
	if len(rows) == 0 {
		return
	}
	if len(rows) <= opts.NDSmall {
		for _, r := range rows {
			*out = append(*out, int(r))
		}
		return
	}
	sub := columnNetOf(a, rows)
	side := hypergraph.Bisect(sub, 0.5, hypergraph.Options{Seed: opts.Seed}, rng)
	var left, right []int32
	for i, s := range side {
		if s == 0 {
			left = append(left, rows[i])
		} else {
			right = append(right, rows[i])
		}
	}
	if len(left) == 0 || len(right) == 0 {
		for _, r := range rows {
			*out = append(*out, int(r))
		}
		return
	}
	sbdRows(a, left, opts, rng, out)
	sbdRows(a, right, opts, rng, out)
}

// columnNetOf builds the column-net hypergraph of the submatrix given by a
// row subset (columns restricted to those the subset touches).
func columnNetOf(a *sparse.CSR, rows []int32) *hypergraph.Hypergraph {
	colLocal := make(map[int32]int32)
	type netAcc struct{ pins []int32 }
	var nets []netAcc
	h := &hypergraph.Hypergraph{V: len(rows)}
	for li, r := range rows {
		for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
			j := a.ColIdx[k]
			nl, ok := colLocal[j]
			if !ok {
				nl = int32(len(nets))
				colLocal[j] = nl
				nets = append(nets, netAcc{})
			}
			nets[nl].pins = append(nets[nl].pins, int32(li))
		}
	}
	h.NPtr = append(h.NPtr, 0)
	for _, n := range nets {
		if len(n.pins) < 2 {
			continue
		}
		h.NPins = append(h.NPins, n.pins...)
		h.NPtr = append(h.NPtr, len(h.NPins))
	}
	h.Nets = len(h.NPtr) - 1
	h.BuildVertexIncidence()
	return h
}

// sortStableBy stable-sorts p by ascending key[p[i]].
func sortStableBy(p sparse.Perm, key []int) {
	sort.SliceStable(p, func(i, j int) bool { return key[p[i]] < key[p[j]] })
}
