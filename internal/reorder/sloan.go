package reorder

import (
	"container/heap"

	"sparseorder/internal/graph"
	"sparseorder/internal/sparse"
)

// Sloan computes Sloan's profile-reducing ordering (Sloan 1986, the
// algorithm behind HSL's MC40): vertices are numbered by a priority that
// trades global position — the distance to the far end of a
// pseudo-diameter — against local degree, which typically beats pure
// breadth-first orderings on the profile metric of the study's Figure 5.
// Included as an extension: the paper measures profile but evaluates no
// profile-specific algorithm. The weights w1 (distance) and w2 (degree)
// default to Sloan's recommended 1 and 2 when non-positive.
func Sloan(g *graph.Graph, w1, w2 int) sparse.Perm {
	if w1 <= 0 {
		w1 = 1
	}
	if w2 <= 0 {
		w2 = 2
	}
	const (
		inactive = iota
		preactive
		active
		numbered
	)
	n := g.N
	perm := make(sparse.Perm, 0, n)
	status := make([]uint8, n)
	prio := make([]int, n)
	scratch := make([]int32, n)

	for s := 0; s < n; s++ {
		if status[s] != inactive {
			continue
		}
		// Pseudo-diameter endpoints for this component.
		start, r := graph.PseudoPeripheral(g, s, scratch)
		last := r.Levels[len(r.Levels)-1]
		end := int(last[0])
		for _, v := range last {
			if g.Degree(int(v)) < g.Degree(end) {
				end = int(v)
			}
		}
		dist := graph.BFS(g, end, scratch)
		for _, v := range r.Order {
			prio[v] = w1*int(dist.Level[v]) - w2*(g.Degree(int(v))+1)
		}

		pq := &sloanHeap{}
		push := func(v int32) { heap.Push(pq, sloanEntry{v, prio[v]}) }
		status[start] = preactive
		push(int32(start))

		for pq.Len() > 0 {
			e := heap.Pop(pq).(sloanEntry)
			v := e.v
			if status[v] == numbered || e.prio != prio[v] {
				continue // stale entry
			}
			if status[v] == preactive {
				for _, j := range g.Neighbors(int(v)) {
					prio[j] += w2
					if status[j] == inactive {
						status[j] = preactive
					}
					push(j)
				}
			}
			perm = append(perm, int(v))
			status[v] = numbered
			for _, j := range g.Neighbors(int(v)) {
				if status[j] != preactive {
					continue
				}
				prio[j] += w2
				status[j] = active
				push(j)
				for _, k := range g.Neighbors(int(j)) {
					if status[k] == numbered {
						continue
					}
					prio[k] += w2
					if status[k] == inactive {
						status[k] = preactive
					}
					push(k)
				}
			}
		}
	}
	return perm
}

type sloanEntry struct {
	v    int32
	prio int
}

type sloanHeap []sloanEntry

func (h sloanHeap) Len() int            { return len(h) }
func (h sloanHeap) Less(i, j int) bool  { return h[i].prio > h[j].prio }
func (h sloanHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *sloanHeap) Push(x interface{}) { *h = append(*h, x.(sloanEntry)) }
func (h *sloanHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
