package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"sparseorder/internal/experiments"
	"sparseorder/internal/gen"
	"sparseorder/internal/obs"
	"sparseorder/internal/sparse"
)

// RunServingBench measures the serving path's instrumentation overhead:
// one warm SpMV request (cache hit, plan pooled) driven straight through
// the handler, in three telemetry modes:
//
//	serve_spmv_nilobs   cfg.Obs nil — instrumentation compiled in but
//	                    resolving to nil recorders (the PR 4 contract
//	                    extended to the request path)
//	serve_spmv_metrics  live registry: per-route latency, phase
//	                    histograms and status counters on pre-resolved
//	                    handles
//	serve_spmv_traced   metrics plus the request-trace ring and span —
//	                    everything cmd/serve enables by default
//
// The numbers include the HTTP mux, JSON decode/encode and the multiply
// itself, so the telemetry cost reads as the delta between modes, not the
// absolute. Returned in experiments.ObsMicroResult form so cmd/study can
// merge them into BENCH_obs.json next to the primitive micro-benchmarks
// (experiments cannot import this package — it would cycle through the
// governor — hence the glue lives in cmd/study).
func RunServingBench() ([]experiments.ObsMicroResult, error) {
	a := gen.Banded(300, 4, 0.9, 1)
	var mm bytes.Buffer
	if err := sparse.WriteMatrixMarket(&mm, a); err != nil {
		return nil, fmt.Errorf("server: bench corpus: %v", err)
	}
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	body, err := json.Marshal(spmvRequest{X: x})
	if err != nil {
		return nil, err
	}

	modes := []struct {
		name string
		obs  func() *obs.Obs
	}{
		{"serve_spmv_nilobs", func() *obs.Obs { return nil }},
		{"serve_spmv_metrics", func() *obs.Obs {
			return &obs.Obs{Metrics: obs.NewRegistry()}
		}},
		{"serve_spmv_traced", func() *obs.Obs {
			return &obs.Obs{Metrics: obs.NewRegistry(), Requests: obs.NewTraceRing(obs.DefaultTraceCap)}
		}},
	}

	var out []experiments.ObsMicroResult
	for _, mode := range modes {
		srv, err := New(Config{Threads: 1, Obs: mode.obs()})
		if err != nil {
			return nil, err
		}
		h := srv.Handler()

		// Upload once; every benchmark iteration is then a warm cache hit.
		up := httptest.NewRecorder()
		h.ServeHTTP(up, httptest.NewRequest(http.MethodPost, "/matrices", bytes.NewReader(mm.Bytes())))
		if up.Code != http.StatusOK {
			return nil, fmt.Errorf("server: bench upload (%s): status %d: %s", mode.name, up.Code, up.Body.String())
		}
		var ur uploadResponse
		if err := json.Unmarshal(up.Body.Bytes(), &ur); err != nil {
			return nil, err
		}
		url := "/spmv/" + ur.Key

		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := httptest.NewRecorder()
				h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, url, bytes.NewReader(body)))
				if w.Code != http.StatusOK {
					b.Fatalf("spmv status %d: %s", w.Code, w.Body.String())
				}
			}
		})
		out = append(out, experiments.ObsMicroResult{
			Name:        mode.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	return out, nil
}
