// Package server implements the reordering-as-a-service daemon behind
// cmd/serve: an HTTP/JSON API that accepts Matrix Market uploads, reorders
// them with the predicted-best ordering, caches (matrix, ordering, plan)
// under a content-hash key, and answers SpMV requests against the cached
// plans — the amortization the paper's Table 5 motivates (reordering cost
// dominates one-shot use; reuse is the payoff).
//
// Robustness is the package's actual subject. Admission control is a
// bounded queue plus the byte-weighted memory governor from the study
// runner; saturation sheds load with 429/Retry-After instead of queueing
// unboundedly. Per-request deadlines propagate as context into the
// cancellable orderings. Failures classify through the study's
// error/timeout/canceled/panic/resource taxonomy and map onto HTTP status
// codes. /healthz and /readyz flip during overload and drain, and Drain
// stops intake, finishes in-flight work and leaves the process ready to
// exit under the study runner's exit-code contract.
package server

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"sparseorder/internal/experiments"
	"sparseorder/internal/obs"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
)

// entry is one cached (matrix, ordering, plan) triple. Entries are
// immutable after insertion except for the pin count and LRU position; the
// reordered matrix and permutation are shared read-only across requests,
// and plans — which are NOT safe for concurrent Mul2D calls — are checked
// out of a per-entry pool, one per in-flight request.
type entry struct {
	key             string // content hash of the uploaded Matrix Market bytes
	alg             reorder.Algorithm
	mat             *sparse.CSR // reordered matrix
	perm            sparse.Perm // new-to-old; identity for Original
	rows, cols, nnz int
	reorderSeconds  float64
	bytes           int64 // resident estimate the governor admitted

	plans sync.Pool // *spmv.Plan2D, all built for mat with the same thread count

	// pins counts in-flight SpMV requests holding the entry; eviction
	// skips pinned entries, so a request can never observe a matrix whose
	// storage was released under it. Guarded by the cache mutex.
	pins int
	elem *list.Element // position in the LRU list; nil once evicted
}

// EntryBytes is the resident working-set estimate of a cached entry: the
// reordered CSR plus the permutation (8 B per row). The plan pool's
// split-point arrays are O(threads) and ignored.
func EntryBytes(rows, nnz int) int64 {
	n, z := int64(rows), int64(nnz)
	if n < 0 || z < 0 {
		return 0
	}
	return 8*(n+1) + 12*z + 8*n
}

// ErrCacheFull reports that an insert could not be admitted even after
// evicting every unpinned entry — the budget is held by pinned entries or
// concurrent transient work. The request path treats it as saturation
// (shed, 429), not as a permanent refusal.
var ErrCacheFull = errors.New("server: plan cache full")

// Cache is the content-hash-keyed LRU of reordered matrices and SpMV
// plans. Its admission controller is the study runner's byte-weighted
// memory governor: every resident entry holds a governor admission for its
// estimated bytes, so cached plans, in-flight reorders and the rest of the
// process share one budget; eviction releases the admission. With a nil
// governor the cache is bounded by maxEntries alone.
type Cache struct {
	gov        *experiments.Governor
	maxEntries int

	mu    sync.Mutex
	lru   *list.List // front = most recently used
	byKey map[string]*entry
	adms  map[string]*experiments.Admission // admission per resident entry
	bytes int64

	hitC, missC, evictC, insertC *obs.Counter
	bytesG, entriesG             *obs.Gauge
}

// NewCache builds the cache. gov may be nil (no byte budget); maxEntries
// <= 0 defaults to 256. Metric handles are resolved once so the request
// path never touches the registry.
func NewCache(gov *experiments.Governor, maxEntries int, o *obs.Obs) *Cache {
	if maxEntries <= 0 {
		maxEntries = 256
	}
	c := &Cache{
		gov:        gov,
		maxEntries: maxEntries,
		lru:        list.New(),
		byKey:      map[string]*entry{},
		adms:       map[string]*experiments.Admission{},
	}
	if o != nil && o.Metrics != nil {
		r := o.Metrics
		c.hitC = r.Counter("sparseorder_server_cache_hits_total",
			"SpMV or upload requests answered from a cached plan")
		c.missC = r.Counter("sparseorder_server_cache_misses_total",
			"requests that found no cached plan for their key")
		c.evictC = r.Counter("sparseorder_server_cache_evictions_total",
			"cache entries evicted to admit new ones")
		c.insertC = r.Counter("sparseorder_server_cache_inserts_total",
			"cache entries inserted")
		c.bytesG = r.Gauge("sparseorder_server_cache_bytes",
			"estimated resident bytes of cached entries")
		c.entriesG = r.Gauge("sparseorder_server_cache_entries",
			"cached entries resident")
	}
	return c
}

func (c *Cache) setGauges() { // c.mu held
	if c.bytesG != nil {
		c.bytesG.Set(float64(c.bytes))
	}
	if c.entriesG != nil {
		c.entriesG.Set(float64(c.lru.Len()))
	}
}

// Get returns the entry for key pinned against eviction, or nil. The
// caller must Unpin exactly once when done serving from it.
func (c *Cache) Get(key string) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.byKey[key]
	if e == nil {
		if c.missC != nil {
			c.missC.Inc()
		}
		return nil
	}
	e.pins++
	c.lru.MoveToFront(e.elem)
	if c.hitC != nil {
		c.hitC.Inc()
	}
	return e
}

// Contains reports whether key is resident without pinning or counting a
// hit/miss; the upload path uses it to answer duplicate uploads cheaply.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byKey[key] != nil
}

// Meta is the externally visible description of a cached entry.
type Meta struct {
	Key            string  `json:"key"`
	Rows           int     `json:"rows"`
	Cols           int     `json:"cols"`
	NNZ            int     `json:"nnz"`
	Ordering       string  `json:"ordering"`
	Bytes          int64   `json:"bytes"`
	ReorderSeconds float64 `json:"reorder_seconds"`
	Pins           int     `json:"pins"`
}

// Peek returns a cached entry's metadata without pinning it, moving it in
// the LRU order, or counting a hit/miss — the probe behind GET
// /matrices/{key} and upload dedupe.
func (c *Cache) Peek(key string) (Meta, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.byKey[key]
	if e == nil {
		return Meta{}, false
	}
	return Meta{
		Key: e.key, Rows: e.rows, Cols: e.cols, NNZ: e.nnz,
		Ordering: string(e.alg), Bytes: e.bytes,
		ReorderSeconds: e.reorderSeconds, Pins: e.pins,
	}, true
}

// Unpin releases a Get. Entries are never reclaimed while pinned, so the
// matrix and plan a request is using stay valid until this call.
func (c *Cache) Unpin(e *entry) {
	if e == nil {
		return
	}
	c.mu.Lock()
	e.pins--
	if e.pins < 0 {
		c.mu.Unlock()
		panic("server: cache entry unpinned more often than pinned")
	}
	c.mu.Unlock()
}

// Insert makes e resident, evicting least-recently-used unpinned entries
// until the governor admits its bytes (and the entry count fits). It
// returns experiments.ErrResourceBudget when the entry alone exceeds the
// budget (permanent: the matrix is servable but never cacheable) and
// ErrCacheFull when eviction cannot free enough (transient saturation).
// Inserting a key that is already resident is a no-op keeping the existing
// entry, so concurrent uploads of the same matrix cannot tear state.
func (c *Cache) Insert(e *entry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byKey[e.key] != nil {
		return nil
	}
	for {
		// Entry-count bound first (it also bounds the nil-governor path).
		if c.lru.Len() >= c.maxEntries {
			if !c.evictOldestUnpinned() {
				return fmt.Errorf("%w: %d entries resident, all pinned", ErrCacheFull, c.lru.Len())
			}
			continue
		}
		adm, err := c.gov.TryAcquire("cache:"+e.key, e.bytes)
		if err == nil {
			if adm != nil {
				c.adms[e.key] = adm
			}
			break
		}
		if errors.Is(err, experiments.ErrResourceBudget) {
			return err // can never fit; don't evict the world trying
		}
		if !c.evictOldestUnpinned() {
			return fmt.Errorf("%w: %v", ErrCacheFull, err)
		}
	}
	e.elem = c.lru.PushFront(e)
	c.byKey[e.key] = e
	c.bytes += e.bytes
	if c.insertC != nil {
		c.insertC.Inc()
	}
	c.setGauges()
	return nil
}

// insertRecovered makes a store-recovered entry resident using the
// governor admission the recovery pass already acquired for it, without
// evicting anything: recovery admits byte-weighted in LRU order up front,
// so an entry that doesn't fit is skipped there, never forced in here.
// Callers insert oldest-first, so PushFront leaves the LRU list in true
// recency order. It reports whether the key is resident afterwards — true
// also when a live upload won the race and inserted the key first (the
// pre-acquired admission is released; the resident entry serves).
func (c *Cache) insertRecovered(e *entry, adm *experiments.Admission) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byKey[e.key] != nil {
		if adm != nil {
			adm.Release()
		}
		return true
	}
	if c.lru.Len() >= c.maxEntries {
		if adm != nil {
			adm.Release()
		}
		return false
	}
	if adm != nil {
		c.adms[e.key] = adm
	}
	e.elem = c.lru.PushFront(e)
	c.byKey[e.key] = e
	c.bytes += e.bytes
	if c.insertC != nil {
		c.insertC.Inc()
	}
	c.setGauges()
	return true
}

// evictOldestUnpinned drops the least-recently-used entry whose pin count
// is zero, releasing its governor admission. It reports whether anything
// was evicted. c.mu held.
func (c *Cache) evictOldestUnpinned() bool {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		if e.pins > 0 {
			continue
		}
		c.lru.Remove(el)
		e.elem = nil
		delete(c.byKey, e.key)
		c.bytes -= e.bytes
		if adm := c.adms[e.key]; adm != nil {
			adm.Release()
			delete(c.adms, e.key)
		}
		if c.evictC != nil {
			c.evictC.Inc()
		}
		c.setGauges()
		return true
	}
	return false
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Bytes returns the resident byte estimate.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// getPlan checks a plan out of the entry's pool, building one on first
// use. Plans are built for the entry's matrix with threads threads;
// putPlan returns it for reuse, amortizing plan setup across requests on
// the same matrix.
func (e *entry) getPlan(threads int) (*spmv.Plan2D, error) {
	if p, _ := e.plans.Get().(*spmv.Plan2D); p != nil {
		return p, nil
	}
	return spmv.NewPlan2D(e.mat, threads)
}

func (e *entry) putPlan(p *spmv.Plan2D) { e.plans.Put(p) }
