package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"sparseorder/internal/experiments"
	"sparseorder/internal/gen"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
)

// mkEntry builds a minimal resident entry whose admission weight is bytes.
func mkEntry(key string, bytes int64) *entry {
	a := gen.Banded(4, 1, 1, 1)
	return &entry{
		key: key, alg: reorder.Original, mat: a, perm: sparse.Identity(a.Rows),
		rows: a.Rows, cols: a.Cols, nnz: a.NNZ(), bytes: bytes,
	}
}

// checkInvariants asserts the cache's books balance: the LRU list and the
// key index agree, resident bytes are the sum of entry weights, every
// admission belongs to a resident entry, and (when idle) nothing is pinned.
func checkInvariants(t *testing.T, c *Cache, wantIdle bool) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lru.Len() != len(c.byKey) {
		t.Errorf("lru has %d entries, index has %d", c.lru.Len(), len(c.byKey))
	}
	var sum int64
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if c.byKey[e.key] != e {
			t.Errorf("entry %s in lru but not indexed", e.key)
		}
		sum += e.bytes
		if wantIdle && e.pins != 0 {
			t.Errorf("entry %s has %d pins while idle", e.key, e.pins)
		}
	}
	if sum != c.bytes {
		t.Errorf("resident bytes %d, entries sum to %d", c.bytes, sum)
	}
	for k := range c.adms {
		if c.byKey[k] == nil {
			t.Errorf("admission held for non-resident key %s", k)
		}
	}
}

func TestEntryBytes(t *testing.T) {
	if EntryBytes(-1, 5) != 0 || EntryBytes(5, -1) != 0 {
		t.Error("negative shapes should estimate 0")
	}
	if a, b := EntryBytes(10, 100), EntryBytes(10, 200); b <= a {
		t.Errorf("EntryBytes not monotone in nnz: %d vs %d", a, b)
	}
}

// TestCacheLRUEviction: under a byte budget fitting two entries, a third
// insert evicts the least recently used — where "used" includes Get — and
// the hit/miss/evict/insert counters and byte gauge track it all.
func TestCacheLRUEviction(t *testing.T) {
	o := newTestObs()
	gov := experiments.NewGovernor(200, o)
	c := NewCache(gov, 100, o)

	for i, key := range []string{"a", "b"} {
		if err := c.Insert(mkEntry(key, 100)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Touch "a" so "b" is the LRU victim.
	e := c.Get("a")
	if e == nil {
		t.Fatal("a not resident")
	}
	c.Unpin(e)
	if c.Get("nope") != nil {
		t.Fatal("phantom entry")
	}

	if err := c.Insert(mkEntry("c", 100)); err != nil {
		t.Fatalf("insert c: %v", err)
	}
	if !c.Contains("a") || c.Contains("b") || !c.Contains("c") {
		t.Errorf("resident set a=%v b=%v c=%v, want a and c", c.Contains("a"), c.Contains("b"), c.Contains("c"))
	}
	if c.Bytes() != 200 || c.Len() != 2 {
		t.Errorf("bytes=%d len=%d, want 200/2", c.Bytes(), c.Len())
	}
	counts := map[string]uint64{
		"sparseorder_server_cache_hits_total":      1,
		"sparseorder_server_cache_misses_total":    1,
		"sparseorder_server_cache_evictions_total": 1,
		"sparseorder_server_cache_inserts_total":   3,
	}
	for name, want := range counts {
		if got := o.Metrics.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := o.Metrics.Gauge("sparseorder_server_cache_bytes", "").Value(); got != 200 {
		t.Errorf("bytes gauge = %v, want 200", got)
	}
	checkInvariants(t, c, true)
}

// TestCachePinnedNeverEvicted is the satellite-6 guarantee at the cache
// layer: under a budget that fits a single entry, an insert that would need
// to evict a pinned entry fails instead — a request holding a plan can
// never observe its matrix being reclaimed.
func TestCachePinnedNeverEvicted(t *testing.T) {
	gov := experiments.NewGovernor(100, nil)
	c := NewCache(gov, 100, newTestObs())
	if err := c.Insert(mkEntry("held", 100)); err != nil {
		t.Fatal(err)
	}
	e := c.Get("held") // an in-flight SpMV's pin
	if e == nil {
		t.Fatal("held not resident")
	}

	err := c.Insert(mkEntry("intruder", 100))
	if !errors.Is(err, ErrCacheFull) {
		t.Fatalf("insert over a pinned entry: err = %v, want ErrCacheFull", err)
	}
	if !c.Contains("held") || c.Contains("intruder") {
		t.Fatal("pinned entry displaced")
	}

	// Once the request finishes, the entry is reclaimable again.
	c.Unpin(e)
	if err := c.Insert(mkEntry("intruder", 100)); err != nil {
		t.Fatalf("insert after unpin: %v", err)
	}
	if c.Contains("held") || !c.Contains("intruder") {
		t.Fatal("LRU eviction after unpin did not happen")
	}
	checkInvariants(t, c, true)
}

// TestCacheEntryBound: with no governor the entry count is the only bound,
// and it too refuses to displace pinned entries.
func TestCacheEntryBound(t *testing.T) {
	c := NewCache(nil, 1, newTestObs())
	if err := c.Insert(mkEntry("one", 10)); err != nil {
		t.Fatal(err)
	}
	e := c.Get("one")
	if err := c.Insert(mkEntry("two", 10)); !errors.Is(err, ErrCacheFull) {
		t.Fatalf("err = %v, want ErrCacheFull", err)
	}
	c.Unpin(e)
	if err := c.Insert(mkEntry("two", 10)); err != nil {
		t.Fatal(err)
	}
	if c.Contains("one") || !c.Contains("two") {
		t.Fatal("entry bound not LRU")
	}
}

// TestCacheOversizedEntry: an entry that can never fit is a permanent
// resource refusal, distinct from transient fullness.
func TestCacheOversizedEntry(t *testing.T) {
	gov := experiments.NewGovernor(100, nil)
	c := NewCache(gov, 100, newTestObs())
	if err := c.Insert(mkEntry("small", 40)); err != nil {
		t.Fatal(err)
	}
	err := c.Insert(mkEntry("huge", 101))
	if !errors.Is(err, experiments.ErrResourceBudget) {
		t.Fatalf("err = %v, want ErrResourceBudget", err)
	}
	// The refusal must not have evicted anything trying.
	if !c.Contains("small") {
		t.Error("oversized insert evicted residents before refusing")
	}
}

// TestCacheDuplicateInsert: re-inserting a resident key keeps the original
// entry and does not double-count bytes or admissions.
func TestCacheDuplicateInsert(t *testing.T) {
	gov := experiments.NewGovernor(100, nil)
	c := NewCache(gov, 100, newTestObs())
	if err := c.Insert(mkEntry("k", 60)); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(mkEntry("k", 60)); err != nil {
		t.Fatalf("duplicate insert: %v", err)
	}
	if c.Len() != 1 || c.Bytes() != 60 {
		t.Errorf("len=%d bytes=%d after duplicate insert, want 1/60", c.Len(), c.Bytes())
	}
	checkInvariants(t, c, true)
}

// TestServerPinnedEvictionEndToEnd drives satellite 6 through the HTTP
// layer: a daemon whose budget fits one cached matrix, with that matrix
// pinned by an in-flight SpMV, serves a second upload (200) but cannot
// cache it — and the pinned matrix keeps serving afterwards.
func TestServerPinnedEvictionEndToEnd(t *testing.T) {
	m1 := gen.Banded(80, 2, 1, 1)
	m2 := gen.Banded(300, 3, 1, 2)
	e1 := EntryBytes(m1.Rows, m1.NNZ())
	e2 := EntryBytes(m2.Rows, m2.NNZ())
	// The transient estimate must match what the upload path will actually
	// request: the predicted ordering, not a worst case over all of them.
	t2 := experiments.EstimateMatrixBytes(m2.Rows, m2.NNZ(),
		[]reorder.Algorithm{Predict(m2, 1)})
	// Enough for m1 resident plus m2's transient reorder, but not for both
	// entries resident at once.
	budget := e1 + t2 + e2/2

	srv := mustNew(t, Config{Threads: 1, MemBudget: budget, Obs: newTestObs()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res1, up1 := postUpload(t, ts, mmBytes(t, m1))
	if res1.StatusCode != http.StatusOK || !up1.Cached {
		t.Fatalf("m1 upload: %d cached=%v", res1.StatusCode, up1.Cached)
	}
	// Pin m1 exactly the way the SpMV handler does mid-request.
	pinned := srv.Cache().Get(up1.Key)
	if pinned == nil {
		t.Fatal("m1 not resident")
	}

	res2, up2 := postUpload(t, ts, mmBytes(t, m2))
	if res2.StatusCode != http.StatusOK {
		t.Fatalf("m2 upload status %d", res2.StatusCode)
	}
	if up2.Cached {
		t.Error("m2 cached despite the budget being pinned")
	}
	if !srv.Cache().Contains(up1.Key) {
		t.Fatal("pinned m1 was evicted")
	}
	srv.Cache().Unpin(pinned)

	// m1 still answers correctly.
	x := testVector(m1.Cols, 9)
	resS, raw := postSpMV(t, ts, up1.Key, x)
	if resS.StatusCode != http.StatusOK {
		t.Fatalf("m1 spmv after pressure: %d %s", resS.StatusCode, raw)
	}
	checkInvariants(t, srv.Cache(), true)
}

// TestCacheUnpinUnderflow: a second Unpin is a programming error, loudly.
func TestCacheUnpinUnderflow(t *testing.T) {
	c := NewCache(nil, 2, nil)
	if err := c.Insert(mkEntry("k", 1)); err != nil {
		t.Fatal(err)
	}
	e := c.Get("k")
	c.Unpin(e)
	defer func() {
		if recover() == nil {
			t.Error("double Unpin did not panic")
		}
	}()
	c.Unpin(e)
}
