package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"sparseorder/internal/experiments"
	"sparseorder/internal/faultinject"
	"sparseorder/internal/gen"
	"sparseorder/internal/sparse"
)

// chaosMatrix is one upload target with its precomputed ground truth.
type chaosMatrix struct {
	body []byte
	key  string
	x    []float64
	want []byte // exact /spmv response bytes from a fault-free daemon
}

// TestServerChaosSoak is the PR's acceptance scenario: a seeded fault
// schedule armed at all four server points (decode, reorder, cache insert,
// SpMV) while concurrent clients hammer uploads and SpMV requests on a
// small daemon (tight queue, entry-bounded cache, byte budget). Afterwards
// the soak asserts:
//
//   - every 200 SpMV response was byte-identical to the fault-free
//     daemon's answer — cached plans and freshly recomputed plans agree
//     exactly, chaos or not;
//   - every failure was a well-formed classified JSON response with a
//     status from the robustness contract, and every 429/503 carried
//     Retry-After;
//   - the cache was never torn: books balance, no pins leak, and with the
//     faults disarmed every matrix uploads and serves correctly;
//   - no goroutines leak.
//
// Fault decisions hash (seed, point, content hash), so the schedule is
// identical in every run regardless of request interleaving.
func TestServerChaosSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	srcs := []*sparse.CSR{
		gen.Banded(120, 3, 1, 1),
		gen.Grid2D(12, 12),
		gen.RMAT(7, 6, 3),
		gen.Banded(90, 5, 0.6, 4),
		gen.Grid2D(10, 14),
		gen.RMAT(6, 5, 9),
	}
	threads := 2

	// Ground truth from a fault-free daemon with a DIFFERENT reorder worker
	// count: plan bytes must agree anyway (the determinism contract).
	mats := make([]*chaosMatrix, len(srcs))
	ref := mustNew(t, Config{Threads: threads, ReorderWorkers: 3, Obs: newTestObs()})
	rts := httptest.NewServer(ref.Handler())
	for i, a := range srcs {
		body := mmBytes(t, a)
		sum := sha256.Sum256(body)
		cm := &chaosMatrix{body: body, key: hex.EncodeToString(sum[:]), x: testVector(a.Cols, int64(i))}
		if res, _ := postUpload(t, rts, body); res.StatusCode != http.StatusOK {
			t.Fatalf("reference upload %d: %d", i, res.StatusCode)
		}
		res, raw := postSpMV(t, rts, cm.key, cm.x)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("reference spmv %d: %d %s", i, res.StatusCode, raw)
		}
		cm.want = raw
		mats[i] = cm
	}
	rts.Close()

	// The soak daemon: tight enough that shedding, eviction and governor
	// saturation all genuinely occur.
	srv := mustNew(t, Config{
		Threads:      threads,
		MaxInflight:  2,
		Queue:        2,
		MemBudget:    32 << 20,
		CacheEntries: 4, // fewer than matrices: evictions guaranteed
		Obs:          newTestObs(),
	})
	ts := httptest.NewServer(srv.Handler())

	faultinject.Activate(faultinject.NewPlan(7,
		faultinject.Rule{Point: faultinject.ServerDecode, Mode: faultinject.ModeError, Rate: 0.3},
		faultinject.Rule{Point: faultinject.ServerReorder, Mode: faultinject.ModeError, Rate: 0.25},
		faultinject.Rule{Point: faultinject.ServerReorder, Mode: faultinject.ModeDelay, Rate: 1, Param: 3},
		faultinject.Rule{Point: faultinject.ServerCacheInsert, Mode: faultinject.ModeENOSPC, Rate: 0.5},
		faultinject.Rule{Point: faultinject.ServerSpMV, Mode: faultinject.ModePanic, Rate: 0.2},
	))
	defer faultinject.Deactivate()

	okStatuses := map[int]bool{
		http.StatusBadRequest: true, http.StatusNotFound: true,
		http.StatusTooManyRequests: true, http.StatusInternalServerError: true,
		http.StatusServiceUnavailable: true, http.StatusGatewayTimeout: true,
		http.StatusRequestEntityTooLarge: true, statusClientClosed: true,
	}
	classes := map[experiments.FailureClass]bool{
		experiments.FailError: true, experiments.FailTimeout: true,
		experiments.FailCanceled: true, experiments.FailPanic: true,
		experiments.FailResource: true,
	}

	const workers, iters = 8, 25
	var mu sync.Mutex
	var spmvOK, shed int
	fail := func(format string, args ...any) {
		mu.Lock()
		t.Errorf(format, args...)
		mu.Unlock()
	}
	do := func(method, url string, body []byte) (int, []byte, http.Header) {
		req, err := http.NewRequest(method, url, bytes.NewReader(body))
		if err != nil {
			fail("request: %v", err)
			return 0, nil, nil
		}
		res, err := ts.Client().Do(req)
		if err != nil {
			fail("do: %v", err)
			return 0, nil, nil
		}
		raw, _ := io.ReadAll(res.Body)
		res.Body.Close()
		return res.StatusCode, raw, res.Header
	}
	checkFailure := func(what string, code int, raw []byte, hdr http.Header) {
		if !okStatuses[code] {
			fail("%s: unexpected status %d (%s)", what, code, raw)
			return
		}
		var ae apiError
		if err := json.Unmarshal(raw, &ae); err != nil || !classes[ae.Class] {
			fail("%s: malformed classified error %q (unmarshal %v)", what, raw, err)
		}
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			if hdr.Get("Retry-After") == "" {
				fail("%s: %d without Retry-After", what, code)
			}
			mu.Lock()
			shed++
			mu.Unlock()
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m := mats[(g+i)%len(mats)]
				code, raw, hdr := do("POST", ts.URL+"/matrices", m.body)
				switch {
				case code == http.StatusOK:
					var up uploadResponse
					if err := json.Unmarshal(raw, &up); err != nil || up.Key != m.key {
						fail("upload: bad 200 body %q (%v)", raw, err)
					}
				default:
					checkFailure("upload", code, raw, hdr)
				}

				xb, _ := json.Marshal(spmvRequest{X: m.x})
				code, raw, hdr = do("POST", ts.URL+"/spmv/"+m.key, xb)
				switch {
				case code == http.StatusOK:
					if !bytes.Equal(raw, m.want) {
						fail("spmv %s: response differs from fault-free daemon\ngot:  %.80s\nwant: %.80s",
							m.key[:12], raw, m.want)
					}
					mu.Lock()
					spmvOK++
					mu.Unlock()
				default:
					checkFailure("spmv", code, raw, hdr)
				}
			}
		}(g)
	}
	wg.Wait()

	// The schedule must have actually fired somewhere, and some SpMVs must
	// have genuinely succeeded — a soak where everything (or nothing)
	// failed proves nothing.
	fired := faultinject.Fired()
	for _, pt := range []faultinject.Point{
		faultinject.ServerDecode, faultinject.ServerReorder,
		faultinject.ServerCacheInsert, faultinject.ServerSpMV,
	} {
		if fired[pt] == 0 {
			t.Errorf("point %s never fired; the soak did not exercise it", pt)
		}
	}
	if spmvOK == 0 {
		t.Error("no SpMV succeeded during the soak")
	}
	t.Logf("soak: %d spmv 200s byte-checked, %d shed/drain rejections, faults fired %v", spmvOK, shed, fired)

	// No torn cache state: books balance, nothing left pinned, and with
	// faults disarmed every matrix uploads and serves the exact reference
	// answer through whatever cache state the chaos left behind.
	checkInvariants(t, srv.Cache(), true)
	faultinject.Deactivate()
	for i, m := range mats {
		if res, _ := postUpload(t, ts, m.body); res.StatusCode != http.StatusOK {
			t.Fatalf("post-chaos upload %d: %d", i, res.StatusCode)
		}
		res, raw := postSpMV(t, ts, m.key, m.x)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("post-chaos spmv %d: %d %s", i, res.StatusCode, raw)
		}
		if !bytes.Equal(raw, m.want) {
			t.Errorf("post-chaos spmv %d differs from reference", i)
		}
	}
	checkInvariants(t, srv.Cache(), true)

	ts.Client().CloseIdleConnections()
	ts.Close()
	waitGoroutines(t, baseline)
}
