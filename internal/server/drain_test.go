package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"sparseorder/internal/faultinject"
	"sparseorder/internal/gen"
)

// waitGoroutines polls until the goroutine count returns to at most base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > %d at start\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulDrain is the satellite-3 scenario: with one request in
// flight and one queued, BeginDrain must (a) release the queued request
// with 503, (b) reject new intake with 503 + Connection: close, (c) let
// the in-flight request finish with 200, and (d) leave zero goroutines
// behind once the listener closes.
func TestGracefulDrain(t *testing.T) {
	baseline := runtime.NumGoroutine()

	o := newTestObs()
	srv := mustNew(t, Config{Threads: 1, MaxInflight: 1, Queue: 2, Obs: o})
	ts := httptest.NewServer(srv.Handler())

	// The in-flight upload is held inside the work section by a 700ms
	// injected delay at the reorder boundary, keyed by its content hash.
	slow := mmBytes(t, gen.Banded(60, 2, 1, 8))
	sum := sha256.Sum256(slow)
	slowKey := hex.EncodeToString(sum[:])
	faultinject.Activate(faultinject.NewPlan(1, faultinject.Rule{
		Point: faultinject.ServerReorder, Mode: faultinject.ModeDelay, Rate: 1, Param: 700,
	}))
	defer faultinject.Deactivate()

	type result struct {
		code int
		err  error
	}
	post := func(body []byte, ch chan<- result) {
		res, err := ts.Client().Post(ts.URL+"/matrices", "text/plain", bytes.NewReader(body))
		if err != nil {
			ch <- result{err: err}
			return
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		ch <- result{code: res.StatusCode}
	}

	inflightC := make(chan result, 1)
	go post(slow, inflightC)
	deadline := time.Now().Add(5 * time.Second)
	for !(srv.inflight.Load() == 1 && srv.queued.Load() == 0) {
		if time.Now().After(deadline) {
			t.Fatalf("upload never claimed the work slot (inflight=%d queued=%d)",
				srv.inflight.Load(), srv.queued.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A second distinct upload queues behind it.
	queuedBody := mmBytes(t, gen.Banded(50, 2, 1, 9))
	queuedC := make(chan result, 1)
	go post(queuedBody, queuedC)
	for srv.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second upload never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}

	srv.BeginDrain()

	// (a) The queued request is released with 503, well before the slow
	// in-flight one could have finished.
	select {
	case r := <-queuedC:
		if r.err != nil || r.code != http.StatusServiceUnavailable {
			t.Fatalf("queued request: %+v, want 503", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request not released by drain")
	}

	// (b) New intake is rejected immediately.
	res, err := ts.Client().Post(ts.URL+"/matrices", "text/plain", bytes.NewReader(queuedBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new intake during drain = %d, want 503", res.StatusCode)
	}
	if res.Header.Get("Retry-After") == "" {
		t.Error("drain 503 without Retry-After")
	}

	// (c) The in-flight request runs to completion and is fully served.
	select {
	case r := <-inflightC:
		if r.err != nil || r.code != http.StatusOK {
			t.Fatalf("in-flight request: %+v, want 200", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request did not finish during drain")
	}
	if !srv.Cache().Contains(slowKey) {
		t.Error("in-flight upload's result was not committed to the cache")
	}

	wctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.WaitIdle(wctx); err != nil {
		t.Fatalf("WaitIdle: %v", err)
	}
	if n := o.Metrics.Counter("sparseorder_server_drain_rejected_total", "").Value(); n < 2 {
		t.Errorf("drain_rejected_total = %d, want >= 2", n)
	}

	// (d) No goroutines survive the shutdown.
	ts.Client().CloseIdleConnections()
	ts.Close()
	waitGoroutines(t, baseline)
}

// TestWaitIdleTimeout: an in-flight request that outlives the drain window
// surfaces as an error (cmd/serve turns it into exit code 1).
func TestWaitIdleTimeout(t *testing.T) {
	srv := mustNew(t, Config{Threads: 1, Obs: newTestObs()})
	srv.inflight.Add(1)
	defer srv.inflight.Add(-1)
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.WaitIdle(ctx); err == nil {
		t.Fatal("WaitIdle returned nil with a request still in flight")
	}
}
