package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"sparseorder/internal/obs"
)

// phase indexes the serving path's latency decomposition. Every request's
// wall time is attributed to the phases it actually passed through; the
// remainder (routing, JSON encode, scheduling) is deliberately left
// unattributed so the phases never over-claim.
type phase int

const (
	// phaseQueueWait is the time between arrival and acquiring a work
	// slot — the queueing-delay component of tail latency.
	phaseQueueWait phase = iota
	// phaseGovernorWait is the time spent in memory-governor admission
	// (TryAcquire bookkeeping; the governor never blocks, so a large value
	// here means admission lock contention, not budget waits).
	phaseGovernorWait
	// phaseDecode is input decoding: Matrix Market parsing on upload, the
	// JSON x-vector decode on spmv.
	phaseDecode
	// phaseReorder is the ordering pipeline (graph build, ordering,
	// permute) — the paper's dominant one-shot cost (Table 5).
	phaseReorder
	// phasePlanBuild is SpMV plan checkout: free on a pool hit, a full
	// plan construction on first use after upload or thread change.
	phasePlanBuild
	// phaseSpMV is the multiply itself, including the permutation
	// gather/scatter.
	phaseSpMV
	// phaseStoreWrite is the durable-store persist after a successful
	// reorder: serialization plus the atomic write and its fsyncs.
	phaseStoreWrite

	nPhases
)

var phaseNames = [nPhases]string{
	"queue_wait", "governor_wait", "decode", "reorder", "plan_build", "spmv", "store_write",
}

// Metric family names of the serving path.
const (
	metricRequestsTotal  = "sparseorder_server_requests_total"
	metricRequestSeconds = "sparseorder_server_request_seconds"
	metricPhaseSeconds   = "sparseorder_server_phase_seconds"
	metricInflight       = "sparseorder_server_inflight"
	metricQueueDepth     = "sparseorder_server_queue_depth"
)

// routeMetrics is one route's pre-resolved metric handles. Handle lookup
// in the registry takes a lock and rebuilds a label signature; doing that
// per request put two lookups on the hot path, so every series a request
// can touch is resolved once at construction and the request path only
// hammers atomics. Status-code counters are the one open-ended label:
// the common codes are pre-resolved into the read-mostly table and the
// long tail falls back to a short write-locked insertion, once per
// (route, code) for the process lifetime.
type routeMetrics struct {
	route   string
	latency *obs.Histogram
	phases  [nPhases]*obs.Histogram

	mu    sync.RWMutex
	codes map[int]*obs.Counter
	reg   *obs.Registry
}

// commonCodes are the status codes the daemon emits by design; anything
// else reaches codeCounter's slow path exactly once.
var commonCodes = []int{
	http.StatusOK, http.StatusBadRequest, http.StatusNotFound,
	http.StatusRequestEntityTooLarge, http.StatusTooManyRequests,
	statusClientClosed, http.StatusInternalServerError,
	http.StatusServiceUnavailable, http.StatusGatewayTimeout,
}

// newRouteMetrics resolves every series the route can touch. r may be nil
// (Obs disabled): the zero handles are never dereferenced because no
// requestTrace is created.
func newRouteMetrics(r *obs.Registry, route string) *routeMetrics {
	if r == nil {
		return nil
	}
	rm := &routeMetrics{route: route, reg: r, codes: make(map[int]*obs.Counter, len(commonCodes))}
	rm.latency = r.Histogram(metricRequestSeconds,
		"API request latency by route", obs.DefBuckets,
		obs.Label{Key: "route", Value: route})
	for p := phase(0); p < nPhases; p++ {
		rm.phases[p] = r.Histogram(metricPhaseSeconds,
			"request latency decomposition by route and phase", obs.DefBuckets,
			obs.Label{Key: "route", Value: route},
			obs.Label{Key: "phase", Value: phaseNames[p]})
	}
	for _, code := range commonCodes {
		rm.codes[code] = rm.resolveCode(code)
	}
	return rm
}

func (rm *routeMetrics) resolveCode(code int) *obs.Counter {
	return rm.reg.Counter(metricRequestsTotal,
		"API requests by route and status code",
		obs.Label{Key: "route", Value: rm.route},
		obs.Label{Key: "code", Value: fmt.Sprintf("%d", code)})
}

// codeCounter returns the requests_total counter for code: a read-locked
// table hit for every code seen before, one registry resolution otherwise.
func (rm *routeMetrics) codeCounter(code int) *obs.Counter {
	rm.mu.RLock()
	c := rm.codes[code]
	rm.mu.RUnlock()
	if c != nil {
		return c
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if c = rm.codes[code]; c == nil {
		c = rm.resolveCode(code)
		rm.codes[code] = c
	}
	return c
}

// stateCollector exports the admission gauges at scrape time — the
// in-flight and queued counts already live in the Server's atomics, so a
// scrape-time read costs the request path nothing.
func (s *Server) stateCollector() func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := fmt.Fprintf(w,
			"# HELP %s requests currently executing or writing a response\n"+
				"# TYPE %s gauge\n%s %d\n"+
				"# HELP %s requests waiting for a work slot\n"+
				"# TYPE %s gauge\n%s %d\n",
			metricInflight, metricInflight, metricInflight, s.inflight.Load(),
			metricQueueDepth, metricQueueDepth, metricQueueDepth, s.queued.Load())
		return err
	}
}

// requestTrace accumulates one request's identity, phase timings and
// outcome while it executes, then flushes everything — per-phase
// histograms are fed live, the completed obs.ReqTrace goes to the trace
// ring, the access log and the request span at finish. It exists only
// when an Obs is attached: with cfg.Obs nil, startTrace returns nil and
// every method is a nil-receiver no-op that never reads the clock, so the
// disabled request path keeps the PR 4 zero-allocation contract.
type requestTrace struct {
	rm *requestTraceSinks
	sp *obs.Span
	t  obs.ReqTrace
}

// requestTraceSinks bundles the per-route handles and per-server sinks a
// trace flushes into; resolved once per route at construction.
type requestTraceSinks struct {
	metrics *routeMetrics
	ring    *obs.TraceRing
	events  *obs.EventLog
}

// traceCtxKey carries the *requestTrace through the handler context.
type traceCtxKey struct{}

// traceFrom recovers the request's trace recorder; nil (a no-op recorder)
// when tracing is disabled.
func traceFrom(ctx context.Context) *requestTrace {
	rt, _ := ctx.Value(traceCtxKey{}).(*requestTrace)
	return rt
}

// startTrace begins recording a request on route rt (nil when Obs is
// disabled). The returned trace already carries the accepted-or-generated
// request id.
func (s *Server) startTrace(sinks *requestTraceSinks, spanName string, r *http.Request) *requestTrace {
	if sinks == nil {
		return nil
	}
	rt := &requestTrace{rm: sinks, sp: s.cfg.Obs.Span(spanName)}
	rt.t.ID = obs.AcceptRequestID(r.Header)
	rt.t.Route = sinks.metrics.route
	rt.t.Start = time.Now()
	rt.t.Phases = make([]obs.ReqPhase, 0, nPhases)
	rt.sp.SetAttr("request_id", rt.t.ID)
	return rt
}

// id returns the request id, "" on the disabled path.
func (rt *requestTrace) id() string {
	if rt == nil {
		return ""
	}
	return rt.t.ID
}

// clock samples the wall clock for a phase start; the disabled path does
// not even read the clock.
func (rt *requestTrace) clock() time.Time {
	if rt == nil {
		return time.Time{}
	}
	return time.Now()
}

// phase attributes the time since t0 (a clock() sample) to phase p: one
// pre-resolved histogram observation plus an entry in the trace.
func (rt *requestTrace) phase(p phase, t0 time.Time) {
	if rt == nil {
		return
	}
	sec := time.Since(t0).Seconds()
	rt.rm.metrics.phases[p].Observe(sec)
	rt.t.Phases = append(rt.t.Phases, obs.ReqPhase{Name: phaseNames[p], Seconds: sec})
}

// setKey records the matrix content-hash key once the request resolved it.
func (rt *requestTrace) setKey(key string) {
	if rt == nil {
		return
	}
	rt.t.Key = key
}

// finish flushes the completed request: latency and status-code series,
// the trace ring, the access log, and the request span (stamped with
// status, and class on failure).
func (rt *requestTrace) finish(status int, class, errmsg string) {
	if rt == nil {
		return
	}
	if status == 0 {
		status = http.StatusOK
	}
	rt.t.Seconds = time.Since(rt.t.Start).Seconds()
	rt.t.Status = status
	rt.t.Class = class
	rt.t.Error = errmsg
	rt.rm.metrics.latency.Observe(rt.t.Seconds)
	rt.rm.metrics.codeCounter(status).Inc()
	rt.sp.SetAttr("status", fmt.Sprintf("%d", status))
	if class != "" {
		rt.sp.SetAttr("class", class)
	}
	rt.sp.End()
	rt.rm.ring.Add(&rt.t)
	rt.rm.events.EmitAccess(&rt.t)
}
