package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"sparseorder/internal/gen"
	"sparseorder/internal/obs"
)

var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// TestServerMetricNamesLint exercises the full serving surface and then
// asserts every metric family registered — and every sample name emitted,
// including collector output the registry never sees as a family — obeys
// the Prometheus naming grammar. This is the guard that keeps a typo'd
// family name in a new call site from silently breaking scrapes.
func TestServerMetricNamesLint(t *testing.T) {
	o := newTestObs()
	o.Requests = obs.NewTraceRing(8)
	o.Metrics.AddCollector(obs.RuntimeCollector())
	srv := mustNew(t, Config{Threads: 1, Obs: o})
	h := srv.Handler()

	// Drive upload, spmv, a 4xx and a 404 so every labelled series the
	// request path can mint exists.
	up := httptest.NewRecorder()
	h.ServeHTTP(up, httptest.NewRequest(http.MethodPost, "/matrices",
		bytes.NewReader(mmBytes(t, gen.Banded(150, 3, 0.9, 5)))))
	if up.Code != http.StatusOK {
		t.Fatalf("upload: %d", up.Code)
	}
	h.ServeHTTP(httptest.NewRecorder(),
		httptest.NewRequest(http.MethodPost, "/matrices", strings.NewReader("junk")))
	h.ServeHTTP(httptest.NewRecorder(),
		httptest.NewRequest(http.MethodPost, "/spmv/absent", strings.NewReader(`{"x":[1]}`)))

	for _, f := range o.Metrics.Families() {
		if !promNameRE.MatchString(f) {
			t.Errorf("registered family %q violates the Prometheus naming grammar", f)
		}
	}

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	seen := map[string]bool{}
	for _, line := range strings.Split(w.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		seen[name] = true
		if !promNameRE.MatchString(name) {
			t.Errorf("emitted sample name %q violates the naming grammar (line %q)", name, line)
		}
	}

	// The serving families this PR adds must all be on the wire.
	for _, want := range []string{
		metricRequestsTotal,
		metricRequestSeconds + "_bucket",
		metricPhaseSeconds + "_bucket",
		metricInflight,
		metricQueueDepth,
		"sparseorder_go_goroutines",
		"sparseorder_go_gc_pause_seconds_total",
	} {
		if !seen[want] {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
