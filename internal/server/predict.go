package server

import (
	"sparseorder/internal/metrics"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
)

// Predict picks the ordering an upload is reordered with, from the cheap
// order-sensitive features of internal/metrics — the paper's §6
// future-work direction (predict instead of trying everything), with the
// same decision rule the autotune example validates against the oracle:
//
//   - rectangular matrices are served unordered: the whole reorder
//     pipeline (Gray included) requires A square, and the paper's study
//     population is square graphs/meshes anyway;
//   - strong 1D load imbalance or a dominant off-diagonal share favours
//     GP, the study's static recommendation for irregular matrices;
//   - an already-banded, balanced matrix keeps RCM: nearly as good there
//     and an order of magnitude cheaper to compute (Table 5);
//   - everything else falls to GP.
//
// threads is the SpMV thread count the daemon serves with, which is what
// the imbalance feature must be computed against.
func Predict(a *sparse.CSR, threads int) reorder.Algorithm {
	if a.Rows != a.Cols {
		return reorder.Original
	}
	f := metrics.Compute(a, threads, threads)
	relBandwidth := float64(f.Bandwidth) / float64(max(a.Rows, 1))
	offdiagShare := float64(f.OffDiagNNZ) / float64(max(a.NNZ(), 1))
	switch {
	case f.Imbalance1D > 1.5 || offdiagShare > 0.5:
		return reorder.GP
	case relBandwidth < 0.05:
		return reorder.RCM
	default:
		return reorder.GP
	}
}
