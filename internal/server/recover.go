package server

import (
	"context"
	"sort"
	"time"

	"sparseorder/internal/experiments"
	"sparseorder/internal/par"
)

// RecoveryStats summarises one warm-restart recovery pass. The counts
// reconcile by construction: every entry file on disk at scan time is
// exactly one of recovered (resident in the plan cache), quarantined
// (moved to quarantine/ with a classified reason), or skipped (valid but
// left on disk unloaded because the memory governor or entry bound was
// full, or the pass was interrupted).
type RecoveryStats struct {
	Scanned     int
	Recovered   int
	Quarantined int
	Skipped     int
	Seconds     float64
}

// Recover rebuilds the plan cache from the durable store and then flips
// /readyz out of the recovering state. It is called once after New, runs
// concurrently with serving (a request racing recovery sees at worst a
// cache miss; inserts dedupe by key), and never fails the boot: corrupt,
// truncated and stale entries are quarantined, over-budget entries are
// skipped, and only an unreadable store directory or a canceled context
// returns an error — with the daemon still serving cold either way.
//
// The pass runs in three stages. First a serial header scan classifies
// every entry and quarantines the unrecoverable ones. Then survivors are
// admitted against the memory governor byte-weighted in LRU order — most
// recently used first, per the persisted last-access stamps with the
// header save time as fallback — so when the budget fills, what falls
// out is exactly what LRU eviction would have dropped. Finally the
// admitted payloads are read, checksummed and validated in parallel
// (bounded by RecoverWorkers) and inserted oldest-first, leaving the
// cache's LRU list in true recency order.
func (s *Server) Recover(ctx context.Context) (RecoveryStats, error) {
	var st RecoveryStats
	if s.store == nil {
		return st, nil
	}
	defer s.recovering.Store(false)
	t0 := time.Now()
	defer func() {
		st.Seconds = time.Since(t0).Seconds()
		if s.store.recoverySecG != nil {
			s.store.recoverySecG.Set(st.Seconds)
		}
		if s.store.recoveredC != nil {
			s.store.recoveredC.Add(uint64(st.Recovered))
		}
		if s.store.skippedC != nil {
			s.store.skippedC.Add(uint64(st.Skipped))
		}
		s.store.logf("store: recovery done in %.3fs: %d scanned, %d recovered, %d quarantined, %d skipped",
			st.Seconds, st.Scanned, st.Recovered, st.Quarantined, st.Skipped)
	}()

	paths, err := s.store.listEntries()
	if err != nil {
		return st, err
	}
	st.Scanned = len(paths)
	s.recoverRemaining.Store(int64(len(paths)))
	stamps := s.store.readAccessStamps()

	// Stage 1: serial header scan. Headers are one short read per file;
	// parallelism only pays for the payload stage.
	var cands []storeCandidate
	var liveBytes int64
	for _, p := range paths {
		if err := ctx.Err(); err != nil {
			st.Skipped = st.Scanned - st.Quarantined
			return st, err
		}
		c, reason, detail := s.store.scanEntry(p)
		if reason != "" {
			s.store.quarantine(p, reason, detail)
			st.Quarantined++
			s.recoverRemaining.Add(-1)
			continue
		}
		if t := stamps[c.key]; t > c.stamp {
			c.stamp = t
		}
		cands = append(cands, c)
		liveBytes += c.size
	}
	// Seed the on-disk gauges with what survived the scan; concurrent
	// uploads keep adjusting them incrementally from here.
	s.store.bytes.Add(liveBytes)
	s.store.entries.Add(int64(len(cands)))
	s.store.setGauges()

	// Stage 2: byte-weighted admission in LRU order (ties broken by key
	// for determinism). Each refusal is independent — a matrix too big
	// for the remaining budget does not block smaller, older ones.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].stamp != cands[j].stamp {
			return cands[i].stamp > cands[j].stamp
		}
		return cands[i].key < cands[j].key
	})
	type admitted struct {
		cand storeCandidate
		adm  *experiments.Admission
	}
	var admit []admitted
	keepStamps := map[string]int64{} // access stamps surviving compaction
	var keepKeys []string
	for _, c := range cands {
		if ctx.Err() != nil || len(admit) >= s.cfg.CacheEntries {
			st.Skipped++
			s.recoverRemaining.Add(-1)
			keepStamps[c.key], keepKeys = c.stamp, append(keepKeys, c.key)
			continue
		}
		adm, err := s.gov.TryAcquire("recover:"+c.key, EntryBytes(c.header.Rows, c.header.NNZ))
		if err != nil {
			s.store.logf("store: leaving %.12s on disk unloaded: %v", c.key, err)
			st.Skipped++
			s.recoverRemaining.Add(-1)
			keepStamps[c.key], keepKeys = c.stamp, append(keepKeys, c.key)
			continue
		}
		admit = append(admit, admitted{c, adm})
	}
	if err := ctx.Err(); err != nil {
		for _, a := range admit {
			if a.adm != nil {
				a.adm.Release()
			}
		}
		st.Skipped += len(admit)
		return st, err
	}

	// Stage 3: parallel load + verify, bounded by the par pool.
	type loaded struct {
		e              *entry
		reason, detail string
	}
	res := make([]loaded, len(admit))
	par.Ranges(len(admit), par.Resolve(s.cfg.RecoverWorkers), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				s.recoverRemaining.Add(-1)
				continue // e nil, reason empty: counted skipped below
			}
			e, reason, detail := s.store.loadEntry(admit[i].cand)
			res[i] = loaded{e, reason, detail}
			s.recoverRemaining.Add(-1)
		}
	})

	// Insert oldest-first so PushFront leaves the most recently used
	// entry at the LRU front — the order eviction needs.
	for i := len(admit) - 1; i >= 0; i-- {
		a, r := admit[i], res[i]
		if r.e == nil {
			if a.adm != nil {
				a.adm.Release()
			}
			if r.reason == "" { // canceled before its load started
				st.Skipped++
				keepStamps[a.cand.key], keepKeys = a.cand.stamp, append(keepKeys, a.cand.key)
				continue
			}
			s.store.quarantine(a.cand.path, r.reason, r.detail)
			s.store.bytes.Add(-a.cand.size)
			s.store.entries.Add(-1)
			s.store.setGauges()
			st.Quarantined++
			continue
		}
		if s.cache.insertRecovered(r.e, a.adm) {
			st.Recovered++
		} else {
			st.Skipped++
		}
		keepStamps[a.cand.key], keepKeys = a.cand.stamp, append(keepKeys, a.cand.key)
	}
	s.store.compactAccess(keepStamps, keepKeys)
	return st, ctx.Err()
}
