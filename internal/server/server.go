package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sparseorder/internal/experiments"
	"sparseorder/internal/faultinject"
	"sparseorder/internal/obs"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
)

// Config parameterises the daemon. The zero value serves with GOMAXPROCS
// SpMV threads, a 30s default deadline, a GOMAXPROCS-deep work pool with a
// 2× queue, a 256 MiB body cap and no memory budget.
type Config struct {
	// Threads is the SpMV execution width and the thread count plans are
	// built for. 0 means GOMAXPROCS.
	Threads int
	// ReorderWorkers bounds the parallel reordering pipeline per upload
	// (reorder.Options.Workers). 0 means 1 (serial): uploads already run
	// concurrently, so per-upload parallelism is opt-in. Any value
	// produces byte-identical reordered matrices (the determinism
	// contract), so cached and recomputed plans agree exactly.
	ReorderWorkers int
	// IngestWorkers is the Matrix Market decode parallelism
	// (sparse.ReadMatrixMarketCtx). 0 means GOMAXPROCS.
	IngestWorkers int
	// Seed drives the randomized partitioner components; fixed per daemon
	// so equal uploads yield byte-identical orderings. Default 42.
	Seed int64
	// Deadline caps each request's processing time; requests may shorten
	// (never extend) it per-request with an X-Deadline-Ms header. The
	// deadline propagates as a context into the cancellable orderings, so
	// a wedged reorder stops within bounded work. 0 defaults to 30s;
	// negative disables.
	Deadline time.Duration
	// MaxInflight bounds requests doing work concurrently; 0 means
	// GOMAXPROCS.
	MaxInflight int
	// Queue bounds requests waiting for a work slot; arrivals beyond it
	// are shed with 429. 0 means 2×MaxInflight; negative means no queue
	// (every busy arrival sheds).
	Queue int
	// MaxBody caps upload bodies in bytes. 0 means 256 MiB.
	MaxBody int64
	// MemBudget is the byte budget of the admission governor shared by
	// cache residency and in-flight reorder working sets: >0 literal,
	// 0 auto from GOMEMLIMIT, <0 off (see experiments.NewGovernor).
	MemBudget int64
	// CacheEntries bounds the plan cache's entry count (the only bound
	// when the governor is off). 0 means 256.
	CacheEntries int
	// RetryAfter is the hint sent with 429/503 responses. 0 means 1s.
	RetryAfter time.Duration
	// StoreDir, when non-empty, enables the durable plan store: every
	// admitted upload is persisted under its content-hash key and a
	// restarted daemon recovers its plans from disk (call Recover after
	// New). Empty means in-memory only — a restart forgets everything.
	StoreDir string
	// RecoverWorkers bounds the parallel payload loads during
	// warm-restart recovery. 0 means GOMAXPROCS; negative means serial.
	RecoverWorkers int
	// StoreAccessInterval throttles persisted last-access stamps to one
	// per key per interval (the stamps only restore LRU order across
	// restarts). 0 means 1s; negative stamps every access.
	StoreAccessInterval time.Duration
	// Obs receives request spans and metrics; nil disables telemetry.
	Obs *obs.Obs
	// Logf, when set, receives one line per admission anomaly (sheds,
	// drain rejections) and lifecycle transition.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.ReorderWorkers <= 0 {
		c.ReorderWorkers = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Deadline == 0 {
		c.Deadline = 30 * time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.Queue == 0 {
		c.Queue = 2 * c.MaxInflight
	}
	if c.Queue < 0 {
		c.Queue = 0
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 256 << 20
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.StoreAccessInterval == 0 {
		c.StoreAccessInterval = time.Second
	}
	if c.StoreAccessInterval < 0 {
		c.StoreAccessInterval = 0
	}
	return c
}

// Server is the reordering-as-a-service daemon: upload matrices, get SpMV
// answers from cached plans. See the package comment for the robustness
// contract; construct with New, serve Handler, stop with BeginDrain +
// WaitIdle.
type Server struct {
	cfg   Config
	gov   *experiments.Governor
	cache *Cache
	store *store // nil without -store; nil-safe methods

	// recovering is true from construction with a store until Recover
	// completes; /readyz answers 503 "recovering" while it holds so load
	// balancers hold traffic during warm-start. recoverRemaining counts
	// store entries not yet processed, for the /readyz body.
	recovering       atomic.Bool
	recoverRemaining atomic.Int64

	slots    chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64

	draining  atomic.Bool
	drainCh   chan struct{}
	drainOnce sync.Once

	shedC  *obs.Counter // sparseorder_server_shed_total
	drainC *obs.Counter // sparseorder_server_drain_rejected_total

	// routes holds the per-route pre-resolved metric handles and trace
	// sinks (nil per entry when Obs is disabled); the request path never
	// performs a registry lookup.
	routes map[string]*requestTraceSinks
}

// New builds the daemon from cfg. The only failure mode is an unusable
// StoreDir (unwritable, not a directory); a storeless config never errs.
// With a store configured the daemon starts in the recovering state —
// call Recover (typically in a goroutine, with the HTTP listener already
// up) to load persisted plans and flip /readyz to ready.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		gov:     experiments.NewGovernor(cfg.MemBudget, cfg.Obs),
		slots:   make(chan struct{}, cfg.MaxInflight),
		drainCh: make(chan struct{}),
	}
	s.cache = NewCache(s.gov, cfg.CacheEntries, cfg.Obs)
	if cfg.StoreDir != "" {
		st, err := openStore(cfg.StoreDir, cfg.Seed, cfg.Threads, cfg.StoreAccessInterval, cfg.Obs, cfg.Logf)
		if err != nil {
			return nil, err
		}
		s.store = st
		s.recovering.Store(true)
	}
	s.routes = map[string]*requestTraceSinks{}
	if o := cfg.Obs; o != nil && o.Metrics != nil {
		s.shedC = o.Metrics.Counter("sparseorder_server_shed_total",
			"requests shed with 429 because the queue or memory governor was saturated")
		s.drainC = o.Metrics.Counter("sparseorder_server_drain_rejected_total",
			"requests rejected with 503 because the daemon was draining")
		for _, route := range []string{"upload", "spmv"} {
			s.routes[route] = &requestTraceSinks{
				metrics: newRouteMetrics(o.Metrics, route),
				ring:    o.Requests,
				events:  o.Events,
			}
		}
		o.Metrics.AddCollector(s.stateCollector())
	}
	return s, nil
}

// Close releases the store's file handles (the access log). Safe on a
// storeless daemon and after a failed New.
func (s *Server) Close() error { return s.store.close() }

// Recovering reports whether warm-restart recovery is still running.
func (s *Server) Recovering() bool { return s.recovering.Load() }

// Governor exposes the admission governor (nil when no budget applies);
// cmd/serve reports it at startup.
func (s *Server) Governor() *experiments.Governor { return s.gov }

// Cache exposes the plan cache for tests and stats.
func (s *Server) Cache() *Cache { return s.cache }

// BeginDrain flips the daemon into draining: /readyz goes 503, new API
// requests are rejected with 503, queued requests waiting for a work slot
// are released with 503, and in-flight requests run to completion.
// Idempotent.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
		if s.cfg.Logf != nil {
			s.cfg.Logf("draining: intake stopped, %d in flight", s.inflight.Load())
		}
	})
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// WaitIdle blocks until no request is in flight or ctx expires; the drain
// step between BeginDrain and process exit.
func (s *Server) WaitIdle(ctx context.Context) error {
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return fmt.Errorf("server: drain incomplete, %d requests still in flight: %w",
				s.inflight.Load(), ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
	return nil
}

// Handler returns the daemon's full route surface:
//
//	POST /matrices       upload a Matrix Market body; reorder + cache
//	GET  /matrices/{key} metadata of a cached matrix
//	POST /spmv/{key}     {"x":[...]} -> {"y":[...]} against the cached plan
//	GET  /healthz        process liveness (200 while serving or draining)
//	GET  /readyz         load acceptance (503 during overload and drain)
//
// plus, when cfg.Obs is set, the shared telemetry surface (/metrics,
// /progress, /debug/pprof/*, /debug/vars) mounted via obs.Mount — the same
// endpoints cmd/study -http serves.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /matrices", s.guard("upload", s.handleUpload))
	mux.HandleFunc("GET /matrices/{key}", s.handleMeta)
	mux.HandleFunc("POST /spmv/{key}", s.guard("spmv", s.handleSpMV))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.cfg.Obs != nil {
		s.cfg.Obs.Mount(mux)
	}
	return mux
}

// apiError is a classified failure response: the JSON body carries the
// study's failure-class taxonomy so clients can tell a retryable timeout
// from a deterministic error or a permanent resource refusal.
type apiError struct {
	Error string                   `json:"error"`
	Class experiments.FailureClass `json:"class"`
}

// statusClientClosed is nginx's 499: the client went away (request
// context canceled) before a response was produced.
const statusClientClosed = 499

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, class experiments.FailureClass, msg string) {
	if sw, ok := w.(*statusWriter); ok {
		sw.class, sw.errmsg = class, msg
	}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After",
			strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	writeJSON(w, status, apiError{Error: msg, Class: class})
}

// classStatus maps a classified evaluation failure onto an HTTP status.
// errStatus is the status of the deterministic-error class, which differs
// by site: a failing decode is the client's fault (400), a failing reorder
// or SpMV is ours (500).
func classStatus(class experiments.FailureClass, errStatus int) int {
	switch class {
	case experiments.FailTimeout:
		return http.StatusGatewayTimeout
	case experiments.FailCanceled:
		return statusClientClosed
	case experiments.FailResource:
		return http.StatusRequestEntityTooLarge
	case experiments.FailPanic:
		return http.StatusInternalServerError
	default:
		return errStatus
	}
}

// writeClassified classifies err through the study taxonomy and writes the
// mapped response.
func (s *Server) writeClassified(w http.ResponseWriter, err error, errStatus int) {
	class := experiments.Classify(err)
	msg := err.Error()
	if class == experiments.FailPanic {
		// Stacks go to the log, not the wire.
		if pe := (*experiments.PanicError)(nil); errors.As(err, &pe) {
			msg = "panic: " + pe.Value
		}
	}
	s.writeError(w, classStatus(class, errStatus), class, msg)
}

// statusWriter captures the response code — plus, for classified error
// responses, the failure class and message — so the guard's finish step
// can stamp the request trace without threading state through handlers.
type statusWriter struct {
	http.ResponseWriter
	status int
	class  experiments.FailureClass
	errmsg string
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// guard wraps a work handler with the whole robustness envelope, outermost
// first: panic containment (a handler panic — injected or organic — is
// classified FailPanic and answered 500, never a torn connection), the
// request trace (id accept/generate + echo, per-phase and total latency
// into pre-resolved histograms, the trace ring and the access log), drain
// rejection, the bounded queue with load shedding, the per-request
// deadline, and the in-flight count the drain waits on. Every metric
// handle is resolved at construction; with cfg.Obs nil no trace exists
// and the envelope adds zero allocations.
func (s *Server) guard(route string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	sinks := s.routes[route] // nil when Obs is disabled
	spanName := "server/" + route
	return func(rw http.ResponseWriter, r *http.Request) {
		w := &statusWriter{ResponseWriter: rw}
		rt := s.startTrace(sinks, spanName, r)
		if rt != nil {
			// Echo the accepted-or-generated id before any body bytes.
			w.Header().Set(obs.RequestIDHeader, rt.id())
		}
		defer func() {
			if v := recover(); v != nil {
				pe := &experiments.PanicError{Value: fmt.Sprint(v), Stack: string(debug.Stack())}
				if s.cfg.Logf != nil {
					s.cfg.Logf("%s [%s]: %v\n%s", route, rt.id(), v, pe.Stack)
				}
				if w.status == 0 { // headers not sent yet; answer properly
					s.writeClassified(w, pe, http.StatusInternalServerError)
				}
			}
			rt.finish(w.status, string(w.class), w.errmsg)
		}()

		// Drain gate: once BeginDrain ran, no new work is admitted. The
		// check sits inside the in-flight window so WaitIdle also covers
		// rejections still writing their 503.
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if s.draining.Load() {
			if s.drainC != nil {
				s.drainC.Inc()
			}
			w.Header().Set("Connection", "close")
			s.writeError(w, http.StatusServiceUnavailable, experiments.FailCanceled, "daemon is draining")
			return
		}

		// Bounded queue: at most Queue requests wait for a work slot;
		// arrivals beyond that are shed immediately — the daemon degrades
		// by refusing early, not by queueing unboundedly.
		if n := s.queued.Add(1); n > int64(s.cfg.Queue)+int64(s.cfg.MaxInflight) {
			s.queued.Add(-1)
			s.shed(w, rt, "request queue full")
			return
		}
		arrived := rt.clock()
		var release func()
		select {
		case s.slots <- struct{}{}:
			s.queued.Add(-1)
			rt.phase(phaseQueueWait, arrived)
			release = func() { <-s.slots }
		case <-s.drainCh:
			s.queued.Add(-1)
			if s.drainC != nil {
				s.drainC.Inc()
			}
			w.Header().Set("Connection", "close")
			s.writeError(w, http.StatusServiceUnavailable, experiments.FailCanceled, "daemon is draining")
			return
		case <-r.Context().Done():
			s.queued.Add(-1)
			s.writeClassified(w, r.Context().Err(), http.StatusInternalServerError)
			return
		}
		defer release()

		// Per-request deadline, propagated as context into the decode and
		// the cancellable orderings.
		ctx := r.Context()
		if d := s.deadlineFor(r); d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
		ctx = obs.NewContext(ctx, s.cfg.Obs)
		if rt != nil {
			ctx = context.WithValue(ctx, traceCtxKey{}, rt)
		}
		h(w, r.WithContext(ctx))
	}
}

// deadlineFor resolves the request's deadline: the configured default,
// shortened (never extended) by an X-Deadline-Ms header.
func (s *Server) deadlineFor(r *http.Request) time.Duration {
	d := s.cfg.Deadline
	if d < 0 {
		d = 0
	}
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			if hd := time.Duration(ms) * time.Millisecond; d == 0 || hd < d {
				d = hd
			}
		}
	}
	return d
}

// shed refuses a request with 429 + Retry-After.
func (s *Server) shed(w http.ResponseWriter, rt *requestTrace, why string) {
	if s.shedC != nil {
		s.shedC.Inc()
	}
	if s.cfg.Logf != nil {
		s.cfg.Logf("shed [%s]: %s", rt.id(), why)
	}
	s.writeError(w, http.StatusTooManyRequests, experiments.FailResource, why)
}

// uploadResponse answers POST /matrices.
type uploadResponse struct {
	Key            string  `json:"key"`
	Rows           int     `json:"rows"`
	Cols           int     `json:"cols"`
	NNZ            int     `json:"nnz"`
	Ordering       string  `json:"ordering"`
	Cached         bool    `json:"cached"`
	Deduplicated   bool    `json:"deduplicated,omitempty"`
	Persisted      bool    `json:"persisted,omitempty"`
	ReorderSeconds float64 `json:"reorder_seconds"`
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	rt := traceFrom(ctx)
	body, err := readBody(w, r, s.cfg.MaxBody)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge, experiments.FailResource,
				fmt.Sprintf("body exceeds the %d-byte upload cap", mbe.Limit))
			return
		}
		s.writeClassified(w, err, http.StatusBadRequest)
		return
	}
	sum := sha256.Sum256(body)
	key := hex.EncodeToString(sum[:])
	rt.setKey(key)

	// Content-hash dedupe: a matrix already resident answers immediately —
	// the amortization the cache exists for. A resident entry missing from
	// the store (its persist failed, or it was quarantined last restart)
	// is re-persisted here, so durability self-heals on re-upload.
	if m, ok := s.cache.Peek(key); ok {
		persisted := s.store.has(key)
		if s.store != nil && !persisted {
			if e := s.cache.Get(key); e != nil {
				persisted = s.persistEntry(rt, e)
				s.cache.Unpin(e)
			}
		}
		s.store.touch(key)
		writeJSON(w, http.StatusOK, uploadResponse{
			Key: key, Rows: m.Rows, Cols: m.Cols, NNZ: m.NNZ,
			Ordering: m.Ordering, Cached: true, Deduplicated: true,
			Persisted:      persisted,
			ReorderSeconds: m.ReorderSeconds,
		})
		return
	}

	// Decode phase: the injected decode fault is part of the phase so an
	// injected stall is attributed where the real stall would be.
	t0 := rt.clock()
	mat, err := decodeUpload(ctx, key, body, s.cfg.IngestWorkers)
	rt.phase(phaseDecode, t0)
	if err != nil {
		s.writeClassified(w, err, http.StatusBadRequest)
		return
	}

	alg := reorder.Original
	if mat.NNZ() > 0 {
		alg = Predict(mat, s.cfg.Threads)
	}

	// Transient working-set admission for the reorder itself; shed instead
	// of queueing when the governor cannot grant it now.
	est := experiments.EstimateMatrixBytes(mat.Rows, mat.NNZ(), []reorder.Algorithm{alg})
	t0 = rt.clock()
	adm, err := s.gov.TryAcquire(key, est)
	rt.phase(phaseGovernorWait, t0)
	if err != nil {
		if errors.Is(err, experiments.ErrResourceBudget) {
			s.writeError(w, http.StatusRequestEntityTooLarge, experiments.FailResource, err.Error())
			return
		}
		s.shed(w, rt, err.Error())
		return
	}
	defer adm.Release()

	// Reorder phase, opened before the fault check for the same
	// attribution reason: an injected server/reorder delay must show up
	// as reorder time in the trace.
	t0 = rt.clock()
	b, perm, timings, err := s.reorderUpload(ctx, key, alg, mat)
	rt.phase(phaseReorder, t0)
	if err != nil {
		s.writeClassified(w, err, http.StatusInternalServerError)
		return
	}

	e := &entry{
		key: key, alg: alg, mat: b, perm: perm,
		rows: b.Rows, cols: b.Cols, nnz: b.NNZ(),
		reorderSeconds: timings.Total(),
		bytes:          EntryBytes(b.Rows, b.NNZ()),
	}
	cached := false
	if err := faultinject.Check(faultinject.ServerCacheInsert, key); err != nil {
		if s.cfg.Logf != nil {
			s.cfg.Logf("cache insert %s: %v", key[:12], err)
		}
	} else if err := s.cache.Insert(e); err != nil {
		if s.cfg.Logf != nil {
			s.cfg.Logf("cache insert %s: %v", key[:12], err)
		}
	} else {
		cached = true
	}
	persisted := s.persistEntry(rt, e)
	writeJSON(w, http.StatusOK, uploadResponse{
		Key: key, Rows: e.rows, Cols: e.cols, NNZ: e.nnz,
		Ordering: string(alg), Cached: cached, Persisted: persisted,
		ReorderSeconds: e.reorderSeconds,
	})
}

// persistEntry writes e to the durable store, attributing the time to the
// store_write phase. A persist failure degrades, never fails the upload:
// the plan serves from memory, the error is logged and counted, and the
// cost of the lost durability is a cold cache miss on the next restart.
func (s *Server) persistEntry(rt *requestTrace, e *entry) bool {
	if s.store == nil {
		return false
	}
	t0 := rt.clock()
	err := s.store.put(e)
	rt.phase(phaseStoreWrite, t0)
	if err != nil {
		if s.cfg.Logf != nil {
			s.cfg.Logf("store: persist %.12s: %v", e.key, err)
		}
		return false
	}
	return true
}

// readBody reads the capped request body.
func readBody(w http.ResponseWriter, r *http.Request, maxBody int64) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, maxBody)
	defer rd.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(rd); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeUpload is the upload's decode phase: the injected fault site plus
// the Matrix Market parse.
func decodeUpload(ctx context.Context, key string, body []byte, workers int) (*sparse.CSR, error) {
	if err := faultinject.Check(faultinject.ServerDecode, key); err != nil {
		return nil, err
	}
	return sparse.ReadMatrixMarketCtx(ctx, bytes.NewReader(body), workers)
}

// reorderUpload is the upload's reorder phase: the injected fault site
// plus the ordering pipeline (identity for Original).
func (s *Server) reorderUpload(ctx context.Context, key string, alg reorder.Algorithm, mat *sparse.CSR) (*sparse.CSR, sparse.Perm, reorder.PhaseTimings, error) {
	var timings reorder.PhaseTimings
	if err := faultinject.Check(faultinject.ServerReorder, key); err != nil {
		return nil, nil, timings, err
	}
	if alg == reorder.Original {
		return mat, sparse.Identity(mat.Rows), timings, nil
	}
	return reorder.ApplyTimedCtx(ctx, alg, mat, reorder.Options{
		Parts:   s.cfg.Threads,
		Seed:    s.cfg.Seed,
		Workers: s.cfg.ReorderWorkers,
	})
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	m, ok := s.cache.Peek(key)
	if !ok {
		s.writeError(w, http.StatusNotFound, experiments.FailError, "unknown matrix key")
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// spmvRequest is the POST /spmv/{key} body.
type spmvRequest struct {
	X []float64 `json:"x"`
}

type spmvResponse struct {
	Y []float64 `json:"y"`
}

func (s *Server) handleSpMV(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	rt := traceFrom(r.Context())
	rt.setKey(key)
	if err := faultinject.Check(faultinject.ServerSpMV, key); err != nil {
		s.writeClassified(w, err, http.StatusInternalServerError)
		return
	}
	e := s.cache.Get(key)
	if e == nil {
		s.writeError(w, http.StatusNotFound, experiments.FailError,
			"unknown matrix key (upload it first, or it was evicted)")
		return
	}
	defer s.cache.Unpin(e)
	s.store.touch(key) // keep the persisted LRU order fresh

	var req spmvRequest
	t0 := rt.clock()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	err := dec.Decode(&req)
	rt.phase(phaseDecode, t0)
	if err != nil {
		s.writeClassified(w, fmt.Errorf("bad spmv body: %w", err), http.StatusBadRequest)
		return
	}
	if len(req.X) != e.cols {
		s.writeError(w, http.StatusBadRequest, experiments.FailError,
			fmt.Sprintf("x has %d entries, matrix has %d columns", len(req.X), e.cols))
		return
	}
	if err := r.Context().Err(); err != nil {
		s.writeClassified(w, err, http.StatusInternalServerError)
		return
	}

	y, err := s.multiply(rt, e, req.X)
	if err != nil {
		s.writeClassified(w, err, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, spmvResponse{Y: y})
}

// multiply computes y = A·x in the ORIGINAL index space against the cached
// reordered matrix B:
//
//	symmetric ordering:  B = P·A·Pᵀ, so y[perm[i]] = (B · gather(x))[i]
//	row-only (Gray):     B rows are A's rows in perm order, x unchanged
//
// Both directions use the new-to-old permutation; the gather/scatter is
// exact (a permutation of float64 values, no arithmetic), so responses are
// bit-identical to an SpMV on the unordered matrix and identical between
// cached and freshly recomputed plans.
func (s *Server) multiply(rt *requestTrace, e *entry, x []float64) ([]float64, error) {
	t0 := rt.clock()
	plan, err := e.getPlan(s.cfg.Threads)
	rt.phase(phasePlanBuild, t0)
	if err != nil {
		return nil, err
	}
	t0 = rt.clock()
	xb := x
	if e.alg.Symmetric() && e.alg != reorder.Original {
		xb = make([]float64, e.cols)
		for i, p := range e.perm {
			xb[i] = x[p]
		}
	}
	yb := make([]float64, e.rows)
	if err := spmv.Mul2D(e.mat, xb, yb, plan); err != nil {
		rt.phase(phaseSpMV, t0)
		return nil, err
	}
	e.putPlan(plan)
	y := yb
	if e.alg != reorder.Original {
		y = make([]float64, e.rows)
		for i, p := range e.perm {
			y[p] = yb[i]
		}
	}
	rt.phase(phaseSpMV, t0)
	return y, nil
}

// healthState is the /healthz and /readyz body.
type healthState struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	Queued   int64  `json:"queued"`
	InFlight int64  `json:"in_flight"`
	Cached   int    `json:"cached_entries"`
	// StoreRemaining is the count of store entries warm-restart recovery
	// has not yet processed; nonzero only while status is "recovering".
	StoreRemaining int64 `json:"store_entries_remaining,omitempty"`
}

func (s *Server) state() healthState {
	return healthState{
		Draining:       s.draining.Load(),
		Queued:         s.queued.Load(),
		InFlight:       s.inflight.Load(),
		Cached:         s.cache.Len(),
		StoreRemaining: s.recoverRemaining.Load(),
	}
}

// handleHealthz is liveness: 200 while the process serves, including
// during drain (a draining daemon is alive; killing it early would abort
// the in-flight work the drain protects).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.state()
	st.Status = "ok"
	if st.Draining {
		st.Status = "draining"
	}
	writeJSON(w, http.StatusOK, st)
}

// handleReadyz is load acceptance: 503 while draining, while warm-restart
// recovery is rebuilding plans from the store, or while admission is
// saturated (governor committed or queue full), 200 otherwise — the flip
// a load balancer uses to route around an overloaded, warming or stopping
// instance. The body names the state and, during recovery, the entries
// remaining.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := s.state()
	switch {
	case st.Draining:
		st.Status = "draining"
	case s.recovering.Load():
		// Warm-restart recovery is still rebuilding plans from the store:
		// hold load-balancer traffic (clients that arrive anyway are
		// served — at worst a cache miss) until the cache is warm.
		st.Status = "recovering"
	case s.gov.Saturated():
		st.Status = "overloaded"
	case st.Queued >= int64(s.cfg.Queue)+int64(s.cfg.MaxInflight):
		st.Status = "overloaded"
	default:
		st.Status = "ready"
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, st)
}
