package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sparseorder/internal/experiments"
	"sparseorder/internal/faultinject"
	"sparseorder/internal/gen"
	"sparseorder/internal/obs"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
)

// mmBytes renders a as a Matrix Market document — the upload wire format.
func mmBytes(t *testing.T, a *sparse.CSR) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sparse.WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testVector is the deterministic x the tests multiply with.
func testVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func newTestObs() *obs.Obs {
	return &obs.Obs{Metrics: obs.NewRegistry()}
}

// mustNew builds a daemon, failing the test on a construction error (the
// only source is an unusable StoreDir).
func mustNew(t testing.TB, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func postUpload(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, uploadResponse) {
	t.Helper()
	res, err := ts.Client().Post(ts.URL+"/matrices", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var up uploadResponse
	if res.StatusCode == http.StatusOK {
		if err := json.NewDecoder(res.Body).Decode(&up); err != nil {
			t.Fatalf("upload response: %v", err)
		}
	}
	return res, up
}

func postSpMV(t *testing.T, ts *httptest.Server, key string, x []float64) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spmvRequest{X: x})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ts.Client().Post(ts.URL+"/spmv/"+key, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, raw
}

func decodeY(t *testing.T, raw []byte) []float64 {
	t.Helper()
	var resp spmvResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("spmv response %q: %v", raw, err)
	}
	return resp.Y
}

// wantClose compares a served y against a serial multiply on the original
// matrix. A permutation reorders each row's dot-product terms, so only
// tolerance-level agreement is expected here; byte-identity is asserted
// between server responses (cached vs recomputed plans), where the term
// order is the same.
func wantClose(t *testing.T, y, ref []float64) {
	t.Helper()
	if len(y) != len(ref) {
		t.Fatalf("y has %d entries, want %d", len(y), len(ref))
	}
	for i := range ref {
		tol := 1e-9 * (math.Abs(ref[i]) + 1)
		if math.Abs(y[i]-ref[i]) > tol {
			t.Fatalf("y[%d] = %v, want %v (±%g)", i, y[i], ref[i], tol)
		}
	}
}

// wantClass decodes a classified error body and checks its class.
func wantClass(t *testing.T, res *http.Response, raw []byte, status int, class experiments.FailureClass) {
	t.Helper()
	if res.StatusCode != status {
		t.Fatalf("status = %d (%s), want %d", res.StatusCode, raw, status)
	}
	var ae apiError
	if err := json.Unmarshal(raw, &ae); err != nil {
		t.Fatalf("error body %q not JSON: %v", raw, err)
	}
	if ae.Class != class {
		t.Errorf("class = %q, want %q (%s)", ae.Class, class, ae.Error)
	}
}

// TestUploadAndSpMV is the core serving contract: an uploaded matrix is
// reordered with the predicted ordering, and SpMV against the cached plan
// returns exactly the bits a serial multiply on the ORIGINAL matrix
// produces — the permutation round trip must be invisible to clients.
func TestUploadAndSpMV(t *testing.T) {
	mats := []*sparse.CSR{
		gen.Banded(200, 4, 0.8, 1), // banded + balanced: RCM territory
		gen.RMAT(8, 8, 7),          // skewed: GP territory
	}
	srv := mustNew(t, Config{Threads: 2, Obs: newTestObs()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for mi, a := range mats {
		body := mmBytes(t, a)
		res, up := postUpload(t, ts, body)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("matrix %d: upload status %d", mi, res.StatusCode)
		}
		sum := sha256.Sum256(body)
		if want := hex.EncodeToString(sum[:]); up.Key != want {
			t.Fatalf("matrix %d: key = %s, want content hash %s", mi, up.Key, want)
		}
		if !up.Cached {
			t.Errorf("matrix %d: not cached", mi)
		}
		if up.Rows != a.Rows || up.NNZ != a.NNZ() {
			t.Errorf("matrix %d: shape %dx? nnz %d, want %d / %d", mi, up.Rows, up.NNZ, a.Rows, a.NNZ())
		}

		x := testVector(a.Cols, int64(mi)+3)
		res2, raw := postSpMV(t, ts, up.Key, x)
		if res2.StatusCode != http.StatusOK {
			t.Fatalf("matrix %d: spmv status %d: %s", mi, res2.StatusCode, raw)
		}
		y := decodeY(t, raw)
		ref := make([]float64, a.Rows)
		if err := spmv.Serial(a, x, ref); err != nil {
			t.Fatal(err)
		}
		wantClose(t, y, ref)

		// Byte-identity, cached plan vs itself: repeating the request
		// reproduces the response exactly.
		res2b, raw2b := postSpMV(t, ts, up.Key, x)
		if res2b.StatusCode != http.StatusOK || !bytes.Equal(raw2b, raw) {
			t.Fatalf("matrix %d: repeated spmv differs (status %d)", mi, res2b.StatusCode)
		}

		// Byte-identity, cached vs freshly recomputed: a second daemon that
		// reorders the same bytes from scratch serves the identical response.
		srv2 := mustNew(t, Config{Threads: 2, Obs: newTestObs()})
		ts2 := httptest.NewServer(srv2.Handler())
		if res, up2 := postUpload(t, ts2, body); res.StatusCode != http.StatusOK || up2.Ordering != up.Ordering {
			t.Fatalf("matrix %d: recompute upload %d ordering %q vs %q", mi, res.StatusCode, up2.Ordering, up.Ordering)
		}
		resR, rawR := postSpMV(t, ts2, up.Key, x)
		if resR.StatusCode != http.StatusOK || !bytes.Equal(rawR, raw) {
			t.Fatalf("matrix %d: recomputed spmv differs from cached (status %d)\ncached:     %.80s\nrecomputed: %.80s",
				mi, resR.StatusCode, raw, rawR)
		}
		ts2.Close()

		// Re-uploading identical bytes answers from the cache.
		res3, up3 := postUpload(t, ts, body)
		if res3.StatusCode != http.StatusOK || !up3.Deduplicated {
			t.Errorf("matrix %d: duplicate upload status %d dedup %v", mi, res3.StatusCode, up3.Deduplicated)
		}

		// Metadata probe.
		mres, err := ts.Client().Get(ts.URL + "/matrices/" + up.Key)
		if err != nil {
			t.Fatal(err)
		}
		var meta Meta
		if err := json.NewDecoder(mres.Body).Decode(&meta); err != nil {
			t.Fatal(err)
		}
		mres.Body.Close()
		if meta.Key != up.Key || meta.NNZ != a.NNZ() || meta.Ordering != up.Ordering {
			t.Errorf("matrix %d: meta %+v disagrees with upload %+v", mi, meta, up)
		}
	}
}

// TestRectangularServed: non-square uploads cannot use the reordering
// pipeline (it requires A square); they must still be served, unordered.
func TestRectangularServed(t *testing.T) {
	// A 60x40 rectangular pattern with distinct columns per row.
	coo := sparse.NewCOO(60, 40, 0)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		for k := 0; k < 4; k++ {
			coo.Append(i, (i*7+k*11)%40, rng.NormFloat64())
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	srv := mustNew(t, Config{Threads: 2, Obs: newTestObs()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, up := postUpload(t, ts, mmBytes(t, a))
	if res.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", res.StatusCode)
	}
	if up.Ordering != string(reorder.Original) {
		t.Errorf("rectangular matrix ordered with %q, want original", up.Ordering)
	}
	x := testVector(a.Cols, 11)
	res2, raw := postSpMV(t, ts, up.Key, x)
	if res2.StatusCode != http.StatusOK {
		t.Fatalf("spmv status %d: %s", res2.StatusCode, raw)
	}
	y := decodeY(t, raw)
	ref := make([]float64, a.Rows)
	if err := spmv.Serial(a, x, ref); err != nil {
		t.Fatal(err)
	}
	wantClose(t, y, ref)
}

// TestClassifiedFailures pins the HTTP mapping of the failure taxonomy:
// bad input 400/error, unknown key 404/error, wrong-length x 400/error,
// injected decode fault 400/error, injected SpMV panic 500/panic, deadline
// expiry 504/timeout.
func TestClassifiedFailures(t *testing.T) {
	srv := mustNew(t, Config{Threads: 1, Obs: newTestObs()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Garbage upload.
	res, _ := ts.Client().Post(ts.URL+"/matrices", "text/plain", strings.NewReader("not a matrix"))
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	wantClass(t, res, raw, http.StatusBadRequest, experiments.FailError)

	// Unknown key.
	res2, raw2 := postSpMV(t, ts, "deadbeef", []float64{1})
	wantClass(t, res2, raw2, http.StatusNotFound, experiments.FailError)

	// Real upload for the x-length and fault cases.
	a := gen.Banded(50, 3, 1, 2)
	body := mmBytes(t, a)
	resUp, up := postUpload(t, ts, body)
	if resUp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resUp.StatusCode)
	}
	res3, raw3 := postSpMV(t, ts, up.Key, []float64{1, 2, 3})
	wantClass(t, res3, raw3, http.StatusBadRequest, experiments.FailError)

	// Injected decode fault -> classified 400, keyed by content hash.
	other := mmBytes(t, gen.Banded(30, 2, 1, 9))
	sum := sha256.Sum256(other)
	okey := hex.EncodeToString(sum[:])
	faultinject.Activate(faultinject.NewPlan(1,
		faultinject.Rule{Point: faultinject.ServerDecode, Mode: faultinject.ModeError, Rate: 1}))
	res4, _ := ts.Client().Post(ts.URL+"/matrices", "text/plain", bytes.NewReader(other))
	raw4, _ := io.ReadAll(res4.Body)
	res4.Body.Close()
	faultinject.Deactivate()
	wantClass(t, res4, raw4, http.StatusBadRequest, experiments.FailError)
	if srv.Cache().Contains(okey) {
		t.Error("decode-faulted upload landed in the cache")
	}

	// Injected panic on the SpMV path -> contained, classified, JSON.
	faultinject.Activate(faultinject.NewPlan(1,
		faultinject.Rule{Point: faultinject.ServerSpMV, Mode: faultinject.ModePanic, Rate: 1}))
	res5, raw5 := postSpMV(t, ts, up.Key, testVector(a.Cols, 1))
	faultinject.Deactivate()
	wantClass(t, res5, raw5, http.StatusInternalServerError, experiments.FailPanic)

	// Deadline: X-Deadline-Ms of 1ms with a 150ms injected delay before
	// the reorder -> the context expires inside the pipeline -> 504.
	faultinject.Activate(faultinject.NewPlan(1,
		faultinject.Rule{Point: faultinject.ServerReorder, Mode: faultinject.ModeDelay, Rate: 1, Param: 150}))
	req, err := http.NewRequest("POST", ts.URL+"/matrices", bytes.NewReader(other))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Deadline-Ms", "1")
	res6, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw6, _ := io.ReadAll(res6.Body)
	res6.Body.Close()
	faultinject.Deactivate()
	wantClass(t, res6, raw6, http.StatusGatewayTimeout, experiments.FailTimeout)

	// The first upload still serves correctly after all that.
	res7, raw7 := postSpMV(t, ts, up.Key, testVector(a.Cols, 1))
	if res7.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos spmv status %d: %s", res7.StatusCode, raw7)
	}
}

// TestShedQueueFull: with the only work slot held and no queue, a new
// request is shed with 429 + Retry-After, and /readyz reports overload
// once the governor saturates.
func TestShedQueueFull(t *testing.T) {
	srv := mustNew(t, Config{Threads: 1, MaxInflight: 1, Queue: -1, Obs: newTestObs()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hold the single work slot; the next arrival must wait...
	srv.slots <- struct{}{}
	body := mmBytes(t, gen.Banded(40, 2, 1, 3))
	done := make(chan int, 1)
	go func() {
		res, err := ts.Client().Post(ts.URL+"/matrices", "text/plain", bytes.NewReader(body))
		if err != nil {
			done <- -1
			return
		}
		res.Body.Close()
		done <- res.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.queued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// ...and a second arrival beyond the bound is shed immediately.
	res, err := ts.Client().Post(ts.URL+"/matrices", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	wantClass(t, res, raw, http.StatusTooManyRequests, experiments.FailResource)
	if res.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	shed := srv.cfg.Obs.Metrics.Counter("sparseorder_server_shed_total",
		"requests shed with 429 because the queue or memory governor was saturated").Value()
	if shed == 0 {
		t.Error("shed counter stayed zero")
	}

	// Release the slot; the queued request completes normally.
	<-srv.slots
	if code := <-done; code != http.StatusOK {
		t.Fatalf("queued request finished %d, want 200", code)
	}
}

// TestGovernorShedsUploads: a saturated memory governor sheds uploads with
// 429 and flips /readyz to overloaded, and an upload whose working set can
// never fit is refused permanently with 413/resource.
func TestGovernorShedsUploads(t *testing.T) {
	srv := mustNew(t, Config{Threads: 1, MemBudget: 1 << 20, Obs: newTestObs()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	readyz := func() int {
		res, err := ts.Client().Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
		return res.StatusCode
	}
	if code := readyz(); code != http.StatusOK {
		t.Fatalf("/readyz = %d before load", code)
	}

	// Hold the whole budget: uploads must shed, readyz must flip.
	adm, err := srv.Governor().TryAcquire("test-hold", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	body := mmBytes(t, gen.Banded(100, 3, 1, 4))
	res, err := ts.Client().Post(ts.URL+"/matrices", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	wantClass(t, res, raw, http.StatusTooManyRequests, experiments.FailResource)
	if code := readyz(); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d under saturation, want 503", code)
	}
	adm.Release()

	if code := readyz(); code != http.StatusOK {
		t.Fatalf("/readyz = %d after release", code)
	}
	res2, _ := postUpload(t, ts, body)
	if res2.StatusCode != http.StatusOK {
		t.Fatalf("upload after release = %d", res2.StatusCode)
	}

	// A matrix whose transient working set exceeds the whole budget is a
	// permanent resource refusal, not a shed.
	big := mmBytes(t, gen.Grid2D(260, 260)) // ~67k rows, ~336k nnz: est >> 1MiB
	res3, err := ts.Client().Post(ts.URL+"/matrices", "text/plain", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	raw3, _ := io.ReadAll(res3.Body)
	res3.Body.Close()
	wantClass(t, res3, raw3, http.StatusRequestEntityTooLarge, experiments.FailResource)
}

// TestHealthEndpoints: healthz stays 200 through drain (liveness), readyz
// flips 503 (acceptance); both report the drain in their body.
func TestHealthEndpoints(t *testing.T) {
	srv := mustNew(t, Config{Threads: 1, Obs: newTestObs()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, healthState) {
		res, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var st healthState
		if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return res.StatusCode, st
	}
	if code, st := get("/healthz"); code != 200 || st.Status != "ok" {
		t.Errorf("/healthz = %d %q", code, st.Status)
	}
	if code, st := get("/readyz"); code != 200 || st.Status != "ready" {
		t.Errorf("/readyz = %d %q", code, st.Status)
	}
	srv.BeginDrain()
	if code, st := get("/healthz"); code != 200 || st.Status != "draining" {
		t.Errorf("draining /healthz = %d %q, want 200 draining", code, st.Status)
	}
	if code, st := get("/readyz"); code != 503 || st.Status != "draining" {
		t.Errorf("draining /readyz = %d %q, want 503 draining", code, st.Status)
	}
}

// TestTelemetryMounted: the daemon's handler exposes the same telemetry
// surface as cmd/study -http, including the server's own request counters.
func TestTelemetryMounted(t *testing.T) {
	srv := mustNew(t, Config{Threads: 1, Obs: newTestObs()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, up := postUpload(t, ts, mmBytes(t, gen.Banded(30, 2, 1, 6))); up.Key == "" {
		t.Fatal("upload failed")
	}
	res, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"sparseorder_server_requests_total",
		"sparseorder_server_request_seconds",
		"sparseorder_server_cache_inserts_total",
		"sparseorder_server_cache_bytes",
		fmt.Sprintf("route=%q", "upload"),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if res, err := ts.Client().Get(ts.URL + "/debug/pprof/"); err != nil || res.StatusCode != 200 {
		t.Errorf("/debug/pprof/ = %v %v", res, err)
	} else {
		res.Body.Close()
	}
}
