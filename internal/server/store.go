package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparseorder/internal/faultinject"
	"sparseorder/internal/fsutil"
	"sparseorder/internal/obs"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
)

// storeVersion is bumped whenever the entry layout changes; a version
// mismatch quarantines the entry as stale rather than misreading it.
const storeVersion = 1

// storeEntrySuffix is the filename suffix of persisted entries; anything
// else in the entries directory (temp debris, stray files) is not an
// entry and is never loaded.
const storeEntrySuffix = ".entry"

// Quarantine reason classification. Every entry that cannot be recovered
// is moved to quarantine/ with exactly one of these reasons, so an
// operator can tell a crashed write (truncated) from bit rot (checksum)
// from a config change (stale-version, config-mismatch) at a glance.
const (
	quarTruncated      = "truncated"       // file shorter than the header declares
	quarHeader         = "header"          // header line unparsable or not an entry header
	quarStaleVersion   = "stale-version"   // written by a different entry-format version
	quarConfigMismatch = "config-mismatch" // written under a different seed/threads binding
	quarKeyMismatch    = "key-mismatch"    // header key disagrees with the filename
	quarChecksum       = "checksum"        // payload SHA-256 does not match the header
	quarInvalid        = "invalid"         // payload decodes to an invalid CSR or perm
	quarUnreadable     = "unreadable"      // the file could not be read at all
)

// storeHeader is the first line of every entry file: a JSON object binding
// the payload to its identity (content-hash key), its shape, the exact
// daemon configuration whose ordering decisions it captures (seed and
// SpMV thread count — the inputs of Predict and the partitioners), and
// the payload checksum. ReorderWorkers deliberately does NOT bind: the
// parallel-reordering determinism contract makes plans byte-identical at
// any worker count.
type storeHeader struct {
	Kind           string  `json:"kind"`
	Version        int     `json:"version"`
	Key            string  `json:"key"`
	Algorithm      string  `json:"algorithm"`
	Rows           int     `json:"rows"`
	Cols           int     `json:"cols"`
	NNZ            int     `json:"nnz"`
	Seed           int64   `json:"seed"`
	Threads        int     `json:"threads"`
	ReorderSeconds float64 `json:"reorder_seconds"`
	SavedUnixNano  int64   `json:"saved_unix_nano"`
	PayloadBytes   int64   `json:"payload_bytes"`
	PayloadSHA256  string  `json:"payload_sha256"`
}

// storeHeaderKind is the Kind value of a well-formed entry header.
const storeHeaderKind = "sparseorder-store-entry"

// payloadLen is the exact byte length of an entry payload for a matrix
// shape: RowPtr as int64 (rows+1), ColIdx as int32 (nnz), Val as float64
// (nnz), then the new-to-old perm as int64 (rows). It coincides with
// EntryBytes, so the governor admission for a recovered entry equals its
// on-disk payload size.
func payloadLen(rows, nnz int) int64 {
	return 8*int64(rows+1) + 12*int64(nnz) + 8*int64(rows)
}

// accessRecord is one line of the store's access log: a best-effort
// last-access stamp used only to restore LRU order across restarts.
type accessRecord struct {
	Key string `json:"key"`
	T   int64  `json:"t"` // unix nanoseconds
}

// store is the durable content-addressed plan store behind -store: every
// admitted upload is persisted as one checksummed, versioned entry file
// written atomically (fsutil.WriteFileAtomic, parent directory fsynced),
// keyed by the upload's SHA-256 content hash. The layout under the root:
//
//	entries/<key>.entry      one file per persisted (matrix, ordering, perm)
//	quarantine/<name>        entries recovery rejected, plus <name>.reason
//	access.log               JSONL last-access stamps (best effort, no fsync)
//
// Entry files are immutable once written (atomic replace on re-upload),
// so a crash at any instant leaves each entry either absent, previous, or
// complete — never torn. The access log is the one deliberately
// non-durable file: it only orders recovery, so a lost tail merely
// degrades LRU fidelity, and unparsable lines are skipped, not fatal.
//
// A nil *store no-ops every method, so the storeless daemon pays only a
// nil check per call site.
type store struct {
	root       string
	entriesDir string
	quarDir    string
	seed       int64
	threads    int
	interval   time.Duration // min gap between persisted stamps per key
	logf       func(format string, args ...any)

	bytes   atomic.Int64 // on-disk entry bytes (headers + payloads)
	entries atomic.Int64 // entry files on disk

	accessMu  sync.Mutex
	accessF   *os.File
	lastStamp map[string]int64

	reg          *obs.Registry // for lazily-labelled quarantine counters
	writesC      *obs.Counter  // sparseorder_server_store_writes_total
	writeErrC    *obs.Counter  // sparseorder_server_store_write_errors_total
	recoveredC   *obs.Counter  // sparseorder_server_store_recovered_total
	skippedC     *obs.Counter  // sparseorder_server_store_skipped_total
	bytesG       *obs.Gauge    // sparseorder_server_store_bytes
	entriesG     *obs.Gauge    // sparseorder_server_store_entries
	recoverySecG *obs.Gauge    // sparseorder_server_store_recovery_seconds
}

// openStore creates or reopens the store rooted at dir. Temp debris from
// writes a crash interrupted (".<name>.tmp-*" files) is removed — the
// atomic-write contract makes such files meaningless by construction.
func openStore(dir string, seed int64, threads int, interval time.Duration, o *obs.Obs, logf func(string, ...any)) (*store, error) {
	s := &store{
		root:       dir,
		entriesDir: filepath.Join(dir, "entries"),
		quarDir:    filepath.Join(dir, "quarantine"),
		seed:       seed,
		threads:    threads,
		interval:   interval,
		logf:       logf,
		lastStamp:  map[string]int64{},
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	for _, d := range []string{s.entriesDir, s.quarDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("server: store: %w", err)
		}
	}
	// Sweep temp debris left by a crash mid-atomic-write.
	if ents, err := os.ReadDir(s.entriesDir); err == nil {
		for _, de := range ents {
			if name := de.Name(); strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-") {
				os.Remove(filepath.Join(s.entriesDir, name))
			}
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, "access.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: store access log: %w", err)
	}
	s.accessF = f
	if o != nil && o.Metrics != nil {
		r := o.Metrics
		s.reg = r
		s.writesC = r.Counter("sparseorder_server_store_writes_total",
			"entries persisted to the plan store")
		s.writeErrC = r.Counter("sparseorder_server_store_write_errors_total",
			"plan store writes that failed; the upload still served, durability degraded")
		s.recoveredC = r.Counter("sparseorder_server_store_recovered_total",
			"store entries rebuilt into the plan cache during warm-restart recovery")
		s.skippedC = r.Counter("sparseorder_server_store_skipped_total",
			"store entries left on disk unloaded because the memory governor or entry bound was full")
		s.bytesG = r.Gauge("sparseorder_server_store_bytes",
			"bytes of persisted entries on disk")
		s.entriesG = r.Gauge("sparseorder_server_store_entries",
			"entry files on disk")
		s.recoverySecG = r.Gauge("sparseorder_server_store_recovery_seconds",
			"wall time of the last warm-restart recovery")
	}
	return s, nil
}

// close flushes and closes the access log; entry files need no teardown.
func (s *store) close() error {
	if s == nil {
		return nil
	}
	s.accessMu.Lock()
	defer s.accessMu.Unlock()
	if s.accessF == nil {
		return nil
	}
	err := s.accessF.Close()
	s.accessF = nil
	return err
}

// quarantinedCounter resolves the per-reason quarantine counter; the
// quarantine path is cold, so a registry lookup per call is fine.
func (s *store) quarantinedCounter(reason string) *obs.Counter {
	if s.reg == nil {
		return nil
	}
	return s.reg.Counter("sparseorder_server_store_quarantined_total",
		"store entries moved to quarantine/ during recovery, by classified reason",
		obs.Label{Key: "reason", Value: reason})
}

func (s *store) entryPath(key string) string {
	return filepath.Join(s.entriesDir, key+storeEntrySuffix)
}

// has reports whether an entry file exists for key. It proves presence,
// not validity — validity is recovery's job.
func (s *store) has(key string) bool {
	if s == nil {
		return false
	}
	_, err := os.Stat(s.entryPath(key))
	return err == nil
}

// encodeEntry serialises an entry: the JSON header line, then the binary
// little-endian payload (RowPtr int64, ColIdx int32, Val float64, Perm
// int64). Values round-trip through their exact bit patterns, so a
// recovered entry serves byte-identical SpMV responses.
func (s *store) encodeEntry(e *entry, now int64) []byte {
	payload := make([]byte, payloadLen(e.rows, e.nnz))
	off := 0
	for _, v := range e.mat.RowPtr {
		binary.LittleEndian.PutUint64(payload[off:], uint64(v))
		off += 8
	}
	for _, v := range e.mat.ColIdx {
		binary.LittleEndian.PutUint32(payload[off:], uint32(v))
		off += 4
	}
	for _, v := range e.mat.Val {
		// Exact IEEE-754 bit pattern: recovered values are byte-identical.
		binary.LittleEndian.PutUint64(payload[off:], math.Float64bits(v))
		off += 8
	}
	for _, v := range e.perm {
		binary.LittleEndian.PutUint64(payload[off:], uint64(v))
		off += 8
	}
	sum := sha256.Sum256(payload)
	h := storeHeader{
		Kind:           storeHeaderKind,
		Version:        storeVersion,
		Key:            e.key,
		Algorithm:      string(e.alg),
		Rows:           e.rows,
		Cols:           e.cols,
		NNZ:            e.nnz,
		Seed:           s.seed,
		Threads:        s.threads,
		ReorderSeconds: e.reorderSeconds,
		SavedUnixNano:  now,
		PayloadBytes:   int64(len(payload)),
		PayloadSHA256:  hex.EncodeToString(sum[:]),
	}
	hb, err := json.Marshal(h)
	if err != nil {
		// The header is a struct of scalars; Marshal cannot fail on it.
		panic(err)
	}
	return append(append(hb, '\n'), payload...)
}

// put persists an entry durably under its content-hash key, replacing any
// previous file atomically. A failure leaves either the previous entry or
// none — never a torn file — and is reported so the caller can log and
// count it; serving continues either way (durability degrades to the cold
// path on the next restart, never to a wrong answer).
//
// Fault points: store/write fires before anything is serialised;
// store/fsync fires after the atomic write completed, modelling a
// durability barrier whose failure leaves a complete entry of unknown
// persistence; store/corrupt fires after a successful write and flips one
// payload byte on disk — the silent-corruption case the recovery checksum
// exists for.
func (s *store) put(e *entry) error {
	if s == nil {
		return nil
	}
	if err := faultinject.Check(faultinject.StoreWrite, e.key); err != nil {
		if s.writeErrC != nil {
			s.writeErrC.Inc()
		}
		return err
	}
	path := s.entryPath(e.key)
	var prevSize int64
	prev := false
	if fi, err := os.Stat(path); err == nil {
		prevSize, prev = fi.Size(), true
	}
	data := s.encodeEntry(e, time.Now().UnixNano())
	if err := fsutil.WriteFileAtomic(path, data, 0o644); err != nil {
		if s.writeErrC != nil {
			s.writeErrC.Inc()
		}
		return err
	}
	if err := faultinject.Check(faultinject.StoreSync, e.key); err != nil {
		// The entry is on disk in full; only its durability is in doubt.
		// Report the failure so the daemon does not claim a persisted plan.
		if s.writeErrC != nil {
			s.writeErrC.Inc()
		}
		return err
	}
	s.bytes.Add(int64(len(data)) - prevSize)
	if !prev {
		s.entries.Add(1)
	}
	s.setGauges()
	if s.writesC != nil {
		s.writesC.Inc()
	}
	if err := faultinject.Check(faultinject.StoreCorrupt, e.key); err != nil {
		// Deterministically corrupt the just-written entry: flip one byte
		// in the middle of the payload. The daemon does NOT see an error —
		// this is silent bit rot, discovered only by the recovery checksum.
		s.flipPayloadByte(path, data)
	}
	return nil
}

// flipPayloadByte simulates silent media corruption of a written entry.
func (s *store) flipPayloadByte(path string, data []byte) {
	headerLen := bytes.IndexByte(data, '\n') + 1
	off := int64(headerLen) + int64(len(data)-headerLen)/2
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return
	}
	b[0] ^= 0xff
	f.WriteAt(b[:], off)
	f.Sync()
}

func (s *store) setGauges() {
	if s.bytesG != nil {
		s.bytesG.Set(float64(s.bytes.Load()))
	}
	if s.entriesG != nil {
		s.entriesG.Set(float64(s.entries.Load()))
	}
}

// touch appends a last-access stamp for key to the access log, throttled
// to one persisted stamp per key per interval. Best effort by design: no
// fsync, errors only logged — losing stamps costs LRU fidelity on the
// next restart, nothing else.
func (s *store) touch(key string) {
	if s == nil {
		return
	}
	now := time.Now().UnixNano()
	s.accessMu.Lock()
	defer s.accessMu.Unlock()
	if s.accessF == nil {
		return
	}
	if last, ok := s.lastStamp[key]; ok && now-last < int64(s.interval) {
		return
	}
	line, err := json.Marshal(accessRecord{Key: key, T: now})
	if err != nil {
		return
	}
	if _, err := s.accessF.Write(append(line, '\n')); err != nil {
		s.logf("store: access stamp for %.12s: %v", key, err)
		return
	}
	s.lastStamp[key] = now
}

// readAccessStamps folds the access log into the freshest stamp per key.
// The log is best-effort: a torn tail or a garbage line is skipped, never
// fatal — the worst case is recovering in saved-time order.
func (s *store) readAccessStamps() map[string]int64 {
	out := map[string]int64{}
	data, err := os.ReadFile(filepath.Join(s.root, "access.log"))
	if err != nil {
		return out
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var rec accessRecord
		if json.Unmarshal(line, &rec) != nil || rec.Key == "" {
			continue
		}
		if rec.T > out[rec.Key] {
			out[rec.Key] = rec.T
		}
	}
	return out
}

// compactAccess atomically rewrites the access log to one line per
// surviving key and reopens the append handle, so the log cannot grow
// without bound across restarts.
func (s *store) compactAccess(stamps map[string]int64, keys []string) {
	var buf bytes.Buffer
	for _, k := range keys {
		if t := stamps[k]; t > 0 {
			line, err := json.Marshal(accessRecord{Key: k, T: t})
			if err != nil {
				continue
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
	}
	path := filepath.Join(s.root, "access.log")
	if err := fsutil.WriteFileAtomic(path, buf.Bytes(), 0o644); err != nil {
		s.logf("store: compact access log: %v", err)
		return
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.logf("store: reopen access log: %v", err)
		return
	}
	s.accessMu.Lock()
	if s.accessF != nil {
		s.accessF.Close()
	}
	s.accessF = f
	s.accessMu.Unlock()
}

// quarantine moves an entry file out of the recovery set into
// quarantine/, alongside a <name>.reason file recording the classified
// reason and detail. Quarantine never fails the boot: if even the rename
// fails, the file is left behind and recovery carries on — it will be
// re-classified on the next restart.
func (s *store) quarantine(path, reason, detail string) {
	base := filepath.Base(path)
	dst := filepath.Join(s.quarDir, base)
	if err := os.Rename(path, dst); err != nil {
		s.logf("store: quarantine %s (%s): %v", base, reason, err)
		return
	}
	fsutil.SyncDir(s.entriesDir)
	doc, err := json.Marshal(struct {
		Reason string `json:"reason"`
		Detail string `json:"detail"`
		T      int64  `json:"quarantined_unix_nano"`
	}{reason, detail, time.Now().UnixNano()})
	if err == nil {
		if werr := fsutil.WriteFileAtomic(dst+".reason", append(doc, '\n'), 0o644); werr != nil {
			s.logf("store: quarantine reason for %s: %v", base, werr)
		}
	}
	if c := s.quarantinedCounter(reason); c != nil {
		c.Inc()
	}
	s.logf("store: quarantined %s: %s (%s)", base, reason, detail)
}

// storeCandidate is one scanned entry between the header pass and the
// payload load: identity, shape, and the stamp that orders recovery.
type storeCandidate struct {
	path   string
	key    string
	header storeHeader
	stamp  int64 // max(saved, last access)
	size   int64 // file size on disk
}

// headerReadLimit bounds the first read of an entry file; a well-formed
// header is a few hundred bytes, so a missing newline within the limit
// means the header (or the whole file) is damaged.
const headerReadLimit = 16 << 10

// scanEntry reads and classifies one entry file's header. It returns the
// candidate, or a non-empty quarantine reason.
func (s *store) scanEntry(path string) (storeCandidate, string, string) {
	c := storeCandidate{path: path}
	fi, err := os.Stat(path)
	if err != nil {
		return c, quarUnreadable, err.Error()
	}
	c.size = fi.Size()
	f, err := os.Open(path)
	if err != nil {
		return c, quarUnreadable, err.Error()
	}
	defer f.Close()
	buf := make([]byte, headerReadLimit)
	n, _ := f.Read(buf)
	buf = buf[:n]
	nl := bytes.IndexByte(buf, '\n')
	if nl < 0 {
		if c.size > headerReadLimit {
			return c, quarHeader, "no header line within the first 16KiB"
		}
		return c, quarTruncated, "file ends inside the header line"
	}
	var h storeHeader
	if err := json.Unmarshal(buf[:nl], &h); err != nil {
		return c, quarHeader, err.Error()
	}
	if h.Kind != storeHeaderKind {
		return c, quarHeader, fmt.Sprintf("kind %q", h.Kind)
	}
	if h.Version != storeVersion {
		return c, quarStaleVersion, fmt.Sprintf("entry version %d, daemon version %d", h.Version, storeVersion)
	}
	if h.Seed != s.seed || h.Threads != s.threads {
		return c, quarConfigMismatch, fmt.Sprintf("entry bound to seed=%d threads=%d, daemon runs seed=%d threads=%d",
			h.Seed, h.Threads, s.seed, s.threads)
	}
	wantKey := strings.TrimSuffix(filepath.Base(path), storeEntrySuffix)
	if h.Key != wantKey {
		return c, quarKeyMismatch, fmt.Sprintf("header key %.12s..., filename key %.12s...", h.Key, wantKey)
	}
	if h.Rows < 0 || h.Cols < 0 || h.NNZ < 0 ||
		h.PayloadBytes != payloadLen(h.Rows, h.NNZ) {
		return c, quarInvalid, fmt.Sprintf("declared payload %d bytes, shape %dx%d nnz %d implies %d",
			h.PayloadBytes, h.Rows, h.Cols, h.NNZ, payloadLen(h.Rows, h.NNZ))
	}
	if c.size != int64(nl+1)+h.PayloadBytes {
		return c, quarTruncated, fmt.Sprintf("file is %d bytes, header+payload need %d",
			c.size, int64(nl+1)+h.PayloadBytes)
	}
	c.key = h.Key
	c.header = h
	c.stamp = h.SavedUnixNano
	return c, "", ""
}

// loadEntry reads, verifies and decodes one admitted candidate into a
// cache entry. It returns a non-empty quarantine reason on any mismatch:
// a flipped byte, a truncation raced in after the scan, or a payload that
// decodes to an invalid matrix. The store/read fault point fires first,
// keyed by the entry's content hash.
func (s *store) loadEntry(c storeCandidate) (*entry, string, string) {
	if err := faultinject.Check(faultinject.StoreRead, c.key); err != nil {
		return nil, quarUnreadable, err.Error()
	}
	data, err := os.ReadFile(c.path)
	if err != nil {
		return nil, quarUnreadable, err.Error()
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 || int64(len(data)-nl-1) != c.header.PayloadBytes {
		return nil, quarTruncated, fmt.Sprintf("payload is %d bytes, header declares %d",
			max(len(data)-nl-1, 0), c.header.PayloadBytes)
	}
	payload := data[nl+1:]
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != c.header.PayloadSHA256 {
		return nil, quarChecksum, fmt.Sprintf("payload sha256 %.12s..., header declares %.12s...",
			got, c.header.PayloadSHA256)
	}
	h := c.header
	alg := reorder.Algorithm(h.Algorithm)
	known := false
	for _, a := range reorder.AllOrderings {
		if alg == a {
			known = true
			break
		}
	}
	if !known {
		return nil, quarInvalid, fmt.Sprintf("unknown ordering %q", h.Algorithm)
	}
	mat := &sparse.CSR{
		Rows:   h.Rows,
		Cols:   h.Cols,
		RowPtr: make([]int, h.Rows+1),
		ColIdx: make([]int32, h.NNZ),
		Val:    make([]float64, h.NNZ),
	}
	perm := make(sparse.Perm, h.Rows)
	off := 0
	for i := range mat.RowPtr {
		mat.RowPtr[i] = int(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	for i := range mat.ColIdx {
		mat.ColIdx[i] = int32(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
	}
	for i := range mat.Val {
		mat.Val[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	for i := range perm {
		perm[i] = int(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	if err := mat.Validate(); err != nil {
		return nil, quarInvalid, err.Error()
	}
	if err := perm.Validate(); err != nil {
		return nil, quarInvalid, err.Error()
	}
	return &entry{
		key: h.Key, alg: alg, mat: mat, perm: perm,
		rows: h.Rows, cols: h.Cols, nnz: h.NNZ,
		reorderSeconds: h.ReorderSeconds,
		bytes:          EntryBytes(h.Rows, h.NNZ),
	}, "", ""
}

// listEntries returns the paths of every entry file on disk, sorted by
// name for a deterministic scan order.
func (s *store) listEntries() ([]string, error) {
	ents, err := os.ReadDir(s.entriesDir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, de := range ents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), storeEntrySuffix) {
			continue
		}
		paths = append(paths, filepath.Join(s.entriesDir, de.Name()))
	}
	return paths, nil
}

