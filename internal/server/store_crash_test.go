package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"sparseorder/internal/faultinject"
	"sparseorder/internal/gen"
	"sparseorder/internal/sparse"
)

// TestStoreCrashRestartChaos is the PR's acceptance scenario: for every
// injected store fault point, a daemon populates the store while the
// fault fires, is then abandoned kill -9 style — no drain, no close, no
// cleanup, exactly the state a SIGKILL mid-upload or mid-store-write
// leaves on disk (torn temp files, missing entries, silently corrupted
// payloads) — and a fresh daemon restarts onto the same directory.
// After recovery:
//
//   - every recovered key serves a byte-identical SpMV response to a
//     never-restarted, never-faulted reference daemon;
//   - every unrecovered key 404s cleanly, and a re-upload then serves the
//     exact reference answer (degradation is a cache miss, never a wrong
//     answer or a crashed boot);
//   - corrupt entries sit in quarantine/ with a reason, never in the
//     serving path;
//   - the recovery books reconcile: recovered + quarantined + skipped =
//     entries scanned on disk, and the store metrics agree;
//   - the cache holds no leaked pins and no goroutines leak.
//
// Fault decisions hash (seed, point, key), so each scenario's damage
// pattern is deterministic.
func TestStoreCrashRestartChaos(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srcs := []*sparse.CSR{
		gen.Banded(80, 3, 1, 1),
		gen.Grid2D(9, 9),
		gen.RMAT(6, 4, 3),
		gen.Banded(64, 2, 0.8, 4),
		gen.Grid2D(8, 11),
	}
	threads := 2

	// Ground truth from a never-restarted, fault-free daemon.
	type target struct {
		body []byte
		key  string
		x    []float64
		want []byte
	}
	refCfg := Config{Threads: threads, Obs: newTestObs()}
	ref := mustNew(t, refCfg)
	rts := httptest.NewServer(ref.Handler())
	targets := make([]target, len(srcs))
	for i, a := range srcs {
		body := mmBytes(t, a)
		res, up := postUpload(t, rts, body)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("reference upload %d: %d", i, res.StatusCode)
		}
		x := testVector(a.Cols, int64(i))
		sres, raw := postSpMV(t, rts, up.Key, x)
		if sres.StatusCode != http.StatusOK {
			t.Fatalf("reference spmv %d: %d %s", i, sres.StatusCode, raw)
		}
		targets[i] = target{body: body, key: up.Key, x: x, want: raw}
	}
	rts.Close()

	scenarios := []struct {
		name string
		// writeRules fire while the first daemon populates the store.
		writeRules []faultinject.Rule
		// readRules fire during the restarted daemon's recovery.
		readRules []faultinject.Rule
	}{
		{name: "store-write-error", writeRules: []faultinject.Rule{
			{Point: faultinject.StoreWrite, Mode: faultinject.ModeENOSPC, Rate: 0.5}}},
		{name: "store-fsync-error", writeRules: []faultinject.Rule{
			{Point: faultinject.StoreSync, Mode: faultinject.ModeError, Rate: 0.5}}},
		{name: "store-silent-corruption", writeRules: []faultinject.Rule{
			{Point: faultinject.StoreCorrupt, Mode: faultinject.ModeError, Rate: 0.5}}},
		{name: "store-read-error-on-recovery", readRules: []faultinject.Rule{
			{Point: faultinject.StoreRead, Mode: faultinject.ModeError, Rate: 0.5}}},
		{name: "atomic-write-torn", writeRules: []faultinject.Rule{
			{Point: faultinject.FileWrite, Mode: faultinject.ModeShortWrite, Rate: 0.5}}},
		{name: "dirsync-lost", writeRules: []faultinject.Rule{
			{Point: faultinject.FileDirSync, Mode: faultinject.ModeENOSPC, Rate: 1}}},
		{name: "everything-at-once", writeRules: []faultinject.Rule{
			{Point: faultinject.StoreWrite, Mode: faultinject.ModeENOSPC, Rate: 0.4},
			{Point: faultinject.StoreSync, Mode: faultinject.ModeError, Rate: 0.4},
			{Point: faultinject.StoreCorrupt, Mode: faultinject.ModeError, Rate: 0.4},
			{Point: faultinject.FileWrite, Mode: faultinject.ModeShortWrite, Rate: 0.4},
		}},
	}

	for si, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			defer faultinject.Deactivate() // never leak a plan into the next subtest
			dir := t.TempDir()
			cfg := Config{Threads: threads, StoreDir: dir, StoreAccessInterval: -1, Obs: newTestObs()}

			// Populate under fire. The daemon is then abandoned without
			// drain or close — the in-process stand-in for kill -9.
			victim := mustNew(t, cfg)
			if _, err := victim.Recover(context.Background()); err != nil {
				t.Fatal(err)
			}
			if len(sc.writeRules) > 0 {
				faultinject.Activate(faultinject.NewPlan(int64(100+si), sc.writeRules...))
			}
			vts := httptest.NewServer(victim.Handler())
			persisted := map[string]bool{}
			for i, tg := range targets {
				res, up := postUpload(t, vts, tg.body)
				if res.StatusCode != http.StatusOK {
					t.Fatalf("victim upload %d: %d", i, res.StatusCode)
				}
				persisted[tg.key] = up.Persisted
			}
			vts.Close()
			requireFired(t, sc.writeRules)
			faultinject.Deactivate()
			// No victim.Close(), no drain: its state is whatever hit the disk.

			onDisk := len(entryFiles(t, dir))

			if len(sc.readRules) > 0 {
				faultinject.Activate(faultinject.NewPlan(int64(200+si), sc.readRules...))
			}
			srv := mustNew(t, cfg)
			st := mustRecover(t, srv)
			requireFired(t, sc.readRules)
			faultinject.Deactivate()

			if st.Scanned != onDisk {
				t.Errorf("scanned %d entries, %d were on disk", st.Scanned, onDisk)
			}
			recC, quarReasons := storeMetricSnapshot(srv)
			if int(recC) != st.Recovered {
				t.Errorf("recovered_total metric %d, stats say %d", recC, st.Recovered)
			}
			if quarReasons != st.Quarantined {
				t.Errorf("quarantined_total metrics sum to %d, stats say %d", quarReasons, st.Quarantined)
			}

			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()
			recovered := 0
			for i, tg := range targets {
				res, raw := postSpMV(t, ts, tg.key, tg.x)
				switch res.StatusCode {
				case http.StatusOK:
					recovered++
					if !bytes.Equal(raw, tg.want) {
						t.Errorf("spmv %d after restart differs from the reference daemon", i)
					}
				case http.StatusNotFound:
					// Unrecoverable: degrade to the cold path, then serve
					// the exact reference answer.
					if res2, _ := postUpload(t, ts, tg.body); res2.StatusCode != http.StatusOK {
						t.Fatalf("re-upload %d: %d", i, res2.StatusCode)
					}
					res3, raw3 := postSpMV(t, ts, tg.key, tg.x)
					if res3.StatusCode != http.StatusOK || !bytes.Equal(raw3, tg.want) {
						t.Errorf("spmv %d after re-upload: %d, bytes match %v",
							i, res3.StatusCode, bytes.Equal(raw3, tg.want))
					}
				default:
					t.Errorf("spmv %d after restart: unexpected status %d %s", i, res.StatusCode, raw)
				}
			}
			if recovered != st.Recovered {
				t.Errorf("%d keys served from recovery, stats claim %d", recovered, st.Recovered)
			}
			// Every entry the victim reported as durably persisted — put()
			// returned success, no injected corruption — must have survived.
			if sc.name != "store-silent-corruption" && sc.name != "everything-at-once" && len(sc.readRules) == 0 {
				for i, tg := range targets {
					if persisted[tg.key] && !srv.Cache().Contains(tg.key) {
						t.Errorf("key %d reported persisted but did not recover", i)
					}
				}
			}
			checkInvariants(t, srv.Cache(), true)
			srv.Close()
		})
	}
	waitGoroutines(t, baseline)
}

// requireFired fails the test if the armed faults missed everything — a
// scenario whose faults never fire proves nothing. Single-point scenarios
// must fire their point; the mixed scenario must fire at least two
// distinct points (earlier points can shadow later ones on the same key,
// so all-four is not guaranteed with a small corpus). Must be called
// before the plan is deactivated.
func requireFired(t *testing.T, rules []faultinject.Rule) {
	t.Helper()
	if len(rules) == 0 {
		return
	}
	fired := faultinject.Fired()
	if len(rules) == 1 {
		if fired[rules[0].Point] == 0 {
			t.Fatalf("fault %v armed but never fired; scenario is vacuous", rules[0].Point)
		}
		return
	}
	distinct := 0
	for _, r := range rules {
		if fired[r.Point] > 0 {
			distinct++
		}
	}
	if distinct < 2 {
		t.Fatalf("mixed-fault scenario fired %d distinct points, want >= 2", distinct)
	}
}

// storeMetricSnapshot reads the recovered counter and the sum of the
// per-reason quarantined counters from the daemon's registry.
func storeMetricSnapshot(s *Server) (recovered uint64, quarantined int) {
	recovered = s.store.recoveredC.Value()
	for _, reason := range []string{
		quarTruncated, quarHeader, quarStaleVersion, quarConfigMismatch,
		quarKeyMismatch, quarChecksum, quarInvalid, quarUnreadable,
	} {
		quarantined += int(s.store.quarantinedCounter(reason).Value())
	}
	return recovered, quarantined
}

// TestStoreCrashTempDebrisSwept covers the other kill -9 artifact: a temp
// file left by an atomic write the crash interrupted is swept when the
// store reopens and never mistaken for an entry.
func TestStoreCrashTempDebrisSwept(t *testing.T) {
	dir := t.TempDir()
	srvA := mustNew(t, storeCfg(dir))
	mustRecover(t, srvA)
	tsA := httptest.NewServer(srvA.Handler())
	res, up := postUpload(t, tsA, mmBytes(t, gen.Banded(60, 2, 1, 1)))
	if res.StatusCode != http.StatusOK {
		t.Fatalf("upload: %d", res.StatusCode)
	}
	tsA.Close()
	srvA.Close()

	// Plant the debris a SIGKILL mid-CreateTemp/Write leaves behind.
	debris := filepath.Join(dir, "entries", "."+up.Key+storeEntrySuffix+".tmp-123456")
	if err := os.WriteFile(debris, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}

	srvB := mustNew(t, storeCfg(dir))
	st := mustRecover(t, srvB)
	if st.Scanned != 1 || st.Recovered != 1 {
		t.Fatalf("recovery = %+v, want exactly the one real entry", st)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Errorf("temp debris survived store reopen: %v", err)
	}
}
