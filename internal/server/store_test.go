package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparseorder/internal/faultinject"
	"sparseorder/internal/gen"
	"sparseorder/internal/sparse"
)

// storeCfg is the daemon configuration the store tests share: a store
// under dir, unthrottled access stamps (so every SpMV moves the persisted
// LRU order), and fixed threads so entries bind to one config.
func storeCfg(dir string) Config {
	return Config{
		Threads:             2,
		StoreDir:            dir,
		StoreAccessInterval: -1,
		Obs:                 newTestObs(),
	}
}

// mustRecover runs a recovery pass, failing the test on error.
func mustRecover(t *testing.T, srv *Server) RecoveryStats {
	t.Helper()
	st, err := srv.Recover(context.Background())
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got := st.Recovered + st.Quarantined + st.Skipped; got != st.Scanned {
		t.Fatalf("recovery books don't reconcile: %d recovered + %d quarantined + %d skipped != %d scanned",
			st.Recovered, st.Quarantined, st.Skipped, st.Scanned)
	}
	return st
}

// entryFiles lists the entry filenames currently in the store directory.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, "entries"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), storeEntrySuffix) {
			names = append(names, de.Name())
		}
	}
	return names
}

// TestStoreRoundTripRestart is the durability happy path: upload through a
// store-backed daemon, restart onto the same directory, and every key
// serves a byte-identical SpMV response from the recovered plans — no
// re-upload, no re-reorder.
func TestStoreRoundTripRestart(t *testing.T) {
	dir := t.TempDir()
	srcs := []*sparse.CSR{
		gen.Banded(90, 3, 1, 1),
		gen.Grid2D(9, 9),
		gen.RMAT(6, 4, 3),
	}

	srvA := mustNew(t, storeCfg(dir))
	mustRecover(t, srvA) // empty store: flips recovering -> ready
	tsA := httptest.NewServer(srvA.Handler())

	type target struct {
		key  string
		x    []float64
		want []byte
	}
	targets := make([]target, len(srcs))
	for i, a := range srcs {
		res, up := postUpload(t, tsA, mmBytes(t, a))
		if res.StatusCode != http.StatusOK {
			t.Fatalf("upload %d: %d", i, res.StatusCode)
		}
		if !up.Persisted {
			t.Errorf("upload %d: not persisted with a store configured", i)
		}
		x := testVector(a.Cols, int64(i))
		sres, raw := postSpMV(t, tsA, up.Key, x)
		if sres.StatusCode != http.StatusOK {
			t.Fatalf("spmv %d: %d %s", i, sres.StatusCode, raw)
		}
		targets[i] = target{key: up.Key, x: x, want: raw}
	}
	tsA.Close()
	if err := srvA.Close(); err != nil {
		t.Fatal(err)
	}

	srvB := mustNew(t, storeCfg(dir))
	st := mustRecover(t, srvB)
	if st.Recovered != len(srcs) || st.Quarantined != 0 || st.Skipped != 0 {
		t.Fatalf("recovery = %+v, want %d recovered cleanly", st, len(srcs))
	}
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	for i, tg := range targets {
		res, raw := postSpMV(t, tsB, tg.key, tg.x)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("recovered spmv %d: %d %s", i, res.StatusCode, raw)
		}
		if !bytes.Equal(raw, tg.want) {
			t.Errorf("recovered spmv %d: response differs from pre-restart daemon", i)
		}
	}
	checkInvariants(t, srvB.Cache(), true)
}

// TestStoreReadyzRecovering pins the readiness state machine around
// recovery: with a store configured, /readyz answers 503 "recovering"
// (naming the entries remaining) until Recover completes, while /healthz
// stays 200 throughout.
func TestStoreReadyzRecovering(t *testing.T) {
	dir := t.TempDir()
	srvA := mustNew(t, storeCfg(dir))
	mustRecover(t, srvA)
	tsA := httptest.NewServer(srvA.Handler())
	if res, _ := postUpload(t, tsA, mmBytes(t, gen.Banded(60, 2, 1, 1))); res.StatusCode != http.StatusOK {
		t.Fatalf("upload: %d", res.StatusCode)
	}
	tsA.Close()
	srvA.Close()

	// Restarted daemon, recovery NOT yet run: the window cmd/serve covers
	// by starting Recover in a goroutine behind the live listener.
	srvB := mustNew(t, storeCfg(dir))
	defer mustRecover(t, srvB)
	ts := httptest.NewServer(srvB.Handler())
	defer ts.Close()

	get := func(path string) (int, healthState) {
		t.Helper()
		res, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var hs healthState
		if err := json.NewDecoder(res.Body).Decode(&hs); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return res.StatusCode, hs
	}
	if code, hs := get("/readyz"); code != http.StatusServiceUnavailable || hs.Status != "recovering" {
		t.Errorf("/readyz before recovery = %d %q, want 503 recovering", code, hs.Status)
	}
	if code, hs := get("/healthz"); code != http.StatusOK || hs.Status != "ok" {
		t.Errorf("/healthz during recovery = %d %q, want 200 ok", code, hs.Status)
	}

	mustRecover(t, srvB)
	if code, hs := get("/readyz"); code != http.StatusOK || hs.Status != "ready" {
		t.Errorf("/readyz after recovery = %d %q, want 200 ready", code, hs.Status)
	}
	if !srvA.Recovering() == false { // srvA finished long ago; sanity
		t.Error("finished daemon still recovering")
	}
}

// TestStoreQuarantineClassification damages persisted entries in four
// distinct ways — truncation, a flipped payload byte, a garbage header,
// and a stale format version — plus one entry bound to a different
// daemon config, and asserts recovery classifies each into quarantine/
// with the right reason, recovers the untouched rest, and never fails
// the boot. Quarantined keys 404; the books reconcile.
func TestStoreQuarantineClassification(t *testing.T) {
	dir := t.TempDir()
	srvA := mustNew(t, storeCfg(dir))
	mustRecover(t, srvA)
	tsA := httptest.NewServer(srvA.Handler())
	var keys []string
	for i := 0; i < 6; i++ {
		res, up := postUpload(t, tsA, mmBytes(t, gen.Banded(50+i*5, 2, 1, int64(i))))
		if res.StatusCode != http.StatusOK {
			t.Fatalf("upload %d: %d", i, res.StatusCode)
		}
		keys = append(keys, up.Key)
	}
	tsA.Close()
	srvA.Close()

	path := func(key string) string { return filepath.Join(dir, "entries", key+storeEntrySuffix) }
	read := func(key string) []byte {
		data, err := os.ReadFile(path(key))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	write := func(key string, data []byte) {
		if err := os.WriteFile(path(key), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rewriteHeader := func(key string, mutate func(*storeHeader)) {
		data := read(key)
		nl := bytes.IndexByte(data, '\n')
		var h storeHeader
		if err := json.Unmarshal(data[:nl], &h); err != nil {
			t.Fatal(err)
		}
		mutate(&h)
		hb, err := json.Marshal(h)
		if err != nil {
			t.Fatal(err)
		}
		write(key, append(append(hb, '\n'), data[nl+1:]...))
	}

	// keys[0]: truncated mid-payload (the kill -9 shape an atomic write
	// prevents, planted directly to prove detection is independent).
	data := read(keys[0])
	write(keys[0], data[:len(data)-7])
	// keys[1]: one payload byte flipped — silent bit rot.
	data = read(keys[1])
	data[len(data)-3] ^= 0x40
	write(keys[1], data)
	// keys[2]: header line replaced with garbage.
	data = read(keys[2])
	nl := bytes.IndexByte(data, '\n')
	write(keys[2], append([]byte("{not json"+strings.Repeat("!", nl-9)+"\n"), data[nl+1:]...))
	// keys[3]: written by a future format version.
	rewriteHeader(keys[3], func(h *storeHeader) { h.Version = storeVersion + 1 })
	// keys[4]: bound to a different daemon seed.
	rewriteHeader(keys[4], func(h *storeHeader) { h.Seed++ })
	// keys[5] stays intact.

	srvB := mustNew(t, storeCfg(dir))
	st := mustRecover(t, srvB)
	if st.Recovered != 1 || st.Quarantined != 5 || st.Skipped != 0 {
		t.Fatalf("recovery = %+v, want 1 recovered / 5 quarantined", st)
	}

	wantReasons := map[string]string{
		keys[0]: quarTruncated,
		keys[1]: quarChecksum,
		keys[2]: quarHeader,
		keys[3]: quarStaleVersion,
		keys[4]: quarConfigMismatch,
	}
	for key, want := range wantReasons {
		base := key + storeEntrySuffix
		if _, err := os.Stat(filepath.Join(dir, "quarantine", base)); err != nil {
			t.Errorf("%s: entry not in quarantine: %v", want, err)
		}
		doc, err := os.ReadFile(filepath.Join(dir, "quarantine", base+".reason"))
		if err != nil {
			t.Errorf("%s: no reason file: %v", want, err)
			continue
		}
		var r struct {
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(doc, &r); err != nil || r.Reason != want {
			t.Errorf("reason for %.12s = %q (%v), want %q", key, r.Reason, err, want)
		}
		if _, err := os.Stat(path(key)); !os.IsNotExist(err) {
			t.Errorf("%s: quarantined entry still in entries/", want)
		}
	}

	ts := httptest.NewServer(srvB.Handler())
	defer ts.Close()
	for key, reason := range wantReasons {
		if res, raw := postSpMV(t, ts, key, testVector(10, 1)); res.StatusCode != http.StatusNotFound {
			t.Errorf("quarantined (%s) key served: %d %s", reason, res.StatusCode, raw)
		}
	}
	checkInvariants(t, srvB.Cache(), true)
}

// TestStoreRecoveryLRUAndOverflow checks the governor-respecting side of
// recovery: with the restarted cache bounded below the store size, the
// most recently ACCESSED entries (per the persisted access stamps, not
// upload order) are recovered, the overflow entry is skipped — left on
// disk unloaded, not quarantined — and the rebuilt LRU list evicts in
// true recency order.
func TestStoreRecoveryLRUAndOverflow(t *testing.T) {
	dir := t.TempDir()
	srcs := []*sparse.CSR{
		gen.Banded(60, 2, 1, 1),
		gen.Banded(70, 2, 1, 2),
		gen.Banded(80, 2, 1, 3),
	}
	srvA := mustNew(t, storeCfg(dir))
	mustRecover(t, srvA)
	tsA := httptest.NewServer(srvA.Handler())
	keys := make([]string, len(srcs))
	for i, a := range srcs {
		res, up := postUpload(t, tsA, mmBytes(t, a))
		if res.StatusCode != http.StatusOK {
			t.Fatalf("upload %d: %d", i, res.StatusCode)
		}
		keys[i] = up.Key
	}
	// Access order: key2, then key0 — so recency is key0 > key2 > key1.
	for _, i := range []int{2, 0} {
		if res, raw := postSpMV(t, tsA, keys[i], testVector(srcs[i].Cols, 9)); res.StatusCode != http.StatusOK {
			t.Fatalf("spmv %d: %d %s", i, res.StatusCode, raw)
		}
	}
	tsA.Close()
	srvA.Close()

	cfg := storeCfg(dir)
	cfg.CacheEntries = 2
	srvB := mustNew(t, cfg)
	st := mustRecover(t, srvB)
	if st.Recovered != 2 || st.Skipped != 1 || st.Quarantined != 0 {
		t.Fatalf("recovery = %+v, want 2 recovered / 1 skipped", st)
	}
	// The skipped entry stays on disk, unloaded.
	if got := len(entryFiles(t, dir)); got != 3 {
		t.Errorf("%d entry files after recovery, want all 3 still on disk", got)
	}
	if srvB.Cache().Contains(keys[1]) {
		t.Error("least recently used key resident; stamps not honored")
	}
	for _, i := range []int{0, 2} {
		if !srvB.Cache().Contains(keys[i]) {
			t.Errorf("recently used key %d not recovered", i)
		}
	}
	// Rebuilt LRU order: front must be the most recently accessed (key0).
	c := srvB.Cache()
	c.mu.Lock()
	front := c.lru.Front().Value.(*entry).key
	c.mu.Unlock()
	if front != keys[0] {
		t.Errorf("LRU front is %.12s, want most recently accessed %.12s", front, keys[0])
	}
	checkInvariants(t, c, true)
}

// TestStoreRecoveryBudgetOverflow drives the byte-weighted admission
// path: a restart under a memory budget too small for the whole store
// recovers what fits in LRU order and skips the rest on disk.
func TestStoreRecoveryBudgetOverflow(t *testing.T) {
	dir := t.TempDir()
	srvA := mustNew(t, storeCfg(dir))
	mustRecover(t, srvA)
	tsA := httptest.NewServer(srvA.Handler())
	var total int64
	for i := 0; i < 3; i++ {
		res, up := postUpload(t, tsA, mmBytes(t, gen.Banded(100, 3, 1, int64(i))))
		if res.StatusCode != http.StatusOK {
			t.Fatalf("upload %d: %d", i, res.StatusCode)
		}
		total += EntryBytes(up.Rows, up.NNZ)
	}
	tsA.Close()
	srvA.Close()

	cfg := storeCfg(dir)
	cfg.MemBudget = total - 1 // not all three fit
	srvB := mustNew(t, cfg)
	st := mustRecover(t, srvB)
	if st.Skipped == 0 || st.Recovered == 0 || st.Quarantined != 0 {
		t.Fatalf("recovery = %+v, want a recovered/skipped split under the budget", st)
	}
	if got := len(entryFiles(t, dir)); got != 3 {
		t.Errorf("%d entry files after recovery, want 3", got)
	}
	checkInvariants(t, srvB.Cache(), true)
}

// TestStoreWriteFailureDegrades pins the persist-failure contract: with
// store/write faulted the upload still answers 200 (persisted=false, a
// durability loss, not a request failure), and the next upload of the
// same matrix — the dedupe path — heals the store once the fault clears.
func TestStoreWriteFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	srv := mustNew(t, storeCfg(dir))
	mustRecover(t, srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	faultinject.Activate(faultinject.NewPlan(1,
		faultinject.Rule{Point: faultinject.StoreWrite, Mode: faultinject.ModeENOSPC, Rate: 1}))
	defer faultinject.Deactivate()

	body := mmBytes(t, gen.Banded(70, 2, 1, 5))
	res, up := postUpload(t, ts, body)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("upload under store fault: %d", res.StatusCode)
	}
	if up.Persisted {
		t.Error("upload claims persisted while store/write faulted")
	}
	if srv.store.has(up.Key) {
		t.Error("entry file exists despite injected write failure")
	}

	// Fault cleared: the dedupe path re-persists the resident entry.
	faultinject.Deactivate()
	res, up = postUpload(t, ts, body)
	if res.StatusCode != http.StatusOK || !up.Deduplicated {
		t.Fatalf("dedupe upload: %d (dedup=%v)", res.StatusCode, up.Deduplicated)
	}
	if !up.Persisted {
		t.Error("dedupe upload did not self-heal the store")
	}
	if !srv.store.has(up.Key) {
		t.Error("entry file missing after self-heal")
	}
}
