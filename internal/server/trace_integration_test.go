package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"

	"sparseorder/internal/faultinject"
	"sparseorder/internal/gen"
	"sparseorder/internal/obs"
)

// TestReorderDelayAttributable is the PR's acceptance scenario: a request
// slowed by an injected server/reorder delay must be diagnosable from the
// observability surface alone — the client's request id is echoed, the
// trace in /debug/requests shows the reorder phase dominating, and the
// per-phase histogram on /metrics agrees.
func TestReorderDelayAttributable(t *testing.T) {
	const delayMs = 150
	faultinject.Activate(faultinject.NewPlan(1, faultinject.Rule{
		Point: faultinject.ServerReorder, Mode: faultinject.ModeDelay, Rate: 1, Param: delayMs,
	}))
	defer faultinject.Deactivate()

	o := newTestObs()
	o.Requests = obs.NewTraceRing(16)
	srv := mustNew(t, Config{Threads: 1, Obs: o})
	h := srv.Handler()

	const reqID = "diagnose-me-42"
	req := httptest.NewRequest(http.MethodPost, "/matrices", bytes.NewReader(mmBytes(t, gen.Banded(200, 4, 0.8, 1))))
	req.Header.Set(obs.RequestIDHeader, reqID)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("upload status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get(obs.RequestIDHeader); got != reqID {
		t.Fatalf("request id not echoed: got %q, want %q", got, reqID)
	}

	// Step 1: /debug/requests alone identifies the slow request and its
	// dominant phase.
	dw := httptest.NewRecorder()
	h.ServeHTTP(dw, httptest.NewRequest(http.MethodGet, "/debug/requests?view=slowest&format=json", nil))
	if dw.Code != http.StatusOK {
		t.Fatalf("/debug/requests status %d: %s", dw.Code, dw.Body.String())
	}
	var doc struct {
		Traces []obs.ReqTrace `json:"traces"`
	}
	if err := json.Unmarshal(dw.Body.Bytes(), &doc); err != nil {
		t.Fatalf("decode /debug/requests: %v\n%s", err, dw.Body.String())
	}
	var trace *obs.ReqTrace
	for i := range doc.Traces {
		if doc.Traces[i].ID == reqID {
			trace = &doc.Traces[i]
		}
	}
	if trace == nil {
		t.Fatalf("request %s not in slowest view: %s", reqID, dw.Body.String())
	}
	dom := trace.Dominant()
	if dom.Name != "reorder" {
		t.Errorf("dominant phase = %s (%.3fs), want reorder", dom.Name, dom.Seconds)
	}
	if want := float64(delayMs) / 1e3; dom.Seconds < want {
		t.Errorf("reorder phase %.3fs, want >= %.3fs (the injected delay)", dom.Seconds, want)
	}

	// Step 2: the per-phase histogram on /metrics tells the same story.
	mw := httptest.NewRecorder()
	h.ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	sum := histSum(t, mw.Body.String(), metricPhaseSeconds, `route="upload"`, `phase="reorder"`)
	if want := float64(delayMs) / 1e3; sum < want {
		t.Errorf("scraped reorder phase sum %.3fs, want >= %.3fs", sum, want)
	}
	qsum := histSum(t, mw.Body.String(), metricPhaseSeconds, `route="upload"`, `phase="queue_wait"`)
	if qsum > sum {
		t.Errorf("queue_wait sum %.3fs exceeds reorder sum %.3fs; attribution wrong", qsum, sum)
	}
}

// histSum extracts the _sum sample of one histogram series from a
// Prometheus text exposition.
func histSum(t *testing.T, text, family string, labels ...string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, family+"_sum{") {
			continue
		}
		ok := true
		for _, l := range labels {
			if !strings.Contains(line, l) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %s{%s} not found in:\n%s", family, strings.Join(labels, ","), text)
	return 0
}

// TestNilObsRequestPathAllocFree pins the PR 4 contract extended to the
// serving path: with cfg.Obs nil every tracing primitive the request path
// calls is a nil-receiver no-op that allocates nothing.
func TestNilObsRequestPathAllocFree(t *testing.T) {
	srv := mustNew(t, Config{Threads: 1})
	if len(srv.routes) != 0 {
		t.Fatalf("nil-Obs server built %d route sinks, want 0", len(srv.routes))
	}
	req := httptest.NewRequest(http.MethodPost, "/matrices", nil)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		rt := srv.startTrace(nil, "server/upload", req)
		_ = rt.id()
		t0 := rt.clock()
		rt.phase(phaseQueueWait, t0)
		rt.setKey("k")
		rt2 := traceFrom(ctx)
		rt2.phase(phaseSpMV, t0)
		rt.finish(http.StatusOK, "", "")
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing primitives allocate %.1f per request, want 0", allocs)
	}
	var rt *requestTrace
	if !rt.clock().IsZero() {
		t.Fatal("nil trace sampled the wall clock")
	}
}

// TestRunServingBench keeps the BENCH_obs serving section runnable: three
// modes, spmv succeeding in each, and the nilobs mode not slower than
// traced by more than the telemetry budget allows (sanity, not a perf
// gate — CI machines are noisy).
func TestRunServingBench(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark calibration is slow")
	}
	rows, err := RunServingBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d serving rows, want 3", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.NsPerOp <= 0 {
			t.Errorf("%s: ns/op %v", r.Name, r.NsPerOp)
		}
	}
	for _, want := range []string{"serve_spmv_nilobs", "serve_spmv_metrics", "serve_spmv_traced"} {
		if !names[want] {
			t.Errorf("missing serving row %s (got %v)", want, names)
		}
	}
}

// TestTraceRingSeesEveryOutcome drives success, client error and shed
// through the server and checks each lands in the ring with the right
// status and class.
func TestTraceRingSeesEveryOutcome(t *testing.T) {
	o := newTestObs()
	o.Requests = obs.NewTraceRing(16)
	srv := mustNew(t, Config{Threads: 1, Obs: o})
	h := srv.Handler()

	// Success.
	up := httptest.NewRecorder()
	h.ServeHTTP(up, httptest.NewRequest(http.MethodPost, "/matrices", bytes.NewReader(mmBytes(t, gen.Banded(200, 4, 0.8, 1)))))
	if up.Code != http.StatusOK {
		t.Fatalf("upload: %d", up.Code)
	}
	// Deterministic client error: malformed body.
	bad := httptest.NewRecorder()
	h.ServeHTTP(bad, httptest.NewRequest(http.MethodPost, "/matrices", strings.NewReader("not a matrix")))
	if bad.Code != http.StatusBadRequest {
		t.Fatalf("bad upload: %d", bad.Code)
	}
	// 404 on an unknown key.
	miss := httptest.NewRecorder()
	h.ServeHTTP(miss, httptest.NewRequest(http.MethodPost, "/spmv/nope", strings.NewReader(`{"x":[1]}`)))
	if miss.Code != http.StatusNotFound {
		t.Fatalf("missing key: %d", miss.Code)
	}

	recent := o.Requests.Snapshot(obs.ViewRecent, 10)
	if len(recent) != 3 {
		t.Fatalf("ring holds %d traces, want 3", len(recent))
	}
	errored := o.Requests.Snapshot(obs.ViewErrored, 10)
	if len(errored) != 2 {
		t.Fatalf("errored view holds %d, want 2", len(errored))
	}
	for _, tr := range errored {
		if tr.Class == "" {
			t.Errorf("errored trace %s (status %d) missing failure class", tr.ID, tr.Status)
		}
		if tr.Error == "" {
			t.Errorf("errored trace %s missing error message", tr.ID)
		}
	}
	// Every trace got a generated id and a latency.
	for _, tr := range recent {
		if tr.ID == "" || tr.Seconds <= 0 {
			t.Errorf("trace %+v missing id or latency", tr)
		}
	}
}

// TestAccessLogEmitted checks the JSONL access record rides the event log
// with request id, status and phases.
func TestAccessLogEmitted(t *testing.T) {
	dir := t.TempDir()
	ev, err := obs.OpenEventLog(dir + "/events.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	o := newTestObs()
	o.Events = ev
	o.Requests = obs.NewTraceRing(4)
	srv := mustNew(t, Config{Threads: 1, Obs: o})
	h := srv.Handler()

	req := httptest.NewRequest(http.MethodPost, "/matrices", bytes.NewReader(mmBytes(t, gen.Banded(200, 4, 0.8, 1))))
	req.Header.Set(obs.RequestIDHeader, "log-me")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("upload: %d", w.Code)
	}
	if err := ev.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(dir + "/events.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	var access map[string]any
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if e["ev"] == "access" {
			access = e
		}
	}
	if access == nil {
		t.Fatalf("no access event in log:\n%s", data)
	}
	if access["req"] != "log-me" {
		t.Errorf("access req = %v, want log-me", access["req"])
	}
	if access["status"] != float64(http.StatusOK) {
		t.Errorf("access status = %v", access["status"])
	}
	phases, _ := access["phases"].(map[string]any)
	if _, ok := phases["reorder"]; !ok {
		t.Errorf("access phases %v missing reorder", phases)
	}
}
