// Package solver provides the iterative solvers that motivate the study's
// amortization argument (paper §4.7): conjugate gradients performs one
// SpMV per iteration with a fixed matrix, so a reordering that speeds up
// SpMV pays for itself over the course of a solve. Plain CG and
// Jacobi-preconditioned CG are provided, both built on the library's
// parallel SpMV kernels.
package solver

import (
	"fmt"
	"math"

	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
)

// Kernel selects the SpMV kernel CG uses for the A·p product of each
// iteration. The 2D and merge kernels build their execution plan once per
// solve and reuse it every iteration, so the planning cost is amortised
// over the whole solve exactly as the paper's §4.7 argues for reordering
// cost.
type Kernel int

const (
	// Kernel1D is the study's 1D row-split kernel (the default).
	Kernel1D Kernel = iota
	// Kernel2D is the study's 2D nonzero-balanced kernel.
	Kernel2D
	// KernelMerge is the merge-based kernel of Merrill and Garland.
	KernelMerge
)

// String returns the kernel's short name.
func (k Kernel) String() string {
	switch k {
	case Kernel1D:
		return "1D"
	case Kernel2D:
		return "2D"
	case KernelMerge:
		return "merge"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Options configure a CG solve; zero values take the documented defaults.
type Options struct {
	// Tol is the absolute residual 2-norm tolerance. Default 1e-8.
	Tol float64
	// MaxIter bounds the iteration count. Default 10·n.
	MaxIter int
	// Threads is the SpMV thread count. Default 1.
	Threads int
	// Jacobi enables diagonal (Jacobi) preconditioning.
	Jacobi bool
	// Kernel is the SpMV kernel used for every iteration's A·p product.
	// Default Kernel1D. Kernel2D and KernelMerge build their plan once at
	// the start of the solve and reuse it for every iteration.
	Kernel Kernel
}

func (o Options) withDefaults(n int) Options {
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter == 0 {
		o.MaxIter = 10 * n
	}
	if o.Threads == 0 {
		o.Threads = 1
	}
	return o
}

// Result reports the outcome of a solve.
type Result struct {
	X          []float64
	Iterations int
	Residual   float64 // final residual 2-norm
	Converged  bool
	SpMVCount  int
}

// CG solves A·x = b for a symmetric positive definite matrix with the
// conjugate-gradient method.
func CG(a *sparse.CSR, b []float64, opts Options) (*Result, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("solver: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("solver: rhs length %d, want %d", len(b), a.Rows)
	}
	n := a.Rows
	opts = opts.withDefaults(n)

	// Build the per-iteration multiply once: for the planned kernels this
	// constructs the plan a single time and reuses it every iteration.
	mul, err := multiplier(a, opts)
	if err != nil {
		return nil, err
	}

	var diagInv []float64
	if opts.Jacobi {
		diagInv = make([]float64, n)
		for i := 0; i < n; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if int(a.ColIdx[k]) == i {
					if a.Val[k] == 0 {
						return nil, fmt.Errorf("solver: zero diagonal at %d; Jacobi preconditioner undefined", i)
					}
					diagInv[i] = 1 / a.Val[k]
				}
			}
			if diagInv[i] == 0 {
				return nil, fmt.Errorf("solver: missing diagonal at %d; Jacobi preconditioner undefined", i)
			}
		}
	}

	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := r
	if opts.Jacobi {
		z = make([]float64, n)
		for i := range z {
			z[i] = diagInv[i] * r[i]
		}
	}
	p := append([]float64(nil), z...)
	ap := make([]float64, n)
	rz := dot(r, z)
	res := &Result{}

	for res.Iterations = 0; res.Iterations < opts.MaxIter; res.Iterations++ {
		if math.Sqrt(dot(r, r)) < opts.Tol {
			res.Converged = true
			break
		}
		if err := mul(p, ap); err != nil {
			return nil, fmt.Errorf("solver: SpMV at iteration %d: %w", res.Iterations, err)
		}
		res.SpMVCount++
		pap := dot(p, ap)
		if pap <= 0 {
			return nil, fmt.Errorf("solver: matrix not positive definite (pᵀAp = %g at iteration %d)", pap, res.Iterations)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		if opts.Jacobi {
			for i := range z {
				z[i] = diagInv[i] * r[i]
			}
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		rz = rzNew
	}
	res.X = x
	res.Residual = math.Sqrt(dot(r, r))
	if res.Residual < opts.Tol {
		res.Converged = true
	}
	return res, nil
}

// SolveReordered applies alg-style amortization: it permutes the system by
// the given (new-to-old) permutation, solves, and permutes the solution
// back. The permuted matrix must be supplied by the caller (so its
// construction cost can be measured separately).
func SolveReordered(pa *sparse.CSR, perm sparse.Perm, b []float64, opts Options) (*Result, error) {
	n := pa.Rows
	if len(perm) != n || len(b) != n {
		return nil, fmt.Errorf("solver: inconsistent sizes (n=%d, perm=%d, b=%d)", n, len(perm), len(b))
	}
	pb := make([]float64, n)
	for newI, oldI := range perm {
		pb[newI] = b[oldI]
	}
	res, err := CG(pa, pb, opts)
	if err != nil {
		return nil, err
	}
	x := make([]float64, n)
	for newI, oldI := range perm {
		x[oldI] = res.X[newI]
	}
	res.X = x
	return res, nil
}

// multiplier returns the y = A·x routine for the selected kernel. Plans
// for the 2D and merge kernels are built here, exactly once per solve.
func multiplier(a *sparse.CSR, opts Options) (func(x, y []float64) error, error) {
	switch opts.Kernel {
	case Kernel1D:
		return func(x, y []float64) error { return spmv.Mul1D(a, x, y, opts.Threads) }, nil
	case Kernel2D:
		p, err := spmv.NewPlan2D(a, opts.Threads)
		if err != nil {
			return nil, fmt.Errorf("solver: building 2D plan: %w", err)
		}
		return func(x, y []float64) error { return spmv.Mul2D(a, x, y, p) }, nil
	case KernelMerge:
		p, err := spmv.NewPlanMerge(a, opts.Threads)
		if err != nil {
			return nil, fmt.Errorf("solver: building merge plan: %w", err)
		}
		return func(x, y []float64) error { return spmv.MulMerge(a, x, y, p) }, nil
	default:
		return nil, fmt.Errorf("solver: unknown SpMV kernel %d", int(opts.Kernel))
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
