package solver

import (
	"math"
	"math/rand"
	"testing"

	"sparseorder/internal/gen"
	"sparseorder/internal/reorder"
	"sparseorder/internal/sparse"
	"sparseorder/internal/spmv"
)

func systemFor(t *testing.T, a *sparse.CSR, seed int64) (xTrue, b []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xTrue = make([]float64, a.Rows)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b = make([]float64, a.Rows)
	spmv.Serial(a, xTrue, b)
	return xTrue, b
}

func TestCGSolvesGrid(t *testing.T) {
	a := gen.Grid2D(20, 20)
	xTrue, b := systemFor(t, a, 1)
	res, err := CG(a, b, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations (residual %g)", res.Iterations, res.Residual)
	}
	for i := range xTrue {
		if math.Abs(res.X[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], xTrue[i])
		}
	}
	if res.SpMVCount != res.Iterations {
		t.Errorf("SpMV count %d != iterations %d", res.SpMVCount, res.Iterations)
	}
}

func TestCGJacobiConvergesFasterOnSkewedDiagonal(t *testing.T) {
	// A badly scaled SPD system: Jacobi preconditioning must cut the
	// iteration count substantially.
	base := gen.Grid2D(16, 16)
	coo := sparse.FromCSR(base)
	for k := range coo.Val {
		if coo.Row[k] == coo.Col[k] && coo.Row[k]%7 == 0 {
			coo.Val[k] *= 1000
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	_, b := systemFor(t, a, 2)
	plain, err := CG(a, b, Options{Tol: 1e-8, MaxIter: 5000})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := CG(a, b, Options{Tol: 1e-8, MaxIter: 5000, Jacobi: true})
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Converged {
		t.Fatal("preconditioned CG did not converge")
	}
	if pre.Iterations >= plain.Iterations {
		t.Errorf("Jacobi iterations %d not below plain %d", pre.Iterations, plain.Iterations)
	}
}

func TestCGParallelThreadsAgree(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(14, 14), 3)
	xTrue, b := systemFor(t, a, 3)
	for _, threads := range []int{1, 4} {
		res, err := CG(a, b, Options{Tol: 1e-10, Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		for i := range xTrue {
			if math.Abs(res.X[i]-xTrue[i]) > 1e-6 {
				t.Fatalf("threads=%d: wrong solution at %d", threads, i)
			}
		}
	}
}

// TestCGKernelsAgree checks that each SpMV kernel drives CG to the same
// solution — the amortization experiment of §4.7 requires swapping the 2D
// and merge kernels into the solve.
func TestCGKernelsAgree(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(14, 14), 5)
	xTrue, b := systemFor(t, a, 5)
	for _, k := range []Kernel{Kernel1D, Kernel2D, KernelMerge} {
		for _, threads := range []int{1, 4} {
			res, err := CG(a, b, Options{Tol: 1e-10, Threads: threads, Kernel: k})
			if err != nil {
				t.Fatalf("kernel=%s threads=%d: %v", k, threads, err)
			}
			if !res.Converged {
				t.Fatalf("kernel=%s threads=%d did not converge", k, threads)
			}
			for i := range xTrue {
				if math.Abs(res.X[i]-xTrue[i]) > 1e-6 {
					t.Fatalf("kernel=%s threads=%d: wrong solution at %d", k, threads, i)
				}
			}
		}
	}
}

func TestCGRejectsUnknownKernel(t *testing.T) {
	a := gen.Grid2D(4, 4)
	if _, err := CG(a, make([]float64, a.Rows), Options{Kernel: Kernel(99)}); err == nil {
		t.Error("accepted unknown kernel")
	}
}

func TestKernelStrings(t *testing.T) {
	for k, want := range map[Kernel]string{Kernel1D: "1D", Kernel2D: "2D", KernelMerge: "merge"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestSolveReorderedMatchesDirect(t *testing.T) {
	a := gen.Scramble(gen.Grid2D(15, 15), 4)
	xTrue, b := systemFor(t, a, 4)
	perm, err := reorder.Compute(reorder.RCM, a, reorder.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pa, err := sparse.PermuteSymmetric(a, perm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveReordered(pa, perm, b, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		if math.Abs(res.X[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("reordered solve wrong at %d: %v vs %v", i, res.X[i], xTrue[i])
		}
	}
}

func TestCGRejectsBadInput(t *testing.T) {
	a := gen.Grid2D(4, 4)
	if _, err := CG(a, make([]float64, 3), Options{}); err == nil {
		t.Error("accepted wrong-length rhs")
	}
	coo := sparse.NewCOO(2, 3, 1)
	coo.Append(0, 0, 1)
	rect, _ := coo.ToCSR()
	if _, err := CG(rect, make([]float64, 2), Options{}); err == nil {
		t.Error("accepted rectangular matrix")
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	coo := sparse.NewCOO(2, 2, 4)
	coo.Append(0, 0, 1)
	coo.Append(0, 1, 5)
	coo.Append(1, 0, 5)
	coo.Append(1, 1, 1)
	a, _ := coo.ToCSR()
	// b = [1, -1] lies in the negative eigenspace (eigenvalue 1-5 = -4),
	// so the very first pᵀAp is negative.
	if _, err := CG(a, []float64{1, -1}, Options{MaxIter: 100}); err == nil {
		t.Error("CG accepted an indefinite matrix without complaint")
	}
}

func TestCGJacobiRequiresDiagonal(t *testing.T) {
	coo := sparse.NewCOO(2, 2, 2)
	coo.Append(0, 1, 1)
	coo.Append(1, 0, 1)
	a, _ := coo.ToCSR()
	if _, err := CG(a, []float64{1, 1}, Options{Jacobi: true}); err == nil {
		t.Error("Jacobi accepted a matrix with missing diagonal")
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := gen.Grid2D(6, 6)
	res, err := CG(a, make([]float64, a.Rows), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Errorf("zero rhs should converge immediately, got %d iterations", res.Iterations)
	}
}
