package sparse

import (
	"fmt"
	"sort"

	"sparseorder/internal/par"
)

// Parallel COO→CSR assembly, following the bucket-and-merge scheme of
// Engblom & Lukarski's parallel sparse assembly: the triplet stream is
// viewed as an ordered list of contiguous segments, per-segment row
// histograms are merged into one set of row offsets, every segment
// scatters its entries into its precomputed slots, and the rows are
// sorted and deduplicated in parallel ranges.
//
// Determinism contract (shared with the rest of internal/par): because
// the segments are contiguous slices of one global entry order and each
// segment's slots within a row are laid out in segment order, the
// scattered per-row sequences reproduce the global input order exactly,
// independent of the worker count. Sorting and duplicate-summing are pure
// functions of those sequences, so the assembled CSR is byte-identical
// for any worker count and identical to the serial (*COO).ToCSR path.

// cooSeg is one contiguous segment of a conceptual global triplet list.
type cooSeg struct {
	row []int32
	col []int32
	val []float64
}

// sortColVal sorts a row's (column, value) pairs by column. Short rows —
// the overwhelmingly common case for the study's matrices — use an
// insertion sort to avoid sort.Sort's interface-call overhead; longer rows
// fall back to it. The algorithm choice is a pure function of the input,
// so every assembly path that feeds identical per-row sequences gets
// identical output.
func sortColVal(cols []int32, vals []float64) {
	if len(cols) <= 1 {
		return
	}
	if len(cols) <= 24 {
		for a := 1; a < len(cols); a++ {
			c, v := cols[a], vals[a]
			b := a
			for b > 0 && cols[b-1] > c {
				cols[b] = cols[b-1]
				vals[b] = vals[b-1]
				b--
			}
			cols[b] = c
			vals[b] = v
		}
		return
	}
	sort.Sort(&colValSort{cols, vals})
}

// ToCSRWorkers is ToCSR with the counting, scatter, sort and dedup stages
// split across workers (see par.Resolve for the worker convention). The
// result is byte-identical to ToCSR at every worker count.
func (c *COO) ToCSRWorkers(workers int) (*CSR, error) {
	if len(c.Row) != len(c.Col) || len(c.Row) != len(c.Val) {
		return nil, fmt.Errorf("sparse: COO slice length mismatch %d/%d/%d", len(c.Row), len(c.Col), len(c.Val))
	}
	w := par.Resolve(workers)
	if w <= 1 {
		return c.ToCSR()
	}
	// Split the triplet list into one contiguous segment per worker;
	// assembleSegs re-derives the global order from segment order.
	n := len(c.Row)
	chunks := par.Chunks(n, w)
	segs := make([]cooSeg, 0, chunks)
	for k := 0; k < chunks; k++ {
		lo, hi := k*n/chunks, (k+1)*n/chunks
		segs = append(segs, cooSeg{row: c.Row[lo:hi], col: c.Col[lo:hi], val: c.Val[lo:hi]})
	}
	return assembleSegs(c.Rows, c.Cols, segs, w)
}

// assembleSegs assembles the concatenation of segs (in order) into CSR
// form with workers-way parallelism. Entries are bounds-checked against
// the dimensions, grouped by row, sorted by column within each row, and
// duplicate coordinates are summed in global entry order — exactly the
// semantics of (*COO).ToCSR.
func assembleSegs(rows, cols int, segs []cooSeg, workers int) (*CSR, error) {
	total := 0
	for _, s := range segs {
		total += len(s.row)
	}
	// Per-(segment, row) counts are int32; a triplet list beyond int32
	// also overflows CSR's int32 column storage assumptions upstream, so
	// entry counts here always fit.
	if total > (1<<31 - 1) {
		return nil, fmt.Errorf("sparse: %d entries exceed the int32 assembly range", total)
	}

	// Stage 1: per-segment row histograms, bounds-checking as we count.
	counts := make([][]int32, len(segs))
	segErr := make([]error, len(segs))
	par.Ranges(len(segs), workers, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			cnt := make([]int32, rows)
			seg := segs[s]
			for k := range seg.row {
				i, j := seg.row[k], seg.col[k]
				if i < 0 || int(i) >= rows || j < 0 || int(j) >= cols {
					segErr[s] = fmt.Errorf("sparse: COO entry at (%d,%d) outside %dx%d", i, j, rows, cols)
					return
				}
				cnt[i]++
			}
			counts[s] = cnt
		}
	})
	for _, err := range segErr {
		if err != nil {
			return nil, err
		}
	}

	// Stage 2: merge histograms into global row offsets; counts[s][i] is
	// rewritten in place to the segment's starting slot within row i
	// (relative to off[i]), which stage 3 uses as its scatter cursor.
	off := make([]int, rows+1)
	for i := 0; i < rows; i++ {
		run := 0
		for s := range counts {
			ci := counts[s][i]
			counts[s][i] = int32(run)
			run += int(ci)
		}
		off[i+1] = off[i] + run
	}

	// Stage 3: parallel scatter. Segments own disjoint slot ranges within
	// every row, so they write concurrently without synchronisation; slots
	// within a segment are filled in segment order, reproducing the global
	// entry order row by row.
	colScratch := make([]int32, total)
	valScratch := make([]float64, total)
	par.Ranges(len(segs), workers, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			seg, cur := segs[s], counts[s]
			for k := range seg.row {
				i := seg.row[k]
				p := off[i] + int(cur[i])
				cur[i]++
				colScratch[p] = seg.col[k]
				valScratch[p] = seg.val[k]
			}
		}
	})

	// Stage 4: sort and dedup each row in place over parallel row ranges.
	newLen := make([]int32, rows)
	par.Ranges(rows, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			rlo, rhi := off[i], off[i+1]
			cs, vs := colScratch[rlo:rhi], valScratch[rlo:rhi]
			sortColVal(cs, vs)
			n := 0
			for k := 0; k < len(cs); k++ {
				if n > 0 && cs[k] == cs[n-1] {
					vs[n-1] += vs[k]
					continue
				}
				cs[n] = cs[k]
				vs[n] = vs[k]
				n++
			}
			newLen[i] = int32(n)
		}
	})

	// Stage 5: compact. When no duplicates were summed the scratch arrays
	// already hold the final layout and are adopted wholesale.
	a := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	final := 0
	for i := 0; i < rows; i++ {
		final += int(newLen[i])
		a.RowPtr[i+1] = final
	}
	if final == total {
		a.ColIdx = colScratch
		a.Val = valScratch
		return a, nil
	}
	a.ColIdx = make([]int32, final)
	a.Val = make([]float64, final)
	par.Ranges(rows, workers, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			n := int(newLen[i])
			copy(a.ColIdx[a.RowPtr[i]:a.RowPtr[i]+n], colScratch[off[i]:off[i]+n])
			copy(a.Val[a.RowPtr[i]:a.RowPtr[i]+n], valScratch[off[i]:off[i]+n])
		}
	})
	return a, nil
}
