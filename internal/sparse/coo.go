package sparse

import (
	"fmt"
)

// COO is a sparse matrix in coordinate (triplet) format. Entries may appear
// in any order and duplicates are permitted; conversion to CSR sums them.
type COO struct {
	Rows int
	Cols int
	Row  []int32
	Col  []int32
	Val  []float64
}

// NewCOO returns an empty coordinate-format matrix with capacity for nnz
// entries.
func NewCOO(rows, cols, nnz int) *COO {
	return &COO{
		Rows: rows,
		Cols: cols,
		Row:  make([]int32, 0, nnz),
		Col:  make([]int32, 0, nnz),
		Val:  make([]float64, 0, nnz),
	}
}

// Append adds the entry (i, j, v). Storage uses int32 indices; an index
// outside the int32 range panics immediately rather than being narrowed
// (a wrapped index could land back inside the matrix dimensions, where
// Validate cannot tell it from a legitimate entry). Dimension bounds are
// checked later by Validate/ToCSR; readers of untrusted input should
// range-check before appending, as ReadMatrixMarket does.
func (c *COO) Append(i, j int, v float64) {
	if int(int32(i)) != i || int(int32(j)) != j {
		panic(fmt.Sprintf("sparse: COO index (%d,%d) overflows int32", i, j))
	}
	c.Row = append(c.Row, int32(i))
	c.Col = append(c.Col, int32(j))
	c.Val = append(c.Val, v)
}

// NNZ returns the number of stored entries, counting duplicates.
func (c *COO) NNZ() int { return len(c.Val) }

// Validate checks that all entries are within the matrix dimensions.
func (c *COO) Validate() error {
	if len(c.Row) != len(c.Col) || len(c.Row) != len(c.Val) {
		return fmt.Errorf("sparse: COO slice length mismatch %d/%d/%d", len(c.Row), len(c.Col), len(c.Val))
	}
	for k := range c.Row {
		if c.Row[k] < 0 || int(c.Row[k]) >= c.Rows || c.Col[k] < 0 || int(c.Col[k]) >= c.Cols {
			return fmt.Errorf("sparse: COO entry %d at (%d,%d) outside %dx%d", k, c.Row[k], c.Col[k], c.Rows, c.Cols)
		}
	}
	return nil
}

// ToCSR converts the triplets to CSR format. Entries are grouped by row,
// sorted by column within each row, and duplicate coordinates are summed.
func (c *COO) ToCSR() (*CSR, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	// Bucket the triplets by row (counting sort), then sort each row by
	// column and sum duplicate coordinates.
	nnz := len(c.Val)
	off := make([]int, c.Rows+1)
	for _, i := range c.Row {
		off[i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		off[i+1] += off[i]
	}
	cols := make([]int32, nnz)
	vals := make([]float64, nnz)
	next := make([]int, c.Rows)
	copy(next, off[:c.Rows])
	for k := 0; k < nnz; k++ {
		i := c.Row[k]
		p := next[i]
		next[i]++
		cols[p] = c.Col[k]
		vals[p] = c.Val[k]
	}
	a := &CSR{
		Rows:   c.Rows,
		Cols:   c.Cols,
		RowPtr: make([]int, c.Rows+1),
		ColIdx: make([]int32, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	for i := 0; i < c.Rows; i++ {
		lo, hi := off[i], off[i+1]
		sortColVal(cols[lo:hi], vals[lo:hi])
		rowStart := len(a.ColIdx)
		for k := lo; k < hi; k++ {
			if n := len(a.ColIdx); n > rowStart && cols[k] == a.ColIdx[n-1] {
				a.Val[n-1] += vals[k]
				continue
			}
			a.ColIdx = append(a.ColIdx, cols[k])
			a.Val = append(a.Val, vals[k])
		}
		a.RowPtr[i+1] = len(a.ColIdx)
	}
	return a, nil
}

// FromCSR converts a CSR matrix back to coordinate format.
func FromCSR(a *CSR) *COO {
	c := NewCOO(a.Rows, a.Cols, a.NNZ())
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			c.Append(i, int(a.ColIdx[k]), a.Val[k])
		}
	}
	return c
}

// ExpandSymmetric returns a COO in which, for every off-diagonal entry
// (i, j), the mirrored entry (j, i) with the same value is also present.
// This implements the paper's CSR conversion rule for matrices stored as
// one triangle of a symmetric matrix.
func (c *COO) ExpandSymmetric() *COO {
	e := NewCOO(c.Rows, c.Cols, 2*len(c.Val))
	for k := range c.Val {
		i, j, v := c.Row[k], c.Col[k], c.Val[k]
		e.Row = append(e.Row, i)
		e.Col = append(e.Col, j)
		e.Val = append(e.Val, v)
		if i != j {
			e.Row = append(e.Row, j)
			e.Col = append(e.Col, i)
			e.Val = append(e.Val, v)
		}
	}
	return e
}
