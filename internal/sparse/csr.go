// Package sparse provides the sparse-matrix substrate for the reordering
// study: COO and CSR storage, Matrix Market I/O, symmetrization, and row,
// column and symmetric permutations.
//
// Following the paper's setup, CSR column offsets are stored as 32-bit
// integers and nonzero values as float64.
package sparse

import (
	"fmt"
)

// CSR is a sparse matrix in compressed sparse row format. Nonzeros of each
// row are stored contiguously with strictly ascending column indices.
//
// RowPtr has length Rows+1; the nonzeros of row i occupy
// ColIdx[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]].
type CSR struct {
	Rows   int
	Cols   int
	RowPtr []int
	ColIdx []int32
	Val    []float64
}

// NNZ returns the number of stored nonzeros.
func (a *CSR) NNZ() int { return len(a.ColIdx) }

// RowNNZ returns the number of stored nonzeros in row i.
func (a *CSR) RowNNZ(i int) int { return a.RowPtr[i+1] - a.RowPtr[i] }

// Row returns the column indices and values of row i. The returned slices
// alias the matrix storage and must not be modified.
func (a *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// Clone returns a deep copy of the matrix.
func (a *CSR) Clone() *CSR {
	b := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int, len(a.RowPtr)),
		ColIdx: make([]int32, len(a.ColIdx)),
		Val:    make([]float64, len(a.Val)),
	}
	copy(b.RowPtr, a.RowPtr)
	copy(b.ColIdx, a.ColIdx)
	copy(b.Val, a.Val)
	return b
}

// Validate checks the structural invariants of the CSR representation:
// monotone row pointers, in-range and strictly ascending column indices,
// and consistent slice lengths.
func (a *CSR) Validate() error {
	if a.Rows < 0 || a.Cols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", a.Rows, a.Cols)
	}
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(a.RowPtr), a.Rows+1)
	}
	if len(a.ColIdx) != len(a.Val) {
		return fmt.Errorf("sparse: ColIdx length %d != Val length %d", len(a.ColIdx), len(a.Val))
	}
	if a.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", a.RowPtr[0])
	}
	if a.RowPtr[a.Rows] != len(a.ColIdx) {
		return fmt.Errorf("sparse: RowPtr[%d] = %d, want %d", a.Rows, a.RowPtr[a.Rows], len(a.ColIdx))
	}
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		prev := int32(-1)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j < 0 || int(j) >= a.Cols {
				return fmt.Errorf("sparse: column %d out of range in row %d", j, i)
			}
			if j <= prev {
				return fmt.Errorf("sparse: columns not strictly ascending in row %d", i)
			}
			prev = j
		}
	}
	return nil
}

// Equal reports whether a and b have identical dimensions, structure and
// values.
func (a *CSR) Equal(b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || len(a.ColIdx) != len(b.ColIdx) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// PatternEqual reports whether a and b have the same sparsity pattern,
// ignoring values.
func (a *CSR) PatternEqual(b *CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || len(a.ColIdx) != len(b.ColIdx) {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] {
			return false
		}
	}
	return true
}

// Transpose returns Aᵀ in CSR format using a linear-time counting pass.
func (a *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   a.Cols,
		Cols:   a.Rows,
		RowPtr: make([]int, a.Cols+1),
		ColIdx: make([]int32, len(a.ColIdx)),
		Val:    make([]float64, len(a.Val)),
	}
	for _, j := range a.ColIdx {
		t.RowPtr[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	next := make([]int, a.Cols)
	copy(next, t.RowPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			p := next[j]
			next[j]++
			t.ColIdx[p] = int32(i)
			t.Val[p] = a.Val[k]
		}
	}
	return t
}

// IsStructurallySymmetric reports whether the sparsity pattern of the
// square matrix a equals the pattern of its transpose.
func (a *CSR) IsStructurallySymmetric() bool {
	if a.Rows != a.Cols {
		return false
	}
	return a.PatternEqual2(a.Transpose())
}

// PatternEqual2 is like PatternEqual but tolerates differently ordered
// equal patterns; CSR invariants guarantee sorted columns so it reduces to
// PatternEqual.
func (a *CSR) PatternEqual2(b *CSR) bool { return a.PatternEqual(b) }

// SortRows sorts the column indices (and the corresponding values) within
// every row in ascending order. Construction functions in this package
// always produce sorted rows; SortRows repairs externally built matrices.
func (a *CSR) SortRows() {
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		sortColVal(a.ColIdx[lo:hi], a.Val[lo:hi])
	}
}

type colValSort struct {
	cols []int32
	vals []float64
}

func (s *colValSort) Len() int           { return len(s.cols) }
func (s *colValSort) Less(i, j int) bool { return s.cols[i] < s.cols[j] }
func (s *colValSort) Swap(i, j int) {
	s.cols[i], s.cols[j] = s.cols[j], s.cols[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// Add returns A + B for matrices with identical dimensions. Coinciding
// nonzeros are summed; the result keeps explicit zeros that may arise.
func Add(a, b *CSR) (*CSR, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("sparse: dimension mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int, a.Rows+1)}
	c.ColIdx = make([]int32, 0, len(a.ColIdx)+len(b.ColIdx))
	c.Val = make([]float64, 0, len(a.Val)+len(b.Val))
	for i := 0; i < a.Rows; i++ {
		ka, kaEnd := a.RowPtr[i], a.RowPtr[i+1]
		kb, kbEnd := b.RowPtr[i], b.RowPtr[i+1]
		for ka < kaEnd || kb < kbEnd {
			switch {
			case kb >= kbEnd || (ka < kaEnd && a.ColIdx[ka] < b.ColIdx[kb]):
				c.ColIdx = append(c.ColIdx, a.ColIdx[ka])
				c.Val = append(c.Val, a.Val[ka])
				ka++
			case ka >= kaEnd || b.ColIdx[kb] < a.ColIdx[ka]:
				c.ColIdx = append(c.ColIdx, b.ColIdx[kb])
				c.Val = append(c.Val, b.Val[kb])
				kb++
			default:
				c.ColIdx = append(c.ColIdx, a.ColIdx[ka])
				c.Val = append(c.Val, a.Val[ka]+b.Val[kb])
				ka++
				kb++
			}
		}
		c.RowPtr[i+1] = len(c.ColIdx)
	}
	return c, nil
}

// Symmetrize returns the pattern-symmetric matrix A + Aᵀ for a square A,
// which the bandwidth- and fill-oriented orderings (RCM, AMD, ND, GP)
// require whenever the input pattern is unsymmetric.
func Symmetrize(a *CSR) (*CSR, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: cannot symmetrize non-square %dx%d matrix", a.Rows, a.Cols)
	}
	return Add(a, a.Transpose())
}
