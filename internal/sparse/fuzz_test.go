package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket runs every input through both the serial reference
// reader and the parallel ingestion pipeline, checking that the parsers
// never panic, that they agree on accept/reject, that accepted matrices
// are structurally valid and identical between the two paths, and that
// accepted matrices survive a write/read round trip. Running the parallel
// path at 3 workers keeps chunk boundaries in play even on tiny inputs.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n2 2 -3\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n")
	f.Add("%%MatrixMarket matrix coordinate integer skew-symmetric\n3 3 1\n2 1 4\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n% comment\n\n1 1 1\n1 1 2.5e-3\n")
	f.Add("garbage")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9999\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1 junk\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1 junk\n")
	f.Add("%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n1 1 3\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\ntrailing\n")

	f.Fuzz(func(t *testing.T, input string) {
		a, err := ReadMatrixMarket(strings.NewReader(input))
		ap, perr := ReadMatrixMarketWorkers(strings.NewReader(input), 3)
		if (err == nil) != (perr == nil) {
			t.Fatalf("accept/reject disagreement: serial err=%v, parallel err=%v", err, perr)
		}
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid matrix: %v", verr)
		}
		if !a.Equal(ap) {
			t.Fatal("parallel ingestion diverged from the serial reader")
		}
		var buf bytes.Buffer
		if werr := WriteMatrixMarket(&buf, a); werr != nil {
			t.Fatalf("write failed on accepted matrix: %v", werr)
		}
		b, rerr := ReadMatrixMarket(&buf)
		if rerr != nil {
			t.Fatalf("round trip read failed: %v", rerr)
		}
		if !a.Equal(b) {
			t.Fatal("round trip changed the matrix")
		}
	})
}
