package sparse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket checks that the Matrix Market parser never panics
// and that everything it accepts is a structurally valid matrix that
// survives a write/read round trip.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n2 2 -3\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n")
	f.Add("%%MatrixMarket matrix coordinate integer skew-symmetric\n3 3 1\n2 1 4\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n% comment\n\n1 1 1\n1 1 2.5e-3\n")
	f.Add("garbage")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9999\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")

	f.Fuzz(func(t *testing.T, input string) {
		a, err := ReadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("parser accepted an invalid matrix: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteMatrixMarket(&buf, a); werr != nil {
			t.Fatalf("write failed on accepted matrix: %v", werr)
		}
		b, rerr := ReadMatrixMarket(&buf)
		if rerr != nil {
			t.Fatalf("round trip read failed: %v", rerr)
		}
		if !a.Equal(b) {
			t.Fatal("round trip changed the matrix")
		}
	})
}
