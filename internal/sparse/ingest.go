package sparse

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"strconv"

	"sparseorder/internal/faultinject"
	"sparseorder/internal/obs"
	"sparseorder/internal/par"
)

// Parallel streaming Matrix Market ingestion: the post-header byte stream
// is split into one chunk per worker, aligned to line boundaries; chunks
// are parsed concurrently into per-worker COO shards by the
// allocation-light scanner in mmscan.go (symmetric and skew-symmetric
// expansion happens inline, preserving the serial expansion order); and
// the shards are assembled into CSR by the parallel bucket-and-merge path
// in assemble.go.
//
// Determinism contract: chunk boundaries depend only on the byte stream,
// and chunks are contiguous, so the concatenated shard order equals the
// file's entry order for every worker count. Assembly preserves that
// order per row before its (pure-function) sort and duplicate-sum, so the
// output is byte-identical to ReadMatrixMarket — the serial reference
// reader — at any worker count. The two readers share every line-level
// parse helper, so they also accept and reject exactly the same inputs.

// ReadMatrixMarketWorkers parses a Matrix Market stream into CSR form
// using the parallel ingestion pipeline. Output is byte-identical to
// ReadMatrixMarket for every accepted stream and every worker count
// (0 = GOMAXPROCS, following the par.Resolve convention).
func ReadMatrixMarketWorkers(r io.Reader, workers int) (*CSR, error) {
	return ReadMatrixMarketCtx(context.Background(), r, workers)
}

// ReadMatrixMarketCtx is ReadMatrixMarketWorkers reporting phase timings
// ("ingest/scan" for the chunked read+parse, "ingest/assemble" for the
// COO→CSR merge) through any obs.Obs attached to the context. Without an
// Obs it is exactly ReadMatrixMarketWorkers.
func ReadMatrixMarketCtx(ctx context.Context, r io.Reader, workers int) (*CSR, error) {
	// Same fault point as the serial reader, so chaos schedules cover
	// both entry paths.
	if err := faultinject.Check(faultinject.MatrixRead, ""); err != nil {
		return nil, fmt.Errorf("sparse: reading matrix: %w", err)
	}
	w := par.Resolve(workers)

	ctx, sp := obs.Start(ctx, "sparse/ingest")
	sp.SetAttr("workers", strconv.Itoa(w))
	defer sp.End()

	_, scanSp := obs.Start(ctx, "ingest/scan")
	br := bufio.NewReaderSize(r, 1<<20)
	h, err := readMMBanner(br)
	if err != nil {
		scanSp.End()
		return nil, err
	}
	rows, cols, nnz, err := readMMSizeLine(br)
	if err != nil {
		scanSp.End()
		return nil, err
	}

	// Drain the remaining stream. The chunked scanner needs the full byte
	// range to place line-aligned boundaries; the buffer is transient and
	// its size is part of the governor's ingestion model
	// (experiments.EstimateIngestBytes).
	var body bytes.Buffer
	if est := nnz * 16; est > 0 {
		if est > 1<<30 {
			est = 1 << 30
		}
		body.Grow(est)
	}
	if _, err := io.Copy(&body, br); err != nil {
		return nil, fmt.Errorf("sparse: reading entries: %w", err)
	}
	buf := body.Bytes()

	chunks := splitChunks(buf, w)
	shards := make([]cooSeg, len(chunks))
	lines := make([]int, len(chunks)) // file entries parsed, pre-expansion
	errs := make([]error, len(chunks))
	par.Ranges(len(chunks), w, func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			shards[k], lines[k], errs[k] = parseChunk(k, chunks[k], h, rows, cols)
		}
	})
	scanSp.End()
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sparse: chunk %d: %w", k, err)
		}
	}
	read := 0
	for _, n := range lines {
		read += n
	}
	if read < nnz {
		return nil, fmt.Errorf("sparse: after %d of %d entries: %w", read, nnz, io.ErrUnexpectedEOF)
	}
	if read > nnz {
		return nil, fmt.Errorf("sparse: content after the declared %d entries", nnz)
	}

	_, asmSp := obs.Start(ctx, "ingest/assemble")
	a, err := assembleSegs(rows, cols, shards, w)
	asmSp.End()
	return a, err
}

// splitChunks cuts buf into at most workers contiguous chunks whose
// boundaries fall just after a newline, so no line is ever split. The
// boundary positions depend only on the byte content and the resolved
// worker count; parsing is oblivious to them because chunks stay in file
// order.
func splitChunks(buf []byte, workers int) [][]byte {
	if len(buf) == 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	chunks := make([][]byte, 0, workers)
	start := 0
	for k := 1; k < workers && start < len(buf); k++ {
		cut := k * len(buf) / workers
		if cut <= start {
			continue
		}
		// Advance to just past the next newline so the boundary never
		// lands mid-line.
		nl := bytes.IndexByte(buf[cut:], '\n')
		if nl < 0 {
			break
		}
		cut += nl + 1
		if cut > start {
			chunks = append(chunks, buf[start:cut])
			start = cut
		}
	}
	if start < len(buf) {
		chunks = append(chunks, buf[start:])
	}
	return chunks
}

// parseChunk scans one line-aligned chunk into a COO shard, expanding
// symmetric/skew-symmetric entries inline in the serial reader's order
// (entry, then mirror). It returns the number of file entries parsed —
// pre-expansion, so the caller can check the total against the declared
// nnz. Fields are parsed in place — no per-line strings, no
// strings.Fields slices.
func parseChunk(idx int, chunk []byte, h MMHeader, rows, cols int) (cooSeg, int, error) {
	// Per-chunk fault point for chaos testing of the ingestion pipeline;
	// keyed by the chunk ordinal so a schedule is stable across runs at a
	// fixed worker count. The Enabled guard keeps the production path free
	// of the key allocation.
	if faultinject.Enabled() {
		if err := faultinject.Check(faultinject.IngestChunk, "chunk"+strconv.Itoa(idx)); err != nil {
			return cooSeg{}, 0, err
		}
	}
	expand := h.Symmetry != "general"
	pattern := h.Field == "pattern"
	skew := h.Symmetry == "skew-symmetric"
	capHint := bytes.Count(chunk, []byte{'\n'}) + 1
	if expand {
		capHint *= 2
	}
	seg := cooSeg{
		row: make([]int32, 0, capHint),
		col: make([]int32, 0, capHint),
		val: make([]float64, 0, capHint),
	}
	entries := 0
	for len(chunk) > 0 {
		var line []byte
		if nl := bytes.IndexByte(chunk, '\n'); nl >= 0 {
			line, chunk = chunk[:nl], chunk[nl+1:]
		} else {
			line, chunk = chunk, nil
		}
		i, j, v, ok := parseEntryFast(line, pattern, skew, rows, cols)
		if !ok {
			// Anything unusual — comments, blanks, exotic spellings,
			// malformed lines — goes through the reference grammar, which
			// classifies it exactly like the serial reader would.
			t := trimMMSpace(line)
			if isCommentOrBlank(t) {
				continue
			}
			var err error
			i, j, v, err = parseEntryLine(t, h, rows, cols)
			if err != nil {
				return cooSeg{}, 0, err
			}
		}
		entries++
		seg.row = append(seg.row, int32(i))
		seg.col = append(seg.col, int32(j))
		seg.val = append(seg.val, v)
		if expand {
			switch {
			case h.Symmetry == "skew-symmetric":
				// Diagonal entries were rejected by parseEntryLine, so
				// every entry mirrors.
				seg.row = append(seg.row, int32(j))
				seg.col = append(seg.col, int32(i))
				seg.val = append(seg.val, -v)
			case i != j:
				seg.row = append(seg.row, int32(j))
				seg.col = append(seg.col, int32(i))
				seg.val = append(seg.val, v)
			}
		}
	}
	return seg, entries, nil
}
