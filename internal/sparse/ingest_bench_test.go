package sparse

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// benchMM builds an in-memory Matrix Market stream with nnz entries so the
// ingest benchmarks measure parsing and assembly, not disk.
func benchMM(rows, cols, nnz int) []byte {
	rng := rand.New(rand.NewSource(1))
	var buf bytes.Buffer
	buf.Grow(nnz * 24)
	fmt.Fprintf(&buf, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", rows, cols, nnz)
	for k := 0; k < nnz; k++ {
		fmt.Fprintf(&buf, "%d %d %.17g\n", 1+rng.Intn(rows), 1+rng.Intn(cols), rng.NormFloat64())
	}
	return buf.Bytes()
}

var benchSink *CSR

func BenchmarkIngestSerial(b *testing.B) {
	data := benchMM(100000, 100000, 1200000)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := ReadMatrixMarket(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		benchSink = a
	}
}

func BenchmarkIngestWorkers(b *testing.B) {
	data := benchMM(100000, 100000, 1200000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, err := ReadMatrixMarketWorkers(bytes.NewReader(data), workers)
				if err != nil {
					b.Fatal(err)
				}
				benchSink = a
			}
		})
	}
}
