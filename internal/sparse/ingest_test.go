package sparse

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"sparseorder/internal/faultinject"
)

// edgeCorpus is a set of hand-written Matrix Market streams covering the
// format corners the ingestion pipeline must agree on with the serial
// reader: empty rows (including a fully empty matrix), single-row and
// single-column shapes, pattern values, symmetric expansion with and
// without diagonal entries, skew-symmetric expansion, duplicates, and
// comment/blank noise between entries.
var edgeCorpus = []struct {
	name string
	mm   string
}{
	{"empty", "%%MatrixMarket matrix coordinate real general\n0 0 0\n"},
	{"no_entries", "%%MatrixMarket matrix coordinate real general\n5 7 0\n"},
	{"empty_rows", "%%MatrixMarket matrix coordinate real general\n6 6 3\n1 1 1\n4 2 -2.5\n4 6 3e-2\n"},
	{"one_by_n", "%%MatrixMarket matrix coordinate real general\n1 8 4\n1 8 1\n1 1 2\n1 4 3\n1 2 4\n"},
	{"n_by_one", "%%MatrixMarket matrix coordinate real general\n8 1 3\n8 1 1\n2 1 2\n5 1 3\n"},
	{"pattern", "%%MatrixMarket matrix coordinate pattern general\n3 3 4\n1 1\n2 3\n3 1\n3 3\n"},
	{"integer", "%%MatrixMarket matrix coordinate integer general\n3 3 3\n1 2 7\n2 2 -4\n3 1 19\n"},
	{"symmetric", "%%MatrixMarket matrix coordinate real symmetric\n4 4 5\n1 1 1\n2 1 2\n3 2 3\n4 4 4\n4 1 5\n"},
	{"symmetric_offdiag_only", "%%MatrixMarket matrix coordinate real symmetric\n4 4 3\n2 1 2\n3 2 3\n4 1 5\n"},
	{"pattern_symmetric", "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n"},
	{"skew", "%%MatrixMarket matrix coordinate real skew-symmetric\n4 4 3\n2 1 1\n4 3 -2\n3 1 0.5\n"},
	{"duplicates", "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1\n1 1 2\n2 3 4\n2 3 -4\n3 3 8\n"},
	{"comment_noise", "%%MatrixMarket matrix coordinate real general\n% head\n\n3 3 2\n% between\n1 1 1\n\n% more\n3 3 2\n% tail comment\n"},
	{"exponents", "%%MatrixMarket matrix coordinate real general\n2 2 4\n1 1 1.7976931348623157e308\n1 2 -2.2250738585072014E-308\n2 1 1e-322\n2 2 123456789012345678901.5\n"},
}

// TestIngestMatchesSerialEdgeCorpus checks that the parallel pipeline is
// byte-identical to the serial reference reader over the edge corpus at
// several worker counts (reflect.DeepEqual covers slice contents bit for
// bit, since Equal compares float64 with ==, which DeepEqual matches for
// non-NaN values).
func TestIngestMatchesSerialEdgeCorpus(t *testing.T) {
	for _, tc := range edgeCorpus {
		want, err := ReadMatrixMarket(strings.NewReader(tc.mm))
		if err != nil {
			t.Fatalf("%s: serial reader rejected corpus entry: %v", tc.name, err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			got, err := ReadMatrixMarketWorkers(strings.NewReader(tc.mm), workers)
			if err != nil {
				t.Fatalf("%s: workers=%d: %v", tc.name, workers, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s: workers=%d diverged from serial reader", tc.name, workers)
			}
		}
	}
}

// TestIngestRoundTripEdgeCorpus is the Write→Read round-trip property:
// writing any corpus matrix and reading it back — through either reader —
// reproduces it exactly.
func TestIngestRoundTripEdgeCorpus(t *testing.T) {
	for _, tc := range edgeCorpus {
		a, err := ReadMatrixMarket(strings.NewReader(tc.mm))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, a); err != nil {
			t.Fatal(err)
		}
		text := buf.String()
		b, err := ReadMatrixMarket(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: serial re-read: %v", tc.name, err)
		}
		if !a.Equal(b) {
			t.Errorf("%s: serial round trip changed the matrix", tc.name)
		}
		for _, workers := range []int{2, 4} {
			c, err := ReadMatrixMarketWorkers(strings.NewReader(text), workers)
			if err != nil {
				t.Fatalf("%s: parallel re-read (workers=%d): %v", tc.name, workers, err)
			}
			if !a.Equal(c) {
				t.Errorf("%s: parallel round trip (workers=%d) changed the matrix", tc.name, workers)
			}
		}
	}
}

func randomMM(rng *rand.Rand, rows, cols, nnz int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", rows, cols, nnz)
	for k := 0; k < nnz; k++ {
		fmt.Fprintf(&sb, "%d %d %.17g\n", 1+rng.Intn(rows), 1+rng.Intn(cols), rng.NormFloat64())
	}
	return sb.String()
}

// TestIngestDeterminism checks the repo-wide determinism contract on a
// randomly generated stream with duplicates: the output is identical at
// every worker count, including worker counts that exceed the entry count
// per chunk.
func TestIngestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	text := randomMM(rng, 200, 150, 3000)
	want, err := ReadMatrixMarket(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 7} {
		got, err := ReadMatrixMarketWorkers(strings.NewReader(text), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d diverged from serial reader", workers)
		}
	}
}

// TestToCSRWorkersMatchesSerial checks the assembly layer directly, on a
// COO whose duplicate entries force the compaction path.
func TestToCSRWorkersMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(60), 1+rng.Intn(60)
		coo := NewCOO(rows, cols, 0)
		for k := 0; k < rng.Intn(500); k++ {
			coo.Append(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
		}
		want, err := coo.ToCSR()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 7} {
			got, err := coo.ToCSRWorkers(workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("trial %d workers=%d diverged from ToCSR", trial, workers)
			}
		}
	}
}

// TestToCSRWorkersRejectsOutOfRange checks that the parallel assembly
// bounds-checks entries like the serial path does.
func TestToCSRWorkersRejectsOutOfRange(t *testing.T) {
	coo := &COO{Rows: 2, Cols: 2, Row: []int32{0, 1, 5}, Col: []int32{0, 1, 0}, Val: []float64{1, 2, 3}}
	if _, err := coo.ToCSRWorkers(4); err == nil {
		t.Error("parallel assembly accepted an out-of-range entry")
	}
}

// Strictness sweep: inputs the historical reader silently tolerated must
// now be rejected — by both readers identically.
func TestReadersRejectMalformedInputs(t *testing.T) {
	cases := []struct {
		name string
		mm   string
	}{
		{"size_trailing_token", "%%MatrixMarket matrix coordinate real general\n2 2 1 junk\n1 1 1\n"},
		{"entry_trailing_token", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1 junk\n"},
		{"pattern_entry_with_value", "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1 1\n"},
		{"entry_missing_value", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n"},
		{"skew_explicit_diagonal", "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n1 1 3\n"},
		{"trailing_content", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\ntrailing\n"},
		{"too_few_entries", "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n"},
		{"size_non_numeric", "%%MatrixMarket matrix coordinate real general\n2 x 1\n1 1 1\n"},
		{"index_zero", "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n"},
		{"index_out_of_range", "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n"},
		{"huge_dimensions", "%%MatrixMarket matrix coordinate real general\n3000000000 1 0\n"},
		{"negative_nnz", "%%MatrixMarket matrix coordinate real general\n2 2 -1\n"},
	}
	for _, tc := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(tc.mm)); err == nil {
			t.Errorf("%s: serial reader accepted malformed input", tc.name)
		}
		if _, err := ReadMatrixMarketWorkers(strings.NewReader(tc.mm), 3); err == nil {
			t.Errorf("%s: parallel reader accepted malformed input", tc.name)
		}
	}
}

// TestReadPermutationStrictness mirrors the matrix reader's sweep for the
// permutation artifact reader.
func TestReadPermutationStrictness(t *testing.T) {
	cases := []struct {
		name string
		mm   string
	}{
		{"size_trailing_token", "%%MatrixMarket matrix array integer general\n2 1 junk\n1\n2\n"},
		{"not_column_vector", "%%MatrixMarket matrix array integer general\n2 2\n1\n2\n"},
		{"entry_trailing_token", "%%MatrixMarket matrix array integer general\n2 1\n1 9\n2\n"},
		{"trailing_content", "%%MatrixMarket matrix array integer general\n2 1\n1\n2\n3\n"},
		{"negative_length", "%%MatrixMarket matrix array integer general\n-2 1\n"},
		{"huge_length", "%%MatrixMarket matrix array integer general\n3000000000 1\n"},
		{"not_a_permutation", "%%MatrixMarket matrix array integer general\n2 1\n1\n1\n"},
	}
	for _, tc := range cases {
		if _, err := ReadPermutation(strings.NewReader(tc.mm)); err == nil {
			t.Errorf("%s: ReadPermutation accepted malformed input", tc.name)
		}
	}
	// The valid shape still parses.
	p, err := ReadPermutation(strings.NewReader("%%MatrixMarket matrix array integer general\n3 1\n% comment\n2\n3\n1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, Perm{1, 2, 0}) {
		t.Errorf("ReadPermutation = %v, want [1 2 0]", p)
	}
}

// TestIngestChunkFault checks the per-chunk fault point: an armed plan
// covering ingest/chunk fails the parallel read with the injected error,
// and the decision is deterministic across repeated runs.
func TestIngestChunkFault(t *testing.T) {
	defer faultinject.Deactivate()
	text := randomMM(rand.New(rand.NewSource(3)), 100, 100, 2000)
	faultinject.Activate(faultinject.NewPlan(1,
		faultinject.Rule{Point: faultinject.IngestChunk, Mode: faultinject.ModeError, Rate: 1}))
	for run := 0; run < 3; run++ {
		_, err := ReadMatrixMarketWorkers(strings.NewReader(text), 4)
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("run %d: err = %v, want injected fault", run, err)
		}
	}
	faultinject.Deactivate()
	a, err := ReadMatrixMarketWorkers(strings.NewReader(text), 4)
	if err != nil {
		t.Fatalf("after deactivation: %v", err)
	}
	if a.NNZ() == 0 {
		t.Error("after deactivation: empty matrix")
	}
}
