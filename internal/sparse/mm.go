package sparse

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"sparseorder/internal/faultinject"
)

// Matrix Market exchange format support (coordinate real/integer/pattern,
// general/symmetric). This mirrors the format used by the SuiteSparse
// collection that the paper's dataset is drawn from.

// MMHeader describes the banner line of a Matrix Market file.
type MMHeader struct {
	Object   string // "matrix"
	Format   string // "coordinate" or "array"
	Field    string // "real", "integer" or "pattern"
	Symmetry string // "general", "symmetric", "skew-symmetric"
}

// ReadMatrixMarket parses a Matrix Market stream into CSR form. Symmetric
// and skew-symmetric inputs are expanded to full storage following the
// paper's conversion rule (both triangles stored explicitly). Pattern
// matrices receive unit values.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	// Fault point for chaos testing of corpus loading; streams carry no
	// stable identity, so the decision is keyed by the per-point hit count.
	if err := faultinject.Check(faultinject.MatrixRead, ""); err != nil {
		return nil, fmt.Errorf("sparse: reading matrix: %w", err)
	}
	br := bufio.NewReaderSize(r, 1<<20)
	// Tolerate EOF on the banner read the same way the size-line loop
	// does: a stream holding only a banner (no trailing newline) should
	// be judged on the banner's content, not fail with a read error.
	banner, err := br.ReadString('\n')
	if err != nil && banner == "" {
		return nil, fmt.Errorf("sparse: reading banner: %w", err)
	}
	fields := strings.Fields(strings.ToLower(banner))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" {
		return nil, fmt.Errorf("sparse: malformed Matrix Market banner %q", strings.TrimSpace(banner))
	}
	h := MMHeader{Object: fields[1], Format: fields[2], Field: fields[3], Symmetry: fields[4]}
	if h.Object != "matrix" || h.Format != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported Matrix Market object/format %s/%s", h.Object, h.Format)
	}
	switch h.Field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("sparse: unsupported Matrix Market field %q", h.Field)
	}
	switch h.Symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return nil, fmt.Errorf("sparse: unsupported Matrix Market symmetry %q", h.Symmetry)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: missing size line: %w", err)
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d %d", &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("sparse: malformed size line %q: %w", line, err)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, fmt.Errorf("sparse: negative size line %d %d %d", rows, cols, nnz)
	}
	// COO stores int32 indices; reject dimensions it cannot represent
	// before any entry is read.
	if int64(rows) > math.MaxInt32 || int64(cols) > math.MaxInt32 {
		return nil, fmt.Errorf("sparse: matrix dimensions %dx%d exceed the int32 index range", rows, cols)
	}

	coo := NewCOO(rows, cols, nnz)
	read := 0
	for read < nnz {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: after %d of %d entries: %w", read, nnz, err)
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		parts := strings.Fields(line)
		want := 3
		if h.Field == "pattern" {
			want = 2
		}
		if len(parts) < want {
			return nil, fmt.Errorf("sparse: malformed entry line %q", line)
		}
		i, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad row index %q: %w", parts[0], err)
		}
		j, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad column index %q: %w", parts[1], err)
		}
		// Validate the 1-based indices against the size line here, before
		// COO.Append narrows them to int32: an out-of-range 64-bit index
		// could otherwise wrap back into range and silently corrupt the
		// matrix instead of erroring.
		if i < 1 || i > rows {
			return nil, fmt.Errorf("sparse: entry %d: row index %d outside 1..%d", read+1, i, rows)
		}
		if j < 1 || j > cols {
			return nil, fmt.Errorf("sparse: entry %d: column index %d outside 1..%d", read+1, j, cols)
		}
		v := 1.0
		if h.Field != "pattern" {
			v, err = strconv.ParseFloat(parts[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad value %q: %w", parts[2], err)
			}
		}
		coo.Append(i-1, j-1, v)
		read++
	}

	switch h.Symmetry {
	case "symmetric":
		coo = coo.ExpandSymmetric()
	case "skew-symmetric":
		e := NewCOO(rows, cols, 2*coo.NNZ())
		for k := range coo.Val {
			i, j, v := coo.Row[k], coo.Col[k], coo.Val[k]
			e.Row = append(e.Row, i)
			e.Col = append(e.Col, j)
			e.Val = append(e.Val, v)
			if i != j {
				e.Row = append(e.Row, j)
				e.Col = append(e.Col, i)
				e.Val = append(e.Val, -v)
			}
		}
		coo = e
	}
	return coo.ToCSR()
}

// WriteMatrixMarket writes a in coordinate real general format with
// 1-based indices.
func WriteMatrixMarket(w io.Writer, a *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", a.Rows, a.Cols, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, a.ColIdx[k]+1, a.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WritePermutation writes a permutation as a Matrix Market integer vector
// (one 1-based index per line), the representation used by the paper's
// reordering artifact.
func WritePermutation(w io.Writer, p Perm) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix array integer general\n%d 1\n", len(p)); err != nil {
		return err
	}
	for _, v := range p {
		if _, err := fmt.Fprintf(bw, "%d\n", v+1); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPermutation parses a permutation written by WritePermutation.
func ReadPermutation(r io.Reader) (Perm, error) {
	br := bufio.NewReader(r)
	banner, err := br.ReadString('\n')
	if err != nil && banner == "" {
		return nil, fmt.Errorf("sparse: reading banner: %w", err)
	}
	if !strings.HasPrefix(strings.ToLower(banner), "%%matrixmarket matrix array integer") {
		return nil, fmt.Errorf("sparse: not an integer array Matrix Market file")
	}
	var n, one int
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: missing size line: %w", err)
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d", &n, &one); err != nil {
			return nil, fmt.Errorf("sparse: malformed size line %q: %w", line, err)
		}
		break
	}
	if one != 1 {
		return nil, fmt.Errorf("sparse: permutation must be a column vector, got %d columns", one)
	}
	if n < 0 {
		return nil, fmt.Errorf("sparse: negative permutation length %d", n)
	}
	p := make(Perm, 0, n)
	for len(p) < n {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: after %d of %d entries: %w", len(p), n, err)
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("sparse: bad permutation entry %q: %w", line, err)
		}
		p = append(p, v-1)
	}
	if !p.IsValid() {
		return nil, fmt.Errorf("sparse: file does not contain a permutation")
	}
	return p, nil
}
