package sparse

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"sparseorder/internal/faultinject"
)

// Matrix Market exchange format support (coordinate real/integer/pattern,
// general/symmetric/skew-symmetric). This mirrors the format used by the
// SuiteSparse collection that the paper's dataset is drawn from.
//
// Two readers share one grammar: ReadMatrixMarket is the serial,
// line-at-a-time reference implementation, and ReadMatrixMarketWorkers
// (ingest.go) is the chunked parallel pipeline whose output is
// byte-identical to it at every worker count. Both parse each line through
// the helpers in mmscan.go, so they accept and reject the same inputs.

// MMHeader describes the banner line of a Matrix Market file.
type MMHeader struct {
	Object   string // "matrix"
	Format   string // "coordinate" or "array"
	Field    string // "real", "integer" or "pattern"
	Symmetry string // "general", "symmetric", "skew-symmetric"
}

// readMMBanner parses and validates the banner line for the coordinate
// readers.
func readMMBanner(br *bufio.Reader) (MMHeader, error) {
	// Tolerate EOF on the banner read the same way the size-line loop
	// does: a stream holding only a banner (no trailing newline) should
	// be judged on the banner's content, not fail with a read error.
	banner, err := br.ReadString('\n')
	if err != nil && banner == "" {
		return MMHeader{}, fmt.Errorf("sparse: reading banner: %w", err)
	}
	fields := strings.Fields(strings.ToLower(banner))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" {
		return MMHeader{}, fmt.Errorf("sparse: malformed Matrix Market banner %q", strings.TrimSpace(banner))
	}
	h := MMHeader{Object: fields[1], Format: fields[2], Field: fields[3], Symmetry: fields[4]}
	if h.Object != "matrix" || h.Format != "coordinate" {
		return MMHeader{}, fmt.Errorf("sparse: unsupported Matrix Market object/format %s/%s", h.Object, h.Format)
	}
	switch h.Field {
	case "real", "integer", "pattern":
	default:
		return MMHeader{}, fmt.Errorf("sparse: unsupported Matrix Market field %q", h.Field)
	}
	switch h.Symmetry {
	case "general", "symmetric", "skew-symmetric":
	default:
		return MMHeader{}, fmt.Errorf("sparse: unsupported Matrix Market symmetry %q", h.Symmetry)
	}
	return h, nil
}

// readMMSizeLine skips comments and blank lines, then parses the size
// line.
func readMMSizeLine(br *bufio.Reader) (rows, cols, nnz int, err error) {
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return 0, 0, 0, fmt.Errorf("sparse: missing size line: %w", err)
		}
		t := trimMMSpace([]byte(line))
		if isCommentOrBlank(t) {
			continue
		}
		return parseSizeLine(t)
	}
}

// ReadMatrixMarket parses a Matrix Market stream into CSR form. Symmetric
// and skew-symmetric inputs are expanded to full storage following the
// paper's conversion rule (both triangles stored explicitly). Pattern
// matrices receive unit values.
//
// This is the serial reference reader; ReadMatrixMarketWorkers parses the
// same grammar in parallel with byte-identical output. The grammar is
// strict: size and entry lines must carry exactly the promised field
// count, skew-symmetric inputs must not store diagonal entries, and any
// non-comment content after the last entry is an error.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	// Fault point for chaos testing of corpus loading; streams carry no
	// stable identity, so the decision is keyed by the per-point hit count.
	if err := faultinject.Check(faultinject.MatrixRead, ""); err != nil {
		return nil, fmt.Errorf("sparse: reading matrix: %w", err)
	}
	br := bufio.NewReaderSize(r, 1<<20)
	h, err := readMMBanner(br)
	if err != nil {
		return nil, err
	}
	rows, cols, nnz, err := readMMSizeLine(br)
	if err != nil {
		return nil, err
	}

	coo := NewCOO(rows, cols, nnz)
	read := 0
	for read < nnz {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: after %d of %d entries: %w", read, nnz, err)
		}
		t := trimMMSpace([]byte(line))
		if isCommentOrBlank(t) {
			continue
		}
		i, j, v, err := parseEntryLine(t, h, rows, cols)
		if err != nil {
			return nil, fmt.Errorf("sparse: entry %d: %w", read+1, err)
		}
		coo.Append(i, j, v)
		read++
	}
	// The historical reader stopped here and silently ignored whatever
	// followed the last entry. A well-formed file holds exactly nnz
	// entries, so trailing non-comment content is a corruption signal
	// (a truncated size line, a concatenated file) and fails loudly.
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			break
		}
		if t := trimMMSpace([]byte(line)); !isCommentOrBlank(t) {
			return nil, fmt.Errorf("sparse: content after the declared %d entries: %q", nnz, t)
		}
	}

	switch h.Symmetry {
	case "symmetric":
		coo = coo.ExpandSymmetric()
	case "skew-symmetric":
		e := NewCOO(rows, cols, 2*coo.NNZ())
		for k := range coo.Val {
			i, j, v := coo.Row[k], coo.Col[k], coo.Val[k]
			e.Row = append(e.Row, i)
			e.Col = append(e.Col, j)
			e.Val = append(e.Val, v)
			e.Row = append(e.Row, j)
			e.Col = append(e.Col, i)
			e.Val = append(e.Val, -v)
		}
		coo = e
	}
	return coo.ToCSR()
}

// WriteMatrixMarket writes a in coordinate real general format with
// 1-based indices.
func WriteMatrixMarket(w io.Writer, a *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n", a.Rows, a.Cols, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, a.ColIdx[k]+1, a.Val[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WritePermutation writes a permutation as a Matrix Market integer vector
// (one 1-based index per line), the representation used by the paper's
// reordering artifact.
func WritePermutation(w io.Writer, p Perm) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix array integer general\n%d 1\n", len(p)); err != nil {
		return err
	}
	for _, v := range p {
		if _, err := fmt.Fprintf(bw, "%d\n", v+1); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPermutation parses a permutation written by WritePermutation. The
// size line is validated the same way ReadMatrixMarket validates its own:
// exactly two integer fields (trailing tokens are rejected), and the
// length is capped at the int32 index range so a corrupt artifact fails
// loudly instead of allocating whatever its header claims.
func ReadPermutation(r io.Reader) (Perm, error) {
	br := bufio.NewReader(r)
	banner, err := br.ReadString('\n')
	if err != nil && banner == "" {
		return nil, fmt.Errorf("sparse: reading banner: %w", err)
	}
	if !strings.HasPrefix(strings.ToLower(banner), "%%matrixmarket matrix array integer") {
		return nil, fmt.Errorf("sparse: not an integer array Matrix Market file")
	}
	var n int
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: missing size line: %w", err)
		}
		t := trimMMSpace([]byte(line))
		if isCommentOrBlank(t) {
			continue
		}
		nTok, rest := nextField(t)
		oneTok, rest := nextField(rest)
		if len(nTok) == 0 || len(oneTok) == 0 {
			return nil, fmt.Errorf("sparse: malformed size line %q: want 2 fields", t)
		}
		if tok, _ := nextField(rest); len(tok) != 0 {
			return nil, fmt.Errorf("sparse: malformed size line %q: trailing %q", t, tok)
		}
		v, ok := atoiField(nTok)
		if !ok {
			return nil, fmt.Errorf("sparse: malformed size line %q: bad length %q", t, nTok)
		}
		one, ok := atoiField(oneTok)
		if !ok {
			return nil, fmt.Errorf("sparse: malformed size line %q: bad column count %q", t, oneTok)
		}
		if one != 1 {
			return nil, fmt.Errorf("sparse: permutation must be a column vector, got %d columns", one)
		}
		n = v
		break
	}
	if n < 0 {
		return nil, fmt.Errorf("sparse: negative permutation length %d", n)
	}
	if int64(n) > math.MaxInt32 {
		return nil, fmt.Errorf("sparse: permutation length %d exceeds the int32 index range", n)
	}
	p := make(Perm, 0, n)
	for len(p) < n {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			return nil, fmt.Errorf("sparse: after %d of %d entries: %w", len(p), n, err)
		}
		t := trimMMSpace([]byte(line))
		if isCommentOrBlank(t) {
			continue
		}
		tok, rest := nextField(t)
		if extra, _ := nextField(rest); len(extra) != 0 {
			return nil, fmt.Errorf("sparse: malformed permutation entry %q: trailing %q", t, extra)
		}
		v, ok := atoiField(tok)
		if !ok {
			return nil, fmt.Errorf("sparse: bad permutation entry %q", t)
		}
		p = append(p, v-1)
	}
	// Mirror the matrix reader's strictness: a permutation artifact holds
	// exactly n entries, so trailing content is corruption.
	for {
		line, err := br.ReadString('\n')
		if err != nil && line == "" {
			break
		}
		if t := trimMMSpace([]byte(line)); !isCommentOrBlank(t) {
			return nil, fmt.Errorf("sparse: content after the declared %d entries: %q", n, t)
		}
	}
	if !p.IsValid() {
		return nil, fmt.Errorf("sparse: file does not contain a permutation")
	}
	return p, nil
}
