package sparse

import (
	"math"
	"math/big"
	"math/bits"
)

// Fast-path entry-line scanner for the parallel ingestion pipeline.
//
// parseEntryFast parses the overwhelmingly common shape of a coordinate
// entry — decimal indices and a plain decimal value separated by runs of
// spaces or tabs — in a single left-to-right pass with no allocation. It
// returns ok=false for anything outside that shape (comments, blanks,
// malformed or out-of-range entries, exotic value spellings like "inf",
// hex floats or 20+ digit mantissas), routing the line through the
// reference grammar in parseEntryLine, which either accepts it with
// identical semantics or produces the diagnostic. The fast path therefore
// accepts a strict subset of the reference grammar and never disagrees
// with it on a value: the Clinger small-number path is the same exact
// single-operation rounding parseValueField uses, and the Eisel–Lemire
// path below is correctly rounded by construction (verified exhaustively
// against strconv in the tests).
func parseEntryFast(line []byte, pattern, skew bool, rows, cols int) (int, int, float64, bool) {
	p, n := 0, len(line)
	for p < n && (line[p] == ' ' || line[p] == '\t') {
		p++
	}
	// Row index: bare digits, 1-based, bounded by rows.
	start := p
	i := 0
	for p < n && line[p] >= '0' && line[p] <= '9' {
		i = i*10 + int(line[p]-'0')
		if i > math.MaxInt32 {
			return 0, 0, 0, false
		}
		p++
	}
	if p == start || i < 1 || i > rows {
		return 0, 0, 0, false
	}
	if p >= n || (line[p] != ' ' && line[p] != '\t') {
		return 0, 0, 0, false
	}
	for p < n && (line[p] == ' ' || line[p] == '\t') {
		p++
	}
	// Column index.
	start = p
	j := 0
	for p < n && line[p] >= '0' && line[p] <= '9' {
		j = j*10 + int(line[p]-'0')
		if j > math.MaxInt32 {
			return 0, 0, 0, false
		}
		p++
	}
	if p == start || j < 1 || j > cols {
		return 0, 0, 0, false
	}

	v := 1.0
	if !pattern {
		if p >= n || (line[p] != ' ' && line[p] != '\t') {
			return 0, 0, 0, false
		}
		for p < n && (line[p] == ' ' || line[p] == '\t') {
			p++
		}
		// Value: [sign] digits [. digits] [e|E [sign] digits]. The
		// mantissa accumulates into a uint64; 19 decimal digits always
		// fit, so the cap below rejects the line before a wrapped value
		// could ever be used.
		neg := false
		if p < n && (line[p] == '+' || line[p] == '-') {
			neg = line[p] == '-'
			p++
		}
		var mant uint64
		digits, e10 := 0, 0
		for p < n && line[p] >= '0' && line[p] <= '9' {
			mant = mant*10 + uint64(line[p]-'0')
			digits++
			p++
		}
		if p < n && line[p] == '.' {
			p++
			for p < n && line[p] >= '0' && line[p] <= '9' {
				mant = mant*10 + uint64(line[p]-'0')
				digits++
				e10--
				p++
			}
		}
		if digits == 0 || digits > 19 {
			return 0, 0, 0, false
		}
		if p < n && (line[p] == 'e' || line[p] == 'E') {
			p++
			esign := 1
			if p < n && (line[p] == '+' || line[p] == '-') {
				if line[p] == '-' {
					esign = -1
				}
				p++
			}
			estart, ev := p, 0
			for p < n && line[p] >= '0' && line[p] <= '9' {
				ev = ev*10 + int(line[p]-'0')
				if ev > 10000 {
					return 0, 0, 0, false
				}
				p++
			}
			if p == estart {
				return 0, 0, 0, false
			}
			e10 += esign * ev
		}
		var ok bool
		v, ok = decToFloat(mant, e10, neg)
		if !ok {
			return 0, 0, 0, false
		}
	}

	// Only trailing whitespace may remain; anything else is the reference
	// grammar's "trailing token" error.
	for p < n && (line[p] == ' ' || line[p] == '\t' || line[p] == '\r') {
		p++
	}
	if p != n {
		return 0, 0, 0, false
	}
	if skew && i == j {
		return 0, 0, 0, false
	}
	return i - 1, j - 1, v, true
}

// decToFloat converts the decimal mant × 10^e10 (negated if neg) to the
// correctly rounded float64, or reports ok=false when it cannot guarantee
// correct rounding and the caller must fall back to strconv.
func decToFloat(mant uint64, e10 int, neg bool) (float64, bool) {
	// Clinger's fast path: both the mantissa and the power of ten are
	// exactly representable, so one IEEE multiply or divide rounds
	// correctly. This is the same computation parseValueField performs.
	if mant < 1<<53 && e10 >= -22 && e10 <= 22 {
		f := float64(mant)
		if neg {
			f = -f
		}
		if e10 >= 0 {
			return f * pow10[e10], true
		}
		return f / pow10[-e10], true
	}
	return eiselLemire(mant, e10, neg)
}

// Eisel–Lemire correctly rounded decimal→binary conversion (Lemire,
// "Number Parsing at a Gigabyte per Second", 2021): multiply the
// normalized 64-bit decimal mantissa by a truncated 128-bit binary
// representation of 10^e10 and round, bailing out in the rare cases where
// truncation could affect the rounding. The bail-outs (and the subnormal
// and overflow ranges) fall back to strconv via the caller.

const elMinExp10, elMaxExp10 = -348, 347

// elPow10[q-elMinExp10] holds the truncated 128-bit mantissa of 10^q,
// normalized to [2^127, 2^128), as {high, low} 64-bit halves. The table is
// computed exactly at init with big.Int instead of being pasted in as ~700
// lines of literals.
var elPow10 [elMaxExp10 - elMinExp10 + 1][2]uint64

func init() {
	ten := big.NewInt(10)
	mask64 := new(big.Int).SetUint64(math.MaxUint64)
	m, t := new(big.Int), new(big.Int)
	for q := elMinExp10; q <= elMaxExp10; q++ {
		// f = floor(q·log2(10)); the fixed-point approximation is exact
		// over the table's range (the normalization check below would
		// panic otherwise).
		f := (217706 * q) >> 16
		if q >= 0 {
			m.Exp(ten, t.SetInt64(int64(q)), nil)
			if s := 127 - f; s >= 0 {
				m.Lsh(m, uint(s))
			} else {
				m.Rsh(m, uint(-s))
			}
		} else {
			den := new(big.Int).Exp(ten, t.SetInt64(int64(-q)), nil)
			m.Quo(t.Lsh(big.NewInt(1), uint(127-f)), den)
		}
		if m.BitLen() != 128 {
			panic("sparse: power-of-ten table normalization failed")
		}
		elPow10[q-elMinExp10][1] = t.And(m, mask64).Uint64()
		elPow10[q-elMinExp10][0] = m.Rsh(m, 64).Uint64()
	}
}

func eiselLemire(mant uint64, e10 int, neg bool) (float64, bool) {
	if mant == 0 {
		if neg {
			return math.Copysign(0, -1), true
		}
		return 0, true
	}
	if e10 < elMinExp10 || e10 > elMaxExp10 {
		return 0, false
	}
	clz := bits.LeadingZeros64(mant)
	mant <<= uint(clz)
	retExp2 := uint64((217706*e10)>>16+64+1023) - uint64(clz)

	pow := &elPow10[e10-elMinExp10]
	xHi, xLo := bits.Mul64(mant, pow[0])
	if xHi&0x1FF == 0x1FF && xLo+mant < xLo {
		// The truncated high product is on a rounding boundary; refine
		// with the low 64 bits of the power, and bail if still ambiguous.
		yHi, yLo := bits.Mul64(mant, pow[1])
		mergedHi, mergedLo := xHi, xLo+yHi
		if mergedLo < xLo {
			mergedHi++
		}
		if mergedHi&0x1FF == 0x1FF && mergedLo+1 == 0 && yLo+mant < yLo {
			return 0, false
		}
		xHi, xLo = mergedHi, mergedLo
	}

	msb := xHi >> 63
	retMant := xHi >> (msb + 9)
	retExp2 -= 1 ^ msb
	// Half-way between two float64s with all truncated bits zero: the
	// round-to-even decision could go either way, so defer to strconv.
	if xLo == 0 && xHi&0x1FF == 0 && retMant&3 == 1 {
		return 0, false
	}
	retMant += retMant & 1
	retMant >>= 1
	if retMant>>53 > 0 {
		retMant >>= 1
		retExp2++
	}
	// retExp2 ∈ [1, 0x7FE] is the normal range; anything else (subnormal,
	// ±Inf) goes to strconv.
	if retExp2-1 >= 0x7FF-1 {
		return 0, false
	}
	b := retMant&(1<<52-1) | retExp2<<52
	if neg {
		b |= 1 << 63
	}
	return math.Float64frombits(b), true
}
