package sparse

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// TestDecToFloatMatchesStrconv checks the fast decimal→binary conversion
// bit for bit against strconv.ParseFloat over random mantissa/exponent
// pairs spanning the whole table range, including the truncation and
// halfway cases where the algorithm is allowed to bail but never to
// return a wrong bit pattern.
func TestDecToFloatMatchesStrconv(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	check := func(mant uint64, e10 int, neg bool) {
		got, ok := decToFloat(mant, e10, neg)
		if !ok {
			return // bailing to strconv is always allowed
		}
		s := strconv.FormatUint(mant, 10) + "e" + strconv.Itoa(e10)
		if neg {
			s = "-" + s
		}
		want, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("strconv rejected %q: %v", s, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("decToFloat(%d, %d, %v) = %x, strconv = %x (%q)",
				mant, e10, neg, math.Float64bits(got), math.Float64bits(want), s)
		}
	}
	for trial := 0; trial < 500000; trial++ {
		mant := rng.Uint64() >> uint(rng.Intn(64))
		e10 := rng.Intn(2*(elMaxExp10+10)) - elMaxExp10 - 10
		check(mant, e10, rng.Intn(2) == 0)
	}
	// Powers of two and their neighbours stress the rounding boundaries.
	for p := uint(0); p < 64; p++ {
		for d := -1; d <= 1; d++ {
			m := uint64(1)<<p + uint64(d)
			for _, e := range []int{-310, -100, -23, -22, -5, 0, 5, 22, 23, 100, 308} {
				check(m, e, false)
				check(m, e, true)
			}
		}
	}
	if v, ok := decToFloat(0, 0, true); !ok || math.Float64bits(v) != math.Float64bits(math.Copysign(0, -1)) {
		t.Error("decToFloat(0, 0, neg) is not -0")
	}
}

// TestParseEntryFastAgreesWithReference drives random well-formed and
// near-well-formed lines through both the fast scanner and the reference
// grammar: whenever the fast path accepts, the reference must accept with
// identical results, and the fast path must never accept a line the
// reference rejects.
func TestParseEntryFastAgreesWithReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	h := MMHeader{Object: "matrix", Format: "coordinate", Field: "real", Symmetry: "general"}
	const rows, cols = 50, 40
	values := []string{"1", "-1", "0", "-0", "3.25", "1e4", "-2.5E-3", "0.0001",
		"1.7976931348623157e308", "4.9406564584124654e-324", "123456789012345678.9",
		"99999999999999999999", "1.", ".5", "+3", "inf", "nan", "1e", "1e+", "--1", "1.2.3"}
	seps := []string{" ", "  ", "\t", " \t"}
	for trial := 0; trial < 200000; trial++ {
		i, j := rng.Intn(rows+3)-1, rng.Intn(cols+3)-1
		line := fmt.Sprintf("%s%d%s%d%s%s%s",
			seps[rng.Intn(len(seps))], i,
			seps[rng.Intn(len(seps))], j,
			seps[rng.Intn(len(seps))], values[rng.Intn(len(values))],
			seps[rng.Intn(len(seps))])
		fi, fj, fv, ok := parseEntryFast([]byte(line), false, false, rows, cols)
		if !ok {
			continue
		}
		ri, rj, rv, err := parseEntryLine(trimMMSpace([]byte(line)), h, rows, cols)
		if err != nil {
			t.Fatalf("fast path accepted %q, reference rejected it: %v", line, err)
		}
		if fi != ri || fj != rj || math.Float64bits(fv) != math.Float64bits(rv) {
			t.Fatalf("fast path and reference disagree on %q: (%d,%d,%x) vs (%d,%d,%x)",
				line, fi, fj, math.Float64bits(fv), ri, rj, math.Float64bits(rv))
		}
	}
	// The fast path must route format corners to the reference grammar.
	rejects := []string{"", "   ", "% comment", "1 1 1 junk", "0 1 1", "1 99 1",
		"1 1", "1 1 inf", "1 1 1e999", "1,1,1"}
	for _, line := range rejects {
		if _, _, _, ok := parseEntryFast([]byte(line), false, false, rows, cols); ok {
			t.Errorf("fast path accepted %q, want fallback", line)
		}
	}
	// Pattern mode: exactly two fields, unit value.
	if i, j, v, ok := parseEntryFast([]byte("3 4"), true, false, rows, cols); !ok || i != 2 || j != 3 || v != 1 {
		t.Error("fast path mishandled a pattern entry")
	}
	if _, _, _, ok := parseEntryFast([]byte("3 4 1"), true, false, rows, cols); ok {
		t.Error("fast path accepted a pattern entry with a value")
	}
	// Skew-symmetric diagonals fall back so the reference can reject them.
	if _, _, _, ok := parseEntryFast([]byte("3 3 1"), false, true, rows, cols); ok {
		t.Error("fast path accepted a skew-symmetric diagonal")
	}
	if _, _, _, ok := parseEntryFast([]byte("3 4 1"), false, true, rows, cols); !ok {
		t.Error("fast path rejected a valid skew-symmetric off-diagonal")
	}
}

// TestParseValueFastPathParity pins the %.17g writer output — the exact
// spellings WriteMatrixMarket produces — to bit-identical parses through
// both value paths.
func TestParseValueFastPathParity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100000; trial++ {
		want := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(600)-300))
		s := fmt.Sprintf("%.17g", want)
		line := "1 1 " + s
		i, j, v, ok := parseEntryFast([]byte(line), false, false, 2, 2)
		if !ok {
			continue // exotic spelling; the reference path covers it
		}
		if i != 0 || j != 0 {
			t.Fatalf("bad indices for %q", line)
		}
		ref, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(v) != math.Float64bits(ref) {
			t.Fatalf("fast parse of %q = %x, strconv = %x", s, math.Float64bits(v), math.Float64bits(ref))
		}
	}
}

// TestIngestParsesExoticSpellings checks end to end that value spellings
// the fast path refuses still parse identically through both readers.
func TestIngestParsesExoticSpellings(t *testing.T) {
	mm := "%%MatrixMarket matrix coordinate real general\n3 3 4\n" +
		"1 1 0.000000000000000000000000001\n" +
		"2 2 12345678901234567890123456789\n" +
		"3 3 1e-320\n" +
		"1 2 9007199254740993\n"
	want, err := ReadMatrixMarket(strings.NewReader(mm))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarketWorkers(strings.NewReader(mm), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Error("readers disagree on exotic value spellings")
	}
}
