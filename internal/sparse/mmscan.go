package sparse

import (
	"fmt"
	"math"
	"strconv"
)

// Allocation-light field scanning shared by the serial Matrix Market
// reader (mm.go) and the parallel ingestion pipeline (ingest.go). Both
// paths parse every line through the helpers here, so they accept and
// reject exactly the same inputs; the differential fuzz target
// (FuzzReadMatrixMarket) then only has to distinguish chunking and
// assembly bugs, not tokenizer drift.
//
// The scanner is deliberately stricter than the historical
// fmt.Sscanf/strings.Fields loop: size and entry lines must carry exactly
// the field count the header promises — trailing garbage that Sscanf and
// Fields silently ignored is now a parse error (see DESIGN.md, "Ingestion
// contract").

// isMMSpace reports whether c separates fields on a Matrix Market line.
// The set is the ASCII blanks strings.Fields splits on (the newline is
// included so serial callers can hand over ReadString output unstripped);
// multi-byte Unicode spaces are not separators, so a field containing one
// fails numeric parsing instead of being silently split.
func isMMSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// trimMMSpace removes leading and trailing blanks (including the \r of a
// CRLF line ending) from a line.
func trimMMSpace(s []byte) []byte {
	lo := 0
	for lo < len(s) && isMMSpace(s[lo]) {
		lo++
	}
	hi := len(s)
	for hi > lo && isMMSpace(s[hi-1]) {
		hi--
	}
	return s[lo:hi]
}

// nextField splits s into its first blank-delimited field and the
// remainder. An empty tok means s held no further field.
func nextField(s []byte) (tok, rest []byte) {
	lo := 0
	for lo < len(s) && isMMSpace(s[lo]) {
		lo++
	}
	hi := lo
	for hi < len(s) && !isMMSpace(s[hi]) {
		hi++
	}
	return s[lo:hi], s[hi:]
}

// atoiField parses a decimal integer field with an optional sign. It
// accepts exactly the inputs strconv.Atoi accepts (falling back to it for
// the >18-digit tail where overflow handling matters).
func atoiField(tok []byte) (int, bool) {
	if len(tok) == 0 {
		return 0, false
	}
	i := 0
	neg := false
	if tok[0] == '+' || tok[0] == '-' {
		neg = tok[0] == '-'
		i++
		if i == len(tok) {
			return 0, false
		}
	}
	if len(tok)-i > 18 {
		// Possible int64 overflow: let strconv arbitrate.
		v, err := strconv.Atoi(string(tok))
		return v, err == nil
	}
	n := 0
	for ; i < len(tok); i++ {
		c := tok[i] - '0'
		if c > 9 {
			return 0, false
		}
		n = n*10 + int(c)
	}
	if neg {
		n = -n
	}
	return n, true
}

// parseValueField parses a floating-point value field. Plain decimal
// forms whose mantissa fits 53 bits and whose scale is within 10^±22 take
// an exact fast path (Clinger's rule: one IEEE multiply or divide of two
// exactly-represented operands is correctly rounded); everything else —
// exponents, long mantissas, inf/NaN, hex floats — falls back to
// strconv.ParseFloat, so the result is always bit-identical to the
// historical parser's.
func parseValueField(tok []byte) (float64, error) {
	i := 0
	neg := false
	if i < len(tok) && (tok[i] == '+' || tok[i] == '-') {
		neg = tok[i] == '-'
		i++
	}
	var mant uint64
	digits, frac := 0, 0
	dot := false
	for ; i < len(tok); i++ {
		c := tok[i]
		if c == '.' {
			if dot {
				return parseValueSlow(tok)
			}
			dot = true
			continue
		}
		d := c - '0'
		if d > 9 {
			return parseValueSlow(tok)
		}
		if digits == 19 {
			return parseValueSlow(tok)
		}
		mant = mant*10 + uint64(d)
		digits++
		if dot {
			frac++
		}
	}
	if digits == 0 || mant >= 1<<53 || frac > 22 {
		return parseValueSlow(tok)
	}
	v := float64(mant) / pow10[frac]
	if neg {
		v = -v
	}
	return v, nil
}

// pow10 holds the exactly-representable powers of ten (10^0..10^22).
var pow10 = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

func parseValueSlow(tok []byte) (float64, error) {
	return strconv.ParseFloat(string(tok), 64)
}

// parseSizeLine parses the coordinate-format size line "rows cols nnz",
// rejecting missing fields, non-integer fields and — unlike the Sscanf it
// replaces — trailing tokens.
func parseSizeLine(line []byte) (rows, cols, nnz int, err error) {
	var toks [3][]byte
	rest := line
	for k := 0; k < 3; k++ {
		toks[k], rest = nextField(rest)
		if len(toks[k]) == 0 {
			return 0, 0, 0, fmt.Errorf("sparse: malformed size line %q: want 3 fields", line)
		}
	}
	if tok, _ := nextField(rest); len(tok) != 0 {
		return 0, 0, 0, fmt.Errorf("sparse: malformed size line %q: trailing %q", line, tok)
	}
	var ok bool
	if rows, ok = atoiField(toks[0]); !ok {
		return 0, 0, 0, fmt.Errorf("sparse: malformed size line %q: bad row count %q", line, toks[0])
	}
	if cols, ok = atoiField(toks[1]); !ok {
		return 0, 0, 0, fmt.Errorf("sparse: malformed size line %q: bad column count %q", line, toks[1])
	}
	if nnz, ok = atoiField(toks[2]); !ok {
		return 0, 0, 0, fmt.Errorf("sparse: malformed size line %q: bad entry count %q", line, toks[2])
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return 0, 0, 0, fmt.Errorf("sparse: negative size line %d %d %d", rows, cols, nnz)
	}
	// COO stores int32 indices; reject dimensions it cannot represent
	// before any entry is read.
	if int64(rows) > math.MaxInt32 || int64(cols) > math.MaxInt32 {
		return 0, 0, 0, fmt.Errorf("sparse: matrix dimensions %dx%d exceed the int32 index range", rows, cols)
	}
	return rows, cols, nnz, nil
}

// parseEntryLine parses one coordinate entry against the header h and the
// size line's dimensions, returning 0-based indices. Pattern matrices
// carry exactly two fields and receive unit values; real/integer matrices
// carry exactly three. A line with extra fields is rejected — the
// historical reader silently ignored them. Skew-symmetric inputs must not
// carry diagonal entries (the format stores the strictly lower triangle),
// so i == j is rejected for them here rather than silently kept.
func parseEntryLine(line []byte, h MMHeader, rows, cols int) (i, j int, v float64, err error) {
	iTok, rest := nextField(line)
	jTok, rest := nextField(rest)
	if len(iTok) == 0 || len(jTok) == 0 {
		return 0, 0, 0, fmt.Errorf("sparse: malformed entry line %q", line)
	}
	var vTok []byte
	if h.Field != "pattern" {
		vTok, rest = nextField(rest)
		if len(vTok) == 0 {
			return 0, 0, 0, fmt.Errorf("sparse: malformed entry line %q", line)
		}
	}
	if tok, _ := nextField(rest); len(tok) != 0 {
		return 0, 0, 0, fmt.Errorf("sparse: malformed entry line %q: trailing %q", line, tok)
	}
	i, ok := atoiField(iTok)
	if !ok {
		return 0, 0, 0, fmt.Errorf("sparse: bad row index %q", iTok)
	}
	j, ok = atoiField(jTok)
	if !ok {
		return 0, 0, 0, fmt.Errorf("sparse: bad column index %q", jTok)
	}
	// Validate the 1-based indices against the size line here, before they
	// are narrowed to int32: an out-of-range 64-bit index could otherwise
	// wrap back into range and silently corrupt the matrix.
	if i < 1 || i > rows {
		return 0, 0, 0, fmt.Errorf("sparse: row index %d outside 1..%d", i, rows)
	}
	if j < 1 || j > cols {
		return 0, 0, 0, fmt.Errorf("sparse: column index %d outside 1..%d", j, cols)
	}
	if h.Symmetry == "skew-symmetric" && i == j {
		return 0, 0, 0, fmt.Errorf("sparse: skew-symmetric matrix stores an explicit diagonal entry (%d,%d)", i, j)
	}
	v = 1
	if h.Field != "pattern" {
		if v, err = parseValueField(vTok); err != nil {
			return 0, 0, 0, fmt.Errorf("sparse: bad value %q: %w", vTok, err)
		}
	}
	return i - 1, j - 1, v, nil
}

// isCommentOrBlank reports whether a trimmed line carries no entry data.
func isCommentOrBlank(line []byte) bool {
	return len(line) == 0 || line[0] == '%'
}
