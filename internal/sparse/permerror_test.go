package sparse

import (
	"errors"
	"strings"
	"testing"
)

// TestPermValidate pins the validation taxonomy: identity is valid, and
// the first out-of-range or duplicated value is located precisely.
func TestPermValidate(t *testing.T) {
	if err := Identity(8).Validate(); err != nil {
		t.Errorf("identity invalid: %v", err)
	}
	if err := (Perm{}).Validate(); err != nil {
		t.Errorf("empty perm invalid: %v", err)
	}
	if err := (Perm{2, 0, 1}).Validate(); err != nil {
		t.Errorf("valid 3-cycle rejected: %v", err)
	}

	var pe *PermError
	err := (Perm{0, 3, 1}).Validate()
	if !errors.As(err, &pe) {
		t.Fatalf("out-of-range: err = %v, want *PermError", err)
	}
	if pe.N != 3 || pe.Index != 1 || pe.Value != 3 || pe.Dup != -1 {
		t.Errorf("out-of-range PermError = %+v", pe)
	}
	if !strings.Contains(err.Error(), "out-of-range") {
		t.Errorf("message %q", err.Error())
	}

	err = (Perm{1, 0, 1}).Validate()
	if !errors.As(err, &pe) {
		t.Fatalf("duplicate: err = %v, want *PermError", err)
	}
	if pe.N != 3 || pe.Index != 2 || pe.Value != 1 || pe.Dup != 0 {
		t.Errorf("duplicate PermError = %+v", pe)
	}
	if !strings.Contains(err.Error(), "same value") {
		t.Errorf("message %q", err.Error())
	}

	err = (Perm{-1, 0}).Validate()
	if !errors.As(err, &pe) || pe.Value != -1 || pe.Index != 0 {
		t.Errorf("negative value: err = %v", err)
	}
}

// TestPermuteRejectsInvalidPerm checks every permutation entry point
// refuses a non-bijective permutation with a *PermError instead of
// producing a corrupt matrix.
func TestPermuteRejectsInvalidPerm(t *testing.T) {
	coo := NewCOO(3, 3, 3)
	coo.Append(0, 0, 1)
	coo.Append(1, 1, 2)
	coo.Append(2, 2, 3)
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	bad := Perm{0, 0, 2}
	var pe *PermError
	if _, err := PermuteSymmetric(a, bad); !errors.As(err, &pe) {
		t.Errorf("PermuteSymmetric: err = %v, want *PermError", err)
	}
	if _, err := PermuteRows(a, bad); !errors.As(err, &pe) {
		t.Errorf("PermuteRows: err = %v, want *PermError", err)
	}
	if _, err := PermuteCols(a, bad); !errors.As(err, &pe) {
		t.Errorf("PermuteCols: err = %v, want *PermError", err)
	}
	if _, err := PermuteSymmetricWorkers(a, bad, 2); !errors.As(err, &pe) {
		t.Errorf("PermuteSymmetricWorkers: err = %v, want *PermError", err)
	}
	if _, err := PermuteRowsWorkers(a, bad, 2); !errors.As(err, &pe) {
		t.Errorf("PermuteRowsWorkers: err = %v, want *PermError", err)
	}
}
